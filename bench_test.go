// Package repro's root benchmarks: one testing.B benchmark per evaluation
// table/figure of the paper (see DESIGN.md §3 and EXPERIMENTS.md), plus
// ablation benches for the design choices the A&R paradigm rests on.
//
// The per-figure benchmarks wall-clock the full experiment harness — real
// operator execution plus simulated-cost accounting — at the Quick data
// scale; `go run ./cmd/arbench` prints the actual reproduced figures.
package repro_test

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/ar"
	"repro/internal/bat"
	"repro/internal/bulk"
	"repro/internal/bwd"
	"repro/internal/device"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/plan"
	"repro/internal/spatial"
	"repro/internal/tpch"
)

// benchSessions opens one forced-A&R and one forced-classic session over a
// catalog — end-to-end benches drive the same engine facade the shell and
// server use, so the serving path itself is under the clock.
func benchSessions(c *plan.Catalog) (arSess, clSess *engine.Session) {
	eng := engine.New(c, engine.Options{})
	return eng.SessionFor(engine.ModeAR), eng.SessionFor(engine.ModeClassic)
}

func benchFigure(b *testing.B, fn func(experiments.Options) (*experiments.Figure, error)) {
	b.Helper()
	opts := experiments.Quick()
	for i := 0; i < b.N; i++ {
		if _, err := fn(opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8aSelectionGPUResident(b *testing.B)  { benchFigure(b, experiments.Fig8a) }
func BenchmarkFig8bSelectionDistributed(b *testing.B)  { benchFigure(b, experiments.Fig8b) }
func BenchmarkFig8cSelectionBits(b *testing.B)         { benchFigure(b, experiments.Fig8c) }
func BenchmarkFig8dProjectionGPUResident(b *testing.B) { benchFigure(b, experiments.Fig8d) }
func BenchmarkFig8eProjectionDistributed(b *testing.B) { benchFigure(b, experiments.Fig8e) }
func BenchmarkFig8fGrouping(b *testing.B)              { benchFigure(b, experiments.Fig8f) }
func BenchmarkFig9SpatialRangeQuery(b *testing.B)      { benchFigure(b, experiments.Fig9) }
func BenchmarkFig10aTPCHQ1(b *testing.B)               { benchFigure(b, experiments.Fig10a) }
func BenchmarkFig10bTPCHQ6(b *testing.B)               { benchFigure(b, experiments.Fig10b) }
func BenchmarkFig10cTPCHQ14(b *testing.B)              { benchFigure(b, experiments.Fig10c) }
func BenchmarkFig11Throughput(b *testing.B)            { benchFigure(b, experiments.Fig11) }
func BenchmarkIngestExperiment(b *testing.B)           { benchFigure(b, experiments.Ingest) }

func BenchmarkTable1SpatialSetup(b *testing.B) {
	opts := experiments.Quick()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Operator-level wall-clock benchmarks: the real Go implementations,
// no simulation accounting (nil meters).

const benchN = 1 << 20

func benchColumn(bits uint) (*bwd.Column, *bat.BAT) {
	rng := rand.New(rand.NewSource(9))
	vals := make([]int64, benchN)
	for i := range vals {
		vals[i] = int64(rng.Intn(benchN))
	}
	b := bat.NewDense(vals, bat.Width32)
	col, err := bwd.Decompose(b, bits, nil)
	if err != nil {
		panic(err)
	}
	return col, b
}

func BenchmarkOpSelectApprox(b *testing.B) {
	col, _ := benchColumn(12)
	r := col.Relax(0, benchN/10)
	b.SetBytes(col.Approx.Bytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ar.SelectApprox(nil, col, r)
	}
}

func BenchmarkOpSelectRefine(b *testing.B) {
	col, _ := benchColumn(12)
	cands := ar.SelectApprox(nil, col, col.Relax(0, benchN/10))
	b.SetBytes(int64(cands.Len()) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ar.SelectRefine(nil, 1, col, 0, benchN/10, cands)
	}
}

func BenchmarkOpSelectClassic(b *testing.B) {
	_, raw := benchColumn(12)
	b.SetBytes(raw.TailBytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bulk.SelectRange(nil, 1, raw, 0, benchN/10)
	}
}

func BenchmarkOpProjectApproxRefine(b *testing.B) {
	selCol, _ := benchColumn(12)
	prjCol, _ := benchColumn(12)
	cands := ar.SelectApprox(nil, selCol, selCol.Relax(0, benchN/10))
	refined, _ := ar.SelectRefine(nil, 1, selCol, 0, benchN/10, cands)
	b.SetBytes(int64(refined.Len()) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		proj := ar.ProjectApprox(nil, prjCol, cands)
		if _, err := ar.ProjectRefine(nil, 1, proj, refined); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOpGroupApprox(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	keys := make([]int64, benchN)
	for i := range keys {
		keys[i] = int64(rng.Intn(100))
	}
	col, err := bwd.Decompose(bat.NewDense(keys, bat.Width32), 32, nil)
	if err != nil {
		b.Fatal(err)
	}
	cands := ar.SelectApprox(nil, col, bwd.ApproxRange{Full: true})
	b.SetBytes(int64(benchN) * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ar.GroupApprox(nil, col, cands)
	}
}

func BenchmarkOpTranslucentJoin(b *testing.B) {
	col, _ := benchColumn(12)
	cands := ar.SelectApprox(nil, col, col.Relax(0, benchN/2))
	refined, _ := ar.SelectRefine(nil, 1, col, 0, benchN/4, cands)
	b.SetBytes(int64(cands.Len()) * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ar.TranslucentJoin(cands.IDs, refined.IDs); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Ablation benches (design choices called out in DESIGN.md).

// Ablation: decomposition resolution. How does the device-bit budget move
// the full A&R selection cost? (The Fig 8c trade-off as a micro-ablation.)
func BenchmarkAblationResolution(b *testing.B) {
	for _, bits := range []uint{8, 16, 24} {
		b.Run(map[uint]string{8: "8bits", 16: "16bits", 24: "24bits"}[bits], func(b *testing.B) {
			col, _ := benchColumn(bits)
			r := col.Relax(0, benchN/20)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cands := ar.SelectApprox(nil, col, r)
				ar.SelectRefine(nil, 1, col, 0, benchN/20, cands)
			}
		})
	}
}

// Ablation: translucent join vs generic hash join on the same
// approximation/refinement alignment task.
func BenchmarkAblationTranslucentVsHash(b *testing.B) {
	col, _ := benchColumn(12)
	cands := ar.SelectApprox(nil, col, col.Relax(0, benchN/2))
	refined, _ := ar.SelectRefine(nil, 1, col, 0, benchN/4, cands)
	aVals := make([]int64, len(cands.IDs))
	for i, id := range cands.IDs {
		aVals[i] = int64(id)
	}
	bVals := make([]int64, len(refined.IDs))
	for i, id := range refined.IDs {
		bVals[i] = int64(id)
	}
	b.Run("translucent", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ar.TranslucentJoin(cands.IDs, refined.IDs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hash", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bulk.HashJoin(nil, 1, aVals, bVals)
		}
	})
}

// Ablation: rule-based filter push-down (§III-A) on a two-filter query
// where one predicate is far more selective.
func BenchmarkAblationFilterPushdown(b *testing.B) {
	sys := device.PaperSystem()
	c := plan.NewCatalog(sys)
	rng := rand.New(rand.NewSource(11))
	tbl := plan.NewTable("fact")
	n := 1 << 19
	for _, col := range []string{"wide", "narrow"} {
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(rng.Intn(n))
		}
		if err := tbl.AddColumn(col, bat.NewDense(vals, bat.Width32)); err != nil {
			b.Fatal(err)
		}
	}
	if err := c.AddTable(tbl); err != nil {
		b.Fatal(err)
	}
	for _, col := range []string{"wide", "narrow"} {
		if _, err := c.Decompose("fact", col, 10); err != nil {
			b.Fatal(err)
		}
	}
	q := plan.Query{
		Table: "fact",
		Filters: []plan.Filter{
			{Col: "wide", Lo: 0, Hi: int64(n)},
			{Col: "narrow", Lo: 0, Hi: int64(n / 100)},
		},
		Aggs: []plan.AggSpec{{Name: "n", Func: plan.Count}},
	}
	arSess, _ := benchSessions(c)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := arSess.QueryPlan(ctx, q); err != nil {
			b.Fatal(err)
		}
	}
}

// End-to-end wall clock of the three reproduced TPC-H queries at small SF.
func BenchmarkEndToEndTPCH(b *testing.B) {
	sys := device.PaperSystem()
	c := plan.NewCatalog(sys)
	d := tpch.Generate(0.005, 42)
	if err := d.Load(c); err != nil {
		b.Fatal(err)
	}
	if err := d.DecomposeAll(c, false); err != nil {
		b.Fatal(err)
	}
	q14, err := tpch.Q14(1995, 9)
	if err != nil {
		b.Fatal(err)
	}
	arSess, clSess := benchSessions(c)
	ctx := context.Background()
	for _, entry := range []struct {
		name string
		q    plan.Query
	}{{"Q1", tpch.Q1(90)}, {"Q6", tpch.Q6(1994, 6, 24)}, {"Q14", q14}} {
		b.Run(entry.name+"/AR", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := arSess.QueryPlan(ctx, entry.q); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(entry.name+"/Classic", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := clSess.QueryPlan(ctx, entry.q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// End-to-end wall clock of the spatial range query.
func BenchmarkEndToEndSpatial(b *testing.B) {
	sys := device.PaperSystem()
	c := plan.NewCatalog(sys)
	d := spatial.Generate(200_000, 7)
	if err := d.Load(c); err != nil {
		b.Fatal(err)
	}
	if err := d.Decompose(c); err != nil {
		b.Fatal(err)
	}
	q := spatial.RangeCountQuery()
	arSess, clSess := benchSessions(c)
	ctx := context.Background()
	b.Run("AR", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := arSess.QueryPlan(ctx, q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Classic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := clSess.QueryPlan(ctx, q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMorselScaling measures the wall-clock effect of morsel-parallel
// execution on a grouped-aggregate scan (select g, count(*), sum(v),
// min(v), max(v) ... group by g over 2M rows): the same classic plan runs
// with threads=1, threads=4 and threads=NumCPU. The simulated meter moves
// with the Threads setting by design (it always billed threads-way
// parallelism); what this benchmark demonstrates is that since the morsel
// executors, *wall-clock* follows it too. CI runs one iteration of each
// sub-benchmark so the threads=1 vs threads=N ratio is recorded on every
// push; on a multi-core machine threads=4 should be >=2x faster than
// threads=1.
func BenchmarkMorselScaling(b *testing.B) {
	sys := device.PaperSystem()
	c := plan.NewCatalog(sys)
	rng := rand.New(rand.NewSource(17))
	tbl := plan.NewTable("fact")
	n := 2 << 20
	g := make([]int64, n)
	v := make([]int64, n)
	for i := range g {
		g[i] = int64(rng.Intn(100))
		v[i] = int64(rng.Intn(1_000_000))
	}
	if err := tbl.AddColumn("g", bat.NewDense(g, bat.Width32)); err != nil {
		b.Fatal(err)
	}
	if err := tbl.AddColumn("v", bat.NewDense(v, bat.Width32)); err != nil {
		b.Fatal(err)
	}
	if err := c.AddTable(tbl); err != nil {
		b.Fatal(err)
	}
	q := plan.Query{
		Table:   "fact",
		Filters: []plan.Filter{{Col: "v", Lo: 0, Hi: 900_000}},
		GroupBy: []string{"g"},
		Aggs: []plan.AggSpec{
			{Name: "n", Func: plan.Count},
			{Name: "s", Func: plan.Sum, Expr: plan.Col("v")},
			{Name: "mn", Func: plan.Min, Expr: plan.Col("v")},
			{Name: "mx", Func: plan.Max, Expr: plan.Col("v")},
		},
	}
	want, err := c.ExecClassic(q, plan.ExecOpts{Threads: 1})
	if err != nil {
		b.Fatal(err)
	}
	threadSet := []int{1, 4}
	if ncpu := runtime.NumCPU(); ncpu != 4 && ncpu > 1 {
		threadSet = append(threadSet, ncpu)
	}
	for _, threads := range threadSet {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			b.SetBytes(int64(n) * 8)
			for i := 0; i < b.N; i++ {
				res, err := c.ExecClassic(q, plan.ExecOpts{Threads: threads})
				if err != nil {
					b.Fatal(err)
				}
				if !plan.EqualResults(res.Rows, want.Rows) {
					b.Fatalf("threads=%d changed the result", threads)
				}
			}
		})
	}
}

// BenchmarkIngestWhileQuery drives a concurrent INSERT stream against an
// A&R query stream over the mutable column store: a writer session appends
// batches into the delta segment while the timed loop runs range counts,
// and the background merger compacts deltas past the threshold. The
// reported merge-MB vs redecomp-MB metrics show the write path's
// amortization: an incremental merge ships only the merged rows'
// approximation codes across the bus, a full re-decomposition would ship
// the whole column every time.
func BenchmarkIngestWhileQuery(b *testing.B) {
	sys := device.PaperSystem()
	c := plan.NewCatalog(sys)
	tbl := plan.NewTable("stream")
	n := 200_000
	rng := rand.New(rand.NewSource(11))
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(rng.Intn(65536))
	}
	// Pin the domain ends so in-range inserts keep the decomposition
	// parameters stable and merges stay incremental.
	vals[0], vals[1] = 0, 65535
	if err := tbl.AddColumn("v", bat.NewDense(vals, bat.Width32)); err != nil {
		b.Fatal(err)
	}
	if err := c.AddTable(tbl); err != nil {
		b.Fatal(err)
	}
	if _, err := c.Decompose("stream", "v", 10); err != nil {
		b.Fatal(err)
	}

	eng := engine.New(c, engine.Options{MergeThreshold: 8192, MergeInterval: time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	eng.StartMaintenance(ctx)

	// Writer: one INSERT statement per loop, 64 rows each, through the
	// full SQL front end (write bindings are compiled per execution).
	var sb strings.Builder
	sb.WriteString("insert into stream values ")
	for i := 0; i < 64; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d)", rng.Intn(65536))
	}
	insertStmt := sb.String()
	writer := eng.Session()
	defer writer.Close()
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := writer.Query(ctx, insertStmt); err != nil {
				b.Error(err)
				return
			}
		}
	}()

	reader := eng.SessionFor(engine.ModeAR)
	defer reader.Close()
	const q = "select count(*) from stream where v between 100 and 5000"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reader.Query(ctx, q); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	<-done

	st, err := c.Table("stream")
	if err != nil {
		b.Fatal(err)
	}
	stats := st.Stats()
	b.ReportMetric(float64(stats.Inserts)/float64(b.N), "rows-ingested/op")
	b.ReportMetric(float64(stats.MergeShippedBytes)/1e6, "merge-MB")
	b.ReportMetric(float64(stats.MergeFullBytes)/1e6, "redecomp-MB")
	if stats.MergeFullBytes > 0 {
		b.ReportMetric(float64(stats.MergeShippedBytes)/float64(stats.MergeFullBytes), "merge-byte-frac")
	}
}
