// Package obs is the engine's observability substrate: per-query stage
// traces, a lock-cheap metrics registry with Prometheus text exposition,
// and a ring-buffer slow-query log.
//
// The package sits below every execution layer (it depends only on the
// standard library), so plan, engine, server and the commands can all
// publish into it without import cycles. Everything here is designed
// around one invariant: telemetry must never perturb the measurement.
// Tracing reads the simulated meter, it never charges it, so a traced
// execution returns bit-identical results and meters to an untraced one;
// counters are single atomic adds so the hot path stays lock-free.
package obs

import (
	"fmt"
	"strings"
	"time"
)

// StageEvent is one operator of an executed pipeline: the cooperative
// checkpoint class it ran under, the MAL-style operator text, the rows
// (or candidates) it emitted against the optimizer's estimate, and the
// wall-clock and simulated-meter slice attributable to it.
type StageEvent struct {
	// Stage is the checkpoint class (approximate, ship, delta, refine,
	// aggregate, bulk) the operator ran under.
	Stage string `json:"stage"`
	// Op is the MAL-style operator text, identical to the plan listing.
	Op string `json:"op"`
	// Rows is the operator's output cardinality — candidate-list length
	// for scans, group count for grouping, result rows for the tail.
	// -1 when the operator has no meaningful cardinality.
	Rows int64 `json:"rows"`
	// Est is the optimizer's estimated output cardinality (-1 unknown).
	// Filters carry the selectivity-model estimate, so Est vs Rows is the
	// estimated-vs-actual comparison \explain analyze renders.
	Est int64 `json:"est"`
	// Morsels is the number of parallel granules the operator's output
	// spans at the execution's morsel size (0 when unknown).
	Morsels int64 `json:"morsels"`
	// Wall is the real time between this operator's completion and the
	// previous one's.
	Wall time.Duration `json:"wall_ns"`
	// GPU, CPU, PCI are the simulated meter charges accumulated since the
	// previous operator — the per-stage device split.
	GPU time.Duration `json:"gpu_ns"`
	CPU time.Duration `json:"cpu_ns"`
	PCI time.Duration `json:"pci_ns"`
}

// Trace is the telemetry record of one query execution. It is owned by a
// single execution goroutine while being built (no locking) and read-only
// once the execution returns it.
type Trace struct {
	// Query is the statement text (set by the engine; the plan layer does
	// not see SQL).
	Query string `json:"query,omitempty"`
	// Mode is the scan strategy that ran: "ar" or "classic".
	Mode string `json:"mode"`
	// Threads is the billed thread count, Workers the real worker budget.
	Threads int `json:"threads"`
	Workers int `json:"workers"`
	// Start is when execution began; Wall the total wall-clock duration.
	Start time.Time     `json:"start"`
	Wall  time.Duration `json:"wall_ns"`
	// Events are the per-operator spans in execution order.
	Events []StageEvent `json:"events"`
	// Candidates and Refined are the candidate-list sizes after phase A
	// and after phase R — their difference is the approximation's
	// false-positive count.
	Candidates int64 `json:"candidates"`
	Refined    int64 `json:"refined"`
	// EstCandidates is the planner's candidate-set estimate for the whole
	// selection chain (-1 when any link lacked statistics). The funnel
	// footer compares it against Candidates to expose estimation error.
	EstCandidates int64 `json:"est_candidates"`
	// Rows is the number of result rows returned.
	Rows int64 `json:"rows"`
}

// Add appends one stage event.
func (t *Trace) Add(ev StageEvent) { t.Events = append(t.Events, ev) }

// FalsePositiveRate is the fraction of phase-A candidates discharged by
// refinement (0 when there were no candidates).
func (t *Trace) FalsePositiveRate() float64 {
	if t.Candidates == 0 {
		return 0
	}
	return float64(t.Candidates-t.Refined) / float64(t.Candidates)
}

// SimTotal sums the simulated meter slices over all events.
func (t *Trace) SimTotal() (gpu, cpu, pci time.Duration) {
	for _, ev := range t.Events {
		gpu += ev.GPU
		cpu += ev.CPU
		pci += ev.PCI
	}
	return gpu, cpu, pci
}

// Render formats the trace as display lines: a header with the mode and
// totals, one line per operator with est-vs-actual rows and the per-stage
// wall/GPU/CPU/PCI split, and the candidate-funnel footer.
func (t *Trace) Render() []string {
	gpu, cpu, pci := t.SimTotal()
	out := []string{fmt.Sprintf("trace: mode=%s threads=%d workers=%d wall=%s sim=%s (GPU %s, CPU %s, PCI %s)",
		t.Mode, t.Threads, t.Workers, round(t.Wall), round(gpu+cpu+pci), round(gpu), round(cpu), round(pci))}
	for _, ev := range t.Events {
		var sb strings.Builder
		fmt.Fprintf(&sb, "  [%-11s] %-46s", ev.Stage, ev.Op)
		switch {
		case ev.Est >= 0 && ev.Rows >= 0:
			fmt.Fprintf(&sb, " est=%d act=%d", ev.Est, ev.Rows)
		case ev.Rows >= 0:
			fmt.Fprintf(&sb, " rows %d", ev.Rows)
		}
		if ev.Morsels > 0 {
			fmt.Fprintf(&sb, " morsels %d", ev.Morsels)
		}
		fmt.Fprintf(&sb, " | wall %s gpu %s cpu %s pci %s",
			round(ev.Wall), round(ev.GPU), round(ev.CPU), round(ev.PCI))
		out = append(out, sb.String())
	}
	funnel := fmt.Sprintf("  candidates %d -> refined %d (false-positive rate %.2f%%), %d result rows",
		t.Candidates, t.Refined, t.FalsePositiveRate()*100, t.Rows)
	if t.EstCandidates >= 0 {
		funnel += fmt.Sprintf("; est candidates %d (error %.1fx)", t.EstCandidates, t.EstError())
	}
	out = append(out, funnel)
	return out
}

// EstError is the candidate-estimation error factor: max(est, actual) over
// max(min(est, actual), 1), so a perfect estimate reads 1.0x whether the
// model over- or under-shot. 0 when no estimate was recorded.
func (t *Trace) EstError() float64 {
	if t.EstCandidates < 0 {
		return 0
	}
	hi, lo := t.EstCandidates, t.Candidates
	if hi < lo {
		hi, lo = lo, hi
	}
	if lo < 1 {
		lo = 1
	}
	return float64(hi) / float64(lo)
}

// round trims a duration for display (microsecond grain above 1ms, full
// precision below — simulated charges are often sub-microsecond).
func round(d time.Duration) time.Duration {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond)
	case d >= time.Millisecond:
		return d.Round(time.Microsecond)
	default:
		return d
	}
}
