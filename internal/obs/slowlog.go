package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// SlowEntry is one retained slow query: the statement, its route, when it
// ran, its wall-clock and simulated durations, and the full stage trace.
type SlowEntry struct {
	Query string        `json:"query"`
	Route string        `json:"route"`
	When  time.Time     `json:"when"`
	Wall  time.Duration `json:"wall_ns"`
	Sim   time.Duration `json:"sim_ns"`
	Trace *Trace        `json:"trace,omitempty"`
}

// SlowLog is a fixed-capacity ring buffer of the most recent queries whose
// wall-clock latency crossed the threshold. A zero threshold disables
// logging. The threshold is read on the hot path with one atomic load, so
// a disabled log costs one branch per query.
type SlowLog struct {
	threshold atomic.Int64 // nanoseconds; 0 = off

	mu   sync.Mutex
	buf  []SlowEntry
	next int   // ring write position
	n    int   // live entries (<= cap)
	seen int64 // total entries ever noted (including overwritten)
}

// NewSlowLog returns a log retaining up to capacity entries (minimum 1).
func NewSlowLog(capacity int) *SlowLog {
	if capacity < 1 {
		capacity = 1
	}
	return &SlowLog{buf: make([]SlowEntry, capacity)}
}

// Threshold returns the current threshold (0 = disabled).
func (l *SlowLog) Threshold() time.Duration {
	return time.Duration(l.threshold.Load())
}

// SetThreshold sets the threshold; 0 disables the log (entries are kept).
func (l *SlowLog) SetThreshold(d time.Duration) {
	if d < 0 {
		d = 0
	}
	l.threshold.Store(int64(d))
}

// Enabled reports whether queries should be traced for the log.
func (l *SlowLog) Enabled() bool { return l.threshold.Load() > 0 }

// Note records e if the log is enabled and e.Wall crosses the threshold.
// It reports whether the entry was retained.
func (l *SlowLog) Note(e SlowEntry) bool {
	t := l.threshold.Load()
	if t <= 0 || int64(e.Wall) < t {
		return false
	}
	l.mu.Lock()
	l.buf[l.next] = e
	l.next = (l.next + 1) % len(l.buf)
	if l.n < len(l.buf) {
		l.n++
	}
	l.seen++
	l.mu.Unlock()
	return true
}

// Seen returns the total number of entries ever noted.
func (l *SlowLog) Seen() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seen
}

// Entries returns the retained entries, newest first.
func (l *SlowLog) Entries() []SlowEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowEntry, 0, l.n)
	for i := 1; i <= l.n; i++ {
		out = append(out, l.buf[(l.next-i+len(l.buf))%len(l.buf)])
	}
	return out
}

// Lines renders the log for the \slow meta command: a header with the
// threshold and retention, then each entry's summary and stage trace.
func (l *SlowLog) Lines() []string {
	entries := l.Entries()
	out := []string{fmt.Sprintf("slow-query log: threshold %s, %d retained (%d total, capacity %d)",
		l.Threshold(), len(entries), l.Seen(), len(l.buf))}
	for i, e := range entries {
		out = append(out, fmt.Sprintf("%d. [%s] wall %s sim %s: %s",
			i+1, e.Route, round(e.Wall), round(e.Sim), e.Query))
		if e.Trace != nil {
			out = append(out, e.Trace.Render()...)
		}
	}
	return out
}
