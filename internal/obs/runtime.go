package obs

import (
	"fmt"
	"runtime/metrics"
	"sync"

	"repro/internal/mem"
)

// Runtime telemetry: Go heap footprint, GC pause time, cumulative
// allocation counts, and the morsel-arena hit/miss counters. The kernel
// layers run at zero allocations per operation in steady state (PR 10);
// these series are how a deployment verifies that claim stays true under
// its own workload — a rising ar_go_allocs_total slope or arena miss rate
// is the regression signal.
const (
	sampleHeapBytes = "/memory/classes/heap/objects:bytes"
	sampleGCPauses  = "/gc/pauses:seconds"
	sampleAllocs    = "/gc/heap/allocs:objects"
)

// RegisterRuntime registers the Go runtime and arena series on a registry.
// Values are read at scrape time with a single runtime/metrics batch, so an
// idle registry costs nothing.
func RegisterRuntime(r *Registry) {
	var mu sync.Mutex
	samples := []metrics.Sample{
		{Name: sampleHeapBytes},
		{Name: sampleGCPauses},
		{Name: sampleAllocs},
	}
	r.Collector(func(emit Emit) {
		mu.Lock()
		metrics.Read(samples)
		heap := float64(samples[0].Value.Uint64())
		pauses := histTotalSeconds(samples[1].Value.Float64Histogram())
		allocs := float64(samples[2].Value.Uint64())
		mu.Unlock()
		emit("ar_go_heap_bytes", "", "Bytes of live heap objects.", "gauge", heap)
		emit("ar_go_gc_pauses_seconds", "", "Cumulative stop-the-world GC pause time.", "counter", pauses)
		emit("ar_go_allocs_total", "", "Cumulative heap objects allocated.", "counter", allocs)
		st := mem.Stats()
		emit("ar_mem_pool_gets_total", `result="hit"`, "Arena buffer requests, by whether a pooled buffer was reused.", "counter", float64(st.Hits))
		emit("ar_mem_pool_gets_total", `result="miss"`, "Arena buffer requests, by whether a pooled buffer was reused.", "counter", float64(st.Misses))
		emit("ar_mem_pool_puts_total", "", "Arena buffers recycled back to the free lists.", "counter", float64(st.Puts))
	})
}

// histTotalSeconds integrates a runtime pause histogram into total seconds,
// scoring each bucket at its midpoint (the runtime only exports counts).
func histTotalSeconds(h *metrics.Float64Histogram) float64 {
	if h == nil {
		return 0
	}
	var total float64
	for i, n := range h.Counts {
		if n == 0 {
			continue
		}
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		mid := lo
		if !isInf(lo) && !isInf(hi) {
			mid = (lo + hi) / 2
		} else if isInf(lo) {
			mid = hi
		}
		total += float64(n) * mid
	}
	return total
}

func isInf(f float64) bool { return f > 1e308 || f < -1e308 }

// RuntimeMemLine renders the one-line memory summary for \stats: live heap,
// cumulative GC pause time, and the arena hit rate.
func RuntimeMemLine() string {
	samples := []metrics.Sample{{Name: sampleHeapBytes}, {Name: sampleGCPauses}}
	metrics.Read(samples)
	heap := samples[0].Value.Uint64()
	pauses := histTotalSeconds(samples[1].Value.Float64Histogram())
	st := mem.Stats()
	rate := 0.0
	if st.Hits+st.Misses > 0 {
		rate = 100 * float64(st.Hits) / float64(st.Hits+st.Misses)
	}
	return fmt.Sprintf("mem: heap %.1f MiB, gc pauses %.1f ms, arena %d/%d gets pooled (%.0f%%), %d puts",
		float64(heap)/(1<<20), pauses*1e3, st.Hits, st.Hits+st.Misses, rate, st.Puts)
}
