package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is a process-wide metrics registry with Prometheus text
// exposition. Counters, gauges and histograms are first-class atomic
// objects — an increment is one atomic add, never a registry lock — while
// func metrics and collectors pull values from existing mutex-guarded
// stats structs only at scrape time, so instrumenting a hot path costs
// nothing when nobody is scraping.
//
// Series identity is (family name, rendered label string). Registering
// the same identity twice returns the existing object, so independent
// subsystems can share a counter without coordination.
type Registry struct {
	mu         sync.Mutex
	families   map[string]*family
	order      []string // family registration order (render is sorted anyway)
	collectors []func(emit Emit)
}

// Emit receives one sample from a collector at scrape time. typ is
// "counter" or "gauge"; labels is the rendered label body without braces
// (`table="trips"`) or empty.
type Emit func(name, labels, help, typ string, value float64)

type family struct {
	name, help, typ string
	series          map[string]sample // keyed by rendered labels
}

type sample interface{ value() float64 }

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) register(name, labels, help, typ string, mk func() sample) sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, series: make(map[string]sample)}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	if s, ok := f.series[labels]; ok {
		return s
	}
	s := mk()
	f.series[labels] = s
	return s
}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ n atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds n (n must be non-negative for the exposition to stay valid).
func (c *Counter) Add(n int64) { c.n.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

func (c *Counter) value() float64 { return float64(c.n.Load()) }

// Counter registers (or returns the existing) counter series.
// labels is the rendered label body (`route="ar"`), or "" for none.
func (r *Registry) Counter(name, labels, help string) *Counter {
	return r.register(name, labels, help, "counter", func() sample { return &Counter{} }).(*Counter)
}

// Gauge is a settable atomic gauge.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) value() float64 { return g.Value() }

// Gauge registers (or returns the existing) gauge series.
func (r *Registry) Gauge(name, labels, help string) *Gauge {
	return r.register(name, labels, help, "gauge", func() sample { return &Gauge{} }).(*Gauge)
}

type funcSample struct{ fn func() float64 }

func (f funcSample) value() float64 { return f.fn() }

// GaugeFunc registers a gauge whose value is read at scrape time.
func (r *Registry) GaugeFunc(name, labels, help string, fn func() float64) {
	r.register(name, labels, help, "gauge", func() sample { return funcSample{fn} })
}

// CounterFunc registers a counter whose value is read at scrape time —
// for monotonic counts that already live behind another subsystem's lock.
func (r *Registry) CounterFunc(name, labels, help string, fn func() float64) {
	r.register(name, labels, help, "counter", func() sample { return funcSample{fn} })
}

// Collector registers a scrape-time sample source for dynamic series
// (e.g. one gauge per table, where tables appear at runtime).
func (r *Registry) Collector(fn func(emit Emit)) {
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

// DefBuckets are the default latency histogram bucket upper bounds, in
// seconds (100µs to 10s, roughly ×2.5 per step).
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram with atomic per-bucket counts.
// Observations are exact under concurrency: one atomic add per bucket
// plus one for the sum.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; implicit +Inf last
	counts []atomic.Int64
	sumNs  atomic.Int64 // sum of observations in nanoseconds
	total  atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	s := d.Seconds()
	i := sort.SearchFloat64s(h.bounds, s)
	h.counts[i].Add(1)
	h.sumNs.Add(int64(d))
	h.total.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.total.Load() }

func (h *Histogram) value() float64 { return float64(h.total.Load()) }

// Histogram registers (or returns the existing) histogram series with the
// given bucket upper bounds (DefBuckets if nil).
func (r *Registry) Histogram(name, labels, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	return r.register(name, labels, help, "histogram", func() sample {
		return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
	}).(*Histogram)
}

// WriteText renders the registry in the Prometheus text exposition format
// (version 0.0.4): families sorted by name, one HELP/TYPE header each,
// histogram buckets cumulative with _sum and _count.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	collectors := append([]func(Emit){}, r.collectors...)
	r.mu.Unlock()

	// Collector samples merge into (possibly new) families.
	extra := map[string]*family{}
	for _, c := range collectors {
		c(func(name, labels, help, typ string, value float64) {
			f := extra[name]
			if f == nil {
				f = &family{name: name, help: help, typ: typ, series: map[string]sample{}}
				extra[name] = f
			}
			v := value
			f.series[labels] = funcSample{func() float64 { return v }}
		})
	}
	for _, f := range extra {
		fams = append(fams, f)
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			if h, ok := s.(*Histogram); ok {
				writeHistogram(&b, f.name, k, h)
				continue
			}
			fmt.Fprintf(&b, "%s %s\n", seriesName(f.name, k), formatValue(s.value()))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeHistogram(b *strings.Builder, name, labels string, h *Histogram) {
	var cum int64
	for i, ub := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s %d\n", seriesName(name+"_bucket", joinLabels(labels, fmt.Sprintf(`le="%s"`, formatValue(ub)))), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s %d\n", seriesName(name+"_bucket", joinLabels(labels, `le="+Inf"`)), cum)
	fmt.Fprintf(b, "%s %s\n", seriesName(name+"_sum", labels), formatValue(float64(h.sumNs.Load())/1e9))
	fmt.Fprintf(b, "%s %d\n", seriesName(name+"_count", labels), h.total.Load())
}

func seriesName(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// ServeHTTP makes the registry an http.Handler for GET /metrics.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = r.WriteText(w)
}

// Text renders the exposition as display lines (the \metrics surface).
func (r *Registry) Text() []string {
	var b strings.Builder
	_ = r.WriteText(&b)
	return strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
}
