package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRegistryText checks the Prometheus text exposition: sorted families,
// HELP/TYPE headers, label rendering, cumulative histogram buckets with
// _sum and _count, and dedup registration returning the same object.
func TestRegistryText(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("zz_total", `route="ar"`, "queries")
	c.Add(3)
	if again := r.Counter("zz_total", `route="ar"`, "queries"); again != c {
		t.Fatal("re-registering the same (name, labels) did not return the existing counter")
	}
	r.Counter("zz_total", `route="classic"`, "queries").Inc()
	r.Gauge("aa_depth", "", "queue depth").Set(2.5)
	h := r.Histogram("mid_seconds", "", "latency", []float64{0.001, 1})
	h.Observe(500 * time.Microsecond)
	h.Observe(2 * time.Second)
	r.GaugeFunc("fn_gauge", "", "func gauge", func() float64 { return 7 })
	r.Collector(func(emit Emit) {
		emit("dyn_rows", `table="trips"`, "per-table rows", "gauge", 42)
	})

	text := strings.Join(r.Text(), "\n") + "\n"
	for _, want := range []string{
		"# HELP zz_total queries\n# TYPE zz_total counter\n",
		"zz_total{route=\"ar\"} 3\n",
		"zz_total{route=\"classic\"} 1\n",
		"aa_depth 2.5\n",
		"# TYPE mid_seconds histogram\n",
		"mid_seconds_bucket{le=\"0.001\"} 1\n",
		"mid_seconds_bucket{le=\"1\"} 1\n",
		"mid_seconds_bucket{le=\"+Inf\"} 2\n",
		"mid_seconds_sum 2.0005\n",
		"mid_seconds_count 2\n",
		"fn_gauge 7\n",
		"dyn_rows{table=\"trips\"} 42\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	// Families render sorted by name regardless of registration order.
	if strings.Index(text, "aa_depth") > strings.Index(text, "zz_total") {
		t.Error("families are not sorted by name")
	}
	// The HTTP handler serves the same body with the exposition media type.
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if got := rec.Header().Get("Content-Type"); !strings.HasPrefix(got, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", got)
	}
	if rec.Body.String() != text {
		t.Error("HTTP body differs from Text()")
	}
}

// TestRegistryConcurrentExact hammers counters and a histogram from many
// goroutines while scraping the exposition mid-flight, then asserts the
// final values are exact — the lock-free hot path must not lose updates,
// and scraping must not block or corrupt them. Run under -race in CI.
func TestRegistryConcurrentExact(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits_total", "", "")
	h := r.Histogram("lat_seconds", "", "", nil)
	const workers, per = 8, 5000
	done := make(chan struct{})
	go func() { // concurrent scraper
		for {
			select {
			case <-done:
				return
			default:
				r.Text()
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	close(done)
	if got := c.Value(); got != workers*per {
		t.Errorf("counter lost updates: got %d, want %d", got, workers*per)
	}
	if got := h.Count(); got != workers*per {
		t.Errorf("histogram lost observations: got %d, want %d", got, workers*per)
	}
	text := strings.Join(r.Text(), "\n")
	if !strings.Contains(text, "hits_total 40000") {
		t.Errorf("exposition does not show the exact count:\n%s", text)
	}
}

// TestSlowLogRing checks threshold gating, ring-buffer eviction and
// newest-first listing.
func TestSlowLogRing(t *testing.T) {
	l := NewSlowLog(2)
	if l.Enabled() {
		t.Fatal("slow log enabled before a threshold was set")
	}
	l.Note(SlowEntry{Query: "ignored", Wall: time.Hour}) // disabled: dropped
	l.SetThreshold(10 * time.Millisecond)
	l.Note(SlowEntry{Query: "fast", Wall: time.Millisecond}) // under threshold
	l.Note(SlowEntry{Query: "q1", Wall: 20 * time.Millisecond})
	l.Note(SlowEntry{Query: "q2", Wall: 30 * time.Millisecond})
	l.Note(SlowEntry{Query: "q3", Wall: 40 * time.Millisecond}) // evicts q1
	if got := l.Seen(); got != 3 {
		t.Errorf("Seen() = %d, want 3", got)
	}
	es := l.Entries()
	if len(es) != 2 || es[0].Query != "q3" || es[1].Query != "q2" {
		t.Errorf("Entries() = %+v, want newest-first [q3 q2]", es)
	}
	text := strings.Join(l.Lines(), "\n")
	for _, want := range []string{"threshold 10ms", "2 retained (3 total, capacity 2)", "q3", "q2"} {
		if !strings.Contains(text, want) {
			t.Errorf("Lines() missing %q:\n%s", want, text)
		}
	}
	l.SetThreshold(0)
	if l.Enabled() {
		t.Error("SetThreshold(0) did not disable the log")
	}
}

// TestTraceRender checks the per-operator rendering and the
// candidate-funnel accounting.
func TestTraceRender(t *testing.T) {
	tr := &Trace{Mode: "ar", Threads: 1, Workers: 2, Wall: 5 * time.Millisecond,
		Candidates: 100, Refined: 80, Rows: 80, EstCandidates: 90}
	tr.Add(StageEvent{Stage: "approximate", Op: "bwd.uselectapproximate(t.v)",
		Rows: 100, Est: 90, Morsels: 2, GPU: time.Millisecond})
	tr.Add(StageEvent{Stage: "refine", Op: "bwd.uselectrefine(t.v)", Rows: 80, Est: -1,
		CPU: 2 * time.Millisecond})
	if got := tr.FalsePositiveRate(); got != 0.2 {
		t.Errorf("FalsePositiveRate = %v, want 0.2", got)
	}
	gpu, cpu, pci := tr.SimTotal()
	if gpu != time.Millisecond || cpu != 2*time.Millisecond || pci != 0 {
		t.Errorf("SimTotal = %v %v %v", gpu, cpu, pci)
	}
	text := strings.Join(tr.Render(), "\n")
	for _, want := range []string{
		"mode=ar threads=1 workers=2",
		"est=90 act=100", "morsels 2",
		"rows 80",
		"candidates 100 -> refined 80 (false-positive rate 20.00%), 80 result rows; est candidates 90 (error 1.1x)",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Render missing %q:\n%s", want, text)
		}
	}
}
