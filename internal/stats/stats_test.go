package stats

import (
	"math"
	"testing"

	"repro/internal/bat"
	"repro/internal/bwd"
	"repro/internal/store"
)

// histColumn decomposes vals at the given code width and returns the
// column with its occupancy histogram.
func histColumn(t *testing.T, vals []int64, approxBits uint) *bwd.Column {
	t.Helper()
	d, err := bwd.Decompose(bat.NewDense(vals, bat.Width32), approxBits, nil)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestStatsHistogramFromColumn(t *testing.T) {
	if h := FromColumn(nil); h != nil {
		t.Fatalf("FromColumn(nil) = %+v, want nil", h)
	}
	vals := make([]int64, 1000)
	for i := range vals {
		vals[i] = int64(i) // uniform over [0, 1000)
	}
	d := histColumn(t, vals, 10)
	h := FromColumn(d)
	if h == nil {
		t.Fatal("decomposed column has no histogram")
	}
	if h.Rows != int64(len(vals)) {
		t.Fatalf("Rows = %d, want %d", h.Rows, len(vals))
	}
	var sum int64
	for _, c := range h.Counts {
		sum += c
	}
	if sum != h.Rows {
		t.Fatalf("bucket counts sum to %d, want Rows %d", sum, h.Rows)
	}
}

func TestStatsCodeFraction(t *testing.T) {
	vals := make([]int64, 1024)
	for i := range vals {
		vals[i] = int64(i)
	}
	// 10 approximation bits over 1024 distinct values: one code per value,
	// buckets span multiple codes (Shift > 0) so edge pro-rating is live.
	d := histColumn(t, vals, 10)
	h := FromColumn(d)
	if h.Shift == 0 {
		t.Fatal("expected coarsened buckets (Shift > 0) for a 10-bit code space")
	}
	full := h.CodeFraction(0, 1<<10-1)
	if math.Abs(full-1) > 1e-9 {
		t.Fatalf("full-range fraction = %g, want 1", full)
	}
	// Uniform data: any code interval's mass is proportional to its width,
	// even when it splits a bucket.
	for _, iv := range []struct{ lo, hi uint64 }{{0, 511}, {100, 357}, {513, 513}} {
		want := float64(iv.hi-iv.lo+1) / 1024
		got := h.CodeFraction(iv.lo, iv.hi)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("CodeFraction(%d, %d) = %g, want %g", iv.lo, iv.hi, got, want)
		}
	}
	if f := h.CodeFraction(5, 4); f != 0 {
		t.Fatalf("inverted interval fraction = %g, want 0", f)
	}
	var empty *Histogram
	if f := empty.CodeFraction(0, 10); f != 0 {
		t.Fatalf("nil histogram fraction = %g, want 0", f)
	}
}

func TestStatsDistinct(t *testing.T) {
	// 4 distinct values, heavily repeated: the estimate is capped by bucket
	// row counts, not the value span.
	vals := make([]int64, 400)
	for i := range vals {
		vals[i] = int64(i%4) * 100
	}
	d := histColumn(t, vals, 4)
	h := FromColumn(d)
	n := h.Distinct()
	if n < 1 || n > 400 {
		t.Fatalf("Distinct() = %d, want within (0, 400]", n)
	}
	// The span cap must bite: each of the 4 non-empty buckets holds 100
	// rows but spans only 32 representable values, so the estimate is
	// 4*32, far below the row count.
	if n != 128 {
		t.Fatalf("Distinct() = %d, want 128 (4 buckets capped at 32 values each)", n)
	}
}

func TestStatsProvider(t *testing.T) {
	vals := make([]int64, 256)
	for i := range vals {
		vals[i] = int64(i)
	}
	schema := []store.ColumnDef{
		{Name: "v", Scale: 1, Width: bat.Width32},
		{Name: "raw", Scale: 1, Width: bat.Width32},
	}
	cols := []*bat.BAT{bat.NewDense(vals, bat.Width32), bat.NewDense(vals, bat.Width32)}
	tbl, err := store.New("t", schema, cols, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Decompose(nil, "v", 8); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Insert(nil, [][]int64{{300, 300}, {301, 301}}); err != nil {
		t.Fatal(err)
	}
	p := Of(tbl.Snapshot())
	ts := p.Table()
	if ts.Rows != 258 || ts.BaseRows != 256 || ts.DeltaRows != 2 {
		t.Fatalf("Table() = %+v, want 258 rows (256 base + 2 delta)", ts)
	}
	if c := p.Column("v"); c.Hist == nil {
		t.Fatal("decomposed column reported no histogram")
	}
	if c := p.Column("raw"); c.Hist != nil {
		t.Fatal("raw column reported a histogram")
	}
	if n := p.Distinct("raw"); n != -1 {
		t.Fatalf("Distinct(raw) = %d, want -1 (no stats)", n)
	}
	if n := p.Distinct("v"); n <= 0 {
		t.Fatalf("Distinct(v) = %d, want positive", n)
	}
	var none Provider
	if ts := none.Table(); ts.Rows != 0 {
		t.Fatalf("zero provider Table() = %+v", ts)
	}
}
