// Package stats is the planner's statistics provider. It derives
// per-column histograms from BWD bucket occupancy — the bounds structure
// the paper builds for approximate selection (§II-A) already partitions
// every decomposed column into equi-width cells over code order, so the
// occupancy counts maintained at decompose/merge time are a real
// data-distribution histogram at zero extra cost — plus row counts, delta
// sizes, deletion density and distinct-value estimates from the store
// snapshot. The optimizer (internal/plan) estimates cardinalities from
// these instead of domain fractions.
package stats

import (
	"repro/internal/bwd"
	"repro/internal/store"
)

// Histogram is an equi-width histogram over a decomposed column's
// approximation-code order. Bucket b counts the base-segment rows whose
// code lies in [b << Shift, (b+1) << Shift). Counts are taken at
// decompose/merge time, so they include base rows deleted since the last
// merge; callers damp with the snapshot's deletion density.
type Histogram struct {
	Base    int64   // value of code 0 (prefix-compression base)
	ResBits uint    // one code spans 1 << ResBits consecutive values
	Shift   uint    // one bucket spans 1 << Shift consecutive codes
	Counts  []int64 // rows per bucket
	Rows    int64   // total histogrammed rows (sum of Counts)
}

// FromColumn reads the histogram off a decomposed column, or returns nil
// when the column carries no occupancy counts.
func FromColumn(d *bwd.Column) *Histogram {
	if d == nil || len(d.BucketCounts()) == 0 {
		return nil
	}
	h := &Histogram{
		Base:    d.Dec.Base,
		ResBits: d.Dec.ResBits,
		Shift:   d.BucketShift(),
		Counts:  d.BucketCounts(),
	}
	for _, c := range h.Counts {
		h.Rows += c
	}
	return h
}

// CodeFraction estimates the fraction of histogrammed rows whose
// approximation code lies in [lo, hi], pro-rating partially covered edge
// buckets by the covered share of their code span (uniformity within a
// bucket is the only assumption left).
func (h *Histogram) CodeFraction(lo, hi uint64) float64 {
	if h == nil || h.Rows == 0 || hi < lo {
		return 0
	}
	width := uint64(1) << h.Shift
	var mass float64
	for b, count := range h.Counts {
		if count == 0 {
			continue
		}
		blo := uint64(b) << h.Shift
		bhi := blo + width - 1
		if bhi < lo || blo > hi {
			continue
		}
		olo, ohi := blo, bhi
		if lo > olo {
			olo = lo
		}
		if hi < ohi {
			ohi = hi
		}
		mass += float64(count) * float64(ohi-olo+1) / float64(width)
	}
	f := mass / float64(h.Rows)
	if f > 1 {
		f = 1
	}
	return f
}

// Distinct estimates the number of distinct values: each non-empty bucket
// contributes at most its row count and at most the number of
// representable values it spans.
func (h *Histogram) Distinct() int64 {
	if h == nil {
		return 0
	}
	valuesPerBucket := (uint64(1) << h.Shift) << h.ResBits
	var n int64
	for _, count := range h.Counts {
		if count == 0 {
			continue
		}
		if valuesPerBucket != 0 && uint64(count) > valuesPerBucket {
			n += int64(valuesPerBucket)
		} else {
			n += count
		}
	}
	return n
}

// Table summarizes a snapshot's row population for costing: live
// cardinality, how much of it still sits in the row-major delta, and the
// deletion density of the visible rows.
type Table struct {
	Rows        int64   // live rows (base + delta, minus deletions)
	BaseRows    int64   // live base-segment rows
	DeltaRows   int64   // visible delta rows (including deleted ones)
	Deleted     int64   // deleted rows still visible in base + delta
	DeletedFrac float64 // Deleted / (base + delta row positions)
}

// Column is the per-column statistics bundle the optimizer consumes.
type Column struct {
	Table
	Hist *Histogram // nil when the column is not decomposed
}

// Provider reads statistics from one pinned store snapshot, so every
// estimate a plan makes is consistent with the rows it will scan.
type Provider struct {
	snap *store.Snapshot
}

// Of wraps a snapshot as a statistics provider.
func Of(snap *store.Snapshot) Provider { return Provider{snap: snap} }

// Table returns the snapshot's population statistics.
func (p Provider) Table() Table {
	s := p.snap
	if s == nil {
		return Table{}
	}
	t := Table{
		Rows:      int64(s.Len()),
		BaseRows:  int64(s.LiveBase()),
		DeltaRows: int64(s.DeltaLen()),
		Deleted:   int64(s.DeletedCount()),
	}
	if total := s.BaseLen() + s.DeltaLen(); total > 0 {
		t.DeletedFrac = float64(t.Deleted) / float64(total)
	}
	return t
}

// Column returns the statistics bundle for one column: table population
// plus the BWD occupancy histogram when the column is decomposed.
func (p Provider) Column(name string) Column {
	c := Column{Table: p.Table()}
	if p.snap != nil {
		c.Hist = FromColumn(p.snap.Dec(name))
	}
	return c
}

// Distinct estimates the distinct-value count of a column, or -1 when the
// column carries no histogram to estimate from.
func (p Provider) Distinct(name string) int64 {
	if p.snap == nil {
		return -1
	}
	h := FromColumn(p.snap.Dec(name))
	if h == nil {
		return -1
	}
	return h.Distinct()
}
