package fixed

import (
	"testing"
	"testing/quick"
)

func TestFromToFloat(t *testing.T) {
	if got := FromFloat(2.68288, Scale5); got != 268288 {
		t.Errorf("FromFloat(2.68288) = %d, want 268288", got)
	}
	if got := FromFloat(-12.62427, Scale5); got != -1262427 {
		t.Errorf("FromFloat(-12.62427) = %d, want -1262427", got)
	}
	if got := ToFloat(268288, Scale5); got != 2.68288 {
		t.Errorf("ToFloat = %v, want 2.68288", got)
	}
	if got := FromFloat(0.05, Scale2); got != 5 {
		t.Errorf("FromFloat(0.05, Scale2) = %d, want 5", got)
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		in    string
		scale int64
		want  int64
	}{
		{"2.68288", Scale5, 268288},
		{"-12.62427", Scale5, -1262427},
		{"50.4222", Scale5, 5042220},
		{"70.13643", Scale5, 7013643},
		{"0.05", Scale2, 5},
		{"1", Scale2, 100},
		{"-0.07", Scale2, -7},
		{".5", Scale2, 50},
	}
	for _, c := range cases {
		got, err := Parse(c.in, c.scale)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("Parse(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"1.123456", "abc", "1.2.3", "1.xy"} {
		if _, err := Parse(bad, Scale5); err == nil {
			t.Errorf("Parse(%q) did not error", bad)
		}
	}
}

func TestFormat(t *testing.T) {
	cases := []struct {
		v     int64
		scale int64
		want  string
	}{
		{268288, Scale5, "2.68288"},
		{-1262427, Scale5, "-12.62427"},
		{5, Scale2, "0.05"},
		{100, Scale2, "1.00"},
		{0, Scale5, "0.00000"},
	}
	for _, c := range cases {
		if got := Format(c.v, c.scale); got != c.want {
			t.Errorf("Format(%d, %d) = %q, want %q", c.v, c.scale, got, c.want)
		}
	}
}

func TestParseFormatRoundTrip(t *testing.T) {
	f := func(raw int32) bool {
		v := int64(raw)
		s := Format(v, Scale5)
		back, err := Parse(s, Scale5)
		return err == nil && back == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulScaled(t *testing.T) {
	// 10.00 * 0.05 = 0.50 at scale 100.
	if got := MulScaled(1000, 5, Scale2); got != 50 {
		t.Errorf("MulScaled = %d, want 50", got)
	}
}
