// Package fixed implements fixed-point decimal encoding. Decimal columns —
// prices (decimal(_,2)), discounts, and the GPS coordinates of Table I
// (lon decimal(8,5), lat decimal(7,5)) — are stored as scaled integers, the
// standard column-store representation that makes them amenable to bitwise
// decomposition.
package fixed

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Common scales.
const (
	Scale2 = 100    // decimal(_,2): money
	Scale5 = 100000 // decimal(_,5): GPS coordinates
)

// FromFloat encodes f at the given scale, rounding to nearest.
func FromFloat(f float64, scale int64) int64 {
	return int64(math.Round(f * float64(scale)))
}

// ToFloat decodes a scaled integer.
func ToFloat(v, scale int64) float64 {
	return float64(v) / float64(scale)
}

// Parse parses a decimal literal ("-12.62427") at the given scale.
// Excess fractional digits are an error; missing ones are zero-padded.
func Parse(s string, scale int64) (int64, error) {
	digits := 0
	for sc := scale; sc > 1; sc /= 10 {
		digits++
	}
	neg := strings.HasPrefix(s, "-")
	body := strings.TrimPrefix(s, "-")
	intPart, fracPart := body, ""
	if dot := strings.IndexByte(body, '.'); dot >= 0 {
		intPart, fracPart = body[:dot], body[dot+1:]
	}
	if len(fracPart) > digits {
		return 0, fmt.Errorf("fixed: %q has more than %d fractional digits", s, digits)
	}
	fracPart += strings.Repeat("0", digits-len(fracPart))
	if intPart == "" {
		intPart = "0"
	}
	ip, err := strconv.ParseInt(intPart, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("fixed: bad integer part in %q: %v", s, err)
	}
	var fp int64
	if fracPart != "" {
		fp, err = strconv.ParseInt(fracPart, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("fixed: bad fraction in %q: %v", s, err)
		}
	}
	v := ip*scale + fp
	if neg {
		v = -v
	}
	return v, nil
}

// Format renders a scaled integer as a decimal literal.
func Format(v, scale int64) string {
	digits := 0
	for sc := scale; sc > 1; sc /= 10 {
		digits++
	}
	sign := ""
	if v < 0 {
		sign = "-"
		v = -v
	}
	if digits == 0 {
		return sign + strconv.FormatInt(v, 10)
	}
	return fmt.Sprintf("%s%d.%0*d", sign, v/scale, digits, v%scale)
}

// MulScaled returns the fixed-point product of two values sharing scale.
func MulScaled(a, b, scale int64) int64 { return a * b / scale }
