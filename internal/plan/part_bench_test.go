package plan

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/shard"
)

// BenchmarkPartitionScaling measures the wall-clock cost of one grouped
// A&R scatter-gather aggregation as the partition count grows, against the
// unpartitioned pipeline on the same rows. The partition legs run
// concurrently (one goroutine per partition under the stream gate), so
// this tracks the real coordination overhead of the scatter/gather stages,
// not the simulated device times (those are covered by the partition
// experiment in internal/experiments).
func BenchmarkPartitionScaling(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	rows := make([][]int64, 200_000)
	for i := range rows {
		rows[i] = partPropRow(rng)
	}
	q := Query{
		Table:   "fact",
		Filters: []Filter{{Col: "v", Lo: 0, Hi: 1023}},
		GroupBy: []string{"g"},
		Aggs: []AggSpec{
			{Name: "n", Func: Count},
			{Name: "s", Func: Sum, Expr: Col("w")},
		},
	}
	for _, parts := range []int{0, 1, 2, 4, 8} {
		label := "unpartitioned"
		if parts > 0 {
			label = fmt.Sprintf("parts=%d", parts)
		}
		b.Run(label, func(b *testing.B) {
			c := partPropCatalog(b, parts, shard.Hash, rows)
			if _, err := c.MergeTable(nil, "fact", false); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.ExecAR(q, ExecOpts{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
