package plan

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bat"
	"repro/internal/device"
	"repro/internal/shard"
	"repro/internal/stats"
	"repro/internal/store"
)

// TestStatsZipfEstimateBound is the estimation property test: on heavily
// skewed (Zipf) data, across a random interleaving of inserts, deletes and
// merges, the planner's candidate-set estimate must stay within the
// histogram's provable error bound of the actual candidate count. The
// bound is exact arithmetic, not a tuned factor: pro-rating can only err
// inside the two partially-overlapped boundary buckets, deletions since
// the last merge inflate the histogram mass by at most the deleted count,
// and delta rows (invisible to the histogram) add at most DeltaLen.
func TestStatsZipfEstimateBound(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed * 101))
			zipf := rand.NewZipf(rng, 1.2, 1.0, 1<<14-1)
			c := NewCatalog(device.PaperSystem())
			defs := []store.ColumnDef{
				{Name: "v", Scale: 1, Width: bat.Width32},
				{Name: "w", Scale: 1, Width: bat.Width32},
			}
			if _, err := c.CreateTable("zt", defs); err != nil {
				t.Fatal(err)
			}
			row := func() []int64 { return []int64{int64(zipf.Uint64()), int64(rng.Intn(4096))} }
			rows := make([][]int64, 3000)
			for i := range rows {
				rows[i] = row()
			}
			if _, err := c.InsertRows(nil, "zt", rows); err != nil {
				t.Fatal(err)
			}
			// 10 approximation bits over a 2^14 domain: >8 bits forces the
			// histogram to coarsen codes into buckets, exercising pro-rating.
			if _, err := c.Decompose("zt", "v", 10); err != nil {
				t.Fatal(err)
			}

			check := func(step int) {
				tbl, err := c.Table("zt")
				if err != nil {
					t.Fatal(err)
				}
				snap := tbl.Snapshot()
				h := stats.FromColumn(snap.Dec("v"))
				if h == nil {
					t.Fatalf("step %d: decomposed column has no histogram", step)
				}
				for k := 0; k < 6; k++ {
					lo := int64(rng.Intn(1 << 14))
					q := Query{
						Table:   "zt",
						Filters: []Filter{{Col: "v", Lo: lo, Hi: lo + int64(rng.Intn(1<<13))}},
						Aggs:    []AggSpec{{Name: "n", Func: Count}},
					}
					res, err := c.ExecAR(q, ExecOpts{Threads: 1, Trace: true})
					if err != nil {
						t.Fatalf("step %d: %v", step, err)
					}
					tr := res.Trace
					if tr.EstCandidates < 0 {
						t.Fatalf("step %d: no candidate estimate for a decomposed filter column", step)
					}
					bound := int64(2) + int64(snap.DeltaLen()) + int64(snap.DeletedCount())
					r := snap.Dec("v").Relax(q.Filters[0].Lo, q.Filters[0].Hi)
					if !r.Empty && !r.Full {
						bLo, bHi := r.Lo>>h.Shift, r.Hi>>h.Shift
						bound += h.Counts[bLo]
						if bHi != bLo {
							bound += h.Counts[bHi]
						}
					}
					diff := tr.EstCandidates - tr.Candidates
					if diff < 0 {
						diff = -diff
					}
					if diff > bound {
						t.Fatalf("step %d query [%d,%d]: est %d vs actual %d exceeds bound %d (delta %d, deleted %d)",
							step, q.Filters[0].Lo, q.Filters[0].Hi, tr.EstCandidates, tr.Candidates, bound,
							snap.DeltaLen(), snap.DeletedCount())
					}
				}
			}

			check(0)
			for step := 1; step <= 8; step++ {
				switch op := rng.Intn(10); {
				case op < 5:
					batch := make([][]int64, 1+rng.Intn(60))
					for i := range batch {
						batch[i] = row()
					}
					if _, err := c.InsertRows(nil, "zt", batch); err != nil {
						t.Fatal(err)
					}
				case op < 8:
					lo := int64(rng.Intn(1 << 14))
					if _, err := c.DeleteRows(nil, "zt", []Filter{{Col: "v", Lo: lo, Hi: lo + int64(rng.Intn(512))}}); err != nil {
						t.Fatal(err)
					}
				default:
					if _, err := c.MergeTable(nil, "zt", false); err != nil {
						t.Fatal(err)
					}
				}
				check(step)
			}
		})
	}
}

// TestCostModeMatchesForcedModes proves the cost-based mode choice can
// never change result bytes: for a query mix over plain and
// range-partitioned tables, the executor the model picks returns rows
// byte-identical to BOTH forced modes.
func TestCostModeMatchesForcedModes(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	base := make([][]int64, 2500)
	for i := range base {
		base[i] = partPropRow(rng)
	}
	plain := partPropCatalog(t, 0, shard.Hash, base)
	parted := partPropCatalog(t, 5, shard.Range, base)
	serial := ExecOpts{Threads: 1, Workers: 1}
	auto := ExecOpts{Threads: 1, Workers: 1, AutoMode: true}
	picksAR, picksClassic := 0, 0
	for round := 0; round < 4; round++ {
		for qi, q := range propQueries(rng) {
			for _, c := range []*Catalog{plain, parted} {
				forcedAR, err := c.ExecAR(q, serial)
				if err != nil {
					t.Fatalf("round %d query %d AR: %v", round, qi, err)
				}
				forcedCl, err := c.ExecClassic(q, serial)
				if err != nil {
					t.Fatalf("round %d query %d classic: %v", round, qi, err)
				}
				if !EqualResults(forcedAR.Rows, forcedCl.Rows) {
					t.Fatalf("round %d query %d: forced modes disagree", round, qi)
				}
				choice := c.ChooseMode(q)
				if choice.Reason == "" {
					t.Fatalf("round %d query %d: empty mode-choice reason", round, qi)
				}
				var chosen *Result
				if choice.Classic {
					picksClassic++
					chosen, err = c.ExecClassic(q, auto)
				} else {
					picksAR++
					chosen, err = c.ExecAR(q, auto)
				}
				if err != nil {
					t.Fatalf("round %d query %d chosen %s: %v", round, qi, choice, err)
				}
				if !EqualResults(chosen.Rows, forcedAR.Rows) {
					t.Fatalf("round %d query %d: cost-chosen %s rows %v != forced %v",
						round, qi, choice, chosen.Rows, forcedAR.Rows)
				}
			}
		}
	}
	if picksAR == 0 {
		t.Error("cost model never picked a&r across the query mix")
	}
}

// TestCostPartitionPruning is the pruning property test: a
// range-partitioned scan with filters on the partitioning column returns
// rows byte-identical to the unpartitioned oracle while the planner counts
// the skipped partitions. An all-excluding filter still executes (one leg
// survives) and returns the same empty result as the oracle.
func TestCostPartitionPruning(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	base := make([][]int64, 2000)
	for i := range base {
		base[i] = partPropRow(rng)
	}
	plain := partPropCatalog(t, 0, shard.Hash, base)
	parted := partPropCatalog(t, 6, shard.Range, base)
	serial := ExecOpts{Threads: 1, Workers: 1}

	// All data values (0..4095) land in one slab of the 6-way split of the
	// signed 64-bit domain, so a narrow filter keeps exactly one partition.
	q := Query{
		Table:   "fact",
		Filters: []Filter{{Col: "v", Lo: 100, Hi: 900}},
		Aggs:    []AggSpec{{Name: "n", Func: Count}, {Name: "s", Func: Sum, Expr: Col("w")}},
	}
	before := parted.PlannerStats().PartitionsPruned
	want, err := plain.ExecAR(q, serial)
	if err != nil {
		t.Fatal(err)
	}
	got, err := parted.ExecAR(q, serial)
	if err != nil {
		t.Fatal(err)
	}
	if !EqualResults(got.Rows, want.Rows) {
		t.Fatalf("pruned scatter rows %v != oracle %v", got.Rows, want.Rows)
	}
	if d := parted.PlannerStats().PartitionsPruned - before; d != 5 {
		t.Fatalf("PartitionsPruned advanced by %d, want 5 (one surviving leg of 6)", d)
	}
	gotCl, err := parted.ExecClassic(q, serial)
	if err != nil {
		t.Fatal(err)
	}
	if !EqualResults(gotCl.Rows, want.Rows) {
		t.Fatalf("pruned classic scatter rows %v != oracle %v", gotCl.Rows, want.Rows)
	}

	// Random ranges: pruned or not, rows must match the oracle exactly.
	for k := 0; k < 12; k++ {
		lo := int64(rng.Intn(8192)) - 2048
		qk := Query{
			Table:   "fact",
			Filters: []Filter{{Col: "v", Lo: lo, Hi: lo + int64(rng.Intn(4096))}},
			GroupBy: []string{"g"},
			Aggs:    []AggSpec{{Name: "n", Func: Count}, {Name: "s", Func: Sum, Expr: Col("w")}},
		}
		want, err := plain.ExecAR(qk, serial)
		if err != nil {
			t.Fatal(err)
		}
		for _, exec := range []func(Query, ExecOpts) (*Result, error){parted.ExecAR, parted.ExecClassic} {
			got, err := exec(qk, serial)
			if err != nil {
				t.Fatalf("query %d: %v", k, err)
			}
			if !EqualResults(got.Rows, want.Rows) {
				t.Fatalf("query %d [%d,%d]: pruned scatter %v != oracle %v", k, qk.Filters[0].Lo, qk.Filters[0].Hi, got.Rows, want.Rows)
			}
		}
	}

	// A filter excluding every slab holding data: one leg survives, the
	// result is the oracle's (empty) result.
	qe := Query{
		Table:   "fact",
		Filters: []Filter{{Col: "v", Lo: -900000, Hi: -800000}},
		Aggs:    []AggSpec{{Name: "n", Func: Count}},
	}
	wantE, err := plain.ExecAR(qe, serial)
	if err != nil {
		t.Fatal(err)
	}
	gotE, err := parted.ExecAR(qe, serial)
	if err != nil {
		t.Fatal(err)
	}
	if !EqualResults(gotE.Rows, wantE.Rows) {
		t.Fatalf("all-excluding filter: scatter %v != oracle %v", gotE.Rows, wantE.Rows)
	}

	// The scatter explain lists the pruned partitions without executing
	// (and without advancing the counter).
	mark := parted.PlannerStats().PartitionsPruned
	lines, err := parted.ExplainQuery(q, false)
	if err != nil {
		t.Fatal(err)
	}
	text := strings.Join(lines, "\n")
	if !strings.Contains(text, "pruned") {
		t.Fatalf("scatter explain does not mention pruning:\n%s", text)
	}
	if parted.PlannerStats().PartitionsPruned != mark {
		t.Error("ExplainQuery advanced the prune counter")
	}
}

// TestCostUnmergedDimJoinHint asserts the unmerged-dimension join error
// names the fix: the \merge command and the pending delta row count.
func TestCostUnmergedDimJoinHint(t *testing.T) {
	c := buildStarCatalog(t, 400, 3)
	if _, err := c.InsertRows(nil, "dim1", [][]int64{{40, 7}, {41, 8}}); err != nil {
		t.Fatal(err)
	}
	q := Query{
		Table: "fact",
		Joins: []JoinSpec{{FKCol: "fk1", Dim: "dim1", DimPK: "id"}},
		Aggs:  []AggSpec{{Name: "n", Func: Count}},
	}
	for _, exec := range []func(Query, ExecOpts) (*Result, error){c.ExecAR, c.ExecClassic} {
		_, err := exec(q, ExecOpts{Threads: 1})
		if err == nil {
			t.Fatal("join against an unmerged dimension did not fail")
		}
		for _, want := range []string{`run \merge dim1`, "2 unmerged delta rows"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("error %q missing %q", err, want)
			}
		}
	}
}

// TestCostExplainEstimates covers the \explain rendering: estimated rows
// per operator with the selectivity source, and the explicit "no stats"
// marker when a classic filter column has no decomposition.
func TestCostExplainEstimates(t *testing.T) {
	c := buildStarCatalog(t, 600, 9)
	q := Query{
		Table:   "fact",
		Filters: []Filter{{Col: "v", Lo: 0, Hi: 1024}},
		Joins:   starJoins([]Filter{{Col: "a", Lo: 0, Hi: 50}}, nil),
		GroupBy: []string{"g"},
		Aggs:    []AggSpec{{Name: "n", Func: Count}},
	}
	lines, err := c.ExplainQuery(q, false)
	if err != nil {
		t.Fatal(err)
	}
	text := strings.Join(lines, "\n")
	for _, want := range []string{"(est sel ", "est=", " rows)", "est<=", " groups"} {
		if !strings.Contains(text, want) {
			t.Errorf("a&r explain missing %q:\n%s", want, text)
		}
	}

	// A classic-only table: one decomposed column, one raw column. The raw
	// column's filter has no statistics and must say so.
	defs := []store.ColumnDef{
		{Name: "v", Scale: 1, Width: bat.Width32},
		{Name: "raw", Scale: 1, Width: bat.Width32},
	}
	if _, err := c.CreateTable("ct", defs); err != nil {
		t.Fatal(err)
	}
	rows := make([][]int64, 200)
	for i := range rows {
		rows[i] = []int64{int64(i % 64), int64(i)}
	}
	if _, err := c.InsertRows(nil, "ct", rows); err != nil {
		t.Fatal(err)
	}
	if _, err := c.MergeTable(nil, "ct", false); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Decompose("ct", "v", 6); err != nil {
		t.Fatal(err)
	}
	qc := Query{
		Table:   "ct",
		Filters: []Filter{{Col: "raw", Lo: 0, Hi: 10}, {Col: "v", Lo: 0, Hi: 31}},
		Aggs:    []AggSpec{{Name: "n", Func: Count}},
	}
	lines, err = c.ExplainQuery(qc, true)
	if err != nil {
		t.Fatal(err)
	}
	text = strings.Join(lines, "\n")
	if !strings.Contains(text, "est=n/a (no stats)") {
		t.Errorf("classic explain missing the no-stats marker:\n%s", text)
	}
}
