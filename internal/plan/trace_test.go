package plan

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// traceShape renders the deterministic part of a trace — stage, operator
// text, cardinalities, estimates and the simulated meter split per event —
// excluding wall-clock time. Executions that must agree modulo real time
// compare these strings byte-for-byte.
func traceShape(r *Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "mode=%s candidates=%d refined=%d rows=%d\n",
		r.Trace.Mode, r.Trace.Candidates, r.Trace.Refined, r.Trace.Rows)
	for _, ev := range r.Trace.Events {
		fmt.Fprintf(&sb, "[%s] %s rows=%d est=%d gpu=%v cpu=%v pci=%v\n",
			ev.Stage, ev.Op, ev.Rows, ev.Est, ev.GPU, ev.CPU, ev.PCI)
	}
	return sb.String()
}

// TestTraceDoesNotPerturbExecution is the telemetry ground rule: enabling
// ExecOpts.Trace must return bit-identical results AND meters to an
// untraced run — tracing reads the meter, it never charges it.
func TestTraceDoesNotPerturbExecution(t *testing.T) {
	c := propCatalog(t, 6000, 3)
	rng := rand.New(rand.NewSource(99))
	// A delta segment and deletions so the delta/maskdeleted stages trace.
	rows := make([][]int64, 800)
	for i := range rows {
		rows[i] = []int64{int64(rng.Intn(4096)), int64(rng.Intn(4096)), int64(rng.Intn(5))}
	}
	if _, err := c.InsertRows(nil, "fact", rows); err != nil {
		t.Fatal(err)
	}
	if _, err := c.DeleteRows(nil, "fact", []Filter{{Col: "v", Lo: 100, Hi: 400}}); err != nil {
		t.Fatal(err)
	}
	for qi, q := range propQueries(rng) {
		for _, exec := range []struct {
			name string
			run  func(Query, ExecOpts) (*Result, error)
		}{{"ar", c.ExecAR}, {"classic", c.ExecClassic}} {
			plain, err := exec.run(q, ExecOpts{Threads: 1})
			if err != nil {
				t.Fatalf("query %d %s: %v", qi, exec.name, err)
			}
			if plain.Trace != nil {
				t.Fatalf("query %d %s: untraced run carries a trace", qi, exec.name)
			}
			traced, err := exec.run(q, ExecOpts{Threads: 1, Trace: true})
			if err != nil {
				t.Fatalf("query %d %s traced: %v", qi, exec.name, err)
			}
			if !EqualResults(plain.Rows, traced.Rows) {
				t.Errorf("query %d %s: traced rows %v != untraced %v", qi, exec.name, traced.Rows, plain.Rows)
			}
			if *plain.Meter != *traced.Meter {
				t.Errorf("query %d %s: tracing perturbed the meter: %v != %v",
					qi, exec.name, traced.Meter, plain.Meter)
			}
			if traced.Trace == nil || len(traced.Trace.Events) == 0 {
				t.Fatalf("query %d %s: traced run has no events", qi, exec.name)
			}
			if traced.Trace.Mode != exec.name {
				t.Errorf("query %d: trace mode %q, want %q", qi, traced.Trace.Mode, exec.name)
			}
			// The trace shares the plan listing's operator text line-for-line.
			for i, ev := range traced.Trace.Events {
				if !strings.Contains(strings.Join(traced.Plan, "\n"), ev.Op) {
					t.Errorf("query %d %s event %d: op %q not in plan listing", qi, exec.name, i, ev.Op)
				}
			}
		}
	}
}

// BenchmarkTraceOverhead measures the cost of enabling per-operator
// tracing on the A&R pipeline — the acceptance budget is <=5% over an
// untraced run (tracing is a handful of clock reads and meter snapshots
// per operator, not per tuple).
func BenchmarkTraceOverhead(b *testing.B) {
	c := propCatalog(b, 60000, 3)
	q := Query{
		Table:   "fact",
		Filters: []Filter{{Col: "v", Lo: 100, Hi: 2000}, {Col: "w", Lo: 0, Hi: 3000}},
		GroupBy: []string{"g"},
		Aggs:    []AggSpec{{Name: "n", Func: Count}, {Name: "s", Func: Sum, Expr: Col("w")}},
	}
	for _, traced := range []bool{false, true} {
		name := "untraced"
		if traced {
			name = "traced"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := c.ExecAR(q, ExecOpts{Threads: 1, Trace: traced}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestTraceStableAcrossWorkers pins the actuals: the traced cardinalities,
// estimates and per-stage simulated meter splits must be byte-identical no
// matter the worker count or morsel size — parallelism is an execution
// detail, not an observable.
func TestTraceStableAcrossWorkers(t *testing.T) {
	c := propCatalog(t, 6000, 5)
	rng := rand.New(rand.NewSource(17))
	for qi, q := range propQueries(rng) {
		serialAR, err := c.ExecAR(q, ExecOpts{Threads: 1, Workers: 1, Trace: true})
		if err != nil {
			t.Fatalf("query %d serial: %v", qi, err)
		}
		wantAR := traceShape(serialAR)
		serialCl, err := c.ExecClassic(q, ExecOpts{Threads: 1, Workers: 1, Trace: true})
		if err != nil {
			t.Fatalf("query %d serial classic: %v", qi, err)
		}
		wantCl := traceShape(serialCl)
		for _, workers := range []int{2, 5, 8} {
			opts := ExecOpts{Threads: 1, Workers: workers, Morsel: 256, Trace: true}
			ar, err := c.ExecAR(q, opts)
			if err != nil {
				t.Fatalf("query %d workers=%d: %v", qi, workers, err)
			}
			if got := traceShape(ar); got != wantAR {
				t.Errorf("query %d workers=%d: A&R trace diverged\n--- serial\n%s--- parallel\n%s",
					qi, workers, wantAR, got)
			}
			cl, err := c.ExecClassic(q, opts)
			if err != nil {
				t.Fatalf("query %d workers=%d classic: %v", qi, workers, err)
			}
			if got := traceShape(cl); got != wantCl {
				t.Errorf("query %d workers=%d: classic trace diverged\n--- serial\n%s--- parallel\n%s",
					qi, workers, wantCl, got)
			}
		}
	}
}
