// The physical-operator pipeline layer: one executor skeleton that both
// execution models share. A pipeline is assembled from the logical Query
// in two pieces:
//
//   - a scan source — the A&R bit-sliced base scan (approximate select →
//     ship → refine) or the classic row-major bulk scan — that applies the
//     selections and joins and emits the same product either way: the
//     exact-value tuple stream of the base segment plus the delta
//     segment's contribution (scanned once, by the shared delta source in
//     exec_delta.go);
//   - the shared downstream operators — delta merge, grouping,
//     aggregation, HAVING, ORDER BY / LIMIT (top-k) — that run identically
//     for every scan strategy, so classic vs A&R is a scan-strategy choice
//     instead of a separate executor, and base/delta/deletion merging
//     exists in exactly one place.
//
// Assembly is also where the rule-based optimizer lives (§III-A): filters
// are cost-ordered by estimated selectivity — fact-side and, per join,
// dimension-side — and the chosen order is preserved on the pipeline so
// \explain can render it with the estimates.
package plan

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/ar"
	"repro/internal/bulk"
	"repro/internal/device"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/stats"
)

// pipeline is one assembled physical plan: the scan-strategy choice plus
// the cost-ordered predicate chains and join stages the scan will execute.
type pipeline struct {
	q       Query
	snap    *execSnap
	classic bool
	// noDevGroup disables the A&R device-side pre-grouping. Partition scans
	// of a scatter-gather execution set it: grouping must run on the host
	// where every partition's base and delta tuples meet.
	noDevGroup bool

	factFilters []rankedFilter
	orGroups    []orGroupStage
	joins       []joinStage
}

// orGroupStage is one disjunction operator: the group's predicates, the
// candidate-attachment group id, and the selectivity bound (with its
// estimate source) for \explain.
type orGroupStage struct {
	filters []Filter
	id      int
	sel     float64
	src     estSource
}

// joinStage is one FK-probe stage of the join chain with its (possibly
// cost-ordered) dimension-side filters. sel estimates the fraction of fact
// candidates surviving the probe itself (the dimension's live fraction);
// the dimension filters carry their own estimates.
type joinStage struct {
	spec       JoinSpec
	dimFilters []rankedFilter
	sel        float64
	src        estSource
}

// buildPipeline assembles the physical pipeline for one execution. The
// A&R assembly cost-orders the fact-side and dimension-side filters — and
// the join chain — by estimated selectivity from the statistics provider;
// the classic assembly preserves the written order (the bulk engine
// predates the statistics) but still records estimates for \explain when
// decompositions exist.
func buildPipeline(q Query, snap *execSnap, classic bool) *pipeline {
	pl := &pipeline{q: q, snap: snap, classic: classic}
	if classic {
		pl.factFilters = rankFilters(snap, q.Table, q.Filters)
	} else {
		pl.factFilters = orderFilters(snap, q.Table, q.Filters)
	}
	for i, group := range q.Or {
		sel, src := estimateOrSelectivity(snap, q.Table, group)
		pl.orGroups = append(pl.orGroups, orGroupStage{
			filters: group,
			id:      i + 1,
			sel:     sel,
			src:     src,
		})
	}
	type ordJoin struct {
		st  joinStage
		key float64
	}
	ord := make([]ordJoin, 0, len(q.Joins))
	for _, j := range q.Joins {
		st := joinStage{spec: j}
		st.sel = 1.0
		if ds := snap.snapFor(j.Dim); ds.BaseLen() > 0 {
			st.sel = float64(ds.LiveBase()) / float64(ds.BaseLen())
		}
		st.src = estRowCount
		if classic {
			st.dimFilters = rankFilters(snap, j.Dim, j.DimFilters)
		} else {
			st.dimFilters = orderFilters(snap, j.Dim, j.DimFilters)
		}
		// The ordering key is the stage's whole survival fraction: probe
		// survival times the dimension filters' combined selectivity.
		key, _ := estimateJoinSel(snap, j)
		ord = append(ord, ordJoin{st: st, key: key})
	}
	if !classic && len(ord) > 1 {
		// Cost-order the join chain: most selective stage first. FK probes
		// are n:1 and order-preserving over the fact candidate list, so the
		// surviving set — and therefore the result bytes — is identical for
		// every permutation; only the intermediate cardinalities shrink
		// sooner. Classic keeps the written order.
		sort.SliceStable(ord, func(a, b int) bool { return ord[a].key < ord[b].key })
	}
	for _, o := range ord {
		pl.joins = append(pl.joins, o.st)
	}
	return pl
}

// pipeState is the mutable state of one pipeline execution: the context,
// parallelism descriptor, meter and result under construction, plus — when
// tracing is on — the telemetry record and its per-operator marks.
type pipeState struct {
	ctx  context.Context
	opts ExecOpts
	pp   par.P
	m    *device.Meter
	res  *Result

	// Tracing state (tr nil = off): the checkpoint class the pipeline is
	// currently in, the wall-clock and meter marks of the previous operator
	// boundary, and the running cardinality estimate the selectivity model
	// predicts at this point of the chain (-1 once unknown). Tracing only
	// ever *reads* the meter — a traced run charges exactly what an
	// untraced one does.
	tr    *obs.Trace
	stage Stage
	mark  time.Time
	last  device.Meter
	est   float64
	// estCand is the planner's candidate-set estimate captured at the end
	// of the selection chain (-1 when unknown); the trace footer compares
	// it against the actual candidate count to expose estimation error.
	estCand int64
}

// trace appends one MAL-style plan line (and, when tracing, closes a span
// with no cardinality).
func (st *pipeState) trace(format string, args ...any) {
	st.emit(-1, -1, fmt.Sprintf(format, args...))
}

// traceRows is trace with the operator's actual output cardinality.
func (st *pipeState) traceRows(rows int, format string, args ...any) {
	st.emit(int64(rows), -1, fmt.Sprintf(format, args...))
}

// traceEst is trace with both the actual and the estimated cardinality —
// the per-filter est-vs-actual comparison \explain analyze renders.
func (st *pipeState) traceEst(rows int, est int64, format string, args ...any) {
	st.emit(int64(rows), est, fmt.Sprintf(format, args...))
}

// emit records the plan line, and — when tracing — one StageEvent carrying
// the wall-clock and simulated-meter deltas since the previous operator.
func (st *pipeState) emit(rows, est int64, line string) {
	st.res.Plan = append(st.res.Plan, line)
	if st.tr == nil {
		return
	}
	now := time.Now()
	ev := obs.StageEvent{
		Stage: string(st.stage),
		Op:    line,
		Rows:  rows,
		Est:   est,
		Wall:  now.Sub(st.mark),
		GPU:   st.m.GPU - st.last.GPU,
		CPU:   st.m.CPU - st.last.CPU,
		PCI:   st.m.PCI - st.last.PCI,
	}
	if rows > 0 {
		chunk := int64(st.pp.ChunkSize())
		ev.Morsels = (rows + chunk - 1) / chunk
	}
	st.tr.Add(ev)
	st.mark = now
	st.last = *st.m
}

// estApply folds one filter's selectivity estimate into the running
// cardinality estimate and returns the predicted output rows (-1 once any
// link of the chain had no estimate).
func (st *pipeState) estApply(sel float64) int64 {
	if sel < 0 || st.est < 0 {
		st.est = -1
		return -1
	}
	st.est *= sel
	return int64(st.est + 0.5)
}

// estReset restarts the running estimate at the live base cardinality —
// phase R walks the same filter chain a second time.
func (st *pipeState) estReset(pl *pipeline) {
	st.est = float64(pl.snap.fact.LiveBase())
}

// estCapture snapshots the running estimate as the candidate-set estimate
// the trace footer reports (kept at -1 once the chain lost its stats).
func (st *pipeState) estCapture() {
	if st.est >= 0 {
		st.estCand = int64(st.est + 0.5)
	} else {
		st.estCand = -1
	}
}

func (st *pipeState) step(s Stage) error {
	st.stage = s
	return step(st.ctx, st.opts, s)
}

// scanOut is what every scan source produces: the base segment's exact
// tuple values, the delta segment's contribution, and — A&R only — the
// device pre-grouping awaiting refinement with its surviving candidates.
type scanOut struct {
	ectx    *exprCtx
	dset    *deltaSet
	mg      *ar.MultiGrouping
	refined *ar.Candidates
}

// run executes the assembled pipeline: scan source, then the shared tail.
func (pl *pipeline) run(ctx context.Context, sys *device.System, opts ExecOpts) (*Result, error) {
	m := device.NewMeter(sys)
	st := &pipeState{ctx: ctx, opts: opts, pp: opts.par(ctx), m: m, res: &Result{Meter: m}, estCand: -1}
	st.res.InputBytes = pl.snap.inputBytes(pl.q)
	st.estReset(pl)
	if opts.Trace {
		mode := "ar"
		if pl.classic {
			mode = "classic"
		}
		st.tr = &obs.Trace{Mode: mode, Threads: opts.threads(), Workers: opts.workers(), Start: time.Now()}
		st.mark = st.tr.Start
		st.res.Trace = st.tr
	}
	var out *scanOut
	var err error
	if pl.classic {
		out, err = pl.scanClassic(st)
	} else {
		out, err = pl.scanAR(st)
	}
	if err != nil {
		return nil, err
	}
	if err := pl.finish(st, out); err != nil {
		return nil, err
	}
	// The surviving candidate set (and the pre-grouping's source when one
	// exists) is dead once the tail has aggregated.
	if out.refined != nil {
		if out.mg != nil && out.mg.Src != out.refined {
			out.mg.Src.Release()
		}
		out.refined.Release()
	}
	// A context cancelled mid-kernel leaves that kernel's output incomplete
	// (workers stop claiming morsels); the final check guarantees such
	// partial results are never returned as an answer.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if st.tr != nil {
		st.tr.Wall = time.Since(st.tr.Start)
		st.tr.Candidates = int64(st.res.Candidates)
		st.tr.Refined = int64(st.res.Refined)
		st.tr.Rows = int64(len(st.res.Rows))
		st.tr.EstCandidates = st.estCand
	}
	return st.res, nil
}

// finish is the shared downstream pipeline: merge the delta contribution
// into the combined tuple set, group, aggregate, filter with HAVING, and
// order/limit. It is the only place base and delta tuples meet.
func (pl *pipeline) finish(st *pipeState, out *scanOut) error {
	q := &pl.q
	ectx := out.ectx
	ectx.appendDelta(out.dset)
	if out.dset != nil {
		st.res.Candidates += out.dset.n
		st.res.Refined += out.dset.n
	}

	// Grouping — refined from the A&R device pre-grouping when one exists,
	// rebuilt on the host over the combined tuple set otherwise.
	var grouping *bulk.Grouping
	var groupKeys [][]int64
	var err error
	switch {
	case out.mg != nil:
		if err := st.step(StageRefine); err != nil {
			return err
		}
		grouping, groupKeys, err = ar.GroupRefineMultiPar(st.pp, st.m, out.mg, out.refined)
		if err != nil {
			return err
		}
		st.traceRows(grouping.NGroups, "bwd.grouprefine(%s)", join(q.GroupBy))
	case len(q.GroupBy) > 0:
		stage, label := StageRefine, "group.merge"
		if pl.classic {
			stage, label = StageBulk, "group.new"
		}
		if err := st.step(stage); err != nil {
			return err
		}
		cols := make([][]int64, len(q.GroupBy))
		for k, g := range q.GroupBy {
			cols[k] = ectx.vals[ColRef{Name: g}]
		}
		grouping, groupKeys = bulk.GroupByMultiPar(st.pp, st.m, cols)
		st.traceRows(grouping.NGroups, "%s(%s)", label, join(q.GroupBy))
	}

	// Aggregation (§IV-F; sums of products are recomputed on the CPU due
	// to destructive distributivity, §IV-G). The A&R refinement aggregation
	// is a fused, statically expanded loop (§V-C) reading each input column
	// once — unlike the classic engine, which materializes every
	// arithmetic intermediate (§II-B).
	if err := st.step(StageAggregate); err != nil {
		return err
	}
	rows, err := aggregateRows(st.m, st.pp, *q, ectx, grouping, groupKeys, !pl.classic)
	if err != nil {
		return err
	}
	for _, a := range q.Aggs {
		if pl.classic {
			st.traceRows(len(rows), "aggr.%s(%s)", a.Func, a.Name)
		} else {
			st.traceRows(len(rows), "bwd.%srefine(%s)", a.Func, a.Name)
		}
	}
	sortRows(rows)
	rows = pl.applyHaving(st, rows)
	rows, err = pl.orderLimit(st, rows)
	if err != nil {
		return err
	}
	st.res.Rows = dropHidden(q, rows)
	// The combined tuple values are dead once aggregated: the result rows
	// own their key/value slices, so the exact-value buffers recycle.
	for _, vals := range ectx.vals {
		mem.I64.Put(vals)
	}
	return nil
}

// applyHaving filters the aggregated rows with the HAVING conjunction.
func (pl *pipeline) applyHaving(st *pipeState, rows []Row) []Row {
	q := &pl.q
	if len(q.Having) == 0 {
		return rows
	}
	kept := make([]Row, 0, len(rows))
	for _, r := range rows {
		ok := true
		for _, h := range q.Having {
			if v := r.Vals[h.Agg]; v < h.Lo || v > h.Hi {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, r)
		}
	}
	if st.m != nil {
		st.m.CPUWork(st.pp.NThreads(), int64(len(rows))*8*int64(len(q.Having)), 0, int64(len(rows))*int64(len(q.Having)))
	}
	st.traceRows(len(kept), "having(%d of %d groups)", len(kept), len(rows))
	return kept
}

// orderLimit applies ORDER BY and LIMIT: a morsel-parallel top-k heap
// when both are present, a full deterministic sort for ORDER BY alone, a
// plain prefix for LIMIT alone. Rows arrive in canonical group-key order,
// so the kernel's index tie-break is the deterministic key-order
// tie-break the result contract requires.
func (pl *pipeline) orderLimit(st *pipeState, rows []Row) ([]Row, error) {
	q := &pl.q
	if len(q.OrderBy) == 0 {
		if q.Limit > 0 && len(rows) > q.Limit {
			rows = rows[:q.Limit]
			st.traceRows(len(rows), "limit(%d)", q.Limit)
		}
		return rows, nil
	}
	less := func(i, j int) bool {
		for _, k := range q.OrderBy {
			var a, b int64
			if k.Key {
				a, b = rows[i].Keys[k.Index], rows[j].Keys[k.Index]
			} else {
				a, b = rows[i].Vals[k.Index], rows[j].Vals[k.Index]
			}
			if a != b {
				if k.Desc {
					return a > b
				}
				return a < b
			}
		}
		return false
	}
	k := q.Limit
	if k <= 0 || k > len(rows) {
		k = len(rows)
	}
	bytesPer := int64(8 * (len(q.GroupBy) + len(q.Aggs)))
	idx := bulk.TopKPar(st.pp, st.m, len(rows), k, bytesPer, less)
	out := make([]Row, len(idx))
	for i, at := range idx {
		out[i] = rows[at]
	}
	if q.Limit > 0 && q.Limit < len(rows) {
		st.traceRows(len(out), "order.topk(%s, k=%d of %d groups)", describeOrder(q), q.Limit, len(rows))
	} else {
		st.traceRows(len(out), "order.sort(%s)", describeOrder(q))
	}
	return out, nil
}

// dropHidden truncates each row's values to the visible aggregates,
// discarding the HAVING/ORDER BY-only columns.
func dropHidden(q *Query, rows []Row) []Row {
	visible := 0
	for _, a := range q.Aggs {
		if !a.Hidden {
			visible++
		}
	}
	if visible == len(q.Aggs) {
		return rows
	}
	for i := range rows {
		rows[i].Vals = rows[i].Vals[:visible]
	}
	return rows
}

// ---- Pipeline description (\explain) ----

// Describe renders the assembled pipeline without executing it: the scan
// strategy, the cost-ordered filters with their estimated selectivities,
// the join chain, and the delta / grouping / having / top-k stages.
func (pl *pipeline) describe() []string {
	q := &pl.q
	mode := "ar"
	if pl.classic {
		mode = "classic"
	}
	// The running estimate folds each operator's selectivity into the live
	// base cardinality, so every rendered operator carries the planner's
	// predicted output rows. One estimate-free link (a filter on a column
	// with no decomposition) poisons the rest of the chain to n/a.
	est := float64(pl.snap.fact.LiveBase())
	known := true
	fold := func(sel float64, src estSource) string {
		if src == estNone || !known {
			known = false
			return " est=n/a (no stats)"
		}
		est *= sel
		return fmt.Sprintf(" (est sel %s, est=%d rows)", pctText(sel), int64(est+0.5))
	}
	var out []string
	out = append(out, fmt.Sprintf("pipeline: mode=%s over %s", mode, q.Table))
	if pl.classic {
		out = append(out, fmt.Sprintf("  scan: classic row-major base of %s (filters in written order) est=%d rows", q.Table, int64(est)))
	} else {
		out = append(out, fmt.Sprintf("  scan: a&r bit-sliced base of %s (filters cost-ordered by estimated selectivity) est=%d rows", q.Table, int64(est)))
	}
	for _, rf := range pl.factFilters {
		out = append(out, fmt.Sprintf("    filter %s.%s in %s%s", q.Table, rf.f.Col, rangeText(rf.f), fold(rf.sel, rf.src)))
	}
	for _, g := range pl.orGroups {
		parts := make([]string, len(g.filters))
		for i, f := range g.filters {
			parts[i] = fmt.Sprintf("%s.%s in %s", q.Table, f.Col, rangeText(f))
		}
		suffix := " est=n/a (no stats)"
		if known && g.src != estNone {
			est *= g.sel
			suffix = fmt.Sprintf(" (est sel <= %s, est=%d rows)", pctText(g.sel), int64(est+0.5))
		} else {
			known = false
		}
		out = append(out, fmt.Sprintf("    or: %s%s", strings.Join(parts, " | "), suffix))
	}
	for i, j := range pl.joins {
		out = append(out, fmt.Sprintf("  join %d/%d: %s.%s -> %s.%s (fk probe)%s",
			i+1, len(pl.joins), q.Table, j.spec.FKCol, j.spec.Dim, j.spec.DimPK, fold(j.sel, j.src)))
		for _, rf := range j.dimFilters {
			out = append(out, fmt.Sprintf("    filter %s.%s in %s%s", j.spec.Dim, rf.f.Col, rangeText(rf.f), fold(rf.sel, rf.src)))
		}
	}
	if n := pl.snap.fact.DeltaLen(); n > 0 {
		out = append(out, fmt.Sprintf("  delta: %d rows scanned row-major, merged before grouping", n))
	} else {
		out = append(out, "  delta: none")
	}
	if len(q.GroupBy) > 0 {
		how := "host rebuild over combined tuples"
		if !pl.classic && !pl.noDevGroup && pl.snap.fact.LiveDelta() == 0 {
			how = "device pre-group + refine"
		}
		line := fmt.Sprintf("  group: %s (%s)", join(q.GroupBy), how)
		if h := stats.FromColumn(pl.snap.get(q.Table, q.GroupBy[0])); h != nil {
			line += fmt.Sprintf(" est<=%d groups", h.Distinct())
		}
		out = append(out, line)
	}
	var aggs []string
	for _, a := range q.Aggs {
		label := fmt.Sprintf("%s=%s(%s)", a.Name, a.Func, exprText(a.Expr))
		if a.Hidden {
			label += " [hidden]"
		}
		aggs = append(aggs, label)
	}
	if len(aggs) > 0 {
		out = append(out, "  aggregate: "+strings.Join(aggs, ", "))
	}
	for _, h := range q.Having {
		out = append(out, fmt.Sprintf("  having: %s in %s", q.Aggs[h.Agg].Name, rangeText(Filter{Lo: h.Lo, Hi: h.Hi})))
	}
	if len(q.OrderBy) > 0 {
		kind := "full sort"
		if q.Limit > 0 {
			kind = fmt.Sprintf("top-%d heap", q.Limit)
		}
		out = append(out, fmt.Sprintf("  order: %s (%s)", describeOrder(q), kind))
	} else if q.Limit > 0 {
		out = append(out, fmt.Sprintf("  limit: %d", q.Limit))
	}
	return out
}

// ExplainQuery assembles the pipeline the query would run — classic or
// A&R — and renders it without executing: the programmatic face of the
// shell's \explain.
func (c *Catalog) ExplainQuery(q Query, classic bool) ([]string, error) {
	if p, ok := c.Partitioned(q.Table); ok {
		return c.explainScatter(q, classic, p)
	}
	var snap *execSnap
	var err error
	if classic {
		snap, err = q.validateClassic(c)
	} else {
		snap, err = q.validate(c)
	}
	if err != nil {
		return nil, err
	}
	return buildPipeline(q, snap, classic).describe(), nil
}

func describeOrder(q *Query) string {
	parts := make([]string, len(q.OrderBy))
	for i, k := range q.OrderBy {
		name := ""
		if k.Key {
			name = q.GroupBy[k.Index]
		} else {
			name = q.Aggs[k.Index].Name
		}
		dir := "asc"
		if k.Desc {
			dir = "desc"
		}
		parts[i] = name + " " + dir
	}
	return strings.Join(parts, ", ")
}

func rangeText(f Filter) string {
	lo, hi := "-inf", "+inf"
	if f.Lo != NoLo {
		lo = fmt.Sprintf("%d", f.Lo)
	}
	if f.Hi != NoHi {
		hi = fmt.Sprintf("%d", f.Hi)
	}
	return fmt.Sprintf("[%s,%s]", lo, hi)
}

func pctText(sel float64) string {
	return fmt.Sprintf("%.2f%%", sel*100)
}

func exprText(e Expr) string {
	if e == nil {
		return "*"
	}
	return e.String()
}

// ---- Shared aggregation operators ----

// aggregateRows evaluates the aggregate expressions over the exact values
// and groups them. Rows come out in group-discovery order; the caller
// establishes the canonical key order (sortRows) before HAVING and
// ORDER BY run.
func aggregateRows(m *device.Meter, pp par.P, q Query, ctx *exprCtx, grouping *bulk.Grouping, groupKeys [][]int64, fused bool) ([]Row, error) {
	threads := pp.NThreads()
	bulkMeter := m
	if m != nil && fused {
		// A&R refinement: one fused pass evaluates all expressions and
		// aggregates, reading each referenced column once (§V-C static
		// type expansion). Charge it here and run the arithmetic below
		// unmetered.
		uniq := map[ColRef]bool{}
		var nodes int
		for _, a := range q.Aggs {
			nodes++ // the aggregate update itself
			if a.Expr == nil {
				continue
			}
			nodes += a.Expr.Ops()
			for _, ref := range a.Expr.Cols() {
				uniq[ref] = true
			}
		}
		n := int64(ctx.n)
		bytes := n * 8 * int64(len(uniq))
		if grouping != nil {
			bytes += n * 4 // group ids
		}
		m.CPUWork(threads, bytes, 0, n*int64(nodes)*bulk.OpsArith)
		bulkMeter = nil
	} else if m != nil {
		// Classic bulk evaluation fully materializes one intermediate per
		// arithmetic node (§II-B); the aggregate passes below charge
		// separately through bulkMeter.
		for _, a := range q.Aggs {
			if a.Expr == nil {
				continue
			}
			if ops := a.Expr.Ops(); ops > 0 {
				n := int64(ctx.n)
				m.CPUWork(threads, n*24*int64(ops), 0, n*int64(ops)*bulk.OpsArith)
			}
		}
	}
	m = bulkMeter
	if grouping == nil {
		row := Row{}
		for _, a := range q.Aggs {
			v, err := globalAgg(m, pp, a, ctx)
			if err != nil {
				return nil, err
			}
			row.Vals = append(row.Vals, v)
		}
		return []Row{row}, nil
	}
	rows := make([]Row, grouping.NGroups)
	for g := 0; g < grouping.NGroups; g++ {
		keys := make([]int64, len(groupKeys))
		for k := range groupKeys {
			keys[k] = groupKeys[k][g]
		}
		rows[g].Keys = keys
	}
	for _, a := range q.Aggs {
		var per []int64
		switch a.Func {
		case Count:
			per = bulk.CountGroupedPar(pp, m, grouping)
		case Sum:
			per = bulk.SumGroupedPar(pp, m, a.Expr.Eval(ctx), grouping)
		case Min:
			per = bulk.MinGroupedPar(pp, m, a.Expr.Eval(ctx), grouping)
		case Max:
			per = bulk.MaxGroupedPar(pp, m, a.Expr.Eval(ctx), grouping)
		case Avg:
			sums := bulk.SumGroupedPar(pp, m, a.Expr.Eval(ctx), grouping)
			counts := bulk.CountGroupedPar(pp, m, grouping)
			per = mem.I64.GetN(len(sums))
			for i := range per {
				per[i] = 0
				if counts[i] > 0 {
					per[i] = sums[i] / counts[i]
				}
			}
			mem.I64.Put(sums)
			mem.I64.Put(counts)
		default:
			return nil, fmt.Errorf("plan: unsupported aggregate %v", a.Func)
		}
		for g := range rows {
			rows[g].Vals = append(rows[g].Vals, per[g])
		}
		mem.I64.Put(per)
	}
	return rows, nil
}

func globalAgg(m *device.Meter, pp par.P, a AggSpec, ctx *exprCtx) (int64, error) {
	switch a.Func {
	case Count:
		return int64(ctx.n), nil
	case Sum:
		return bulk.SumPar(pp, m, a.Expr.Eval(ctx)), nil
	case Min:
		v, _ := bulk.MinPar(pp, m, a.Expr.Eval(ctx))
		return v, nil
	case Max:
		v, _ := bulk.MaxPar(pp, m, a.Expr.Eval(ctx))
		return v, nil
	case Avg:
		vals := a.Expr.Eval(ctx)
		if len(vals) == 0 {
			return 0, nil
		}
		return bulk.SumPar(pp, m, vals) / int64(len(vals)), nil
	default:
		return 0, fmt.Errorf("plan: unsupported aggregate %v", a.Func)
	}
}

// inputBytes sums the physical footprint of every column the query reads —
// the stream-baseline input volume — over the pinned snapshots, including
// the row-major delta segment when present.
func (s *execSnap) inputBytes(q Query) int64 {
	seen := map[string]bool{}
	var total int64
	add := func(table, col string) error {
		key := table + "." + col
		if seen[key] {
			return nil
		}
		seen[key] = true
		b, err := s.snapFor(table).Column(col)
		if err != nil {
			return nil // validation already rejected truly unknown columns
		}
		total += b.TailBytes()
		return nil
	}
	_ = q.walkCols(add)
	total += s.fact.DeltaBytes()
	return total
}

func join(ss []string) string {
	return strings.Join(ss, ",")
}
