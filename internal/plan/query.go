package plan

import (
	"fmt"
	"math"

	"repro/internal/ar"
)

// Query is the logical query model: a selection over a fact table written
// as a conjunction of range predicates (Filters) and range disjunctions
// (Or), foreign-key joins into any number of dimension tables with further
// dimension-side selections (star schema), a grouping, aggregates over
// arithmetic expressions, a HAVING conjunction over the aggregates, and an
// ORDER BY / LIMIT over the output rows. The paper's entire workload — the
// microbenchmarks, the spatial range queries (Table I) and TPC-H Q1, Q6
// and Q14 — is the single-join conjunctive subset; the pipeline layer
// executes every shape through the same composable operator set (§IV).
type Query struct {
	Table   string
	Filters []Filter
	// Or holds disjunction groups, each ANDed with Filters and the other
	// groups: a row qualifies for a group when at least one of the group's
	// fact-side range predicates holds. In A&R mode a group is one
	// approximate operator — the union of the per-disjunct candidate sets,
	// each disjunct relaxed through its own BWD bounds.
	Or      [][]Filter
	Joins   []JoinSpec
	GroupBy []string
	// Aggs lists the aggregates, visible outputs first: aggregates that
	// exist only to feed HAVING or ORDER BY (Hidden) are appended after
	// every visible one, and their values are dropped from the result rows.
	Aggs   []AggSpec
	Having []HavingFilter
	// OrderBy sorts the output rows; without it rows are in group-key
	// order. Limit (when > 0) caps the output — combined with OrderBy it
	// runs as a morsel-parallel top-k heap instead of a full sort.
	OrderBy []OrderKey
	Limit   int
}

// HavingFilter is one conjunct of the HAVING clause: a closed-range
// predicate over the aggregate at index Agg in Query.Aggs (canonicalized
// exactly like WHERE ranges).
type HavingFilter struct {
	Agg    int
	Lo, Hi int64
}

// OrderKey is one ORDER BY sort column: a group key (Key true, Index into
// GroupBy) or an aggregate (Index into Aggs). Ties — and everything, when
// OrderBy is empty — break by the full key tuple then the aggregate
// values, ascending, so output order is deterministic in both executors
// for every worker count.
type OrderKey struct {
	Key   bool
	Index int
	Desc  bool
}

// Filter is a closed-range predicate lo <= col <= hi. Open-ended and
// strict comparisons are canonicalized into this form at integer
// granularity (v < x  ≡  v <= x-1), matching the paper's f(x) coverage.
type Filter struct {
	Col    string
	Lo, Hi int64
}

// NoLo and NoHi are the open bounds for one-sided filters.
const (
	NoLo = math.MinInt64
	NoHi = math.MaxInt64
)

// JoinSpec joins the fact table to one dimension table over a pre-indexed
// foreign key; DimFilters are applied to the joined dimension rows. A
// query may carry several (star schema); each dimension table appears at
// most once in the chain.
type JoinSpec struct {
	FKCol      string // fact-side foreign-key column
	Dim        string // dimension table name
	DimPK      string // dimension primary-key column (dense)
	DimFilters []Filter
}

// AggFunc enumerates the supported aggregation functions.
type AggFunc int

// Aggregation functions.
const (
	Sum AggFunc = iota
	Count
	Min
	Max
	Avg
)

func (f AggFunc) String() string {
	switch f {
	case Sum:
		return "sum"
	case Count:
		return "count"
	case Min:
		return "min"
	case Max:
		return "max"
	case Avg:
		return "avg"
	default:
		return fmt.Sprintf("AggFunc(%d)", int(f))
	}
}

// AggSpec is one output aggregate: Func applied to Expr (Expr may be nil
// for Count). Hidden aggregates are computed for HAVING / ORDER BY only
// and never appear in the result rows.
type AggSpec struct {
	Name   string
	Func   AggFunc
	Expr   Expr
	Hidden bool
}

// exprCtx provides the exact column values (positionally aligned with the
// refined tuple set) to expression evaluation, keyed by column reference —
// fact columns and the joined attributes of every dimension.
type exprCtx struct {
	n    int
	vals map[ColRef][]int64
}

// boundsCtx provides per-tuple value intervals derived from approximations
// for the approximate (phase-A) answer.
type boundsCtx struct {
	n    int
	vals map[ColRef][]ar.Interval
}

// Expr is an arithmetic expression over column values. Eval computes exact
// values; Bounds computes conservative per-tuple intervals from
// approximations (used for the approximate query answer and predicate
// relaxation, §III). Cols reports the referenced columns.
type Expr interface {
	Eval(ctx *exprCtx) []int64
	Bounds(ctx *boundsCtx) []ar.Interval
	Cols() []ColRef
	// Ops counts the bulk-operator passes the expression costs: one fully
	// materialized map per arithmetic/case node (§II-B).
	Ops() int
	String() string
}

// ColRef names a column: Dim is the dimension table holding it, or empty
// for the fact table.
type ColRef struct {
	Name string
	Dim  string
}

// IsDim reports whether the reference names a dimension column.
func (r ColRef) IsDim() bool { return r.Dim != "" }

// Col references a fact-table column.
func Col(name string) Expr { return colExpr{ColRef{Name: name}} }

// DimCol references a column of the joined dimension table dim.
func DimCol(dim, name string) Expr { return colExpr{ColRef{Name: name, Dim: dim}} }

type colExpr struct{ ref ColRef }

func (e colExpr) Eval(ctx *exprCtx) []int64 { return ctx.vals[e.ref] }

func (e colExpr) Bounds(ctx *boundsCtx) []ar.Interval { return ctx.vals[e.ref] }

func (e colExpr) Cols() []ColRef { return []ColRef{e.ref} }

func (e colExpr) Ops() int { return 0 }

func (e colExpr) String() string {
	if e.ref.IsDim() {
		return e.ref.Dim + "." + e.ref.Name
	}
	return e.ref.Name
}

// Const is a constant expression.
func Const(v int64) Expr { return constExpr(v) }

type constExpr int64

func (e constExpr) Eval(ctx *exprCtx) []int64 {
	out := make([]int64, ctx.n)
	for i := range out {
		out[i] = int64(e)
	}
	return out
}

func (e constExpr) Bounds(ctx *boundsCtx) []ar.Interval {
	out := make([]ar.Interval, ctx.n)
	for i := range out {
		out[i] = ar.Exact(int64(e))
	}
	return out
}

func (e constExpr) Cols() []ColRef { return nil }

func (e constExpr) Ops() int { return 0 }

func (e constExpr) String() string { return fmt.Sprintf("%d", int64(e)) }

type binExpr struct {
	op    string
	a, b  Expr
	scale int64 // for fixed-point mul
}

// Add returns a+b.
func Add(a, b Expr) Expr { return binExpr{op: "add", a: a, b: b} }

// Sub returns a-b.
func Sub(a, b Expr) Expr { return binExpr{op: "sub", a: a, b: b} }

// MulScaled returns the fixed-point product (a*b)/scale. Per §IV-G this
// operation is destructively distributive: its exact value is always
// recomputed on the CPU from reconstructed inputs, never refined from the
// approximate product.
func MulScaled(a, b Expr, scale int64) Expr { return binExpr{op: "mul", a: a, b: b, scale: scale} }

func (e binExpr) Eval(ctx *exprCtx) []int64 {
	av, bv := e.a.Eval(ctx), e.b.Eval(ctx)
	out := make([]int64, len(av))
	switch e.op {
	case "add":
		for i := range out {
			out[i] = av[i] + bv[i]
		}
	case "sub":
		for i := range out {
			out[i] = av[i] - bv[i]
		}
	case "mul":
		for i := range out {
			out[i] = av[i] * bv[i] / e.scale
		}
	}
	return out
}

func (e binExpr) Bounds(ctx *boundsCtx) []ar.Interval {
	av, bv := e.a.Bounds(ctx), e.b.Bounds(ctx)
	out := make([]ar.Interval, len(av))
	switch e.op {
	case "add":
		for i := range out {
			out[i] = av[i].Add(bv[i])
		}
	case "sub":
		for i := range out {
			out[i] = av[i].Sub(bv[i])
		}
	case "mul":
		for i := range out {
			out[i] = av[i].MulScaled(bv[i], e.scale)
		}
	}
	return out
}

func (e binExpr) Cols() []ColRef { return append(e.a.Cols(), e.b.Cols()...) }

func (e binExpr) Ops() int { return e.a.Ops() + e.b.Ops() + 1 }

func (e binExpr) String() string {
	sym := map[string]string{"add": "+", "sub": "-", "mul": "*"}[e.op]
	return fmt.Sprintf("(%s %s %s)", e.a, sym, e.b)
}

// CaseRange returns `then` where lo <= cond <= hi and `els` elsewhere —
// the dictionary-range CASE of TPC-H Q14 after the paper's prefix-to-range
// rewrite (§VI-D1).
func CaseRange(cond Expr, lo, hi int64, then, els Expr) Expr {
	return caseExpr{cond: cond, lo: lo, hi: hi, then: then, els: els}
}

type caseExpr struct {
	cond   Expr
	lo, hi int64
	then   Expr
	els    Expr
}

func (e caseExpr) Eval(ctx *exprCtx) []int64 {
	cv := e.cond.Eval(ctx)
	tv := e.then.Eval(ctx)
	ev := e.els.Eval(ctx)
	out := make([]int64, len(cv))
	for i := range out {
		if cv[i] >= e.lo && cv[i] <= e.hi {
			out[i] = tv[i]
		} else {
			out[i] = ev[i]
		}
	}
	return out
}

func (e caseExpr) Bounds(ctx *boundsCtx) []ar.Interval {
	cv := e.cond.Bounds(ctx)
	tv := e.then.Bounds(ctx)
	ev := e.els.Bounds(ctx)
	out := make([]ar.Interval, len(cv))
	for i := range out {
		switch {
		case cv[i].Lo >= e.lo && cv[i].Hi <= e.hi:
			out[i] = tv[i] // certainly inside
		case cv[i].Hi < e.lo || cv[i].Lo > e.hi:
			out[i] = ev[i] // certainly outside
		default: // undecidable from the approximation: union of branches
			lo, hi := tv[i].Lo, tv[i].Hi
			if ev[i].Lo < lo {
				lo = ev[i].Lo
			}
			if ev[i].Hi > hi {
				hi = ev[i].Hi
			}
			out[i] = ar.Interval{Lo: lo, Hi: hi}
		}
	}
	return out
}

func (e caseExpr) Cols() []ColRef {
	out := e.cond.Cols()
	out = append(out, e.then.Cols()...)
	return append(out, e.els.Cols()...)
}

func (e caseExpr) Ops() int { return e.cond.Ops() + e.then.Ops() + e.els.Ops() + 1 }

func (e caseExpr) String() string {
	return fmt.Sprintf("case(%d<=%s<=%d ? %s : %s)", e.lo, e.cond, e.hi, e.then, e.els)
}
