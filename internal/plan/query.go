package plan

import (
	"fmt"
	"math"

	"repro/internal/ar"
)

// Query is the logical query model: a conjunctive range selection over a
// fact table, an optional foreign-key join into one dimension table with
// further dimension-side selections, a grouping, and a list of aggregates
// over arithmetic expressions. This shape covers the paper's entire
// workload — the microbenchmarks, the spatial range queries (Table I) and
// TPC-H Q1, Q6 and Q14 — and is exactly the class of plans the A&R
// operator set supports (§IV).
type Query struct {
	Table   string
	Filters []Filter
	Join    *JoinSpec
	GroupBy []string
	Aggs    []AggSpec
}

// Filter is a closed-range predicate lo <= col <= hi. Open-ended and
// strict comparisons are canonicalized into this form at integer
// granularity (v < x  ≡  v <= x-1), matching the paper's f(x) coverage.
type Filter struct {
	Col    string
	Lo, Hi int64
}

// NoLo and NoHi are the open bounds for one-sided filters.
const (
	NoLo = math.MinInt64
	NoHi = math.MaxInt64
)

// JoinSpec joins the fact table to one dimension table over a pre-indexed
// foreign key; DimFilters are applied to the joined dimension rows.
type JoinSpec struct {
	FKCol      string // fact-side foreign-key column
	Dim        string // dimension table name
	DimPK      string // dimension primary-key column (dense)
	DimFilters []Filter
}

// AggFunc enumerates the supported aggregation functions.
type AggFunc int

// Aggregation functions.
const (
	Sum AggFunc = iota
	Count
	Min
	Max
	Avg
)

func (f AggFunc) String() string {
	switch f {
	case Sum:
		return "sum"
	case Count:
		return "count"
	case Min:
		return "min"
	case Max:
		return "max"
	case Avg:
		return "avg"
	default:
		return fmt.Sprintf("AggFunc(%d)", int(f))
	}
}

// AggSpec is one output aggregate: Func applied to Expr (Expr may be nil
// for Count).
type AggSpec struct {
	Name string
	Func AggFunc
	Expr Expr
}

// exprCtx provides the exact column values (positionally aligned with the
// refined tuple set) to expression evaluation. Dim columns are the joined
// dimension attributes.
type exprCtx struct {
	n    int
	fact map[string][]int64
	dim  map[string][]int64
}

// boundsCtx provides per-tuple value intervals derived from approximations
// for the approximate (phase-A) answer.
type boundsCtx struct {
	n    int
	fact map[string][]ar.Interval
	dim  map[string][]ar.Interval
}

// Expr is an arithmetic expression over column values. Eval computes exact
// values; Bounds computes conservative per-tuple intervals from
// approximations (used for the approximate query answer and predicate
// relaxation, §III). Cols reports the referenced columns.
type Expr interface {
	Eval(ctx *exprCtx) []int64
	Bounds(ctx *boundsCtx) []ar.Interval
	Cols() []ColRef
	// Ops counts the bulk-operator passes the expression costs: one fully
	// materialized map per arithmetic/case node (§II-B).
	Ops() int
	String() string
}

// ColRef names a column, either on the fact table or the joined dimension.
type ColRef struct {
	Name string
	Dim  bool
}

// Col references a fact-table column.
func Col(name string) Expr { return colExpr{ColRef{Name: name}} }

// DimCol references a joined dimension column.
func DimCol(name string) Expr { return colExpr{ColRef{Name: name, Dim: true}} }

type colExpr struct{ ref ColRef }

func (e colExpr) Eval(ctx *exprCtx) []int64 {
	if e.ref.Dim {
		return ctx.dim[e.ref.Name]
	}
	return ctx.fact[e.ref.Name]
}

func (e colExpr) Bounds(ctx *boundsCtx) []ar.Interval {
	if e.ref.Dim {
		return ctx.dim[e.ref.Name]
	}
	return ctx.fact[e.ref.Name]
}

func (e colExpr) Cols() []ColRef { return []ColRef{e.ref} }

func (e colExpr) Ops() int { return 0 }

func (e colExpr) String() string {
	if e.ref.Dim {
		return "dim." + e.ref.Name
	}
	return e.ref.Name
}

// Const is a constant expression.
func Const(v int64) Expr { return constExpr(v) }

type constExpr int64

func (e constExpr) Eval(ctx *exprCtx) []int64 {
	out := make([]int64, ctx.n)
	for i := range out {
		out[i] = int64(e)
	}
	return out
}

func (e constExpr) Bounds(ctx *boundsCtx) []ar.Interval {
	out := make([]ar.Interval, ctx.n)
	for i := range out {
		out[i] = ar.Exact(int64(e))
	}
	return out
}

func (e constExpr) Cols() []ColRef { return nil }

func (e constExpr) Ops() int { return 0 }

func (e constExpr) String() string { return fmt.Sprintf("%d", int64(e)) }

type binExpr struct {
	op    string
	a, b  Expr
	scale int64 // for fixed-point mul
}

// Add returns a+b.
func Add(a, b Expr) Expr { return binExpr{op: "add", a: a, b: b} }

// Sub returns a-b.
func Sub(a, b Expr) Expr { return binExpr{op: "sub", a: a, b: b} }

// MulScaled returns the fixed-point product (a*b)/scale. Per §IV-G this
// operation is destructively distributive: its exact value is always
// recomputed on the CPU from reconstructed inputs, never refined from the
// approximate product.
func MulScaled(a, b Expr, scale int64) Expr { return binExpr{op: "mul", a: a, b: b, scale: scale} }

func (e binExpr) Eval(ctx *exprCtx) []int64 {
	av, bv := e.a.Eval(ctx), e.b.Eval(ctx)
	out := make([]int64, len(av))
	switch e.op {
	case "add":
		for i := range out {
			out[i] = av[i] + bv[i]
		}
	case "sub":
		for i := range out {
			out[i] = av[i] - bv[i]
		}
	case "mul":
		for i := range out {
			out[i] = av[i] * bv[i] / e.scale
		}
	}
	return out
}

func (e binExpr) Bounds(ctx *boundsCtx) []ar.Interval {
	av, bv := e.a.Bounds(ctx), e.b.Bounds(ctx)
	out := make([]ar.Interval, len(av))
	switch e.op {
	case "add":
		for i := range out {
			out[i] = av[i].Add(bv[i])
		}
	case "sub":
		for i := range out {
			out[i] = av[i].Sub(bv[i])
		}
	case "mul":
		for i := range out {
			out[i] = av[i].MulScaled(bv[i], e.scale)
		}
	}
	return out
}

func (e binExpr) Cols() []ColRef { return append(e.a.Cols(), e.b.Cols()...) }

func (e binExpr) Ops() int { return e.a.Ops() + e.b.Ops() + 1 }

func (e binExpr) String() string {
	sym := map[string]string{"add": "+", "sub": "-", "mul": "*"}[e.op]
	return fmt.Sprintf("(%s %s %s)", e.a, sym, e.b)
}

// CaseRange returns `then` where lo <= cond <= hi and `els` elsewhere —
// the dictionary-range CASE of TPC-H Q14 after the paper's prefix-to-range
// rewrite (§VI-D1).
func CaseRange(cond Expr, lo, hi int64, then, els Expr) Expr {
	return caseExpr{cond: cond, lo: lo, hi: hi, then: then, els: els}
}

type caseExpr struct {
	cond   Expr
	lo, hi int64
	then   Expr
	els    Expr
}

func (e caseExpr) Eval(ctx *exprCtx) []int64 {
	cv := e.cond.Eval(ctx)
	tv := e.then.Eval(ctx)
	ev := e.els.Eval(ctx)
	out := make([]int64, len(cv))
	for i := range out {
		if cv[i] >= e.lo && cv[i] <= e.hi {
			out[i] = tv[i]
		} else {
			out[i] = ev[i]
		}
	}
	return out
}

func (e caseExpr) Bounds(ctx *boundsCtx) []ar.Interval {
	cv := e.cond.Bounds(ctx)
	tv := e.then.Bounds(ctx)
	ev := e.els.Bounds(ctx)
	out := make([]ar.Interval, len(cv))
	for i := range out {
		switch {
		case cv[i].Lo >= e.lo && cv[i].Hi <= e.hi:
			out[i] = tv[i] // certainly inside
		case cv[i].Hi < e.lo || cv[i].Lo > e.hi:
			out[i] = ev[i] // certainly outside
		default: // undecidable from the approximation: union of branches
			lo, hi := tv[i].Lo, tv[i].Hi
			if ev[i].Lo < lo {
				lo = ev[i].Lo
			}
			if ev[i].Hi > hi {
				hi = ev[i].Hi
			}
			out[i] = ar.Interval{Lo: lo, Hi: hi}
		}
	}
	return out
}

func (e caseExpr) Cols() []ColRef {
	out := e.cond.Cols()
	out = append(out, e.then.Cols()...)
	return append(out, e.els.Cols()...)
}

func (e caseExpr) Ops() int { return e.cond.Ops() + e.then.Ops() + e.els.Ops() + 1 }

func (e caseExpr) String() string {
	return fmt.Sprintf("case(%d<=%s<=%d ? %s : %s)", e.lo, e.cond, e.hi, e.then, e.els)
}
