package plan

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bat"
	"repro/internal/device"
)

// buildStarCatalog creates a star schema — a fact table with two foreign
// keys into two dimension tables — with every touched column decomposed
// and FK indexes built, for the widened-query-surface tests.
func buildStarCatalog(t *testing.T, n int, seed int64) *Catalog {
	t.Helper()
	c := NewCatalog(device.PaperSystem())
	rng := rand.New(rand.NewSource(seed))

	addDim := func(name string, dimN int, attr string) {
		d := NewTable(name)
		pk := make([]int64, dimN)
		av := make([]int64, dimN)
		for i := range pk {
			pk[i] = int64(i)
			av[i] = int64(rng.Intn(100))
		}
		if err := d.AddColumn("id", bat.NewDense(pk, bat.Width32)); err != nil {
			t.Fatal(err)
		}
		if err := d.AddColumn(attr, bat.NewDense(av, bat.Width32)); err != nil {
			t.Fatal(err)
		}
		if err := c.AddTable(d); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Decompose(name, attr, 5); err != nil {
			t.Fatal(err)
		}
		if err := c.BuildFKIndex(name, "id"); err != nil {
			t.Fatal(err)
		}
	}
	addDim("dim1", 40, "a")
	addDim("dim2", 25, "b")

	fact := NewTable("fact")
	cols := map[string][]int64{}
	for _, name := range []string{"v", "w", "g", "fk1", "fk2"} {
		cols[name] = make([]int64, n)
	}
	for i := 0; i < n; i++ {
		cols["v"][i] = int64(rng.Intn(4096))
		cols["w"][i] = int64(rng.Intn(4096))
		cols["g"][i] = int64(rng.Intn(5))
		cols["fk1"][i] = int64(rng.Intn(40))
		cols["fk2"][i] = int64(rng.Intn(25))
	}
	for _, name := range []string{"v", "w", "g", "fk1", "fk2"} {
		if err := fact.AddColumn(name, bat.NewDense(cols[name], bat.Width32)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.AddTable(fact); err != nil {
		t.Fatal(err)
	}
	for col, bits := range map[string]uint{"v": 8, "w": 6, "g": 3, "fk1": 32, "fk2": 32} {
		if _, err := c.Decompose("fact", col, bits); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// starJoins is the two-dimension join chain of the star catalog.
func starJoins(dim1Filters, dim2Filters []Filter) []JoinSpec {
	return []JoinSpec{
		{FKCol: "fk1", Dim: "dim1", DimPK: "id", DimFilters: dim1Filters},
		{FKCol: "fk2", Dim: "dim2", DimPK: "id", DimFilters: dim2Filters},
	}
}

// newShapeQueries is the widened-surface query mix: multi-join, OR,
// HAVING, ORDER BY/LIMIT — alone and combined.
func newShapeQueries(rng *rand.Rand) []Query {
	lo := int64(rng.Intn(3000))
	hi := lo + int64(rng.Intn(2000))
	alo := int64(rng.Intn(60))
	return []Query{
		{ // two dimension joins with filters on both dimensions
			Table:   "fact",
			Filters: []Filter{{Col: "v", Lo: lo, Hi: hi}},
			Joins:   starJoins([]Filter{{Col: "a", Lo: alo, Hi: alo + 40}}, []Filter{{Col: "b", Lo: 10, Hi: 90}}),
			Aggs: []AggSpec{
				{Name: "n", Func: Count},
				{Name: "s", Func: Sum, Expr: Add(DimCol("dim1", "a"), DimCol("dim2", "b"))},
			},
		},
		{ // OR over ranges on two fact columns, with a conjunct
			Table:   "fact",
			Filters: []Filter{{Col: "g", Lo: 0, Hi: 3}},
			Or:      [][]Filter{{{Col: "v", Lo: 0, Hi: lo}, {Col: "w", Lo: hi, Hi: NoHi}}},
			Aggs:    []AggSpec{{Name: "n", Func: Count}, {Name: "s", Func: Sum, Expr: Col("w")}},
		},
		{ // OR alone (no conjunctive filters)
			Table: "fact",
			Or:    [][]Filter{{{Col: "v", Lo: 100, Hi: 400}, {Col: "v", Lo: 3000, Hi: 3600}}},
			Aggs:  []AggSpec{{Name: "n", Func: Count}},
		},
		{ // HAVING over a grouped aggregate, with a hidden aggregate
			Table:   "fact",
			Filters: []Filter{{Col: "v", Lo: lo, Hi: NoHi}},
			GroupBy: []string{"g"},
			Aggs: []AggSpec{
				{Name: "n", Func: Count},
				{Name: "hs", Func: Sum, Expr: Col("w"), Hidden: true},
			},
			Having: []HavingFilter{{Agg: 1, Lo: 1000, Hi: NoHi}},
		},
		{ // ORDER BY aggregate desc LIMIT 3 (top-k heap)
			Table:   "fact",
			GroupBy: []string{"g"},
			Aggs:    []AggSpec{{Name: "n", Func: Count}, {Name: "s", Func: Sum, Expr: Col("v")}},
			OrderBy: []OrderKey{{Index: 1, Desc: true}},
			Limit:   3,
		},
		{ // everything combined: joins + OR + HAVING + ORDER BY/LIMIT
			Table:   "fact",
			Filters: []Filter{{Col: "v", Lo: 0, Hi: 3500}},
			Or:      [][]Filter{{{Col: "w", Lo: 0, Hi: 2000}, {Col: "w", Lo: 3000, Hi: NoHi}}},
			Joins:   starJoins([]Filter{{Col: "a", Lo: 0, Hi: 80}}, nil),
			GroupBy: []string{"g"},
			Aggs: []AggSpec{
				{Name: "n", Func: Count},
				{Name: "s", Func: Sum, Expr: MulScaled(Col("w"), DimCol("dim1", "a"), 1)},
			},
			Having:  []HavingFilter{{Agg: 0, Lo: 2, Hi: NoHi}},
			OrderBy: []OrderKey{{Index: 1, Desc: true}, {Key: true, Index: 0}},
			Limit:   2,
		},
	}
}

// TestNewShapesARMatchesClassic asserts the widened query surface returns
// identical results under both scan strategies.
func TestNewShapesARMatchesClassic(t *testing.T) {
	c := buildStarCatalog(t, 20000, 11)
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 5; trial++ {
		for qi, q := range newShapeQueries(rng) {
			arRes, err := c.ExecAR(q, ExecOpts{})
			if err != nil {
				t.Fatalf("trial %d query %d ExecAR: %v", trial, qi, err)
			}
			clRes, err := c.ExecClassic(q, ExecOpts{})
			if err != nil {
				t.Fatalf("trial %d query %d ExecClassic: %v", trial, qi, err)
			}
			if !EqualResults(arRes.Rows, clRes.Rows) {
				t.Fatalf("trial %d query %d: A&R != classic\nAR:\n%s\nclassic:\n%s",
					trial, qi, FormatRows(arRes.Rows), FormatRows(clRes.Rows))
			}
		}
	}
}

// TestOrSemantics pins the disjunction semantics: OR of two ranges equals
// the union count computed from the separate range queries.
func TestOrSemantics(t *testing.T) {
	c := buildStarCatalog(t, 10000, 21)
	count := func(q Query) int64 {
		res, err := c.ExecClassic(q, ExecOpts{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Rows[0].Vals[0]
	}
	aggs := []AggSpec{{Name: "n", Func: Count}}
	a := count(Query{Table: "fact", Filters: []Filter{{Col: "v", Lo: 0, Hi: 1000}}, Aggs: aggs})
	b := count(Query{Table: "fact", Filters: []Filter{{Col: "w", Lo: 2000, Hi: 3000}}, Aggs: aggs})
	both := count(Query{Table: "fact", Filters: []Filter{{Col: "v", Lo: 0, Hi: 1000}, {Col: "w", Lo: 2000, Hi: 3000}}, Aggs: aggs})
	union := count(Query{Table: "fact", Or: [][]Filter{{{Col: "v", Lo: 0, Hi: 1000}, {Col: "w", Lo: 2000, Hi: 3000}}}, Aggs: aggs})
	if union != a+b-both {
		t.Fatalf("OR union %d != %d + %d - %d (inclusion-exclusion)", union, a, b, both)
	}
	arRes, err := c.ExecAR(Query{Table: "fact", Or: [][]Filter{{{Col: "v", Lo: 0, Hi: 1000}, {Col: "w", Lo: 2000, Hi: 3000}}}, Aggs: aggs}, ExecOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if arRes.Rows[0].Vals[0] != union {
		t.Fatalf("A&R OR count %d != classic %d", arRes.Rows[0].Vals[0], union)
	}
	// The phase-A count bounds must contain the exact union.
	if !arRes.Approx.Count.Contains(union) {
		t.Fatalf("approx count %v excludes exact %d", arRes.Approx.Count, union)
	}
}

// TestHavingAndTopK pins HAVING filtering and deterministic top-k: the
// limited result is the prefix of the fully ordered result, hidden
// aggregates never surface, and ties break by group key.
func TestHavingAndTopK(t *testing.T) {
	c := buildStarCatalog(t, 15000, 31)
	base := Query{
		Table:   "fact",
		GroupBy: []string{"g"},
		Aggs: []AggSpec{
			{Name: "n", Func: Count},
			{Name: "s", Func: Sum, Expr: Col("v")},
		},
		OrderBy: []OrderKey{{Index: 1, Desc: true}},
	}
	full, err := c.ExecAR(base, ExecOpts{})
	if err != nil {
		t.Fatal(err)
	}
	limited := base
	limited.Limit = 2
	top, err := c.ExecAR(limited, ExecOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(top.Rows) != 2 {
		t.Fatalf("LIMIT 2 returned %d rows", len(top.Rows))
	}
	if !EqualResults(top.Rows, full.Rows[:2]) {
		t.Fatalf("top-k %v is not the prefix of the full order %v", top.Rows, full.Rows[:2])
	}
	for i := 1; i < len(full.Rows); i++ {
		if full.Rows[i].Vals[1] > full.Rows[i-1].Vals[1] {
			t.Fatalf("rows not descending by s: %v", full.Rows)
		}
	}

	// HAVING with a hidden aggregate: the hidden value must not surface.
	hq := Query{
		Table:   "fact",
		GroupBy: []string{"g"},
		Aggs: []AggSpec{
			{Name: "n", Func: Count},
			{Name: "hs", Func: Sum, Expr: Col("v"), Hidden: true},
		},
		Having: []HavingFilter{{Agg: 1, Lo: 1, Hi: NoHi}},
	}
	res, err := c.ExecAR(hq, ExecOpts{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if len(r.Vals) != 1 {
			t.Fatalf("hidden aggregate surfaced in row %v", r)
		}
	}
	cl, err := c.ExecClassic(hq, ExecOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !EqualResults(res.Rows, cl.Rows) {
		t.Fatalf("HAVING: A&R %v != classic %v", res.Rows, cl.Rows)
	}
}

// TestDimFilterOrderingBySelectivity is the satellite regression: the
// optimizer's selectivity-driven filter ordering must extend to
// dimension-side filters — the narrow dimension predicate executes before
// the wide one regardless of the written order.
func TestDimFilterOrderingBySelectivity(t *testing.T) {
	c := NewCatalog(device.PaperSystem())
	rng := rand.New(rand.NewSource(41))

	dim := NewTable("dim")
	n, dimN := 8000, 64
	pk := make([]int64, dimN)
	wide := make([]int64, dimN)
	narrow := make([]int64, dimN)
	for i := range pk {
		pk[i] = int64(i)
		wide[i] = int64(rng.Intn(5000))
		narrow[i] = int64(rng.Intn(5000))
	}
	for name, vals := range map[string][]int64{"id": pk, "wide": wide, "narrow": narrow} {
		if err := dim.AddColumn(name, bat.NewDense(vals, bat.Width32)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.AddTable(dim); err != nil {
		t.Fatal(err)
	}
	fact := NewTable("fact")
	fk := make([]int64, n)
	v := make([]int64, n)
	for i := range fk {
		fk[i] = int64(rng.Intn(dimN))
		v[i] = int64(rng.Intn(5000))
	}
	if err := fact.AddColumn("fk", bat.NewDense(fk, bat.Width32)); err != nil {
		t.Fatal(err)
	}
	if err := fact.AddColumn("v", bat.NewDense(v, bat.Width32)); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTable(fact); err != nil {
		t.Fatal(err)
	}
	for col, bits := range map[string]uint{"fk": 32, "v": 8} {
		if _, err := c.Decompose("fact", col, bits); err != nil {
			t.Fatal(err)
		}
	}
	// Equal decomposition widths, so the relaxed-range fraction is the
	// only thing separating the two dimension filters.
	for _, col := range []string{"wide", "narrow"} {
		if _, err := c.Decompose("dim", col, 10); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.BuildFKIndex("dim", "id"); err != nil {
		t.Fatal(err)
	}

	q := Query{
		Table:   "fact",
		Filters: []Filter{{Col: "v", Lo: 0, Hi: 4999}},
		Joins: []JoinSpec{{FKCol: "fk", Dim: "dim", DimPK: "id",
			// Written wide-first: the optimizer must flip them.
			DimFilters: []Filter{
				{Col: "wide", Lo: 0, Hi: 4999},
				{Col: "narrow", Lo: 0, Hi: 49},
			}}},
		Aggs: []AggSpec{{Name: "n", Func: Count}},
	}
	res, err := c.ExecAR(q, ExecOpts{})
	if err != nil {
		t.Fatal(err)
	}
	var firstDim string
	for _, line := range res.Plan {
		if strings.Contains(line, "uselectapproximate(dim.") {
			firstDim = line
			break
		}
	}
	if !strings.Contains(firstDim, "narrow") {
		t.Errorf("dimension-side filters not reordered by selectivity: first dim select = %q\nplan:\n%s",
			firstDim, strings.Join(res.Plan, "\n"))
	}
	// The reorder must not change the answer.
	cl, err := c.ExecClassic(q, ExecOpts{})
	if err != nil {
		t.Fatal(err)
	}
	arRes, err := c.ExecAR(q, ExecOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !EqualResults(arRes.Rows, cl.Rows) {
		t.Fatal("dimension filter reorder changed the result")
	}
}

// TestExplainQueryRendersPipeline checks the \explain rendering: scan
// strategy, cost-ordered filters with selectivities, join chain, delta
// and top-k stage markers.
func TestExplainQueryRendersPipeline(t *testing.T) {
	c := buildStarCatalog(t, 5000, 51)
	q := Query{
		Table:   "fact",
		Filters: []Filter{{Col: "v", Lo: 0, Hi: 100}},
		Or:      [][]Filter{{{Col: "w", Lo: 0, Hi: 50}, {Col: "w", Lo: 4000, Hi: NoHi}}},
		Joins:   starJoins([]Filter{{Col: "a", Lo: 0, Hi: 10}}, nil),
		GroupBy: []string{"g"},
		Aggs:    []AggSpec{{Name: "n", Func: Count}, {Name: "s", Func: Sum, Expr: Col("w")}},
		OrderBy: []OrderKey{{Index: 1, Desc: true}},
		Limit:   3,
	}
	lines, err := c.ExplainQuery(q, false)
	if err != nil {
		t.Fatal(err)
	}
	text := strings.Join(lines, "\n")
	for _, want := range []string{
		"mode=ar",
		"a&r bit-sliced base of fact",
		"est sel",
		"or: fact.w in [0,50] | fact.w in [4000,+inf]",
		"join 1/2: fact.fk1 -> dim1.id",
		"join 2/2: fact.fk2 -> dim2.id",
		"filter dim1.a in [0,10]",
		"delta: none",
		"group: g",
		"order: s desc (top-3 heap)",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("explain output missing %q:\n%s", want, text)
		}
	}
	// Delta presence must be reflected.
	if _, err := c.InsertRows(nil, "fact", [][]int64{{1, 2, 3, 0, 0}}); err != nil {
		t.Fatal(err)
	}
	lines, err = c.ExplainQuery(q, true)
	if err != nil {
		t.Fatal(err)
	}
	text = strings.Join(lines, "\n")
	if !strings.Contains(text, "mode=classic") || !strings.Contains(text, "classic row-major base") {
		t.Errorf("classic explain missing scan strategy:\n%s", text)
	}
	if !strings.Contains(text, "delta: 1 rows") {
		t.Errorf("explain does not reflect the delta stage:\n%s", text)
	}
}

// TestOrderLimitWorkerSweep pins the top-k determinism guarantee: results
// are byte-stable and meters bit-identical across worker counts and
// morsel sizes for ORDER BY ... LIMIT queries.
func TestOrderLimitWorkerSweep(t *testing.T) {
	c := buildStarCatalog(t, 12000, 61)
	q := Query{
		Table:   "fact",
		Filters: []Filter{{Col: "v", Lo: 0, Hi: 4000}},
		GroupBy: []string{"g"},
		Aggs:    []AggSpec{{Name: "n", Func: Count}, {Name: "s", Func: Sum, Expr: Col("w")}},
		OrderBy: []OrderKey{{Index: 0, Desc: true}},
		Limit:   3,
	}
	serial, err := c.ExecAR(q, ExecOpts{Threads: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 7} {
		for _, morsel := range []int{64, 1024, 0} {
			res, err := c.ExecAR(q, ExecOpts{Threads: 1, Workers: workers, Morsel: morsel})
			if err != nil {
				t.Fatal(err)
			}
			if !EqualResults(res.Rows, serial.Rows) {
				t.Fatalf("workers=%d morsel=%d: %v != serial %v", workers, morsel, res.Rows, serial.Rows)
			}
			if *res.Meter != *serial.Meter {
				t.Fatalf("workers=%d morsel=%d: meter %v != serial %v", workers, morsel, res.Meter, serial.Meter)
			}
		}
	}
}
