package plan

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/mem"
)

// TestPooledUnpooledEquivalence is the arena-aliasing property test: with
// the morsel arena on and off, across worker counts and morsel sizes,
// every query must return byte-identical rows and a bit-identical
// simulated meter, through a random interleaving of inserts, deletes and
// merges. A kernel that releases a buffer something still references, or
// reads a recycled buffer's stale contents, diverges here.
func TestPooledUnpooledEquivalence(t *testing.T) {
	defer mem.SetPooling(mem.SetPooling(true))
	for seed := int64(1); seed <= 2; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			c := propCatalog(t, 4000, seed)
			rng := rand.New(rand.NewSource(seed * 31))
			opts := []ExecOpts{
				{Threads: 4},
				{Threads: 4, Workers: 4},
				{Threads: 4, Workers: 2, Morsel: 512},
			}
			for step := 0; step < 10; step++ {
				switch op := rng.Intn(10); {
				case op < 5:
					rows := make([][]int64, 1+rng.Intn(40))
					for i := range rows {
						rows[i] = []int64{int64(rng.Intn(4096)), int64(rng.Intn(4096)), int64(rng.Intn(5))}
					}
					if _, err := c.InsertRows(nil, "fact", rows); err != nil {
						t.Fatal(err)
					}
				case op < 8:
					lo := int64(rng.Intn(4096))
					if _, err := c.DeleteRows(nil, "fact", []Filter{{Col: "v", Lo: lo, Hi: lo + int64(rng.Intn(256))}}); err != nil {
						t.Fatal(err)
					}
				default:
					if _, err := c.MergeTable(nil, "fact", false); err != nil {
						t.Fatal(err)
					}
				}
				for qi, q := range propQueries(rng) {
					var want *Result
					var wantLabel string
					for _, pooled := range []bool{true, false} {
						for oi, opt := range opts {
							mem.SetPooling(pooled)
							ar, err := c.ExecAR(q, opt)
							mem.SetPooling(true)
							if err != nil {
								t.Fatalf("step %d query %d pooled=%v opts=%d: %v", step, qi, pooled, oi, err)
							}
							label := fmt.Sprintf("pooled=%v opts=%d", pooled, oi)
							if want == nil {
								want, wantLabel = ar, label
								continue
							}
							if !EqualResults(ar.Rows, want.Rows) {
								t.Fatalf("step %d query %d: rows diverge between %s (%v) and %s (%v)",
									step, qi, wantLabel, want.Rows, label, ar.Rows)
							}
							if ar.Meter.GPU != want.Meter.GPU || ar.Meter.CPU != want.Meter.CPU || ar.Meter.PCI != want.Meter.PCI {
								t.Fatalf("step %d query %d: meter diverges between %s (%v) and %s (%v)",
									step, qi, wantLabel, want.Meter, label, ar.Meter)
							}
							if ar.Candidates != want.Candidates || ar.Refined != want.Refined {
								t.Fatalf("step %d query %d: candidate counts diverge between %s and %s",
									step, qi, wantLabel, label)
							}
						}
					}
					// The classic executor shares the arena-backed bulk
					// kernels; it must agree with A&R in both modes.
					for _, pooled := range []bool{true, false} {
						mem.SetPooling(pooled)
						cl, err := c.ExecClassic(q, ExecOpts{Threads: 4})
						mem.SetPooling(true)
						if err != nil {
							t.Fatalf("step %d query %d classic pooled=%v: %v", step, qi, pooled, err)
						}
						if !EqualResults(cl.Rows, want.Rows) {
							t.Fatalf("step %d query %d: classic pooled=%v rows %v != A&R %v",
								step, qi, pooled, cl.Rows, want.Rows)
						}
					}
				}
			}
		})
	}
}
