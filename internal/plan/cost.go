package plan

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/shard"
	"repro/internal/stats"
)

// Cost-based classic-vs-A&R choice. The session's \mode knob used to be
// the only thing deciding which executor ran; auto mode now prices both
// strategies against the statistics provider and the simulator's bandwidth
// model, so \mode ar / \mode classic are demoted to forced overrides.
//
// The model prices what actually differs between the executors. Classic
// pays a full-column CPU scan for the first predicate and then
// candidate-sized random-access passes for every further predicate, join
// probe and projection gather. A&R runs all predicate and FK-position
// passes on the device over the packed approximation planes, ships the
// surviving candidates across the bus once (§III-B: "one ship"), and
// refines only those candidates on the CPU. Both executors scan the
// row-major delta identically, so it cancels out of the comparison.

// ModeChoice is the optimizer's per-query scan-strategy decision.
type ModeChoice struct {
	Classic       bool
	EstCandidates int64  // estimated phase-A candidate rows; -1 when unknown
	Reason        string // one-line costing rationale for \explain and logs
}

func (m ModeChoice) String() string {
	mode := "a&r"
	if m.Classic {
		mode = "classic"
	}
	return fmt.Sprintf("%s (%s)", mode, m.Reason)
}

// ChooseMode prices the two scan strategies for a query in auto mode. A
// query that cannot run as A&R (undecomposed column, unmergeable shape) is
// classic by necessity; otherwise the estimated candidate-set size is
// weighed against the transfer cost. Partitioned tables price every leg
// against its own partition statistics: the scatter runs under the device
// gate if any leg favors A&R.
func (c *Catalog) ChooseMode(q Query) ModeChoice {
	if p, ok := c.Partitioned(q.Table); ok {
		var est int64
		ar := 0
		for i := range p.Parts {
			qi := q
			qi.Table = shard.PartName(p.Name, i)
			snap, err := qi.validate(c)
			if err != nil {
				continue // this leg scans classic (e.g. empty partition)
			}
			ch := chooseSnap(c.sys, &qi, snap)
			if !ch.Classic {
				ar++
				est += ch.EstCandidates
			}
		}
		if ar == 0 {
			return ModeChoice{Classic: true, EstCandidates: -1,
				Reason: "no partition leg favors a&r"}
		}
		return ModeChoice{EstCandidates: est,
			Reason: fmt.Sprintf("%d of %d partition legs favor a&r", ar, p.Spec.N)}
	}
	snap, err := q.validate(c)
	if err != nil {
		return ModeChoice{Classic: true, EstCandidates: -1,
			Reason: "a&r unavailable: " + err.Error()}
	}
	return chooseSnap(c.sys, &q, snap)
}

// estFactFrac multiplies the fact-side predicate selectivities from the
// statistics provider: the estimated fraction of live base rows surviving
// phase A.
func estFactFrac(snap *execSnap, q *Query) float64 {
	frac := 1.0
	for _, f := range q.Filters {
		if s, src := estimateSelectivity(snap.get(q.Table, f.Col), f); src != estNone {
			frac *= s
		}
	}
	for _, g := range q.Or {
		s, _ := estimateOrSelectivity(snap, q.Table, g)
		frac *= s
	}
	return frac
}

// chooseSnap prices both executors for one pinned snapshot. The caller has
// already validated the query for A&R against this snapshot.
func chooseSnap(sys *device.System, q *Query, snap *execSnap) ModeChoice {
	baseLive := float64(snap.fact.LiveBase())
	if baseLive == 0 {
		return ModeChoice{Classic: true, EstCandidates: 0,
			Reason: "empty base segment: nothing is device resident"}
	}
	frac := estFactFrac(snap, q)
	cand := frac * baseLive
	est := int64(cand + 0.5)

	// Bandwidths from the simulated system; fall back to the paper's
	// shape (GPU ≫ CPU ≫ bus) if no system is attached.
	cpuBW, gpuBW, busBW := 38.4e9, 192.3e9, 3.95e9
	randomPenalty := 4.0
	if sys != nil {
		cpuBW, gpuBW, busBW = sys.CPU.AggregateBW, sys.GPU.ScanBW, sys.Bus.BW
		if sys.CPU.RandomPenalty > 0 {
			randomPenalty = sys.CPU.RandomPenalty
		}
	}

	// Per-row column touches after the first pass: remaining predicates,
	// FK probes, and projection/grouping gathers.
	nPred := len(q.Filters) + len(q.Or)
	for _, j := range q.Joins {
		nPred += len(j.DimFilters)
	}
	nProj := len(q.GroupBy)
	for _, a := range q.Aggs {
		if a.Expr != nil {
			nProj += len(a.Expr.Cols())
		}
	}
	const rowB = 8.0

	// Device bytes: every fact predicate and FK-position pass scans a
	// packed approximation plane GPU-side.
	var devBytes float64
	addDev := func(col string) {
		if d := snap.get(q.Table, col); d != nil {
			devBytes += float64(d.GPUBytes())
		}
	}
	for _, f := range q.Filters {
		addDev(f.Col)
	}
	for _, g := range q.Or {
		for _, f := range g {
			addDev(f.Col)
		}
	}
	for _, j := range q.Joins {
		addDev(j.FKCol)
	}
	if devBytes == 0 {
		// Full-table anchor scan (grouping / aggregate-only queries).
		if col, ok := q.anchorColumn(); ok {
			addDev(col)
		}
	}

	// Rows crossing the bus: the candidate set, unless device pre-grouping
	// collapses the ship to per-group partials (grouped query, no delta).
	shipRows := cand
	if len(q.GroupBy) > 0 && snap.fact.LiveDelta() == 0 {
		groupCap := 4096.0
		if d := stats.FromColumn(snap.get(q.Table, q.GroupBy[0])); d != nil {
			if n := d.Distinct(); n >= 0 {
				groupCap = float64(n)
			}
		}
		if groupCap < shipRows {
			shipRows = groupCap
		}
	}

	nRefine := len(q.Filters) + len(q.Or)
	arSec := devBytes/gpuBW +
		shipRows*rowB*float64(1+nProj)/busBW +
		cand*rowB*float64(nRefine)*randomPenalty/cpuBW
	classicSec := baseLive*rowB/cpuBW +
		cand*rowB*float64(nPred+len(q.Joins)+nProj)*randomPenalty/cpuBW

	choice := ModeChoice{Classic: arSec >= classicSec, EstCandidates: est}
	choice.Reason = fmt.Sprintf("est %d of %d base rows ship; a&r %.3gs vs classic %.3gs",
		est, int64(baseLive), arSec, classicSec)
	return choice
}
