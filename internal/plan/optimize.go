package plan

import (
	"fmt"
	"sort"

	"repro/internal/bwd"
)

// orderFilters implements the rule-based optimizer of §III-A: approximate
// selections are pushed down (executed first) in order of estimated
// selectivity, so the cheapest, most selective approximate scans shrink
// the candidate set before the more expensive operators run. The estimate
// is the relaxed code-range fraction of the column's code domain — derived
// purely from the decomposition metadata, no data statistics needed.
func orderFilters(c *Catalog, table string, filters []Filter) ([]Filter, error) {
	type ranked struct {
		f   Filter
		sel float64
	}
	rs := make([]ranked, 0, len(filters))
	for _, f := range filters {
		d, err := c.Decomposition(table, f.Col)
		if err != nil {
			return nil, err
		}
		rs = append(rs, ranked{f, estimateSelectivity(d, f)})
	}
	sort.SliceStable(rs, func(i, j int) bool { return rs[i].sel < rs[j].sel })
	out := make([]Filter, len(rs))
	for i, r := range rs {
		out[i] = r.f
	}
	return out, nil
}

// estimateSelectivity returns the fraction of the code domain admitted by
// the relaxed predicate.
func estimateSelectivity(d *bwd.Column, f Filter) float64 {
	r := d.Relax(f.Lo, f.Hi)
	switch {
	case r.Empty:
		return 0
	case r.Full:
		return 1
	default:
		span := float64(d.Dec.MaxApprox()) + 1
		return float64(r.Hi-r.Lo+1) / span
	}
}

// validate checks that the query references only known tables/columns and
// that every column an A&R plan touches is decomposed.
func (q *Query) validate(c *Catalog) error {
	if _, err := c.Table(q.Table); err != nil {
		return err
	}
	for _, f := range q.Filters {
		if _, err := c.Decomposition(q.Table, f.Col); err != nil {
			return err
		}
	}
	for _, g := range q.GroupBy {
		if _, err := c.Decomposition(q.Table, g); err != nil {
			return err
		}
	}
	if q.Join != nil {
		if _, err := c.Decomposition(q.Table, q.Join.FKCol); err != nil {
			return err
		}
		if _, err := c.Table(q.Join.Dim); err != nil {
			return err
		}
		for _, f := range q.Join.DimFilters {
			if _, err := c.Decomposition(q.Join.Dim, f.Col); err != nil {
				return err
			}
		}
	}
	for _, a := range q.Aggs {
		if a.Expr == nil {
			if a.Func != Count {
				return fmt.Errorf("plan: aggregate %s needs an expression", a.Func)
			}
			continue
		}
		for _, ref := range a.Expr.Cols() {
			tbl := q.Table
			if ref.Dim {
				if q.Join == nil {
					return fmt.Errorf("plan: dimension column %s referenced without a join", ref.Name)
				}
				tbl = q.Join.Dim
			}
			if _, err := c.Decomposition(tbl, ref.Name); err != nil {
				return err
			}
		}
	}
	if len(q.Filters) == 0 && len(q.GroupBy) == 0 && len(q.Aggs) == 0 {
		return fmt.Errorf("plan: empty query")
	}
	return nil
}

// anchorColumn picks the column whose approximation the full-table scan
// uses when the query has no filters (pure grouping/aggregation).
func (q *Query) anchorColumn() (string, bool) {
	if len(q.GroupBy) > 0 {
		return q.GroupBy[0], true
	}
	for _, a := range q.Aggs {
		if a.Expr == nil {
			continue
		}
		for _, ref := range a.Expr.Cols() {
			if !ref.Dim {
				return ref.Name, true
			}
		}
	}
	return "", false
}
