package plan

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/bwd"
	"repro/internal/shard"
	"repro/internal/stats"
	"repro/internal/store"
)

// estSource tags where a selectivity estimate came from, replacing the old
// -1.0 "unknown" sentinel. Sources are ordered weakest-first so a combined
// estimate (OR group, join chain) carries the weakest source it used.
type estSource uint8

const (
	estNone      estSource = iota // no statistics: column not decomposed
	estRowCount                   // textbook default scaled by row counts
	estDomain                     // relaxed code span over the code domain
	estHistogram                  // BWD bucket-occupancy histogram mass
)

// weakest combines two estimate sources, keeping the less trustworthy one.
func weakest(a, b estSource) estSource {
	if b < a {
		return b
	}
	return a
}

// rankedFilter is a filter with the selectivity estimate that ordered it —
// the pipeline keeps the estimate and its source so \explain can show why
// the optimizer chose this order (and when it was guessing).
type rankedFilter struct {
	f   Filter
	sel float64
	src estSource
}

// estSel returns the selectivity for cardinality folding, or -1 when the
// filter has no estimate at all (estApply treats -1 as unknown).
func (rf rankedFilter) estSel() float64 {
	if rf.src == estNone {
		return -1
	}
	return rf.sel
}

// orderFilters implements the optimizer of §III-A with real statistics:
// approximate selections are pushed down (executed first) in order of
// estimated selectivity, so the cheapest, most selective approximate scans
// shrink the candidate set before the more expensive operators run. The
// estimate is the histogram mass of the relaxed code range — the BWD
// bucket-occupancy counts maintained at decompose time — falling back to
// the code-domain fraction only when a column carries no histogram. It
// applies to fact-side and dimension-side filters alike; the caller passes
// the owning table.
func orderFilters(snap *execSnap, table string, filters []Filter) []rankedFilter {
	rs := make([]rankedFilter, 0, len(filters))
	for _, f := range filters {
		sel, src := estimateSelectivity(snap.get(table, f.Col), f)
		rs = append(rs, rankedFilter{f, sel, src})
	}
	sort.SliceStable(rs, func(i, j int) bool { return rs[i].sel < rs[j].sel })
	return rs
}

// rankFilters wraps filters with their selectivity estimates without
// reordering — the classic pipeline preserves the written predicate order
// but still reports the estimates in \explain when decompositions exist.
// Undecomposed columns are tagged estNone so the explain surface prints
// `est=n/a (no stats)` instead of a magic number.
func rankFilters(snap *execSnap, table string, filters []Filter) []rankedFilter {
	rs := make([]rankedFilter, 0, len(filters))
	for _, f := range filters {
		rf := rankedFilter{f: f, src: estNone}
		if d := snap.get(table, f.Col); d != nil {
			rf.sel, rf.src = estimateSelectivity(d, f)
		}
		rs = append(rs, rf)
	}
	return rs
}

// estimateSelectivity estimates the fraction of rows admitted by the
// relaxed predicate: the occupancy-histogram mass of the relaxed code
// range when the decomposition carries one (it knows where the data
// actually sits, so skew cannot fool the ordering), else the code-domain
// fraction as before.
func estimateSelectivity(d *bwd.Column, f Filter) (float64, estSource) {
	if d == nil {
		return 0, estNone
	}
	r := d.Relax(f.Lo, f.Hi)
	h := stats.FromColumn(d)
	switch {
	case r.Empty:
		if h != nil {
			return 0, estHistogram
		}
		return 0, estDomain
	case r.Full:
		if h != nil {
			return 1, estHistogram
		}
		return 1, estDomain
	case h != nil:
		return h.CodeFraction(r.Lo, r.Hi), estHistogram
	default:
		span := float64(d.Dec.MaxApprox()) + 1
		return float64(r.Hi-r.Lo+1) / span, estDomain
	}
}

// defaultFilterSel is the fallback when a column has no decomposition to
// estimate from: textbook defaults scaled by the snapshot's row-count
// statistics — an equality predicate admits about one in sqrt(n) rows
// (distinct count unknown), a bounded range a quarter, a half-open range a
// third of them.
func defaultFilterSel(snap *store.Snapshot, f Filter) float64 {
	rows := float64(snap.Len())
	if rows <= 0 {
		return 0
	}
	switch {
	case f.Lo == NoLo && f.Hi == NoHi:
		return 1
	case f.Lo == f.Hi:
		return 1 / math.Sqrt(rows)
	case f.Lo != NoLo && f.Hi != NoHi:
		return 0.25
	default:
		return 1.0 / 3
	}
}

// estimateOrSelectivity bounds the selectivity of a disjunction group: the
// union of the disjuncts admits at most the sum of their fractions. A
// disjunct whose column lacks a decomposition no longer collapses the
// whole group to 1.0 — it contributes a row-count default instead, and the
// group's estimate is tagged with the weakest source used.
func estimateOrSelectivity(snap *execSnap, table string, group []Filter) (float64, estSource) {
	src := estHistogram
	var sum float64
	for _, f := range group {
		d := snap.get(table, f.Col)
		if d == nil {
			sum += defaultFilterSel(snap.snapFor(table), f)
			src = weakest(src, estRowCount)
			continue
		}
		s, fsrc := estimateSelectivity(d, f)
		sum += s
		src = weakest(src, fsrc)
	}
	if sum > 1 {
		sum = 1
	}
	return sum, src
}

// estimateJoinSel estimates the fraction of fact candidates surviving a
// join stage: the product of the dimension filters' selectivities, damped
// by the dimension's live fraction (an FK probe hitting a deleted
// dimension row drops the fact row).
func estimateJoinSel(snap *execSnap, j JoinSpec) (float64, estSource) {
	ds := snap.snapFor(j.Dim)
	src := estHistogram
	sel := 1.0
	if bl := ds.BaseLen(); bl > 0 {
		sel = float64(ds.LiveBase()) / float64(bl)
	}
	for _, f := range j.DimFilters {
		d := snap.get(j.Dim, f.Col)
		if d == nil {
			sel *= defaultFilterSel(ds, f)
			src = weakest(src, estRowCount)
			continue
		}
		s, fsrc := estimateSelectivity(d, f)
		sel *= s
		src = weakest(src, fsrc)
	}
	return sel, src
}

// execSnap is the set of table versions one query execution works against:
// the fact (and every joined dimension) store snapshot, pinned exactly
// once at query start, plus the resolved decompositions of every column an
// A&R plan touches. A&R operators key candidate code columns on bwd.Column
// pointer identity, so the approximate and refine phases must see the same
// pointer even if a concurrent merge or bwdecompose swaps the table
// version mid-query — pinning the snapshot guarantees exactly that, and
// makes the whole read snapshot isolated against concurrent DML.
type execSnap struct {
	fact *store.Snapshot
	dims map[string]*store.Snapshot // keyed by dimension table name
	decs map[string]*bwd.Column
}

func (s *execSnap) get(table, col string) *bwd.Column { return s.decs[table+"."+col] }

// snapFor returns the snapshot holding table's data (fact or a dimension).
func (s *execSnap) snapFor(table string) *store.Snapshot {
	if d, ok := s.dims[table]; ok {
		return d
	}
	return s.fact
}

// pinSnapshots resolves and pins the table versions the query reads,
// without requiring decompositions (the classic executor's half of
// validate). Joins require the dimension side to be delta-free: the FK
// index and the join positions address the dimension base segment, so
// freshly inserted dimension rows must be merged before they are joinable.
func (q *Query) pinSnapshots(c *Catalog) (*execSnap, error) {
	fact, err := c.Table(q.Table)
	if err != nil {
		return nil, err
	}
	snap := &execSnap{fact: fact.Snapshot(), dims: map[string]*store.Snapshot{}, decs: map[string]*bwd.Column{}}
	for _, j := range q.Joins {
		if j.Dim == q.Table {
			return nil, fmt.Errorf("plan: table %s cannot join itself as a dimension", q.Table)
		}
		if _, dup := snap.dims[j.Dim]; dup {
			return nil, fmt.Errorf("plan: dimension table %s joined twice", j.Dim)
		}
		dim, err := c.Table(j.Dim)
		if err != nil {
			return nil, err
		}
		ds := dim.Snapshot()
		if n := ds.DeltaLen(); n > 0 {
			return nil, fmt.Errorf("plan: dimension table %s has %d unmerged delta rows; run \\merge %s (Catalog.MergeTable) before joining", j.Dim, n, j.Dim)
		}
		if ds.BaseLen() == 0 {
			// Guard both executors: the A&R dense-PK arithmetic reads
			// pk.Tail(0), and the classic path has no index to probe.
			return nil, fmt.Errorf("plan: dimension table %s is empty; load it before joining", j.Dim)
		}
		snap.dims[j.Dim] = ds
	}
	return snap, nil
}

// checkShape validates the parts of the query that are independent of the
// executor: aggregate shapes, HAVING indexes, ORDER BY indexes, hidden
// aggregate placement, and the LIMIT value.
func (q *Query) checkShape() error {
	seenHidden := false
	for _, a := range q.Aggs {
		if a.Hidden {
			seenHidden = true
		} else if seenHidden {
			return fmt.Errorf("plan: hidden aggregates must follow every visible aggregate")
		}
		if a.Expr == nil && a.Func != Count {
			return fmt.Errorf("plan: aggregate %s needs an expression", a.Func)
		}
	}
	for _, h := range q.Having {
		if h.Agg < 0 || h.Agg >= len(q.Aggs) {
			return fmt.Errorf("plan: HAVING references aggregate %d of %d", h.Agg, len(q.Aggs))
		}
	}
	for _, k := range q.OrderBy {
		if k.Key {
			if k.Index < 0 || k.Index >= len(q.GroupBy) {
				return fmt.Errorf("plan: ORDER BY references group key %d of %d", k.Index, len(q.GroupBy))
			}
		} else if k.Index < 0 || k.Index >= len(q.Aggs) {
			return fmt.Errorf("plan: ORDER BY references aggregate %d of %d", k.Index, len(q.Aggs))
		}
	}
	if q.Limit < 0 {
		return fmt.Errorf("plan: negative LIMIT %d", q.Limit)
	}
	for _, group := range q.Or {
		if len(group) == 0 {
			return fmt.Errorf("plan: empty OR group")
		}
	}
	if len(q.Filters) == 0 && len(q.Or) == 0 && len(q.GroupBy) == 0 && len(q.Aggs) == 0 {
		return fmt.Errorf("plan: empty query")
	}
	return nil
}

// walkCols visits every (table, column) reference of the query in a fixed
// order: fact filters, OR groups, grouping keys, each join's FK and
// dimension filters, then aggregate expression references.
func (q *Query) walkCols(visit func(table, col string) error) error {
	for _, f := range q.Filters {
		if err := visit(q.Table, f.Col); err != nil {
			return err
		}
	}
	for _, group := range q.Or {
		for _, f := range group {
			if err := visit(q.Table, f.Col); err != nil {
				return err
			}
		}
	}
	for _, g := range q.GroupBy {
		if err := visit(q.Table, g); err != nil {
			return err
		}
	}
	for _, j := range q.Joins {
		if err := visit(q.Table, j.FKCol); err != nil {
			return err
		}
		for _, f := range j.DimFilters {
			if err := visit(j.Dim, f.Col); err != nil {
				return err
			}
		}
	}
	for _, a := range q.Aggs {
		if a.Expr == nil {
			continue
		}
		for _, ref := range a.Expr.Cols() {
			tbl := q.Table
			if ref.IsDim() {
				if !q.joinsDim(ref.Dim) {
					return fmt.Errorf("plan: dimension column %s.%s referenced without joining %s", ref.Dim, ref.Name, ref.Dim)
				}
				tbl = ref.Dim
			}
			if err := visit(tbl, ref.Name); err != nil {
				return err
			}
		}
	}
	return nil
}

// joinsDim reports whether the query joins the named dimension table.
func (q *Query) joinsDim(dim string) bool {
	for _, j := range q.Joins {
		if j.Dim == dim {
			return true
		}
	}
	return false
}

// validate checks that the query references only known tables/columns and
// that every column an A&R plan touches is decomposed, returning the
// pinned snapshots and resolved decompositions as the execution's
// snapshot. One walk does both, so validation and snapshot can never cover
// different column sets.
func (q *Query) validate(c *Catalog) (*execSnap, error) {
	if err := q.checkShape(); err != nil {
		return nil, err
	}
	snap, err := q.pinSnapshots(c)
	if err != nil {
		return nil, err
	}
	add := func(table, col string) error {
		key := table + "." + col
		if _, done := snap.decs[key]; done {
			return nil
		}
		d := snap.snapFor(table).Dec(col)
		if d == nil {
			// Distinguish unknown columns from undecomposed ones.
			if _, cerr := snap.snapFor(table).Column(col); cerr != nil {
				return fmt.Errorf("plan: unknown column %s.%s", table, col)
			}
			return fmt.Errorf("plan: column %s.%s is not bitwise decomposed; call Decompose first", table, col)
		}
		snap.decs[key] = d
		return nil
	}
	if err := q.walkCols(add); err != nil {
		return nil, err
	}
	if len(q.Filters) == 0 && len(q.Or) == 0 {
		// The approximation subplan needs a fact-side column to scan.
		// Rejecting here keeps CanExecAR aligned with what ExecAR can
		// actually run, so auto-mode routing falls back to classic.
		if _, ok := q.anchorColumn(); !ok {
			return nil, fmt.Errorf("plan: A&R plan needs a fact-side column to scan (add a filter, grouping, or fact-column aggregate)")
		}
	}
	return snap, nil
}

// validateClassic checks table/column references and pins the snapshots
// without requiring decompositions.
func (q *Query) validateClassic(c *Catalog) (*execSnap, error) {
	if err := q.checkShape(); err != nil {
		return nil, err
	}
	snap, err := q.pinSnapshots(c)
	if err != nil {
		return nil, err
	}
	check := func(table, col string) error {
		if _, err := snap.snapFor(table).Column(col); err != nil {
			return err
		}
		// Record decompositions that happen to exist: classic execution
		// never needs them, but the estimator reads histograms off them so
		// classic plans print real estimates instead of est=n/a wherever
		// statistics are available.
		if d := snap.snapFor(table).Dec(col); d != nil {
			snap.decs[table+"."+col] = d
		}
		return nil
	}
	if err := q.walkCols(check); err != nil {
		return nil, err
	}
	return snap, nil
}

// ARValidate reports why the query cannot run as an A&R plan against this
// catalog (typically: a touched column is not bitwise decomposed), or nil
// if it can.
func (c *Catalog) ARValidate(q Query) error {
	if p, ok := c.Partitioned(q.Table); ok {
		// Partitions share one schema and DDL fans out to all of them, so
		// partition 0 is representative of the scatter's A&R capability.
		qi := q
		qi.Table = shard.PartName(p.Name, 0)
		_, err := qi.validate(c)
		return err
	}
	_, err := q.validate(c)
	return err
}

// CanExecAR reports whether the query can run as an A&R plan against this
// catalog — i.e. every column it touches is bitwise decomposed. The server's
// device-aware scheduler uses it to route statements: A&R-capable plans go
// to the GPU stream, the rest to the classic CPU pool.
func (c *Catalog) CanExecAR(q Query) bool {
	return c.ARValidate(q) == nil
}

// anchorColumn picks the column whose approximation the full-table scan
// uses when the query has no fact-side filters: a grouping key, a
// fact-side aggregate input, or — for dimension-only workloads — the
// first join's foreign-key column (always decomposed for an A&R join).
func (q *Query) anchorColumn() (string, bool) {
	if len(q.GroupBy) > 0 {
		return q.GroupBy[0], true
	}
	for _, a := range q.Aggs {
		if a.Expr == nil {
			continue
		}
		for _, ref := range a.Expr.Cols() {
			if !ref.IsDim() {
				return ref.Name, true
			}
		}
	}
	if len(q.Joins) > 0 {
		return q.Joins[0].FKCol, true
	}
	return "", false
}
