package plan

import (
	"fmt"
	"sort"

	"repro/internal/bwd"
	"repro/internal/shard"
	"repro/internal/store"
)

// rankedFilter is a filter with the selectivity estimate that ordered it —
// the pipeline keeps the estimates so \explain can show why the optimizer
// chose this order.
type rankedFilter struct {
	f   Filter
	sel float64
}

// orderFilters implements the rule-based optimizer of §III-A: approximate
// selections are pushed down (executed first) in order of estimated
// selectivity, so the cheapest, most selective approximate scans shrink
// the candidate set before the more expensive operators run. The estimate
// is the relaxed code-range fraction of the column's code domain — derived
// purely from the decomposition metadata (taken from the execution's
// snapshot), no data statistics needed. It applies to fact-side and
// dimension-side filters alike; the caller passes the owning table.
func orderFilters(snap *execSnap, table string, filters []Filter) []rankedFilter {
	rs := make([]rankedFilter, 0, len(filters))
	for _, f := range filters {
		rs = append(rs, rankedFilter{f, estimateSelectivity(snap.get(table, f.Col), f)})
	}
	sort.SliceStable(rs, func(i, j int) bool { return rs[i].sel < rs[j].sel })
	return rs
}

// rankFilters wraps filters with their selectivity estimates without
// reordering — the classic pipeline preserves the written predicate order
// but still reports the estimates in \explain when decompositions exist.
func rankFilters(snap *execSnap, table string, filters []Filter) []rankedFilter {
	rs := make([]rankedFilter, 0, len(filters))
	for _, f := range filters {
		sel := -1.0 // unknown: classic plans don't need a decomposition
		if d := snap.get(table, f.Col); d != nil {
			sel = estimateSelectivity(d, f)
		}
		rs = append(rs, rankedFilter{f, sel})
	}
	return rs
}

// estimateSelectivity returns the fraction of the code domain admitted by
// the relaxed predicate.
func estimateSelectivity(d *bwd.Column, f Filter) float64 {
	r := d.Relax(f.Lo, f.Hi)
	switch {
	case r.Empty:
		return 0
	case r.Full:
		return 1
	default:
		span := float64(d.Dec.MaxApprox()) + 1
		return float64(r.Hi-r.Lo+1) / span
	}
}

// estimateOrSelectivity bounds the selectivity of a disjunction group: the
// union of the disjuncts admits at most the sum of their fractions.
func estimateOrSelectivity(snap *execSnap, table string, group []Filter) float64 {
	var sum float64
	for _, f := range group {
		d := snap.get(table, f.Col)
		if d == nil {
			return 1
		}
		sum += estimateSelectivity(d, f)
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// execSnap is the set of table versions one query execution works against:
// the fact (and every joined dimension) store snapshot, pinned exactly
// once at query start, plus the resolved decompositions of every column an
// A&R plan touches. A&R operators key candidate code columns on bwd.Column
// pointer identity, so the approximate and refine phases must see the same
// pointer even if a concurrent merge or bwdecompose swaps the table
// version mid-query — pinning the snapshot guarantees exactly that, and
// makes the whole read snapshot isolated against concurrent DML.
type execSnap struct {
	fact *store.Snapshot
	dims map[string]*store.Snapshot // keyed by dimension table name
	decs map[string]*bwd.Column
}

func (s *execSnap) get(table, col string) *bwd.Column { return s.decs[table+"."+col] }

// snapFor returns the snapshot holding table's data (fact or a dimension).
func (s *execSnap) snapFor(table string) *store.Snapshot {
	if d, ok := s.dims[table]; ok {
		return d
	}
	return s.fact
}

// pinSnapshots resolves and pins the table versions the query reads,
// without requiring decompositions (the classic executor's half of
// validate). Joins require the dimension side to be delta-free: the FK
// index and the join positions address the dimension base segment, so
// freshly inserted dimension rows must be merged before they are joinable.
func (q *Query) pinSnapshots(c *Catalog) (*execSnap, error) {
	fact, err := c.Table(q.Table)
	if err != nil {
		return nil, err
	}
	snap := &execSnap{fact: fact.Snapshot(), dims: map[string]*store.Snapshot{}, decs: map[string]*bwd.Column{}}
	for _, j := range q.Joins {
		if j.Dim == q.Table {
			return nil, fmt.Errorf("plan: table %s cannot join itself as a dimension", q.Table)
		}
		if _, dup := snap.dims[j.Dim]; dup {
			return nil, fmt.Errorf("plan: dimension table %s joined twice", j.Dim)
		}
		dim, err := c.Table(j.Dim)
		if err != nil {
			return nil, err
		}
		ds := dim.Snapshot()
		if ds.DeltaLen() > 0 {
			return nil, fmt.Errorf("plan: dimension table %s has unmerged delta rows; merge it before joining", j.Dim)
		}
		if ds.BaseLen() == 0 {
			// Guard both executors: the A&R dense-PK arithmetic reads
			// pk.Tail(0), and the classic path has no index to probe.
			return nil, fmt.Errorf("plan: dimension table %s is empty; load it before joining", j.Dim)
		}
		snap.dims[j.Dim] = ds
	}
	return snap, nil
}

// checkShape validates the parts of the query that are independent of the
// executor: aggregate shapes, HAVING indexes, ORDER BY indexes, hidden
// aggregate placement, and the LIMIT value.
func (q *Query) checkShape() error {
	seenHidden := false
	for _, a := range q.Aggs {
		if a.Hidden {
			seenHidden = true
		} else if seenHidden {
			return fmt.Errorf("plan: hidden aggregates must follow every visible aggregate")
		}
		if a.Expr == nil && a.Func != Count {
			return fmt.Errorf("plan: aggregate %s needs an expression", a.Func)
		}
	}
	for _, h := range q.Having {
		if h.Agg < 0 || h.Agg >= len(q.Aggs) {
			return fmt.Errorf("plan: HAVING references aggregate %d of %d", h.Agg, len(q.Aggs))
		}
	}
	for _, k := range q.OrderBy {
		if k.Key {
			if k.Index < 0 || k.Index >= len(q.GroupBy) {
				return fmt.Errorf("plan: ORDER BY references group key %d of %d", k.Index, len(q.GroupBy))
			}
		} else if k.Index < 0 || k.Index >= len(q.Aggs) {
			return fmt.Errorf("plan: ORDER BY references aggregate %d of %d", k.Index, len(q.Aggs))
		}
	}
	if q.Limit < 0 {
		return fmt.Errorf("plan: negative LIMIT %d", q.Limit)
	}
	for _, group := range q.Or {
		if len(group) == 0 {
			return fmt.Errorf("plan: empty OR group")
		}
	}
	if len(q.Filters) == 0 && len(q.Or) == 0 && len(q.GroupBy) == 0 && len(q.Aggs) == 0 {
		return fmt.Errorf("plan: empty query")
	}
	return nil
}

// walkCols visits every (table, column) reference of the query in a fixed
// order: fact filters, OR groups, grouping keys, each join's FK and
// dimension filters, then aggregate expression references.
func (q *Query) walkCols(visit func(table, col string) error) error {
	for _, f := range q.Filters {
		if err := visit(q.Table, f.Col); err != nil {
			return err
		}
	}
	for _, group := range q.Or {
		for _, f := range group {
			if err := visit(q.Table, f.Col); err != nil {
				return err
			}
		}
	}
	for _, g := range q.GroupBy {
		if err := visit(q.Table, g); err != nil {
			return err
		}
	}
	for _, j := range q.Joins {
		if err := visit(q.Table, j.FKCol); err != nil {
			return err
		}
		for _, f := range j.DimFilters {
			if err := visit(j.Dim, f.Col); err != nil {
				return err
			}
		}
	}
	for _, a := range q.Aggs {
		if a.Expr == nil {
			continue
		}
		for _, ref := range a.Expr.Cols() {
			tbl := q.Table
			if ref.IsDim() {
				if !q.joinsDim(ref.Dim) {
					return fmt.Errorf("plan: dimension column %s.%s referenced without joining %s", ref.Dim, ref.Name, ref.Dim)
				}
				tbl = ref.Dim
			}
			if err := visit(tbl, ref.Name); err != nil {
				return err
			}
		}
	}
	return nil
}

// joinsDim reports whether the query joins the named dimension table.
func (q *Query) joinsDim(dim string) bool {
	for _, j := range q.Joins {
		if j.Dim == dim {
			return true
		}
	}
	return false
}

// validate checks that the query references only known tables/columns and
// that every column an A&R plan touches is decomposed, returning the
// pinned snapshots and resolved decompositions as the execution's
// snapshot. One walk does both, so validation and snapshot can never cover
// different column sets.
func (q *Query) validate(c *Catalog) (*execSnap, error) {
	if err := q.checkShape(); err != nil {
		return nil, err
	}
	snap, err := q.pinSnapshots(c)
	if err != nil {
		return nil, err
	}
	add := func(table, col string) error {
		key := table + "." + col
		if _, done := snap.decs[key]; done {
			return nil
		}
		d := snap.snapFor(table).Dec(col)
		if d == nil {
			// Distinguish unknown columns from undecomposed ones.
			if _, cerr := snap.snapFor(table).Column(col); cerr != nil {
				return fmt.Errorf("plan: unknown column %s.%s", table, col)
			}
			return fmt.Errorf("plan: column %s.%s is not bitwise decomposed; call Decompose first", table, col)
		}
		snap.decs[key] = d
		return nil
	}
	if err := q.walkCols(add); err != nil {
		return nil, err
	}
	if len(q.Filters) == 0 && len(q.Or) == 0 {
		// The approximation subplan needs a fact-side column to scan.
		// Rejecting here keeps CanExecAR aligned with what ExecAR can
		// actually run, so auto-mode routing falls back to classic.
		if _, ok := q.anchorColumn(); !ok {
			return nil, fmt.Errorf("plan: A&R plan needs a fact-side column to scan (add a filter, grouping, or fact-column aggregate)")
		}
	}
	return snap, nil
}

// validateClassic checks table/column references and pins the snapshots
// without requiring decompositions.
func (q *Query) validateClassic(c *Catalog) (*execSnap, error) {
	if err := q.checkShape(); err != nil {
		return nil, err
	}
	snap, err := q.pinSnapshots(c)
	if err != nil {
		return nil, err
	}
	check := func(table, col string) error {
		if _, err := snap.snapFor(table).Column(col); err != nil {
			return err
		}
		return nil
	}
	if err := q.walkCols(check); err != nil {
		return nil, err
	}
	return snap, nil
}

// ARValidate reports why the query cannot run as an A&R plan against this
// catalog (typically: a touched column is not bitwise decomposed), or nil
// if it can.
func (c *Catalog) ARValidate(q Query) error {
	if p, ok := c.Partitioned(q.Table); ok {
		// Partitions share one schema and DDL fans out to all of them, so
		// partition 0 is representative of the scatter's A&R capability.
		qi := q
		qi.Table = shard.PartName(p.Name, 0)
		_, err := qi.validate(c)
		return err
	}
	_, err := q.validate(c)
	return err
}

// CanExecAR reports whether the query can run as an A&R plan against this
// catalog — i.e. every column it touches is bitwise decomposed. The server's
// device-aware scheduler uses it to route statements: A&R-capable plans go
// to the GPU stream, the rest to the classic CPU pool.
func (c *Catalog) CanExecAR(q Query) bool {
	return c.ARValidate(q) == nil
}

// anchorColumn picks the column whose approximation the full-table scan
// uses when the query has no fact-side filters: a grouping key, a
// fact-side aggregate input, or — for dimension-only workloads — the
// first join's foreign-key column (always decomposed for an A&R join).
func (q *Query) anchorColumn() (string, bool) {
	if len(q.GroupBy) > 0 {
		return q.GroupBy[0], true
	}
	for _, a := range q.Aggs {
		if a.Expr == nil {
			continue
		}
		for _, ref := range a.Expr.Cols() {
			if !ref.IsDim() {
				return ref.Name, true
			}
		}
	}
	if len(q.Joins) > 0 {
		return q.Joins[0].FKCol, true
	}
	return "", false
}
