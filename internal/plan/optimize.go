package plan

import (
	"fmt"
	"sort"

	"repro/internal/bwd"
	"repro/internal/store"
)

// orderFilters implements the rule-based optimizer of §III-A: approximate
// selections are pushed down (executed first) in order of estimated
// selectivity, so the cheapest, most selective approximate scans shrink
// the candidate set before the more expensive operators run. The estimate
// is the relaxed code-range fraction of the column's code domain — derived
// purely from the decomposition metadata (taken from the execution's
// snapshot), no data statistics needed.
func orderFilters(snap *execSnap, table string, filters []Filter) []Filter {
	type ranked struct {
		f   Filter
		sel float64
	}
	rs := make([]ranked, 0, len(filters))
	for _, f := range filters {
		rs = append(rs, ranked{f, estimateSelectivity(snap.get(table, f.Col), f)})
	}
	sort.SliceStable(rs, func(i, j int) bool { return rs[i].sel < rs[j].sel })
	out := make([]Filter, len(rs))
	for i, r := range rs {
		out[i] = r.f
	}
	return out
}

// estimateSelectivity returns the fraction of the code domain admitted by
// the relaxed predicate.
func estimateSelectivity(d *bwd.Column, f Filter) float64 {
	r := d.Relax(f.Lo, f.Hi)
	switch {
	case r.Empty:
		return 0
	case r.Full:
		return 1
	default:
		span := float64(d.Dec.MaxApprox()) + 1
		return float64(r.Hi-r.Lo+1) / span
	}
}

// execSnap is the set of table versions one query execution works against:
// the fact (and optional dimension) store snapshot, pinned exactly once at
// query start, plus the resolved decompositions of every column an A&R
// plan touches. A&R operators key candidate code columns on bwd.Column
// pointer identity, so the approximate and refine phases must see the same
// pointer even if a concurrent merge or bwdecompose swaps the table
// version mid-query — pinning the snapshot guarantees exactly that, and
// makes the whole read snapshot isolated against concurrent DML.
type execSnap struct {
	fact *store.Snapshot
	dim  *store.Snapshot // nil without a join
	decs map[string]*bwd.Column
}

func (s *execSnap) get(table, col string) *bwd.Column { return s.decs[table+"."+col] }

// snapFor returns the snapshot holding table's data (fact or dim).
func (s *execSnap) snapFor(q *Query, table string) *store.Snapshot {
	if q.Join != nil && table == q.Join.Dim {
		return s.dim
	}
	return s.fact
}

// pinSnapshots resolves and pins the table versions the query reads,
// without requiring decompositions (the classic executor's half of
// validate). Joins require the dimension side to be delta-free: the FK
// index and the join positions address the dimension base segment, so
// freshly inserted dimension rows must be merged before they are joinable.
func (q *Query) pinSnapshots(c *Catalog) (*execSnap, error) {
	fact, err := c.Table(q.Table)
	if err != nil {
		return nil, err
	}
	snap := &execSnap{fact: fact.Snapshot(), decs: map[string]*bwd.Column{}}
	if q.Join != nil {
		dim, err := c.Table(q.Join.Dim)
		if err != nil {
			return nil, err
		}
		snap.dim = dim.Snapshot()
		if snap.dim.DeltaLen() > 0 {
			return nil, fmt.Errorf("plan: dimension table %s has unmerged delta rows; merge it before joining", q.Join.Dim)
		}
		if snap.dim.BaseLen() == 0 {
			// Guard both executors: the A&R dense-PK arithmetic reads
			// pk.Tail(0), and the classic path has no index to probe.
			return nil, fmt.Errorf("plan: dimension table %s is empty; load it before joining", q.Join.Dim)
		}
	}
	return snap, nil
}

// validate checks that the query references only known tables/columns and
// that every column an A&R plan touches is decomposed, returning the
// pinned snapshots and resolved decompositions as the execution's
// snapshot. One walk does both, so validation and snapshot can never cover
// different column sets.
func (q *Query) validate(c *Catalog) (*execSnap, error) {
	snap, err := q.pinSnapshots(c)
	if err != nil {
		return nil, err
	}
	add := func(table, col string) error {
		key := table + "." + col
		if _, done := snap.decs[key]; done {
			return nil
		}
		d := snap.snapFor(q, table).Dec(col)
		if d == nil {
			// Distinguish unknown columns from undecomposed ones.
			if _, cerr := snap.snapFor(q, table).Column(col); cerr != nil {
				return fmt.Errorf("plan: unknown column %s.%s", table, col)
			}
			return fmt.Errorf("plan: column %s.%s is not bitwise decomposed; call Decompose first", table, col)
		}
		snap.decs[key] = d
		return nil
	}
	for _, f := range q.Filters {
		if err := add(q.Table, f.Col); err != nil {
			return nil, err
		}
	}
	for _, g := range q.GroupBy {
		if err := add(q.Table, g); err != nil {
			return nil, err
		}
	}
	if q.Join != nil {
		if err := add(q.Table, q.Join.FKCol); err != nil {
			return nil, err
		}
		for _, f := range q.Join.DimFilters {
			if err := add(q.Join.Dim, f.Col); err != nil {
				return nil, err
			}
		}
	}
	for _, a := range q.Aggs {
		if a.Expr == nil {
			if a.Func != Count {
				return nil, fmt.Errorf("plan: aggregate %s needs an expression", a.Func)
			}
			continue
		}
		for _, ref := range a.Expr.Cols() {
			tbl := q.Table
			if ref.Dim {
				if q.Join == nil {
					return nil, fmt.Errorf("plan: dimension column %s referenced without a join", ref.Name)
				}
				tbl = q.Join.Dim
			}
			if err := add(tbl, ref.Name); err != nil {
				return nil, err
			}
		}
	}
	if len(q.Filters) == 0 && len(q.GroupBy) == 0 && len(q.Aggs) == 0 {
		return nil, fmt.Errorf("plan: empty query")
	}
	if len(q.Filters) == 0 {
		// The approximation subplan needs a fact-side column to scan.
		// Rejecting here keeps CanExecAR aligned with what ExecAR can
		// actually run, so auto-mode routing falls back to classic.
		if _, ok := q.anchorColumn(); !ok {
			return nil, fmt.Errorf("plan: A&R plan needs a fact-side column to scan (add a filter, grouping, or fact-column aggregate)")
		}
	}
	return snap, nil
}

// ARValidate reports why the query cannot run as an A&R plan against this
// catalog (typically: a touched column is not bitwise decomposed), or nil
// if it can.
func (c *Catalog) ARValidate(q Query) error {
	_, err := q.validate(c)
	return err
}

// CanExecAR reports whether the query can run as an A&R plan against this
// catalog — i.e. every column it touches is bitwise decomposed. The server's
// device-aware scheduler uses it to route statements: A&R-capable plans go
// to the GPU stream, the rest to the classic CPU pool.
func (c *Catalog) CanExecAR(q Query) bool {
	return c.ARValidate(q) == nil
}

// anchorColumn picks the column whose approximation the full-table scan
// uses when the query has no filters (pure grouping/aggregation).
func (q *Query) anchorColumn() (string, bool) {
	if len(q.GroupBy) > 0 {
		return q.GroupBy[0], true
	}
	for _, a := range q.Aggs {
		if a.Expr == nil {
			continue
		}
		for _, ref := range a.Expr.Cols() {
			if !ref.Dim {
				return ref.Name, true
			}
		}
	}
	return "", false
}
