package plan

import (
	"fmt"
	"sort"

	"repro/internal/bwd"
	"repro/internal/device"
	"repro/internal/shard"
	"repro/internal/store"
)

// Partitioned-table catalog surface. A partitioned table is a shard.Spec
// plus N ordinary store.Tables named <table>.p<i>, all registered in the
// regular table map — so merges, checkpoints, segment files and per-table
// metrics see N independent tables and need no partition awareness. The
// wrapper itself lives in a separate registry and owns routing: inserts
// split by the spec, deletes/decompose/merge fan out to every partition,
// and scans scatter-gather (see exec_scatter.go).

// CreatePartitionedTable registers a new empty partitioned table: the
// engine-level CREATE TABLE ... PARTITION BY. With durability attached the
// create is one WAL record; replay re-creates the wrapper and adopts any
// partitions already restored from their segment files.
func (c *Catalog) CreatePartitionedTable(name string, defs []store.ColumnDef, spec shard.Spec) (*shard.Partitioned, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	parts := make([]*store.Table, spec.N)
	for i := range parts {
		st, err := store.New(shard.PartName(name, i), defs, nil, c.sys)
		if err != nil {
			return nil, err
		}
		parts[i] = st
	}
	p, err := shard.NewPartitioned(name, spec, parts)
	if err != nil {
		return nil, err
	}
	if d := c.durability(); d != nil {
		if err := d.LogCreatePartitioned(name, defs, spec, func() error { return c.registerPartitioned(p) }); err != nil {
			return nil, err
		}
		return p, nil
	}
	if err := c.registerPartitioned(p); err != nil {
		return nil, err
	}
	return p, nil
}

// registerPartitioned atomically registers the wrapper and all its
// partition tables, rejecting any name collision.
func (c *Catalog) registerPartitioned(p *shard.Partitioned) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.parted[p.Name]; dup {
		return fmt.Errorf("plan: duplicate table %s", p.Name)
	}
	if _, dup := c.tables[p.Name]; dup {
		return fmt.Errorf("plan: duplicate table %s", p.Name)
	}
	for _, t := range p.Parts {
		if _, dup := c.tables[t.Name()]; dup {
			return fmt.Errorf("plan: duplicate table %s", t.Name())
		}
	}
	for _, t := range p.Parts {
		c.tables[t.Name()] = t
	}
	c.parted[p.Name] = p
	return nil
}

// AdoptPartitioned rebuilds a partitioned table's wrapper during recovery:
// partition tables already restored from segment files are adopted as-is,
// missing ones are created empty (their history replays from the WAL).
// It returns the indices of the partitions it had to create, so the
// durability layer can seed their replay horizons.
func (c *Catalog) AdoptPartitioned(name string, defs []store.ColumnDef, spec shard.Spec) (*shard.Partitioned, []int, error) {
	if err := spec.Validate(); err != nil {
		return nil, nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.parted[name]; dup {
		return nil, nil, fmt.Errorf("plan: duplicate table %s", name)
	}
	if _, dup := c.tables[name]; dup {
		return nil, nil, fmt.Errorf("plan: duplicate table %s", name)
	}
	parts := make([]*store.Table, spec.N)
	var fresh []int
	for i := range parts {
		pn := shard.PartName(name, i)
		if t, ok := c.tables[pn]; ok {
			parts[i] = t
			continue
		}
		t, err := store.New(pn, defs, nil, c.sys)
		if err != nil {
			return nil, nil, err
		}
		parts[i] = t
		fresh = append(fresh, i)
	}
	p, err := shard.NewPartitioned(name, spec, parts)
	if err != nil {
		return nil, nil, err
	}
	for _, i := range fresh {
		c.tables[parts[i].Name()] = parts[i]
	}
	c.parted[name] = p
	return p, fresh, nil
}

// Partitioned returns the wrapper of a partitioned table, if name is one.
func (c *Catalog) Partitioned(name string) (*shard.Partitioned, bool) {
	c.mu.RLock()
	p, ok := c.parted[name]
	c.mu.RUnlock()
	return p, ok
}

// PartitionedNames returns the partitioned table names in sorted order.
func (c *Catalog) PartitionedNames() []string {
	c.mu.RLock()
	out := make([]string, 0, len(c.parted))
	for name := range c.parted {
		out = append(out, name)
	}
	c.mu.RUnlock()
	sort.Strings(out)
	return out
}

// SchemaTable resolves a name to the table that carries its schema: the
// table itself, or partition 0 for a partitioned table (all partitions
// share one schema). The SQL binder uses it so INSERT/SELECT/DELETE bind
// against wrapper names.
func (c *Catalog) SchemaTable(name string) (*store.Table, error) {
	c.mu.RLock()
	t, ok := c.tables[name]
	if !ok {
		if p, pok := c.parted[name]; pok {
			t, ok = p.Schema(), true
		}
	}
	c.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("plan: unknown table %s", name)
	}
	return t, nil
}

// insertPartitioned routes rows to their partitions and appends each
// group. With durability attached every non-empty group is its own WAL
// record under the partition table's name, so each partition's checkpoint
// horizon covers exactly its own rows and replay re-applies them to the
// right partition directly. Atomicity is per partition: a crash between
// group appends can persist a row subset of one statement, never a torn
// row.
func (c *Catalog) insertPartitioned(m *device.Meter, p *shard.Partitioned, rows [][]int64) (int, error) {
	total := 0
	for i, group := range p.Split(rows) {
		if len(group) == 0 {
			continue
		}
		n, err := c.InsertRows(m, shard.PartName(p.Name, i), group)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// deletePartitioned fans a delete out to every partition.
func (c *Catalog) deletePartitioned(m *device.Meter, p *shard.Partitioned, filters []Filter) (int64, error) {
	var total int64
	for i := range p.Parts {
		n, err := c.DeleteRows(m, shard.PartName(p.Name, i), filters)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// decomposePartitioned fans a bitwise decomposition out to every non-empty
// partition; the returned column is the first decomposed one. Empty
// partitions are skipped — bwd rejects empty columns, and routing skew
// (e.g. range partitioning a narrow domain) legitimately leaves partitions
// empty — so their scans fall back to classic until rows arrive and a
// re-decompose runs. An entirely empty table errors like a plain one.
func (c *Catalog) decomposePartitioned(m *device.Meter, p *shard.Partitioned, col string, approxBits uint) (*bwd.Column, error) {
	var out *bwd.Column
	for i := range p.Parts {
		if p.Parts[i].Snapshot().Len() == 0 {
			continue
		}
		d, err := c.DecomposeMetered(m, shard.PartName(p.Name, i), col, approxBits)
		if err != nil {
			return nil, err
		}
		if out == nil {
			out = d
		}
	}
	if out == nil {
		return nil, fmt.Errorf("store: bwdecompose(%s.%s, %d): bwd: cannot decompose empty column", p.Name, col, approxBits)
	}
	return out, nil
}

// mergePartitioned compacts every partition, aggregating the stats.
func (c *Catalog) mergePartitioned(m *device.Meter, p *shard.Partitioned, auto bool) (store.MergeStats, error) {
	var out store.MergeStats
	for i := range p.Parts {
		st, err := c.MergeTable(m, shard.PartName(p.Name, i), auto)
		if err != nil {
			return out, err
		}
		out.Merged = out.Merged || st.Merged
		out.DeltaRows += st.DeltaRows
		out.DroppedRows += st.DroppedRows
		out.ShippedBytes += st.ShippedBytes
		out.FullBytes += st.FullBytes
	}
	return out, nil
}

// dropPartitioned drops every partition, then the wrapper entry. With
// durability attached each partition drop is its own WAL record (and
// reclaims that partition's segment files), followed by one record for the
// wrapper itself so its create record is reclaimed too.
func (c *Catalog) dropPartitioned(p *shard.Partitioned) error {
	d := c.durability()
	for i := range p.Parts {
		pn := shard.PartName(p.Name, i)
		if d != nil {
			if err := d.LogDrop(pn, func() error { return c.dropTable(pn) }); err != nil {
				return err
			}
			continue
		}
		// Memory-only (including WAL replay, where the per-partition drop
		// records have already been applied individually): tolerate
		// partitions that are already gone.
		c.dropTable(pn)
	}
	unlink := func() error {
		c.mu.Lock()
		delete(c.parted, p.Name)
		c.mu.Unlock()
		return nil
	}
	if d != nil {
		return d.LogDrop(p.Name, unlink)
	}
	return unlink()
}
