package plan

import "context"

// Stage identifies a cooperative cancellation checkpoint between pipeline
// stages of an executor. The executors poll the query context at every
// stage boundary — never inside an operator's tight loop — so cancellation
// latency is bounded by one operator pass while the hot loops stay free of
// per-tuple branches.
type Stage string

// Checkpoint stages, in pipeline order. The A&R executor passes through
// StageApprox (one per approximate operator), StageShip (the single bus
// crossing), StageRefine (one per refinement batch: selection refinements,
// projection reconstructions, group refinement) and StageAggregate. The
// classic executor passes through StageBulk (one per fully-materializing
// bulk pass) and StageAggregate.
const (
	StageApprox    Stage = "approximate"
	StageShip      Stage = "ship"
	StageDelta     Stage = "delta"
	StageRefine    Stage = "refine"
	StageAggregate Stage = "aggregate"
	StageBulk      Stage = "bulk"
	// Partitioned (scatter-gather) executions additionally pass through
	// StageScatter per partition scan and StageGather once before the
	// shared tail runs over the merged partials.
	StageScatter Stage = "scatter"
	StageGather  Stage = "gather"
)

// step is the cooperative checkpoint: it fires the observer hook (if any)
// and reports ctx.Err() once the query's context is cancelled, so a
// cancelled query stops between stages instead of running to completion.
func step(ctx context.Context, opts ExecOpts, s Stage) error {
	if opts.OnStage != nil {
		opts.OnStage(s)
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}
