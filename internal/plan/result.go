package plan

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ar"
	"repro/internal/device"
	"repro/internal/obs"
)

// Row is one output row: the grouping key values (empty for global
// aggregation) and one value per aggregate.
type Row struct {
	Keys []int64
	Vals []int64
}

// ApproxAnswer is the phase-A result: after the approximation subplan has
// run on the device — and before any refinement work — the system can
// report strict bounds on the query answer "without wasting resources"
// (§III item 4).
type ApproxAnswer struct {
	Count ar.Interval   // bounds on the number of qualifying tuples
	Aggs  []ar.Interval // bounds per aggregate, over all groups
}

// Result is the outcome of executing a query.
type Result struct {
	Rows   []Row
	Approx ApproxAnswer
	// Meter holds the simulated device-time breakdown (GPU/CPU/PCI).
	Meter *device.Meter
	// Candidates and Refined are the candidate-set sizes before and after
	// refinement; their difference is the false-positive count.
	Candidates int
	Refined    int
	// InputBytes is the footprint of every input column the query reads —
	// the quantity a streaming GPU system would have to push through the
	// bus (the paper's "Stream (Hypothetical)" baseline).
	InputBytes int64
	// Plan is the MAL-style physical plan listing (Fig 7).
	Plan []string
	// Trace is the per-operator telemetry record, present only when
	// ExecOpts.Trace was set. Tracing reads the meter and the clock; it
	// never charges the meter, so Rows, Approx, Meter, Candidates and
	// Refined are bit-identical with and without it.
	Trace *obs.Trace
}

// StreamHypothetical returns the paper's streaming-baseline time for this
// query's input.
func (r *Result) StreamHypothetical() float64 {
	return r.Meter.StreamHypothetical(r.InputBytes).Seconds()
}

// sortRows orders rows by their key tuples for deterministic output.
func sortRows(rows []Row) {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i].Keys, rows[j].Keys
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}

// FormatRows renders rows for diagnostics and examples.
func FormatRows(rows []Row) string {
	var sb strings.Builder
	for _, r := range rows {
		if len(r.Keys) > 0 {
			fmt.Fprintf(&sb, "%v -> %v\n", r.Keys, r.Vals)
		} else {
			fmt.Fprintf(&sb, "%v\n", r.Vals)
		}
	}
	return sb.String()
}

// EqualResults reports whether two result row sets are identical (used by
// tests asserting A&R == classic).
func EqualResults(a, b []Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i].Keys) != len(b[i].Keys) || len(a[i].Vals) != len(b[i].Vals) {
			return false
		}
		for k := range a[i].Keys {
			if a[i].Keys[k] != b[i].Keys[k] {
				return false
			}
		}
		for k := range a[i].Vals {
			if a[i].Vals[k] != b[i].Vals[k] {
				return false
			}
		}
	}
	return true
}
