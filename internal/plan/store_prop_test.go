package plan

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/bat"
	"repro/internal/device"
	"repro/internal/store"
)

// propCatalog builds a three-column decomposed fact table for the DML
// property tests.
func propCatalog(t testing.TB, n int, seed int64) *Catalog {
	t.Helper()
	c := NewCatalog(device.PaperSystem())
	rng := rand.New(rand.NewSource(seed))
	tbl := NewTable("fact")
	for _, col := range []string{"v", "w", "g"} {
		vals := make([]int64, n)
		for i := range vals {
			switch col {
			case "g":
				vals[i] = int64(rng.Intn(5))
			default:
				vals[i] = int64(rng.Intn(4096))
			}
		}
		if err := tbl.AddColumn(col, bat.NewDense(vals, bat.Width32)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.AddTable(tbl); err != nil {
		t.Fatal(err)
	}
	for col, bits := range map[string]uint{"v": 8, "w": 6, "g": 3} {
		if _, err := c.Decompose("fact", col, bits); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// propQueries is the query mix checked after every mutation: selections
// (conjunctive, one-sided), grouping, and every aggregate function.
func propQueries(rng *rand.Rand) []Query {
	lo := int64(rng.Intn(4096))
	hi := lo + int64(rng.Intn(2048))
	wlo := int64(rng.Intn(4096))
	return []Query{
		{
			Table:   "fact",
			Filters: []Filter{{Col: "v", Lo: lo, Hi: hi}},
			Aggs:    []AggSpec{{Name: "n", Func: Count}, {Name: "s", Func: Sum, Expr: Col("w")}},
		},
		{
			Table:   "fact",
			Filters: []Filter{{Col: "v", Lo: lo, Hi: hi}, {Col: "w", Lo: wlo, Hi: NoHi}},
			Aggs: []AggSpec{
				{Name: "mn", Func: Min, Expr: Col("w")},
				{Name: "mx", Func: Max, Expr: Col("w")},
				{Name: "av", Func: Avg, Expr: Add(Col("v"), Col("w"))},
			},
		},
		{
			Table:   "fact",
			Filters: []Filter{{Col: "v", Lo: lo, Hi: hi}},
			GroupBy: []string{"g"},
			Aggs:    []AggSpec{{Name: "n", Func: Count}, {Name: "s", Func: Sum, Expr: MulScaled(Col("v"), Col("w"), 1)}},
		},
		{
			Table:   "fact",
			GroupBy: []string{"g"},
			Aggs:    []AggSpec{{Name: "n", Func: Count}, {Name: "s", Func: Sum, Expr: Col("v")}},
		},
	}
}

// TestARMatchesClassicUnderDML is the property test: after every step of a
// random interleaving of inserts, deletes and merges, the classic and A&R
// executors must return identical results for a mix of selection, grouping
// and aggregation queries.
func TestARMatchesClassicUnderDML(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			c := propCatalog(t, 5000, seed)
			rng := rand.New(rand.NewSource(seed * 100))
			for step := 0; step < 40; step++ {
				switch op := rng.Intn(10); {
				case op < 5: // insert a batch
					rows := make([][]int64, 1+rng.Intn(50))
					for i := range rows {
						rows[i] = []int64{int64(rng.Intn(4096)), int64(rng.Intn(4096)), int64(rng.Intn(5))}
					}
					if _, err := c.InsertRows(nil, "fact", rows); err != nil {
						t.Fatal(err)
					}
				case op < 8: // delete a range
					lo := int64(rng.Intn(4096))
					f := Filter{Col: "v", Lo: lo, Hi: lo + int64(rng.Intn(256))}
					if _, err := c.DeleteRows(nil, "fact", []Filter{f}); err != nil {
						t.Fatal(err)
					}
				default: // merge
					if _, err := c.MergeTable(nil, "fact", false); err != nil {
						t.Fatal(err)
					}
				}
				for qi, q := range propQueries(rng) {
					ar, err := c.ExecAR(q, ExecOpts{})
					if err != nil {
						t.Fatalf("step %d query %d AR: %v", step, qi, err)
					}
					cl, err := c.ExecClassic(q, ExecOpts{})
					if err != nil {
						t.Fatalf("step %d query %d classic: %v", step, qi, err)
					}
					if !EqualResults(ar.Rows, cl.Rows) {
						t.Fatalf("step %d query %d: A&R %v != classic %v", step, qi, ar.Rows, cl.Rows)
					}
					// The phase-A answer must bound the exact count.
					exact := int64(ar.Refined)
					if ar.Approx.Count.Lo > exact || ar.Approx.Count.Hi < exact {
						t.Fatalf("step %d query %d: approx count %v excludes exact %d", step, qi, ar.Approx.Count, exact)
					}
				}
			}
		})
	}
}

// TestConcurrentDMLAndQueries races writers (inserts, deletes, merges)
// against readers in both executor modes: every query must succeed against
// a consistent pinned snapshot, returning a count within the feasible
// range. Run with -race; this is the snapshot-isolation stress test.
func TestConcurrentDMLAndQueries(t *testing.T) {
	c := propCatalog(t, 2000, 42)
	const maxExtra = 31 * 20
	q := Query{
		Table:   "fact",
		Filters: []Filter{{Col: "v", Lo: 0, Hi: 4095}},
		Aggs:    []AggSpec{{Name: "n", Func: Count}},
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	// Writer: inserts, deletes, merges.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 30; i++ {
			rows := make([][]int64, 20)
			for r := range rows {
				rows[r] = []int64{int64(rng.Intn(4096)), int64(rng.Intn(4096)), int64(rng.Intn(5))}
			}
			if _, err := c.InsertRows(nil, "fact", rows); err != nil {
				errs <- err
				return
			}
			if i%5 == 1 {
				lo := int64(rng.Intn(4096))
				if _, err := c.DeleteRows(nil, "fact", []Filter{{Col: "v", Lo: lo, Hi: lo + 64}}); err != nil {
					errs <- err
					return
				}
			}
			if i%7 == 3 {
				if _, err := c.MergeTable(nil, "fact", false); err != nil {
					errs <- err
					return
				}
			}
		}
	}()
	// Readers in both modes.
	for r := 0; r < 8; r++ {
		wg.Add(1)
		classic := r%2 == 0
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				var res *Result
				var err error
				if classic {
					res, err = c.ExecClassic(q, ExecOpts{})
				} else {
					res, err = c.ExecAR(q, ExecOpts{})
				}
				if err != nil {
					errs <- err
					return
				}
				n := res.Rows[0].Vals[0]
				if n < 0 || n > 2000+maxExtra {
					errs <- fmt.Errorf("count %d outside feasible range", n)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestJoinWithDimDeletionsAndEmptyDim covers the dimension-side edge
// cases: deleted dimension rows drop their joined fact rows identically in
// both executors (bitmap-masked, no compaction), and joining an empty
// dimension errors instead of panicking.
func TestJoinWithDimDeletionsAndEmptyDim(t *testing.T) {
	c := NewCatalog(device.PaperSystem())
	fact := NewTable("fact")
	n := 1000
	fk := make([]int64, n)
	v := make([]int64, n)
	for i := range fk {
		fk[i] = int64(i % 10)
		v[i] = int64(i)
	}
	if err := fact.AddColumn("fk", bat.NewDense(fk, bat.Width32)); err != nil {
		t.Fatal(err)
	}
	if err := fact.AddColumn("v", bat.NewDense(v, bat.Width32)); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTable(fact); err != nil {
		t.Fatal(err)
	}
	dim := NewTable("dim")
	ids := make([]int64, 10)
	pay := make([]int64, 10)
	for i := range ids {
		ids[i] = int64(i)
		pay[i] = int64(i) * 100
	}
	if err := dim.AddColumn("id", bat.NewDense(ids, bat.Width32)); err != nil {
		t.Fatal(err)
	}
	if err := dim.AddColumn("pay", bat.NewDense(pay, bat.Width32)); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTable(dim); err != nil {
		t.Fatal(err)
	}
	for col, bits := range map[string]uint{"fk": 4, "v": 8} {
		if _, err := c.Decompose("fact", col, bits); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Decompose("dim", "pay", 10); err != nil {
		t.Fatal(err)
	}
	if err := c.BuildFKIndex("dim", "id"); err != nil {
		t.Fatal(err)
	}
	q := Query{
		Table:   "fact",
		Filters: []Filter{{Col: "v", Lo: 0, Hi: 500}},
		Joins:   []JoinSpec{{FKCol: "fk", Dim: "dim", DimPK: "id"}},
		Aggs:    []AggSpec{{Name: "n", Func: Count}, {Name: "s", Func: Sum, Expr: DimCol("dim", "pay")}},
	}
	before, err := c.ExecClassic(q, ExecOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.DeleteRows(nil, "dim", []Filter{{Col: "id", Lo: 3, Hi: 3}}); err != nil {
		t.Fatal(err)
	}
	ar, err := c.ExecAR(q, ExecOpts{})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := c.ExecClassic(q, ExecOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !EqualResults(ar.Rows, cl.Rows) {
		t.Fatalf("after dim delete: A&R %v != classic %v", ar.Rows, cl.Rows)
	}
	if EqualResults(before.Rows, cl.Rows) {
		t.Fatal("dim deletion had no effect on the join")
	}
	// Compacting the dimension would break the dense key; the merge must
	// refuse rather than let the positional join silently mis-join.
	if _, err := c.MergeTable(nil, "dim", false); err == nil {
		t.Fatal("dimension merge compacted a dense key")
	}

	// Joining an empty dimension errors in both modes (no panic).
	if _, err := c.CreateTable("empty", []store.ColumnDef{{Name: "id", Scale: 1, Width: bat.Width32}}); err != nil {
		t.Fatal(err)
	}
	qe := q
	qe.Joins = []JoinSpec{{FKCol: "fk", Dim: "empty", DimPK: "id"}}
	qe.Aggs = []AggSpec{{Name: "n", Func: Count}}
	if _, err := c.ExecAR(qe, ExecOpts{}); err == nil {
		t.Fatal("A&R join with empty dimension accepted")
	}
	if _, err := c.ExecClassic(qe, ExecOpts{}); err == nil {
		t.Fatal("classic join with empty dimension accepted")
	}
}

// TestPropParallelMorselEquivalence is the morsel-edge property test: for
// random deletion-bitmap densities and delta sizes, the classic and A&R
// executors must return results identical to the serial (Workers=1) run
// for every worker count and morsel size — and the simulated meter must be
// bit-identical too, since the worker budget must never leak into the cost
// model. Small Morsel values force many morsel boundaries through the
// deletion mask, the delta scan and the grouping merge.
func TestPropParallelMorselEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 2; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			c := propCatalog(t, 6000, seed)
			rng := rand.New(rand.NewSource(seed * 31))
			// Random delta size and deletion density.
			extra := rng.Intn(3000)
			rows := make([][]int64, extra)
			for i := range rows {
				rows[i] = []int64{int64(rng.Intn(4096)), int64(rng.Intn(4096)), int64(rng.Intn(5))}
			}
			if _, err := c.InsertRows(nil, "fact", rows); err != nil {
				t.Fatal(err)
			}
			for d := 0; d < 1+rng.Intn(4); d++ {
				lo := int64(rng.Intn(4096))
				if _, err := c.DeleteRows(nil, "fact", []Filter{{Col: "v", Lo: lo, Hi: lo + int64(rng.Intn(512))}}); err != nil {
					t.Fatal(err)
				}
			}
			for qi, q := range propQueries(rng) {
				serialAR, err := c.ExecAR(q, ExecOpts{Threads: 1, Workers: 1})
				if err != nil {
					t.Fatalf("query %d serial AR: %v", qi, err)
				}
				serialCl, err := c.ExecClassic(q, ExecOpts{Threads: 1, Workers: 1})
				if err != nil {
					t.Fatalf("query %d serial classic: %v", qi, err)
				}
				if !EqualResults(serialAR.Rows, serialCl.Rows) {
					t.Fatalf("query %d: serial A&R %v != classic %v", qi, serialAR.Rows, serialCl.Rows)
				}
				for trial := 0; trial < 4; trial++ {
					opts := ExecOpts{
						Threads: 1,
						Workers: 2 + rng.Intn(7),
						Morsel:  []int{64, 128, 1024, 0}[rng.Intn(4)],
					}
					ar, err := c.ExecAR(q, opts)
					if err != nil {
						t.Fatalf("query %d %+v AR: %v", qi, opts, err)
					}
					cl, err := c.ExecClassic(q, opts)
					if err != nil {
						t.Fatalf("query %d %+v classic: %v", qi, opts, err)
					}
					if !EqualResults(ar.Rows, serialAR.Rows) {
						t.Fatalf("query %d %+v: parallel A&R %v != serial %v", qi, opts, ar.Rows, serialAR.Rows)
					}
					if !EqualResults(cl.Rows, serialCl.Rows) {
						t.Fatalf("query %d %+v: parallel classic %v != serial %v", qi, opts, cl.Rows, serialCl.Rows)
					}
					if *ar.Meter != *serialAR.Meter {
						t.Fatalf("query %d %+v: A&R meter %v != serial %v (worker budget leaked into the cost model)",
							qi, opts, ar.Meter, serialAR.Meter)
					}
					if *cl.Meter != *serialCl.Meter {
						t.Fatalf("query %d %+v: classic meter %v != serial %v (worker budget leaked into the cost model)",
							qi, opts, cl.Meter, serialCl.Meter)
					}
				}
			}
		})
	}
}

// newShapePropQueries is the widened-surface query mix for the DML
// property test over the star catalog: multi-join, OR, HAVING, ORDER
// BY/LIMIT — the shapes the pipeline layer added.
func newShapePropQueries(rng *rand.Rand) []Query {
	lo := int64(rng.Intn(3000))
	hi := lo + int64(rng.Intn(2000))
	return []Query{
		{ // two chained FK probes with dimension-side filters
			Table:   "fact",
			Filters: []Filter{{Col: "v", Lo: lo, Hi: hi}},
			Joins:   starJoins([]Filter{{Col: "a", Lo: 0, Hi: 70}}, []Filter{{Col: "b", Lo: 20, Hi: NoHi}}),
			Aggs: []AggSpec{
				{Name: "n", Func: Count},
				{Name: "s", Func: Sum, Expr: Add(Col("w"), DimCol("dim2", "b"))},
			},
		},
		{ // disjunction over two fact columns
			Table: "fact",
			Or:    [][]Filter{{{Col: "v", Lo: NoLo, Hi: lo}, {Col: "w", Lo: hi, Hi: NoHi}}},
			Aggs:  []AggSpec{{Name: "n", Func: Count}, {Name: "mx", Func: Max, Expr: Col("v")}},
		},
		{ // HAVING over a hidden aggregate
			Table:   "fact",
			Filters: []Filter{{Col: "v", Lo: lo, Hi: NoHi}},
			GroupBy: []string{"g"},
			Aggs: []AggSpec{
				{Name: "n", Func: Count},
				{Name: "hs", Func: Sum, Expr: Col("w"), Hidden: true},
			},
			Having: []HavingFilter{{Agg: 1, Lo: int64(rng.Intn(10000)), Hi: NoHi}},
		},
		{ // ORDER BY ... LIMIT with a join and an OR conjunct
			Table:   "fact",
			Or:      [][]Filter{{{Col: "v", Lo: 0, Hi: hi}, {Col: "w", Lo: 0, Hi: lo}}},
			Joins:   starJoins(nil, nil),
			GroupBy: []string{"g"},
			Aggs:    []AggSpec{{Name: "n", Func: Count}, {Name: "s", Func: Sum, Expr: DimCol("dim1", "a")}},
			OrderBy: []OrderKey{{Index: 1, Desc: true}, {Key: true, Index: 0}},
			Limit:   1 + rng.Intn(4),
		},
	}
}

// starInsertRow generates one fact row for the star catalog (v, w, g,
// fk1, fk2 — keys always within the dimension domains).
func starInsertRow(rng *rand.Rand) []int64 {
	return []int64{int64(rng.Intn(4096)), int64(rng.Intn(4096)), int64(rng.Intn(5)),
		int64(rng.Intn(40)), int64(rng.Intn(25))}
}

// TestNewShapesMatchUnderDML extends the classic==A&R equivalence
// property to the widened query surface: after every step of a random
// interleaving of fact inserts, deletes and merges, every new shape
// (multi-join, OR, HAVING, ORDER BY/LIMIT) must return identical results
// in both modes — and stay byte-stable with bit-identical meters across a
// worker-count/morsel sweep.
func TestNewShapesMatchUnderDML(t *testing.T) {
	for seed := int64(1); seed <= 2; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			c := buildStarCatalog(t, 4000, seed*1000)
			rng := rand.New(rand.NewSource(seed * 77))
			for step := 0; step < 12; step++ {
				switch op := rng.Intn(10); {
				case op < 5: // insert a batch
					rows := make([][]int64, 1+rng.Intn(40))
					for i := range rows {
						rows[i] = starInsertRow(rng)
					}
					if _, err := c.InsertRows(nil, "fact", rows); err != nil {
						t.Fatal(err)
					}
				case op < 8: // delete a range
					lo := int64(rng.Intn(4096))
					if _, err := c.DeleteRows(nil, "fact", []Filter{{Col: "v", Lo: lo, Hi: lo + int64(rng.Intn(256))}}); err != nil {
						t.Fatal(err)
					}
				default: // merge
					if _, err := c.MergeTable(nil, "fact", false); err != nil {
						t.Fatal(err)
					}
				}
				for qi, q := range newShapePropQueries(rng) {
					ar, err := c.ExecAR(q, ExecOpts{Threads: 1, Workers: 1})
					if err != nil {
						t.Fatalf("step %d query %d AR: %v", step, qi, err)
					}
					cl, err := c.ExecClassic(q, ExecOpts{Threads: 1, Workers: 1})
					if err != nil {
						t.Fatalf("step %d query %d classic: %v", step, qi, err)
					}
					if !EqualResults(ar.Rows, cl.Rows) {
						t.Fatalf("step %d query %d: A&R %v != classic %v", step, qi, ar.Rows, cl.Rows)
					}
					// Worker/morsel sweep: byte-stable rows, bit-identical meters.
					opts := ExecOpts{Threads: 1, Workers: 2 + rng.Intn(6), Morsel: []int{64, 512, 0}[rng.Intn(3)]}
					arp, err := c.ExecAR(q, opts)
					if err != nil {
						t.Fatalf("step %d query %d AR %+v: %v", step, qi, opts, err)
					}
					if !EqualResults(arp.Rows, ar.Rows) {
						t.Fatalf("step %d query %d %+v: parallel A&R %v != serial %v", step, qi, opts, arp.Rows, ar.Rows)
					}
					if *arp.Meter != *ar.Meter {
						t.Fatalf("step %d query %d %+v: A&R meter %v != serial %v", step, qi, opts, arp.Meter, ar.Meter)
					}
					clp, err := c.ExecClassic(q, opts)
					if err != nil {
						t.Fatalf("step %d query %d classic %+v: %v", step, qi, opts, err)
					}
					if !EqualResults(clp.Rows, cl.Rows) {
						t.Fatalf("step %d query %d %+v: parallel classic %v != serial %v", step, qi, opts, clp.Rows, cl.Rows)
					}
					if *clp.Meter != *cl.Meter {
						t.Fatalf("step %d query %d %+v: classic meter %v != serial %v", step, qi, opts, clp.Meter, cl.Meter)
					}
				}
			}
		})
	}
}

// TestConcurrentDMLNewShapes races fact-side writers against readers
// running the widened query shapes in both modes — the snapshot-isolation
// stress for the pipeline layer. Run with -race.
func TestConcurrentDMLNewShapes(t *testing.T) {
	c := buildStarCatalog(t, 2000, 99)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 25; i++ {
			rows := make([][]int64, 15)
			for r := range rows {
				rows[r] = starInsertRow(rng)
			}
			if _, err := c.InsertRows(nil, "fact", rows); err != nil {
				errs <- err
				return
			}
			if i%5 == 1 {
				lo := int64(rng.Intn(4096))
				if _, err := c.DeleteRows(nil, "fact", []Filter{{Col: "v", Lo: lo, Hi: lo + 64}}); err != nil {
					errs <- err
					return
				}
			}
			if i%7 == 3 {
				if _, err := c.MergeTable(nil, "fact", false); err != nil {
					errs <- err
					return
				}
			}
		}
	}()
	for r := 0; r < 6; r++ {
		wg.Add(1)
		classic := r%2 == 0
		seed := int64(r)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 25; i++ {
				for _, q := range newShapePropQueries(rng) {
					var err error
					if classic {
						_, err = c.ExecClassic(q, ExecOpts{Workers: 2, Morsel: 256})
					} else {
						_, err = c.ExecAR(q, ExecOpts{Workers: 2, Morsel: 256})
					}
					if err != nil {
						errs <- err
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestParallelCancelledDeltaScanReturnsError is the regression for the
// nil-partial merge: a context cancelled mid-delta-scan must surface
// ctx.Err() from scanDelta instead of merging (and panicking on) the
// unscanned morsels' nil partials.
func TestParallelCancelledDeltaScanReturnsError(t *testing.T) {
	c := propCatalog(t, 2000, 1)
	rows := make([][]int64, 500)
	for i := range rows {
		rows[i] = []int64{int64(i % 4096), int64(i % 4096), int64(i % 5)}
	}
	if _, err := c.InsertRows(nil, "fact", rows); err != nil {
		t.Fatal(err)
	}
	q := Query{
		Table:   "fact",
		Filters: []Filter{{Col: "v", Lo: 0, Hi: 4095}},
		Aggs:    []AggSpec{{Name: "s", Func: Sum, Expr: Col("w")}},
	}
	snap, err := q.pinSnapshots(c)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pp := ExecOpts{Threads: 1, Workers: 4, Morsel: 64}.par(ctx)
	dset, err := scanDelta(nil, pp, q, snap, neededCols(q, false), nil)
	if err == nil {
		t.Fatalf("cancelled delta scan returned %+v without error", dset)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled delta scan returned %v, want context.Canceled", err)
	}
}
