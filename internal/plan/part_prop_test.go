package plan

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bat"
	"repro/internal/device"
	"repro/internal/shard"
	"repro/internal/store"
)

// partFactDefs is the shared fact schema of the partition property tests.
func partFactDefs() []store.ColumnDef {
	return []store.ColumnDef{
		{Name: "v", Scale: 1, Width: bat.Width32},
		{Name: "w", Scale: 1, Width: bat.Width32},
		{Name: "g", Scale: 1, Width: bat.Width32},
	}
}

// partPropRow generates one fact row (v, w, g) for the partition tests.
func partPropRow(rng *rand.Rand) []int64 {
	return []int64{int64(rng.Intn(4096)), int64(rng.Intn(4096)), int64(rng.Intn(5))}
}

// partPropCatalog builds one catalog holding "fact" with the given
// partition count (0 = plain, unpartitioned), loaded with rows and fully
// decomposed. Every catalog built from the same rows holds the same
// logical table, so executors over different partition counts must agree.
func partPropCatalog(t testing.TB, parts int, kind shard.Kind, rows [][]int64) *Catalog {
	t.Helper()
	c := NewCatalog(device.PaperSystem())
	if parts == 0 {
		if _, err := c.CreateTable("fact", partFactDefs()); err != nil {
			t.Fatal(err)
		}
	} else {
		spec := shard.Spec{Kind: kind, Col: "v", N: parts}
		if _, err := c.CreatePartitionedTable("fact", partFactDefs(), spec); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.InsertRows(nil, "fact", rows); err != nil {
		t.Fatal(err)
	}
	for col, bits := range map[string]uint{"v": 8, "w": 6, "g": 3} {
		if _, err := c.Decompose("fact", col, bits); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// TestPropPartitionEquivalence is the scatter-gather property test: the
// same logical table partitioned 1, 2 and 7 ways (hash and range) must
// return rows byte-identical to the unpartitioned table in both executor
// modes, after every step of a random interleaving of inserts, deletes and
// merges — and each partition count must stay byte-stable with a
// bit-identical meter across a worker-count/morsel sweep (partition counts
// differ in per-kernel launch costs, so meters are only compared within a
// fixed count). Run with -race: the partition scans run concurrently.
func TestPropPartitionEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 2; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed * 13))
			base := make([][]int64, 3000)
			for i := range base {
				base[i] = partPropRow(rng)
			}
			type variant struct {
				label string
				cat   *Catalog
			}
			variants := []variant{{"plain", partPropCatalog(t, 0, shard.Hash, base)}}
			for _, p := range []int{1, 2, 7} {
				kind := shard.Hash
				if p == 2 {
					kind = shard.Range // cover range routing too
				}
				variants = append(variants, variant{
					fmt.Sprintf("%s%d", kind, p),
					partPropCatalog(t, p, kind, base),
				})
			}
			for step := 0; step < 8; step++ {
				// One random DML op, applied to every variant identically.
				switch op := rng.Intn(10); {
				case op < 5: // insert a batch
					rows := make([][]int64, 1+rng.Intn(40))
					for i := range rows {
						rows[i] = partPropRow(rng)
					}
					for _, v := range variants {
						if _, err := v.cat.InsertRows(nil, "fact", rows); err != nil {
							t.Fatalf("step %d %s insert: %v", step, v.label, err)
						}
					}
				case op < 8: // delete a range
					lo := int64(rng.Intn(4096))
					f := Filter{Col: "v", Lo: lo, Hi: lo + int64(rng.Intn(256))}
					var want int64
					for i, v := range variants {
						n, err := v.cat.DeleteRows(nil, "fact", []Filter{f})
						if err != nil {
							t.Fatalf("step %d %s delete: %v", step, v.label, err)
						}
						if i == 0 {
							want = n
						} else if n != want {
							t.Fatalf("step %d %s: deleted %d rows, plain deleted %d", step, v.label, n, want)
						}
					}
				default: // merge every partition
					for _, v := range variants {
						if _, err := v.cat.MergeTable(nil, "fact", false); err != nil {
							t.Fatalf("step %d %s merge: %v", step, v.label, err)
						}
					}
				}
				for qi, q := range propQueries(rng) {
					serial := ExecOpts{Threads: 1, Workers: 1}
					refAR, err := variants[0].cat.ExecAR(q, serial)
					if err != nil {
						t.Fatalf("step %d query %d plain AR: %v", step, qi, err)
					}
					refCl, err := variants[0].cat.ExecClassic(q, serial)
					if err != nil {
						t.Fatalf("step %d query %d plain classic: %v", step, qi, err)
					}
					if !EqualResults(refAR.Rows, refCl.Rows) {
						t.Fatalf("step %d query %d: plain A&R %v != classic %v", step, qi, refAR.Rows, refCl.Rows)
					}
					for _, v := range variants[1:] {
						ar, err := v.cat.ExecAR(q, serial)
						if err != nil {
							t.Fatalf("step %d query %d %s AR: %v", step, qi, v.label, err)
						}
						cl, err := v.cat.ExecClassic(q, serial)
						if err != nil {
							t.Fatalf("step %d query %d %s classic: %v", step, qi, v.label, err)
						}
						if !EqualResults(ar.Rows, refAR.Rows) {
							t.Fatalf("step %d query %d %s: partitioned A&R %v != plain %v", step, qi, v.label, ar.Rows, refAR.Rows)
						}
						if !EqualResults(cl.Rows, refCl.Rows) {
							t.Fatalf("step %d query %d %s: partitioned classic %v != plain %v", step, qi, v.label, cl.Rows, refCl.Rows)
						}
						// The combined phase-A answer must still bound the exact count.
						exact := int64(ar.Refined)
						if ar.Approx.Count.Lo > exact || ar.Approx.Count.Hi < exact {
							t.Fatalf("step %d query %d %s: approx count %v excludes exact %d",
								step, qi, v.label, ar.Approx.Count, exact)
						}
						// Worker/morsel sweep at this fixed partition count:
						// byte-stable rows, bit-identical meter.
						opts := ExecOpts{Threads: 1, Workers: 2 + rng.Intn(6), Morsel: []int{64, 512, 0}[rng.Intn(3)]}
						arp, err := v.cat.ExecAR(q, opts)
						if err != nil {
							t.Fatalf("step %d query %d %s AR %+v: %v", step, qi, v.label, opts, err)
						}
						if !EqualResults(arp.Rows, ar.Rows) {
							t.Fatalf("step %d query %d %s %+v: parallel A&R %v != serial %v", step, qi, v.label, opts, arp.Rows, ar.Rows)
						}
						if *arp.Meter != *ar.Meter {
							t.Fatalf("step %d query %d %s %+v: A&R meter %v != serial %v (worker budget leaked into the cost model)",
								step, qi, v.label, opts, arp.Meter, ar.Meter)
						}
						clp, err := v.cat.ExecClassic(q, opts)
						if err != nil {
							t.Fatalf("step %d query %d %s classic %+v: %v", step, qi, v.label, opts, err)
						}
						if !EqualResults(clp.Rows, cl.Rows) {
							t.Fatalf("step %d query %d %s %+v: parallel classic %v != serial %v", step, qi, v.label, opts, clp.Rows, cl.Rows)
						}
						if *clp.Meter != *cl.Meter {
							t.Fatalf("step %d query %d %s %+v: classic meter %v != serial %v (worker budget leaked into the cost model)",
								step, qi, v.label, opts, clp.Meter, cl.Meter)
						}
					}
				}
			}
		})
	}
}

// TestPartitionedCatalogSurface covers the partition-aware catalog edges
// that the property test does not reach: wrapper names are rejected where a
// plain table is required, dimension-side use is refused, and \explain's
// scatter listing reports the fan-out.
func TestPartitionedCatalogSurface(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rows := make([][]int64, 500)
	for i := range rows {
		rows[i] = partPropRow(rng)
	}
	c := partPropCatalog(t, 3, shard.Hash, rows)

	// The wrapper is not a plain table.
	if _, err := c.Table("fact"); err == nil {
		t.Fatal("Table(wrapper) did not error")
	}
	// Partitioned tables cannot serve as dimensions: there is no dense PK
	// across partitions to index.
	if err := c.BuildFKIndex("fact", "v"); err == nil {
		t.Fatal("BuildFKIndex over a partitioned table accepted")
	}
	q := Query{
		Table:   "fact",
		Filters: []Filter{{Col: "v", Lo: 0, Hi: 2000}},
		GroupBy: []string{"g"},
		Aggs:    []AggSpec{{Name: "n", Func: Count}},
	}
	lines, err := c.ExplainQuery(q, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) == 0 {
		t.Fatal("empty explain")
	}
	if want := "scatter: fact over 3 partitions (partition by hash(v) partitions 3)"; lines[0] != want {
		t.Fatalf("explain header %q, want %q", lines[0], want)
	}
	seen := 0
	for _, l := range lines {
		if strings.HasPrefix(l, "  partition ") {
			seen++
		}
	}
	if seen != 3 {
		t.Fatalf("explain lists %d partition lines, want 3:\n%v", seen, lines)
	}
}
