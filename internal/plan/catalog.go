// Package plan implements the query layer of the reproduction: a logical
// query model, the bwd_pipe rewriter that turns classic bulk plans into
// Approximate & Refine plans (§V-B, Fig 7), a rule-based optimizer that
// pushes approximate selections down (§III-A), and two executors — the A&R
// executor spanning the simulated GPU/CPU system and the classic
// bulk-processing executor that serves as the paper's MonetDB baseline.
//
// Storage is the mutable column store of internal/store: every table is an
// immutable bit-sliced base segment plus an append-optimized delta segment
// and a deletion bitmap. Both executors pin a per-table snapshot at query
// start, scan the base segment through their native operator set, scan the
// delta with classic bulk passes, and merge the two honoring the deletion
// bitmap — so readers are snapshot isolated against concurrent DML.
package plan

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/bat"
	"repro/internal/bulk"
	"repro/internal/bwd"
	"repro/internal/device"
	"repro/internal/shard"
	"repro/internal/store"
)

// Table is a column-set builder used by the data loaders: columns are
// accumulated (with their fixed-point scales) and AddTable turns the
// builder into a mutable store.Table registered in the catalog. The
// AddColumn order becomes the table's schema order — the implicit column
// order of INSERT INTO ... VALUES.
type Table struct {
	Name  string
	cols  map[string]column
	order []string
	n     int
}

// column pairs the stored BAT with its fixed-point scale (1 for plain
// integers, 100 for decimal(_,2) money, 100000 for the decimal(_,5) GPS
// coordinates). The scale lets the SQL layer align decimal literals with
// the storage encoding.
type column struct {
	b     *bat.BAT
	scale int64
}

// NewTable creates an empty table builder.
func NewTable(name string) *Table {
	return &Table{Name: name, cols: make(map[string]column), n: -1}
}

// AddColumn adds a plain integer column (scale 1); all columns of a table
// must have equal length.
func (t *Table) AddColumn(name string, b *bat.BAT) error {
	return t.AddColumnScaled(name, b, 1)
}

// AddColumnScaled adds a fixed-point column with the given decimal scale.
func (t *Table) AddColumnScaled(name string, b *bat.BAT, scale int64) error {
	if _, dup := t.cols[name]; dup {
		return fmt.Errorf("plan: duplicate column %s.%s", t.Name, name)
	}
	if t.n >= 0 && b.Len() != t.n {
		return fmt.Errorf("plan: column %s.%s has %d rows, table has %d", t.Name, name, b.Len(), t.n)
	}
	if scale < 1 {
		return fmt.Errorf("plan: column %s.%s has invalid scale %d", t.Name, name, scale)
	}
	t.n = b.Len()
	t.cols[name] = column{b: b, scale: scale}
	t.order = append(t.order, name)
	return nil
}

// Column returns a column by name.
func (t *Table) Column(name string) (*bat.BAT, error) {
	c, ok := t.cols[name]
	if !ok {
		return nil, fmt.Errorf("plan: unknown column %s.%s", t.Name, name)
	}
	return c.b, nil
}

// Len returns the row count.
func (t *Table) Len() int {
	if t.n < 0 {
		return 0
	}
	return t.n
}

// Columns returns the column names in sorted order.
func (t *Table) Columns() []string {
	out := append([]string(nil), t.order...)
	sort.Strings(out)
	return out
}

// Durability is the write-ahead hook a durability subsystem (see
// internal/durable) installs with SetDurability. Every catalog write calls
// the matching Log method, passing the in-memory mutation as the apply
// callback; the implementation logs the operation to stable storage before
// (or around) invoking apply, and serializes per-table writes against
// checkpoints. A nil Durability means the catalog is memory-only and apply
// runs directly.
//
// The interface lives here (not in internal/durable) so the durability
// layer can depend on the catalog without an import cycle.
type Durability interface {
	// LogCreate logs a CREATE TABLE; apply registers the table.
	LogCreate(name string, defs []store.ColumnDef, apply func() error) error
	// LogInsert logs an INSERT of row-major, schema-order values.
	LogInsert(table string, rows [][]int64, apply func() error) error
	// LogDelete logs a DELETE by conjunction of closed ranges.
	LogDelete(table string, preds []store.Range, apply func() error) error
	// LogDecompose logs a bitwise decomposition (col, approx bits).
	LogDecompose(table, col string, bits uint, apply func() error) error
	// LogFKIndex logs an FK index build over table.col.
	LogFKIndex(table, col string, apply func() error) error
	// LogDrop logs a DROP TABLE and reclaims the table's durable state.
	LogDrop(table string, apply func() error) error
	// LogLoad persists a bulk-loaded table wholesale (no per-row logging);
	// apply registers it.
	LogLoad(t *store.Table, apply func() error) error
	// LogCreatePartitioned logs a CREATE TABLE ... PARTITION BY; apply
	// registers the wrapper and its partition tables.
	LogCreatePartitioned(name string, defs []store.ColumnDef, spec shard.Spec, apply func() error) error
}

// Catalog holds the mutable store tables, bound to one simulated device
// system.
//
// A Catalog is safe for concurrent use: the table registry is guarded by
// an RWMutex, and each store.Table publishes immutable snapshots — queries
// (ExecAR/ExecClassic) pin a snapshot at start and may run concurrently
// with each other and with DML (Insert/Delete/Merge/Decompose), which
// swaps fresh versions in without mutating pinned data.
type Catalog struct {
	sys *device.System
	dur Durability

	// prunedParts counts partition legs skipped by range-partition
	// pruning before scattering (see execScatter); exposed through
	// PlannerStats and the engine's ar_partition_pruned_total metric.
	prunedParts atomic.Int64

	mu     sync.RWMutex
	tables map[string]*store.Table
	parted map[string]*shard.Partitioned
}

// PlannerStats is a point-in-time snapshot of optimizer counters.
type PlannerStats struct {
	// PartitionsPruned counts partition legs excluded from scatter-gather
	// executions because the anchor column's filters ruled out their slab.
	PartitionsPruned int64
}

// PlannerStats returns the current optimizer counters.
func (c *Catalog) PlannerStats() PlannerStats {
	return PlannerStats{PartitionsPruned: c.prunedParts.Load()}
}

// NewCatalog creates a catalog bound to the given simulated system.
func NewCatalog(sys *device.System) *Catalog {
	return &Catalog{
		sys:    sys,
		tables: make(map[string]*store.Table),
		parted: make(map[string]*shard.Partitioned),
	}
}

// System returns the catalog's simulated system.
func (c *Catalog) System() *device.System { return c.sys }

// SetDurability installs the write-ahead hook: from now on every catalog
// write flows through d. Install it after recovery has re-applied history
// directly (recovery must not re-log what it replays). A nil d detaches
// durability.
func (c *Catalog) SetDurability(d Durability) {
	c.mu.Lock()
	c.dur = d
	c.mu.Unlock()
}

func (c *Catalog) durability() Durability {
	c.mu.RLock()
	d := c.dur
	c.mu.RUnlock()
	return d
}

// AddTable registers a loaded table builder as a mutable store table.
func (c *Catalog) AddTable(t *Table) error {
	defs := make([]store.ColumnDef, len(t.order))
	cols := make([]*bat.BAT, len(t.order))
	for i, name := range t.order {
		col := t.cols[name]
		defs[i] = store.ColumnDef{Name: name, Scale: col.scale, Width: col.b.Width()}
		cols[i] = col.b
	}
	st, err := store.New(t.Name, defs, cols, c.sys)
	if err != nil {
		return err
	}
	if d := c.durability(); d != nil {
		return d.LogLoad(st, func() error { return c.register(st) })
	}
	return c.register(st)
}

// CreateTable registers a new empty table with the given schema — the
// engine-level CREATE TABLE.
func (c *Catalog) CreateTable(name string, defs []store.ColumnDef) (*store.Table, error) {
	st, err := store.New(name, defs, nil, c.sys)
	if err != nil {
		return nil, err
	}
	if d := c.durability(); d != nil {
		if err := d.LogCreate(name, defs, func() error { return c.register(st) }); err != nil {
			return nil, err
		}
		return st, nil
	}
	if err := c.register(st); err != nil {
		return nil, err
	}
	return st, nil
}

// Register adds an already-built store table to the catalog without
// logging — the durability layer uses it while restoring segments and
// replaying the WAL, when the history is already on disk.
func (c *Catalog) Register(st *store.Table) error { return c.register(st) }

func (c *Catalog) register(st *store.Table) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.tables[st.Name()]; dup {
		return fmt.Errorf("plan: duplicate table %s", st.Name())
	}
	if _, dup := c.parted[st.Name()]; dup {
		return fmt.Errorf("plan: duplicate table %s", st.Name())
	}
	c.tables[st.Name()] = st
	return nil
}

func (c *Catalog) dropTable(name string) error {
	c.mu.Lock()
	t, ok := c.tables[name]
	if ok {
		delete(c.tables, name)
	}
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("plan: unknown table %s", name)
	}
	t.ReleaseDecompositions()
	return nil
}

// DropTable removes a table, releases its device allocations, and — with
// durability attached — logs the drop and reclaims the table's segment
// files. In-flight queries holding a snapshot keep reading their pinned
// version. Dropping a partitioned table drops every partition.
func (c *Catalog) DropTable(name string) error {
	if p, ok := c.Partitioned(name); ok {
		return c.dropPartitioned(p)
	}
	if d := c.durability(); d != nil {
		return d.LogDrop(name, func() error { return c.dropTable(name) })
	}
	return c.dropTable(name)
}

// Table returns a registered table. A partitioned table's wrapper name is
// not a plain table — callers that only need the schema use SchemaTable,
// scans go through the scatter-gather path.
func (c *Catalog) Table(name string) (*store.Table, error) {
	c.mu.RLock()
	t, ok := c.tables[name]
	_, isPart := c.parted[name]
	c.mu.RUnlock()
	if !ok {
		if isPart {
			return nil, fmt.Errorf("plan: table %s is partitioned and cannot be used here", name)
		}
		return nil, fmt.Errorf("plan: unknown table %s", name)
	}
	return t, nil
}

// TableNames returns the registered table names in sorted order.
func (c *Catalog) TableNames() []string {
	c.mu.RLock()
	out := make([]string, 0, len(c.tables))
	for name := range c.tables {
		out = append(out, name)
	}
	c.mu.RUnlock()
	sort.Strings(out)
	return out
}

// TableSchemaEpoch returns the schema identity of a table (see
// store.Table.SchemaEpoch); ok is false when the table does not exist. The
// engine's plan cache records these per binding and invalidates entries
// whose dependencies changed.
func (c *Catalog) TableSchemaEpoch(name string) (uint64, bool) {
	c.mu.RLock()
	t, ok := c.tables[name]
	if !ok {
		if p, pok := c.parted[name]; pok {
			t, ok = p.Schema(), true
		}
	}
	c.mu.RUnlock()
	if !ok {
		return 0, false
	}
	return t.SchemaEpoch(), true
}

// SchemaEpochs snapshots the schema epoch of every registered table. The
// engine reads it BEFORE compiling a statement: schema epochs are globally
// monotonic, so dependencies recorded from a pre-compilation snapshot can
// only be stale-conservative — a table replaced mid-compilation makes the
// cached entry invalid on its first hit instead of silently current.
func (c *Catalog) SchemaEpochs() map[string]uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string]uint64, len(c.tables)+len(c.parted))
	for name, t := range c.tables {
		out[name] = t.SchemaEpoch()
	}
	for name, p := range c.parted {
		out[name] = p.Schema().SchemaEpoch()
	}
	return out
}

// Decompose bitwise-decomposes table.col with approxBits device-resident
// bits — the engine-level equivalent of the paper's
// `select bwdecompose(col, approxBits) from table` (§V-A). Decomposing an
// already decomposed column replaces the previous decomposition; a table
// with delta rows or deletions is compacted first so the decomposition
// covers every live row.
func (c *Catalog) Decompose(table, col string, approxBits uint) (*bwd.Column, error) {
	return c.DecomposeMetered(nil, table, col, approxBits)
}

// DecomposeMetered is Decompose charging the implicit pre-merge compaction
// (delta rows folded in, deletions dropped) to m — the SQL bwdecompose
// path uses it so the bus bytes a compaction ships appear in the engine
// totals, not just in the store counters.
func (c *Catalog) DecomposeMetered(m *device.Meter, table, col string, approxBits uint) (*bwd.Column, error) {
	if p, ok := c.Partitioned(table); ok {
		return c.decomposePartitioned(m, p, col, approxBits)
	}
	t, err := c.Table(table)
	if err != nil {
		return nil, err
	}
	if d := c.durability(); d != nil {
		var out *bwd.Column
		err := d.LogDecompose(table, col, approxBits, func() error {
			var aerr error
			out, aerr = t.Decompose(m, col, approxBits)
			return aerr
		})
		return out, err
	}
	return t.Decompose(m, col, approxBits)
}

// Decomposition returns the current decomposition of table.col, or an
// error if the column was never decomposed (A&R plans require explicit
// decomposition, like an index).
func (c *Catalog) Decomposition(table, col string) (*bwd.Column, error) {
	if p, ok := c.Partitioned(table); ok {
		table = p.Schema().Name()
	}
	t, err := c.Table(table)
	if err != nil {
		return nil, err
	}
	d := t.Snapshot().Dec(col)
	if d == nil {
		return nil, fmt.Errorf("plan: column %s.%s is not bitwise decomposed; call Decompose first", table, col)
	}
	return d, nil
}

// ReleaseDecompositions frees all device allocations held by the catalog.
func (c *Catalog) ReleaseDecompositions() {
	c.mu.RLock()
	tables := make([]*store.Table, 0, len(c.tables))
	for _, t := range c.tables {
		tables = append(tables, t)
	}
	c.mu.RUnlock()
	for _, t := range tables {
		t.ReleaseDecompositions()
	}
}

// BuildFKIndex pre-builds the foreign-key (primary-key) index over
// table.col on the CPU, as the paper does for joins (§IV-D). The index is
// segment-bound: merges rebuild it over the compacted key column.
func (c *Catalog) BuildFKIndex(table, col string) error {
	if _, ok := c.Partitioned(table); ok {
		return fmt.Errorf("plan: cannot build an FK index on partitioned table %s (partitioned tables are fact tables, not join dimensions)", table)
	}
	t, err := c.Table(table)
	if err != nil {
		return err
	}
	build := func() error {
		if err := t.BuildFKIndex(col); err != nil {
			return fmt.Errorf("plan: %s.%s is not a dense unique key", table, col)
		}
		return nil
	}
	if d := c.durability(); d != nil {
		return d.LogFKIndex(table, col, build)
	}
	return build()
}

// FKIndex returns the current pre-built index over table.col.
func (c *Catalog) FKIndex(table, col string) (*bulk.FKIndex, error) {
	t, err := c.Table(table)
	if err != nil {
		return nil, err
	}
	ix := t.Snapshot().FKIndex(col)
	if ix == nil {
		return nil, fmt.Errorf("plan: no FK index on %s.%s; call BuildFKIndex first", table, col)
	}
	return ix, nil
}

// InsertRows appends rows (schema order, scaled values) to table's delta
// segment, charging the host-side append to m (which may be nil).
func (c *Catalog) InsertRows(m *device.Meter, table string, rows [][]int64) (int, error) {
	if p, ok := c.Partitioned(table); ok {
		return c.insertPartitioned(m, p, rows)
	}
	t, err := c.Table(table)
	if err != nil {
		return 0, err
	}
	if d := c.durability(); d != nil {
		var n int
		err := d.LogInsert(table, rows, func() error {
			var aerr error
			n, aerr = t.Insert(m, rows)
			return aerr
		})
		return n, err
	}
	return t.Insert(m, rows)
}

// DeleteRows marks every live row of table satisfying all filters deleted
// and returns the count.
func (c *Catalog) DeleteRows(m *device.Meter, table string, filters []Filter) (int64, error) {
	if p, ok := c.Partitioned(table); ok {
		return c.deletePartitioned(m, p, filters)
	}
	t, err := c.Table(table)
	if err != nil {
		return 0, err
	}
	preds := make([]store.Range, len(filters))
	for i, f := range filters {
		preds[i] = store.Range{Col: f.Col, Lo: f.Lo, Hi: f.Hi}
	}
	if d := c.durability(); d != nil {
		var n int64
		err := d.LogDelete(table, preds, func() error {
			var aerr error
			n, aerr = t.DeleteWhere(m, preds)
			return aerr
		})
		return n, err
	}
	return t.DeleteWhere(m, preds)
}

// MergeTable compacts table's delta segment and deletions into a fresh
// base segment, charging the incremental re-decomposition to m. auto marks
// background-merger invocations for stats attribution.
func (c *Catalog) MergeTable(m *device.Meter, table string, auto bool) (store.MergeStats, error) {
	if p, ok := c.Partitioned(table); ok {
		return c.mergePartitioned(m, p, auto)
	}
	t, err := c.Table(table)
	if err != nil {
		return store.MergeStats{}, err
	}
	return t.Merge(m, auto)
}

// StoreStats aggregates the store counters over every registered table.
type StoreStats struct {
	Tables            int
	Segments          int
	DeltaRows         int
	DeletedRows       int
	Merges            int64
	AutoMerges        int64
	MergeRows         int64
	MergeShippedBytes int64
	MergeFullBytes    int64
}

// StoreStats returns the aggregated mutable-store counters (the \stats
// surface).
func (c *Catalog) StoreStats() StoreStats {
	c.mu.RLock()
	tables := make([]*store.Table, 0, len(c.tables))
	for _, t := range c.tables {
		tables = append(tables, t)
	}
	c.mu.RUnlock()
	var out StoreStats
	out.Tables = len(tables)
	for _, t := range tables {
		st := t.Stats()
		out.Segments += st.Segments
		out.DeltaRows += st.DeltaRows
		out.DeletedRows += st.DeletedRows
		out.Merges += st.Merges
		out.AutoMerges += st.AutoMerges
		out.MergeRows += st.MergeRows
		out.MergeShippedBytes += st.MergeShippedBytes
		out.MergeFullBytes += st.MergeFullBytes
	}
	return out
}

func (s StoreStats) String() string {
	return fmt.Sprintf("store: %d tables, %d segments, %d delta rows, %d deleted, %d merges (%d auto, %d rows), merge shipped %d B (full re-decomposition %d B)",
		s.Tables, s.Segments, s.DeltaRows, s.DeletedRows, s.Merges, s.AutoMerges, s.MergeRows, s.MergeShippedBytes, s.MergeFullBytes)
}
