// Package plan implements the query layer of the reproduction: a logical
// query model, the bwd_pipe rewriter that turns classic bulk plans into
// Approximate & Refine plans (§V-B, Fig 7), a rule-based optimizer that
// pushes approximate selections down (§III-A), and two executors — the A&R
// executor spanning the simulated GPU/CPU system and the classic
// bulk-processing executor that serves as the paper's MonetDB baseline.
package plan

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/bat"
	"repro/internal/bulk"
	"repro/internal/bwd"
	"repro/internal/device"
)

// Table is a named collection of positionally aligned columns.
type Table struct {
	Name string
	cols map[string]column
	n    int
}

// column pairs the stored BAT with its fixed-point scale (1 for plain
// integers, 100 for decimal(_,2) money, 100000 for the decimal(_,5) GPS
// coordinates). The scale lets the SQL layer align decimal literals with
// the storage encoding.
type column struct {
	b     *bat.BAT
	scale int64
}

// NewTable creates an empty table.
func NewTable(name string) *Table {
	return &Table{Name: name, cols: make(map[string]column), n: -1}
}

// AddColumn adds a plain integer column (scale 1); all columns of a table
// must have equal length.
func (t *Table) AddColumn(name string, b *bat.BAT) error {
	return t.AddColumnScaled(name, b, 1)
}

// AddColumnScaled adds a fixed-point column with the given decimal scale.
func (t *Table) AddColumnScaled(name string, b *bat.BAT, scale int64) error {
	if _, dup := t.cols[name]; dup {
		return fmt.Errorf("plan: duplicate column %s.%s", t.Name, name)
	}
	if t.n >= 0 && b.Len() != t.n {
		return fmt.Errorf("plan: column %s.%s has %d rows, table has %d", t.Name, name, b.Len(), t.n)
	}
	if scale < 1 {
		return fmt.Errorf("plan: column %s.%s has invalid scale %d", t.Name, name, scale)
	}
	t.n = b.Len()
	t.cols[name] = column{b: b, scale: scale}
	return nil
}

// Column returns a column by name.
func (t *Table) Column(name string) (*bat.BAT, error) {
	c, ok := t.cols[name]
	if !ok {
		return nil, fmt.Errorf("plan: unknown column %s.%s", t.Name, name)
	}
	return c.b, nil
}

// ColumnScale returns the fixed-point scale of a column (1 for integers).
func (t *Table) ColumnScale(name string) (int64, error) {
	c, ok := t.cols[name]
	if !ok {
		return 0, fmt.Errorf("plan: unknown column %s.%s", t.Name, name)
	}
	return c.scale, nil
}

// Len returns the row count.
func (t *Table) Len() int {
	if t.n < 0 {
		return 0
	}
	return t.n
}

// Columns returns the column names in sorted order.
func (t *Table) Columns() []string {
	out := make([]string, 0, len(t.cols))
	for name := range t.cols {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Catalog holds tables, their bitwise decompositions, and pre-built
// foreign-key indices, bound to one simulated device system.
//
// A Catalog is safe for concurrent use: the registry maps are guarded by an
// RWMutex, so queries (ExecAR/ExecClassic) may run concurrently with each
// other and with DDL (AddTable/Decompose/BuildFKIndex). The stored Table,
// bwd.Column and bulk.FKIndex values are immutable once registered; a
// concurrent re-Decompose swaps in a fresh decomposition while in-flight
// queries keep reading the one they resolved.
type Catalog struct {
	sys *device.System

	mu     sync.RWMutex
	tables map[string]*Table
	dec    map[string]*bwd.Column   // "table.col" -> decomposition
	fkIdx  map[string]*bulk.FKIndex // "table.col" -> PK index
}

// NewCatalog creates a catalog bound to the given simulated system.
func NewCatalog(sys *device.System) *Catalog {
	return &Catalog{
		sys:    sys,
		tables: make(map[string]*Table),
		dec:    make(map[string]*bwd.Column),
		fkIdx:  make(map[string]*bulk.FKIndex),
	}
}

// System returns the catalog's simulated system.
func (c *Catalog) System() *device.System { return c.sys }

// AddTable registers a table.
func (c *Catalog) AddTable(t *Table) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.tables[t.Name]; dup {
		return fmt.Errorf("plan: duplicate table %s", t.Name)
	}
	c.tables[t.Name] = t
	return nil
}

// Table returns a registered table.
func (c *Catalog) Table(name string) (*Table, error) {
	c.mu.RLock()
	t, ok := c.tables[name]
	c.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("plan: unknown table %s", name)
	}
	return t, nil
}

// TableNames returns the registered table names in sorted order.
func (c *Catalog) TableNames() []string {
	c.mu.RLock()
	out := make([]string, 0, len(c.tables))
	for name := range c.tables {
		out = append(out, name)
	}
	c.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Decompose bitwise-decomposes table.col with approxBits device-resident
// bits — the engine-level equivalent of the paper's
// `select bwdecompose(col, approxBits) from table` (§V-A). Decomposing an
// already decomposed column replaces the previous decomposition.
func (c *Catalog) Decompose(table, col string, approxBits uint) (*bwd.Column, error) {
	t, err := c.Table(table)
	if err != nil {
		return nil, err
	}
	b, err := t.Column(col)
	if err != nil {
		return nil, err
	}
	key := table + "." + col
	// Build first, then swap and release the old decomposition in one
	// critical section: readers either see the old version or the new one,
	// never a missing entry, and racing re-Decomposes release each other's
	// losers instead of leaking device memory. Replacement transiently
	// holds both allocations.
	d, err := bwd.Decompose(b, approxBits, c.sys)
	if err != nil {
		return nil, fmt.Errorf("plan: bwdecompose(%s, %d): %w", key, approxBits, err)
	}
	c.mu.Lock()
	if old, ok := c.dec[key]; ok {
		old.Release()
	}
	c.dec[key] = d
	c.mu.Unlock()
	return d, nil
}

// Decomposition returns the decomposition of table.col, or an error if the
// column was never decomposed (A&R plans require explicit decomposition,
// like an index).
func (c *Catalog) Decomposition(table, col string) (*bwd.Column, error) {
	c.mu.RLock()
	d, ok := c.dec[table+"."+col]
	c.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("plan: column %s.%s is not bitwise decomposed; call Decompose first", table, col)
	}
	return d, nil
}

// ReleaseDecompositions frees all device allocations held by the catalog.
func (c *Catalog) ReleaseDecompositions() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, d := range c.dec {
		d.Release()
		delete(c.dec, k)
	}
}

// BuildFKIndex pre-builds the foreign-key (primary-key) index over
// table.col on the CPU, as the paper does for joins (§IV-D).
func (c *Catalog) BuildFKIndex(table, col string) error {
	t, err := c.Table(table)
	if err != nil {
		return err
	}
	b, err := t.Column(col)
	if err != nil {
		return err
	}
	ix := bulk.BuildFKIndex(nil, 1, b.Tails())
	if ix == nil {
		return fmt.Errorf("plan: %s.%s is not a dense unique key", table, col)
	}
	c.mu.Lock()
	c.fkIdx[table+"."+col] = ix
	c.mu.Unlock()
	return nil
}

// FKIndex returns the pre-built index over table.col.
func (c *Catalog) FKIndex(table, col string) (*bulk.FKIndex, error) {
	c.mu.RLock()
	ix, ok := c.fkIdx[table+"."+col]
	c.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("plan: no FK index on %s.%s; call BuildFKIndex first", table, col)
	}
	return ix, nil
}
