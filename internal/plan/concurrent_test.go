package plan

import (
	"sync"
	"testing"

	"repro/internal/bat"
	"repro/internal/device"
)

// TestConcurrentRedecomposeDoesNotLeak races re-Decompose calls of the same
// column against each other and against queries: losers must release their
// device allocations (occupancy returns to a single decomposition's
// footprint) and readers must never observe a missing decomposition.
func TestConcurrentRedecomposeDoesNotLeak(t *testing.T) {
	sys := device.PaperSystem()
	c := NewCatalog(sys)
	tbl := NewTable("t")
	vals := make([]int64, 10_000)
	for i := range vals {
		vals[i] = int64(i % 4096)
	}
	if err := tbl.AddColumn("v", bat.NewDense(vals, bat.Width32)); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTable(tbl); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Decompose("t", "v", 8); err != nil {
		t.Fatal(err)
	}

	q := Query{
		Table:   "t",
		Filters: []Filter{{Col: "v", Lo: 0, Hi: 100}},
		Aggs:    []AggSpec{{Name: "n", Func: Count}},
	}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(bits uint) {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				if _, err := c.Decompose("t", "v", bits); err != nil {
					errs <- err
					return
				}
			}
		}(uint(8 + i%3))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				res, err := c.ExecAR(q, ExecOpts{})
				if err != nil {
					errs <- err
					return
				}
				if len(res.Rows) != 1 || res.Rows[0].Vals[0] != 303 {
					errs <- errMismatch
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// After the dust settles exactly one decomposition remains allocated.
	d, err := c.Decomposition("t", "v")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sys.GPU.Used(), d.GPUBytes(); got != want {
		t.Fatalf("GPU occupancy %d bytes, want the surviving decomposition's %d (leaked losers?)", got, want)
	}
	if got, want := sys.CPU.Used(), d.CPUBytes(); got != want {
		t.Fatalf("CPU occupancy %d bytes, want %d", got, want)
	}
}

var errMismatch = errorString("concurrent query returned wrong count")

type errorString string

func (e errorString) Error() string { return string(e) }
