package plan

import (
	"context"
	"fmt"

	"repro/internal/bat"
	"repro/internal/bulk"
	"repro/internal/mem"
	"repro/internal/par"
)

// ExecClassic executes the query with the classic bulk-processing model
// with a background context; see ExecClassicCtx.
func (c *Catalog) ExecClassic(q Query, opts ExecOpts) (*Result, error) {
	return c.ExecClassicCtx(context.Background(), q, opts)
}

// ExecClassicCtx executes the query with the classic bulk-processing model
// on the CPU only — the paper's "MonetDB" baseline. It validates the
// query (pinning one store snapshot per touched table), assembles the
// operator pipeline with the classic scan strategy, and runs it.
// Operators are the fully-materializing tight loops of package bulk; no
// device or bus time is ever charged.
//
// Cancellation is cooperative: the pipeline polls ctx between bulk passes
// and returns ctx.Err() without a result once the context is done.
func (c *Catalog) ExecClassicCtx(ctx context.Context, q Query, opts ExecOpts) (*Result, error) {
	if p, ok := c.Partitioned(q.Table); ok {
		return c.execScatter(ctx, q, opts, p, true)
	}
	snap, err := q.validateClassic(c)
	if err != nil {
		return nil, err
	}
	return buildPipeline(q, snap, true).run(ctx, c.sys, opts)
}

// scanClassic is the classic scan strategy: MonetDB-style uselect chains
// over the row-major base segment, one bitmap pass for deletions, the
// FK-probe join chain through the pre-built indexes, and full
// materialization of every referenced column — producing the same
// exact-value tuple stream as the A&R scan for the shared pipeline tail.
// The delta segment is scanned by the shared delta source and handed to
// the tail unmerged.
func (pl *pipeline) scanClassic(st *pipeState) (*scanOut, error) {
	q := &pl.q
	snap := pl.snap
	pp := st.pp
	m := st.m
	fact := snap.fact

	// Selections: first a full scan, then progressively narrower
	// candidate-list filters (MonetDB's uselect chains).
	if err := st.step(StageBulk); err != nil {
		return nil, err
	}
	var ids []bat.OID
	if len(pl.factFilters) > 0 {
		f0 := pl.factFilters[0].f
		b, err := fact.Column(f0.Col)
		if err != nil {
			return nil, err
		}
		ids = bulk.SelectRangePar(pp, m, b, f0.Lo, f0.Hi)
		st.traceEst(len(ids), st.estApply(pl.factFilters[0].estSel()), "algebra.uselect(%s.%s)", q.Table, f0.Col)
		for _, rf := range pl.factFilters[1:] {
			if err := st.step(StageBulk); err != nil {
				return nil, err
			}
			b, err := fact.Column(rf.f.Col)
			if err != nil {
				return nil, err
			}
			prev := ids
			ids = bulk.SelectOIDsPar(pp, m, b, prev, rf.f.Lo, rf.f.Hi)
			bat.OIDPool.Put(prev)
			st.traceEst(len(ids), st.estApply(rf.estSel()), "algebra.uselect(%s.%s)", q.Table, rf.f.Col)
		}
	} else {
		ids = bat.OIDPool.GetN(fact.BaseLen())
		pp.For(len(ids), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				ids[i] = bat.OID(i)
			}
		})
		m.CPUWork(pp.NThreads(), int64(len(ids))*4, 0, int64(len(ids)))
		st.traceRows(len(ids), "algebra.scan(%s)", q.Table)
	}

	// Disjunction groups: fetch each disjunct column at the surviving
	// positions and keep the rows matching any range — one
	// fully-materializing pass per group, like every classic operator.
	for _, g := range pl.orGroups {
		if err := st.step(StageBulk); err != nil {
			return nil, err
		}
		cols := make([][]int64, len(g.filters))
		for k, f := range g.filters {
			b, err := fact.Column(f.Col)
			if err != nil {
				return nil, err
			}
			cols[k] = bulk.FetchPar(pp, m, b, ids)
		}
		filters := g.filters
		prev := ids
		ids = par.GatherOrdered(pp, len(prev), func(lo, hi int) []bat.OID {
			part := make([]bat.OID, 0, hi-lo)
			for i := lo; i < hi; i++ {
				for k, f := range filters {
					if v := cols[k][i]; v >= f.Lo && v <= f.Hi {
						part = append(part, prev[i])
						break
					}
				}
			}
			return part
		})
		m.CPUWork(pp.NThreads(), int64(len(cols))*int64(len(cols[0]))*8, 0, int64(len(cols))*int64(len(cols[0])))
		bat.OIDPool.Put(prev)
		for k := range cols {
			mem.I64.Put(cols[k])
		}
		st.traceEst(len(ids), st.estApply(g.sel), "algebra.uselectany(%s)", orGroupText(q.Table, g.filters))
	}

	// Discharge deleted base rows with one bitmap pass.
	if fact.BaseDeletedCount() > 0 {
		ids = maskDeletedOIDs(m, pp, fact, ids)
		st.traceRows(len(ids), "algebra.maskdeleted(%s)", q.Table)
	}

	// Foreign-key join chain through the pre-built indexes.
	joinPos := make([][]bat.OID, len(pl.joins))
	lookups := map[string]func(int64) (bat.OID, bool){}
	for ji, js := range pl.joins {
		spec := js.spec
		if err := st.step(StageBulk); err != nil {
			return nil, err
		}
		fkBAT, err := fact.Column(spec.FKCol)
		if err != nil {
			return nil, err
		}
		ds := snap.dims[spec.Dim]
		ix := ds.FKIndex(spec.DimPK)
		if ix == nil {
			return nil, fmt.Errorf("plan: no FK index on %s.%s; call BuildFKIndex first", spec.Dim, spec.DimPK)
		}
		lookups[spec.Dim] = ix.Lookup
		fkVals := bulk.FetchPar(pp, m, fkBAT, ids)
		pos, hit := bulk.FKJoinPar(pp, m, ix, fkVals)
		mem.I64.Put(fkVals)
		// Keep the id list, this join's positions, and every earlier
		// join's positions aligned while dropping misses and rows joined
		// to deleted dimension rows.
		pairs := par.GatherOrdered(pp, len(ids), func(lo, hi int) []idKeep {
			part := make([]idKeep, 0, hi-lo)
			for i := lo; i < hi; i++ {
				if hit[i] && !ds.BaseDeleted(int(pos[i])) {
					part = append(part, idKeep{i, ids[i], pos[i]})
				}
			}
			return part
		})
		var keep []int
		prevIDs := ids
		ids, joinPos[ji], keep = splitKeep(pairs)
		bat.OIDPool.Put(prevIDs)
		bat.OIDPool.Put(pos)
		mem.Bools.Put(hit)
		compactJoinPos(pp, joinPos[:ji], keep)
		st.traceRows(len(ids), "algebra.leftjoin(%s.%s -> %s)", q.Table, spec.FKCol, spec.Dim)

		for _, rf := range js.dimFilters {
			db, err := ds.Column(rf.f.Col)
			if err != nil {
				return nil, err
			}
			vals := bulk.FetchPar(pp, m, db, joinPos[ji])
			f := rf.f
			curIDs, curPos := ids, joinPos[ji]
			pairs := par.GatherOrdered(pp, len(vals), func(lo, hi int) []idKeep {
				part := make([]idKeep, 0, hi-lo)
				for i := lo; i < hi; i++ {
					if vals[i] >= f.Lo && vals[i] <= f.Hi {
						part = append(part, idKeep{i, curIDs[i], curPos[i]})
					}
				}
				return part
			})
			prevIDs, prevPos := ids, joinPos[ji]
			ids, joinPos[ji], keep = splitKeep(pairs)
			bat.OIDPool.Put(prevIDs)
			bat.OIDPool.Put(prevPos)
			mem.I64.Put(vals)
			compactJoinPos(pp, joinPos[:ji], keep)
			m.CPUWork(pp.NThreads(), int64(len(vals))*8, 0, int64(len(vals)))
			st.traceEst(len(ids), st.estApply(rf.estSel()), "algebra.uselect(%s.%s)", spec.Dim, rf.f.Col)
		}
	}

	// Delta scan: evaluate the predicates over the live delta rows and
	// materialize the needed values in the same pass.
	need := neededCols(*q, len(q.GroupBy) > 0)
	var dset *deltaSet
	if fact.DeltaLen() > 0 {
		if err := st.step(StageDelta); err != nil {
			return nil, err
		}
		var err error
		dset, err = scanDelta(m, pp, *q, snap, need, lookups)
		if err != nil {
			return nil, err
		}
		st.traceRows(dset.n, "delta.scan(%s, %d qualifying)", q.Table, dset.n)
	}
	st.estCapture()
	st.res.Candidates = len(ids)
	st.res.Refined = len(ids)

	// Materialize referenced columns at the qualifying base positions;
	// grouping keys ride along when a grouping is present.
	posFor := func(dim string) []bat.OID {
		for ji, js := range pl.joins {
			if js.spec.Dim == dim {
				return joinPos[ji]
			}
		}
		return nil
	}
	ectx := &exprCtx{n: len(ids), vals: map[ColRef][]int64{}}
	for _, ref := range sortedRefs(need) {
		if err := st.step(StageBulk); err != nil {
			return nil, err
		}
		if ref.IsDim() {
			db, err := snap.dims[ref.Dim].Column(ref.Name)
			if err != nil {
				return nil, err
			}
			ectx.vals[ref] = bulk.FetchPar(pp, m, db, posFor(ref.Dim))
		} else {
			fb, err := fact.Column(ref.Name)
			if err != nil {
				return nil, err
			}
			ectx.vals[ref] = bulk.FetchPar(pp, m, fb, ids)
		}
		st.traceRows(ectx.n, "algebra.leftjoin(%s)", ref.Name)
	}

	return &scanOut{ectx: ectx, dset: dset}, nil
}

// idKeep is one surviving row of a join or dimension-filter pass: its
// index in the pre-pass candidate list plus the fact id and dimension
// position that survive.
type idKeep struct {
	i       int
	id, pos bat.OID
}

// splitKeep unpacks gathered survivors into the new id list, the new
// position list, and the keep indexes that realign earlier joins.
func splitKeep(pairs []idKeep) (ids, pos []bat.OID, keep []int) {
	ids = bat.OIDPool.GetN(len(pairs))
	pos = bat.OIDPool.GetN(len(pairs))
	keep = mem.Ints.GetN(len(pairs))
	for i, ik := range pairs {
		ids[i] = ik.id
		pos[i] = ik.pos
		keep[i] = ik.i
	}
	return ids, pos, keep
}

// compactJoinPos compacts earlier joins' position lists with the keep
// index list produced by a later join or dimension filter.
func compactJoinPos(pp par.P, lists [][]bat.OID, keep []int) {
	for li, at := range lists {
		if at == nil {
			continue
		}
		kept := bat.OIDPool.GetN(len(keep))
		pp.For(len(keep), func(mlo, mhi int) {
			for i := mlo; i < mhi; i++ {
				kept[i] = at[keep[i]]
			}
		})
		bat.OIDPool.Put(at)
		lists[li] = kept
	}
}
