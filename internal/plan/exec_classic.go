package plan

import (
	"context"
	"fmt"

	"repro/internal/bat"
	"repro/internal/bulk"
	"repro/internal/device"
	"repro/internal/par"
)

// ExecClassic executes the query with the classic bulk-processing model
// with a background context; see ExecClassicCtx.
func (c *Catalog) ExecClassic(q Query, opts ExecOpts) (*Result, error) {
	return c.ExecClassicCtx(context.Background(), q, opts)
}

// ExecClassicCtx executes the query with the classic bulk-processing model
// on the CPU only — the paper's "MonetDB" baseline. Operators are the
// fully-materializing tight loops of package bulk; no device or bus time
// is ever charged.
//
// Like the A&R executor, the execution pins one store snapshot per table:
// the base segment runs through the bulk operator chain (deleted rows are
// filtered with one bitmap pass), the delta segment is scanned row-major,
// and both contributions merge before grouping and aggregation.
//
// Cancellation is cooperative: the executor polls ctx between bulk passes
// and returns ctx.Err() without a result once the context is done.
func (c *Catalog) ExecClassicCtx(ctx context.Context, q Query, opts ExecOpts) (*Result, error) {
	snap, err := q.validateClassic(c)
	if err != nil {
		return nil, err
	}
	pp := opts.par(ctx)
	m := device.NewMeter(c.sys)
	res := &Result{Meter: m}
	res.InputBytes = snap.inputBytes(q)
	trace := func(format string, args ...any) {
		res.Plan = append(res.Plan, fmt.Sprintf(format, args...))
	}

	fact := snap.fact

	// Selections: first a full scan, then progressively narrower
	// candidate-list filters (MonetDB's uselect chains).
	if err := step(ctx, opts, StageBulk); err != nil {
		return nil, err
	}
	var ids []bat.OID
	if len(q.Filters) > 0 {
		b, err := fact.Column(q.Filters[0].Col)
		if err != nil {
			return nil, err
		}
		ids = bulk.SelectRangePar(pp, m, b, q.Filters[0].Lo, q.Filters[0].Hi)
		trace("algebra.uselect(%s.%s)", q.Table, q.Filters[0].Col)
		for _, f := range q.Filters[1:] {
			if err := step(ctx, opts, StageBulk); err != nil {
				return nil, err
			}
			b, err := fact.Column(f.Col)
			if err != nil {
				return nil, err
			}
			ids = bulk.SelectOIDsPar(pp, m, b, ids, f.Lo, f.Hi)
			trace("algebra.uselect(%s.%s)", q.Table, f.Col)
		}
	} else {
		ids = make([]bat.OID, fact.BaseLen())
		pp.For(len(ids), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				ids[i] = bat.OID(i)
			}
		})
		m.CPUWork(pp.NThreads(), int64(len(ids))*4, 0, int64(len(ids)))
		trace("algebra.scan(%s)", q.Table)
	}

	// Discharge deleted base rows with one bitmap pass.
	if fact.BaseDeletedCount() > 0 {
		ids = maskDeletedOIDs(m, pp, fact, ids)
		trace("algebra.maskdeleted(%s)", q.Table)
	}

	// Foreign-key join through the pre-built index.
	var dimPos []bat.OID
	var lookup func(int64) (bat.OID, bool)
	if q.Join != nil {
		if err := step(ctx, opts, StageBulk); err != nil {
			return nil, err
		}
		fkBAT, err := fact.Column(q.Join.FKCol)
		if err != nil {
			return nil, err
		}
		ix := snap.dim.FKIndex(q.Join.DimPK)
		if ix == nil {
			return nil, fmt.Errorf("plan: no FK index on %s.%s; call BuildFKIndex first", q.Join.Dim, q.Join.DimPK)
		}
		lookup = ix.Lookup
		fkVals := bulk.FetchPar(pp, m, fkBAT, ids)
		pos, hit := bulk.FKJoinPar(pp, m, ix, fkVals)
		trace("algebra.leftjoin(%s.%s -> %s)", q.Table, q.Join.FKCol, q.Join.Dim)
		type idPos struct{ id, pos bat.OID }
		split := func(pairs []idPos) ([]bat.OID, []bat.OID) {
			outIDs := make([]bat.OID, len(pairs))
			outPos := make([]bat.OID, len(pairs))
			for i, ip := range pairs {
				outIDs[i] = ip.id
				outPos[i] = ip.pos
			}
			return outIDs, outPos
		}
		ids, dimPos = split(par.GatherOrdered(pp, len(ids), func(lo, hi int) []idPos {
			part := make([]idPos, 0, hi-lo)
			for i := lo; i < hi; i++ {
				if hit[i] && !snap.dim.BaseDeleted(int(pos[i])) {
					part = append(part, idPos{ids[i], pos[i]})
				}
			}
			return part
		}))
		for _, f := range q.Join.DimFilters {
			db, err := snap.dim.Column(f.Col)
			if err != nil {
				return nil, err
			}
			vals := bulk.FetchPar(pp, m, db, dimPos)
			curIDs, curPos := ids, dimPos
			ids, dimPos = split(par.GatherOrdered(pp, len(vals), func(lo, hi int) []idPos {
				part := make([]idPos, 0, hi-lo)
				for i := lo; i < hi; i++ {
					if vals[i] >= f.Lo && vals[i] <= f.Hi {
						part = append(part, idPos{curIDs[i], curPos[i]})
					}
				}
				return part
			}))
			m.CPUWork(pp.NThreads(), int64(len(vals))*8, 0, int64(len(vals)))
			trace("algebra.uselect(%s.%s)", q.Join.Dim, f.Col)
		}
	}

	// Delta scan: evaluate the predicates over the live delta rows and
	// materialize the needed values in the same pass.
	need := neededCols(q, len(q.GroupBy) > 0)
	var dset *deltaSet
	if fact.DeltaLen() > 0 {
		if err := step(ctx, opts, StageDelta); err != nil {
			return nil, err
		}
		dset, err = scanDelta(m, pp, q, snap, need, lookup)
		if err != nil {
			return nil, err
		}
		trace("delta.scan(%s, %d qualifying)", q.Table, dset.n)
	}
	res.Candidates = len(ids)
	res.Refined = len(ids)
	if dset != nil {
		res.Candidates += dset.n
		res.Refined += dset.n
	}

	// Materialize referenced columns at the qualifying base positions;
	// grouping keys ride along when a grouping is present.
	ectx := &exprCtx{n: len(ids), fact: map[string][]int64{}, dim: map[string][]int64{}}
	for ref := range need {
		if err := step(ctx, opts, StageBulk); err != nil {
			return nil, err
		}
		if ref.Dim {
			db, err := snap.dim.Column(ref.Name)
			if err != nil {
				return nil, err
			}
			ectx.dim[ref.Name] = bulk.FetchPar(pp, m, db, dimPos)
		} else {
			fb, err := fact.Column(ref.Name)
			if err != nil {
				return nil, err
			}
			ectx.fact[ref.Name] = bulk.FetchPar(pp, m, fb, ids)
		}
		trace("algebra.leftjoin(%s)", ref.Name)
	}

	// Merge the delta contribution into the combined tuple set.
	ectx.appendDelta(dset)

	// Grouping over the combined key columns.
	var grouping *bulk.Grouping
	var groupKeys [][]int64
	if len(q.GroupBy) > 0 {
		if err := step(ctx, opts, StageBulk); err != nil {
			return nil, err
		}
		cols := make([][]int64, len(q.GroupBy))
		for k, g := range q.GroupBy {
			cols[k] = ectx.fact[g]
		}
		grouping, groupKeys = bulk.GroupByMultiPar(pp, m, cols)
		trace("group.new(%s)", join(q.GroupBy))
	}

	if err := step(ctx, opts, StageAggregate); err != nil {
		return nil, err
	}
	rows, err := aggregateRows(m, pp, q, ectx, grouping, groupKeys, false)
	if err != nil {
		return nil, err
	}
	for _, a := range q.Aggs {
		trace("aggr.%s(%s)", a.Func, a.Name)
	}
	// Mid-kernel cancellation leaves partial morsel output; never serve it.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

// validateClassic checks table/column references and pins the snapshots
// without requiring decompositions.
func (q *Query) validateClassic(c *Catalog) (*execSnap, error) {
	snap, err := q.pinSnapshots(c)
	if err != nil {
		return nil, err
	}
	check := func(table, col string) error {
		if _, err := snap.snapFor(q, table).Column(col); err != nil {
			return err
		}
		return nil
	}
	for _, f := range q.Filters {
		if err := check(q.Table, f.Col); err != nil {
			return nil, err
		}
	}
	for _, g := range q.GroupBy {
		if err := check(q.Table, g); err != nil {
			return nil, err
		}
	}
	if q.Join != nil {
		if err := check(q.Table, q.Join.FKCol); err != nil {
			return nil, err
		}
		for _, f := range q.Join.DimFilters {
			if err := check(q.Join.Dim, f.Col); err != nil {
				return nil, err
			}
		}
	}
	for _, a := range q.Aggs {
		if a.Expr == nil {
			continue
		}
		for _, ref := range a.Expr.Cols() {
			tbl := q.Table
			if ref.Dim {
				if q.Join == nil {
					return nil, fmt.Errorf("plan: dimension column %s referenced without a join", ref.Name)
				}
				tbl = q.Join.Dim
			}
			if err := check(tbl, ref.Name); err != nil {
				return nil, err
			}
		}
	}
	if len(q.Filters) == 0 && len(q.GroupBy) == 0 && len(q.Aggs) == 0 {
		return nil, fmt.Errorf("plan: empty query")
	}
	return snap, nil
}
