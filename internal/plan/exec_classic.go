package plan

import (
	"context"
	"fmt"

	"repro/internal/bat"
	"repro/internal/bulk"
	"repro/internal/device"
)

// ExecClassic executes the query with the classic bulk-processing model
// with a background context; see ExecClassicCtx.
func (c *Catalog) ExecClassic(q Query, opts ExecOpts) (*Result, error) {
	return c.ExecClassicCtx(context.Background(), q, opts)
}

// ExecClassicCtx executes the query with the classic bulk-processing model
// on the CPU only — the paper's "MonetDB" baseline. Operators are the
// fully-materializing tight loops of package bulk; no device or bus time
// is ever charged.
//
// Cancellation is cooperative: the executor polls ctx between bulk passes
// and returns ctx.Err() without a result once the context is done.
func (c *Catalog) ExecClassicCtx(ctx context.Context, q Query, opts ExecOpts) (*Result, error) {
	if err := q.validateClassic(c); err != nil {
		return nil, err
	}
	threads := opts.threads()
	m := device.NewMeter(c.sys)
	res := &Result{Meter: m}
	res.InputBytes = c.queryInputBytes(q)
	trace := func(format string, args ...any) {
		res.Plan = append(res.Plan, fmt.Sprintf(format, args...))
	}

	fact, _ := c.Table(q.Table)

	// Selections: first a full scan, then progressively narrower
	// candidate-list filters (MonetDB's uselect chains).
	if err := step(ctx, opts, StageBulk); err != nil {
		return nil, err
	}
	var ids []bat.OID
	if len(q.Filters) > 0 {
		b, err := fact.Column(q.Filters[0].Col)
		if err != nil {
			return nil, err
		}
		ids = bulk.SelectRange(m, threads, b, q.Filters[0].Lo, q.Filters[0].Hi)
		trace("algebra.uselect(%s.%s)", q.Table, q.Filters[0].Col)
		for _, f := range q.Filters[1:] {
			if err := step(ctx, opts, StageBulk); err != nil {
				return nil, err
			}
			b, err := fact.Column(f.Col)
			if err != nil {
				return nil, err
			}
			ids = bulk.SelectOIDs(m, threads, b, ids, f.Lo, f.Hi)
			trace("algebra.uselect(%s.%s)", q.Table, f.Col)
		}
	} else {
		ids = make([]bat.OID, fact.Len())
		for i := range ids {
			ids[i] = bat.OID(i)
		}
		m.CPUWork(threads, int64(len(ids))*4, 0, int64(len(ids)))
		trace("algebra.scan(%s)", q.Table)
	}

	// Foreign-key join through the pre-built index.
	var dimPos []bat.OID
	if q.Join != nil {
		if err := step(ctx, opts, StageBulk); err != nil {
			return nil, err
		}
		fkBAT, err := fact.Column(q.Join.FKCol)
		if err != nil {
			return nil, err
		}
		ix, err := c.FKIndex(q.Join.Dim, q.Join.DimPK)
		if err != nil {
			return nil, err
		}
		fkVals := bulk.Fetch(m, threads, fkBAT, ids)
		pos, hit := bulk.FKJoin(m, threads, ix, fkVals)
		trace("algebra.leftjoin(%s.%s -> %s)", q.Table, q.Join.FKCol, q.Join.Dim)
		keptIDs := make([]bat.OID, 0, len(ids))
		dimPos = make([]bat.OID, 0, len(ids))
		for i := range ids {
			if hit[i] {
				keptIDs = append(keptIDs, ids[i])
				dimPos = append(dimPos, pos[i])
			}
		}
		ids = keptIDs
		dim, _ := c.Table(q.Join.Dim)
		for _, f := range q.Join.DimFilters {
			db, err := dim.Column(f.Col)
			if err != nil {
				return nil, err
			}
			vals := bulk.Fetch(m, threads, db, dimPos)
			keptIDs = ids[:0:0]
			keptPos := dimPos[:0:0]
			for i, v := range vals {
				if v >= f.Lo && v <= f.Hi {
					keptIDs = append(keptIDs, ids[i])
					keptPos = append(keptPos, dimPos[i])
				}
			}
			m.CPUWork(threads, int64(len(vals))*8, 0, int64(len(vals)))
			ids, dimPos = keptIDs, keptPos
			trace("algebra.uselect(%s.%s)", q.Join.Dim, f.Col)
		}
	}
	res.Candidates = len(ids)
	res.Refined = len(ids)

	// Materialize referenced columns at the qualifying positions.
	ectx := &exprCtx{n: len(ids), fact: map[string][]int64{}, dim: map[string][]int64{}}
	need := map[ColRef]bool{}
	for _, a := range q.Aggs {
		if a.Expr == nil {
			continue
		}
		for _, ref := range a.Expr.Cols() {
			need[ref] = true
		}
	}
	for ref := range need {
		if err := step(ctx, opts, StageBulk); err != nil {
			return nil, err
		}
		if ref.Dim {
			dim, _ := c.Table(q.Join.Dim)
			db, err := dim.Column(ref.Name)
			if err != nil {
				return nil, err
			}
			ectx.dim[ref.Name] = bulk.Fetch(m, threads, db, dimPos)
		} else {
			fb, err := fact.Column(ref.Name)
			if err != nil {
				return nil, err
			}
			ectx.fact[ref.Name] = bulk.Fetch(m, threads, fb, ids)
		}
		trace("algebra.leftjoin(%s)", ref.Name)
	}

	// Grouping.
	var grouping *bulk.Grouping
	var groupKeys [][]int64
	if len(q.GroupBy) > 0 {
		if err := step(ctx, opts, StageBulk); err != nil {
			return nil, err
		}
		cols := make([][]int64, len(q.GroupBy))
		for k, g := range q.GroupBy {
			gb, err := fact.Column(g)
			if err != nil {
				return nil, err
			}
			cols[k] = bulk.Fetch(m, threads, gb, ids)
		}
		grouping, groupKeys = bulk.GroupByMulti(m, threads, cols)
		trace("group.new(%s)", join(q.GroupBy))
	}

	if err := step(ctx, opts, StageAggregate); err != nil {
		return nil, err
	}
	rows, err := aggregateRows(m, threads, q, ectx, grouping, groupKeys, false)
	if err != nil {
		return nil, err
	}
	for _, a := range q.Aggs {
		trace("aggr.%s(%s)", a.Func, a.Name)
	}
	res.Rows = rows
	return res, nil
}

// validateClassic checks table/column references without requiring
// decompositions.
func (q *Query) validateClassic(c *Catalog) error {
	fact, err := c.Table(q.Table)
	if err != nil {
		return err
	}
	for _, f := range q.Filters {
		if _, err := fact.Column(f.Col); err != nil {
			return err
		}
	}
	for _, g := range q.GroupBy {
		if _, err := fact.Column(g); err != nil {
			return err
		}
	}
	if q.Join != nil {
		if _, err := fact.Column(q.Join.FKCol); err != nil {
			return err
		}
		dim, err := c.Table(q.Join.Dim)
		if err != nil {
			return err
		}
		for _, f := range q.Join.DimFilters {
			if _, err := dim.Column(f.Col); err != nil {
				return err
			}
		}
	}
	if len(q.Filters) == 0 && len(q.GroupBy) == 0 && len(q.Aggs) == 0 {
		return fmt.Errorf("plan: empty query")
	}
	return nil
}
