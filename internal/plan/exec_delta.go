package plan

import (
	"fmt"
	"sort"

	"repro/internal/bat"
	"repro/internal/device"
	"repro/internal/par"
	"repro/internal/store"
)

// deltaSet is the delta segment's contribution to a query: the values of
// every referenced column for the live delta rows that satisfy all
// predicates (fact-side filters and disjunctions, the FK join chain,
// dimension-side filters). Both scan strategies use this one source — the
// delta lives in host memory and is never decomposed, so the A&R pipeline
// too reads it with one classic row-major pass and the shared tail merges
// the result (the paper's operators apply to the base segment only).
type deltaSet struct {
	n    int
	vals map[ColRef][]int64
}

// neededCols collects every column whose exact values the aggregation
// phase needs: aggregate expression references plus (when withGroups) the
// grouping columns.
func neededCols(q Query, withGroups bool) map[ColRef]bool {
	need := map[ColRef]bool{}
	for _, a := range q.Aggs {
		if a.Expr == nil {
			continue
		}
		for _, ref := range a.Expr.Cols() {
			need[ref] = true
		}
	}
	if withGroups {
		for _, g := range q.GroupBy {
			need[ColRef{Name: g}] = true
		}
	}
	return need
}

// sortedRefs returns the needed columns in a deterministic order
// (fact columns first, then dimensions, each alphabetical), so plan
// listings and traces do not depend on map iteration order.
func sortedRefs(need map[ColRef]bool) []ColRef {
	refs := make([]ColRef, 0, len(need))
	for ref := range need {
		refs = append(refs, ref)
	}
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].Dim != refs[j].Dim {
			return refs[i].Dim < refs[j].Dim
		}
		return refs[i].Name < refs[j].Name
	})
	return refs
}

// deltaJoin is the per-join state of a delta scan: the fact-side FK
// column index, the dimension lookup, and the dimension filter columns.
type deltaJoin struct {
	spec       JoinSpec
	fkIdx      int
	lookup     func(int64) (bat.OID, bool)
	filterCols [][]int64
}

// scanDelta evaluates the query's predicates over the live delta rows of
// the fact snapshot and materializes the needed column values. lookups
// maps each joined dimension table to its FK-value → base-position
// function (empty when the query has no joins). Returns nil when the
// snapshot has no delta rows.
//
// The scan is morsel-parallel over the store's delta-segment granules
// (store.Snapshot.DeltaMorsels): each worker evaluates its morsels into a
// private partial, and partials concatenate in morsel order, so the output
// row order is identical to the serial row-major pass for every worker
// count.
//
// The cost charged is one sequential row-major pass over the visible delta
// (a row store reads whole rows) plus the dimension gathers for joined
// references.
func scanDelta(m *device.Meter, pp par.P, q Query, snap *execSnap, need map[ColRef]bool, lookups map[string]func(int64) (bat.OID, bool)) (*deltaSet, error) {
	fs := snap.fact
	if fs.DeltaLen() == 0 {
		return nil, nil
	}
	ft := fs.Table()
	filterIdx := make([]int, len(q.Filters))
	for k, f := range q.Filters {
		i, err := ft.ColIndex(f.Col)
		if err != nil {
			return nil, err
		}
		filterIdx[k] = i
	}
	orIdx := make([][]int, len(q.Or))
	for gi, group := range q.Or {
		orIdx[gi] = make([]int, len(group))
		for k, f := range group {
			i, err := ft.ColIndex(f.Col)
			if err != nil {
				return nil, err
			}
			orIdx[gi][k] = i
		}
	}
	type factRef struct {
		ref ColRef
		idx int
	}
	type dimRef struct {
		ref  ColRef
		join int // index into joins
		col  []int64
	}
	joins := make([]deltaJoin, len(q.Joins))
	joinOf := map[string]int{}
	var nDimFilterCols int
	for ji, spec := range q.Joins {
		i, err := ft.ColIndex(spec.FKCol)
		if err != nil {
			return nil, err
		}
		lookup := lookups[spec.Dim]
		if lookup == nil {
			return nil, fmt.Errorf("plan: delta scan of %s needs a dimension lookup for the join with %s", q.Table, spec.Dim)
		}
		joins[ji] = deltaJoin{spec: spec, fkIdx: i, lookup: lookup}
		joinOf[spec.Dim] = ji
		for _, f := range spec.DimFilters {
			db, err := snap.dims[spec.Dim].Column(f.Col)
			if err != nil {
				return nil, err
			}
			joins[ji].filterCols = append(joins[ji].filterCols, db.Tails())
			nDimFilterCols++
		}
	}
	var factRefs []factRef
	var dimRefs []dimRef
	for _, ref := range sortedRefs(need) {
		if ref.IsDim() {
			ji, ok := joinOf[ref.Dim]
			if !ok {
				return nil, fmt.Errorf("plan: dimension column %s.%s referenced without joining %s", ref.Dim, ref.Name, ref.Dim)
			}
			db, err := snap.dims[ref.Dim].Column(ref.Name)
			if err != nil {
				return nil, err
			}
			dimRefs = append(dimRefs, dimRef{ref: ref, join: ji, col: db.Tails()})
		} else {
			i, err := ft.ColIndex(ref.Name)
			if err != nil {
				return nil, err
			}
			factRefs = append(factRefs, factRef{ref: ref, idx: i})
		}
	}

	// One partial per delta morsel; the morsel boundaries come from the
	// store, so they respect the segment edge and the deletion bitmap's
	// word alignment.
	morsels := fs.DeltaMorsels(pp.ChunkSize())
	type deltaPart struct {
		n          int
		factVals   [][]int64
		dimVals    [][]int64
		dimGathers int64
	}
	parts := make([]deltaPart, len(morsels))
	scanMorsel := func(mi int, mo store.Morsel) {
		pt := &parts[mi]
		pt.factVals = make([][]int64, len(factRefs))
		pt.dimVals = make([][]int64, len(dimRefs))
		dimPos := make([]bat.OID, len(joins))
	rows:
		for j := mo.Lo; j < mo.Hi; j++ {
			if fs.DeltaDeleted(j) {
				continue
			}
			for k, f := range q.Filters {
				if v := fs.DeltaValue(j, filterIdx[k]); v < f.Lo || v > f.Hi {
					continue rows
				}
			}
			for gi, group := range q.Or {
				match := false
				for k, f := range group {
					if v := fs.DeltaValue(j, orIdx[gi][k]); v >= f.Lo && v <= f.Hi {
						match = true
						break
					}
				}
				if !match {
					continue rows
				}
			}
			for ji := range joins {
				dj := &joins[ji]
				pos, ok := dj.lookup(fs.DeltaValue(j, dj.fkIdx))
				if !ok || snap.dims[dj.spec.Dim].BaseDeleted(int(pos)) {
					continue rows
				}
				for k, f := range dj.spec.DimFilters {
					if v := dj.filterCols[k][pos]; v < f.Lo || v > f.Hi {
						continue rows
					}
				}
				dimPos[ji] = pos
			}
			if len(joins) > 0 {
				pt.dimGathers++
			}
			for k, ref := range factRefs {
				pt.factVals[k] = append(pt.factVals[k], fs.DeltaValue(j, ref.idx))
			}
			for k, ref := range dimRefs {
				pt.dimVals[k] = append(pt.dimVals[k], ref.col[dimPos[ref.join]])
			}
			pt.n++
		}
	}
	// A cancellation mid-scan leaves unscanned morsels' partials nil;
	// surface the context error instead of merging incomplete parts.
	if err := par.ForEach(pp, len(morsels), func(mi int) { scanMorsel(mi, morsels[mi]) }); err != nil {
		return nil, err
	}

	// Merge partials in morsel order: identical to the serial row order.
	out := &deltaSet{vals: map[ColRef][]int64{}}
	var dimGathers int64
	for _, pt := range parts {
		out.n += pt.n
		dimGathers += pt.dimGathers
	}
	for k, ref := range factRefs {
		vals := make([]int64, 0, out.n)
		for pi := range parts {
			vals = append(vals, parts[pi].factVals[k]...)
		}
		out.vals[ref.ref] = vals
	}
	for k, ref := range dimRefs {
		vals := make([]int64, 0, out.n)
		for pi := range parts {
			vals = append(vals, parts[pi].dimVals[k]...)
		}
		out.vals[ref.ref] = vals
	}
	if m != nil {
		nPreds := len(q.Filters)
		for _, group := range q.Or {
			nPreds += len(group)
		}
		ops := int64(fs.DeltaLen()) * int64(1+nPreds)
		var gatherBytes int64
		if dimGathers > 0 {
			gatherBytes = dimGathers * 8 * int64(len(dimRefs)+nDimFilterCols)
		}
		m.CPUWork(pp.NThreads(), fs.DeltaBytes()+int64(out.n)*8*int64(len(factRefs)), gatherBytes, ops)
	}
	return out, nil
}

// denseLookup builds an FK lookup from the dense primary-key assumption
// the A&R join path already relies on (§IV-D): position = fk - pkBase.
func denseLookup(pkBase int64, dimLen int) func(int64) (bat.OID, bool) {
	return func(fk int64) (bat.OID, bool) {
		pos := fk - pkBase
		if pos < 0 || pos >= int64(dimLen) {
			return 0, false
		}
		return bat.OID(pos), true
	}
}

// appendDelta folds the delta values into the exact-value context so the
// shared aggregation path sees one combined tuple set.
func (ctx *exprCtx) appendDelta(d *deltaSet) {
	if d == nil {
		return
	}
	for ref, vals := range d.vals {
		ctx.vals[ref] = append(ctx.vals[ref], vals...)
	}
	ctx.n += d.n
}

// maskDeletedOIDs drops the OIDs whose base row is deleted in the
// snapshot, charging one bitmap-probe pass. It returns the input slice
// when the snapshot has no deletions. The probe is morsel-parallel over
// the candidate list; morsel outputs concatenate in order, so candidate
// order is preserved.
func maskDeletedOIDs(m *device.Meter, pp par.P, s *store.Snapshot, ids []bat.OID) []bat.OID {
	if s.BaseDeletedCount() == 0 {
		return ids
	}
	out := par.GatherOrdered(pp, len(ids), func(lo, hi int) []bat.OID {
		part := make([]bat.OID, 0, hi-lo)
		for _, id := range ids[lo:hi] {
			if !s.BaseDeleted(int(id)) {
				part = append(part, id)
			}
		}
		return part
	})
	if m != nil {
		m.CPUWork(pp.NThreads(), int64(len(ids))*8+int64(s.BaseLen()+7)/8, 0, int64(len(ids)))
	}
	bat.OIDPool.Put(ids)
	return out
}
