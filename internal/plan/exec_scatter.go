// Scatter-gather execution over partitioned fact tables. A partitioned
// table (internal/shard) is N independent store.Tables behind one name;
// execution scatters one scan per partition — classic or A&R chosen per
// partition — runs them concurrently (each A&R scan admission-controlled
// onto its partition's simulated device stream by the engine's DeviceGate),
// and gathers the per-partition exact tuple sets into the one shared
// pipeline tail (delta merge, grouping, aggregation, HAVING, top-k).
//
// Determinism contract: the gather merges everything — column values,
// meters, phase-A bounds, candidate counts — in partition-index order, and
// each partition's scan is internally deterministic for any worker count.
// Result rows are therefore byte-identical to the unpartitioned execution
// of the same data at every partition count, and the simulated figures are
// bit-identical across worker-count and morsel-size sweeps at any fixed
// partition count.
package plan

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/ar"
	"repro/internal/device"
	"repro/internal/obs"
	"repro/internal/shard"
)

// DeviceGate admission-controls the per-partition device streams. The
// engine's scheduler implements it as a per-device ledger — one slot per
// simulated device — generalizing Fig 11's contention model: concurrent
// queries over the same partition serialize on its stream while scans of
// distinct partitions overlap freely.
type DeviceGate interface {
	// AcquireStream blocks until the partition's device stream is free (or
	// ctx is done) and returns the release function.
	AcquireStream(ctx context.Context, device int) (release func(), err error)
}

// partScan is one partition's scatter leg: its assembled pipeline, private
// execution state (own meter, own worker share), and scan output.
type partScan struct {
	pl   *pipeline
	st   *pipeState
	out  *scanOut
	wall time.Duration
	err  error
}

// prunePartitions returns the partition indices a scatter must scan: for a
// range-partitioned table whose conjunctive filters constrain the
// partitioning column, every partition whose value slab is disjoint from
// the filter interval is skipped before any leg is built. Pruning is exact
// — a row routed to a pruned partition has its partitioning value inside
// that slab, so it fails the filter and contributes nothing — which keeps
// the gathered result rows byte-identical to the unpruned scatter (the
// phase-A bounds can only tighten: pruned legs' approximate candidates
// disappear). Hash partitions and disjunction groups never prune.
func prunePartitions(q Query, spec shard.Spec) []int {
	all := make([]int, spec.N)
	for i := range all {
		all[i] = i
	}
	if spec.Kind != shard.Range || spec.N <= 1 {
		return all
	}
	flo, fhi := int64(NoLo), int64(NoHi)
	found := false
	for _, f := range q.Filters {
		if f.Col != spec.Col {
			continue
		}
		found = true
		if f.Lo > flo {
			flo = f.Lo
		}
		if f.Hi < fhi {
			fhi = f.Hi
		}
	}
	if !found {
		return all
	}
	keep := make([]int, 0, spec.N)
	for i := 0; i < spec.N; i++ {
		lo, hi, ok := spec.Slab(i)
		if !ok || (fhi >= lo && flo <= hi) {
			keep = append(keep, i)
		}
	}
	return keep
}

// anyPartAR reports whether any partition of the table validates for A&R
// execution of the query.
func (c *Catalog) anyPartAR(q Query, p *shard.Partitioned) bool {
	for i := 0; i < p.Spec.N; i++ {
		qi := q
		qi.Table = shard.PartName(p.Name, i)
		if _, err := qi.validate(c); err == nil {
			return true
		}
	}
	return false
}

// execScatter executes a query over a partitioned table: scatter one scan
// per partition, gather the partials, run the shared tail once.
func (c *Catalog) execScatter(ctx context.Context, q Query, opts ExecOpts, p *shard.Partitioned, classic bool) (*Result, error) {
	n := p.Spec.N
	scanCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Prune partitions whose range slabs the filters exclude; at least one
	// leg always survives so the executor shape (and an all-pruned query's
	// empty result) stays uniform.
	parts := prunePartitions(q, p.Spec)
	if len(parts) == 0 {
		parts = []int{0}
	}
	if pruned := n - len(parts); pruned > 0 {
		c.prunedParts.Add(int64(pruned))
	}

	// Each partition scan gets an equal share of the real worker pool; the
	// simulated Threads stay untouched, so the meter is independent of how
	// the pool is split.
	partOpts := opts
	partOpts.Workers = max(1, opts.workers()/len(parts))
	partOpts.Trace = false
	partOpts.Gate = nil

	scans := make([]*partScan, len(parts))
	qs := make([]Query, len(parts))
	snaps := make([]*execSnap, len(parts))
	var firstARErr error
	arCapable := 0
	for li, i := range parts {
		qi := q
		qi.Table = shard.PartName(p.Name, i)
		qs[li] = qi
		var pl *pipeline
		if classic {
			snap, err := qi.validateClassic(c)
			if err != nil {
				return nil, err
			}
			pl = buildPipeline(qi, snap, true)
		} else if snap, err := qi.validate(c); err == nil {
			arCapable++
			// Under a cost-chosen mode the scan strategy is re-chosen per
			// leg from the leg's own statistics: a partition the model
			// prices cheaper classically scans classically, and the shared
			// tail merges its (byte-identical) partial like any other.
			if opts.AutoMode && chooseSnap(c.sys, &qi, snap).Classic {
				if snapC, cerr := qi.validateClassic(c); cerr == nil {
					pl = buildPipeline(qi, snapC, true)
				} else {
					pl = buildPipeline(qi, snap, false)
				}
			} else {
				pl = buildPipeline(qi, snap, false)
			}
		} else {
			// The scan mode is a per-partition choice: a partition that
			// cannot run A&R scans classically and the shared tail merges it
			// like any other partial.
			if firstARErr == nil {
				firstARErr = err
			}
			snap, cerr := qi.validateClassic(c)
			if cerr != nil {
				return nil, err
			}
			pl = buildPipeline(qi, snap, true)
		}
		// The gather tail groups on the host where every partition's base
		// and delta tuples meet, so partition scans never pre-group on the
		// device.
		pl.noDevGroup = true
		snaps[li] = pl.snap
		mi := device.NewMeter(c.sys)
		sti := &pipeState{ctx: scanCtx, opts: partOpts, pp: partOpts.par(scanCtx), m: mi, res: &Result{Meter: mi}, estCand: -1}
		sti.estReset(pl)
		scans[li] = &partScan{pl: pl, st: sti}
	}
	if !classic && arCapable == 0 && !c.anyPartAR(q, p) {
		// No partition can run A&R: the query cannot either. Capability is
		// judged over the whole table — pruning must not turn a runnable
		// query into an error just because only classic-capable (e.g.
		// empty, undecomposed) partitions survived it.
		return nil, firstARErr
	}

	var wg sync.WaitGroup
	for li := range scans {
		wg.Add(1)
		go func(dev int, ps *partScan) {
			defer wg.Done()
			start := time.Now()
			defer func() { ps.wall = time.Since(start) }()
			if opts.Gate != nil && !ps.pl.classic {
				release, err := opts.Gate.AcquireStream(scanCtx, dev)
				if err != nil {
					ps.err = err
					cancel()
					return
				}
				defer release()
			}
			var out *scanOut
			var err error
			if ps.pl.classic {
				out, err = ps.pl.scanClassic(ps.st)
			} else {
				out, err = ps.pl.scanAR(ps.st)
			}
			if err == nil {
				// A cancellation mid-kernel leaves the scan incomplete;
				// never gather a partial partition.
				err = scanCtx.Err()
			}
			if err != nil {
				ps.err = err
				cancel()
				return
			}
			ps.out = out
		}(parts[li], scans[li])
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Prefer the partition's own failure over the cancellations it caused.
	var scanErr error
	for _, ps := range scans {
		if ps.err != nil && !errors.Is(ps.err, context.Canceled) {
			scanErr = ps.err
			break
		}
	}
	if scanErr == nil {
		for _, ps := range scans {
			if ps.err != nil {
				scanErr = ps.err
				break
			}
		}
	}
	if scanErr != nil {
		return nil, scanErr
	}

	// ---- Gather: merge the partials in partition-index order.
	m := device.NewMeter(c.sys)
	st := &pipeState{ctx: ctx, opts: opts, pp: opts.par(ctx), m: m, res: &Result{Meter: m}, estCand: -1}
	st.res.InputBytes = scatterInputBytes(qs, snaps)
	if opts.Trace {
		mode := "ar"
		if classic {
			mode = "classic"
		}
		st.tr = &obs.Trace{Mode: mode, Threads: opts.threads(), Workers: opts.workers(), Start: time.Now()}
		st.mark = st.tr.Start
		st.res.Trace = st.tr
	}
	st.res.Plan = append(st.res.Plan, fmt.Sprintf("scatter: %s over %d partitions (%s)", q.Table, n, p.Spec))
	if pruned := n - len(parts); pruned > 0 {
		st.res.Plan = append(st.res.Plan, fmt.Sprintf("  pruned: %d of %d partitions (filters on %s exclude their slabs)", pruned, n, p.Spec.Col))
	}

	answers := make([]ApproxAnswer, len(scans))
	estKnown := true
	var estSum int64
	for li, ps := range scans {
		out := ps.out
		out.ectx.appendDelta(out.dset)
		dn := 0
		if out.dset != nil {
			dn = out.dset.n
		}
		st.m.Add(ps.st.m)
		st.res.Candidates += ps.st.res.Candidates + dn
		st.res.Refined += ps.st.res.Refined + dn
		if ps.st.estCand < 0 {
			estKnown = false
		} else {
			estSum += ps.st.estCand
		}
		mode := "ar"
		if ps.pl.classic {
			mode = "classic"
			// A classic leg's partial is exact, so a mixed-mode scatter
			// still reports strict phase-A bounds.
			answers[li] = exactAnswer(q, out.ectx)
		} else {
			answers[li] = ps.st.res.Approx
		}
		st.res.Plan = append(st.res.Plan, fmt.Sprintf("  partition %d: mode=%s, %d candidates, %d refined", parts[li], mode, ps.st.res.Candidates+dn, ps.st.res.Refined+dn))
		for _, line := range ps.st.res.Plan {
			st.res.Plan = append(st.res.Plan, "    "+line)
		}
		if st.tr != nil {
			pm := ps.st.m
			st.tr.Add(obs.StageEvent{
				Stage: string(StageScatter),
				Op:    fmt.Sprintf("scatter(%s, mode=%s)", qs[li].Table, mode),
				Rows:  int64(out.ectx.n),
				Est:   ps.st.estCand,
				Wall:  ps.wall,
				GPU:   pm.GPU,
				CPU:   pm.CPU,
				PCI:   pm.PCI,
			})
		}
	}
	if estKnown {
		st.estCand = estSum
	}
	if !classic {
		st.res.Approx = combineAnswers(q, answers)
	}

	// Concatenate the exact values per referenced column, partition order.
	refs := sortedRefs(neededCols(q, len(q.GroupBy) > 0))
	merged := &exprCtx{vals: map[ColRef][]int64{}}
	for _, ps := range scans {
		merged.n += ps.out.ectx.n
	}
	for _, ref := range refs {
		vals := make([]int64, 0, merged.n)
		for _, ps := range scans {
			vals = append(vals, ps.out.ectx.vals[ref]...)
		}
		merged.vals[ref] = vals
	}

	// Baseline the tail's trace deltas after the merged charges.
	st.last = *st.m
	st.mark = time.Now()
	if err := st.step(StageGather); err != nil {
		return nil, err
	}
	st.traceRows(merged.n, "gather(%s, %d partitions)", q.Table, len(scans))

	tail := &pipeline{q: q, snap: snaps[0], classic: classic, noDevGroup: true}
	if err := tail.finish(st, &scanOut{ectx: merged}); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if st.tr != nil {
		st.tr.Wall = time.Since(st.tr.Start)
		st.tr.Candidates = int64(st.res.Candidates)
		st.tr.Refined = int64(st.res.Refined)
		st.tr.Rows = int64(len(st.res.Rows))
		st.tr.EstCandidates = st.estCand
	}
	return st.res, nil
}

// scatterInputBytes sums the stream-baseline footprint of a scatter: every
// partition's referenced fact columns and delta segment, plus each joined
// dimension column exactly once (dimensions are shared, not partitioned).
func scatterInputBytes(qs []Query, snaps []*execSnap) int64 {
	var total int64
	for i := range qs {
		q, s := qs[i], snaps[i]
		seen := map[string]bool{}
		_ = q.walkCols(func(table, col string) error {
			key := table + "." + col
			if seen[key] {
				return nil
			}
			seen[key] = true
			if i > 0 && table != q.Table {
				return nil // dimension columns count once
			}
			if b, err := s.snapFor(table).Column(col); err == nil {
				total += b.TailBytes()
			}
			return nil
		})
		total += s.fact.DeltaBytes()
	}
	return total
}

// exactAnswer derives a degenerate (exact) phase-A answer from a classic
// partition scan's combined tuple set.
func exactAnswer(q Query, ctx *exprCtx) ApproxAnswer {
	out := ApproxAnswer{Count: ar.Exact(int64(ctx.n))}
	for _, a := range q.Aggs {
		if a.Func == Count {
			out.Aggs = append(out.Aggs, out.Count)
			continue
		}
		var vals []int64
		if a.Expr != nil {
			vals = a.Expr.Eval(ctx)
		}
		var iv ar.Interval
		switch {
		case len(vals) == 0:
			// no qualifying rows: zero interval, skipped by the combiner
		case a.Func == Sum || a.Func == Avg:
			var sum int64
			for _, v := range vals {
				sum += v
			}
			if a.Func == Avg {
				sum /= int64(len(vals))
			}
			iv = ar.Exact(sum)
		case a.Func == Min:
			mv := vals[0]
			for _, v := range vals[1:] {
				if v < mv {
					mv = v
				}
			}
			iv = ar.Exact(mv)
		case a.Func == Max:
			mv := vals[0]
			for _, v := range vals[1:] {
				if v > mv {
					mv = v
				}
			}
			iv = ar.Exact(mv)
		}
		out.Aggs = append(out.Aggs, iv)
	}
	return out
}

// combineAnswers folds per-partition phase-A answers into bounds for the
// whole table. Counts and sums add. Extremes fold with certainty awareness:
// any partition that might hold qualifying rows (Count.Hi > 0) can supply
// the extreme, so it widens the outer bound, while only a partition that
// certainly holds rows (Count.Lo > 0) can tighten the inner one. Averages
// take the conservative hull of the per-partition intervals.
func combineAnswers(q Query, answers []ApproxAnswer) ApproxAnswer {
	var out ApproxAnswer
	for _, a := range answers {
		out.Count.Lo += a.Count.Lo
		out.Count.Hi += a.Count.Hi
	}
	out.Aggs = make([]ar.Interval, len(q.Aggs))
	for k, spec := range q.Aggs {
		switch spec.Func {
		case Count, Sum:
			var total ar.Interval
			for _, a := range answers {
				total.Lo += a.Aggs[k].Lo
				total.Hi += a.Aggs[k].Hi
			}
			out.Aggs[k] = total
		case Avg:
			set := false
			var total ar.Interval
			for _, a := range answers {
				if a.Count.Hi == 0 {
					continue
				}
				iv := a.Aggs[k]
				if !set {
					total, set = iv, true
					continue
				}
				if iv.Lo < total.Lo {
					total.Lo = iv.Lo
				}
				if iv.Hi > total.Hi {
					total.Hi = iv.Hi
				}
			}
			out.Aggs[k] = total
		case Min, Max:
			out.Aggs[k] = combineExtreme(spec.Func, answers, k)
		}
	}
	return out
}

// combineExtreme folds per-partition Min/Max intervals. For Min: the outer
// (lower) bound is the least Lo over every possibly-nonempty partition; the
// inner (upper) bound is the least Hi over the certainly-nonempty ones —
// falling back to the greatest Hi over the possible ones when no partition
// is certain. Max mirrors with the roles of Lo and Hi swapped.
func combineExtreme(f AggFunc, answers []ApproxAnswer, k int) ar.Interval {
	outerSet, innerSet := false, false
	var outer, inner int64
	for _, a := range answers {
		if a.Count.Hi == 0 {
			continue
		}
		iv := a.Aggs[k]
		if f == Min {
			if !outerSet || iv.Lo < outer {
				outer, outerSet = iv.Lo, true
			}
			if a.Count.Lo > 0 && (!innerSet || iv.Hi < inner) {
				inner, innerSet = iv.Hi, true
			}
		} else {
			if !outerSet || iv.Hi > outer {
				outer, outerSet = iv.Hi, true
			}
			if a.Count.Lo > 0 && (!innerSet || iv.Lo > inner) {
				inner, innerSet = iv.Lo, true
			}
		}
	}
	if !outerSet {
		return ar.Interval{}
	}
	if !innerSet {
		// No partition certainly holds rows: the weakest bound any possible
		// partition admits.
		for _, a := range answers {
			if a.Count.Hi == 0 {
				continue
			}
			iv := a.Aggs[k]
			if f == Min {
				if !innerSet || iv.Hi > inner {
					inner, innerSet = iv.Hi, true
				}
			} else if !innerSet || iv.Lo < inner {
				inner, innerSet = iv.Lo, true
			}
		}
	}
	if f == Min {
		return ar.Interval{Lo: outer, Hi: inner}
	}
	return ar.Interval{Lo: inner, Hi: outer}
}

// explainScatter renders a partitioned query plan without executing it: the
// scatter fan-out with per-partition estimated output rows (live base rows
// times the product of the estimated filter selectivities, when every
// touched filter has an estimate), the gather stage, and partition 0's
// pipeline of the first surviving partition as the representative
// per-partition plan. Pruned partitions are listed, not described.
func (c *Catalog) explainScatter(q Query, classic bool, p *shard.Partitioned) ([]string, error) {
	var out []string
	out = append(out, fmt.Sprintf("scatter: %s over %d partitions (%s)", q.Table, p.Spec.N, p.Spec))
	parts := prunePartitions(q, p.Spec)
	if len(parts) == 0 {
		parts = []int{0} // the executor keeps one leg for an all-pruned query
	}
	kept := map[int]bool{}
	for _, i := range parts {
		kept[i] = true
	}
	var rep []string
	for i := 0; i < p.Spec.N; i++ {
		qi := q
		qi.Table = shard.PartName(p.Name, i)
		if !kept[i] {
			out = append(out, fmt.Sprintf("  partition %d: %s, pruned (filters on %s exclude its slab)", i, qi.Table, p.Spec.Col))
			continue
		}
		var snap *execSnap
		var err error
		if classic {
			snap, err = qi.validateClassic(c)
		} else {
			snap, err = qi.validate(c)
		}
		if err != nil {
			return nil, err
		}
		pl := buildPipeline(qi, snap, classic)
		pl.noDevGroup = true
		live := snap.fact.LiveBase() + snap.fact.LiveDelta()
		est := float64(live)
		known := true
		fold := func(sel float64) {
			if sel < 0 {
				known = false
				return
			}
			est *= sel
		}
		for _, rf := range pl.factFilters {
			fold(rf.estSel())
		}
		for _, g := range pl.orGroups {
			fold(g.sel)
		}
		for _, j := range pl.joins {
			fold(j.sel)
			for _, rf := range j.dimFilters {
				fold(rf.estSel())
			}
		}
		line := fmt.Sprintf("  partition %d: %s, %d live rows", i, qi.Table, live)
		if known {
			line += fmt.Sprintf(", est ~%d rows out", int64(est+0.5))
		}
		out = append(out, line)
		if rep == nil {
			rep = pl.describe()
		}
	}
	out = append(out, fmt.Sprintf("  gather: concatenate partials in partition order, shared tail (group/aggregate/having/order) over %s", q.Table))
	out = append(out, fmt.Sprintf("per-partition plan (partition %d shown):", parts[0]))
	for _, line := range rep {
		out = append(out, "  "+line)
	}
	return out, nil
}
