package plan

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bat"
	"repro/internal/device"
)

// buildFactCatalog creates a catalog with one fact table of shuffled
// integer columns and decomposes every column.
func buildFactCatalog(t *testing.T, n int, seed int64, bits map[string]uint) *Catalog {
	t.Helper()
	c := NewCatalog(device.PaperSystem())
	rng := rand.New(rand.NewSource(seed))
	tbl := NewTable("fact")
	for col, b := range bits {
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(rng.Intn(n))
		}
		if err := tbl.AddColumn(col, bat.NewDense(vals, bat.Width32)); err != nil {
			t.Fatal(err)
		}
		_ = b
	}
	if err := c.AddTable(tbl); err != nil {
		t.Fatal(err)
	}
	for col, b := range bits {
		if _, err := c.Decompose("fact", col, b); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestARMatchesClassicSimpleCount(t *testing.T) {
	c := buildFactCatalog(t, 20000, 1, map[string]uint{"a": 8})
	q := Query{
		Table:   "fact",
		Filters: []Filter{{Col: "a", Lo: 1000, Hi: 7000}},
		Aggs:    []AggSpec{{Name: "n", Func: Count}},
	}
	arRes, err := c.ExecAR(q, ExecOpts{})
	if err != nil {
		t.Fatalf("ExecAR: %v", err)
	}
	clRes, err := c.ExecClassic(q, ExecOpts{})
	if err != nil {
		t.Fatalf("ExecClassic: %v", err)
	}
	if !EqualResults(arRes.Rows, clRes.Rows) {
		t.Fatalf("A&R != classic:\n%s\nvs\n%s", FormatRows(arRes.Rows), FormatRows(clRes.Rows))
	}
	if arRes.Candidates < arRes.Refined {
		t.Error("candidate set smaller than refined set")
	}
	if !arRes.Approx.Count.Contains(int64(arRes.Refined)) {
		t.Errorf("approximate count %v does not contain exact %d", arRes.Approx.Count, arRes.Refined)
	}
}

func TestARMatchesClassicSumWithArithmetic(t *testing.T) {
	c := buildFactCatalog(t, 15000, 2, map[string]uint{"date": 9, "price": 7, "disc": 6})
	// sum(price * (10000 - disc) / 10000): the Q6-like destructive case.
	q := Query{
		Table:   "fact",
		Filters: []Filter{{Col: "date", Lo: 2000, Hi: 9000}, {Col: "disc", Lo: 100, Hi: 12000}},
		Aggs: []AggSpec{
			{Name: "rev", Func: Sum, Expr: MulScaled(Col("price"), Sub(Const(20000), Col("disc")), 20000)},
			{Name: "n", Func: Count},
			{Name: "lo", Func: Min, Expr: Col("price")},
			{Name: "hi", Func: Max, Expr: Col("price")},
			{Name: "mean", Func: Avg, Expr: Col("price")},
		},
	}
	arRes, err := c.ExecAR(q, ExecOpts{})
	if err != nil {
		t.Fatalf("ExecAR: %v", err)
	}
	clRes, err := c.ExecClassic(q, ExecOpts{})
	if err != nil {
		t.Fatalf("ExecClassic: %v", err)
	}
	if !EqualResults(arRes.Rows, clRes.Rows) {
		t.Fatalf("A&R != classic:\n%s\nvs\n%s", FormatRows(arRes.Rows), FormatRows(clRes.Rows))
	}
	// Exact sum must lie inside the phase-A bounds.
	if !arRes.Approx.Aggs[0].Contains(arRes.Rows[0].Vals[0]) {
		t.Errorf("approximate sum %v does not contain exact %d",
			arRes.Approx.Aggs[0], arRes.Rows[0].Vals[0])
	}
}

func TestARMatchesClassicGrouped(t *testing.T) {
	n := 20000
	c := NewCatalog(device.PaperSystem())
	rng := rand.New(rand.NewSource(3))
	tbl := NewTable("fact")
	flag := make([]int64, n)
	status := make([]int64, n)
	qty := make([]int64, n)
	date := make([]int64, n)
	for i := 0; i < n; i++ {
		flag[i] = int64(rng.Intn(3))
		status[i] = int64(rng.Intn(2))
		qty[i] = int64(rng.Intn(50)) + 1
		date[i] = int64(rng.Intn(2526))
	}
	for name, vals := range map[string][]int64{"flag": flag, "status": status, "qty": qty, "date": date} {
		if err := tbl.AddColumn(name, bat.NewDense(vals, bat.Width32)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.AddTable(tbl); err != nil {
		t.Fatal(err)
	}
	for _, col := range []string{"flag", "status", "qty"} {
		if _, err := c.Decompose("fact", col, 32); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Decompose("fact", "date", 8); err != nil {
		t.Fatal(err)
	}

	q := Query{
		Table:   "fact",
		Filters: []Filter{{Col: "date", Lo: 0, Hi: 2000}},
		GroupBy: []string{"flag", "status"},
		Aggs: []AggSpec{
			{Name: "sum_qty", Func: Sum, Expr: Col("qty")},
			{Name: "n", Func: Count},
			{Name: "avg_qty", Func: Avg, Expr: Col("qty")},
		},
	}
	arRes, err := c.ExecAR(q, ExecOpts{})
	if err != nil {
		t.Fatalf("ExecAR: %v", err)
	}
	clRes, err := c.ExecClassic(q, ExecOpts{})
	if err != nil {
		t.Fatalf("ExecClassic: %v", err)
	}
	if !EqualResults(arRes.Rows, clRes.Rows) {
		t.Fatalf("grouped A&R != classic:\n%s\nvs\n%s", FormatRows(arRes.Rows), FormatRows(clRes.Rows))
	}
	if len(arRes.Rows) != 6 {
		t.Errorf("expected 6 groups (3 flags x 2 statuses), got %d", len(arRes.Rows))
	}
}

func TestARMatchesClassicDecomposedGroupColumn(t *testing.T) {
	c := buildFactCatalog(t, 10000, 4, map[string]uint{"g": 5, "sel": 8, "v": 9})
	q := Query{
		Table:   "fact",
		Filters: []Filter{{Col: "sel", Lo: 100, Hi: 6000}},
		GroupBy: []string{"g"},
		Aggs:    []AggSpec{{Name: "s", Func: Sum, Expr: Col("v")}, {Name: "n", Func: Count}},
	}
	arRes, err := c.ExecAR(q, ExecOpts{})
	if err != nil {
		t.Fatalf("ExecAR: %v", err)
	}
	clRes, err := c.ExecClassic(q, ExecOpts{})
	if err != nil {
		t.Fatalf("ExecClassic: %v", err)
	}
	if !EqualResults(arRes.Rows, clRes.Rows) {
		t.Fatal("A&R with decomposed grouping column != classic")
	}
}

func TestARMatchesClassicJoin(t *testing.T) {
	// Fact with FK into a dimension; filter on a dimension attribute.
	n, dimN := 20000, 125
	c := NewCatalog(device.PaperSystem())
	rng := rand.New(rand.NewSource(5))

	dim := NewTable("part")
	pk := make([]int64, dimN)
	ptype := make([]int64, dimN)
	for i := 0; i < dimN; i++ {
		pk[i] = int64(i) + 1
		ptype[i] = int64(i % 25)
	}
	if err := dim.AddColumn("p_partkey", bat.NewDense(pk, bat.Width32)); err != nil {
		t.Fatal(err)
	}
	if err := dim.AddColumn("p_type", bat.NewDense(ptype, bat.Width32)); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTable(dim); err != nil {
		t.Fatal(err)
	}

	fact := NewTable("fact")
	fk := make([]int64, n)
	date := make([]int64, n)
	price := make([]int64, n)
	for i := 0; i < n; i++ {
		fk[i] = int64(rng.Intn(dimN)) + 1
		date[i] = int64(rng.Intn(2526))
		price[i] = int64(rng.Intn(100000))
	}
	for name, vals := range map[string][]int64{"fk": fk, "date": date, "price": price} {
		if err := fact.AddColumn(name, bat.NewDense(vals, bat.Width32)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.AddTable(fact); err != nil {
		t.Fatal(err)
	}

	for col, bits := range map[string]uint{"fk": 32, "date": 8, "price": 10} {
		if _, err := c.Decompose("fact", col, bits); err != nil {
			t.Fatal(err)
		}
	}
	for col, bits := range map[string]uint{"p_type": 32} {
		if _, err := c.Decompose("part", col, bits); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.BuildFKIndex("part", "p_partkey"); err != nil {
		t.Fatal(err)
	}

	q := Query{
		Table:   "fact",
		Filters: []Filter{{Col: "date", Lo: 300, Hi: 600}},
		Joins: []JoinSpec{{
			FKCol: "fk", Dim: "part", DimPK: "p_partkey",
			DimFilters: []Filter{{Col: "p_type", Lo: 5, Hi: 9}},
		}},
		Aggs: []AggSpec{
			{Name: "rev", Func: Sum, Expr: Col("price")},
			{Name: "promo", Func: Sum, Expr: CaseRange(DimCol("part", "p_type"), 5, 7, Col("price"), Const(0))},
			{Name: "n", Func: Count},
		},
	}
	arRes, err := c.ExecAR(q, ExecOpts{})
	if err != nil {
		t.Fatalf("ExecAR: %v", err)
	}
	clRes, err := c.ExecClassic(q, ExecOpts{})
	if err != nil {
		t.Fatalf("ExecClassic: %v", err)
	}
	if !EqualResults(arRes.Rows, clRes.Rows) {
		t.Fatalf("join A&R != classic:\n%s\nvs\n%s", FormatRows(arRes.Rows), FormatRows(clRes.Rows))
	}
}

// TestARMatchesClassicRandomized is invariant 9 of DESIGN.md: arbitrary
// supported queries produce identical results under both execution models.
func TestARMatchesClassicRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 25; trial++ {
		bits := map[string]uint{
			"a": uint(rng.Intn(12)) + 4,
			"b": uint(rng.Intn(12)) + 4,
			"g": uint(rng.Intn(28)) + 4,
		}
		c := buildFactCatalog(t, 5000, int64(trial+100), bits)
		q := Query{Table: "fact"}
		nf := rng.Intn(3)
		cols := []string{"a", "b"}
		for f := 0; f <= nf && f < 2; f++ {
			lo := int64(rng.Intn(5000))
			hi := lo + int64(rng.Intn(5000))
			q.Filters = append(q.Filters, Filter{Col: cols[f], Lo: lo, Hi: hi})
		}
		if rng.Intn(2) == 0 {
			q.GroupBy = []string{"g"}
		}
		q.Aggs = []AggSpec{
			{Name: "n", Func: Count},
			{Name: "s", Func: Sum, Expr: Add(Col("a"), Col("b"))},
			{Name: "m", Func: Max, Expr: Col("b")},
		}
		arRes, err := c.ExecAR(q, ExecOpts{})
		if err != nil {
			t.Fatalf("trial %d ExecAR: %v", trial, err)
		}
		clRes, err := c.ExecClassic(q, ExecOpts{})
		if err != nil {
			t.Fatalf("trial %d ExecClassic: %v", trial, err)
		}
		if !EqualResults(arRes.Rows, clRes.Rows) {
			t.Fatalf("trial %d: A&R != classic\nquery: %+v\nAR:\n%s\nclassic:\n%s",
				trial, q, FormatRows(arRes.Rows), FormatRows(clRes.Rows))
		}
		c.ReleaseDecompositions()
	}
}

func TestMeterSeparation(t *testing.T) {
	c := buildFactCatalog(t, 10000, 7, map[string]uint{"a": 8, "v": 8})
	q := Query{
		Table:   "fact",
		Filters: []Filter{{Col: "a", Lo: 0, Hi: 3000}},
		Aggs:    []AggSpec{{Name: "s", Func: Sum, Expr: Col("v")}},
	}
	arRes, err := c.ExecAR(q, ExecOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if arRes.Meter.GPU == 0 || arRes.Meter.PCI == 0 || arRes.Meter.CPU == 0 {
		t.Errorf("A&R must involve all three resources: %v", arRes.Meter)
	}
	clRes, err := c.ExecClassic(q, ExecOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if clRes.Meter.GPU != 0 || clRes.Meter.PCI != 0 {
		t.Errorf("classic plan charged device/bus time: %v", clRes.Meter)
	}
	if clRes.Meter.CPU == 0 {
		t.Error("classic plan charged no CPU time")
	}
	if arRes.InputBytes != clRes.InputBytes {
		t.Errorf("input-byte accounting differs: %d vs %d", arRes.InputBytes, clRes.InputBytes)
	}
	if arRes.InputBytes != 2*10000*4 {
		t.Errorf("InputBytes = %d, want %d", arRes.InputBytes, 2*10000*4)
	}
}

func TestPlanListingMALStyle(t *testing.T) {
	c := buildFactCatalog(t, 5000, 8, map[string]uint{"shipdate": 8, "price": 8})
	q := Query{
		Table:   "fact",
		Filters: []Filter{{Col: "shipdate", Lo: 100, Hi: 2000}},
		Aggs:    []AggSpec{{Name: "s", Func: Sum, Expr: Col("price")}},
	}
	res, err := c.ExecAR(q, ExecOpts{})
	if err != nil {
		t.Fatal(err)
	}
	planText := strings.Join(res.Plan, "\n")
	// The Fig 7 shape: paired approximate/refine operators, approximations
	// strictly before refinements.
	for _, want := range []string{
		"bwd.uselectapproximate(fact.shipdate)",
		"bwd.uselectrefine(fact.shipdate)",
		"bwd.leftjoinapproximate(fact.price)",
		"bwd.sumapproximate(s)",
		"bwd.sumrefine(s)",
	} {
		if !strings.Contains(planText, want) {
			t.Errorf("plan listing missing %q:\n%s", want, planText)
		}
	}
	lastApprox, firstRefine := -1, len(res.Plan)
	for i, line := range res.Plan {
		if strings.Contains(line, "approximate") && i > lastApprox {
			lastApprox = i
		}
		if strings.Contains(line, "refine") && i < firstRefine {
			firstRefine = i
		}
	}
	if lastApprox > firstRefine {
		t.Error("an approximate operator depends on a refine operator (violates Fig 7)")
	}
}

func TestOptimizerOrdersBySelectivity(t *testing.T) {
	c := buildFactCatalog(t, 5000, 9, map[string]uint{"wide": 10, "narrow": 10})
	// "narrow" filter admits 1% of codes, "wide" admits ~100%.
	q := Query{
		Table: "fact",
		Filters: []Filter{
			{Col: "wide", Lo: 0, Hi: 4999},
			{Col: "narrow", Lo: 0, Hi: 49},
		},
		Aggs: []AggSpec{{Name: "n", Func: Count}},
	}
	res, err := c.ExecAR(q, ExecOpts{})
	if err != nil {
		t.Fatal(err)
	}
	// The narrow selection must have been pushed first.
	var first string
	for _, line := range res.Plan {
		if strings.Contains(line, "uselectapproximate") {
			first = line
			break
		}
	}
	if !strings.Contains(first, "narrow") {
		t.Errorf("optimizer did not push the selective filter down: first select = %q", first)
	}
}

func TestValidationErrors(t *testing.T) {
	c := buildFactCatalog(t, 100, 10, map[string]uint{"a": 8})
	if _, err := c.ExecAR(Query{Table: "nope"}, ExecOpts{}); err == nil {
		t.Error("unknown table accepted")
	}
	if _, err := c.ExecAR(Query{Table: "fact", Filters: []Filter{{Col: "missing", Lo: 0, Hi: 1}}}, ExecOpts{}); err == nil {
		t.Error("unknown column accepted")
	}
	if _, err := c.ExecAR(Query{Table: "fact"}, ExecOpts{}); err == nil {
		t.Error("empty query accepted")
	}
	// Undecomposed column in an A&R plan must error; classic must work.
	c2 := NewCatalog(device.PaperSystem())
	tbl := NewTable("fact")
	if err := tbl.AddColumn("raw", bat.NewDense(make([]int64, 100), bat.Width32)); err != nil {
		t.Fatal(err)
	}
	if err := c2.AddTable(tbl); err != nil {
		t.Fatal(err)
	}
	q := Query{Table: "fact", Filters: []Filter{{Col: "raw", Lo: 0, Hi: 1}}, Aggs: []AggSpec{{Name: "n", Func: Count}}}
	if _, err := c2.ExecAR(q, ExecOpts{}); err == nil {
		t.Error("undecomposed column accepted by A&R plan")
	}
	if _, err := c2.ExecClassic(q, ExecOpts{}); err != nil {
		t.Errorf("classic plan rejected undecomposed column: %v", err)
	}
}

func TestCatalogBasics(t *testing.T) {
	c := NewCatalog(device.PaperSystem())
	tbl := NewTable("t")
	if err := tbl.AddColumn("a", bat.NewDense([]int64{1, 2, 3}, bat.Width32)); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AddColumn("a", bat.NewDense([]int64{1, 2, 3}, bat.Width32)); err == nil {
		t.Error("duplicate column accepted")
	}
	if err := tbl.AddColumn("b", bat.NewDense([]int64{1}, bat.Width32)); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := c.AddTable(tbl); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTable(tbl); err == nil {
		t.Error("duplicate table accepted")
	}
	if got := tbl.Columns(); len(got) != 1 || got[0] != "a" {
		t.Errorf("Columns = %v", got)
	}
	if _, err := c.Decompose("t", "a", 8); err != nil {
		t.Fatal(err)
	}
	// Re-decomposition replaces and releases the old one.
	gpuUsed := c.System().GPU.Used()
	if _, err := c.Decompose("t", "a", 4); err != nil {
		t.Fatal(err)
	}
	if c.System().GPU.Used() > gpuUsed {
		t.Error("re-decomposition leaked GPU memory")
	}
	c.ReleaseDecompositions()
	if c.System().GPU.Used() != 0 {
		t.Error("ReleaseDecompositions left GPU memory allocated")
	}
}
