package plan

import (
	"context"
	"fmt"

	"repro/internal/ar"
	"repro/internal/bat"
	"repro/internal/bulk"
	"repro/internal/bwd"
	"repro/internal/device"
	"repro/internal/par"
)

// ExecOpts tunes execution.
type ExecOpts struct {
	// Threads is the CPU thread count used by refinement (and by the whole
	// classic plan). Defaults to 1, the paper's per-query baseline setup.
	// It is the *simulated* thread count: the meter bills every CPU kernel
	// as Threads-way parallel, and (absent an explicit Workers budget) it
	// is also the real morsel-parallel worker count, so wall-clock follows
	// the simulation.
	Threads int
	// Workers overrides the real worker-goroutine budget without touching
	// the meter: the engine's scheduler sets it to this query's share of
	// the CPU pool, so concurrent queries split the machine instead of
	// each assuming all of it. 0 means Threads. Simulated figures are
	// identical for every Workers value.
	Workers int
	// Morsel overrides the morsel size in rows (0 = the default 64k).
	// Tests shrink it to push morsel boundaries through small inputs.
	Morsel int
	// OnStage, if set, is invoked at every cooperative checkpoint with the
	// stage about to run. It exists for observability and deterministic
	// cancellation tests; it must be fast and safe for concurrent use.
	OnStage func(Stage)
}

func (o ExecOpts) threads() int {
	if o.Threads > 0 {
		return o.Threads
	}
	return 1
}

// workers returns the real worker budget (Workers, else Threads).
func (o ExecOpts) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return o.threads()
}

// par bundles the execution options and the query context into the
// parallelism descriptor handed to every CPU kernel: meter charges use
// threads(), real execution uses workers(), and ctx is polled at morsel
// granularity so cancellation latency is bounded by one morsel.
func (o ExecOpts) par(ctx context.Context) par.P {
	return par.P{Threads: o.threads(), Workers: o.workers(), Chunk: o.Morsel, Ctx: ctx}
}

// ExecAR executes the query under the Approximate & Refine paradigm with a
// background context; see ExecARCtx.
func (c *Catalog) ExecAR(q Query, opts ExecOpts) (*Result, error) {
	return c.ExecARCtx(context.Background(), q, opts)
}

// ExecARCtx executes the query under the Approximate & Refine paradigm:
// the approximation subplan runs entirely on the simulated device first
// (its intermediate results never leave device memory), the candidate set
// and device-side projections are shipped across the bus once, and the
// refinement subplan discharges false positives and reconstructs exact
// values on the CPU. The returned Result carries the exact rows, the
// phase-A approximate answer, and the simulated GPU/CPU/PCI breakdown.
//
// The execution pins one store snapshot per touched table: the base
// segment runs through the A&R operator set (rows masked by the deletion
// bitmap are discharged device-side, where the bitmap is mirrored), the
// delta segment is scanned with one classic host-side pass, and the two
// contributions merge before aggregation — freshly inserted rows are
// queryable without any re-decomposition.
//
// Cancellation is cooperative: the executor polls ctx between pipeline
// stages (each approximate operator, the bus crossing, the delta scan,
// each refinement batch, the final aggregation) and returns ctx.Err()
// without a result once the context is done.
func (c *Catalog) ExecARCtx(ctx context.Context, q Query, opts ExecOpts) (*Result, error) {
	// Validation doubles as the snapshot pin: the whole execution works
	// against the table versions and decomposition pointers resolved here.
	snap, err := q.validate(c)
	if err != nil {
		return nil, err
	}
	pp := opts.par(ctx)
	m := device.NewMeter(c.sys)
	res := &Result{Meter: m}
	res.InputBytes = snap.inputBytes(q)
	trace := func(format string, args ...any) {
		res.Plan = append(res.Plan, fmt.Sprintf(format, args...))
	}

	// ---- Rule-based optimization: push the most selective approximate
	// selections down (§III-A).
	filters := orderFilters(snap, q.Table, q.Filters)

	// ---- Phase A: the approximation subplan on the device.
	if err := step(ctx, opts, StageApprox); err != nil {
		return nil, err
	}
	var cands *ar.Candidates
	if len(filters) > 0 {
		d := snap.get(q.Table, filters[0].Col)
		cands = ar.SelectApprox(m, d, d.Relax(filters[0].Lo, filters[0].Hi))
		trace("bwd.uselectapproximate(%s.%s)", q.Table, filters[0].Col)
		for _, f := range filters[1:] {
			if err := step(ctx, opts, StageApprox); err != nil {
				return nil, err
			}
			d := snap.get(q.Table, f.Col)
			cands = ar.SelectApproxOver(m, d, d.Relax(f.Lo, f.Hi), cands)
			trace("bwd.uselectapproximate(%s.%s)", q.Table, f.Col)
		}
	} else {
		anchor, ok := q.anchorColumn()
		if !ok {
			return nil, fmt.Errorf("plan: query references no fact columns")
		}
		d := snap.get(q.Table, anchor)
		cands = ar.SelectApprox(m, d, bwd.ApproxRange{Full: true})
		trace("bwd.scanapproximate(%s.%s)", q.Table, anchor)
	}

	// Discharge deleted base rows on the device: the deletion bitmap is
	// mirrored GPU-side (shipped by DELETE), so masking is one kernel over
	// the candidate IDs and the phase-A answer stays a strict bound over
	// the live rows.
	if fs := snap.fact; fs.BaseDeletedCount() > 0 {
		keep := par.GatherOrdered(pp, cands.Len(), func(lo, hi int) []int {
			part := make([]int, 0, hi-lo)
			for i := lo; i < hi; i++ {
				if !fs.BaseDeleted(int(cands.IDs[i])) {
					part = append(part, i)
				}
			}
			return part
		})
		m.GPUKernel(int64(cands.Len())*4+int64(fs.BaseLen()+7)/8, 0, int64(cands.Len()))
		cands = cands.Filter(keep)
		trace("bwd.maskdeleted(%s)", q.Table)
	}

	// Foreign-key join and dimension-side approximate selections.
	var dimPos []bat.OID
	var lookup func(int64) (bat.OID, bool)
	if q.Join != nil {
		if err := step(ctx, opts, StageApprox); err != nil {
			return nil, err
		}
		fkd := snap.get(q.Table, q.Join.FKCol)
		dimLen := snap.dim.BaseLen()
		pk, err := snap.dim.Column(q.Join.DimPK)
		if err != nil {
			return nil, err
		}
		pkBase := pk.Tail(0)
		lookup = denseLookup(pkBase, dimLen)
		dimPos, err = ar.FKPositionsApprox(m, fkd, cands, pkBase, dimLen)
		if err != nil {
			return nil, err
		}
		trace("bwd.leftjoinapproximate(%s.%s -> %s)", q.Table, q.Join.FKCol, q.Join.Dim)
		if ds := snap.dim; ds.BaseDeletedCount() > 0 {
			type keepPos struct {
				i   int
				pos bat.OID
			}
			pairs := par.GatherOrdered(pp, len(dimPos), func(lo, hi int) []keepPos {
				part := make([]keepPos, 0, hi-lo)
				for i := lo; i < hi; i++ {
					if !ds.BaseDeleted(int(dimPos[i])) {
						part = append(part, keepPos{i, dimPos[i]})
					}
				}
				return part
			})
			keep := make([]int, len(pairs))
			kept := make([]bat.OID, len(pairs))
			for i, kp := range pairs {
				keep[i] = kp.i
				kept[i] = kp.pos
			}
			m.GPUKernel(int64(len(dimPos))*4+int64(ds.BaseLen()+7)/8, 0, int64(len(dimPos)))
			cands = cands.Filter(keep)
			dimPos = kept
			trace("bwd.maskdeleted(%s)", q.Join.Dim)
		}
		for _, f := range q.Join.DimFilters {
			dd := snap.get(q.Join.Dim, f.Col)
			cands, dimPos = ar.SelectApproxAt(m, dd, dd.Relax(f.Lo, f.Hi), cands, dimPos)
			trace("bwd.uselectapproximate(%s.%s)", q.Join.Dim, f.Col)
		}
	}

	// Device-side pre-grouping — only while the table has no live delta
	// rows: a delta forces the grouping onto the host, where base and
	// delta tuples meet.
	useDevGrouping := len(q.GroupBy) > 0 && snap.fact.LiveDelta() == 0
	var mg *ar.MultiGrouping
	if useDevGrouping {
		cols := make([]*bwd.Column, len(q.GroupBy))
		for i, g := range q.GroupBy {
			cols[i] = snap.get(q.Table, g)
		}
		mg = ar.GroupApproxMulti(m, cols, cands)
		trace("bwd.groupapproximate(%s)", join(q.GroupBy))
	}

	// Approximate projections for every column the aggregation phase
	// needs: aggregate inputs, plus the grouping keys when grouping merges
	// with the delta on the host.
	need := neededCols(q, len(q.GroupBy) > 0 && !useDevGrouping)
	var refList []ColRef
	projections := map[ColRef]*ar.Projection{}
	addRef := func(ref ColRef) {
		if _, done := projections[ref]; done {
			return
		}
		if ref.Dim {
			dd := snap.get(q.Join.Dim, ref.Name)
			projections[ref] = ar.ProjectApproxAt(m, dd, cands, dimPos)
			trace("bwd.leftjoinapproximate(%s.%s)", q.Join.Dim, ref.Name)
		} else {
			fd := snap.get(q.Table, ref.Name)
			projections[ref] = ar.ProjectApprox(m, fd, cands)
			trace("bwd.leftjoinapproximate(%s.%s)", q.Table, ref.Name)
		}
		refList = append(refList, ref)
	}
	for _, a := range q.Aggs {
		if a.Expr == nil {
			continue
		}
		for _, ref := range a.Expr.Cols() {
			addRef(ref)
		}
	}
	if len(q.GroupBy) > 0 && !useDevGrouping {
		for _, g := range q.GroupBy {
			addRef(ColRef{Name: g})
		}
	}

	// ---- Delta scan: the append segment lives in host memory and is
	// never decomposed; one classic row-major pass evaluates the
	// predicates and materializes the needed values exactly.
	var dset *deltaSet
	if snap.fact.DeltaLen() > 0 {
		if err := step(ctx, opts, StageDelta); err != nil {
			return nil, err
		}
		dset, err = scanDelta(m, pp, q, snap, need, lookup)
		if err != nil {
			return nil, err
		}
		trace("delta.scan(%s, %d qualifying)", q.Table, dset.n)
	}

	// Phase-A approximate answer: strict bounds from approximations over
	// the base segment, plus the (exact) delta contributions.
	res.Approx = approxAnswer(m, q, cands, projections, dset)
	res.Candidates = cands.Len()
	if dset != nil {
		res.Candidates += dset.n
	}
	for _, a := range q.Aggs {
		trace("bwd.%sapproximate(%s)", a.Func, a.Name)
	}

	// ---- Ship: one bus crossing for candidates, projections, groupings.
	if err := step(ctx, opts, StageShip); err != nil {
		return nil, err
	}
	cands.Ship(m)
	for _, ref := range refList {
		projections[ref].Ship(m)
	}
	if mg != nil {
		mg.Ship(m)
	}
	if dimPos != nil {
		m.Transfer(int64(len(dimPos)) * 4)
	}

	// ---- Phase R: the refinement subplan on the CPU.
	refined := cands
	atRefined := dimPos
	for _, f := range filters {
		if err := step(ctx, opts, StageRefine); err != nil {
			return nil, err
		}
		d := snap.get(q.Table, f.Col)
		if atRefined == nil {
			refined, _ = ar.SelectRefinePar(pp, m, d, f.Lo, f.Hi, refined)
		} else {
			// Keep the joined positions aligned while filtering.
			var keepPos []bat.OID
			refined, keepPos = refineKeepingAt(pp, m, d, f.Lo, f.Hi, refined, atRefined)
			atRefined = keepPos
		}
		trace("bwd.uselectrefine(%s.%s)", q.Table, f.Col)
	}
	if q.Join != nil {
		trace("bwd.leftjoinrefine(%s.%s -> %s)", q.Table, q.Join.FKCol, q.Join.Dim)
		for _, f := range q.Join.DimFilters {
			if err := step(ctx, opts, StageRefine); err != nil {
				return nil, err
			}
			dd := snap.get(q.Join.Dim, f.Col)
			refined, atRefined, _ = ar.SelectRefineAtPar(pp, m, dd, f.Lo, f.Hi, refined, atRefined)
			trace("bwd.uselectrefine(%s.%s)", q.Join.Dim, f.Col)
		}
	}
	res.Refined = refined.Len()
	if dset != nil {
		res.Refined += dset.n
	}

	// Exact values for every referenced column.
	ectx := &exprCtx{n: refined.Len(), fact: map[string][]int64{}, dim: map[string][]int64{}}
	for _, ref := range refList {
		if err := step(ctx, opts, StageRefine); err != nil {
			return nil, err
		}
		p := projections[ref]
		var vals []int64
		var err error
		if ref.Dim {
			vals, err = ar.ProjectRefineAtPar(pp, m, p, refined, atRefined)
		} else {
			vals, err = ar.ProjectRefinePar(pp, m, p, refined)
		}
		if err != nil {
			return nil, err
		}
		if ref.Dim {
			ectx.dim[ref.Name] = vals
		} else {
			ectx.fact[ref.Name] = vals
		}
		trace("bwd.leftjoinrefine(%s)", ref.Name)
	}

	// Merge the delta contribution: base and delta tuples meet in one
	// combined exact-value context.
	ectx.appendDelta(dset)

	// Exact grouping — refined from the device pre-grouping, or rebuilt on
	// the host over the combined tuple set when a delta is present.
	var grouping *bulk.Grouping
	var groupKeys [][]int64
	if mg != nil {
		if err := step(ctx, opts, StageRefine); err != nil {
			return nil, err
		}
		grouping, groupKeys, err = ar.GroupRefineMultiPar(pp, m, mg, refined)
		if err != nil {
			return nil, err
		}
		trace("bwd.grouprefine(%s)", join(q.GroupBy))
	} else if len(q.GroupBy) > 0 {
		if err := step(ctx, opts, StageRefine); err != nil {
			return nil, err
		}
		cols := make([][]int64, len(q.GroupBy))
		for k, g := range q.GroupBy {
			cols[k] = ectx.fact[g]
		}
		grouping, groupKeys = bulk.GroupByMultiPar(pp, m, cols)
		trace("group.merge(%s)", join(q.GroupBy))
	}

	// Aggregation (§IV-F; sums of products are recomputed on the CPU due
	// to destructive distributivity, §IV-G). The refinement aggregation is
	// a fused, statically expanded loop (§V-C) reading each input column
	// once — unlike the classic engine, which materializes every
	// arithmetic intermediate (§II-B).
	if err := step(ctx, opts, StageAggregate); err != nil {
		return nil, err
	}
	rows, err := aggregateRows(m, pp, q, ectx, grouping, groupKeys, true)
	if err != nil {
		return nil, err
	}
	for _, a := range q.Aggs {
		trace("bwd.%srefine(%s)", a.Func, a.Name)
	}
	// A context cancelled mid-kernel leaves that kernel's output incomplete
	// (workers stop claiming morsels); the final check guarantees such
	// partial results are never returned as an answer.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

// refineKeepingAt runs a fact-side selection refinement while keeping an
// auxiliary position list aligned with the surviving candidates.
func refineKeepingAt(pp par.P, m *device.Meter, d *bwd.Column, lo, hi int64, in *ar.Candidates, at []bat.OID) (*ar.Candidates, []bat.OID) {
	refined, _ := ar.SelectRefinePar(pp, m, d, lo, hi, in)
	pos, err := ar.TranslucentJoin(in.IDs, refined.IDs)
	if err != nil {
		// The refinement is an order-preserving subset by construction.
		panic("plan: refinement broke candidate order: " + err.Error())
	}
	keep := make([]bat.OID, len(pos))
	pp.For(len(pos), func(mlo, mhi int) {
		for i := mlo; i < mhi; i++ {
			keep[i] = at[pos[i]]
		}
	})
	return refined, keep
}

// approxAnswer derives the phase-A bounds: candidate-count interval and
// per-aggregate sum/min/max bounds from approximate projections over the
// base segment, plus the exact contributions of qualifying delta rows
// (the delta is host resident and undecomposed, so its values carry no
// approximation error).
func approxAnswer(m *device.Meter, q Query, cands *ar.Candidates, projections map[ColRef]*ar.Projection, delta *deltaSet) ApproxAnswer {
	out := ApproxAnswer{Count: ar.CountApprox(m, cands)}
	var dctx *exprCtx
	if delta != nil {
		out.Count.Lo += int64(delta.n)
		out.Count.Hi += int64(delta.n)
		dctx = &exprCtx{n: delta.n, fact: delta.fact, dim: delta.dim}
	}
	bctx := &boundsCtx{n: cands.Len(), fact: map[string][]ar.Interval{}, dim: map[string][]ar.Interval{}}
	for ref, p := range projections {
		ivs := make([]ar.Interval, p.Len())
		err := p.Col.Dec.Err()
		for i := range ivs {
			lo := p.ApproxLow(i)
			ivs[i] = ar.Interval{Lo: lo, Hi: lo + err}
		}
		if ref.Dim {
			bctx.dim[ref.Name] = ivs
		} else {
			bctx.fact[ref.Name] = ivs
		}
	}
	for _, a := range q.Aggs {
		switch a.Func {
		case Count:
			out.Aggs = append(out.Aggs, out.Count)
		case Sum, Avg:
			ivs := a.Expr.Bounds(bctx)
			var total ar.Interval
			for i, iv := range ivs {
				if !cands.Certain(i) {
					// A false positive contributes nothing.
					if iv.Lo > 0 {
						iv.Lo = 0
					}
					if iv.Hi < 0 {
						iv.Hi = 0
					}
				}
				total.Lo += iv.Lo
				total.Hi += iv.Hi
			}
			if dctx != nil {
				for _, v := range a.Expr.Eval(dctx) {
					total.Lo += v
					total.Hi += v
				}
			}
			if a.Func == Avg {
				cnt := out.Count
				if cnt.Lo > 0 {
					total = ar.Interval{Lo: total.Lo / cnt.Hi, Hi: total.Hi / cnt.Lo}
				}
			}
			out.Aggs = append(out.Aggs, total)
		case Min, Max:
			ivs := a.Expr.Bounds(bctx)
			if dctx != nil {
				for _, v := range a.Expr.Eval(dctx) {
					ivs = append(ivs, ar.Exact(v))
				}
			}
			var total ar.Interval
			for i, iv := range ivs {
				if i == 0 {
					total = iv
					continue
				}
				if a.Func == Min {
					if iv.Lo < total.Lo {
						total.Lo = iv.Lo
					}
					if iv.Hi < total.Hi {
						total.Hi = iv.Hi
					}
				} else {
					if iv.Hi > total.Hi {
						total.Hi = iv.Hi
					}
					if iv.Lo > total.Lo {
						total.Lo = iv.Lo
					}
				}
			}
			out.Aggs = append(out.Aggs, total)
		}
	}
	return out
}

// aggregateRows evaluates the aggregate expressions over the exact values
// and groups them.
func aggregateRows(m *device.Meter, pp par.P, q Query, ctx *exprCtx, grouping *bulk.Grouping, groupKeys [][]int64, fused bool) ([]Row, error) {
	threads := pp.NThreads()
	bulkMeter := m
	if m != nil && fused {
		// A&R refinement: one fused pass evaluates all expressions and
		// aggregates, reading each referenced column once (§V-C static
		// type expansion). Charge it here and run the arithmetic below
		// unmetered.
		uniq := map[ColRef]bool{}
		var nodes int
		for _, a := range q.Aggs {
			nodes++ // the aggregate update itself
			if a.Expr == nil {
				continue
			}
			nodes += a.Expr.Ops()
			for _, ref := range a.Expr.Cols() {
				uniq[ref] = true
			}
		}
		n := int64(ctx.n)
		bytes := n * 8 * int64(len(uniq))
		if grouping != nil {
			bytes += n * 4 // group ids
		}
		m.CPUWork(threads, bytes, 0, n*int64(nodes)*bulk.OpsArith)
		bulkMeter = nil
	} else if m != nil {
		// Classic bulk evaluation fully materializes one intermediate per
		// arithmetic node (§II-B); the aggregate passes below charge
		// separately through bulkMeter.
		for _, a := range q.Aggs {
			if a.Expr == nil {
				continue
			}
			if ops := a.Expr.Ops(); ops > 0 {
				n := int64(ctx.n)
				m.CPUWork(threads, n*24*int64(ops), 0, n*int64(ops)*bulk.OpsArith)
			}
		}
	}
	m = bulkMeter
	if grouping == nil {
		row := Row{}
		for _, a := range q.Aggs {
			v, err := globalAgg(m, pp, a, ctx)
			if err != nil {
				return nil, err
			}
			row.Vals = append(row.Vals, v)
		}
		return []Row{row}, nil
	}
	rows := make([]Row, grouping.NGroups)
	for g := 0; g < grouping.NGroups; g++ {
		keys := make([]int64, len(groupKeys))
		for k := range groupKeys {
			keys[k] = groupKeys[k][g]
		}
		rows[g].Keys = keys
	}
	for _, a := range q.Aggs {
		var per []int64
		switch a.Func {
		case Count:
			per = bulk.CountGroupedPar(pp, m, grouping)
		case Sum:
			per = bulk.SumGroupedPar(pp, m, a.Expr.Eval(ctx), grouping)
		case Min:
			per = bulk.MinGroupedPar(pp, m, a.Expr.Eval(ctx), grouping)
		case Max:
			per = bulk.MaxGroupedPar(pp, m, a.Expr.Eval(ctx), grouping)
		case Avg:
			sums := bulk.SumGroupedPar(pp, m, a.Expr.Eval(ctx), grouping)
			counts := bulk.CountGroupedPar(pp, m, grouping)
			per = make([]int64, len(sums))
			for i := range per {
				if counts[i] > 0 {
					per[i] = sums[i] / counts[i]
				}
			}
		default:
			return nil, fmt.Errorf("plan: unsupported aggregate %v", a.Func)
		}
		for g := range rows {
			rows[g].Vals = append(rows[g].Vals, per[g])
		}
	}
	sortRows(rows)
	return rows, nil
}

func globalAgg(m *device.Meter, pp par.P, a AggSpec, ctx *exprCtx) (int64, error) {
	switch a.Func {
	case Count:
		return int64(ctx.n), nil
	case Sum:
		return bulk.SumPar(pp, m, a.Expr.Eval(ctx)), nil
	case Min:
		v, _ := bulk.MinPar(pp, m, a.Expr.Eval(ctx))
		return v, nil
	case Max:
		v, _ := bulk.MaxPar(pp, m, a.Expr.Eval(ctx))
		return v, nil
	case Avg:
		vals := a.Expr.Eval(ctx)
		if len(vals) == 0 {
			return 0, nil
		}
		return bulk.SumPar(pp, m, vals) / int64(len(vals)), nil
	default:
		return 0, fmt.Errorf("plan: unsupported aggregate %v", a.Func)
	}
}

// inputBytes sums the physical footprint of every column the query reads —
// the stream-baseline input volume — over the pinned snapshots, including
// the row-major delta segment when present.
func (s *execSnap) inputBytes(q Query) int64 {
	seen := map[string]bool{}
	var total int64
	add := func(snap interface {
		Column(string) (*bat.BAT, error)
	}, table, col string) {
		key := table + "." + col
		if seen[key] {
			return
		}
		seen[key] = true
		b, err := snap.Column(col)
		if err != nil {
			return
		}
		total += b.TailBytes()
	}
	for _, f := range q.Filters {
		add(s.fact, q.Table, f.Col)
	}
	for _, g := range q.GroupBy {
		add(s.fact, q.Table, g)
	}
	if q.Join != nil {
		add(s.fact, q.Table, q.Join.FKCol)
		for _, f := range q.Join.DimFilters {
			add(s.dim, q.Join.Dim, f.Col)
		}
	}
	for _, a := range q.Aggs {
		if a.Expr == nil {
			continue
		}
		for _, ref := range a.Expr.Cols() {
			if ref.Dim {
				add(s.dim, q.Join.Dim, ref.Name)
			} else {
				add(s.fact, q.Table, ref.Name)
			}
		}
	}
	total += s.fact.DeltaBytes()
	return total
}

func join(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += ","
		}
		out += s
	}
	return out
}
