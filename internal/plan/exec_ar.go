package plan

import (
	"context"
	"fmt"

	"repro/internal/ar"
	"repro/internal/bat"
	"repro/internal/bwd"
	"repro/internal/device"
	"repro/internal/mem"
	"repro/internal/par"
)

// ExecOpts tunes execution.
type ExecOpts struct {
	// Threads is the CPU thread count used by refinement (and by the whole
	// classic plan). Defaults to 1, the paper's per-query baseline setup.
	// It is the *simulated* thread count: the meter bills every CPU kernel
	// as Threads-way parallel, and (absent an explicit Workers budget) it
	// is also the real morsel-parallel worker count, so wall-clock follows
	// the simulation.
	Threads int
	// Workers overrides the real worker-goroutine budget without touching
	// the meter: the engine's scheduler sets it to this query's share of
	// the CPU pool, so concurrent queries split the machine instead of
	// each assuming all of it. 0 means Threads. Simulated figures are
	// identical for every Workers value.
	Workers int
	// Morsel overrides the morsel size in rows (0 = the default 64k).
	// Tests shrink it to push morsel boundaries through small inputs.
	Morsel int
	// OnStage, if set, is invoked at every cooperative checkpoint with the
	// stage about to run. It exists for observability and deterministic
	// cancellation tests; it must be fast and safe for concurrent use.
	OnStage func(Stage)
	// Trace collects a per-operator obs.Trace on the Result. Tracing reads
	// the clock and the meter but never charges the meter, so results,
	// approximate answers and simulated figures are bit-identical with the
	// flag on or off.
	Trace bool
	// Gate, if set, admission-controls the per-partition device streams of
	// a scatter-gather execution (the engine's scheduler passes its
	// per-device ledger). Unpartitioned executions never consult it, and it
	// never affects results or simulated figures — only real concurrency.
	Gate DeviceGate
	// AutoMode marks an execution whose scan strategy was chosen by the
	// cost model rather than forced with \mode. Scatter-gather executions
	// use it to re-choose classic vs A&R per partition leg from each leg's
	// own statistics; it never affects results, only which (byte-identical)
	// executor produces them.
	AutoMode bool
}

func (o ExecOpts) threads() int {
	if o.Threads > 0 {
		return o.Threads
	}
	return 1
}

// workers returns the real worker budget (Workers, else Threads).
func (o ExecOpts) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return o.threads()
}

// par bundles the execution options and the query context into the
// parallelism descriptor handed to every CPU kernel: meter charges use
// threads(), real execution uses workers(), and ctx is polled at morsel
// granularity so cancellation latency is bounded by one morsel.
func (o ExecOpts) par(ctx context.Context) par.P {
	return par.P{Threads: o.threads(), Workers: o.workers(), Chunk: o.Morsel, Ctx: ctx}
}

// ExecAR executes the query under the Approximate & Refine paradigm with a
// background context; see ExecARCtx.
func (c *Catalog) ExecAR(q Query, opts ExecOpts) (*Result, error) {
	return c.ExecARCtx(context.Background(), q, opts)
}

// ExecARCtx executes the query under the Approximate & Refine paradigm:
// it validates the query (pinning one store snapshot per touched table),
// assembles the operator pipeline with the A&R scan strategy, and runs it.
// The approximation subplan runs entirely on the simulated device first
// (its intermediate results never leave device memory), the candidate set
// and device-side projections are shipped across the bus once, and the
// refinement subplan discharges false positives and reconstructs exact
// values on the CPU. The returned Result carries the exact rows, the
// phase-A approximate answer, and the simulated GPU/CPU/PCI breakdown.
//
// Cancellation is cooperative: the pipeline polls ctx between stages
// (each approximate operator, the bus crossing, the delta scan, each
// refinement batch, the final aggregation) and returns ctx.Err() without
// a result once the context is done.
func (c *Catalog) ExecARCtx(ctx context.Context, q Query, opts ExecOpts) (*Result, error) {
	if p, ok := c.Partitioned(q.Table); ok {
		return c.execScatter(ctx, q, opts, p, false)
	}
	snap, err := q.validate(c)
	if err != nil {
		return nil, err
	}
	return buildPipeline(q, snap, false).run(ctx, c.sys, opts)
}

// arJoinRT is the runtime state of one FK-probe stage in the A&R scan:
// the dimension base positions aligned with the current candidate set and
// the delta scan's FK lookup.
type arJoinRT struct {
	stage  joinStage
	pos    []bat.OID
	lookup func(int64) (bat.OID, bool)
}

// scanAR is the A&R scan strategy: the approximation subplan on the
// device (selections, disjunctions, join probes, pre-grouping,
// projections), the single bus crossing, and the refinement subplan on
// the CPU — producing the base segment's exact tuple values for the
// shared pipeline tail. The delta segment is scanned with one classic
// row-major pass before the ship (so the phase-A answer can include its
// exact contribution) and handed to the tail unmerged.
func (pl *pipeline) scanAR(st *pipeState) (*scanOut, error) {
	q := &pl.q
	snap := pl.snap
	pp := st.pp
	m := st.m

	// ---- Phase A: the approximation subplan on the device.
	if err := st.step(StageApprox); err != nil {
		return nil, err
	}
	var cands *ar.Candidates
	switch {
	case len(pl.factFilters) > 0:
		f0 := pl.factFilters[0].f
		d := snap.get(q.Table, f0.Col)
		cands = ar.SelectApprox(m, d, d.Relax(f0.Lo, f0.Hi))
		st.traceEst(cands.Len(), st.estApply(pl.factFilters[0].estSel()), "bwd.uselectapproximate(%s.%s)", q.Table, f0.Col)
		for _, rf := range pl.factFilters[1:] {
			if err := st.step(StageApprox); err != nil {
				return nil, err
			}
			d := snap.get(q.Table, rf.f.Col)
			prev := cands
			cands = ar.SelectApproxOver(m, d, d.Relax(rf.f.Lo, rf.f.Hi), prev)
			prev.Release()
			st.traceEst(cands.Len(), st.estApply(rf.estSel()), "bwd.uselectapproximate(%s.%s)", q.Table, rf.f.Col)
		}
	case len(pl.orGroups) > 0:
		g := pl.orGroups[0]
		cols, rs, _, _ := pl.orGroupRelax(g)
		cands = ar.SelectApproxAny(m, cols, rs, g.id)
		st.traceEst(cands.Len(), st.estApply(g.sel), "bwd.uselectanyapproximate(%s)", orGroupText(q.Table, g.filters))
	default:
		anchor, ok := q.anchorColumn()
		if !ok {
			return nil, fmt.Errorf("plan: query references no fact columns")
		}
		d := snap.get(q.Table, anchor)
		cands = ar.SelectApprox(m, d, bwd.ApproxRange{Full: true})
		st.traceRows(cands.Len(), "bwd.scanapproximate(%s.%s)", q.Table, anchor)
	}
	// Remaining disjunction groups narrow the candidate set like further
	// conjuncts — each one the union of its per-disjunct relaxed ranges.
	orStart := 0
	if len(pl.factFilters) == 0 && len(pl.orGroups) > 0 {
		orStart = 1
	}
	for _, g := range pl.orGroups[orStart:] {
		if err := st.step(StageApprox); err != nil {
			return nil, err
		}
		cols, rs, _, _ := pl.orGroupRelax(g)
		prev := cands
		cands = ar.SelectApproxAnyOver(m, cols, rs, prev, g.id)
		prev.Release()
		st.traceEst(cands.Len(), st.estApply(g.sel), "bwd.uselectanyapproximate(%s)", orGroupText(q.Table, g.filters))
	}

	// Discharge deleted base rows on the device: the deletion bitmap is
	// mirrored GPU-side (shipped by DELETE), so masking is one kernel over
	// the candidate IDs and the phase-A answer stays a strict bound over
	// the live rows.
	if fs := snap.fact; fs.BaseDeletedCount() > 0 {
		keep := par.GatherOrdered(pp, cands.Len(), func(lo, hi int) []int {
			part := make([]int, 0, hi-lo)
			for i := lo; i < hi; i++ {
				if !fs.BaseDeleted(int(cands.IDs[i])) {
					part = append(part, i)
				}
			}
			return part
		})
		m.GPUKernel(int64(cands.Len())*4+int64(fs.BaseLen()+7)/8, 0, int64(cands.Len()))
		prev := cands
		cands = prev.Filter(keep)
		prev.Release()
		st.traceRows(cands.Len(), "bwd.maskdeleted(%s)", q.Table)
	}

	// Foreign-key join chain and dimension-side approximate selections.
	joins := make([]*arJoinRT, len(pl.joins))
	for ji := range pl.joins {
		joins[ji] = &arJoinRT{stage: pl.joins[ji]}
		jr := joins[ji]
		spec := jr.stage.spec
		if err := st.step(StageApprox); err != nil {
			return nil, err
		}
		fkd := snap.get(q.Table, spec.FKCol)
		ds := snap.dims[spec.Dim]
		dimLen := ds.BaseLen()
		pk, err := ds.Column(spec.DimPK)
		if err != nil {
			return nil, err
		}
		pkBase := pk.Tail(0)
		jr.lookup = denseLookup(pkBase, dimLen)
		jr.pos, err = ar.FKPositionsApprox(m, fkd, cands, pkBase, dimLen)
		if err != nil {
			return nil, err
		}
		st.traceRows(cands.Len(), "bwd.leftjoinapproximate(%s.%s -> %s)", q.Table, spec.FKCol, spec.Dim)
		if ds.BaseDeletedCount() > 0 {
			type keepPos struct {
				i   int
				pos bat.OID
			}
			pairs := par.GatherOrdered(pp, len(jr.pos), func(lo, hi int) []keepPos {
				part := make([]keepPos, 0, hi-lo)
				for i := lo; i < hi; i++ {
					if !ds.BaseDeleted(int(jr.pos[i])) {
						part = append(part, keepPos{i, jr.pos[i]})
					}
				}
				return part
			})
			keep := make([]int, len(pairs))
			kept := make([]bat.OID, len(pairs))
			for i, kp := range pairs {
				keep[i] = kp.i
				kept[i] = kp.pos
			}
			m.GPUKernel(int64(len(jr.pos))*4+int64(ds.BaseLen()+7)/8, 0, int64(len(jr.pos)))
			prev := cands
			cands = prev.Filter(keep)
			prev.Release()
			bat.OIDPool.Put(jr.pos)
			jr.pos = kept
			remapJoinPos(pp, joins[:ji], keep)
			st.traceRows(cands.Len(), "bwd.maskdeleted(%s)", spec.Dim)
		}
		for _, rf := range jr.stage.dimFilters {
			dd := snap.get(spec.Dim, rf.f.Col)
			prev, prevPos := cands, jr.pos
			cands, jr.pos = ar.SelectApproxAt(m, dd, dd.Relax(rf.f.Lo, rf.f.Hi), prev, prevPos)
			if err := remapJoinLists(pp, joins[:ji], nil, prev, cands); err != nil {
				return nil, err
			}
			prev.Release()
			bat.OIDPool.Put(prevPos)
			st.traceEst(cands.Len(), st.estApply(rf.estSel()), "bwd.uselectapproximate(%s.%s)", spec.Dim, rf.f.Col)
		}
	}

	// Device-side pre-grouping — only while the table has no live delta
	// rows: a delta forces the grouping onto the host, where base and
	// delta tuples meet.
	useDevGrouping := len(q.GroupBy) > 0 && snap.fact.LiveDelta() == 0 && !pl.noDevGroup
	var mg *ar.MultiGrouping
	if useDevGrouping {
		cols := make([]*bwd.Column, len(q.GroupBy))
		for i, g := range q.GroupBy {
			cols[i] = snap.get(q.Table, g)
		}
		mg = ar.GroupApproxMulti(m, cols, cands)
		st.traceRows(cands.Len(), "bwd.groupapproximate(%s)", join(q.GroupBy))
	}

	// Approximate projections for every column the aggregation phase
	// needs: aggregate inputs, plus the grouping keys when grouping merges
	// with the delta on the host.
	posFor := func(dim string) []bat.OID {
		for _, jr := range joins {
			if jr.stage.spec.Dim == dim {
				return jr.pos
			}
		}
		return nil
	}
	need := neededCols(*q, len(q.GroupBy) > 0 && !useDevGrouping)
	var refList []ColRef
	projections := map[ColRef]*ar.Projection{}
	addRef := func(ref ColRef) {
		if _, done := projections[ref]; done {
			return
		}
		if ref.IsDim() {
			dd := snap.get(ref.Dim, ref.Name)
			projections[ref] = ar.ProjectApproxAt(m, dd, cands, posFor(ref.Dim))
			st.traceRows(cands.Len(), "bwd.leftjoinapproximate(%s.%s)", ref.Dim, ref.Name)
		} else {
			fd := snap.get(q.Table, ref.Name)
			projections[ref] = ar.ProjectApprox(m, fd, cands)
			st.traceRows(cands.Len(), "bwd.leftjoinapproximate(%s.%s)", q.Table, ref.Name)
		}
		refList = append(refList, ref)
	}
	for _, a := range q.Aggs {
		if a.Expr == nil {
			continue
		}
		for _, ref := range a.Expr.Cols() {
			addRef(ref)
		}
	}
	if len(q.GroupBy) > 0 && !useDevGrouping {
		for _, g := range q.GroupBy {
			addRef(ColRef{Name: g})
		}
	}

	// ---- Delta scan: the append segment lives in host memory and is
	// never decomposed; one classic row-major pass evaluates the
	// predicates and materializes the needed values exactly.
	var dset *deltaSet
	if snap.fact.DeltaLen() > 0 {
		if err := st.step(StageDelta); err != nil {
			return nil, err
		}
		lookups := map[string]func(int64) (bat.OID, bool){}
		for _, jr := range joins {
			lookups[jr.stage.spec.Dim] = jr.lookup
		}
		var err error
		dset, err = scanDelta(m, pp, *q, snap, need, lookups)
		if err != nil {
			return nil, err
		}
		st.traceRows(dset.n, "delta.scan(%s, %d qualifying)", q.Table, dset.n)
	}

	// Phase-A approximate answer: strict bounds from approximations over
	// the base segment, plus the (exact) delta contributions.
	st.res.Approx = approxAnswer(m, *q, cands, projections, dset)
	st.res.Candidates = cands.Len()
	for _, a := range q.Aggs {
		st.traceRows(cands.Len(), "bwd.%sapproximate(%s)", a.Func, a.Name)
	}

	// ---- Ship: one bus crossing for candidates, projections, groupings.
	if err := st.step(StageShip); err != nil {
		return nil, err
	}
	cands.Ship(m)
	for _, ref := range refList {
		projections[ref].Ship(m)
	}
	if mg != nil {
		mg.Ship(m)
	}
	for _, jr := range joins {
		if jr.pos != nil {
			m.Transfer(int64(len(jr.pos)) * 4)
		}
	}
	st.traceRows(cands.Len(), "ship(%s, %d projections)", q.Table, len(refList))

	// ---- Phase R: the refinement subplan on the CPU. The selectivity
	// estimate restarts at the live base cardinality: refinement walks the
	// same predicate chain with exact bounds, so the same model predicts
	// its per-filter output. The phase-A running estimate is captured first
	// as the trace footer's candidate-set prediction.
	st.estCapture()
	st.estReset(pl)
	refined := cands
	for _, rf := range pl.factFilters {
		if err := st.step(StageRefine); err != nil {
			return nil, err
		}
		d := snap.get(q.Table, rf.f.Col)
		prev := refined
		if len(joins) == 0 {
			var vals []int64
			refined, vals = ar.SelectRefinePar(pp, m, d, rf.f.Lo, rf.f.Hi, prev)
			mem.I64.Put(vals)
		} else {
			// Keep every join's positions aligned while filtering.
			var err error
			refined, err = refineKeepingJoins(pp, joins, func() *ar.Candidates {
				out, vals := ar.SelectRefinePar(pp, m, d, rf.f.Lo, rf.f.Hi, prev)
				mem.I64.Put(vals)
				return out
			}, prev)
			if err != nil {
				return nil, err
			}
		}
		if prev != cands {
			prev.Release()
		}
		st.traceEst(refined.Len(), st.estApply(rf.estSel()), "bwd.uselectrefine(%s.%s)", q.Table, rf.f.Col)
	}
	for _, g := range pl.orGroups {
		if err := st.step(StageRefine); err != nil {
			return nil, err
		}
		cols, _, los, his := pl.orGroupRelax(g)
		cur := refined
		var err error
		refined, err = refineKeepingJoins(pp, joins, func() *ar.Candidates {
			return ar.SelectRefineAnyPar(pp, m, cols, los, his, cur)
		}, cur)
		if err != nil {
			return nil, err
		}
		if cur != cands {
			cur.Release()
		}
		st.traceEst(refined.Len(), st.estApply(g.sel), "bwd.uselectanyrefine(%s)", orGroupText(q.Table, g.filters))
	}
	for _, jr := range joins {
		spec := jr.stage.spec
		st.traceRows(refined.Len(), "bwd.leftjoinrefine(%s.%s -> %s)", q.Table, spec.FKCol, spec.Dim)
		for _, rf := range jr.stage.dimFilters {
			if err := st.step(StageRefine); err != nil {
				return nil, err
			}
			dd := snap.get(spec.Dim, rf.f.Col)
			prev, prevPos := refined, jr.pos
			var vals []int64
			refined, jr.pos, vals = ar.SelectRefineAtPar(pp, m, dd, rf.f.Lo, rf.f.Hi, prev, prevPos)
			mem.I64.Put(vals)
			if err := remapJoinLists(pp, joins, jr, prev, refined); err != nil {
				return nil, err
			}
			bat.OIDPool.Put(prevPos)
			if prev != cands {
				prev.Release()
			}
			st.traceEst(refined.Len(), st.estApply(rf.estSel()), "bwd.uselectrefine(%s.%s)", spec.Dim, rf.f.Col)
		}
	}
	st.res.Refined = refined.Len()

	// Exact values for every referenced column.
	ectx := &exprCtx{n: refined.Len(), vals: map[ColRef][]int64{}}
	for _, ref := range refList {
		if err := st.step(StageRefine); err != nil {
			return nil, err
		}
		p := projections[ref]
		var vals []int64
		var err error
		if ref.IsDim() {
			vals, err = ar.ProjectRefineAtPar(pp, m, p, refined, posFor(ref.Dim))
		} else {
			vals, err = ar.ProjectRefinePar(pp, m, p, refined)
		}
		if err != nil {
			return nil, err
		}
		ectx.vals[ref] = vals
		st.traceRows(refined.Len(), "bwd.leftjoinrefine(%s)", ref.Name)
	}

	// The projection code buffers and the original candidate set are dead
	// once every projection has refined; the surviving set travels on to
	// the shared tail (run releases it after aggregation). mg still holds
	// cands as its Src until the group refinement, so keep it alive then.
	for _, ref := range refList {
		projections[ref].Release()
	}
	if cands != refined && mg == nil {
		cands.Release()
	}

	return &scanOut{ectx: ectx, dset: dset, mg: mg, refined: refined}, nil
}

// orGroupRelax resolves one disjunction group against the snapshot: the
// decomposed columns, the per-disjunct relaxed ranges (each through its
// own column's BWD bounds), and the exact bounds for refinement.
func (pl *pipeline) orGroupRelax(g orGroupStage) (cols []*bwd.Column, rs []bwd.ApproxRange, los, his []int64) {
	cols = make([]*bwd.Column, len(g.filters))
	rs = make([]bwd.ApproxRange, len(g.filters))
	los = make([]int64, len(g.filters))
	his = make([]int64, len(g.filters))
	for i, f := range g.filters {
		cols[i] = pl.snap.get(pl.q.Table, f.Col)
		rs[i] = cols[i].Relax(f.Lo, f.Hi)
		los[i], his[i] = f.Lo, f.Hi
	}
	return cols, rs, los, his
}

func orGroupText(table string, filters []Filter) string {
	out := ""
	for i, f := range filters {
		if i > 0 {
			out += "|"
		}
		out += table + "." + f.Col
	}
	return out
}

// refineKeepingJoins runs a candidate refinement produced by refine while
// keeping every join stage's position list aligned with the surviving
// candidates. With no joins the caller should refine directly; the
// position remap costs no metered work (the translucent join is the
// order-preserving positional fast path).
func refineKeepingJoins(pp par.P, joins []*arJoinRT, refine func() *ar.Candidates, in *ar.Candidates) (*ar.Candidates, error) {
	refined := refine()
	if err := remapJoinLists(pp, joins, nil, in, refined); err != nil {
		return nil, err
	}
	return refined, nil
}

// remapJoinLists compacts the position lists of every join (except skip,
// usually the stage whose own operator already returned its filtered
// list) after an order-preserving selection shrank the candidate set from
// prev to cur. The translucent join recovers the surviving positions; the
// remap itself is unmetered bookkeeping.
func remapJoinLists(pp par.P, joins []*arJoinRT, skip *arJoinRT, prev, cur *ar.Candidates) error {
	any := false
	for _, jr := range joins {
		if jr != skip && jr.pos != nil {
			any = true
			break
		}
	}
	if !any {
		return nil
	}
	pos, err := ar.TranslucentJoin(prev.IDs, cur.IDs)
	if err != nil {
		// Selections are order-preserving subsets by construction.
		return fmt.Errorf("plan: selection broke candidate order: %w", err)
	}
	for _, jr := range joins {
		if jr == skip || jr.pos == nil {
			continue
		}
		keep := bat.OIDPool.GetN(len(pos))
		at := jr.pos
		pp.For(len(pos), func(mlo, mhi int) {
			for i := mlo; i < mhi; i++ {
				keep[i] = at[pos[i]]
			}
		})
		bat.OIDPool.Put(at)
		jr.pos = keep
	}
	mem.Ints.Put(pos)
	return nil
}

// remapJoinPos compacts earlier joins' position lists with an index keep
// list (device-side mask), aligning them with the filtered candidates.
func remapJoinPos(pp par.P, joins []*arJoinRT, keep []int) {
	for _, jr := range joins {
		if jr.pos == nil {
			continue
		}
		kept := bat.OIDPool.GetN(len(keep))
		at := jr.pos
		pp.For(len(keep), func(mlo, mhi int) {
			for i := mlo; i < mhi; i++ {
				kept[i] = at[keep[i]]
			}
		})
		bat.OIDPool.Put(at)
		jr.pos = kept
	}
}

// approxAnswer derives the phase-A bounds: candidate-count interval and
// per-aggregate sum/min/max bounds from approximate projections over the
// base segment, plus the exact contributions of qualifying delta rows
// (the delta is host resident and undecomposed, so its values carry no
// approximation error).
func approxAnswer(m *device.Meter, q Query, cands *ar.Candidates, projections map[ColRef]*ar.Projection, delta *deltaSet) ApproxAnswer {
	out := ApproxAnswer{Count: ar.CountApprox(m, cands)}
	var dctx *exprCtx
	if delta != nil {
		out.Count.Lo += int64(delta.n)
		out.Count.Hi += int64(delta.n)
		dctx = &exprCtx{n: delta.n, vals: delta.vals}
	}
	bctx := &boundsCtx{n: cands.Len(), vals: map[ColRef][]ar.Interval{}}
	for ref, p := range projections {
		ivs := make([]ar.Interval, p.Len())
		err := p.Col.Dec.Err()
		for i := range ivs {
			lo := p.ApproxLow(i)
			ivs[i] = ar.Interval{Lo: lo, Hi: lo + err}
		}
		bctx.vals[ref] = ivs
	}
	for _, a := range q.Aggs {
		switch a.Func {
		case Count:
			out.Aggs = append(out.Aggs, out.Count)
		case Sum, Avg:
			ivs := a.Expr.Bounds(bctx)
			var total ar.Interval
			for i, iv := range ivs {
				if !cands.Certain(i) {
					// A false positive contributes nothing.
					if iv.Lo > 0 {
						iv.Lo = 0
					}
					if iv.Hi < 0 {
						iv.Hi = 0
					}
				}
				total.Lo += iv.Lo
				total.Hi += iv.Hi
			}
			if dctx != nil {
				for _, v := range a.Expr.Eval(dctx) {
					total.Lo += v
					total.Hi += v
				}
			}
			if a.Func == Avg {
				cnt := out.Count
				if cnt.Lo > 0 {
					total = ar.Interval{Lo: total.Lo / cnt.Hi, Hi: total.Hi / cnt.Lo}
				}
			}
			out.Aggs = append(out.Aggs, total)
		case Min, Max:
			ivs := a.Expr.Bounds(bctx)
			if dctx != nil {
				for _, v := range a.Expr.Eval(dctx) {
					ivs = append(ivs, ar.Exact(v))
				}
			}
			var total ar.Interval
			for i, iv := range ivs {
				if i == 0 {
					total = iv
					continue
				}
				if a.Func == Min {
					if iv.Lo < total.Lo {
						total.Lo = iv.Lo
					}
					if iv.Hi < total.Hi {
						total.Hi = iv.Hi
					}
				} else {
					if iv.Hi > total.Hi {
						total.Hi = iv.Hi
					}
					if iv.Lo > total.Lo {
						total.Lo = iv.Lo
					}
				}
			}
			out.Aggs = append(out.Aggs, total)
		}
	}
	return out
}
