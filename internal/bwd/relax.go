package bwd

import (
	"fmt"

	"repro/internal/bitpack"
)

// CmpOp enumerates the comparison operators whose predicates the paper's
// approximate selection relaxes (§IV-B).
type CmpOp int

// Comparison operators.
const (
	Eq CmpOp = iota // == x
	Gt              // >  x
	Ge              // >= x
	Lt              // <  x
	Le              // <= x
)

func (op CmpOp) String() string {
	switch op {
	case Eq:
		return "=="
	case Gt:
		return ">"
	case Ge:
		return ">="
	case Lt:
		return "<"
	case Le:
		return "<="
	default:
		return fmt.Sprintf("CmpOp(%d)", int(op))
	}
}

// Appr is the paper's appr(x): the value with its resBits minor bits
// zeroed, i.e. x bitmasked with the bitwise complement of (1<<resbits)-1.
func Appr(x int64, resBits uint) int64 {
	return x &^ int64((uint64(1)<<resBits)-1)
}

// F is the paper's predicate-relaxation function f(x) (§IV-B), verbatim:
//
//	f(x) = appr(x)                      if op is '== x'
//	f(x) = appr(x) - 1                  if op is '>  x'
//	f(x) = appr(x)                      if op is '>= x'
//	f(x) = appr(x) + (1<<resbits) + 1   if op is '<  x'
//	f(x) = appr(x) + (1<<resbits)       if op is '<= x'
//
// Scanning the zeroed-minor-bits data with the same operator against f(x)
// yields a superset of the precise result (the false positives live in the
// boundary buckets and are eliminated by the refinement).
func F(x int64, op CmpOp, resBits uint) int64 {
	a := Appr(x, resBits)
	switch op {
	case Eq:
		return a
	case Gt:
		return a - 1
	case Ge:
		return a
	case Lt:
		return a + int64(uint64(1)<<resBits) + 1
	case Le:
		return a + int64(uint64(1)<<resBits)
	default:
		panic(fmt.Sprintf("bwd: unknown CmpOp %d", int(op)))
	}
}

// ApproxRange is a closed interval [Lo, Hi] of approximation codes in the
// shifted domain, plus emptiness/totality flags. It is the compiled form
// of a relaxed predicate: a GPU kernel admits a tuple iff its approximation
// code falls inside the interval.
type ApproxRange struct {
	Lo, Hi uint64
	Empty  bool // no approximation can match
	Full   bool // every approximation matches; the scan can be skipped
}

// Contains reports whether an approximation code satisfies the relaxed
// predicate.
func (r ApproxRange) Contains(code uint64) bool {
	if r.Empty {
		return false
	}
	if r.Full {
		return true
	}
	return code >= r.Lo && code <= r.Hi
}

// Relax relaxes the closed value-domain predicate lo <= v <= hi into the
// approximation domain (§IV-B). The result admits every tuple whose exact
// value satisfies the predicate (superset property); tuples in the two
// boundary buckets may be false positives.
//
// One-sided predicates are expressed with the int64 extremes; since integer
// predicates are closed under <-to-<= rewriting (v < x  ≡  v <= x-1), Relax
// together with that rewrite covers the paper's full f(x) table.
func (c *Column) Relax(lo, hi int64) ApproxRange {
	if lo > hi {
		return ApproxRange{Empty: true}
	}
	maxVal := c.Dec.Base + int64(bitpack.Mask(c.Dec.TotalBits))
	if hi < c.Dec.Base || lo > maxVal {
		return ApproxRange{Empty: true}
	}
	var r ApproxRange
	if lo <= c.Dec.Base {
		r.Lo = 0
	} else {
		r.Lo = uint64(lo-c.Dec.Base) >> c.Dec.ResBits
	}
	if hi >= maxVal {
		r.Hi = c.Dec.MaxApprox()
	} else {
		r.Hi = uint64(hi-c.Dec.Base) >> c.Dec.ResBits
	}
	// Full only when the VALUE predicate covers the whole domain, not
	// merely the code range: with lo inside bucket 0 (or hi inside the top
	// bucket) the boundary buckets still hold potential false positives,
	// and consumers treat Full as "no boundary uncertainty" (Certain, the
	// skipped scan) — marking such a range Full would overstate the
	// phase-A lower bounds.
	if lo <= c.Dec.Base && hi >= maxVal {
		r.Full = true
	}
	return r
}

// RelaxOp relaxes a single-operator predicate `v op x` into the
// approximation domain, mirroring the paper's f(x) row by row.
func (c *Column) RelaxOp(op CmpOp, x int64) ApproxRange {
	const (
		minInt = -int64(^uint64(0)>>1) - 1
		maxInt = int64(^uint64(0) >> 1)
	)
	switch op {
	case Eq:
		return c.Relax(x, x)
	case Gt:
		if x == maxInt {
			return ApproxRange{Empty: true}
		}
		return c.Relax(x+1, maxInt)
	case Ge:
		return c.Relax(x, maxInt)
	case Lt:
		if x == minInt {
			return ApproxRange{Empty: true}
		}
		return c.Relax(minInt, x-1)
	case Le:
		return c.Relax(minInt, x)
	default:
		panic(fmt.Sprintf("bwd: unknown CmpOp %d", int(op)))
	}
}
