package bwd

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bat"
	"repro/internal/device"
)

func mustDecompose(t *testing.T, vals []int64, approxBits uint) *Column {
	t.Helper()
	c, err := Decompose(bat.NewDense(vals, bat.Width32), approxBits, nil)
	if err != nil {
		t.Fatalf("Decompose: %v", err)
	}
	return c
}

func TestDecomposePaperExample(t *testing.T) {
	// Fig 2 of the paper: 747979 decomposed into 13 major and 7 minor bits
	// (of its 20 significant bits).
	vals := []int64{747979, 0, 1 << 19}
	c := mustDecompose(t, vals, 13)
	if c.Dec.TotalBits != 20 {
		t.Fatalf("TotalBits = %d, want 20", c.Dec.TotalBits)
	}
	if c.Dec.ApproxBits != 13 || c.Dec.ResBits != 7 {
		t.Fatalf("split = %d/%d, want 13/7", c.Dec.ApproxBits, c.Dec.ResBits)
	}
	for i, want := range vals {
		if got := c.Reconstruct(i); got != want {
			t.Errorf("Reconstruct(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestDecomposeReconstructRoundTrip(t *testing.T) {
	f := func(raw []int32, bits uint8) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]int64, len(raw))
		for i, v := range raw {
			vals[i] = int64(v)
		}
		approxBits := uint(bits%63) + 1
		c, err := Decompose(bat.NewDense(vals, bat.Width32), approxBits, nil)
		if err != nil {
			return false
		}
		for i, want := range vals {
			if c.Reconstruct(i) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestApproxErrorBound(t *testing.T) {
	f := func(raw []int32, bits uint8) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]int64, len(raw))
		for i, v := range raw {
			vals[i] = int64(v)
		}
		approxBits := uint(bits%20) + 1
		c, err := Decompose(bat.NewDense(vals, bat.Width32), approxBits, nil)
		if err != nil {
			return false
		}
		for i, v := range vals {
			lo := c.ApproxLow(i)
			if v < lo || v > lo+c.Dec.Err() {
				return false // true value escaped the error bound
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDecomposeNegativeValues(t *testing.T) {
	vals := []int64{-1262427, 2964975, 0, -5}
	c := mustDecompose(t, vals, 24)
	if c.Dec.Base != -1262427 {
		t.Errorf("Base = %d, want -1262427", c.Dec.Base)
	}
	for i, want := range vals {
		if got := c.Reconstruct(i); got != want {
			t.Errorf("Reconstruct(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestDecomposeFullyGPUResident(t *testing.T) {
	// 6-bit range with 24 requested bits: everything lands on the GPU,
	// like l_quantity in §VI-D1.
	vals := make([]int64, 100)
	for i := range vals {
		vals[i] = int64(i%50) + 1
	}
	c := mustDecompose(t, vals, 24)
	if c.Dec.ResBits != 0 {
		t.Errorf("ResBits = %d, want 0 (fully GPU resident)", c.Dec.ResBits)
	}
	if c.Dec.Err() != 0 {
		t.Errorf("Err = %d, want 0", c.Dec.Err())
	}
	if c.CPUBytes() != 0 {
		t.Errorf("CPUBytes = %d, want 0", c.CPUBytes())
	}
}

func TestDecomposeConstantColumn(t *testing.T) {
	c := mustDecompose(t, []int64{42, 42, 42}, 8)
	for i := 0; i < 3; i++ {
		if c.Reconstruct(i) != 42 {
			t.Errorf("Reconstruct(%d) = %d, want 42", i, c.Reconstruct(i))
		}
	}
}

func TestDecomposeErrors(t *testing.T) {
	if _, err := Decompose(bat.NewDense(nil, bat.Width32), 8, nil); err == nil {
		t.Error("empty column did not error")
	}
	b := bat.NewDense([]int64{1}, bat.Width32)
	if _, err := Decompose(b, 0, nil); err == nil {
		t.Error("approxBits 0 did not error")
	}
	if _, err := Decompose(b, 64, nil); err == nil {
		t.Error("approxBits 64 did not error")
	}
}

func TestDecomposeDeviceAccounting(t *testing.T) {
	sys := device.PaperSystem()
	vals := make([]int64, 1000)
	for i := range vals {
		vals[i] = int64(i)
	}
	c, err := Decompose(bat.NewDense(vals, bat.Width32), 6, sys)
	if err != nil {
		t.Fatalf("Decompose: %v", err)
	}
	if sys.GPU.Used() != c.GPUBytes() {
		t.Errorf("GPU used = %d, want %d", sys.GPU.Used(), c.GPUBytes())
	}
	if sys.CPU.Used() != c.CPUBytes() {
		t.Errorf("CPU used = %d, want %d", sys.CPU.Used(), c.CPUBytes())
	}
	c.Release()
	if sys.GPU.Used() != 0 || sys.CPU.Used() != 0 {
		t.Error("Release did not return device memory")
	}
}

func TestDecomposeGPUOutOfMemory(t *testing.T) {
	sys := device.PaperSystem()
	sys.GPU.Capacity = 16 // pathological tiny device
	vals := make([]int64, 1000)
	for i := range vals {
		vals[i] = int64(i)
	}
	_, err := Decompose(bat.NewDense(vals, bat.Width32), 10, sys)
	if !errors.Is(err, device.ErrOutOfMemory) {
		t.Errorf("err = %v, want ErrOutOfMemory", err)
	}
	if sys.GPU.Used() != 0 {
		t.Error("failed decomposition leaked GPU memory")
	}
}

func TestCompressionRatioSpatialStyle(t *testing.T) {
	// Wide-range 32-bit data: prefix compression saves roughly the leading
	// byte, the ~25 % the paper reports for the spatial set (§VI-C2).
	rng := rand.New(rand.NewSource(7))
	vals := make([]int64, 10000)
	for i := range vals {
		vals[i] = int64(rng.Intn(4227402)) - 1262427 // lon range, 1e-5 fixed point
	}
	c := mustDecompose(t, vals, 24)
	ratio := c.CompressionRatio()
	if ratio < 0.20 || ratio > 0.40 {
		t.Errorf("compression ratio = %.2f, want ~0.25-0.30", ratio)
	}
}

func TestValueToApprox(t *testing.T) {
	vals := []int64{100, 200, 300}
	c := mustDecompose(t, vals, 4) // span 200 -> 8 total bits -> 4/4 split
	if c.Dec.ResBits != 4 {
		t.Fatalf("ResBits = %d, want 4", c.Dec.ResBits)
	}
	if code, ok := c.ValueToApprox(100); !ok || code != 0 {
		t.Errorf("ValueToApprox(100) = %d,%v, want 0,true", code, ok)
	}
	if _, ok := c.ValueToApprox(99); ok {
		t.Error("value below base reported ok")
	}
	if _, ok := c.ValueToApprox(1000); ok {
		t.Error("value above range reported ok")
	}
}

func TestReconstructFrom(t *testing.T) {
	c := mustDecompose(t, []int64{0, 1023}, 5) // 10 bits total, 5/5
	for i, want := range []int64{0, 1023} {
		a := c.Approx.Get(i)
		r := c.Residual.Get(i)
		if got := c.ReconstructFrom(a, r); got != want {
			t.Errorf("ReconstructFrom(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestDecompositionString(t *testing.T) {
	c := mustDecompose(t, []int64{0, 1023}, 5)
	if c.Dec.String() == "" {
		t.Error("empty Decomposition.String()")
	}
}

func TestChooseBits(t *testing.T) {
	vals := make([]int64, 1000)
	for i := range vals {
		vals[i] = int64(i) // 10 total bits
	}
	b := bat.NewDense(vals, bat.Width32)
	// Plenty of budget: full resolution.
	if got := ChooseBits(b, 1<<20); got != 10 {
		t.Errorf("ChooseBits(ample) = %d, want 10", got)
	}
	// Half the footprint: fewer bits.
	full := (int64(1000)*10 + 63) / 64 * 8
	got := ChooseBits(b, full/2)
	if got == 0 || got >= 10 {
		t.Errorf("ChooseBits(half) = %d, want within (0,10)", got)
	}
	// The chosen width must actually fit.
	need := (int64(1000)*int64(got) + 63) / 64 * 8
	if need > full/2 {
		t.Errorf("chosen width %d needs %d bytes > budget %d", got, need, full/2)
	}
	// No budget at all.
	if got := ChooseBits(b, 0); got != 0 {
		t.Errorf("ChooseBits(0) = %d, want 0", got)
	}
	if got := ChooseBits(bat.NewDense(nil, bat.Width32), 100); got != 0 {
		t.Errorf("ChooseBits(empty) = %d, want 0", got)
	}
	// Constant column still reports one bit.
	c := bat.NewDense([]int64{5, 5, 5}, bat.Width32)
	if got := ChooseBits(c, 1<<10); got != 1 {
		t.Errorf("ChooseBits(constant) = %d, want 1", got)
	}
}
