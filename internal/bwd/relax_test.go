package bwd

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bat"
)

func TestApprZeroesMinorBits(t *testing.T) {
	if got := Appr(0x12345678, 8); got != 0x12345600 {
		t.Errorf("Appr = %#x, want 0x12345600", got)
	}
	if got := Appr(0x12345678, 0); got != 0x12345678 {
		t.Errorf("Appr with 0 resBits = %#x, want identity", got)
	}
}

// TestPaperFTableSupersetProperty verifies the paper's f(x) table verbatim:
// evaluating `appr(v) op f(x)` admits every v with `v op x` — the superset
// guarantee of §IV-B — for all five operators.
func TestPaperFTableSupersetProperty(t *testing.T) {
	holds := func(v int64, op CmpOp, x int64) bool {
		switch op {
		case Eq:
			return v == x
		case Gt:
			return v > x
		case Ge:
			return v >= x
		case Lt:
			return v < x
		case Le:
			return v <= x
		}
		return false
	}
	approxHolds := func(av int64, op CmpOp, fx int64) bool {
		switch op {
		case Eq:
			return av == fx
		case Gt:
			return av > fx
		case Ge:
			return av >= fx
		case Lt:
			return av < fx
		case Le:
			return av <= fx
		}
		return false
	}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20000; trial++ {
		resBits := uint(rng.Intn(12))
		v := int64(rng.Intn(1 << 16))
		x := int64(rng.Intn(1 << 16))
		op := CmpOp(rng.Intn(5))
		if holds(v, op, x) && !approxHolds(Appr(v, resBits), op, F(x, op, resBits)) {
			t.Fatalf("superset violated: v=%d op=%v x=%d resBits=%d appr(v)=%d f(x)=%d",
				v, op, x, resBits, Appr(v, resBits), F(x, op, resBits))
		}
	}
}

func TestRelaxSupersetProperty(t *testing.T) {
	f := func(raw []int32, bits uint8, rawLo, rawHi int32) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]int64, len(raw))
		for i, v := range raw {
			vals[i] = int64(v % 10000)
		}
		c, err := Decompose(bat.NewDense(vals, bat.Width32), uint(bits%16)+1, nil)
		if err != nil {
			return false
		}
		lo, hi := int64(rawLo%12000), int64(rawHi%12000)
		if lo > hi {
			lo, hi = hi, lo
		}
		r := c.Relax(lo, hi)
		for i, v := range vals {
			if v >= lo && v <= hi && !r.Contains(c.Approx.Get(i)) {
				return false // false negative: superset property broken
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRelaxFalsePositivesOnlyInBoundaryBuckets(t *testing.T) {
	vals := make([]int64, 1024)
	for i := range vals {
		vals[i] = int64(i)
	}
	c := mustDecompose(t, vals, 6) // 10 total bits -> 6/4: bucket size 16
	lo, hi := int64(100), int64(199)
	r := c.Relax(lo, hi)
	bucket := int64(16)
	for i, v := range vals {
		in := r.Contains(c.Approx.Get(i))
		exact := v >= lo && v <= hi
		if exact && !in {
			t.Fatalf("false negative at v=%d", v)
		}
		if in && !exact {
			// False positives may only live in the buckets containing the
			// bounds.
			if v/bucket != lo/bucket && v/bucket != hi/bucket {
				t.Fatalf("false positive v=%d outside boundary buckets", v)
			}
		}
	}
}

func TestRelaxEmptyAndFull(t *testing.T) {
	vals := []int64{100, 200, 300}
	c := mustDecompose(t, vals, 4)
	if r := c.Relax(400, 500); !r.Empty {
		t.Error("range above max not Empty")
	}
	if r := c.Relax(0, 50); !r.Empty {
		t.Error("range below base not Empty")
	}
	if r := c.Relax(50, 400); !r.Full {
		t.Error("covering range not Full")
	}
	if r := c.Relax(10, 5); !r.Empty {
		t.Error("inverted range not Empty")
	}
	full := c.Relax(0, 1000)
	if !full.Contains(0) || !full.Contains(c.Dec.MaxApprox()) {
		t.Error("Full range must contain every code")
	}
	empty := c.Relax(1000, 2000)
	if empty.Contains(0) {
		t.Error("Empty range contains a code")
	}
}

func TestRelaxOpMatchesRelax(t *testing.T) {
	vals := make([]int64, 256)
	for i := range vals {
		vals[i] = int64(i)
	}
	c := mustDecompose(t, vals, 5)
	for _, x := range []int64{-1, 0, 17, 128, 255, 300} {
		for _, op := range []CmpOp{Eq, Gt, Ge, Lt, Le} {
			r := c.RelaxOp(op, x)
			for i, v := range vals {
				exact := false
				switch op {
				case Eq:
					exact = v == x
				case Gt:
					exact = v > x
				case Ge:
					exact = v >= x
				case Lt:
					exact = v < x
				case Le:
					exact = v <= x
				}
				if exact && !r.Contains(c.Approx.Get(i)) {
					t.Fatalf("RelaxOp(%v, %d): false negative at v=%d", op, x, v)
				}
			}
		}
	}
}

func TestRelaxOpExtremes(t *testing.T) {
	const (
		minInt = -int64(^uint64(0)>>1) - 1
		maxInt = int64(^uint64(0) >> 1)
	)
	c := mustDecompose(t, []int64{1, 2, 3}, 2)
	if r := c.RelaxOp(Gt, maxInt); !r.Empty {
		t.Error("v > maxInt should be Empty")
	}
	if r := c.RelaxOp(Lt, minInt); !r.Empty {
		t.Error("v < minInt should be Empty")
	}
	if r := c.RelaxOp(Ge, minInt); !(r.Full || r.Contains(0)) {
		t.Error("v >= minInt should admit everything")
	}
}

func TestCmpOpString(t *testing.T) {
	for _, op := range []CmpOp{Eq, Gt, Ge, Lt, Le, CmpOp(99)} {
		if op.String() == "" {
			t.Errorf("empty String for %d", int(op))
		}
	}
}
