// Package bwd implements Bitwise Decomposition/Distribution (BWD), the
// storage model underlying the Approximate & Refine processing paradigm
// (§II-A of the paper, and Pirk et al., DaMoN 2012).
//
// A column's values are vertically partitioned at the granularity of
// individual bits. The partition holding the major bits — the
// *approximation* — is bit-packed and placed in the fast device memory
// (the simulated GPU); the minor bits — the *residual* — stay in CPU
// memory. Leading zeros are removed by a global prefix compression that
// factors out the common value base (the column minimum), which subsumes
// the paper's "factor out the highest value byte" scheme (§VI-C2).
//
// The approximation of value v with r residual bits is
//
//	approx(v) = (v - base) >> r        (bit-packed, GPU resident)
//	res(v)    = (v - base) & (2^r - 1) (bit-packed, CPU resident)
//	v         = base + (approx(v) << r | res(v))
//
// so an approximation understates the true value by at most 2^r - 1: the
// exact error bound that approximate operators propagate and refinement
// operators discharge.
package bwd

import (
	"fmt"
	"math/bits"

	"repro/internal/bat"
	"repro/internal/bitpack"
	"repro/internal/device"
	"repro/internal/mem"
)

// Decomposition describes how a column's bits are split across devices.
type Decomposition struct {
	Base       int64 // prefix-compression base (column minimum)
	TotalBits  uint  // bits needed to represent (max - Base)
	ApproxBits uint  // major bits, device (GPU) resident
	ResBits    uint  // minor bits, host (CPU) resident
	Width      int   // original physical bytes per value (for data-volume comparisons)
}

// Err returns the maximum amount by which an approximation understates the
// true value: 2^ResBits - 1.
func (d Decomposition) Err() int64 {
	return int64(bitpack.Mask(d.ResBits))
}

// MaxApprox returns the largest possible approximation code.
func (d Decomposition) MaxApprox() uint64 {
	return bitpack.Mask(d.ApproxBits)
}

func (d Decomposition) String() string {
	return fmt.Sprintf("bwd(%d bit GPU, %d bit CPU, base %d)", d.ApproxBits, d.ResBits, d.Base)
}

// Column is a bitwise decomposed column: a GPU-resident approximation and a
// CPU-resident residual, positionally aligned with the source column.
type Column struct {
	Dec      Decomposition
	Approx   *bitpack.Array // approximation codes, shifted domain
	Residual *bitpack.Array // residual bits

	n         int
	hist      []int64 // rows per code bucket; bucket of code c is c >> histShift
	histShift uint
	gpuAlloc  *device.Alloc
	cpuAlloc  *device.Alloc
}

// histMaxBits caps the bucket-occupancy histogram at 2^histMaxBits buckets.
// The approximation codes already partition the value domain into equi-width
// cells, so the histogram is just occupancy counts over (possibly coalesced)
// code ranges — the statistics provider reads it through BucketCounts.
const histMaxBits = 8

// histShiftFor returns how many code bits to drop per histogram bucket so
// the bucket count stays within 2^histMaxBits.
func histShiftFor(approxBits uint) uint {
	if approxBits > histMaxBits {
		return approxBits - histMaxBits
	}
	return 0
}

// Decompose bitwise-decomposes the tail of b, placing approxBits major bits
// on the system's GPU and the rest on the CPU, mirroring the paper's
// `select bwdecompose(A, approxBits) from R`. If the value range needs
// fewer than approxBits bits, the whole column becomes GPU resident
// (ResBits = 0) — exactly what happens to the narrow TPC-H columns in
// §VI-D1. The GPU allocation fails with device.ErrOutOfMemory if the
// approximation does not fit, surfacing the capacity/resolution trade-off.
func Decompose(b *bat.BAT, approxBits uint, sys *device.System) (*Column, error) {
	if b.Len() == 0 {
		return nil, fmt.Errorf("bwd: cannot decompose empty column")
	}
	if approxBits == 0 || approxBits > 63 {
		return nil, fmt.Errorf("bwd: approxBits %d out of range [1,63]", approxBits)
	}
	lo, hi := b.MinMax()
	span := uint64(hi - lo)
	total := uint(bits.Len64(span))
	dec := Decomposition{Base: lo, TotalBits: total, Width: b.Width()}
	if approxBits >= total {
		dec.ApproxBits = total
		dec.ResBits = 0
	} else {
		dec.ApproxBits = approxBits
		dec.ResBits = total - approxBits
	}
	if dec.ApproxBits == 0 {
		// Constant column: keep one bit so the approximation exists as an
		// addressable array.
		dec.ApproxBits = 1
	}

	n := b.Len()
	hshift := histShiftFor(dec.ApproxBits)
	hist := make([]int64, (dec.MaxApprox()>>hshift)+1)
	tails := b.Tails()
	// Split the values into code planes through arena scratch, then let
	// bitpack.Pack build whole words with its shift-carry accumulator — one
	// store per output word instead of a read-modify-write per value.
	codes := mem.U64.GetN(n)
	rcodes := mem.U64.GetN(n)
	rmask := bitpack.Mask(dec.ResBits)
	for i, v := range tails {
		shifted := uint64(v - dec.Base)
		code := shifted >> dec.ResBits
		codes[i] = code
		rcodes[i] = shifted & rmask
		hist[code>>hshift]++
	}
	approx := bitpack.Pack(dec.ApproxBits, codes)
	res := bitpack.Pack(dec.ResBits, rcodes)
	mem.U64.Put(codes)
	mem.U64.Put(rcodes)

	c := &Column{Dec: dec, Approx: approx, Residual: res, n: n, hist: hist, histShift: hshift}
	if sys != nil {
		ga, err := sys.GPU.Alloc(approx.Bytes())
		if err != nil {
			return nil, fmt.Errorf("bwd: approximation does not fit device: %w", err)
		}
		ca, err := sys.CPU.Alloc(res.Bytes())
		if err != nil {
			ga.Free()
			return nil, fmt.Errorf("bwd: residual does not fit host: %w", err)
		}
		c.gpuAlloc, c.cpuAlloc = ga, ca
	}
	return c, nil
}

// Restore reconstructs a decomposed column from persisted parts — the
// decomposition parameters and the bit-packed approximation and residual
// planes — re-acquiring the device allocations Decompose would have made.
// It is the segment-load path of the durability subsystem: the planes were
// serialized verbatim, so no value is re-decomposed at boot.
func Restore(dec Decomposition, approx, res *bitpack.Array, sys *device.System) (*Column, error) {
	if approx == nil || res == nil {
		return nil, fmt.Errorf("bwd: restore: nil plane")
	}
	if res.Len() != approx.Len() {
		return nil, fmt.Errorf("bwd: restore: approximation has %d values, residual %d", approx.Len(), res.Len())
	}
	if approx.Width() != dec.ApproxBits || res.Width() != dec.ResBits {
		return nil, fmt.Errorf("bwd: restore: plane widths %d/%d do not match decomposition %d/%d",
			approx.Width(), res.Width(), dec.ApproxBits, dec.ResBits)
	}
	c := &Column{Dec: dec, Approx: approx, Residual: res, n: approx.Len()}
	// The histogram is not persisted: recompute it with one word-parallel
	// pass over the restored approximation plane (block decode through
	// morsel scratch) so statistics survive reboot unchanged.
	c.histShift = histShiftFor(dec.ApproxBits)
	c.hist = make([]int64, (dec.MaxApprox()>>c.histShift)+1)
	s := mem.GetScratch()
	const blk = 64 << 10
	for lo := 0; lo < c.n; lo += blk {
		hi := lo + blk
		if hi > c.n {
			hi = c.n
		}
		s.Reset()
		for _, code := range approx.UnpackRange(s.U64(hi - lo)[:0], lo, hi) {
			c.hist[code>>c.histShift]++
		}
	}
	mem.PutScratch(s)
	if sys != nil {
		ga, err := sys.GPU.Alloc(approx.Bytes())
		if err != nil {
			return nil, fmt.Errorf("bwd: approximation does not fit device: %w", err)
		}
		ca, err := sys.CPU.Alloc(res.Bytes())
		if err != nil {
			ga.Free()
			return nil, fmt.Errorf("bwd: residual does not fit host: %w", err)
		}
		c.gpuAlloc, c.cpuAlloc = ga, ca
	}
	return c, nil
}

// Len returns the number of tuples in the column.
func (c *Column) Len() int { return c.n }

// BucketCounts returns the bucket-occupancy histogram maintained at
// decompose time: entry b counts the rows whose approximation code lies in
// [b << BucketShift, (b+1) << BucketShift). The slice is owned by the
// column and must not be mutated.
func (c *Column) BucketCounts() []int64 { return c.hist }

// BucketShift returns how many code bits each histogram bucket coalesces:
// a bucket spans 1 << BucketShift approximation codes.
func (c *Column) BucketShift() uint { return c.histShift }

// Release frees the simulated device allocations.
func (c *Column) Release() {
	c.gpuAlloc.Free()
	c.cpuAlloc.Free()
}

// GPUBytes returns the device-resident footprint (the approximation).
func (c *Column) GPUBytes() int64 { return c.Approx.Bytes() }

// CPUBytes returns the host-resident footprint (the residual).
func (c *Column) CPUBytes() int64 { return c.Residual.Bytes() }

// OriginalBytes returns the undecomposed column footprint.
func (c *Column) OriginalBytes() int64 { return int64(c.n) * int64(c.Dec.Width) }

// CompressionRatio returns 1 - (decomposed / original) — the cumulative
// data-volume reduction the paper reports for the spatial data set (~25 %,
// §VI-C2).
func (c *Column) CompressionRatio() float64 {
	return 1 - float64(c.GPUBytes()+c.CPUBytes())/float64(c.OriginalBytes())
}

// Reconstruct returns the exact value at position i by bitwise
// concatenation of approximation and residual (the +bw of Algorithm 2).
func (c *Column) Reconstruct(i int) int64 {
	shifted := c.Approx.Get(i) << c.Dec.ResBits
	if c.Dec.ResBits > 0 {
		shifted |= c.Residual.Get(i)
	}
	return c.Dec.Base + int64(shifted)
}

// ReconstructFrom combines an approximation code and a residual code into
// the exact value.
func (c *Column) ReconstructFrom(approx, residual uint64) int64 {
	return c.Dec.Base + int64(approx<<c.Dec.ResBits|residual)
}

// ApproxLow returns the smallest value consistent with the approximation
// code at position i. The true value lies in [ApproxLow, ApproxLow+Err].
func (c *Column) ApproxLow(i int) int64 {
	return c.Dec.Base + int64(c.Approx.Get(i)<<c.Dec.ResBits)
}

// ValueToApprox maps a value into the approximation (shifted) domain,
// clamping to the representable range. ok is false when the value lies
// outside [Base, Base + 2^TotalBits).
func (c *Column) ValueToApprox(v int64) (code uint64, ok bool) {
	if v < c.Dec.Base {
		return 0, false
	}
	shifted := uint64(v - c.Dec.Base)
	code = shifted >> c.Dec.ResBits
	if code > c.Dec.MaxApprox() {
		return c.Dec.MaxApprox(), false
	}
	return code, true
}

// ChooseBits returns the largest device-resident bit width whose
// bit-packed approximation of b fits within budgetBytes, or 0 if not even
// a 1-bit approximation fits. This implements the automatic-decomposition
// direction the paper sketches as future work (§VII-B, "Storage
// Optimization"): given a device-memory budget, pick the resolution.
func ChooseBits(b *bat.BAT, budgetBytes int64) uint {
	if b.Len() == 0 || budgetBytes <= 0 {
		return 0
	}
	lo, hi := b.MinMax()
	total := uint(bits.Len64(uint64(hi - lo)))
	if total == 0 {
		total = 1
	}
	for w := total; w >= 1; w-- {
		need := (int64(b.Len())*int64(w) + 63) / 64 * 8
		if need <= budgetBytes {
			return w
		}
	}
	return 0
}
