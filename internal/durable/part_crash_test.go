package durable

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/device"
	"repro/internal/plan"
	"repro/internal/shard"
)

// TestPropPartitionedCrashCuts extends the crash-recovery property test to
// partitioned tables: a hash-partitioned table runs wrapper DML while every
// partition merges concurrently, then the WAL is hard-cut at random byte
// offsets. Each cut must recover every partition to exactly its own
// checkpoint horizon plus the committed WAL suffix (computed by an oracle
// routing the same rows), re-create the wrapper spec from its create
// record, and answer queries byte-identically in classic and A&R mode. The
// name carries "Prop" so CI's focused -race job covers the concurrent
// merges.
func TestPropPartitionedCrashCuts(t *testing.T) {
	for _, seed := range []int64{3, 11} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) { partCrashCuts(t, seed) })
	}
}

func partCrashCuts(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	dir := t.TempDir()
	cat := plan.NewCatalog(device.PaperSystem())
	s := openStore(t, dir, cat, SyncAlways)
	spec := shard.Spec{Kind: shard.Hash, Col: "k", N: 3}
	if _, err := cat.CreatePartitionedTable("pt", kvDefs, spec); err != nil {
		t.Fatal(err)
	}

	// Phase 1: wrapper DML and fan-out merges, a decomposition of both
	// columns, then a checkpoint of every partition — each partition's
	// state persists in its own segment file at its own horizon.
	ctr := new(int64)
	var phase1 []crashOp
	for i := 0; i < 40; i++ {
		op := randOp(rng, "pt", ctr)
		op.apply(t, cat)
		phase1 = append(phase1, op)
		if rng.Intn(8) == 0 {
			if _, err := cat.MergeTable(nil, "pt", false); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, col := range []string{"k", "v"} {
		if _, err := cat.Decompose("pt", col, 6); err != nil {
			t.Fatal(err)
		}
	}
	p, ok := cat.Partitioned("pt")
	if !ok {
		t.Fatal("pt is not partitioned")
	}
	for i := range p.Parts {
		if _, err := s.Checkpoint(nil, shard.PartName("pt", i), false); err != nil {
			t.Fatal(err)
		}
	}
	// After checkpointing every partition only the wrapper's create record
	// remains in the WAL (it carries no horizon and survives rewrites).
	if st := s.Stats(); st.WALRecords != 1 {
		t.Fatalf("WAL holds %d records after checkpointing every partition, want 1 (the wrapper create)", st.WALRecords)
	}

	// Phase 2: wrapper inserts/deletes while every partition merges
	// concurrently — the WAL tail interleaves per-partition records while
	// the merge path races the append+apply path. No checkpoints.
	phase2 := make([]crashOp, 0, 25)
	for i := 0; i < 25; i++ {
		phase2 = append(phase2, randOp(rng, "pt", ctr))
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, op := range phase2 {
			op.apply(t, cat)
		}
	}()
	for i := range p.Parts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 6; j++ {
				if _, err := cat.MergeTable(nil, shard.PartName("pt", i), false); err != nil {
					t.Error(err)
				}
			}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Snapshot the on-disk state and decode the final WAL's frame layout.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	walBytes, err := os.ReadFile(WALPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	type frame struct {
		rec Record
		end int64
	}
	var frames []frame
	{
		probe := filepath.Join(t.TempDir(), "probe.log")
		if err := os.WriteFile(probe, walBytes, 0o644); err != nil {
			t.Fatal(err)
		}
		w, _, err := openWAL(probe, SyncOff, 0, nil, 0, func(rec Record, end int64) error {
			frames = append(frames, frame{rec, end})
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		w.Close()
	}
	if len(frames) == 0 || frames[0].rec.Type != recCreatePart {
		t.Fatalf("WAL does not start with the wrapper create record (frames: %d)", len(frames))
	}

	// Hard-cut the WAL at the torn edges of a mid-tail frame plus random
	// offsets. Cuts never land before the create record's end: it was
	// fsynced long before the crash window, so a shorter prefix is
	// corruption, not a torn tail.
	floor := frames[0].end
	cuts := []int64{floor, int64(len(walBytes))}
	if len(frames) > 2 {
		mid := frames[1+len(frames)/2]
		cuts = append(cuts, mid.end-1, mid.end)
	}
	for i := 0; i < 6; i++ {
		cuts = append(cuts, floor+rng.Int63n(int64(len(walBytes))-floor+1))
	}
	for _, cut := range cuts {
		cutDir := t.TempDir()
		for _, e := range entries {
			if e.IsDir() {
				continue
			}
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if e.Name() == filepath.Base(WALPath(dir)) {
				data = data[:cut]
			}
			if err := os.WriteFile(filepath.Join(cutDir, e.Name()), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}

		// Oracle: the same wrapper routing phase 1 in full, then the
		// committed phase-2 records applied to their partitions directly.
		oracle := plan.NewCatalog(device.PaperSystem())
		if _, err := oracle.CreatePartitionedTable("pt", kvDefs, spec); err != nil {
			t.Fatal(err)
		}
		for _, op := range phase1 {
			op.apply(t, oracle)
		}
		committed := 0
		for _, f := range frames {
			if f.end > cut {
				break
			}
			committed++
			if f.rec.Type == recCreatePart {
				continue
			}
			op := crashOp{table: f.rec.Table, rows: f.rec.Rows}
			if f.rec.Type == recDelete {
				op.rows = nil
				for _, pr := range f.rec.Preds {
					op.preds = append(op.preds, plan.Filter{Col: pr.Col, Lo: pr.Lo, Hi: pr.Hi})
				}
			}
			op.apply(t, oracle)
		}

		recovered := plan.NewCatalog(device.PaperSystem())
		rs, err := Open(cutDir, recovered, Config{Policy: SyncAlways})
		if err != nil {
			t.Fatalf("cut at %d: open: %v", cut, err)
		}
		if int(rs.Recovery().Replayed) != committed {
			t.Fatalf("cut at %d: replayed %d records, want %d", cut, rs.Recovery().Replayed, committed)
		}
		rp, ok := recovered.Partitioned("pt")
		if !ok {
			t.Fatalf("cut at %d: wrapper not recovered", cut)
		}
		if rp.Spec != spec {
			t.Fatalf("cut at %d: recovered spec %v, want %v", cut, rp.Spec, spec)
		}
		// Every partition recovered to its checkpoint horizon plus the
		// committed suffix, independently.
		for i := range rp.Parts {
			pn := shard.PartName("pt", i)
			want := tableRows(t, oracle, pn)
			got := tableRows(t, recovered, pn)
			if !sameRows(want, got) {
				t.Fatalf("cut at %d: %s recovered %d rows, oracle has %d (content mismatch)", cut, pn, len(got), len(want))
			}
		}
		// The recovered table answers scatter-gather queries identically in
		// both modes (decompositions survived in the segment files).
		q := plan.Query{
			Table:   "pt",
			Filters: []plan.Filter{{Col: "v", Lo: 0, Hi: plan.NoHi}},
			GroupBy: nil,
			Aggs: []plan.AggSpec{
				{Name: "n", Func: plan.Count},
				{Name: "s", Func: plan.Sum, Expr: plan.Col("k")},
			},
		}
		ar, err := recovered.ExecAR(q, plan.ExecOpts{})
		if err != nil {
			t.Fatalf("cut at %d: AR: %v", cut, err)
		}
		cl, err := recovered.ExecClassic(q, plan.ExecOpts{})
		if err != nil {
			t.Fatalf("cut at %d: classic: %v", cut, err)
		}
		if !plan.EqualResults(ar.Rows, cl.Rows) {
			t.Fatalf("cut at %d: A&R %v != classic %v", cut, ar.Rows, cl.Rows)
		}
		rs.Close()
	}
}
