package durable

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/store"
)

// Record kinds. A WAL frame carries exactly one logical write: the DML
// statements (INSERT, DELETE, CREATE TABLE) plus the store DDL that shapes
// recovery (bwdecompose, FK index builds, drops). Merges are deliberately
// NOT logged — a merge changes the physical base/delta split but never the
// logical row content, so replaying the unmerged history from the last
// checkpoint reconstructs an equivalent state.
const (
	recCreate     byte = 1 // CREATE TABLE: schema definition
	recInsert     byte = 2 // INSERT: row-major values in schema order
	recDelete     byte = 3 // DELETE: conjunction of closed ranges
	recDecompose  byte = 4 // bwdecompose(col, bits)
	recFKIndex    byte = 5 // FK (primary-key) index build
	recDrop       byte = 6 // DROP TABLE
	recCreatePart byte = 7 // CREATE TABLE ... PARTITION BY: schema + spec
)

// Record is one decoded WAL entry. Which fields are meaningful depends on
// Type; Table is always set.
type Record struct {
	LSN   uint64
	Type  byte
	Table string

	Defs  []store.ColumnDef // recCreate, recCreatePart
	Rows  [][]int64         // recInsert (schema order)
	Preds []store.Range     // recDelete (conjunction; empty = all rows)
	Col   string            // recDecompose, recFKIndex, recCreatePart (partition column)
	Bits  uint              // recDecompose

	PartKind byte // recCreatePart: shard.Kind
	PartN    int  // recCreatePart: partition count
}

func (r Record) kindString() string {
	switch r.Type {
	case recCreate:
		return "create"
	case recInsert:
		return "insert"
	case recDelete:
		return "delete"
	case recDecompose:
		return "decompose"
	case recFKIndex:
		return "fkindex"
	case recDrop:
		return "drop"
	case recCreatePart:
		return "createpart"
	default:
		return fmt.Sprintf("type(%d)", r.Type)
	}
}

// Payload limits. Decoding validates counts against the remaining payload
// before allocating, so a corrupt or adversarial length prefix cannot ask
// for unbounded memory (the FuzzWALDecode target exercises exactly this).
const (
	maxNameLen = 1 << 10
	maxPayload = 1 << 30
)

func appendString(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

func takeString(b []byte) (string, []byte, error) {
	if len(b) < 2 {
		return "", nil, fmt.Errorf("durable: truncated string length")
	}
	n := int(binary.LittleEndian.Uint16(b))
	b = b[2:]
	if n > maxNameLen {
		return "", nil, fmt.Errorf("durable: string length %d exceeds limit", n)
	}
	if len(b) < n {
		return "", nil, fmt.Errorf("durable: truncated string body")
	}
	return string(b[:n]), b[n:], nil
}

// encodeRecord serializes a record payload (the CRC-covered frame body):
// LSN, type, table name, then the type-specific fields, all little-endian.
func encodeRecord(r Record) ([]byte, error) {
	if len(r.Table) == 0 || len(r.Table) > maxNameLen {
		return nil, fmt.Errorf("durable: table name length %d out of range", len(r.Table))
	}
	b := make([]byte, 0, 64)
	b = binary.LittleEndian.AppendUint64(b, r.LSN)
	b = append(b, r.Type)
	b = appendString(b, r.Table)
	switch r.Type {
	case recCreate, recCreatePart:
		if len(r.Defs) > math.MaxUint16 {
			return nil, fmt.Errorf("durable: %d column definitions exceed frame limit", len(r.Defs))
		}
		b = binary.LittleEndian.AppendUint16(b, uint16(len(r.Defs)))
		for _, d := range r.Defs {
			b = appendString(b, d.Name)
			b = binary.LittleEndian.AppendUint64(b, uint64(d.Scale))
			b = append(b, byte(d.Width))
		}
		if r.Type == recCreatePart {
			if r.PartN < 1 || r.PartN > math.MaxUint16 {
				return nil, fmt.Errorf("durable: partition count %d out of range", r.PartN)
			}
			b = appendString(b, r.Col)
			b = append(b, r.PartKind)
			b = binary.LittleEndian.AppendUint16(b, uint16(r.PartN))
		}
	case recInsert:
		stride := 0
		if len(r.Rows) > 0 {
			stride = len(r.Rows[0])
		}
		if stride > math.MaxUint16 {
			return nil, fmt.Errorf("durable: row stride %d exceeds frame limit", stride)
		}
		b = binary.LittleEndian.AppendUint32(b, uint32(len(r.Rows)))
		b = binary.LittleEndian.AppendUint16(b, uint16(stride))
		for _, row := range r.Rows {
			if len(row) != stride {
				return nil, fmt.Errorf("durable: ragged insert rows (%d values, stride %d)", len(row), stride)
			}
			for _, v := range row {
				b = binary.LittleEndian.AppendUint64(b, uint64(v))
			}
		}
	case recDelete:
		if len(r.Preds) > math.MaxUint16 {
			return nil, fmt.Errorf("durable: %d predicates exceed frame limit", len(r.Preds))
		}
		b = binary.LittleEndian.AppendUint16(b, uint16(len(r.Preds)))
		for _, p := range r.Preds {
			b = appendString(b, p.Col)
			b = binary.LittleEndian.AppendUint64(b, uint64(p.Lo))
			b = binary.LittleEndian.AppendUint64(b, uint64(p.Hi))
		}
	case recDecompose:
		b = appendString(b, r.Col)
		b = append(b, byte(r.Bits))
	case recFKIndex:
		b = appendString(b, r.Col)
	case recDrop:
		// table name only
	default:
		return nil, fmt.Errorf("durable: unknown record type %d", r.Type)
	}
	return b, nil
}

// DecodeRecord parses one frame payload. It never panics on malformed
// input and never allocates more than the payload itself can describe.
func DecodeRecord(b []byte) (Record, error) {
	var r Record
	if len(b) > maxPayload {
		return r, fmt.Errorf("durable: payload %d bytes exceeds limit", len(b))
	}
	if len(b) < 9 {
		return r, fmt.Errorf("durable: truncated record header")
	}
	r.LSN = binary.LittleEndian.Uint64(b)
	r.Type = b[8]
	b = b[9:]
	var err error
	if r.Table, b, err = takeString(b); err != nil {
		return r, err
	}
	if r.Table == "" {
		return r, fmt.Errorf("durable: empty table name")
	}
	switch r.Type {
	case recCreate, recCreatePart:
		if len(b) < 2 {
			return r, fmt.Errorf("durable: truncated column count")
		}
		n := int(binary.LittleEndian.Uint16(b))
		b = b[2:]
		r.Defs = make([]store.ColumnDef, 0, min(n, 256))
		for i := 0; i < n; i++ {
			var d store.ColumnDef
			if d.Name, b, err = takeString(b); err != nil {
				return r, err
			}
			if len(b) < 9 {
				return r, fmt.Errorf("durable: truncated column definition")
			}
			d.Scale = int64(binary.LittleEndian.Uint64(b))
			d.Width = int(b[8])
			b = b[9:]
			r.Defs = append(r.Defs, d)
		}
		if r.Type == recCreatePart {
			if r.Col, b, err = takeString(b); err != nil {
				return r, err
			}
			if len(b) < 3 {
				return r, fmt.Errorf("durable: truncated partition spec")
			}
			r.PartKind = b[0]
			r.PartN = int(binary.LittleEndian.Uint16(b[1:]))
			b = b[3:]
			if r.PartN < 1 {
				return r, fmt.Errorf("durable: partition count %d out of range", r.PartN)
			}
		}
	case recInsert:
		if len(b) < 6 {
			return r, fmt.Errorf("durable: truncated insert header")
		}
		n := int(binary.LittleEndian.Uint32(b))
		stride := int(binary.LittleEndian.Uint16(b[4:]))
		b = b[6:]
		need := n * stride * 8
		if (stride == 0) != (n == 0) {
			return r, fmt.Errorf("durable: insert shape %d rows x %d columns", n, stride)
		}
		if need != len(b) {
			return r, fmt.Errorf("durable: insert body %d bytes, %d rows x %d columns need %d", len(b), n, stride, need)
		}
		vals := make([]int64, n*stride)
		for i := range vals {
			vals[i] = int64(binary.LittleEndian.Uint64(b[i*8:]))
		}
		r.Rows = make([][]int64, n)
		for i := range r.Rows {
			r.Rows[i] = vals[i*stride : (i+1)*stride]
		}
		b = b[need:]
	case recDelete:
		if len(b) < 2 {
			return r, fmt.Errorf("durable: truncated predicate count")
		}
		n := int(binary.LittleEndian.Uint16(b))
		b = b[2:]
		r.Preds = make([]store.Range, 0, min(n, 256))
		for i := 0; i < n; i++ {
			var p store.Range
			if p.Col, b, err = takeString(b); err != nil {
				return r, err
			}
			if len(b) < 16 {
				return r, fmt.Errorf("durable: truncated predicate bounds")
			}
			p.Lo = int64(binary.LittleEndian.Uint64(b))
			p.Hi = int64(binary.LittleEndian.Uint64(b[8:]))
			b = b[16:]
			r.Preds = append(r.Preds, p)
		}
	case recDecompose:
		if r.Col, b, err = takeString(b); err != nil {
			return r, err
		}
		if len(b) < 1 {
			return r, fmt.Errorf("durable: truncated decompose bits")
		}
		r.Bits = uint(b[0])
		b = b[1:]
	case recFKIndex:
		if r.Col, b, err = takeString(b); err != nil {
			return r, err
		}
	case recDrop:
		// table name only
	default:
		return r, fmt.Errorf("durable: unknown record type %d", r.Type)
	}
	if len(b) != 0 {
		return r, fmt.Errorf("durable: %d trailing bytes after %s record", len(b), r.kindString())
	}
	return r, nil
}
