package durable

import (
	"os"
	"testing"

	"repro/internal/device"
	"repro/internal/plan"
	"repro/internal/store"
)

func openStore(t *testing.T, dir string, cat *plan.Catalog, policy Policy) *Store {
	t.Helper()
	s, err := Open(dir, cat, Config{Policy: policy})
	if err != nil {
		t.Fatal(err)
	}
	cat.SetDurability(s)
	return s
}

// tableRows reads a table's live logical content in row order: base rows
// (minus deletions) then delta rows (minus deletions).
func tableRows(t *testing.T, cat *plan.Catalog, name string) [][]int64 {
	t.Helper()
	tbl, err := cat.Table(name)
	if err != nil {
		t.Fatal(err)
	}
	snap := tbl.Snapshot()
	schema := tbl.Schema()
	cols := make([][]int64, len(schema))
	for i, def := range schema {
		c, err := snap.Column(def.Name)
		if err != nil {
			t.Fatal(err)
		}
		cols[i] = c.Tails()
	}
	var out [][]int64
	for i := 0; i < snap.BaseLen(); i++ {
		if snap.BaseDeleted(i) {
			continue
		}
		row := make([]int64, len(schema))
		for c := range schema {
			row[c] = cols[c][i]
		}
		out = append(out, row)
	}
	for j := 0; j < snap.DeltaLen(); j++ {
		if snap.DeltaDeleted(j) {
			continue
		}
		row := make([]int64, len(schema))
		for c := range schema {
			row[c] = snap.DeltaValue(j, c)
		}
		out = append(out, row)
	}
	return out
}

func sameRows(a, b [][]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

var kvDefs = []store.ColumnDef{{Name: "k", Scale: 1, Width: 4}, {Name: "v", Scale: 1, Width: 8}}

// TestStoreRecoverFromWALOnly kills the store before any checkpoint: the
// whole history must come back from the WAL tail alone.
func TestStoreRecoverFromWALOnly(t *testing.T) {
	dir := t.TempDir()
	cat := plan.NewCatalog(device.PaperSystem())
	s := openStore(t, dir, cat, SyncAlways)
	if _, err := cat.CreateTable("kv", kvDefs); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.InsertRows(nil, "kv", [][]int64{{1, 10}, {2, 20}, {3, 30}}); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.DeleteRows(nil, "kv", []plan.Filter{{Col: "k", Lo: 2, Hi: 2}}); err != nil {
		t.Fatal(err)
	}
	want := tableRows(t, cat, "kv")
	// Simulate a crash: close the WAL file without checkpointing.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	cat2 := plan.NewCatalog(device.PaperSystem())
	s2 := openStore(t, dir, cat2, SyncAlways)
	defer s2.Close()
	rs := s2.Recovery()
	if rs.Replayed != 3 || rs.TablesFromSegments != 0 {
		t.Fatalf("recovery = %+v, want 3 replayed records and no segments", rs)
	}
	if got := tableRows(t, cat2, "kv"); !sameRows(want, got) {
		t.Fatalf("recovered rows %v, want %v", got, want)
	}
}

// TestStoreCheckpointAndRecover covers the full lifecycle: checkpoint
// persists the merged base, drops the covered WAL prefix, and recovery
// loads the segment plus the post-checkpoint tail.
func TestStoreCheckpointAndRecover(t *testing.T) {
	dir := t.TempDir()
	cat := plan.NewCatalog(device.PaperSystem())
	s := openStore(t, dir, cat, SyncAlways)
	if _, err := cat.CreateTable("kv", kvDefs); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := cat.InsertRows(nil, "kv", [][]int64{{int64(i), int64(i * 100)}}); err != nil {
			t.Fatal(err)
		}
	}
	st, err := s.Checkpoint(nil, "kv", false)
	if err != nil {
		t.Fatal(err)
	}
	if st.Clean || st.LSN != 11 { // create + 10 inserts
		t.Fatalf("checkpoint = %+v, want dirty at lsn 11", st)
	}
	walAfterCkpt := s.WALSize()
	// Post-checkpoint tail: two more inserts and a delete.
	if _, err := cat.InsertRows(nil, "kv", [][]int64{{100, 1}, {101, 2}}); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.DeleteRows(nil, "kv", []plan.Filter{{Col: "k", Lo: 0, Hi: 4}}); err != nil {
		t.Fatal(err)
	}
	want := tableRows(t, cat, "kv")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	cat2 := plan.NewCatalog(device.PaperSystem())
	s2 := openStore(t, dir, cat2, SyncAlways)
	defer s2.Close()
	rs := s2.Recovery()
	if rs.TablesFromSegments != 1 {
		t.Fatalf("recovery = %+v, want 1 table from its segment", rs)
	}
	if rs.Replayed != 2 || rs.Skipped != 0 {
		t.Fatalf("recovery = %+v, want exactly the 2-record tail replayed (prefix dropped from the WAL)", rs)
	}
	if got := tableRows(t, cat2, "kv"); !sameRows(want, got) {
		t.Fatalf("recovered rows %v, want %v", got, want)
	}
	// The recovered table must keep accepting durable writes.
	if _, err := cat2.InsertRows(nil, "kv", [][]int64{{200, 5}}); err != nil {
		t.Fatal(err)
	}
	if s2.WALSize() <= walAfterCkpt {
		t.Fatal("post-recovery insert did not append to the WAL")
	}
}

// TestStoreCheckpointTruncatesWAL: after checkpointing every table the WAL
// must be empty, and a clean reopen must replay zero records.
func TestStoreCheckpointTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	cat := plan.NewCatalog(device.PaperSystem())
	s := openStore(t, dir, cat, SyncAlways)
	for _, name := range []string{"a", "b"} {
		if _, err := cat.CreateTable(name, kvDefs); err != nil {
			t.Fatal(err)
		}
		if _, err := cat.InsertRows(nil, name, [][]int64{{1, 1}, {2, 2}}); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range []string{"a", "b"} {
		if _, err := s.Checkpoint(nil, name, false); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.WALRecords != 0 {
		t.Fatalf("WAL holds %d records after checkpointing every table", st.WALRecords)
	}
	if s.Dirty("a") || s.Dirty("b") {
		t.Fatal("tables dirty immediately after checkpoint")
	}
	// A second checkpoint of an untouched table must be a no-op.
	st, err := s.Checkpoint(nil, "a", false)
	if err != nil || !st.Clean {
		t.Fatalf("checkpoint of clean table = %+v, %v; want clean", st, err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	cat2 := plan.NewCatalog(device.PaperSystem())
	s2 := openStore(t, dir, cat2, SyncAlways)
	defer s2.Close()
	if rs := s2.Recovery(); rs.Replayed != 0 || rs.TablesFromSegments != 2 {
		t.Fatalf("clean reopen recovery = %+v, want 0 replayed, 2 segments", rs)
	}
}

// TestStoreLSNMonotonicAcrossReopen: after a checkpoint empties the WAL,
// the highest assigned LSN survives only in the segment files — a reopen
// must seed the counter above every persisted horizon, or post-reopen
// writes get LSNs the next recovery skips as already covered (silently
// losing fsync-acknowledged records).
func TestStoreLSNMonotonicAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	cat := plan.NewCatalog(device.PaperSystem())
	s := openStore(t, dir, cat, SyncAlways)
	if _, err := cat.CreateTable("kv", kvDefs); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.InsertRows(nil, "kv", [][]int64{{1, 10}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Checkpoint(nil, "kv", false); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.WALRecords != 0 {
		t.Fatalf("WAL holds %d records after checkpoint", st.WALRecords)
	}
	ckptLSN := s.Stats().LastCheckpointLSN
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen over the emptied WAL, write, and crash (no checkpoint).
	cat2 := plan.NewCatalog(device.PaperSystem())
	s2 := openStore(t, dir, cat2, SyncAlways)
	if _, err := cat2.InsertRows(nil, "kv", [][]int64{{2, 20}}); err != nil {
		t.Fatal(err)
	}
	if got := s2.wal.lastAssigned(); got <= ckptLSN {
		t.Fatalf("post-reopen insert assigned lsn %d, at or below checkpoint horizon %d", got, ckptLSN)
	}
	want := tableRows(t, cat2, "kv")
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	// The next recovery must replay that insert, not skip it as covered.
	cat3 := plan.NewCatalog(device.PaperSystem())
	s3 := openStore(t, dir, cat3, SyncAlways)
	defer s3.Close()
	rs := s3.Recovery()
	if rs.Replayed != 1 || rs.Skipped != 0 {
		t.Fatalf("recovery = %+v, want the post-reopen insert replayed, not covered", rs)
	}
	if got := tableRows(t, cat3, "kv"); !sameRows(want, got) {
		t.Fatalf("recovered rows %v, want %v", got, want)
	}
}

// TestStoreDropReclaims: dropping a table must delete its segment files
// and let the next rewrite reclaim its WAL frames.
func TestStoreDropReclaims(t *testing.T) {
	dir := t.TempDir()
	cat := plan.NewCatalog(device.PaperSystem())
	s := openStore(t, dir, cat, SyncAlways)
	if _, err := cat.CreateTable("gone", kvDefs); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.InsertRows(nil, "gone", [][]int64{{1, 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Checkpoint(nil, "gone", false); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.CreateTable("keep", kvDefs); err != nil {
		t.Fatal(err)
	}
	if err := cat.DropTable("gone"); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs["gone"]) != 0 {
		t.Fatal("dropped table left segment files behind")
	}
	if _, err := s.Checkpoint(nil, "keep", false); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.WALRecords != 0 {
		t.Fatalf("WAL holds %d records; drop history not reclaimed", st.WALRecords)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	cat2 := plan.NewCatalog(device.PaperSystem())
	s2 := openStore(t, dir, cat2, SyncAlways)
	defer s2.Close()
	if _, err := cat2.Table("gone"); err == nil {
		t.Fatal("dropped table came back after recovery")
	}
	if _, err := cat2.Table("keep"); err != nil {
		t.Fatal("kept table lost after recovery")
	}
}

// TestStoreAdoptsPreloadedTables: tables bulk-loaded before durability
// attaches are persisted as segments on open, and a second open with a
// preloaded catalog collides loudly instead of silently shadowing.
func TestStoreAdoptsPreloadedTables(t *testing.T) {
	dir := t.TempDir()
	cat := plan.NewCatalog(device.PaperSystem())
	if _, err := cat.CreateTable("pre", kvDefs); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.InsertRows(nil, "pre", [][]int64{{7, 70}}); err != nil {
		t.Fatal(err)
	}
	s := openStore(t, dir, cat, SyncAlways)
	if rs := s.Recovery(); rs.Adopted != 1 {
		t.Fatalf("recovery = %+v, want 1 adopted table", rs)
	}
	want := tableRows(t, cat, "pre")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if !Exists(dir) {
		t.Fatal("Exists(dir) = false after adoption")
	}

	// Fresh catalog (no preload): the adopted table recovers.
	cat2 := plan.NewCatalog(device.PaperSystem())
	s2 := openStore(t, dir, cat2, SyncAlways)
	if got := tableRows(t, cat2, "pre"); !sameRows(want, got) {
		t.Fatalf("adopted table recovered as %v, want %v", got, want)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	// Preloading the same table over an existing data dir must error.
	cat3 := plan.NewCatalog(device.PaperSystem())
	if _, err := cat3.CreateTable("pre", kvDefs); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, cat3, Config{Policy: SyncAlways}); err == nil {
		t.Fatal("collision between preloaded catalog and data dir not reported")
	}
}

// TestStoreDecomposeAndFKRecover: decompositions and FK indexes are part
// of the durable state, whether they travel in a segment or in the WAL.
func TestStoreDecomposeAndFKRecover(t *testing.T) {
	dir := t.TempDir()
	cat := plan.NewCatalog(device.PaperSystem())
	s := openStore(t, dir, cat, SyncAlways)
	if _, err := cat.CreateTable("m", kvDefs); err != nil {
		t.Fatal(err)
	}
	rows := make([][]int64, 256)
	for i := range rows {
		rows[i] = []int64{int64(i), int64(i * 3)}
	}
	if _, err := cat.InsertRows(nil, "m", rows); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.Decompose("m", "v", 5); err != nil {
		t.Fatal(err)
	}
	if err := cat.BuildFKIndex("m", "k"); err != nil {
		t.Fatal(err)
	}
	// One copy checkpointed (travels in the segment), then decompose again
	// post-checkpoint (travels in the WAL).
	if _, err := s.Checkpoint(nil, "m", false); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.Decompose("m", "v", 7); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	cat2 := plan.NewCatalog(device.PaperSystem())
	s2 := openStore(t, dir, cat2, SyncAlways)
	defer s2.Close()
	d, err := cat2.Decomposition("m", "v")
	if err != nil {
		t.Fatal(err)
	}
	if d.Dec.ApproxBits != 7 {
		t.Fatalf("recovered decomposition has %d approx bits, want 7 (WAL tail lost?)", d.Dec.ApproxBits)
	}
	if _, err := cat2.FKIndex("m", "k"); err != nil {
		t.Fatal(err)
	}
}

// TestStoreSyncOffSurvivesCleanClose: with fsync off, a clean Close still
// lands everything (the data went through the OS on the buffered path).
func TestStoreSyncOffSurvivesCleanClose(t *testing.T) {
	dir := t.TempDir()
	cat := plan.NewCatalog(device.PaperSystem())
	s := openStore(t, dir, cat, SyncOff)
	if _, err := cat.CreateTable("kv", kvDefs); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.InsertRows(nil, "kv", [][]int64{{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	cat2 := plan.NewCatalog(device.PaperSystem())
	s2 := openStore(t, dir, cat2, SyncOff)
	defer s2.Close()
	if got := tableRows(t, cat2, "kv"); len(got) != 1 {
		t.Fatalf("recovered %d rows, want 1", len(got))
	}
}

// TestStoreStrayTempsRemoved: crash leftovers must not accumulate.
func TestStoreStrayTempsRemoved(t *testing.T) {
	dir := t.TempDir()
	stray := WALPath(dir) + ".tmp"
	if err := os.WriteFile(stray, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	cat := plan.NewCatalog(device.PaperSystem())
	s := openStore(t, dir, cat, SyncAlways)
	defer s.Close()
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Fatal("stray temp file survived Open")
	}
}
