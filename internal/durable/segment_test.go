package durable

import (
	"encoding/binary"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bat"
	"repro/internal/device"
	"repro/internal/store"
)

// testTable builds a store table with a dense key column (FK-indexed), a
// decomposed measure, and a plain column — one of each persistence shape.
func testTable(t *testing.T, sys *device.System, n int) *store.Table {
	t.Helper()
	ids := make([]int64, n)
	xs := make([]int64, n)
	ys := make([]int64, n)
	for i := 0; i < n; i++ {
		ids[i] = int64(i)
		xs[i] = int64((i * 37) % 1024)
		ys[i] = int64(i%100) - 50
	}
	defs := []store.ColumnDef{
		{Name: "id", Scale: 1, Width: 4},
		{Name: "x", Scale: 1, Width: 4},
		{Name: "y", Scale: 100, Width: 8},
	}
	cols := []*bat.BAT{
		bat.NewDense(ids, 4),
		bat.NewDense(xs, 4),
		bat.NewDense(ys, 8),
	}
	tbl, err := store.New("pts", defs, cols, sys)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Decompose(nil, "x", 6); err != nil {
		t.Fatal(err)
	}
	if err := tbl.BuildFKIndex("id"); err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestSegmentRoundtrip(t *testing.T) {
	sys := device.PaperSystem()
	tbl := testTable(t, sys, 500)
	data, err := encodeSegment(tbl, tbl.Snapshot(), 17)
	if err != nil {
		t.Fatal(err)
	}
	st, err := decodeSegment(data, sys)
	if err != nil {
		t.Fatal(err)
	}
	if st.lsn != 17 {
		t.Fatalf("decoded lsn %d, want 17", st.lsn)
	}
	restored, err := store.Restore("pts", st.schema, st.cols, st.decs, st.decBits, st.pkCols, sys)
	if err != nil {
		t.Fatal(err)
	}
	want, got := tbl.Snapshot(), restored.Snapshot()
	if got.BaseLen() != want.BaseLen() || got.DeltaLen() != 0 {
		t.Fatalf("restored %d base rows, want %d", got.BaseLen(), want.BaseLen())
	}
	for _, def := range tbl.Schema() {
		wc, _ := want.Column(def.Name)
		gc, err := got.Column(def.Name)
		if err != nil {
			t.Fatal(err)
		}
		if gc.Width() != wc.Width() {
			t.Fatalf("%s: width %d, want %d", def.Name, gc.Width(), wc.Width())
		}
		wt, gt := wc.Tails(), gc.Tails()
		for i := range wt {
			if wt[i] != gt[i] {
				t.Fatalf("%s[%d] = %d, want %d", def.Name, i, gt[i], wt[i])
			}
		}
	}
	wd, gd := want.Dec("x"), got.Dec("x")
	if gd == nil {
		t.Fatal("restored table lost the decomposition of x")
	}
	if wd.Dec != gd.Dec {
		t.Fatalf("decomposition params %+v, want %+v", gd.Dec, wd.Dec)
	}
	for i := 0; i < want.BaseLen(); i++ {
		if wv, gv := wd.Approx.Get(i), gd.Approx.Get(i); wv != gv {
			t.Fatalf("approx[%d] = %d, want %d", i, gv, wv)
		}
		if wv, gv := wd.Residual.Get(i), gd.Residual.Get(i); wv != gv {
			t.Fatalf("residual[%d] = %d, want %d", i, gv, wv)
		}
	}
	if got.FKIndex("id") == nil {
		t.Fatal("restored table lost the FK index on id")
	}
	scale, err := restored.ColumnScale("y")
	if err != nil || scale != 100 {
		t.Fatalf("restored scale of y = %d, %v; want 100", scale, err)
	}
}

// TestSegmentRejectsDelta: a snapshot with unmerged rows or deletions must
// not silently persist as a pure base.
func TestSegmentRejectsDelta(t *testing.T) {
	sys := device.PaperSystem()
	tbl := testTable(t, sys, 50)
	if _, err := tbl.Insert(nil, [][]int64{{50, 1, 2}}); err != nil {
		t.Fatal(err)
	}
	if _, err := encodeSegment(tbl, tbl.Snapshot(), 1); err == nil {
		t.Fatal("segment encoded over a non-empty delta")
	}
}

// TestSegmentCorruptionDetected flips bytes across the file and asserts
// decode never accepts the result (the body CRC covers everything).
func TestSegmentCorruptionDetected(t *testing.T) {
	sys := device.PaperSystem()
	tbl := testTable(t, sys, 100)
	data, err := encodeSegment(tbl, tbl.Snapshot(), 3)
	if err != nil {
		t.Fatal(err)
	}
	step := len(data)/64 + 1
	for off := 0; off < len(data); off += step {
		corrupt := append([]byte(nil), data...)
		corrupt[off] ^= 0x10
		if _, err := decodeSegment(corrupt, sys); err == nil {
			t.Fatalf("corruption at byte %d accepted", off)
		}
	}
	for cut := 0; cut < len(data); cut += step {
		if _, err := decodeSegment(data[:cut], sys); err == nil {
			t.Fatalf("truncation at byte %d accepted", cut)
		}
	}
}

// restamp recomputes the trailing CRC so a deliberate corruption reaches
// the structural checks behind it.
func restamp(data []byte) {
	binary.LittleEndian.PutUint32(data[len(data)-4:], crc32.Checksum(data[:len(data)-4], crcTable))
}

// TestSegmentRejectsAbsurdCounts: counts read from a CRC-valid file are
// still untrusted — a huge row or plane word count must surface as a
// decode error, not overflow the size checks and panic allocating.
func TestSegmentRejectsAbsurdCounts(t *testing.T) {
	sys := device.PaperSystem()
	tbl := testTable(t, sys, 16)
	data, err := encodeSegment(tbl, tbl.Snapshot(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// The row count sits after the magic (8), version (4) and LSN (8).
	for _, huge := range []uint64{1 << 61, math.MaxUint64} {
		corrupt := append([]byte(nil), data...)
		binary.LittleEndian.PutUint64(corrupt[20:], huge)
		restamp(corrupt)
		if _, err := decodeSegment(corrupt, sys); err == nil {
			t.Fatalf("row count %d accepted", huge)
		}
	}
	// Sweep a huge u64 across every offset (CRC restamped each time):
	// whatever field it lands on — plane word counts, widths, parameters —
	// decode must return, never panic.
	for off := len(segMagic); off+8 <= len(data)-4; off++ {
		corrupt := append([]byte(nil), data...)
		binary.LittleEndian.PutUint64(corrupt[off:], 1<<61)
		restamp(corrupt)
		decodeSegment(corrupt, sys)
	}
}

func TestSegmentFiles(t *testing.T) {
	dir := t.TempDir()
	sys := device.PaperSystem()
	tbl := testTable(t, sys, 64)
	data, err := encodeSegment(tbl, tbl.Snapshot(), 9)
	if err != nil {
		t.Fatal(err)
	}
	path, size, err := writeSegment(dir, "pts", data, 9, true)
	if err != nil {
		t.Fatal(err)
	}
	if size != int64(len(data)) {
		t.Fatalf("size %d, want %d", size, len(data))
	}
	table, lsn, ok := parseSegName(filepath.Base(path))
	if !ok || table != "pts" || lsn != 9 {
		t.Fatalf("parseSegName(%s) = %s, %d, %v", filepath.Base(path), table, lsn, ok)
	}
	// A stray temp file from a crashed write must not be listed.
	if err := os.WriteFile(filepath.Join(dir, segName("pts", 12)+".tmp"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs["pts"]) != 1 || segs["pts"][0].lsn != 9 {
		t.Fatalf("listSegments = %+v, want one pts segment at lsn 9", segs)
	}
	for _, bad := range []string{"pts.seg", "pts.12.seg", "noext", "pts..seg"} {
		if _, _, ok := parseSegName(bad); ok {
			t.Fatalf("parseSegName accepted %q", bad)
		}
	}
}
