package durable

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/device"
	"repro/internal/plan"
	"repro/internal/shard"
	"repro/internal/store"
)

// Config tunes a durable Store.
type Config struct {
	// Policy is the WAL fsync policy (default SyncAlways).
	Policy Policy
	// Interval is the fsync cadence under SyncInterval (default 10ms).
	Interval time.Duration
	// FsyncObserver, when set, receives the wall duration of every WAL
	// fsync — the engine wires it to the ar_wal_fsync_seconds histogram.
	FsyncObserver func(time.Duration)
}

// Exists reports whether dir already holds a durable state (a WAL or at
// least one segment file) — front-ends use it to skip preloading demo data
// when reopening a data directory.
func Exists(dir string) bool {
	if _, err := os.Stat(WALPath(dir)); err == nil {
		return true
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if _, _, ok := parseSegName(e.Name()); ok && !e.IsDir() {
			return true
		}
	}
	return false
}

// Store is the durability coordinator for one catalog: it owns the data
// directory, the WAL, and the per-table checkpoint bookkeeping, and it
// implements plan.Durability so every catalog write flows write-ahead
// through it. One Store serves one data directory; open it via Open.
type Store struct {
	dir string
	cat *plan.Catalog
	wal *wal

	mu       sync.Mutex
	locks    map[string]*sync.Mutex // per-table: serializes {append+apply} vs {merge+persist}
	applied  map[string]uint64      // highest WAL LSN applied to each table
	ckpt     map[string]uint64      // WAL horizon covered by each table's segment state
	dropped  map[string]uint64      // drop LSN of dropped tables: frames at or below it are garbage
	hasSeg   map[string]bool        // a segment file exists for the table
	segBytes map[string]int64
	partSeen map[string]bool // partitioned wrappers whose create record is in the WAL
	ckpts    int64

	recovery RecoveryStats
}

// RecoveryStats describes what one Open did to bring the catalog back.
type RecoveryStats struct {
	// TablesFromSegments is the number of tables restored from segment
	// files; InvalidSegments counts files that failed verification and
	// were ignored (an older valid segment, if any, is used instead).
	TablesFromSegments int
	InvalidSegments    int
	// Replayed is the number of WAL tail records applied into the catalog;
	// Skipped were already covered by a segment's checkpoint LSN; Failed
	// errored on apply deterministically (they failed identically when
	// first executed, so they are no-ops). Environmental apply failures —
	// device memory pressure at recovery time — fail Open instead of being
	// counted here, since those records succeeded when logged.
	Replayed int64
	Skipped  int64
	Failed   int64
	// TruncatedBytes is the torn WAL tail discarded after the last frame
	// with a valid length and checksum.
	TruncatedBytes int64
	// Adopted is the number of catalog tables (bulk-loaded before the
	// engine attached durability) persisted as initial segments.
	Adopted int
}

func (r RecoveryStats) String() string {
	return fmt.Sprintf("recovery: %d tables from segments (%d invalid ignored), replayed %d WAL records (%d covered, %d failed), %d torn bytes truncated, %d tables adopted",
		r.TablesFromSegments, r.InvalidSegments, r.Replayed, r.Skipped, r.Failed, r.TruncatedBytes, r.Adopted)
}

// Open mounts a data directory over a catalog: it loads the newest valid
// segment per table, replays the WAL tail (torn-tail truncated) into the
// catalog in LSN order, persists an initial segment for any catalog table
// the directory does not know (bulk loads that predate durability), and
// returns the coordinator ready to log new writes. The caller installs it
// with cat.SetDurability; Open itself applies records directly, so nothing
// is re-logged during recovery.
func Open(dir string, cat *plan.Catalog, cfg Config) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	removeStrayTemps(dir)
	s := &Store{
		dir:      dir,
		cat:      cat,
		locks:    make(map[string]*sync.Mutex),
		applied:  make(map[string]uint64),
		ckpt:     make(map[string]uint64),
		dropped:  make(map[string]uint64),
		hasSeg:   make(map[string]bool),
		segBytes: make(map[string]int64),
		partSeen: make(map[string]bool),
	}

	// Phase 1: newest valid segment per table.
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	for table, files := range segs {
		var restored bool
		for i := len(files) - 1; i >= 0 && !restored; i-- {
			data, err := os.ReadFile(files[i].path)
			if err != nil {
				s.recovery.InvalidSegments++
				continue
			}
			st, err := decodeSegment(data, cat.System())
			if err != nil {
				s.recovery.InvalidSegments++
				continue
			}
			t, err := store.Restore(table, st.schema, st.cols, st.decs, st.decBits, st.pkCols, cat.System())
			if err != nil {
				return nil, fmt.Errorf("durable: restoring %s: %w", table, err)
			}
			if err := cat.Register(t); err != nil {
				return nil, fmt.Errorf("durable: %s exists in both the catalog and %s — skip preloading when reopening a data dir: %w", table, dir, err)
			}
			s.applied[table] = st.lsn
			s.ckpt[table] = st.lsn
			s.hasSeg[table] = true
			s.segBytes[table] = int64(len(data))
			s.recovery.TablesFromSegments++
			restored = true
			// Reclaim superseded (older) files now that a newer one loaded.
			for j := 0; j < i; j++ {
				os.Remove(files[j].path)
			}
		}
	}

	// Phase 2: replay the WAL tail in LSN order. The loaded segments'
	// checkpoint LSNs floor the WAL's next-LSN counter: a checkpoint may
	// have emptied the log, and if the counter restarted below a persisted
	// horizon, new fsync-acknowledged records would be skipped as already
	// covered (rec.LSN <= ckpt) by the next recovery.
	var lsnFloor uint64
	for _, l := range s.ckpt {
		if l > lsnFloor {
			lsnFloor = l
		}
	}
	w, truncated, err := openWAL(WALPath(dir), cfg.Policy, cfg.Interval, cfg.FsyncObserver, lsnFloor, func(rec Record, _ int64) error {
		return s.replay(rec)
	})
	if err != nil {
		return nil, err
	}
	s.wal = w
	s.recovery.TruncatedBytes = truncated

	// Phase 3: adopt catalog tables the directory does not know — bulk
	// loads performed before durability attached. Their current state
	// becomes an initial segment at the present WAL horizon.
	for _, name := range cat.TableNames() {
		s.mu.Lock()
		_, known := s.ckpt[name]
		s.mu.Unlock()
		if known {
			continue
		}
		if _, err := s.Checkpoint(nil, name, false); err != nil {
			w.Close()
			return nil, fmt.Errorf("durable: adopting %s: %w", name, err)
		}
		s.recovery.Adopted++
	}
	// Partitioned wrappers are not store tables, so the loop above persists
	// their partitions but not the partition spec itself; a wrapper created
	// before durability attached needs its create record appended now or the
	// spec would be lost on the next recovery. Wrapper create records carry
	// no checkpoint horizon (every partition checkpoints on its own), so
	// they replay on every open and survive WAL rewrites by design.
	for _, name := range cat.PartitionedNames() {
		if s.partSeen[name] {
			continue
		}
		p, ok := cat.Partitioned(name)
		if !ok {
			continue
		}
		rec := Record{Type: recCreatePart, Table: name, Defs: p.Schema().Schema(),
			Col: p.Spec.Col, PartKind: byte(p.Spec.Kind), PartN: p.Spec.N}
		if err := s.wal.append(&rec); err != nil {
			w.Close()
			return nil, fmt.Errorf("durable: adopting partitioned %s: %w", name, err)
		}
		s.partSeen[name] = true
	}
	return s, nil
}

// replay applies one recovered WAL record to the catalog. Records at or
// below their table's checkpoint LSN are already reflected in the loaded
// segment and are skipped; deterministic apply errors (bad column,
// duplicate create) are counted, not fatal — such a record failed the same
// way when it was first logged. Environmental failures (simulated-device
// memory pressure) are different: the record succeeded when logged, so
// dropping it would silently lose durable state — recovery fails instead.
func (s *Store) replay(rec Record) error {
	if ckpt, ok := s.ckpt[rec.Table]; ok && rec.LSN <= ckpt {
		s.recovery.Skipped++
		return nil
	}
	var err error
	switch rec.Type {
	case recCreate:
		if _, terr := s.cat.Table(rec.Table); terr == nil {
			return fmt.Errorf("durable: %s exists in both the catalog and %s — skip preloading when reopening a data dir", rec.Table, s.dir)
		}
		_, err = s.cat.CreateTable(rec.Table, rec.Defs)
		if err == nil {
			s.ckpt[rec.Table] = rec.LSN - 1
		}
	case recInsert:
		_, err = s.cat.InsertRows(nil, rec.Table, rec.Rows)
	case recDelete:
		preds := make([]plan.Filter, len(rec.Preds))
		for i, p := range rec.Preds {
			preds[i] = plan.Filter{Col: p.Col, Lo: p.Lo, Hi: p.Hi}
		}
		_, err = s.cat.DeleteRows(nil, rec.Table, preds)
	case recDecompose:
		_, err = s.cat.DecomposeMetered(nil, rec.Table, rec.Col, rec.Bits)
	case recFKIndex:
		err = s.cat.BuildFKIndex(rec.Table, rec.Col)
	case recDrop:
		err = s.cat.DropTable(rec.Table)
		if err == nil {
			s.forget(rec.Table, rec.LSN)
			delete(s.partSeen, rec.Table)
		}
	case recCreatePart:
		s.partSeen[rec.Table] = true
		if _, ok := s.cat.Partitioned(rec.Table); ok {
			return fmt.Errorf("durable: %s exists in both the catalog and %s — skip preloading when reopening a data dir", rec.Table, s.dir)
		}
		spec := shard.Spec{Kind: shard.Kind(rec.PartKind), Col: rec.Col, N: rec.PartN}
		var fresh []int
		_, fresh, err = s.cat.AdoptPartitioned(rec.Table, rec.Defs, spec)
		if err == nil {
			// Partitions restored from their segment files keep their own
			// checkpoint horizons; partitions created empty replay their
			// history from the frames after this record.
			for _, i := range fresh {
				pn := shard.PartName(rec.Table, i)
				s.applied[pn] = rec.LSN
				s.ckpt[pn] = rec.LSN - 1
			}
		}
	default:
		err = fmt.Errorf("durable: unknown record type %d", rec.Type)
	}
	if err != nil {
		if errors.Is(err, device.ErrOutOfMemory) {
			return fmt.Errorf("durable: replaying lsn %d for %s needs resources that succeeded when logged: %w", rec.LSN, rec.Table, err)
		}
		s.recovery.Failed++
		return nil
	}
	if rec.Type != recDrop && rec.Type != recCreatePart {
		s.applied[rec.Table] = rec.LSN
	}
	s.recovery.Replayed++
	return nil
}

// forget drops a table's durable bookkeeping and segment files. dropLSN
// marks every earlier frame of the table as garbage, so the next WAL
// rewrite reclaims its history (create/insert/drop replays to a no-op
// anyway, but there is no reason to keep paying for it).
func (s *Store) forget(table string, dropLSN uint64) {
	s.mu.Lock()
	delete(s.applied, table)
	delete(s.ckpt, table)
	delete(s.hasSeg, table)
	delete(s.segBytes, table)
	s.dropped[table] = dropLSN
	s.mu.Unlock()
	if segs, err := listSegments(s.dir); err == nil {
		for _, f := range segs[table] {
			os.Remove(f.path)
		}
	}
}

// Recovery returns what Open did.
func (s *Store) Recovery() RecoveryStats { return s.recovery }

// Dir returns the data directory.
func (s *Store) Dir() string { return s.dir }

// tableMu returns the per-table coordination lock. It serializes a
// table's {WAL append + in-memory apply} pairs against its {merge +
// segment persist} checkpoints, which is what makes a checkpoint LSN
// exact: every record at or below it is in the merged base, every record
// above it is not.
func (s *Store) tableMu(table string) *sync.Mutex {
	s.mu.Lock()
	defer s.mu.Unlock()
	mu, ok := s.locks[table]
	if !ok {
		mu = &sync.Mutex{}
		s.locks[table] = mu
	}
	return mu
}

// noteApplied advances a table's applied LSN. Called with the table lock
// held, after the record was appended and applied (or failed to apply — a
// failed record is a deterministic no-op and its LSN is still covered).
func (s *Store) noteApplied(table string, lsn uint64) {
	s.mu.Lock()
	if lsn > s.applied[table] {
		s.applied[table] = lsn
	}
	s.mu.Unlock()
}

// --- plan.Durability: the write-ahead hooks ---

// LogInsert logs an INSERT and applies it (write-ahead; see package doc).
func (s *Store) LogInsert(table string, rows [][]int64, apply func() error) error {
	mu := s.tableMu(table)
	mu.Lock()
	defer mu.Unlock()
	rec := Record{Type: recInsert, Table: table, Rows: rows}
	if err := s.wal.append(&rec); err != nil {
		return err
	}
	err := apply()
	s.noteApplied(table, rec.LSN)
	return err
}

// LogDelete logs a DELETE and applies it.
func (s *Store) LogDelete(table string, preds []store.Range, apply func() error) error {
	mu := s.tableMu(table)
	mu.Lock()
	defer mu.Unlock()
	rec := Record{Type: recDelete, Table: table, Preds: preds}
	if err := s.wal.append(&rec); err != nil {
		return err
	}
	err := apply()
	s.noteApplied(table, rec.LSN)
	return err
}

// LogCreate logs a CREATE TABLE and applies it.
func (s *Store) LogCreate(name string, defs []store.ColumnDef, apply func() error) error {
	mu := s.tableMu(name)
	mu.Lock()
	defer mu.Unlock()
	rec := Record{Type: recCreate, Table: name, Defs: defs}
	if err := s.wal.append(&rec); err != nil {
		return err
	}
	err := apply()
	if err == nil {
		s.mu.Lock()
		s.applied[name] = rec.LSN
		// The new table's state trivially covers everything before its
		// create record; the record itself replays until a checkpoint.
		s.ckpt[name] = rec.LSN - 1
		delete(s.dropped, name)
		s.mu.Unlock()
	}
	return err
}

// LogCreatePartitioned logs a CREATE TABLE ... PARTITION BY and applies
// it. One record covers the wrapper and all its (empty) partitions; each
// partition then checkpoints and reclaims WAL frames on its own, while the
// wrapper record itself stays uncovered so every recovery re-creates the
// spec before replaying partition history.
func (s *Store) LogCreatePartitioned(name string, defs []store.ColumnDef, spec shard.Spec, apply func() error) error {
	mu := s.tableMu(name)
	mu.Lock()
	defer mu.Unlock()
	rec := Record{Type: recCreatePart, Table: name, Defs: defs,
		Col: spec.Col, PartKind: byte(spec.Kind), PartN: spec.N}
	if err := s.wal.append(&rec); err != nil {
		return err
	}
	err := apply()
	if err == nil {
		s.mu.Lock()
		s.partSeen[name] = true
		delete(s.dropped, name)
		for i := 0; i < spec.N; i++ {
			pn := shard.PartName(name, i)
			// A fresh partition is dirty (applied > ckpt) until its first
			// checkpoint persists an empty-base segment.
			s.applied[pn] = rec.LSN
			s.ckpt[pn] = rec.LSN - 1
			delete(s.dropped, pn)
		}
		s.mu.Unlock()
	}
	return err
}

// LogDecompose logs a bwdecompose and applies it.
func (s *Store) LogDecompose(table, col string, bits uint, apply func() error) error {
	mu := s.tableMu(table)
	mu.Lock()
	defer mu.Unlock()
	rec := Record{Type: recDecompose, Table: table, Col: col, Bits: bits}
	if err := s.wal.append(&rec); err != nil {
		return err
	}
	err := apply()
	s.noteApplied(table, rec.LSN)
	return err
}

// LogFKIndex logs an FK index build and applies it.
func (s *Store) LogFKIndex(table, col string, apply func() error) error {
	mu := s.tableMu(table)
	mu.Lock()
	defer mu.Unlock()
	rec := Record{Type: recFKIndex, Table: table, Col: col}
	if err := s.wal.append(&rec); err != nil {
		return err
	}
	err := apply()
	s.noteApplied(table, rec.LSN)
	return err
}

// LogDrop logs a DROP TABLE, applies it, and reclaims the table's durable
// state (segment files, bookkeeping).
func (s *Store) LogDrop(table string, apply func() error) error {
	mu := s.tableMu(table)
	mu.Lock()
	defer mu.Unlock()
	rec := Record{Type: recDrop, Table: table}
	if err := s.wal.append(&rec); err != nil {
		return err
	}
	if err := apply(); err != nil {
		s.noteApplied(table, rec.LSN)
		return err
	}
	s.forget(table, rec.LSN)
	s.mu.Lock()
	delete(s.partSeen, table)
	s.mu.Unlock()
	return nil
}

// LogLoad registers a bulk-loaded table and immediately persists it as a
// segment — bulk loads skip the WAL (logging millions of rows row-by-row
// would defeat the point of the immutable, page-friendly base format).
func (s *Store) LogLoad(t *store.Table, apply func() error) error {
	name := t.Name()
	mu := s.tableMu(name)
	mu.Lock()
	defer mu.Unlock()
	if err := apply(); err != nil {
		return err
	}
	return s.persistLocked(t, s.wal.lastAssigned())
}

// --- Checkpointing ---

// CheckpointStats describes one checkpoint.
type CheckpointStats struct {
	Table string
	// Clean reports that the table had nothing new since its last
	// checkpoint, so no work was done.
	Clean bool
	// LSN is the WAL horizon the persisted segment covers.
	LSN uint64
	// SegmentBytes is the size of the segment file written; WALBytes the
	// WAL size after the covered prefix was dropped.
	SegmentBytes int64
	WALBytes     int64
	// Merge is the compaction folded into the checkpoint.
	Merge store.MergeStats
}

// Checkpoint merges a table's delta and deletions into a fresh base
// segment (through the ordinary merge path, so incremental
// re-decomposition economics apply), persists the new base atomically with
// the WAL horizon it covers, then reclaims the obsolete bits: superseded
// segment files and every WAL frame now below a covering checkpoint. auto
// marks background-maintenance checkpoints for stats attribution.
func (s *Store) Checkpoint(m *device.Meter, table string, auto bool) (CheckpointStats, error) {
	mu := s.tableMu(table)
	mu.Lock()
	defer mu.Unlock()
	t, err := s.cat.Table(table)
	if err != nil {
		return CheckpointStats{}, err
	}
	s.mu.Lock()
	applied, known := s.applied[table]
	ckpt := s.ckpt[table]
	seg := s.hasSeg[table]
	segBytes := s.segBytes[table]
	s.mu.Unlock()
	snap := t.Snapshot()
	if known && seg && applied == ckpt && snap.DeltaLen() == 0 && snap.DeletedCount() == 0 {
		return CheckpointStats{Table: table, Clean: true, LSN: ckpt, SegmentBytes: segBytes, WALBytes: s.WALSize()}, nil
	}
	st, err := s.cat.MergeTable(m, table, auto)
	if err != nil {
		return CheckpointStats{}, err
	}
	lsn := applied
	if !known {
		// Never logged: the table's state covers the whole current WAL
		// horizon trivially (no records reference it).
		lsn = s.wal.lastAssigned()
	}
	if err := s.persistLocked(t, lsn); err != nil {
		return CheckpointStats{}, err
	}
	s.mu.Lock()
	out := CheckpointStats{Table: table, LSN: lsn, SegmentBytes: s.segBytes[table], Merge: st}
	s.mu.Unlock()
	if err := s.dropCoveredFrames(); err != nil {
		return out, err
	}
	out.WALBytes = s.WALSize()
	return out, nil
}

// persistLocked writes a table's pure-base snapshot as the segment at lsn,
// updates the bookkeeping, and removes superseded segment files. Caller
// holds the table lock.
func (s *Store) persistLocked(t *store.Table, lsn uint64) error {
	table := t.Name()
	data, err := encodeSegment(t, t.Snapshot(), lsn)
	if err != nil {
		return err
	}
	_, size, err := writeSegment(s.dir, table, data, lsn, true)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.ckpt[table] = lsn
	if lsn > s.applied[table] {
		s.applied[table] = lsn
	}
	s.hasSeg[table] = true
	s.segBytes[table] = size
	s.ckpts++
	s.mu.Unlock()
	if segs, err := listSegments(s.dir); err == nil {
		for _, f := range segs[table] {
			if f.lsn != lsn {
				os.Remove(f.path)
			}
		}
	}
	return nil
}

// dropCoveredFrames rewrites the WAL without the frames every checkpoint
// already covers — the proactive reclamation of replayed prefix bytes.
func (s *Store) dropCoveredFrames() error {
	s.mu.Lock()
	ckpt := make(map[string]uint64, len(s.ckpt))
	for k, v := range s.ckpt {
		ckpt[k] = v
	}
	dropped := make(map[string]uint64, len(s.dropped))
	for k, v := range s.dropped {
		dropped[k] = v
	}
	s.mu.Unlock()
	return s.wal.rewrite(func(rec Record) bool {
		if horizon, ok := ckpt[rec.Table]; ok && rec.LSN <= horizon {
			return true
		}
		horizon, ok := dropped[rec.Table]
		return ok && rec.LSN <= horizon
	})
}

// Dirty reports whether a table has state not yet covered by a segment —
// WAL records past its checkpoint LSN, unmerged delta rows, or no segment
// file at all.
func (s *Store) Dirty(table string) bool {
	t, err := s.cat.Table(table)
	if err != nil {
		return false
	}
	s.mu.Lock()
	applied := s.applied[table]
	ckpt, known := s.ckpt[table]
	seg := s.hasSeg[table]
	s.mu.Unlock()
	if !known || !seg || applied > ckpt {
		return true
	}
	snap := t.Snapshot()
	return snap.DeltaLen() > 0 || snap.DeletedCount() > 0
}

// Sync forces the WAL to stable storage (clean-shutdown path).
func (s *Store) Sync() error { return s.wal.Sync() }

// Close fsyncs and closes the WAL. It does not checkpoint; the engine's
// Close checkpoints every dirty table first so a clean shutdown leaves an
// empty replay tail.
func (s *Store) Close() error { return s.wal.Close() }

// WALSize returns the current WAL file size in bytes.
func (s *Store) WALSize() int64 {
	s.wal.mu.Lock()
	defer s.wal.mu.Unlock()
	return s.wal.size
}

// Stats is a point-in-time snapshot of the durability counters.
type Stats struct {
	Policy            Policy
	WALBytes          int64
	WALRecords        int64 // frames currently in the file
	Appends           int64 // frames appended since open
	Fsyncs            int64
	Checkpoints       int64
	LastCheckpointLSN uint64 // highest checkpoint LSN across tables
	Tables            int    // tables with durable bookkeeping
	SegmentBytes      int64  // total segment file footprint
}

func (st Stats) String() string {
	return fmt.Sprintf("durability: fsync %s, wal %d B (%d records, %d appends, %d fsyncs), %d checkpoints (last lsn %d), %d segment tables (%d B)",
		st.Policy, st.WALBytes, st.WALRecords, st.Appends, st.Fsyncs, st.Checkpoints, st.LastCheckpointLSN, st.Tables, st.SegmentBytes)
}

// Stats returns the current durability counters.
func (s *Store) Stats() Stats {
	s.wal.mu.Lock()
	out := Stats{
		Policy:     s.wal.policy,
		WALBytes:   s.wal.size,
		WALRecords: s.wal.records,
		Appends:    s.wal.appends,
		Fsyncs:     s.wal.fsyncs,
	}
	s.wal.mu.Unlock()
	s.mu.Lock()
	out.Checkpoints = s.ckpts
	out.Tables = len(s.ckpt)
	for table, has := range s.hasSeg {
		if !has {
			continue
		}
		out.SegmentBytes += s.segBytes[table]
		if l := s.ckpt[table]; l > out.LastCheckpointLSN {
			out.LastCheckpointLSN = l
		}
	}
	s.mu.Unlock()
	return out
}

// removeStrayTemps deletes temp files a crash may have left mid-write.
func removeStrayTemps(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".tmp") {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
}
