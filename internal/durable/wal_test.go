package durable

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/store"
)

func testRecords() []Record {
	return []Record{
		{Type: recCreate, Table: "kv", Defs: []store.ColumnDef{
			{Name: "k", Scale: 1, Width: 4}, {Name: "v", Scale: 100, Width: 8},
		}},
		{Type: recInsert, Table: "kv", Rows: [][]int64{{1, 100}, {2, -200}, {3, 300}}},
		{Type: recDelete, Table: "kv", Preds: []store.Range{{Col: "k", Lo: 2, Hi: 2}}},
		{Type: recDecompose, Table: "kv", Col: "v", Bits: 12},
		{Type: recFKIndex, Table: "kv", Col: "k"},
		{Type: recDrop, Table: "kv"},
	}
}

func sameRecord(a, b Record) bool {
	if a.LSN != b.LSN || a.Type != b.Type || a.Table != b.Table || a.Col != b.Col || a.Bits != b.Bits {
		return false
	}
	if len(a.Defs) != len(b.Defs) || len(a.Rows) != len(b.Rows) || len(a.Preds) != len(b.Preds) {
		return false
	}
	for i := range a.Defs {
		if a.Defs[i] != b.Defs[i] {
			return false
		}
	}
	for i := range a.Rows {
		if len(a.Rows[i]) != len(b.Rows[i]) {
			return false
		}
		for j := range a.Rows[i] {
			if a.Rows[i][j] != b.Rows[i][j] {
				return false
			}
		}
	}
	for i := range a.Preds {
		if a.Preds[i] != b.Preds[i] {
			return false
		}
	}
	return true
}

func TestRecordRoundtrip(t *testing.T) {
	for _, rec := range testRecords() {
		rec.LSN = 42
		payload, err := encodeRecord(rec)
		if err != nil {
			t.Fatalf("%s: encode: %v", rec.kindString(), err)
		}
		got, err := DecodeRecord(payload)
		if err != nil {
			t.Fatalf("%s: decode: %v", rec.kindString(), err)
		}
		if !sameRecord(rec, got) {
			t.Fatalf("%s: roundtrip mismatch:\n in  %+v\n out %+v", rec.kindString(), rec, got)
		}
	}
}

func TestDecodeRecordRejectsTrailingBytes(t *testing.T) {
	payload, err := encodeRecord(Record{LSN: 1, Type: recDrop, Table: "t"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeRecord(append(payload, 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

// openTestWAL opens a WAL collecting replayed records.
func openTestWAL(t *testing.T, path string, policy Policy) (*wal, []Record, int64) {
	t.Helper()
	var replayed []Record
	w, truncated, err := openWAL(path, policy, 0, nil, 0, func(rec Record, _ int64) error {
		replayed = append(replayed, rec)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return w, replayed, truncated
}

func TestWALAppendReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, _ := openTestWAL(t, path, SyncAlways)
	want := testRecords()
	for i := range want {
		if err := w.append(&want[i]); err != nil {
			t.Fatal(err)
		}
		if want[i].LSN != uint64(i+1) {
			t.Fatalf("append %d assigned LSN %d", i, want[i].LSN)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, replayed, truncated := openTestWAL(t, path, SyncAlways)
	defer w2.Close()
	if truncated != 0 {
		t.Fatalf("clean log truncated %d bytes", truncated)
	}
	if len(replayed) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(replayed), len(want))
	}
	for i := range want {
		if !sameRecord(want[i], replayed[i]) {
			t.Fatalf("record %d mismatch:\n in  %+v\n out %+v", i, want[i], replayed[i])
		}
	}
	if got := w2.lastAssigned(); got != uint64(len(want)) {
		t.Fatalf("lastAssigned after replay = %d, want %d", got, len(want))
	}
}

// TestWALTornTail covers invariant 2: a hard cut at every possible byte
// offset must recover exactly the records whose frames are fully within
// the cut, and the torn remainder must be truncated away so appends resume
// on a valid log.
func TestWALTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	w, _, _ := openTestWAL(t, path, SyncAlways)
	recs := testRecords()
	ends := []int64{int64(len(walMagic))}
	for i := range recs {
		if err := w.append(&recs[i]); err != nil {
			t.Fatal(err)
		}
		w.mu.Lock()
		ends = append(ends, w.size)
		w.mu.Unlock()
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for cut := int64(len(walMagic)); cut <= int64(len(full)); cut++ {
		cutPath := filepath.Join(dir, "cut.log")
		if err := os.WriteFile(cutPath, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		wantN := 0
		for _, end := range ends[1:] {
			if end <= cut {
				wantN++
			}
		}
		w2, replayed, truncated := openTestWAL(t, cutPath, SyncAlways)
		if len(replayed) != wantN {
			t.Fatalf("cut at %d: replayed %d records, want %d", cut, len(replayed), wantN)
		}
		if wantTrunc := cut - ends[wantN]; truncated != wantTrunc {
			t.Fatalf("cut at %d: truncated %d bytes, want %d", cut, truncated, wantTrunc)
		}
		// The log must keep working after truncation.
		rec := Record{Type: recInsert, Table: "kv", Rows: [][]int64{{9, 9}}}
		if err := w2.append(&rec); err != nil {
			t.Fatalf("cut at %d: append after truncation: %v", cut, err)
		}
		if err := w2.Close(); err != nil {
			t.Fatal(err)
		}
		w3, replayed3, _ := openTestWAL(t, cutPath, SyncAlways)
		if len(replayed3) != wantN+1 {
			t.Fatalf("cut at %d: reopen replayed %d records, want %d", cut, len(replayed3), wantN+1)
		}
		w3.Close()
	}
}

// TestWALChecksumRejected covers the "no frame accepted on a failed
// checksum" half of invariant 2: flipping any payload byte of the last
// frame must drop that frame (and only that frame).
func TestWALChecksumRejected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	w, _, _ := openTestWAL(t, path, SyncAlways)
	recs := testRecords()[:3]
	var lastStart int64
	for i := range recs {
		w.mu.Lock()
		lastStart = w.size
		w.mu.Unlock()
		if err := w.append(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for off := lastStart + frameHeaderLen; off < int64(len(full)); off++ {
		corrupt := append([]byte(nil), full...)
		corrupt[off] ^= 0x40
		cutPath := filepath.Join(dir, "corrupt.log")
		if err := os.WriteFile(cutPath, corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		w2, replayed, truncated := openTestWAL(t, cutPath, SyncAlways)
		if len(replayed) != len(recs)-1 {
			t.Fatalf("flip at %d: replayed %d records, want %d", off, len(replayed), len(recs)-1)
		}
		if truncated == 0 {
			t.Fatalf("flip at %d: corrupt frame not truncated", off)
		}
		w2.Close()
	}
}

// TestWALGroupCommit hammers concurrent appends under SyncAlways: every
// append must come back with a unique LSN and survive a reopen. Run with
// -race to exercise the leader/follower handoff.
func TestWALGroupCommit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, _ := openTestWAL(t, path, SyncAlways)
	const workers, per = 8, 25
	lsns := make([][]uint64, workers)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				rec := Record{Type: recInsert, Table: "kv", Rows: [][]int64{{int64(g), int64(i)}}}
				if err := w.append(&rec); err != nil {
					t.Error(err)
					return
				}
				lsns[g] = append(lsns[g], rec.LSN)
			}
		}(g)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint64]bool)
	for g := range lsns {
		for i, lsn := range lsns[g] {
			if seen[lsn] {
				t.Fatalf("duplicate LSN %d", lsn)
			}
			seen[lsn] = true
			if i > 0 && lsns[g][i-1] >= lsn {
				t.Fatalf("worker %d: LSNs not increasing: %d then %d", g, lsns[g][i-1], lsn)
			}
		}
	}
	w2, replayed, truncated := openTestWAL(t, path, SyncAlways)
	defer w2.Close()
	if truncated != 0 || len(replayed) != workers*per {
		t.Fatalf("reopen: %d records (truncated %d), want %d", len(replayed), truncated, workers*per)
	}
}

// TestWALRewrite drops a covered prefix and checks the survivors replay.
func TestWALRewrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, _ := openTestWAL(t, path, SyncAlways)
	for i := 0; i < 10; i++ {
		rec := Record{Type: recInsert, Table: "kv", Rows: [][]int64{{int64(i)}}}
		if err := w.append(&rec); err != nil {
			t.Fatal(err)
		}
	}
	before := w.size
	if err := w.rewrite(func(rec Record) bool { return rec.LSN <= 6 }); err != nil {
		t.Fatal(err)
	}
	if w.size >= before {
		t.Fatalf("rewrite did not shrink the log: %d -> %d", before, w.size)
	}
	if w.records != 4 {
		t.Fatalf("rewrite kept %d records, want 4", w.records)
	}
	// Appends must keep working and the next LSN must not regress.
	rec := Record{Type: recInsert, Table: "kv", Rows: [][]int64{{99}}}
	if err := w.append(&rec); err != nil {
		t.Fatal(err)
	}
	if rec.LSN != 11 {
		t.Fatalf("LSN after rewrite = %d, want 11", rec.LSN)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, replayed, _ := openTestWAL(t, path, SyncAlways)
	defer w2.Close()
	if len(replayed) != 5 {
		t.Fatalf("reopen replayed %d records, want 5", len(replayed))
	}
	if replayed[0].LSN != 7 || replayed[4].LSN != 11 {
		t.Fatalf("survivor LSNs %d..%d, want 7..11", replayed[0].LSN, replayed[4].LSN)
	}
}

func TestParsePolicy(t *testing.T) {
	for in, want := range map[string]Policy{"": SyncAlways, "always": SyncAlways, "interval": SyncInterval, "off": SyncOff} {
		got, err := ParsePolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

// TestWALFailedRewriteKeepsAppendOffset: a rewrite that cannot complete
// (here: the temp path is occupied by a directory) must leave the append
// position at the end of the log — not wherever its scan stopped — so
// later appends extend the file instead of splicing over committed frames.
func TestWALFailedRewriteKeepsAppendOffset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, _ := openTestWAL(t, path, SyncOff)
	recs := testRecords()
	for i := range recs[:3] {
		if err := w.append(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.Mkdir(path+".tmp", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := w.rewrite(func(Record) bool { return false }); err == nil {
		t.Fatal("rewrite over an unwritable temp path succeeded")
	}
	if err := os.RemoveAll(path + ".tmp"); err != nil {
		t.Fatal(err)
	}
	if err := w.append(&recs[3]); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, replayed, truncated := openTestWAL(t, path, SyncOff)
	defer w2.Close()
	if truncated != 0 || len(replayed) != 4 {
		t.Fatalf("reopen found %d records, %d torn bytes; the failed rewrite corrupted the log", len(replayed), truncated)
	}
	for i, rec := range replayed {
		if !sameRecord(recs[i], rec) {
			t.Fatalf("record %d = %+v, want %+v", i, rec, recs[i])
		}
	}
}

func TestWALRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	if err := os.WriteFile(path, bytes.Repeat([]byte{0x7f}, 64), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := openWAL(path, SyncAlways, 0, nil, 0, nil); err == nil {
		t.Fatal("file without WAL magic accepted")
	}
}

// FuzzWALDecode asserts DecodeRecord never panics and never accepts a
// payload that re-encodes differently (the decoder is the trust boundary
// for everything read back from disk).
func FuzzWALDecode(f *testing.F) {
	for _, rec := range testRecords() {
		rec.LSN = 7
		if payload, err := encodeRecord(rec); err == nil {
			f.Add(payload)
		}
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 32))
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := DecodeRecord(data)
		if err != nil {
			return
		}
		out, err := encodeRecord(rec)
		if err != nil {
			t.Fatalf("decoded record does not re-encode: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("roundtrip mismatch:\n in  %x\n out %x", data, out)
		}
	})
}
