package durable

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/bat"
	"repro/internal/bitpack"
	"repro/internal/bwd"
	"repro/internal/device"
	"repro/internal/store"
)

// Segment files persist one table's immutable base segment as a checkpoint
// captured it: the schema (with fixed-point scales and physical widths),
// the raw column tails, and — for decomposed columns — the bitwise
// decomposition parameters plus the bit-packed approximation and residual
// planes verbatim, so boot re-allocates device memory but re-decomposes
// nothing. FK-indexed columns are marked and their (strictly dense) index
// is rebuilt at load; deltas are never part of a segment — they replay
// from the WAL tail.
//
// The file name is <table>.<checkpoint LSN, %016x>.seg so the newest
// segment per table sorts last lexically; the whole body is covered by a
// trailing CRC32 and written via temp file + fsync + rename, so a reader
// either sees a complete, verified segment or ignores the file.
var segMagic = [8]byte{'A', 'R', 'S', 'E', 'G', '0', '0', '1'}

const segVersion = 1

// segName returns the file name of a table's segment at a checkpoint LSN.
func segName(table string, lsn uint64) string {
	return fmt.Sprintf("%s.%016x.seg", table, lsn)
}

// parseSegName splits a segment file name into table and checkpoint LSN.
func parseSegName(name string) (table string, lsn uint64, ok bool) {
	rest, found := strings.CutSuffix(name, ".seg")
	if !found {
		return "", 0, false
	}
	i := strings.LastIndexByte(rest, '.')
	if i <= 0 || len(rest)-i-1 != 16 {
		return "", 0, false
	}
	n, err := strconv.ParseUint(rest[i+1:], 16, 64)
	if err != nil {
		return "", 0, false
	}
	return rest[:i], n, true
}

// encodeSegment serializes a table's post-merge state. The snapshot must
// be pure base (the checkpoint merged first); lsn is the WAL horizon the
// segment covers.
func encodeSegment(t *store.Table, snap *store.Snapshot, lsn uint64) ([]byte, error) {
	if snap.DeltaLen() > 0 || snap.DeletedCount() > 0 {
		return nil, fmt.Errorf("durable: segment of %s would drop %d delta rows / %d deletions (merge first)", t.Name(), snap.DeltaLen(), snap.DeletedCount())
	}
	schema := t.Schema()
	decBits := t.DecBits()
	pkCols := t.PKCols()
	var b bytes.Buffer
	b.Write(segMagic[:])
	le := binary.LittleEndian
	b.Write(le.AppendUint32(nil, segVersion))
	b.Write(le.AppendUint64(nil, lsn))
	b.Write(le.AppendUint64(nil, uint64(snap.BaseLen())))
	b.Write(le.AppendUint16(nil, uint16(len(schema))))
	for i, def := range schema {
		b.Write(appendString(nil, def.Name))
		b.Write(le.AppendUint64(nil, uint64(def.Scale)))
		b.WriteByte(byte(def.Width))
		b.WriteByte(byte(decBits[i]))
		if pkCols[i] {
			b.WriteByte(1)
		} else {
			b.WriteByte(0)
		}
	}
	for _, def := range schema {
		col, err := snap.Column(def.Name)
		if err != nil {
			return nil, err
		}
		for _, v := range col.Tails() {
			b.Write(le.AppendUint64(nil, uint64(v)))
		}
		d := snap.Dec(def.Name)
		if d == nil {
			b.WriteByte(0)
			continue
		}
		b.WriteByte(1)
		b.Write(le.AppendUint64(nil, uint64(d.Dec.Base)))
		b.WriteByte(byte(d.Dec.TotalBits))
		b.WriteByte(byte(d.Dec.ApproxBits))
		b.WriteByte(byte(d.Dec.ResBits))
		b.WriteByte(byte(d.Dec.Width))
		for _, plane := range []*bitpack.Array{d.Approx, d.Residual} {
			words := plane.Words()
			b.Write(le.AppendUint64(nil, uint64(len(words))))
			for _, w := range words {
				b.Write(le.AppendUint64(nil, w))
			}
		}
	}
	b.Write(le.AppendUint32(nil, crc32.Checksum(b.Bytes(), crcTable)))
	return b.Bytes(), nil
}

// segState is a decoded segment file, ready to restore into a store.Table.
type segState struct {
	lsn     uint64
	schema  []store.ColumnDef
	cols    []*bat.BAT
	decs    []*bwd.Column
	decBits []uint
	pkCols  []bool
}

// decodeSegment parses and verifies a segment file body. sys provides the
// simulated device allocations for restored decompositions; nil skips them
// (validation-only paths).
func decodeSegment(data []byte, sys *device.System) (*segState, error) {
	if len(data) < len(segMagic)+4+8+8+2+4 {
		return nil, fmt.Errorf("durable: segment file too short (%d bytes)", len(data))
	}
	if !bytes.Equal(data[:len(segMagic)], segMagic[:]) {
		return nil, fmt.Errorf("durable: bad segment magic")
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("durable: segment checksum mismatch")
	}
	b := body[len(segMagic):]
	le := binary.LittleEndian
	if v := le.Uint32(b); v != segVersion {
		return nil, fmt.Errorf("durable: unsupported segment version %d", v)
	}
	st := &segState{lsn: le.Uint64(b[4:])}
	n := int(le.Uint64(b[12:]))
	ncols := int(le.Uint16(b[20:]))
	b = b[22:]
	// Bound n by what the body could possibly hold (each column tail costs
	// n*8 bytes): an absurd count from a corrupted-but-CRC-valid file must
	// error here, not overflow the later n*8 size checks or panic in make.
	if n < 0 || ncols == 0 || n > len(b)/8 {
		return nil, fmt.Errorf("durable: segment shape %d rows x %d columns", n, ncols)
	}
	var err error
	for i := 0; i < ncols; i++ {
		var def store.ColumnDef
		if def.Name, b, err = takeString(b); err != nil {
			return nil, err
		}
		if len(b) < 11 {
			return nil, fmt.Errorf("durable: truncated segment column header")
		}
		def.Scale = int64(le.Uint64(b))
		def.Width = int(b[8])
		switch def.Width {
		case bat.Width8, bat.Width16, bat.Width32, bat.Width64:
		default:
			// bat.NewDense panics on bad widths; a CRC-valid corrupted
			// byte must surface as a decode error, not crash Open.
			return nil, fmt.Errorf("durable: segment column %s has width %d", def.Name, def.Width)
		}
		st.schema = append(st.schema, def)
		st.decBits = append(st.decBits, uint(b[9]))
		st.pkCols = append(st.pkCols, b[10] != 0)
		b = b[11:]
	}
	takeWords := func() ([]uint64, error) {
		if len(b) < 8 {
			return nil, fmt.Errorf("durable: truncated plane length")
		}
		nw := int(le.Uint64(b))
		b = b[8:]
		// nw > len(b)/8 instead of len(b) < nw*8: the latter overflows on
		// a huge word count and would wave the allocation through.
		if nw < 0 || nw > len(b)/8 {
			return nil, fmt.Errorf("durable: truncated plane body")
		}
		words := make([]uint64, nw)
		for j := range words {
			words[j] = le.Uint64(b[j*8:])
		}
		b = b[nw*8:]
		return words, nil
	}
	for i := 0; i < ncols; i++ {
		if len(b) < n*8 {
			return nil, fmt.Errorf("durable: truncated column tail")
		}
		vals := make([]int64, n)
		for j := range vals {
			vals[j] = int64(le.Uint64(b[j*8:]))
		}
		b = b[n*8:]
		st.cols = append(st.cols, bat.NewDense(vals, st.schema[i].Width))
		if len(b) < 1 {
			return nil, fmt.Errorf("durable: truncated decomposition flag")
		}
		hasDec := b[0] != 0
		b = b[1:]
		if !hasDec {
			st.decs = append(st.decs, nil)
			continue
		}
		if len(b) < 12 {
			return nil, fmt.Errorf("durable: truncated decomposition parameters")
		}
		dec := bwd.Decomposition{
			Base:       int64(le.Uint64(b)),
			TotalBits:  uint(b[8]),
			ApproxBits: uint(b[9]),
			ResBits:    uint(b[10]),
			Width:      int(b[11]),
		}
		b = b[12:]
		aw, err := takeWords()
		if err != nil {
			return nil, err
		}
		rw, err := takeWords()
		if err != nil {
			return nil, err
		}
		approx, err := bitpack.FromWords(dec.ApproxBits, n, aw)
		if err != nil {
			return nil, fmt.Errorf("durable: approximation plane: %w", err)
		}
		res, err := bitpack.FromWords(dec.ResBits, n, rw)
		if err != nil {
			return nil, fmt.Errorf("durable: residual plane: %w", err)
		}
		d, err := bwd.Restore(dec, approx, res, sys)
		if err != nil {
			return nil, err
		}
		st.decs = append(st.decs, d)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("durable: %d trailing bytes in segment", len(b))
	}
	return st, nil
}

// writeSegment atomically persists a segment file: temp name in the same
// directory, fsync, rename, directory fsync. It returns the final path and
// the file size.
func writeSegment(dir string, table string, data []byte, lsn uint64, sync bool) (string, int64, error) {
	final := filepath.Join(dir, segName(table, lsn))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return "", 0, err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", 0, err
	}
	if sync {
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(tmp)
			return "", 0, err
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return "", 0, err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return "", 0, err
	}
	if sync {
		syncDir(dir)
	}
	return final, int64(len(data)), nil
}

// segFile is one discovered segment file.
type segFile struct {
	table string
	lsn   uint64
	path  string
}

// listSegments returns every segment file in dir grouped by table, sorted
// by ascending checkpoint LSN within each table.
func listSegments(dir string) (map[string][]segFile, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	out := make(map[string][]segFile)
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		table, lsn, ok := parseSegName(e.Name())
		if !ok {
			continue
		}
		out[table] = append(out[table], segFile{table: table, lsn: lsn, path: filepath.Join(dir, e.Name())})
	}
	for _, segs := range out {
		sort.Slice(segs, func(i, j int) bool { return segs[i].lsn < segs[j].lsn })
	}
	return out, nil
}
