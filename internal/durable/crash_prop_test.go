package durable

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/device"
	"repro/internal/plan"
)

// TestPropDurableCrashCuts is the crash-recovery property test: a random
// interleaving of INSERTs, DELETEs and merges runs on two tables (phase 1
// sequential and fully checkpointed, phase 2 concurrent and WAL-only),
// then the WAL is hard-cut at random byte offsets — including mid-frame —
// and each cut must recover to exactly the committed prefix: checkpointed
// state plus the WAL records fully within the cut, as computed by an
// independent in-memory oracle. The name carries "Prop" so CI's focused
// -race job runs the concurrent phase under the race detector.
func TestPropDurableCrashCuts(t *testing.T) {
	for _, seed := range []int64{1, 7, 23} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) { propCrashCuts(t, seed) })
	}
}

// crashOp is one logical write, replayable against any catalog.
type crashOp struct {
	table string
	rows  [][]int64     // insert when non-nil
	preds []plan.Filter // delete otherwise
}

func (o crashOp) apply(t *testing.T, cat *plan.Catalog) {
	t.Helper()
	var err error
	if o.rows != nil {
		_, err = cat.InsertRows(nil, o.table, o.rows)
	} else {
		_, err = cat.DeleteRows(nil, o.table, o.preds)
	}
	if err != nil {
		t.Error(err)
	}
}

// randOp draws an op: mostly inserts of deterministic rows (the counter
// keeps values unique per table), sometimes a ranged delete.
func randOp(rng *rand.Rand, table string, ctr *int64) crashOp {
	if rng.Intn(4) == 0 {
		lo := rng.Int63n(1000)
		return crashOp{table: table, preds: []plan.Filter{{Col: "v", Lo: lo, Hi: lo + rng.Int63n(50)}}}
	}
	n := 1 + rng.Intn(8)
	rows := make([][]int64, n)
	for i := range rows {
		rows[i] = []int64{*ctr, (*ctr * 7) % 1000}
		*ctr++
	}
	return crashOp{table: table, rows: rows}
}

func propCrashCuts(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	dir := t.TempDir()
	cat := plan.NewCatalog(device.PaperSystem())
	s := openStore(t, dir, cat, SyncAlways)
	tables := []string{"t0", "t1"}
	ctrs := map[string]*int64{"t0": new(int64), "t1": new(int64)}
	var phase1 []crashOp
	for _, name := range tables {
		if _, err := cat.CreateTable(name, kvDefs); err != nil {
			t.Fatal(err)
		}
	}

	// Phase 1: sequential ops, a decomposition, scattered merges, then a
	// checkpoint of everything — this state persists as segments.
	for i := 0; i < 30; i++ {
		name := tables[rng.Intn(2)]
		op := randOp(rng, name, ctrs[name])
		op.apply(t, cat)
		phase1 = append(phase1, op)
		if rng.Intn(10) == 0 {
			if _, err := cat.MergeTable(nil, name, false); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := cat.Decompose("t0", "v", 5); err != nil {
		t.Fatal(err)
	}
	for _, name := range tables {
		if _, err := s.Checkpoint(nil, name, false); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.WALRecords != 0 {
		t.Fatalf("WAL holds %d records after checkpointing everything", st.WALRecords)
	}

	// Phase 2: concurrent per-table writers (group commit + per-table lock
	// under -race), merges allowed, no checkpoints — pure WAL tail.
	phase2 := make(map[string][]crashOp)
	for _, name := range tables {
		phase2[name] = nil
		wseed := rng.Int63()
		for i, ops := 0, rand.New(rand.NewSource(wseed)); i < 15; i++ {
			phase2[name] = append(phase2[name], randOp(ops, name, ctrs[name]))
		}
	}
	var wg sync.WaitGroup
	for _, name := range tables {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			for i, op := range phase2[name] {
				op.apply(t, cat)
				if i%7 == 3 {
					if _, err := cat.MergeTable(nil, name, false); err != nil {
						t.Error(err)
					}
				}
			}
		}(name)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Snapshot the on-disk state (SyncAlways: everything durable) and the
	// frame layout of the final WAL. Decoding through openWAL also verifies
	// each table's frames are exactly its op sequence, in order.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	walBytes, err := os.ReadFile(WALPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	type frame struct {
		rec Record
		end int64
	}
	var frames []frame
	{
		probe := filepath.Join(t.TempDir(), "probe.log")
		if err := os.WriteFile(probe, walBytes, 0o644); err != nil {
			t.Fatal(err)
		}
		w, _, err := openWAL(probe, SyncOff, 0, nil, 0, func(rec Record, end int64) error {
			frames = append(frames, frame{rec, end})
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		w.Close()
	}
	seen := map[string]int{}
	for _, f := range frames {
		ops := phase2[f.rec.Table]
		i := seen[f.rec.Table]
		if i >= len(ops) {
			t.Fatalf("WAL holds %d+ frames for %s, ops only %d", i+1, f.rec.Table, len(ops))
		}
		want := ops[i]
		if (want.rows != nil) != (f.rec.Type == recInsert) {
			t.Fatalf("%s frame %d: kind %s does not match op", f.rec.Table, i, f.rec.kindString())
		}
		seen[f.rec.Table]++
	}
	for _, name := range tables {
		if seen[name] != len(phase2[name]) {
			t.Fatalf("%s: %d frames in WAL, want %d", name, seen[name], len(phase2[name]))
		}
	}

	// Hard-cut the WAL at random offsets (plus the exact torn edges) and
	// check recovery against the oracle.
	cuts := []int64{int64(len(walMagic)), int64(len(walBytes))}
	if len(frames) > 0 {
		mid := frames[len(frames)/2]
		cuts = append(cuts, mid.end-1, mid.end) // mid-frame and exact boundary
	}
	for i := 0; i < 8; i++ {
		cuts = append(cuts, int64(len(walMagic))+rng.Int63n(int64(len(walBytes))-int64(len(walMagic))+1))
	}
	for _, cut := range cuts {
		cutDir := t.TempDir()
		for _, e := range entries {
			if e.IsDir() {
				continue
			}
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if e.Name() == filepath.Base(WALPath(dir)) {
				data = data[:cut]
			}
			if err := os.WriteFile(filepath.Join(cutDir, e.Name()), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}

		// Oracle: phase 1 in full, then the committed phase-2 records — the
		// frames wholly inside the cut — in frame order.
		oracle := plan.NewCatalog(device.PaperSystem())
		for _, name := range tables {
			if _, err := oracle.CreateTable(name, kvDefs); err != nil {
				t.Fatal(err)
			}
		}
		for _, op := range phase1 {
			op.apply(t, oracle)
		}
		committed := 0
		for _, f := range frames {
			if f.end > cut {
				break
			}
			committed++
			op := crashOp{table: f.rec.Table, rows: f.rec.Rows}
			if f.rec.Type == recDelete {
				op.rows = nil
				for _, p := range f.rec.Preds {
					op.preds = append(op.preds, plan.Filter{Col: p.Col, Lo: p.Lo, Hi: p.Hi})
				}
			}
			op.apply(t, oracle)
		}

		recovered := plan.NewCatalog(device.PaperSystem())
		rs, err := Open(cutDir, recovered, Config{Policy: SyncAlways})
		if err != nil {
			t.Fatalf("cut at %d: open: %v", cut, err)
		}
		if int(rs.Recovery().Replayed) != committed {
			t.Fatalf("cut at %d: replayed %d records, want %d", cut, rs.Recovery().Replayed, committed)
		}
		for _, name := range tables {
			want := tableRows(t, oracle, name)
			got := tableRows(t, recovered, name)
			if !sameRows(want, got) {
				t.Fatalf("cut at %d: %s recovered %d rows, oracle has %d (content mismatch)", cut, name, len(got), len(want))
			}
		}
		// The decomposition from phase 1 must survive every cut.
		if _, err := recovered.Decomposition("t0", "v"); err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		rs.Close()
	}
}
