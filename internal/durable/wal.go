// Package durable is the persistence subsystem beneath the mutable column
// store: a write-ahead log for DML, versioned segment files for the
// immutable bit-sliced base segments, checkpoints wired into the merge
// lifecycle, and crash recovery that reloads the newest valid segment per
// table and replays the WAL tail into the delta.
//
// The division of labor mirrors the storage design (DESIGN.md §6): the
// base segment is immutable and page-friendly by construction, so it
// persists as one atomically renamed file per checkpoint; the delta is a
// replayable suffix of the logical write history, so it persists as WAL
// records only. A checkpoint — taken when a merge has folded the delta
// into a fresh base — persists the new base with the LSN it covers, then
// proactively reclaims the waste it obsoleted: the replayed WAL prefix and
// the superseded segment files.
//
// Crash-safety invariants:
//
//  1. Write-ahead: a record reaches the WAL buffer before it is applied to
//     the in-memory store, and under the "always" fsync policy the append
//     does not return before the frame is fsynced (group commit: one fsync
//     covers every frame buffered while the previous fsync ran).
//  2. A frame is replayed only if its length and CRC32 check out; the
//     first invalid frame truncates the log (torn tail) — no frame is ever
//     accepted on a failed checksum, and nothing after a bad frame is
//     trusted.
//  3. Segment files are written to a temp name, fsynced, then renamed into
//     place; a crash mid-checkpoint leaves the previous segment and the
//     full WAL tail, never a half-written segment that parses.
//  4. A segment with checkpoint LSN L reflects exactly the records for its
//     table with lsn <= L; recovery replays only records with lsn > L.
package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Policy selects when WAL appends are flushed to stable storage.
type Policy int

// Fsync policies.
const (
	// SyncAlways fsyncs before an append returns, with group commit:
	// appends that arrive while an fsync is in flight are covered together
	// by the next one.
	SyncAlways Policy = iota
	// SyncInterval fsyncs on a background ticker; appends return after the
	// buffered write. A crash loses at most one interval of acknowledged
	// writes.
	SyncInterval
	// SyncOff never fsyncs (the OS flushes at its leisure); appends return
	// after the buffered write reaches the file. Survives a process crash,
	// not a power failure.
	SyncOff
)

func (p Policy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncOff:
		return "off"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy parses a policy from its flag form.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "off":
		return SyncOff, nil
	default:
		return SyncAlways, fmt.Errorf("durable: unknown fsync policy %q (always, interval, off)", s)
	}
}

var walMagic = [8]byte{'A', 'R', 'W', 'A', 'L', '0', '0', '1'}

// frameHeaderLen is the per-frame prefix: payload length (u32) + CRC32 of
// the payload (u32).
const frameHeaderLen = 8

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// WALPath returns the write-ahead log path inside a data directory.
func WALPath(dir string) string { return filepath.Join(dir, "wal.log") }

// wal is the write-ahead log: an append-only file of length-prefixed,
// CRC32-checksummed frames behind a group-commit gate.
type wal struct {
	path     string
	observer func(time.Duration) // optional fsync latency observer
	policy   Policy

	mu      sync.Mutex
	cond    *sync.Cond
	f       *os.File
	size    int64 // current file size (header + frames)
	next    uint64
	records int64 // frames currently in the file
	appends int64 // frames appended since open
	fsyncs  int64

	// Group-commit state: written is the highest LSN flushed to the OS,
	// synced the highest LSN known fsynced; one goroutine at a time holds
	// syncing and fsyncs outside the lock while followers buffer and wait.
	written uint64
	synced  uint64
	syncing bool
	syncErr error

	closed   bool
	stopTick chan struct{}
}

// replayFn receives each valid frame during open-time replay, with the
// file offset one past the frame (the commit horizon of that record).
type replayFn func(rec Record, endOffset int64) error

// openWAL opens (creating if absent) the log at path, replays every valid
// frame through replay, truncates a torn tail, and leaves the file
// positioned for appends. It returns the bytes discarded by truncation.
//
// lsnFloor seeds the next-LSN counter at lsnFloor+1: checkpoints drop
// covered frames, so after one empties the log the highest assigned LSN
// survives only in the segment files' checkpoint LSNs. Without the floor a
// reopen would hand out LSNs below those horizons and the next recovery
// would skip the records as already covered. Frames found in the log raise
// the counter further as usual.
func openWAL(path string, policy Policy, interval time.Duration, observer func(time.Duration), lsnFloor uint64, replay replayFn) (*wal, int64, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, 0, err
	}
	w := &wal{path: path, policy: policy, observer: observer, f: f, next: lsnFloor + 1}
	w.cond = sync.NewCond(&w.mu)

	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	if st.Size() == 0 {
		if _, err := f.Write(walMagic[:]); err != nil {
			f.Close()
			return nil, 0, err
		}
		w.size = int64(len(walMagic))
	} else {
		var magic [8]byte
		if _, err := io.ReadFull(f, magic[:]); err != nil || magic != walMagic {
			f.Close()
			return nil, 0, fmt.Errorf("durable: %s is not a WAL file", path)
		}
		good, truncated, err := w.scan(f, replay)
		if err != nil {
			f.Close()
			return nil, 0, err
		}
		if truncated > 0 {
			if err := f.Truncate(good); err != nil {
				f.Close()
				return nil, 0, fmt.Errorf("durable: truncating torn WAL tail: %w", err)
			}
		}
		w.size = good
		if _, err := f.Seek(good, io.SeekStart); err != nil {
			f.Close()
			return nil, 0, err
		}
		return w.start(interval), truncated, nil
	}
	return w.start(interval), 0, nil
}

func (w *wal) start(interval time.Duration) *wal {
	if w.policy == SyncInterval {
		if interval <= 0 {
			interval = 10 * time.Millisecond
		}
		w.stopTick = make(chan struct{})
		go func() {
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for {
				select {
				case <-w.stopTick:
					return
				case <-tick.C:
					w.Sync()
				}
			}
		}()
	}
	return w
}

// scan reads frames from the current position, invoking replay for each
// valid one. It stops at the first frame whose length or checksum fails —
// the torn tail — and reports the offset of the last valid frame end plus
// the number of bytes after it.
func (w *wal) scan(r io.Reader, replay replayFn) (good, truncated int64, err error) {
	br := &countingReader{r: r}
	good = int64(len(walMagic))
	var header [frameHeaderLen]byte
	for {
		if _, err := io.ReadFull(br, header[:]); err != nil {
			// Clean EOF or a torn header: everything before is good.
			break
		}
		n := binary.LittleEndian.Uint32(header[:4])
		crc := binary.LittleEndian.Uint32(header[4:])
		if n == 0 || n > maxPayload {
			break
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			break
		}
		if crc32.Checksum(payload, crcTable) != crc {
			break
		}
		rec, derr := DecodeRecord(payload)
		if derr != nil {
			break
		}
		good += frameHeaderLen + int64(n)
		w.records++
		if rec.LSN >= w.next {
			w.next = rec.LSN + 1
		}
		if replay != nil {
			if err := replay(rec, good); err != nil {
				return 0, 0, err
			}
		}
	}
	return good, br.n + int64(len(walMagic)) - good, nil
}

type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

func encodeFrame(rec Record) ([]byte, error) {
	payload, err := encodeRecord(rec)
	if err != nil {
		return nil, err
	}
	frame := make([]byte, frameHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, crcTable))
	copy(frame[frameHeaderLen:], payload)
	return frame, nil
}

// append assigns the next LSN to rec, writes its frame, and — under
// SyncAlways — blocks until the frame is fsynced (group commit). The
// caller-visible contract: when append returns nil under SyncAlways, the
// record survives kill -9.
func (w *wal) append(rec *Record) error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return errors.New("durable: WAL is closed")
	}
	if w.syncErr != nil {
		err := w.syncErr
		w.mu.Unlock()
		return err
	}
	rec.LSN = w.next
	frame, err := encodeFrame(*rec)
	if err != nil {
		w.mu.Unlock()
		return err
	}
	w.next++
	if _, err := w.f.Write(frame); err != nil {
		w.syncErr = fmt.Errorf("durable: WAL append: %w", err)
		w.mu.Unlock()
		return err
	}
	w.size += int64(len(frame))
	w.records++
	w.appends++
	w.written = rec.LSN
	if w.policy != SyncAlways {
		w.mu.Unlock()
		return nil
	}
	err = w.waitSynced(rec.LSN)
	w.mu.Unlock()
	return err
}

// waitSynced blocks (w.mu held) until lsn is fsynced, electing this
// goroutine as the sync leader when no fsync is in flight. The leader
// drops the lock around the fsync itself, so followers keep appending into
// the OS buffer and are covered by the next leader — that is the group
// commit batching.
func (w *wal) waitSynced(lsn uint64) error {
	for w.synced < lsn {
		if w.syncErr != nil {
			return w.syncErr
		}
		if w.closed {
			return errors.New("durable: WAL closed while waiting for fsync")
		}
		if w.syncing {
			w.cond.Wait()
			continue
		}
		w.syncing = true
		target := w.written
		f := w.f
		w.mu.Unlock()
		start := time.Now()
		err := f.Sync()
		elapsed := time.Since(start)
		if w.observer != nil {
			w.observer(elapsed)
		}
		w.mu.Lock()
		w.syncing = false
		w.fsyncs++
		if err != nil {
			w.syncErr = fmt.Errorf("durable: WAL fsync: %w", err)
		} else if target > w.synced {
			w.synced = target
		}
		w.cond.Broadcast()
	}
	return w.syncErr
}

// Sync flushes and fsyncs whatever has been appended so far.
func (w *wal) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	return w.waitSynced(w.written)
}

// lastAssigned returns the most recently assigned LSN (0 when none).
func (w *wal) lastAssigned() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.next - 1
}

// rewrite drops every frame for which covered reports true — the frames a
// checkpoint made obsolete — by writing the surviving tail to a temp file
// and atomically renaming it over the log. Appends are blocked for the
// duration; the new file is fsynced before the rename so the swap never
// loses an uncovered frame.
func (w *wal) rewrite(covered func(rec Record) bool) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return errors.New("durable: WAL is closed")
	}
	// An fsync in flight holds a reference to the old *os.File; wait it
	// out so the swap cannot race it.
	for w.syncing {
		w.cond.Wait()
	}
	// Every pre-rename failure goes through restore: the scan below moves
	// w.f's offset into the middle of the log, and an early return that
	// leaves it there would let the next append splice frames over
	// committed ones (w.size still claims the full file). If even the
	// re-seek fails, poison the WAL so appends error instead of corrupting.
	restore := func(err error) error {
		if _, serr := w.f.Seek(w.size, io.SeekStart); serr != nil {
			w.syncErr = fmt.Errorf("durable: WAL append offset lost after failed rewrite: %w", serr)
		}
		return err
	}
	if _, err := w.f.Seek(int64(len(walMagic)), io.SeekStart); err != nil {
		return restore(err)
	}
	tmpPath := w.path + ".tmp"
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return restore(err)
	}
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpPath)
		return restore(err)
	}
	if _, err := tmp.Write(walMagic[:]); err != nil {
		return cleanup(err)
	}
	size := int64(len(walMagic))
	var kept int64
	keep := &wal{next: w.next}
	if _, _, err := keep.scan(w.f, func(rec Record, _ int64) error {
		if covered(rec) {
			return nil
		}
		frame, err := encodeFrame(rec)
		if err != nil {
			return err
		}
		if _, err := tmp.Write(frame); err != nil {
			return err
		}
		size += int64(len(frame))
		kept++
		return nil
	}); err != nil {
		return cleanup(err)
	}
	if w.policy != SyncOff {
		if err := tmp.Sync(); err != nil {
			return cleanup(err)
		}
	}
	if err := tmp.Close(); err != nil {
		return cleanup(err)
	}
	if err := os.Rename(tmpPath, w.path); err != nil {
		return cleanup(err)
	}
	// Past the rename, the old fd points at the replaced (unlinked) inode;
	// if the new file cannot be adopted, appends must fail rather than
	// write into a file nobody will ever read again.
	f, err := os.OpenFile(w.path, os.O_RDWR, 0o644)
	if err != nil {
		w.syncErr = fmt.Errorf("durable: reopening WAL after rewrite: %w", err)
		return w.syncErr
	}
	if _, err := f.Seek(size, io.SeekStart); err != nil {
		f.Close()
		w.syncErr = fmt.Errorf("durable: reopening WAL after rewrite: %w", err)
		return w.syncErr
	}
	syncDir(filepath.Dir(w.path))
	w.f.Close()
	w.f = f
	w.size = size
	w.records = kept
	// Frames surviving the rewrite were durable before it (the checkpoint
	// fsynced); the rewritten file was fsynced above, so the horizon holds.
	w.written = w.next - 1
	w.synced = w.next - 1
	w.cond.Broadcast()
	return nil
}

// Close fsyncs (unless SyncOff) and closes the log.
func (w *wal) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	var err error
	if w.policy != SyncOff {
		err = w.waitSynced(w.written)
	}
	if w.stopTick != nil {
		close(w.stopTick)
	}
	w.closed = true
	cerr := w.f.Close()
	w.cond.Broadcast()
	w.mu.Unlock()
	if err != nil {
		return err
	}
	return cerr
}

// syncDir best-effort fsyncs a directory so a rename within it is durable.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
