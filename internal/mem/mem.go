// Package mem is the morsel-scratch arena underneath the CPU kernel
// layers: size-classed, sync.Pool-backed buffers for position lists,
// candidate codes, selection vectors and group scratch, plus a per-worker
// bump-allocated Scratch that morsel loops reuse across the morsels one
// worker claims.
//
// The paper's thesis — eliminate waste by touching only the bits a query
// needs — is applied here to transient host memory: without the arena,
// every morsel of every query allocates fresh slices and GC pressure grows
// linearly with traffic. With it, the hot kernels run at zero allocations
// per operation in steady state.
//
// Ownership discipline (DESIGN.md §13):
//
//   - a kernel that returns a pooled buffer transfers ownership to its
//     caller; whoever consumes the buffer (filters it away, merges it into
//     another) releases it with Put;
//   - losing a pooled buffer is always safe — it is an ordinary heap slice
//     and the GC reclaims it; the pool just misses later. The only invalid
//     move is releasing a buffer something still references;
//   - Scratch buffers are valid only until the worker's next morsel: they
//     must never escape the morsel callback;
//   - buffers handed to the user (result rows) and snapshot-owned storage
//     are never pooled.
//
// SetPooling(false) turns every Get into a plain make and every Put into a
// no-op, which is how the equivalence property tests prove pooled and
// unpooled executions byte-identical.
package mem

import (
	"sync"
	"sync/atomic"
)

// Size classes are powers of two from 1<<minClassBits to 1<<maxClassBits
// elements. Requests above the largest class fall through to plain make
// (and count as misses); tiny requests round up to the smallest class.
const (
	minClassBits = 6  // 64 elements
	maxClassBits = 21 // 2M elements — covers the largest morsel outputs
	nClasses     = maxClassBits - minClassBits + 1
)

var pooling atomic.Bool

func init() { pooling.Store(true) }

// SetPooling toggles the arena globally and returns the previous setting.
// The equivalence tests run both settings and require byte-identical
// results and bit-identical meters.
func SetPooling(on bool) bool { return pooling.Swap(on) }

// Pooling reports whether the arena is active.
func Pooling() bool { return pooling.Load() }

// PoolStats counts arena traffic: Gets served (Hits from a pool, Misses
// falling through to make) and Puts accepted back.
type PoolStats struct {
	Hits, Misses, Puts uint64
}

var stats struct {
	hits, misses, puts atomic.Uint64
}

// Stats returns the process-wide arena counters.
func Stats() PoolStats {
	return PoolStats{
		Hits:   stats.hits.Load(),
		Misses: stats.misses.Load(),
		Puts:   stats.puts.Load(),
	}
}

// classFor returns the smallest class whose capacity holds n, or -1 when n
// exceeds the largest class.
func classFor(n int) int {
	c := 0
	for n > 1<<(minClassBits+c) {
		c++
		if c >= nClasses {
			return -1
		}
	}
	return c
}

// putClassFor returns the largest class whose capacity is <= c (so a
// recycled buffer always satisfies the Gets of its class), or -1 when the
// buffer is too small to pool.
func putClassFor(c int) int {
	k := -1
	for i := 0; i < nClasses; i++ {
		if c >= 1<<(minClassBits+i) {
			k = i
		}
	}
	return k
}

// box carries a slice through a sync.Pool. Boxes themselves are pooled so
// the Get/Put cycle allocates nothing in steady state: Get frees its box
// into the box pool, Put takes one back.
type box[T any] struct{ s []T }

// Pool is a size-classed free list of []T buffers. The zero value is ready
// to use; distinct element types declare their own package-level instance.
type Pool[T any] struct {
	classes [nClasses]sync.Pool
	boxes   sync.Pool
}

// Get returns a buffer with len 0 and cap >= n. The contents of the
// underlying array are unspecified — callers must append or overwrite.
func (p *Pool[T]) Get(n int) []T {
	if n < 0 {
		n = 0
	}
	c := classFor(n)
	if c < 0 || !pooling.Load() {
		stats.misses.Add(1)
		return make([]T, 0, n)
	}
	if b, ok := p.classes[c].Get().(*box[T]); ok {
		s := b.s[:0]
		b.s = nil
		p.boxes.Put(b)
		stats.hits.Add(1)
		return s
	}
	stats.misses.Add(1)
	return make([]T, 0, 1<<(minClassBits+c))
}

// GetN returns a buffer of len n (cap >= n) with unspecified contents.
func (p *Pool[T]) GetN(n int) []T {
	return p.Get(n)[:n]
}

// Put recycles a buffer. The caller must not touch s afterwards; nothing
// may still reference it. Buffers that are nil, too small, or oversized
// for the class table are dropped for the GC.
func (p *Pool[T]) Put(s []T) {
	if !pooling.Load() {
		return
	}
	c := putClassFor(cap(s))
	if c < 0 {
		return
	}
	b, ok := p.boxes.Get().(*box[T])
	if !ok {
		b = new(box[T])
	}
	b.s = s[:0]
	p.classes[c].Put(b)
	stats.puts.Add(1)
}

// Shared pools for the element types the kernel layers traffic in.
// Packages with their own element types (e.g. bat.OID) declare their own
// Pool instance next to the type.
var (
	U64   Pool[uint64] // candidate codes, bit-packed decode scratch
	I64   Pool[int64]  // values, aggregate partials
	Ints  Pool[int]    // selection vectors, morsel counts
	U32   Pool[uint32] // tuple IDs
	Bools Pool[bool]   // seen flags for extrema partials
)

// Scratch is one worker's morsel-local scratch: a bump allocator over
// typed backing arrays that is reset at every morsel and pooled across
// queries. Buffers carved from it are valid only until the next Reset —
// they must never escape the morsel callback that took them.
type Scratch struct {
	u64  []uint64
	u64n int
	i64  []int64
	i64n int
	ints []int
	intn int
}

var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// GetScratch takes a worker scratch from the pool.
func GetScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// PutScratch returns a worker scratch to the pool.
func PutScratch(s *Scratch) {
	s.Reset()
	scratchPool.Put(s)
}

// Reset invalidates every buffer previously carved from the scratch.
func (s *Scratch) Reset() { s.u64n, s.i64n, s.intn = 0, 0, 0 }

// U64 carves n uint64s with unspecified contents.
func (s *Scratch) U64(n int) []uint64 {
	if s.u64n+n > len(s.u64) {
		grown := make([]uint64, growTo(s.u64n+n))
		copy(grown, s.u64[:s.u64n])
		s.u64 = grown
	}
	out := s.u64[s.u64n : s.u64n+n]
	s.u64n += n
	return out
}

// I64 carves n int64s with unspecified contents.
func (s *Scratch) I64(n int) []int64 {
	if s.i64n+n > len(s.i64) {
		grown := make([]int64, growTo(s.i64n+n))
		copy(grown, s.i64[:s.i64n])
		s.i64 = grown
	}
	out := s.i64[s.i64n : s.i64n+n]
	s.i64n += n
	return out
}

// Ints carves n ints with unspecified contents.
func (s *Scratch) Ints(n int) []int {
	if s.intn+n > len(s.ints) {
		grown := make([]int, growTo(s.intn+n))
		copy(grown, s.ints[:s.intn])
		s.ints = grown
	}
	out := s.ints[s.intn : s.intn+n]
	s.intn += n
	return out
}

// growTo rounds a scratch backing array up to the next power of two so
// repeated carves converge instead of reallocating per morsel.
func growTo(n int) int {
	c := 1 << minClassBits
	for c < n {
		c <<= 1
	}
	return c
}
