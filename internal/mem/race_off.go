//go:build !race

package mem

// RaceEnabled reports whether the race detector is active. See race_on.go.
const RaceEnabled = false
