//go:build race

package mem

// RaceEnabled reports whether the race detector is active. Under -race,
// sync.Pool deliberately drops a fraction of Puts, so steady-state
// zero-allocation guards cannot assert an exact zero; they still run the
// kernels for aliasing coverage and assert only in normal builds.
const RaceEnabled = true
