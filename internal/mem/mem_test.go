package mem

import (
	"sync"
	"testing"
)

func TestGetNReturnsRequestedLength(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 1000, 1 << 21} {
		s := U64.GetN(n)
		if len(s) != n {
			t.Fatalf("GetN(%d): len %d", n, len(s))
		}
		if cap(s) < n {
			t.Fatalf("GetN(%d): cap %d", n, cap(s))
		}
		U64.Put(s)
	}
}

func TestOversizeFallsThrough(t *testing.T) {
	n := (1 << maxClassBits) + 1
	s := Ints.GetN(n)
	if len(s) != n {
		t.Fatalf("oversize GetN: len %d want %d", len(s), n)
	}
	Ints.Put(s) // dropped for the GC, must not panic
}

func TestPutGetRecycles(t *testing.T) {
	s := I64.GetN(100)
	p0 := &s[:1][0]
	I64.Put(s)
	// The recycled buffer serves the next same-class Get. sync.Pool gives
	// no hard guarantee, but single-goroutine put-then-get is stable in
	// practice; tolerate a miss rather than flake.
	g := I64.GetN(100)
	if &g[:1][0] != p0 {
		t.Log("pool did not serve the recycled buffer (GC ran?)")
	}
	I64.Put(g)
}

func TestSetPoolingOff(t *testing.T) {
	prev := SetPooling(false)
	defer SetPooling(prev)
	s := U64.GetN(64)
	p0 := &s[:1][0]
	U64.Put(s)
	g := U64.GetN(64)
	if &g[:1][0] == p0 {
		t.Fatal("pooling disabled but buffer was recycled")
	}
}

func TestGetPutZeroAlloc(t *testing.T) {
	// Warm the class and the box pool.
	for i := 0; i < 10; i++ {
		U64.Put(U64.GetN(1024))
	}
	if n := testing.AllocsPerRun(200, func() {
		b := U64.GetN(1024)
		U64.Put(b)
	}); n != 0 {
		if RaceEnabled {
			t.Skipf("%.1f allocs/op under -race (sync.Pool drops Puts); strict guard runs in normal builds", n)
		}
		t.Fatalf("Get/Put cycle allocates %.1f/op in steady state", n)
	}
}

func TestStatsAdvance(t *testing.T) {
	before := Stats()
	b := Ints.GetN(64)
	Ints.Put(b)
	Ints.Put(Ints.GetN(64))
	after := Stats()
	if gets := (after.Hits + after.Misses) - (before.Hits + before.Misses); gets < 2 {
		t.Fatalf("expected >=2 gets recorded, got %d", gets)
	}
	if after.Puts-before.Puts < 2 {
		t.Fatalf("expected >=2 puts recorded, got %d", after.Puts-before.Puts)
	}
}

func TestScratchCarveAndReset(t *testing.T) {
	s := GetScratch()
	defer PutScratch(s)
	a := s.U64(100)
	if len(a) != 100 {
		t.Fatalf("carve len %d", len(a))
	}
	b := s.U64(50)
	if &a[0] == &b[0] {
		t.Fatal("second carve aliases the first")
	}
	// The backing array has converged by now: identical carve sequences
	// after a Reset must reuse it without reallocating.
	s.Reset()
	c := s.U64(100)
	s.Reset()
	c2 := s.U64(100)
	if &c[0] != &c2[0] {
		t.Fatal("carve after Reset did not reuse the backing array")
	}
	if len(s.I64(10)) != 10 || len(s.Ints(10)) != 10 {
		t.Fatal("typed carves broken")
	}
}

func TestPoolConcurrent(t *testing.T) {
	// Race-detector exercise: many goroutines hammer the shared pools.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				b := U64.GetN(64 + (g+i)%4096)
				for j := range b {
					b[j] = uint64(g)
				}
				U64.Put(b)
				s := GetScratch()
				_ = s.Ints(128)
				PutScratch(s)
			}
		}(g)
	}
	wg.Wait()
}
