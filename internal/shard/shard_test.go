package shard

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bat"
	"repro/internal/device"
	"repro/internal/store"
)

func TestPartNameRoundTrip(t *testing.T) {
	cases := []struct {
		table string
		idx   int
	}{
		{"trips", 0},
		{"trips", 7},
		{"trips", 10},
		{"a.p1", 2}, // parent name that itself looks like a partition
	}
	for _, c := range cases {
		name := PartName(c.table, c.idx)
		table, idx, ok := ParsePartName(name)
		if !ok || table != c.table || idx != c.idx {
			t.Fatalf("round trip %q: got (%q, %d, %v)", name, table, idx, ok)
		}
	}
	for _, bad := range []string{"trips", "trips.q1", ".p1", "trips.p", "trips.p01", "trips.p-1", "trips.pX"} {
		if _, _, ok := ParsePartName(bad); ok {
			t.Fatalf("ParsePartName(%q) unexpectedly ok", bad)
		}
	}
}

func TestSpecValidate(t *testing.T) {
	if err := (Spec{Kind: Hash, Col: "id", N: 4}).Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	for _, bad := range []Spec{
		{Kind: Hash, Col: "", N: 4},
		{Kind: Hash, Col: "id", N: 0},
		{Kind: Hash, Col: "id", N: MaxPartitions + 1},
		{Kind: Kind(9), Col: "id", N: 4},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("spec %+v unexpectedly valid", bad)
		}
	}
}

func TestRouteBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, kind := range []Kind{Hash, Range} {
		for _, n := range []int{1, 2, 7, 64} {
			s := Spec{Kind: kind, Col: "v", N: n}
			for i := 0; i < 2000; i++ {
				v := rng.Int63() - rng.Int63()
				p := s.Route(v)
				if p < 0 || p >= n {
					t.Fatalf("%s n=%d: Route(%d) = %d out of range", kind, n, v, p)
				}
				if p != s.Route(v) {
					t.Fatalf("%s n=%d: Route(%d) not deterministic", kind, n, v)
				}
			}
		}
	}
}

func TestRangeRouteOrderPreserving(t *testing.T) {
	s := Spec{Kind: Range, Col: "v", N: 7}
	rng := rand.New(rand.NewSource(9))
	prev := int64(-1 << 62)
	prevPart := s.Route(prev)
	for i := 0; i < 5000; i++ {
		v := prev + rng.Int63n(1<<50)
		p := s.Route(v)
		if p < prevPart {
			t.Fatalf("range routing not monotonic: Route(%d)=%d after Route(%d)=%d", v, p, prev, prevPart)
		}
		prev, prevPart = v, p
	}
	// The full domain must cover every stripe.
	seen := make(map[int]bool)
	for i := 0; i < s.N; i++ {
		step := int64(1) << 61
		seen[s.Route(int64(-4+i)*step)] = true
	}
	if len(seen) < 2 {
		t.Fatalf("range routing collapsed onto %d stripes", len(seen))
	}
}

func TestHashRouteSpread(t *testing.T) {
	s := Spec{Kind: Hash, Col: "v", N: 7}
	counts := make([]int, s.N)
	for v := int64(0); v < 7000; v++ {
		counts[s.Route(v)]++
	}
	for i, c := range counts {
		if c < 500 || c > 1500 {
			t.Fatalf("hash spread skewed: partition %d holds %d of 7000", i, c)
		}
	}
}

func newPartTable(t *testing.T, name string) *store.Table {
	t.Helper()
	defs := []store.ColumnDef{{Name: "id", Scale: 1, Width: bat.Width32}, {Name: "v", Scale: 1, Width: bat.Width32}}
	tab, err := store.New(name, defs, nil, device.PaperSystem())
	if err != nil {
		t.Fatalf("store.New: %v", err)
	}
	return tab
}

func TestPartitionedSplit(t *testing.T) {
	spec := Spec{Kind: Hash, Col: "id", N: 3}
	parts := make([]*store.Table, spec.N)
	for i := range parts {
		parts[i] = newPartTable(t, PartName("trips", i))
	}
	p, err := NewPartitioned("trips", spec, parts)
	if err != nil {
		t.Fatalf("NewPartitioned: %v", err)
	}
	var rows [][]int64
	for i := int64(0); i < 100; i++ {
		rows = append(rows, []int64{i, i * 3})
	}
	split := p.Split(rows)
	total := 0
	for idx, group := range split {
		total += len(group)
		for _, row := range group {
			if got := p.Route(row); got != idx {
				t.Fatalf("row %v split into %d but routes to %d", row, idx, got)
			}
		}
		// Order within a partition preserves input order.
		for j := 1; j < len(group); j++ {
			if group[j][0] <= group[j-1][0] {
				t.Fatalf("partition %d reordered rows: %v after %v", idx, group[j], group[j-1])
			}
		}
	}
	if total != len(rows) {
		t.Fatalf("split dropped rows: %d of %d", total, len(rows))
	}

	if _, err := NewPartitioned("trips", Spec{Kind: Hash, Col: "missing", N: 3}, parts); err == nil {
		t.Fatalf("NewPartitioned accepted a partition column outside the schema")
	}
}

// TestRangeSlabPruneInverse proves Slab is the exact inverse of Range
// routing: a value routes to partition i if and only if it lies inside
// Slab(i). Partition pruning relies on this equivalence to skip slabs
// without ever dropping a routed row.
func TestRangeSlabPruneInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, n := range []int{1, 2, 3, 6, 7, 64, MaxPartitions} {
		spec := Spec{Kind: Range, Col: "v", N: n}
		// Slabs tile the whole signed domain in order, without gaps.
		prev := int64(math.MinInt64) // expected lo of the next slab
		for i := 0; i < n; i++ {
			lo, hi, ok := spec.Slab(i)
			if !ok {
				t.Fatalf("n=%d: Slab(%d) not ok", n, i)
			}
			if lo != prev {
				t.Fatalf("n=%d: Slab(%d) starts at %d, want %d (gap or overlap)", n, i, lo, prev)
			}
			if hi < lo {
				t.Fatalf("n=%d: Slab(%d) = [%d, %d] inverted", n, i, lo, hi)
			}
			// Slab endpoints route back to their own partition.
			for _, v := range []int64{lo, hi} {
				if got := spec.Route(v); got != i {
					t.Fatalf("n=%d: Route(%d) = %d, want %d (Slab(%d) endpoint)", n, v, got, i, i)
				}
			}
			if hi < math.MaxInt64 {
				prev = hi + 1
			}
		}
		if _, _, last := spec.Slab(n - 1); !last {
			t.Fatalf("n=%d: last slab missing", n)
		}
		if lo, hi, _ := spec.Slab(n - 1); lo > math.MaxInt64 || hi != math.MaxInt64 {
			t.Fatalf("n=%d: last slab [%d, %d] does not end the domain", n, lo, hi)
		}
		// Random values: routed partition's slab contains the value.
		for k := 0; k < 2000; k++ {
			v := int64(rng.Uint64())
			i := spec.Route(v)
			lo, hi, ok := spec.Slab(i)
			if !ok || v < lo || v > hi {
				t.Fatalf("n=%d: Route(%d) = %d but Slab = [%d, %d] ok=%v", n, v, i, lo, hi, ok)
			}
		}
	}
	// Hash specs and out-of-range indices never produce slabs.
	h := Spec{Kind: Hash, Col: "v", N: 4}
	if _, _, ok := h.Slab(0); ok {
		t.Fatal("hash spec produced a slab")
	}
	r := Spec{Kind: Range, Col: "v", N: 4}
	for _, i := range []int{-1, 4} {
		if _, _, ok := r.Slab(i); ok {
			t.Fatalf("Slab(%d) ok for a 4-way spec", i)
		}
	}
}
