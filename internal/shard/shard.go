// Package shard horizontally partitions a fact table into N independent
// store.Tables. Fig 11's memory-wall argument bounds a single co-processor's
// throughput by the contention on one device's transfer budget; the way past
// one device's wall is N partitions with N independent device streams.
//
// A partitioned table is a thin wrapper: the partition spec (hash or range
// on one column) plus N ordinary store.Tables named <table>.p<i>. Every
// partition keeps its own immutable bit-sliced base, its own delta and
// deletion bitmap, its own merge threshold/lifecycle, its own WAL checkpoint
// LSN and segment file, and — during execution — its own simulated device
// stream. Nothing below this package knows about partitions: kernels,
// merges, checkpoints and segments all operate on plain tables.
//
// Routing is deterministic and data-independent (it depends only on the
// spec and the routed value), so WAL replay re-routes inserts identically
// and a partitioned table rebuilt from its log is bit-identical to the
// original.
package shard

import (
	"fmt"
	"math"
	"math/bits"
	"strconv"
	"strings"

	"repro/internal/store"
)

// Kind selects the partitioning function.
type Kind int

const (
	// Hash spreads rows by a multiplicative hash of the column value:
	// uniform placement regardless of the value distribution.
	Hash Kind = iota
	// Range splits the column's signed 64-bit domain into N equal-width,
	// order-preserving stripes — the natural choice for the anchor column,
	// where range predicates then touch a subset of partitions.
	Range
)

func (k Kind) String() string {
	switch k {
	case Hash:
		return "hash"
	case Range:
		return "range"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind parses "hash" or "range".
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(s) {
	case "hash":
		return Hash, nil
	case "range":
		return Range, nil
	default:
		return Hash, fmt.Errorf("shard: unknown partition kind %q (hash, range)", s)
	}
}

// MaxPartitions bounds the fan-out: each partition costs a table, a device
// stream, a WAL checkpoint horizon and a segment file, so an absurd count
// is almost certainly a typo.
const MaxPartitions = 1024

// Spec declares how a table is partitioned.
type Spec struct {
	Kind Kind
	Col  string // the partitioning column
	N    int    // number of partitions, >= 1
}

// Validate rejects malformed specs.
func (s Spec) Validate() error {
	if s.Col == "" {
		return fmt.Errorf("shard: partition column must be named")
	}
	if s.N < 1 {
		return fmt.Errorf("shard: PARTITIONS %d: need at least 1", s.N)
	}
	if s.N > MaxPartitions {
		return fmt.Errorf("shard: PARTITIONS %d exceeds the maximum of %d", s.N, MaxPartitions)
	}
	if s.Kind != Hash && s.Kind != Range {
		return fmt.Errorf("shard: unknown partition kind %d", int(s.Kind))
	}
	return nil
}

func (s Spec) String() string {
	return fmt.Sprintf("partition by %s(%s) partitions %d", s.Kind, s.Col, s.N)
}

// fibMul is the 64-bit Fibonacci-hashing multiplier (2^64 / phi, odd).
const fibMul = 0x9E3779B97F4A7C15

// Route returns the partition index for a column value.
func (s Spec) Route(v int64) int {
	if s.N <= 1 {
		return 0
	}
	switch s.Kind {
	case Range:
		// Bias the signed value into unsigned order, then take the high
		// word of u*N — an order-preserving map of the full 64-bit domain
		// onto N equal-width stripes with no division and no overflow.
		u := uint64(v) ^ (1 << 63)
		hi, _ := bits.Mul64(u, uint64(s.N))
		return int(hi)
	default:
		return int((uint64(v) * fibMul) % uint64(s.N))
	}
}

// Slab inverts Range routing: the closed interval [lo, hi] of column
// values that Route maps onto partition i. Filters on the partitioning
// column that exclude a whole slab let the planner skip that partition
// before scattering. ok is false for Hash specs (no contiguous value
// interval routes to one hash partition) and out-of-range indices.
func (s Spec) Slab(i int) (lo, hi int64, ok bool) {
	if s.Kind != Range || i < 0 || i >= s.N {
		return 0, 0, false
	}
	if s.N == 1 {
		return math.MinInt64, math.MaxInt64, true
	}
	// Route sends biased value u to int((u*N) >> 64), so partition i
	// owns u in [ceil(i*2^64/N), ceil((i+1)*2^64/N) - 1]; Div64(k, 0, N)
	// computes floor(k*2^64/N) exactly.
	n := uint64(s.N)
	ceilDiv := func(k uint64) uint64 {
		q, r := bits.Div64(k, 0, n)
		if r > 0 {
			q++
		}
		return q
	}
	loU := ceilDiv(uint64(i))
	hiU := ^uint64(0)
	if i < s.N-1 {
		hiU = ceilDiv(uint64(i+1)) - 1
	}
	return int64(loU ^ (1 << 63)), int64(hiU ^ (1 << 63)), true
}

// PartName returns the store.Table name of partition i: <table>.p<i>.
// Segment files derive from this name unchanged (<table>.p<i>.<lsn>.seg),
// so each partition checkpoints independently.
func PartName(table string, i int) string {
	return table + ".p" + strconv.Itoa(i)
}

// ParsePartName splits a partition table name into its parent table and
// partition index. It accepts exactly the names PartName produces.
func ParsePartName(name string) (table string, idx int, ok bool) {
	i := strings.LastIndex(name, ".p")
	if i <= 0 || i+2 >= len(name) {
		return "", 0, false
	}
	digits := name[i+2:]
	if len(digits) > 1 && digits[0] == '0' {
		return "", 0, false // PartName never zero-pads
	}
	n, err := strconv.Atoi(digits)
	if err != nil || n < 0 {
		return "", 0, false
	}
	return name[:i], n, true
}

// Partitioned binds a spec to its resolved partition tables. Partition 0 is
// the schema authority: all partitions are created from one column list and
// DDL (decompose, FK refusal) fans out to every partition, so the schemas
// never diverge.
type Partitioned struct {
	Name   string
	Spec   Spec
	Parts  []*store.Table
	colIdx int // index of Spec.Col in the shared schema
}

// NewPartitioned wraps spec and its partition tables, resolving the routing
// column against the shared schema.
func NewPartitioned(name string, spec Spec, parts []*store.Table) (*Partitioned, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if len(parts) != spec.N {
		return nil, fmt.Errorf("shard: %s declares %d partitions but has %d tables", name, spec.N, len(parts))
	}
	idx, err := parts[0].ColIndex(spec.Col)
	if err != nil {
		return nil, fmt.Errorf("shard: %s: partition column %s is not in the schema", name, spec.Col)
	}
	return &Partitioned{Name: name, Spec: spec, Parts: parts, colIdx: idx}, nil
}

// Schema returns the shared schema (partition 0's).
func (p *Partitioned) Schema() *store.Table { return p.Parts[0] }

// Route returns the partition index for one row.
func (p *Partitioned) Route(row []int64) int {
	if p.colIdx >= len(row) {
		return 0
	}
	return p.Spec.Route(row[p.colIdx])
}

// Split groups rows by destination partition, preserving the input order
// within each partition — WAL replay re-splits identically.
func (p *Partitioned) Split(rows [][]int64) [][][]int64 {
	out := make([][][]int64, p.Spec.N)
	for _, row := range rows {
		i := p.Route(row)
		out[i] = append(out[i], row)
	}
	return out
}

// Len returns the total live row count across partitions.
func (p *Partitioned) Len() int {
	n := 0
	for _, t := range p.Parts {
		n += t.Len()
	}
	return n
}
