package bat

import (
	"testing"
	"testing/quick"
)

func TestNewDense(t *testing.T) {
	b := NewDense([]int64{5, 6, 7}, Width32)
	if b.Len() != 3 {
		t.Fatalf("Len = %d, want 3", b.Len())
	}
	if !b.DenseHead() {
		t.Error("expected dense head")
	}
	for i := 0; i < 3; i++ {
		if b.Head(i) != OID(i) {
			t.Errorf("Head(%d) = %d, want %d", i, b.Head(i), i)
		}
		if b.Tail(i) != int64(5+i) {
			t.Errorf("Tail(%d) = %d, want %d", i, b.Tail(i), 5+i)
		}
	}
}

func TestNewDenseAt(t *testing.T) {
	b := NewDenseAt(100, []int64{1, 2}, Width32)
	if b.Head(0) != 100 || b.Head(1) != 101 {
		t.Errorf("Head = %d,%d, want 100,101", b.Head(0), b.Head(1))
	}
	if b.HSeq() != 100 {
		t.Errorf("HSeq = %d, want 100", b.HSeq())
	}
}

func TestNewMaterialized(t *testing.T) {
	b := NewMaterialized([]OID{9, 3, 7}, []int64{90, 30, 70}, Width32)
	if b.DenseHead() {
		t.Error("expected materialized head")
	}
	if b.Head(1) != 3 || b.Tail(1) != 30 {
		t.Errorf("position 1 = (%d,%d), want (3,30)", b.Head(1), b.Tail(1))
	}
}

func TestNewMaterializedLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched head/tail did not panic")
		}
	}()
	NewMaterialized([]OID{1}, []int64{1, 2}, Width32)
}

func TestUnsupportedWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("width 3 did not panic")
		}
	}()
	NewDense(nil, 3)
}

func TestBytes(t *testing.T) {
	b := NewDense(make([]int64, 10), Width32)
	if b.TailBytes() != 40 {
		t.Errorf("TailBytes = %d, want 40", b.TailBytes())
	}
	if b.HeadBytes() != 0 {
		t.Errorf("dense HeadBytes = %d, want 0", b.HeadBytes())
	}
	m := b.MaterializeHead()
	if m.HeadBytes() != 40 {
		t.Errorf("materialized HeadBytes = %d, want 40", m.HeadBytes())
	}
}

func TestMaterializeHead(t *testing.T) {
	b := NewDenseAt(10, []int64{1, 2, 3}, Width32)
	m := b.MaterializeHead()
	if m.DenseHead() {
		t.Fatal("MaterializeHead left head dense")
	}
	for i := 0; i < 3; i++ {
		if m.Head(i) != b.Head(i) {
			t.Errorf("Head(%d) = %d, want %d", i, m.Head(i), b.Head(i))
		}
	}
	// Idempotent on already-materialized BATs.
	if m2 := m.MaterializeHead(); m2 != m {
		t.Error("MaterializeHead allocated a copy for materialized BAT")
	}
}

func TestSlice(t *testing.T) {
	b := NewDenseAt(5, []int64{10, 11, 12, 13, 14}, Width32)
	s := b.Slice(1, 4)
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if s.Head(0) != 6 || s.Tail(0) != 11 {
		t.Errorf("slice[0] = (%d,%d), want (6,11)", s.Head(0), s.Tail(0))
	}

	m := b.MaterializeHead().Slice(2, 5)
	if m.Head(0) != 7 || m.Tail(0) != 12 {
		t.Errorf("materialized slice[0] = (%d,%d), want (7,12)", m.Head(0), m.Tail(0))
	}
}

func TestSliceOutOfRangePanics(t *testing.T) {
	b := NewDense([]int64{1, 2, 3}, Width32)
	defer func() {
		if recover() == nil {
			t.Error("bad slice did not panic")
		}
	}()
	b.Slice(2, 5)
}

func TestProject(t *testing.T) {
	b := NewDense([]int64{100, 200, 300, 400}, Width32)
	p := b.Project([]OID{3, 0, 2})
	want := []int64{400, 100, 300}
	if p.Len() != 3 {
		t.Fatalf("Len = %d, want 3", p.Len())
	}
	for i, w := range want {
		if p.Tail(i) != w {
			t.Errorf("Project[%d] = %d, want %d", i, p.Tail(i), w)
		}
	}
	if p.Width() != b.Width() {
		t.Errorf("Project width = %d, want %d", p.Width(), b.Width())
	}
}

func TestMinMax(t *testing.T) {
	b := NewDense([]int64{5, -3, 12, 0}, Width32)
	lo, hi := b.MinMax()
	if lo != -3 || hi != 12 {
		t.Errorf("MinMax = (%d,%d), want (-3,12)", lo, hi)
	}
}

func TestMinMaxEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MinMax on empty BAT did not panic")
		}
	}()
	NewDense(nil, Width32).MinMax()
}

func TestCheckSorted(t *testing.T) {
	if !NewDense([]int64{1, 2, 2, 3}, Width32).CheckSorted() {
		t.Error("sorted tail reported unsorted")
	}
	if NewDense([]int64{2, 1}, Width32).CheckSorted() {
		t.Error("unsorted tail reported sorted")
	}
}

func TestCloneIndependence(t *testing.T) {
	b := NewMaterialized([]OID{1, 2}, []int64{10, 20}, Width32).SetSorted(true).SetKey(true)
	c := b.Clone()
	c.Tails()[0] = 99
	c.Heads()[0] = 99
	if b.Tail(0) != 10 || b.Head(0) != 1 {
		t.Error("mutating clone changed original")
	}
	if !c.Sorted() || !c.Key() {
		t.Error("clone lost properties")
	}
}

func TestProjectMatchesManualLookup(t *testing.T) {
	f := func(vals []int64, rawIDs []uint8) bool {
		if len(vals) == 0 {
			return true
		}
		b := NewDense(vals, Width64)
		ids := make([]OID, len(rawIDs))
		for i, r := range rawIDs {
			ids[i] = OID(int(r) % len(vals))
		}
		p := b.Project(ids)
		for i, id := range ids {
			if p.Tail(i) != vals[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	s := NewDense([]int64{1}, Width32).String()
	if s == "" {
		t.Error("empty String()")
	}
}
