// Package bat implements Binary Association Tables, the columnar storage
// substrate of the reproduced system (§V-C of the paper).
//
// A BAT is a pair of arrays mapping tuple IDs (the head) to attribute
// values (the tail). When the tuple IDs are dense — equi-distant and sorted,
// as in persistent attributes — they are inferred from the position in the
// array and not materialized; intermediate results carry materialized heads
// to keep approximations and residuals positionally aligned.
//
// The canonical tail value type is int64. Narrower physical types (the
// 32-bit integers of the benchmarks, dictionary codes, fixed-point
// decimals) declare their on-device width via the Width field, which is the
// number the device cost model charges for capacity and bandwidth; the Go
// in-memory representation is an implementation detail of the simulator.
package bat

import (
	"fmt"
	"sort"

	"repro/internal/mem"
)

// OID is a tuple identifier. MonetDB calls these "oids"; they are dense
// positions into the base table. 32 bits cover every data set in the paper
// (up to 250 M tuples) and match the candidate-list transfer sizes the cost
// model charges across the PCI-E bus.
type OID uint32

// OIDPool is the shared arena for OID lists: candidate IDs, position
// lists, selection outputs. Declared next to the type (mem's convention)
// so every kernel layer recycles through one free list.
var OIDPool mem.Pool[OID]

// Width constants for the physical tail value sizes used in the paper's
// workloads.
const (
	Width8  = 1 // dictionary codes, flags
	Width16 = 2
	Width32 = 4 // the benchmark integers, dates, fixed-point coordinates
	Width64 = 8
)

// BAT is a binary association table: head (tuple IDs) and tail (values).
type BAT struct {
	hseq  OID   // head seqbase when head is nil (dense head)
	head  []OID // nil => dense head starting at hseq
	tail  []int64
	width int // physical bytes per tail value (cost accounting)

	sorted bool // tail is non-decreasing
	key    bool // tail values are unique
}

// NewDense returns a BAT with a dense head starting at 0 over the given
// tail. The tail is used directly, not copied.
func NewDense(tail []int64, width int) *BAT {
	checkWidth(width)
	return &BAT{tail: tail, width: width}
}

// NewDenseAt is NewDense with an explicit head seqbase.
func NewDenseAt(hseq OID, tail []int64, width int) *BAT {
	checkWidth(width)
	return &BAT{hseq: hseq, tail: tail, width: width}
}

// NewMaterialized returns a BAT with an explicit (materialized) head.
// len(head) must equal len(tail); the slices are used directly.
func NewMaterialized(head []OID, tail []int64, width int) *BAT {
	checkWidth(width)
	if len(head) != len(tail) {
		panic(fmt.Sprintf("bat: head/tail length mismatch %d != %d", len(head), len(tail)))
	}
	return &BAT{head: head, tail: tail, width: width}
}

func checkWidth(w int) {
	switch w {
	case Width8, Width16, Width32, Width64:
	default:
		panic(fmt.Sprintf("bat: unsupported width %d", w))
	}
}

// Len returns the number of tuples.
func (b *BAT) Len() int { return len(b.tail) }

// Width returns the physical bytes per tail value.
func (b *BAT) Width() int { return b.width }

// TailBytes returns the physical tail footprint charged by the cost model.
func (b *BAT) TailBytes() int64 { return int64(len(b.tail)) * int64(b.width) }

// HeadBytes returns the physical head footprint: zero for dense heads,
// 4 bytes per materialized OID otherwise.
func (b *BAT) HeadBytes() int64 {
	if b.head == nil {
		return 0
	}
	return int64(len(b.head)) * 4
}

// DenseHead reports whether the head is dense (virtual).
func (b *BAT) DenseHead() bool { return b.head == nil }

// HSeq returns the head seqbase of a dense-headed BAT.
func (b *BAT) HSeq() OID { return b.hseq }

// Head returns the tuple ID at position i.
func (b *BAT) Head(i int) OID {
	if b.head == nil {
		return b.hseq + OID(i)
	}
	return b.head[i]
}

// Tail returns the value at position i.
func (b *BAT) Tail(i int) int64 { return b.tail[i] }

// Tails exposes the tail slice for bulk operators. Callers must not
// resize it.
func (b *BAT) Tails() []int64 { return b.tail }

// Heads exposes the materialized head slice, or nil for dense heads.
func (b *BAT) Heads() []OID { return b.head }

// MaterializeHead returns a BAT whose head is explicitly materialized.
// Dense-headed BATs get a freshly built head; already-materialized BATs are
// returned unchanged.
func (b *BAT) MaterializeHead() *BAT {
	if b.head != nil {
		return b
	}
	head := make([]OID, len(b.tail))
	for i := range head {
		head[i] = b.hseq + OID(i)
	}
	return &BAT{head: head, tail: b.tail, width: b.width, sorted: b.sorted, key: b.key}
}

// Slice returns the BAT restricted to positions [lo,hi).
func (b *BAT) Slice(lo, hi int) *BAT {
	if lo < 0 || hi > len(b.tail) || lo > hi {
		panic(fmt.Sprintf("bat: slice [%d,%d) out of range [0,%d)", lo, hi, len(b.tail)))
	}
	out := &BAT{tail: b.tail[lo:hi], width: b.width, sorted: b.sorted, key: b.key}
	if b.head == nil {
		out.hseq = b.hseq + OID(lo)
	} else {
		out.head = b.head[lo:hi]
	}
	return out
}

// SetSorted records the tail-sortedness property.
func (b *BAT) SetSorted(v bool) *BAT { b.sorted = v; return b }

// SetKey records the tail-uniqueness property.
func (b *BAT) SetKey(v bool) *BAT { b.key = v; return b }

// Sorted reports the recorded tail-sortedness property.
func (b *BAT) Sorted() bool { return b.sorted }

// Key reports the recorded tail-uniqueness property.
func (b *BAT) Key() bool { return b.key }

// CheckSorted scans the tail and records whether it is non-decreasing.
func (b *BAT) CheckSorted() bool {
	s := sort.SliceIsSorted(b.tail, func(i, j int) bool { return b.tail[i] < b.tail[j] })
	b.sorted = s
	return s
}

// Clone returns a deep copy.
func (b *BAT) Clone() *BAT {
	out := &BAT{hseq: b.hseq, width: b.width, sorted: b.sorted, key: b.key}
	out.tail = append([]int64(nil), b.tail...)
	if b.head != nil {
		out.head = append([]OID(nil), b.head...)
	}
	return out
}

// Project returns the values of b at the given positions as a new
// dense-headed BAT. This is the invisible (positional) join: head ids of
// the result are dense, the input ids address b positionally.
func (b *BAT) Project(ids []OID) *BAT {
	out := make([]int64, len(ids))
	for i, id := range ids {
		out[i] = b.tail[id]
	}
	return NewDense(out, b.width)
}

// MinMax returns the smallest and largest tail value. It panics on an
// empty BAT.
func (b *BAT) MinMax() (lo, hi int64) {
	if len(b.tail) == 0 {
		panic("bat: MinMax on empty BAT")
	}
	lo, hi = b.tail[0], b.tail[0]
	for _, v := range b.tail[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// String summarizes the BAT for diagnostics.
func (b *BAT) String() string {
	headKind := "dense"
	if b.head != nil {
		headKind = "materialized"
	}
	return fmt.Sprintf("BAT[%s head, %d tuples, width %d]", headKind, len(b.tail), b.width)
}
