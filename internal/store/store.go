// Package store is the mutable columnar storage subsystem underneath the
// query catalog. It extends the paper's read-only picture — load once,
// bitwise-decompose once, query forever — with a write path that keeps the
// GPU-resident approximation hot and cheap to maintain:
//
//   - each table is an immutable, bit-sliced **base segment** (one BAT per
//     column, plus the BWD decomposition of every column the user
//     decomposed: approximation on the device, residual on the host),
//   - plus an append-optimized, row-major **delta segment** holding freshly
//     ingested rows in host memory,
//   - plus a **deletion bitmap** over both, mirrored to the device for the
//     base range so approximate selections can discharge deleted rows
//     without a host round-trip.
//
// Reads are snapshot isolated: a reader pins a *Snapshot (one atomic load)
// and sees a frozen base segment, a frozen delta prefix and a frozen
// bitmap for its whole execution; writers never mutate pinned data — every
// write publishes a fresh snapshot with a bumped epoch. A merge compacts
// the delta (and any deletions) into a new base segment, re-decomposing
// and re-shipping only what actually changed: when the decomposition
// parameters of a column are unchanged and no base row moved, only the
// merged delta rows' approximation codes cross the PCI-E bus — the
// paper's "waste not" economics applied to the write path.
package store

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/bat"
	"repro/internal/bulk"
	"repro/internal/bwd"
	"repro/internal/device"
)

// ColumnDef types one column of a table: its name, fixed-point scale
// (1 for plain integers) and physical width in bytes (cost accounting).
type ColumnDef struct {
	Name  string
	Scale int64
	Width int
}

// Range is a closed-range predicate lo <= col <= hi used by DeleteWhere;
// open bounds use math.MinInt64 / math.MaxInt64 like the plan layer.
type Range struct {
	Col    string
	Lo, Hi int64
}

// ParseTypeScale maps a numeric column type name to its fixed-point scale:
// "int" is scale 1, "decimalN" (N fractional digits, 0..9) is 10^N. It is
// the one mapping shared by CREATE TABLE's type names and the CSV loader's
// schema syntax, so the two surfaces cannot drift.
func ParseTypeScale(typ string) (int64, error) {
	if typ == "int" {
		return 1, nil
	}
	if digits, ok := strings.CutPrefix(typ, "decimal"); ok {
		n, err := strconv.Atoi(digits)
		if err == nil && n >= 0 && n <= 9 {
			scale := int64(1)
			for i := 0; i < n; i++ {
				scale *= 10
			}
			return scale, nil
		}
	}
	return 0, fmt.Errorf("store: unsupported column type %q (int, decimal0..decimal9)", typ)
}

// schemaEpochs hands out globally unique table identities. A table created
// under a name previously used by a dropped table gets a fresh epoch, so
// cached bindings compiled against the old schema can be detected as stale.
var schemaEpochs atomic.Uint64

// segment is an immutable base segment: positionally aligned columns with
// their (optional) bitwise decompositions and (optional) pre-built
// foreign-key indexes. Once a segment is reachable from a published
// snapshot it is never mutated; updates clone it.
type segment struct {
	n    int
	cols []*bat.BAT
	decs []*bwd.Column   // nil per column when not decomposed
	fk   []*bulk.FKIndex // nil per column when no FK index was built
}

func (g *segment) clone() *segment {
	out := &segment{n: g.n}
	out.cols = append([]*bat.BAT(nil), g.cols...)
	out.decs = append([]*bwd.Column(nil), g.decs...)
	out.fk = append([]*bulk.FKIndex(nil), g.fk...)
	return out
}

// Snapshot is one immutable version of a table, pinned by readers for the
// duration of a query. All methods are safe for concurrent use.
type Snapshot struct {
	// Epoch is the table's data epoch when this snapshot was published;
	// every insert, delete, merge, decompose or index build bumps it.
	Epoch uint64

	t                   *Table
	base                *segment
	delta               []int64 // row-major, stride len(t.schema); frozen prefix
	deltaN              int
	del                 []uint64 // deletion bitmap over base.n + deltaN positions; nil = none
	liveBase, liveDelta int
}

// BaseLen returns the base-segment row count (including deleted rows).
func (s *Snapshot) BaseLen() int { return s.base.n }

// DeltaLen returns the number of delta rows visible to this snapshot
// (including deleted ones).
func (s *Snapshot) DeltaLen() int { return s.deltaN }

// Len returns the live row count (base + delta, minus deletions).
func (s *Snapshot) Len() int { return s.liveBase + s.liveDelta }

// LiveBase returns the live base-segment row count (base minus deletions).
func (s *Snapshot) LiveBase() int { return s.liveBase }

// LiveDelta returns the live delta row count.
func (s *Snapshot) LiveDelta() int { return s.liveDelta }

// BaseDeleted reports whether base row i is deleted.
func (s *Snapshot) BaseDeleted(i int) bool { return bitSet(s.del, i) }

// DeltaDeleted reports whether delta row j is deleted.
func (s *Snapshot) DeltaDeleted(j int) bool { return bitSet(s.del, s.base.n+j) }

// BaseDeletedCount returns the number of deleted base rows.
func (s *Snapshot) BaseDeletedCount() int { return s.base.n - s.liveBase }

// DeletedCount returns the total number of deleted rows.
func (s *Snapshot) DeletedCount() int {
	return (s.base.n - s.liveBase) + (s.deltaN - s.liveDelta)
}

// Segments reports how many physical segments the snapshot spans: the base
// segment plus, when the delta holds rows, the delta segment.
func (s *Snapshot) Segments() int {
	n := 1
	if s.deltaN > 0 {
		n++
	}
	return n
}

// Column returns the base-segment BAT of a column.
func (s *Snapshot) Column(name string) (*bat.BAT, error) {
	i, err := s.t.colIndex(name)
	if err != nil {
		return nil, err
	}
	return s.base.cols[i], nil
}

// Dec returns the bitwise decomposition of a column, or nil when the
// column was never decomposed.
func (s *Snapshot) Dec(name string) *bwd.Column {
	i, err := s.t.colIndex(name)
	if err != nil {
		return nil
	}
	return s.base.decs[i]
}

// FKIndex returns the pre-built foreign-key index over a column, or nil.
func (s *Snapshot) FKIndex(name string) *bulk.FKIndex {
	i, err := s.t.colIndex(name)
	if err != nil {
		return nil
	}
	return s.base.fk[i]
}

// DeltaValue returns delta row j's value for the column at schema index c.
func (s *Snapshot) DeltaValue(j, c int) int64 {
	return s.delta[j*len(s.t.schema)+c]
}

// DeltaBytes returns the physical footprint of the visible delta rows
// (row-major: a delta scan touches full rows).
func (s *Snapshot) DeltaBytes() int64 {
	return int64(s.deltaN) * s.t.rowBytes
}

// Table returns the mutable table this snapshot was taken from.
func (s *Snapshot) Table() *Table { return s.t }

// Morsel is one scan granule of a snapshot: a half-open row range [Lo, Hi)
// that lies entirely within a single physical segment (Delta reports
// which). Executors hand morsels to concurrent workers; because a morsel
// never straddles the base/delta edge, a worker reads one storage layout
// (bit-sliced columns or row-major delta) per granule.
type Morsel struct {
	Lo, Hi int
	Delta  bool
}

// Morsels splits the snapshot's rows (including deleted ones — the
// deletion bitmap is consulted per row, so ranges stay positional) into
// granules of at most chunk rows. Boundaries are aligned to 64-row
// multiples inside each segment so that concurrent workers probing the
// deletion bitmap touch disjoint bitmap words, and they never cross the
// base/delta segment edge. A chunk <= 0 defaults to 64k rows.
func (s *Snapshot) Morsels(chunk int) []Morsel {
	if chunk <= 0 {
		chunk = 64 << 10
	}
	// Round the granule up to a bitmap-word multiple.
	if chunk&63 != 0 {
		chunk = (chunk + 63) &^ 63
	}
	var out []Morsel
	for lo := 0; lo < s.base.n; lo += chunk {
		hi := lo + chunk
		if hi > s.base.n {
			hi = s.base.n
		}
		out = append(out, Morsel{Lo: lo, Hi: hi})
	}
	for lo := 0; lo < s.deltaN; lo += chunk {
		hi := lo + chunk
		if hi > s.deltaN {
			hi = s.deltaN
		}
		out = append(out, Morsel{Lo: lo, Hi: hi, Delta: true})
	}
	return out
}

// DeltaMorsels returns only the delta-segment granules of Morsels.
func (s *Snapshot) DeltaMorsels(chunk int) []Morsel {
	all := s.Morsels(chunk)
	out := all[:0]
	for _, m := range all {
		if m.Delta {
			out = append(out, m)
		}
	}
	return out
}

func bitSet(bits []uint64, i int) bool {
	w := i >> 6
	if w >= len(bits) {
		return false
	}
	return bits[w]&(1<<(uint(i)&63)) != 0
}

func setBit(bits []uint64, i int) { bits[i>>6] |= 1 << (uint(i) & 63) }

// Table is a mutable table: an atomically published current Snapshot plus
// the writer-side state (delta buffer, recorded decomposition bits, PK
// markers, counters) guarded by a mutex. Readers never take the mutex.
type Table struct {
	name        string
	schemaEpoch uint64
	schema      []ColumnDef
	colIdx      map[string]int
	rowBytes    int64
	sys         *device.System

	mu      sync.Mutex
	cur     atomic.Pointer[Snapshot]
	buf     []int64 // delta backing array; append-only between merges
	decBits []uint  // requested approx bits per column (0 = not decomposed)
	pkCols  []bool  // columns with a registered FK (primary-key) index
	epoch   uint64

	inserts, deletes               int64
	merges, autoMerges             int64
	mergeRows                      int64
	mergeShipBytes, mergeFullBytes int64
}

// New creates a table over the given schema. cols supplies the initial
// base-segment column BATs in schema order (all equal length); nil cols
// creates an empty table.
func New(name string, schema []ColumnDef, cols []*bat.BAT, sys *device.System) (*Table, error) {
	if len(schema) == 0 {
		return nil, fmt.Errorf("store: table %s has no columns", name)
	}
	if cols != nil && len(cols) != len(schema) {
		return nil, fmt.Errorf("store: table %s: %d columns for %d schema entries", name, len(cols), len(schema))
	}
	t := &Table{
		name:        name,
		schemaEpoch: schemaEpochs.Add(1),
		schema:      append([]ColumnDef(nil), schema...),
		colIdx:      make(map[string]int, len(schema)),
		sys:         sys,
		decBits:     make([]uint, len(schema)),
		pkCols:      make([]bool, len(schema)),
	}
	n := 0
	for i, def := range schema {
		if def.Name == "" {
			return nil, fmt.Errorf("store: table %s: empty column name", name)
		}
		if _, dup := t.colIdx[def.Name]; dup {
			return nil, fmt.Errorf("store: duplicate column %s.%s", name, def.Name)
		}
		if def.Scale < 1 {
			return nil, fmt.Errorf("store: column %s.%s has invalid scale %d", name, def.Name, def.Scale)
		}
		t.colIdx[def.Name] = i
		t.rowBytes += int64(def.Width)
		if cols != nil {
			if i == 0 {
				n = cols[i].Len()
			} else if cols[i].Len() != n {
				return nil, fmt.Errorf("store: column %s.%s has %d rows, table has %d", name, def.Name, cols[i].Len(), n)
			}
		}
	}
	seg := &segment{
		n:    n,
		cols: make([]*bat.BAT, len(schema)),
		decs: make([]*bwd.Column, len(schema)),
		fk:   make([]*bulk.FKIndex, len(schema)),
	}
	for i := range schema {
		if cols != nil {
			seg.cols[i] = cols[i]
		} else {
			seg.cols[i] = bat.NewDense([]int64{}, schema[i].Width)
		}
	}
	t.cur.Store(&Snapshot{t: t, base: seg, liveBase: n})
	return t, nil
}

// Restore rebuilds a table from persisted state: the base-segment columns,
// the (optional, per-column) restored decompositions, the recorded
// decomposition bit widths, and the FK-indexed column markers. It is the
// segment-load path of the durability subsystem — the table comes back
// exactly as a checkpoint captured it, with FK indexes rebuilt from the
// (strictly dense) key columns rather than deserialized. Delta rows are
// not part of a checkpoint; recovery replays them from the WAL tail via
// ordinary Insert/DeleteWhere calls.
func Restore(name string, schema []ColumnDef, cols []*bat.BAT, decs []*bwd.Column, decBits []uint, pkCols []bool, sys *device.System) (*Table, error) {
	if len(decs) != len(schema) || len(decBits) != len(schema) || len(pkCols) != len(schema) {
		return nil, fmt.Errorf("store: restore %s: per-column state does not match schema arity", name)
	}
	t, err := New(name, schema, cols, sys)
	if err != nil {
		return nil, err
	}
	s := t.cur.Load()
	seg := s.base.clone()
	for i := range schema {
		if d := decs[i]; d != nil {
			if d.Len() != seg.n {
				return nil, fmt.Errorf("store: restore %s.%s: decomposition covers %d rows, segment has %d", name, schema[i].Name, d.Len(), seg.n)
			}
			seg.decs[i] = d
		}
		t.decBits[i] = decBits[i]
		if !pkCols[i] {
			continue
		}
		var ix *bulk.FKIndex
		if strictlyDense(seg.cols[i].Tails()) {
			ix = bulk.BuildFKIndex(nil, 1, seg.cols[i].Tails())
		}
		if ix == nil {
			return nil, fmt.Errorf("store: restore %s: %s is no longer a dense key", name, schema[i].Name)
		}
		seg.fk[i] = ix
		t.pkCols[i] = true
	}
	t.cur.Store(&Snapshot{t: t, base: seg, liveBase: seg.n})
	return t, nil
}

// DecBits returns the recorded decomposition bit width per schema column
// (0 = never decomposed) — the durable layer persists them so merges after
// recovery re-decompose at the same resolution.
func (t *Table) DecBits() []uint {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]uint(nil), t.decBits...)
}

// PKCols returns, per schema column, whether a foreign-key (primary-key)
// index is registered — persisted so recovery rebuilds the same indexes.
func (t *Table) PKCols() []bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]bool(nil), t.pkCols...)
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// SchemaEpoch returns the table's creation identity: a globally unique
// number assigned when the table was created. Cached bindings record it
// and treat a mismatch (table dropped, or dropped and re-created) as a
// schema change requiring recompilation.
func (t *Table) SchemaEpoch() uint64 { return t.schemaEpoch }

// Epoch returns the current data epoch (bumped by every visible change).
func (t *Table) Epoch() uint64 { return t.cur.Load().Epoch }

// Snapshot pins the current version of the table.
func (t *Table) Snapshot() *Snapshot { return t.cur.Load() }

// Len returns the current live row count.
func (t *Table) Len() int { return t.cur.Load().Len() }

// DeltaLive returns the current live delta row count (the merge-pressure
// signal the background merger polls).
func (t *Table) DeltaLive() int { return t.cur.Load().liveDelta }

// PendingDecompose reports whether the table records decomposition bit
// widths that the current base segment does not carry. That happens when a
// merge empties the table (an empty column cannot be decomposed, so the
// recorded widths go dormant): once rows exist again, the next merge
// re-decomposes them. The background merger treats this as merge pressure
// regardless of the delta threshold, so A&R routing recovers after one
// maintenance interval instead of waiting for a full delta.
func (t *Table) PendingDecompose() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.cur.Load()
	if s.Len() == 0 {
		return false
	}
	for c, bits := range t.decBits {
		if bits > 0 && s.base.decs[c] == nil {
			return true
		}
	}
	return false
}

// Schema returns the column definitions in schema (insertion) order.
func (t *Table) Schema() []ColumnDef { return t.schema }

// ColumnNames returns the column names in schema order — the implicit
// column order of INSERT INTO ... VALUES.
func (t *Table) ColumnNames() []string {
	out := make([]string, len(t.schema))
	for i, def := range t.schema {
		out[i] = def.Name
	}
	return out
}

// Columns returns the column names in sorted order (display surfaces).
func (t *Table) Columns() []string {
	out := t.ColumnNames()
	sort.Strings(out)
	return out
}

// Column returns the current base-segment BAT of a column — a convenience
// for loaders and tests; executors read through a pinned Snapshot instead.
func (t *Table) Column(name string) (*bat.BAT, error) {
	return t.cur.Load().Column(name)
}

// ColumnScale returns the fixed-point scale of a column.
func (t *Table) ColumnScale(name string) (int64, error) {
	i, err := t.colIndex(name)
	if err != nil {
		return 0, err
	}
	return t.schema[i].Scale, nil
}

// ColIndex returns the schema index of a column.
func (t *Table) ColIndex(name string) (int, error) { return t.colIndex(name) }

func (t *Table) colIndex(name string) (int, error) {
	i, ok := t.colIdx[name]
	if !ok {
		return 0, fmt.Errorf("store: unknown column %s.%s", t.name, name)
	}
	return i, nil
}

// Insert appends rows (schema order, scaled values) to the delta segment
// and publishes a new snapshot. The append is host-side only: no device or
// bus time is charged beyond the CPU write of the rows themselves.
func (t *Table) Insert(m *device.Meter, rows [][]int64) (int, error) {
	stride := len(t.schema)
	for r, row := range rows {
		if len(row) != stride {
			return 0, fmt.Errorf("store: insert into %s: row %d has %d values, table has %d columns", t.name, r+1, len(row), stride)
		}
	}
	if len(rows) == 0 {
		return 0, nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.cur.Load()
	for _, row := range rows {
		t.buf = append(t.buf, row...)
	}
	t.inserts += int64(len(rows))
	t.publish(&Snapshot{
		t: t, base: s.base,
		delta: t.buf, deltaN: s.deltaN + len(rows),
		del:      s.del,
		liveBase: s.liveBase, liveDelta: s.liveDelta + len(rows),
	})
	if m != nil {
		m.CPUWork(1, int64(len(rows))*t.rowBytes, 0, int64(len(rows)))
	}
	return len(rows), nil
}

// DeleteWhere marks every live row satisfying all predicates (conjunction;
// no predicates = all rows) as deleted in a fresh copy of the deletion
// bitmap and publishes a new snapshot. When base rows are newly deleted,
// the refreshed base-range bitmap is shipped to the device so approximate
// selections can mask deleted rows GPU-side.
func (t *Table) DeleteWhere(m *device.Meter, preds []Range) (int64, error) {
	idx := make([]int, len(preds))
	for k, p := range preds {
		i, err := t.colIndex(p.Col)
		if err != nil {
			return 0, err
		}
		idx[k] = i
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.cur.Load()
	total := s.base.n + s.deltaN
	del := make([]uint64, (total+63)/64)
	copy(del, s.del)
	var removedBase, removedDelta int
	tails := make([][]int64, len(preds))
	for k := range preds {
		tails[k] = s.base.cols[idx[k]].Tails()
	}
	for i := 0; i < s.base.n; i++ {
		if bitSet(del, i) {
			continue
		}
		match := true
		for k, p := range preds {
			if v := tails[k][i]; v < p.Lo || v > p.Hi {
				match = false
				break
			}
		}
		if match {
			setBit(del, i)
			removedBase++
		}
	}
	for j := 0; j < s.deltaN; j++ {
		if bitSet(del, s.base.n+j) {
			continue
		}
		match := true
		for k, p := range preds {
			if v := s.delta[j*len(t.schema)+idx[k]]; v < p.Lo || v > p.Hi {
				match = false
				break
			}
		}
		if match {
			setBit(del, s.base.n+j)
			removedDelta++
		}
	}
	if m != nil {
		var scanned int64
		for k := range preds {
			scanned += s.base.cols[idx[k]].TailBytes()
		}
		scanned += s.DeltaBytes()
		m.CPUWork(1, scanned, 0, int64(total)*int64(max(1, len(preds))))
		if removedBase > 0 {
			m.Transfer(int64((s.base.n + 7) / 8)) // refresh the device-side mask
		}
	}
	if removedBase+removedDelta == 0 {
		return 0, nil
	}
	t.deletes += int64(removedBase + removedDelta)
	t.publish(&Snapshot{
		t: t, base: s.base,
		delta: s.delta, deltaN: s.deltaN,
		del:      del,
		liveBase: s.liveBase - removedBase, liveDelta: s.liveDelta - removedDelta,
	})
	return int64(removedBase + removedDelta), nil
}

// Decompose bitwise-decomposes a column with the given device-resident bit
// width, recording the width so merges re-decompose incrementally. A table
// with delta rows or deletions is merged first: decomposition always
// covers the whole (compacted) base segment.
func (t *Table) Decompose(m *device.Meter, col string, bits uint) (*bwd.Column, error) {
	i, err := t.colIndex(col)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if s := t.cur.Load(); s.deltaN > 0 || s.DeletedCount() > 0 {
		if _, err := t.mergeLocked(m, false); err != nil {
			return nil, err
		}
	}
	s := t.cur.Load()
	d, err := bwd.Decompose(s.base.cols[i], bits, t.sys)
	if err != nil {
		return nil, fmt.Errorf("store: bwdecompose(%s.%s, %d): %w", t.name, col, bits, err)
	}
	seg := s.base.clone()
	if old := seg.decs[i]; old != nil {
		old.Release()
	}
	seg.decs[i] = d
	t.decBits[i] = bits
	t.publish(&Snapshot{
		t: t, base: seg,
		delta: s.delta, deltaN: s.deltaN, del: s.del,
		liveBase: s.liveBase, liveDelta: s.liveDelta,
	})
	return d, nil
}

// BuildFKIndex pre-builds the foreign-key (primary-key) index over a
// column and records it for rebuild on merge. Like Decompose, the table is
// compacted first so index positions always address the base segment.
func (t *Table) BuildFKIndex(col string) error {
	i, err := t.colIndex(col)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if s := t.cur.Load(); s.deltaN > 0 || s.DeletedCount() > 0 {
		if _, err := t.mergeLocked(nil, false); err != nil {
			return err
		}
	}
	s := t.cur.Load()
	if !strictlyDense(s.base.cols[i].Tails()) {
		return fmt.Errorf("store: %s.%s is not a dense unique key", t.name, col)
	}
	ix := bulk.BuildFKIndex(nil, 1, s.base.cols[i].Tails())
	if ix == nil {
		return fmt.Errorf("store: %s.%s is not a dense unique key", t.name, col)
	}
	seg := s.base.clone()
	seg.fk[i] = ix
	t.pkCols[i] = true
	t.publish(&Snapshot{
		t: t, base: seg,
		delta: s.delta, deltaN: s.deltaN, del: s.del,
		liveBase: s.liveBase, liveDelta: s.liveDelta,
	})
	return nil
}

// MergeStats describes one completed merge.
type MergeStats struct {
	// Merged reports whether there was anything to compact.
	Merged bool
	// DeltaRows and DroppedRows are the delta rows folded into the new
	// base and the deleted rows discarded.
	DeltaRows   int
	DroppedRows int
	// ShippedBytes is the PCI traffic actually charged: for columns whose
	// decomposition parameters are unchanged (and with no base compaction)
	// only the merged rows' approximation codes cross the bus.
	ShippedBytes int64
	// FullBytes is the hypothetical cost of a full re-decomposition — the
	// whole new approximation shipped for every decomposed column. The
	// ratio ShippedBytes/FullBytes is the write path's "waste not" win.
	FullBytes int64
}

// Merge compacts the delta segment and any deletions into a new base
// segment, re-decomposing every column that was decomposed (at its
// recorded bit width) and rebuilding registered FK indexes. auto marks the
// merge as triggered by the background merger (for stats attribution).
func (t *Table) Merge(m *device.Meter, auto bool) (MergeStats, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	st, err := t.mergeLocked(m, auto)
	return st, err
}

func (t *Table) mergeLocked(m *device.Meter, auto bool) (MergeStats, error) {
	s := t.cur.Load()
	if s.deltaN == 0 && s.DeletedCount() == 0 {
		return MergeStats{}, nil
	}
	stride := len(t.schema)
	newN := s.liveBase + s.liveDelta
	compacted := s.liveBase != s.base.n

	seg := &segment{
		n:    newN,
		cols: make([]*bat.BAT, stride),
		decs: make([]*bwd.Column, stride),
		fk:   make([]*bulk.FKIndex, stride),
	}
	for c := 0; c < stride; c++ {
		vals := make([]int64, 0, newN)
		tails := s.base.cols[c].Tails()
		for i := range tails {
			if !s.BaseDeleted(i) {
				vals = append(vals, tails[i])
			}
		}
		for j := 0; j < s.deltaN; j++ {
			if !s.DeltaDeleted(j) {
				vals = append(vals, s.delta[j*stride+c])
			}
		}
		seg.cols[c] = bat.NewDense(vals, t.schema[c].Width)
	}

	var stats MergeStats
	stats.Merged = true
	stats.DeltaRows = s.liveDelta
	stats.DroppedRows = s.DeletedCount()

	// Re-decompose recorded columns. Decompose-before-release means a
	// racing reader of the old snapshot keeps a valid (released) view; the
	// transient double allocation mirrors Catalog re-decomposition.
	for c := 0; c < stride; c++ {
		if t.decBits[c] == 0 || newN == 0 {
			continue
		}
		d, err := bwd.Decompose(seg.cols[c], t.decBits[c], t.sys)
		if err != nil {
			for _, nd := range seg.decs {
				if nd != nil {
					nd.Release()
				}
			}
			return MergeStats{}, fmt.Errorf("store: merge %s: %w", t.name, err)
		}
		seg.decs[c] = d
		full := packedBytes(newN, d.Dec.ApproxBits)
		stats.FullBytes += full
		old := s.base.decs[c]
		if old != nil && old.Dec == d.Dec && !compacted {
			// Incremental maintenance: the surviving base codes are
			// bit-identical, so only the merged delta rows' codes ship.
			stats.ShippedBytes += packedBytes(s.liveDelta, d.Dec.ApproxBits)
			if m != nil {
				m.CPUWork(1, int64(s.liveDelta)*int64(t.schema[c].Width)*2, 0, int64(s.liveDelta))
			}
		} else {
			// The value range (or the row layout, after compaction) moved:
			// the whole approximation is rebuilt and re-shipped.
			stats.ShippedBytes += full
			if m != nil {
				m.CPUWork(1, int64(newN)*int64(t.schema[c].Width)*2, 0, int64(newN))
				if compacted && old != nil {
					// Device-side compaction pass over the stale codes.
					m.GPUKernel(old.GPUBytes(), 0, int64(s.base.n))
				}
			}
		}
	}
	if m != nil {
		m.Transfer(stats.ShippedBytes)
	}

	// Rebuild registered FK indexes over the compacted key columns. The
	// key must remain STRICTLY dense (v[i] == v[0] + i): the A&R join maps
	// foreign keys to dimension positions arithmetically (§IV-D), so a
	// compaction that punches holes into the key — or an append that
	// leaves one — would silently mis-join. bulk.BuildFKIndex alone is not
	// enough of a guard: it tolerates gaps (the classic hash path handles
	// them), which the positional path cannot.
	for c := 0; c < stride; c++ {
		if !t.pkCols[c] {
			continue
		}
		var ix *bulk.FKIndex
		if strictlyDense(seg.cols[c].Tails()) {
			ix = bulk.BuildFKIndex(nil, 1, seg.cols[c].Tails())
		}
		if ix == nil {
			for _, nd := range seg.decs {
				if nd != nil {
					nd.Release()
				}
			}
			return MergeStats{}, fmt.Errorf("store: merge %s: %s is no longer a dense key (deletes from an indexed dimension key cannot be compacted; drop and reload the table)", t.name, t.schema[c].Name)
		}
		seg.fk[c] = ix
	}

	for _, d := range s.base.decs {
		if d != nil {
			d.Release()
		}
	}
	t.buf = nil // old snapshots keep their own frozen prefix
	t.merges++
	if auto {
		t.autoMerges++
	}
	t.mergeRows += int64(s.liveDelta)
	t.mergeShipBytes += stats.ShippedBytes
	t.mergeFullBytes += stats.FullBytes
	t.publish(&Snapshot{t: t, base: seg, liveBase: newN})
	return stats, nil
}

// publish stamps the next epoch on s and makes it the current snapshot.
// Callers must hold t.mu.
func (t *Table) publish(s *Snapshot) {
	t.epoch++
	s.Epoch = t.epoch
	t.cur.Store(s)
}

// ReleaseDecompositions frees the device allocations of the current base
// segment (catalog teardown).
func (t *Table) ReleaseDecompositions() {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.cur.Load()
	seg := s.base.clone()
	for i, d := range seg.decs {
		if d != nil {
			d.Release()
			seg.decs[i] = nil
		}
	}
	t.publish(&Snapshot{
		t: t, base: seg,
		delta: s.delta, deltaN: s.deltaN, del: s.del,
		liveBase: s.liveBase, liveDelta: s.liveDelta,
	})
}

// TableStats is a point-in-time snapshot of one table's store counters.
type TableStats struct {
	Name                string
	BaseRows, DeltaRows int // live rows per segment
	DeletedRows         int // marked, not yet compacted
	Segments            int
	Inserts, Deletes    int64
	Merges, AutoMerges  int64
	MergeRows           int64
	MergeShippedBytes   int64
	MergeFullBytes      int64
	Epoch               uint64
}

// Stats returns the table's current counters.
func (t *Table) Stats() TableStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.cur.Load()
	return TableStats{
		Name:              t.name,
		BaseRows:          s.liveBase,
		DeltaRows:         s.liveDelta,
		DeletedRows:       s.DeletedCount(),
		Segments:          s.Segments(),
		Inserts:           t.inserts,
		Deletes:           t.deletes,
		Merges:            t.merges,
		AutoMerges:        t.autoMerges,
		MergeRows:         t.mergeRows,
		MergeShippedBytes: t.mergeShipBytes,
		MergeFullBytes:    t.mergeFullBytes,
		Epoch:             t.epoch,
	}
}

// strictlyDense reports whether vals is exactly v[0], v[0]+1, v[0]+2, …
// — the invariant the positional (dense-PK) join arithmetic relies on.
func strictlyDense(vals []int64) bool {
	for i, v := range vals {
		if v != vals[0]+int64(i) {
			return false
		}
	}
	return len(vals) > 0
}

func packedBytes(n int, bits uint) int64 {
	return (int64(n)*int64(bits) + 7) / 8
}
