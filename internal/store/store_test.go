package store

import (
	"math"
	"testing"

	"repro/internal/bat"
	"repro/internal/device"
)

func newTestTable(t *testing.T, sys *device.System, n int) *Table {
	t.Helper()
	vals := make([]int64, n)
	price := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i % 1000)
		price[i] = int64(i) * 100
	}
	tbl, err := New("t",
		[]ColumnDef{{Name: "v", Scale: 1, Width: bat.Width32}, {Name: "price", Scale: 100, Width: bat.Width32}},
		[]*bat.BAT{bat.NewDense(vals, bat.Width32), bat.NewDense(price, bat.Width32)},
		sys)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestInsertDeleteMergeLifecycle(t *testing.T) {
	sys := device.PaperSystem()
	tbl := newTestTable(t, sys, 100)
	if _, err := tbl.Decompose(nil, "v", 8); err != nil {
		t.Fatal(err)
	}

	if _, err := tbl.Insert(nil, [][]int64{{1000, 1}, {1001, 2}, {1002, 3}}); err != nil {
		t.Fatal(err)
	}
	s := tbl.Snapshot()
	if s.Len() != 103 || s.DeltaLen() != 3 || s.BaseLen() != 100 {
		t.Fatalf("after insert: len=%d delta=%d base=%d", s.Len(), s.DeltaLen(), s.BaseLen())
	}
	if got := s.DeltaValue(1, 0); got != 1001 {
		t.Fatalf("delta value = %d, want 1001", got)
	}

	// Delete one base row and one delta row.
	n, err := tbl.DeleteWhere(nil, []Range{{Col: "v", Lo: 5, Hi: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("deleted %d rows, want 1 (v==5 occurs once in 100 rows)", n)
	}
	if n, _ := tbl.DeleteWhere(nil, []Range{{Col: "v", Lo: 1001, Hi: 1001}}); n != 1 {
		t.Fatalf("delta delete removed %d rows, want 1", n)
	}
	s = tbl.Snapshot()
	if s.Len() != 101 || s.DeletedCount() != 2 {
		t.Fatalf("after deletes: len=%d deleted=%d", s.Len(), s.DeletedCount())
	}
	if !s.BaseDeleted(5) || s.BaseDeleted(6) {
		t.Fatal("base deletion bitmap wrong")
	}
	if !s.DeltaDeleted(1) || s.DeltaDeleted(0) {
		t.Fatal("delta deletion bitmap wrong")
	}

	m := device.NewMeter(sys)
	st, err := tbl.Merge(m, false)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Merged || st.DeltaRows != 2 || st.DroppedRows != 2 {
		t.Fatalf("merge stats %+v", st)
	}
	s = tbl.Snapshot()
	if s.Len() != 101 || s.DeltaLen() != 0 || s.BaseLen() != 101 || s.DeletedCount() != 0 {
		t.Fatalf("after merge: len=%d delta=%d base=%d", s.Len(), s.DeltaLen(), s.BaseLen())
	}
	if s.Dec("v") == nil {
		t.Fatal("merge dropped the decomposition")
	}
	if m.PCI == 0 {
		t.Fatal("merge charged no PCI traffic despite re-decomposition")
	}
}

func TestSnapshotIsolation(t *testing.T) {
	tbl := newTestTable(t, nil, 10)
	pinned := tbl.Snapshot()

	if _, err := tbl.Insert(nil, [][]int64{{42, 0}}); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.DeleteWhere(nil, nil); err != nil { // delete everything
		t.Fatal(err)
	}
	if _, err := tbl.Merge(nil, false); err != nil {
		t.Fatal(err)
	}

	// The pinned snapshot still sees the original ten rows, no delta, no
	// deletions; the current snapshot sees the emptied table.
	if pinned.Len() != 10 || pinned.DeltaLen() != 0 || pinned.DeletedCount() != 0 {
		t.Fatalf("pinned snapshot mutated: len=%d delta=%d deleted=%d",
			pinned.Len(), pinned.DeltaLen(), pinned.DeletedCount())
	}
	b, err := pinned.Column("v")
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 10 || b.Tail(5) != 5 {
		t.Fatal("pinned base column changed under reader")
	}
	if cur := tbl.Snapshot(); cur.Len() != 0 {
		t.Fatalf("current snapshot has %d rows, want 0", cur.Len())
	}
	if tbl.Epoch() <= pinned.Epoch {
		t.Fatal("epoch did not advance across writes")
	}
}

func TestMergeIncrementalShipsOnlyDelta(t *testing.T) {
	sys := device.PaperSystem()
	tbl := newTestTable(t, sys, 10_000)
	// Fix the value domain so appended rows stay inside it: the
	// decomposition parameters survive the merge and maintenance is
	// incremental.
	if _, err := tbl.Decompose(nil, "v", 4); err != nil {
		t.Fatal(err)
	}
	rows := make([][]int64, 100)
	for i := range rows {
		rows[i] = []int64{int64(i % 1000), 0}
	}
	if _, err := tbl.Insert(nil, rows); err != nil {
		t.Fatal(err)
	}
	st, err := tbl.Merge(device.NewMeter(sys), false)
	if err != nil {
		t.Fatal(err)
	}
	if st.ShippedBytes >= st.FullBytes {
		t.Fatalf("incremental merge shipped %d bytes, full re-decomposition is %d", st.ShippedBytes, st.FullBytes)
	}
	// 100 rows at 4 bits = 50 bytes.
	if st.ShippedBytes != 50 {
		t.Fatalf("shipped %d bytes, want 50", st.ShippedBytes)
	}

	// A merge after deletions compacts the base: full re-ship.
	if _, err := tbl.DeleteWhere(nil, []Range{{Col: "v", Lo: 0, Hi: 0}}); err != nil {
		t.Fatal(err)
	}
	st, err = tbl.Merge(device.NewMeter(sys), false)
	if err != nil {
		t.Fatal(err)
	}
	if st.ShippedBytes != st.FullBytes {
		t.Fatalf("compacting merge shipped %d bytes, want full %d", st.ShippedBytes, st.FullBytes)
	}
}

func TestDecomposeCompactsFirst(t *testing.T) {
	sys := device.PaperSystem()
	tbl := newTestTable(t, sys, 100)
	if _, err := tbl.Insert(nil, [][]int64{{7, 7}, {8, 8}}); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Decompose(nil, "v", 8); err != nil {
		t.Fatal(err)
	}
	s := tbl.Snapshot()
	if s.DeltaLen() != 0 || s.BaseLen() != 102 {
		t.Fatalf("decompose did not merge first: delta=%d base=%d", s.DeltaLen(), s.BaseLen())
	}
	if d := s.Dec("v"); d == nil || d.Len() != 102 {
		t.Fatal("decomposition does not cover merged rows")
	}
}

func TestFKIndexRebuiltOnMerge(t *testing.T) {
	n := 50
	ids := make([]int64, n)
	for i := range ids {
		ids[i] = int64(i)
	}
	tbl, err := New("dim", []ColumnDef{{Name: "id", Scale: 1, Width: bat.Width32}},
		[]*bat.BAT{bat.NewDense(ids, bat.Width32)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.BuildFKIndex("id"); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Insert(nil, [][]int64{{50}, {51}}); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Merge(nil, false); err != nil {
		t.Fatal(err)
	}
	ix := tbl.Snapshot().FKIndex("id")
	if ix == nil {
		t.Fatal("FK index not rebuilt on merge")
	}
	if pos, ok := ix.Lookup(51); !ok || int(pos) != 51 {
		t.Fatalf("rebuilt index lookup(51) = %d,%v", pos, ok)
	}
}

func TestDeleteOpenRanges(t *testing.T) {
	tbl := newTestTable(t, nil, 100)
	n, err := tbl.DeleteWhere(nil, []Range{{Col: "v", Lo: 90, Hi: math.MaxInt64}})
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("deleted %d rows, want 10", n)
	}
	if tbl.Len() != 90 {
		t.Fatalf("len = %d, want 90", tbl.Len())
	}
}

func TestSchemaEpochDistinguishesRecreation(t *testing.T) {
	a, _ := New("x", []ColumnDef{{Name: "c", Scale: 1, Width: bat.Width32}}, nil, nil)
	b, _ := New("x", []ColumnDef{{Name: "c", Scale: 100, Width: bat.Width32}}, nil, nil)
	if a.SchemaEpoch() == b.SchemaEpoch() {
		t.Fatal("re-created table shares schema epoch with the dropped one")
	}
}

func TestInsertValidatesArity(t *testing.T) {
	tbl := newTestTable(t, nil, 10)
	if _, err := tbl.Insert(nil, [][]int64{{1}}); err == nil {
		t.Fatal("short row accepted")
	}
}

func TestMergeRefusesToCompactIndexedKey(t *testing.T) {
	n := 20
	ids := make([]int64, n)
	for i := range ids {
		ids[i] = int64(i)
	}
	tbl, err := New("dim", []ColumnDef{{Name: "id", Scale: 1, Width: bat.Width32}},
		[]*bat.BAT{bat.NewDense(ids, bat.Width32)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.BuildFKIndex("id"); err != nil {
		t.Fatal(err)
	}
	if n, _ := tbl.DeleteWhere(nil, []Range{{Col: "id", Lo: 2, Hi: 2}}); n != 1 {
		t.Fatalf("deleted %d, want 1", n)
	}
	// Compacting would punch a hole into the dense key the positional
	// A&R join arithmetic relies on: the merge must refuse.
	if _, err := tbl.Merge(nil, false); err == nil {
		t.Fatal("merge compacted an indexed dense key")
	}
	// The un-merged table still serves: the deletion stays bitmap-masked.
	s := tbl.Snapshot()
	if !s.BaseDeleted(2) || s.Len() != n-1 {
		t.Fatal("deletion lost after refused merge")
	}
}

func TestBuildFKIndexRejectsGappedKey(t *testing.T) {
	tbl, err := New("dim", []ColumnDef{{Name: "id", Scale: 1, Width: bat.Width32}},
		[]*bat.BAT{bat.NewDense([]int64{1, 3, 4, 5}, bat.Width32)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.BuildFKIndex("id"); err == nil {
		t.Fatal("gapped key accepted as dense FK index")
	}
}

// TestMorselsRespectSegmentEdges checks the executor scan-granule API:
// morsels cover every base and delta row exactly once, never straddle the
// base/delta segment edge, and interior boundaries are aligned to 64-row
// deletion-bitmap words.
func TestMorselsRespectSegmentEdges(t *testing.T) {
	tbl := newTestTable(t, nil, 1000)
	rows := make([][]int64, 300)
	for i := range rows {
		rows[i] = []int64{int64(i), int64(i) * 10}
	}
	if _, err := tbl.Insert(nil, rows); err != nil {
		t.Fatal(err)
	}
	s := tbl.Snapshot()
	for _, chunk := range []int{1, 64, 100, 512, 1 << 20} {
		morsels := s.Morsels(chunk)
		var baseSeen, deltaSeen int
		for _, m := range morsels {
			if m.Hi <= m.Lo {
				t.Fatalf("chunk %d: empty morsel %+v", chunk, m)
			}
			limit := s.BaseLen()
			if m.Delta {
				limit = s.DeltaLen()
				deltaSeen += m.Hi - m.Lo
			} else {
				baseSeen += m.Hi - m.Lo
			}
			if m.Hi > limit {
				t.Fatalf("chunk %d: morsel %+v crosses its segment end %d", chunk, m, limit)
			}
			if m.Lo%64 != 0 {
				t.Fatalf("chunk %d: morsel %+v not aligned to a bitmap word", chunk, m)
			}
		}
		if baseSeen != s.BaseLen() || deltaSeen != s.DeltaLen() {
			t.Fatalf("chunk %d: covered %d base + %d delta rows, want %d + %d",
				chunk, baseSeen, deltaSeen, s.BaseLen(), s.DeltaLen())
		}
		for _, m := range s.DeltaMorsels(chunk) {
			if !m.Delta {
				t.Fatalf("chunk %d: DeltaMorsels returned base morsel %+v", chunk, m)
			}
		}
	}
}
