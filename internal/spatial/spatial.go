// Package spatial implements the spatial range-query benchmark of the
// paper (§VI-C, Table I): a table of GPS fixes gathered from navigation
// devices, queried with a rectangular range count.
//
// The paper's 250 M-point data set (generated with the method of Bösche et
// al., TPCTC 2012) is proprietary-ish in origin; this package substitutes
// a synthetic trip-based generator that reproduces the properties the
// experiment depends on: European-scale coordinate ranges (which limit
// prefix compression to ~25 %, §VI-C2), trip-local continuity (successive
// fixes of one vehicle are near each other), and a small hot query region
// that a fraction of trips crosses.
package spatial

import (
	"math"
	"math/rand"

	"repro/internal/bat"
	"repro/internal/fixed"
	"repro/internal/plan"
)

// Coordinate bounds of the paper's data set (§VI-C2): latitudes 27.09371
// to 70.13643, longitudes -12.62427 to 29.64975, stored as decimal(_,5)
// fixed-point.
var (
	LatMin = fixed.FromFloat(27.09371, fixed.Scale5)
	LatMax = fixed.FromFloat(70.13643, fixed.Scale5)
	LonMin = fixed.FromFloat(-12.62427, fixed.Scale5)
	LonMax = fixed.FromFloat(29.64975, fixed.Scale5)
)

// Table I query box: lon between 2.68288 and 2.70228, lat between 50.4222
// and 50.4485.
var (
	QueryLonLo = fixed.FromFloat(2.68288, fixed.Scale5)
	QueryLonHi = fixed.FromFloat(2.70228, fixed.Scale5)
	QueryLatLo = fixed.FromFloat(50.4222, fixed.Scale5)
	QueryLatHi = fixed.FromFloat(50.4485, fixed.Scale5)
)

// Data is the trips table of Table I:
// create table trips (tripid int, lon decimal(8,5), lat decimal(7,5), time int).
type Data struct {
	TripID []int64
	Lon    []int64 // fixed-point 1e-5 degrees
	Lat    []int64
	Time   []int64 // seconds since trip epoch
}

// Len returns the number of GPS fixes.
func (d *Data) Len() int { return len(d.Lon) }

// Generate synthesizes n GPS fixes. Vehicles perform random-walk trips:
// a start point, a heading and a speed that evolve smoothly, sampled every
// 10 seconds — the trace shape of the TPCTC generator. A small fraction of
// trips starts inside the Table I query region so range queries always
// have matches.
func Generate(n int, seed int64) *Data {
	rng := rand.New(rand.NewSource(seed))
	d := &Data{
		TripID: make([]int64, 0, n),
		Lon:    make([]int64, 0, n),
		Lat:    make([]int64, 0, n),
		Time:   make([]int64, 0, n),
	}
	trip := int64(0)
	for d.Len() < n {
		points := 50 + rng.Intn(150)
		if remaining := n - d.Len(); points > remaining {
			points = remaining
		}
		var lon, lat float64
		if trip%40 == 0 {
			// Route through the hot region around Calais.
			lon = fixed.ToFloat(QueryLonLo, fixed.Scale5) +
				rng.Float64()*fixed.ToFloat(QueryLonHi-QueryLonLo, fixed.Scale5)
			lat = fixed.ToFloat(QueryLatLo, fixed.Scale5) +
				rng.Float64()*fixed.ToFloat(QueryLatHi-QueryLatLo, fixed.Scale5)
		} else {
			lon = fixed.ToFloat(LonMin, fixed.Scale5) +
				rng.Float64()*fixed.ToFloat(LonMax-LonMin, fixed.Scale5)
			lat = fixed.ToFloat(LatMin, fixed.Scale5) +
				rng.Float64()*fixed.ToFloat(LatMax-LatMin, fixed.Scale5)
		}
		heading := rng.Float64() * 2 * math.Pi
		speed := 8 + rng.Float64()*17 // m/s: urban to motorway
		const dt = 10.0               // seconds per fix
		for p := 0; p < points; p++ {
			d.TripID = append(d.TripID, trip)
			d.Lon = append(d.Lon, clamp(fixed.FromFloat(lon, fixed.Scale5), LonMin, LonMax))
			d.Lat = append(d.Lat, clamp(fixed.FromFloat(lat, fixed.Scale5), LatMin, LatMax))
			d.Time = append(d.Time, int64(p)*int64(dt))

			// Smooth evolution: slight heading drift, speed jitter.
			heading += (rng.Float64() - 0.5) * 0.4
			speed = math.Max(3, math.Min(33, speed+(rng.Float64()-0.5)*2))
			dist := speed * dt // metres
			dlat := dist * math.Cos(heading) / 111320
			dlon := dist * math.Sin(heading) / (111320 * math.Cos(lat*math.Pi/180))
			lat += dlat
			lon += dlon
			// Reflect at the bounding box.
			if lat < fixed.ToFloat(LatMin, fixed.Scale5) || lat > fixed.ToFloat(LatMax, fixed.Scale5) {
				heading = math.Pi - heading
				lat = math.Max(fixed.ToFloat(LatMin, fixed.Scale5), math.Min(fixed.ToFloat(LatMax, fixed.Scale5), lat))
			}
			if lon < fixed.ToFloat(LonMin, fixed.Scale5) || lon > fixed.ToFloat(LonMax, fixed.Scale5) {
				heading = -heading
				lon = math.Max(fixed.ToFloat(LonMin, fixed.Scale5), math.Min(fixed.ToFloat(LonMax, fixed.Scale5), lon))
			}
		}
		trip++
	}
	return d
}

func clamp(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Load registers the trips table in the catalog.
func (d *Data) Load(c *plan.Catalog) error {
	t := plan.NewTable("trips")
	for _, col := range []struct {
		name  string
		vals  []int64
		scale int64
	}{
		{"tripid", d.TripID, 1},
		{"lon", d.Lon, fixed.Scale5},
		{"lat", d.Lat, fixed.Scale5},
		{"time", d.Time, 1},
	} {
		if err := t.AddColumnScaled(col.name, bat.NewDense(col.vals, bat.Width32), col.scale); err != nil {
			return err
		}
	}
	return c.AddTable(t)
}

// Decompose applies Table I's decomposition:
// select bwdecompose(lon,24), bwdecompose(lat,24) from trips.
func (d *Data) Decompose(c *plan.Catalog) error {
	if _, err := c.Decompose("trips", "lon", 24); err != nil {
		return err
	}
	_, err := c.Decompose("trips", "lat", 24)
	return err
}

// RangeCountQuery is Table I's query:
//
//	select count(lon) from trips
//	where lon between 2.68288 and 2.70228
//	  and lat between 50.4222 and 50.4485
func RangeCountQuery() plan.Query {
	return RangeCount(QueryLonLo, QueryLonHi, QueryLatLo, QueryLatHi)
}

// RangeCount builds a range-count query over an arbitrary box.
func RangeCount(lonLo, lonHi, latLo, latHi int64) plan.Query {
	return plan.Query{
		Table: "trips",
		Filters: []plan.Filter{
			{Col: "lon", Lo: lonLo, Hi: lonHi},
			{Col: "lat", Lo: latLo, Hi: latHi},
		},
		Aggs: []plan.AggSpec{{Name: "count_lon", Func: plan.Count}},
	}
}
