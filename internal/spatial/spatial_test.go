package spatial

import (
	"testing"

	"repro/internal/device"
	"repro/internal/plan"
)

func TestGenerateBoundsAndContinuity(t *testing.T) {
	d := Generate(20000, 1)
	if d.Len() != 20000 {
		t.Fatalf("Len = %d, want 20000", d.Len())
	}
	for i := 0; i < d.Len(); i++ {
		if d.Lon[i] < LonMin || d.Lon[i] > LonMax {
			t.Fatalf("lon %d outside paper bounds", d.Lon[i])
		}
		if d.Lat[i] < LatMin || d.Lat[i] > LatMax {
			t.Fatalf("lat %d outside paper bounds", d.Lat[i])
		}
	}
	// Trip-local continuity: successive fixes of the same trip are close
	// (< ~400 m -> < 0.006 degrees ~ 600 fixed-point units at 1e-5).
	for i := 1; i < d.Len(); i++ {
		if d.TripID[i] != d.TripID[i-1] {
			continue
		}
		dLat := d.Lat[i] - d.Lat[i-1]
		if dLat < 0 {
			dLat = -dLat
		}
		if dLat > 600 {
			t.Fatalf("trip jump of %d lat units at fix %d", dLat, i)
		}
	}
	// Time restarts per trip and advances in 10 s steps.
	for i := 1; i < d.Len(); i++ {
		if d.TripID[i] == d.TripID[i-1] && d.Time[i] != d.Time[i-1]+10 {
			t.Fatalf("time not sampled at 10s at fix %d", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, b := Generate(5000, 3), Generate(5000, 3)
	for i := range a.Lon {
		if a.Lon[i] != b.Lon[i] || a.Lat[i] != b.Lat[i] {
			t.Fatal("generator not deterministic")
		}
	}
}

func TestTable1QueryFindsMatchesAndAgreesWithClassic(t *testing.T) {
	sys := device.PaperSystem()
	c := plan.NewCatalog(sys)
	d := Generate(100000, 2)
	if err := d.Load(c); err != nil {
		t.Fatal(err)
	}
	if err := d.Decompose(c); err != nil {
		t.Fatal(err)
	}
	q := RangeCountQuery()
	arRes, err := c.ExecAR(q, plan.ExecOpts{})
	if err != nil {
		t.Fatalf("ExecAR: %v", err)
	}
	clRes, err := c.ExecClassic(q, plan.ExecOpts{})
	if err != nil {
		t.Fatalf("ExecClassic: %v", err)
	}
	if !plan.EqualResults(arRes.Rows, clRes.Rows) {
		t.Fatalf("spatial A&R != classic: %s vs %s",
			plan.FormatRows(arRes.Rows), plan.FormatRows(clRes.Rows))
	}
	if arRes.Rows[0].Vals[0] == 0 {
		t.Error("Table I query found no fixes; hot-region seeding broken")
	}
	if !arRes.Approx.Count.Contains(arRes.Rows[0].Vals[0]) {
		t.Errorf("approximate count %v does not contain %d", arRes.Approx.Count, arRes.Rows[0].Vals[0])
	}
}

// TestCompressionMatchesPaper reproduces §VI-C2: the wide coordinate
// ranges limit prefix compression to roughly a quarter of the data volume.
func TestCompressionMatchesPaper(t *testing.T) {
	sys := device.PaperSystem()
	c := plan.NewCatalog(sys)
	d := Generate(50000, 4)
	if err := d.Load(c); err != nil {
		t.Fatal(err)
	}
	if err := d.Decompose(c); err != nil {
		t.Fatal(err)
	}
	for _, col := range []string{"lon", "lat"} {
		dec, err := c.Decomposition("trips", col)
		if err != nil {
			t.Fatal(err)
		}
		ratio := dec.CompressionRatio()
		if ratio < 0.20 || ratio > 0.35 {
			t.Errorf("%s compression ratio %.2f, want ~0.25 (paper §VI-C2)", col, ratio)
		}
		if dec.Dec.ResBits != 0 {
			t.Errorf("%s: Table I decomposition (24 bit) should be fully device resident, got %d residual bits",
				col, dec.Dec.ResBits)
		}
	}
}

func TestEmptyBoxReturnsZero(t *testing.T) {
	sys := device.PaperSystem()
	c := plan.NewCatalog(sys)
	d := Generate(10000, 5)
	if err := d.Load(c); err != nil {
		t.Fatal(err)
	}
	if err := d.Decompose(c); err != nil {
		t.Fatal(err)
	}
	// A degenerate box in the Atlantic, below the data's latitude floor.
	q := RangeCount(LonMin, LonMin+10, LatMin, LatMin+1)
	res, err := c.ExecAR(q, plan.ExecOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0].Vals[0] != 0 && res.Rows[0].Vals[0] > 10 {
		t.Errorf("degenerate box count = %d", res.Rows[0].Vals[0])
	}
}
