// Package bulk implements the classic MonetDB-style bulk processing model
// (§II-B of the paper): operators are simple, tight loops without function
// calls in the hot path that fully materialize their results for the next
// operator to pick up. Package bulk is both
//
//   - the CPU-only baseline ("MonetDB" in the paper's charts) that the
//     Approximate & Refine implementation is compared against, and
//   - the refinement substrate: A&R refinement operators run the same tight
//     CPU loops over candidates and residuals.
//
// Every operator takes an optional *device.Meter; when non-nil, the
// operator charges its simulated cost (bytes scanned/gathered/written and
// tuple-ops executed) against the CPU device with the given thread count.
// A nil meter executes without cost accounting.
//
// Each operator exists in two forms: the classic signature taking a plain
// thread count, which executes serially (the historical behaviour, used by
// loaders, examples and as ground truth in tests), and a ...Par form taking
// a par.P that executes morsel-parallel with the P's real worker budget
// while charging the meter for P's simulated thread count. The two forms
// share one implementation and produce byte-identical results: selections
// concatenate morsel outputs in morsel order, and grouping/aggregation
// build per-worker partial states over contiguous blocks that merge in
// block order, preserving first-appearance group order exactly.
package bulk

import (
	"fmt"
	"math"

	"repro/internal/bat"
	"repro/internal/device"
	"repro/internal/mem"
	"repro/internal/par"
)

// oidPool recycles candidate lists through the shared bat.OIDPool arena;
// values and aggregate partials ride the shared mem pools.
var oidPool = &bat.OIDPool

// Per-tuple op weights used for compute-cost charging. A plain comparison
// in a selection loop is the unit; hashing costs several units, matching
// the relative operator costs observable in bulk engines.
// Hash weights reflect measured bulk-engine costs (tens of ns per tuple
// for hash build/group on out-of-cache tables).
const (
	OpsSelect    = 1
	OpsFetch     = 1
	OpsArith     = 1
	OpsAggregate = 1
	OpsHashBuild = 24
	OpsHashProbe = 12
	OpsHashGroup = 12
)

// oidBytes is the physical size the classic engine pays per tuple ID in
// candidate lists: MonetDB v11 BATs carry 64-bit oids on 64-bit builds.
// (The A&R operators ship compact 32-bit IDs across the bus instead; that
// difference is part of the design.)
const oidBytes = 8

// parallelMin is the input size below which the ...Par kernels fall back to
// the serial loop even with a multi-worker budget: goroutine fan-out on a
// few thousand rows costs more than it saves. Results are identical either
// way; this is purely a scheduling decision.
const parallelMin = 1 << 10

// serial reports whether p should run the serial loop for n rows.
func serial(p par.P, n int) bool {
	return p.NWorkers() <= 1 || (n < parallelMin && p.Chunk <= 0)
}

// SelectRange returns the positions of b whose value v satisfies
// lo <= v <= hi, in input order (the bulk selection is order-preserving,
// §IV-A item 2). This is MonetDB's uselect.
func SelectRange(m *device.Meter, threads int, b *bat.BAT, lo, hi int64) []bat.OID {
	return SelectRangePar(par.Bill(threads), m, b, lo, hi)
}

// SelectRangePar is the morsel-parallel SelectRange.
func SelectRangePar(p par.P, m *device.Meter, b *bat.BAT, lo, hi int64) []bat.OID {
	tails := b.Tails()
	var out []bat.OID
	if serial(p, len(tails)) {
		out = oidPool.Get(len(tails))
		for i, v := range tails {
			if v >= lo && v <= hi {
				out = append(out, bat.OID(i))
			}
		}
	} else {
		buf := oidPool.GetN(len(tails))
		counts, _, err := par.ForCounted(p, len(tails), func(_ *mem.Scratch, _, mlo, mhi int) int {
			cnt := 0
			for i := mlo; i < mhi; i++ {
				if v := tails[i]; v >= lo && v <= hi {
					buf[mlo+cnt] = bat.OID(i)
					cnt++
				}
			}
			return cnt
		})
		if err != nil {
			out = buf[:0]
		} else {
			out = par.Compact(counts, p.ChunkSize(), buf)
			mem.Ints.Put(counts)
		}
	}
	if m != nil {
		m.CPUWork(p.NThreads(),
			b.TailBytes()+int64(len(out))*oidBytes, 0,
			int64(len(tails))*OpsSelect)
	}
	return out
}

// SelectOIDs filters an existing candidate list: it returns the subset of
// ids whose value in b satisfies lo <= v <= hi, preserving candidate order.
// Access to b is positional (gather).
func SelectOIDs(m *device.Meter, threads int, b *bat.BAT, ids []bat.OID, lo, hi int64) []bat.OID {
	return SelectOIDsPar(par.Bill(threads), m, b, ids, lo, hi)
}

// SelectOIDsPar is the morsel-parallel SelectOIDs.
func SelectOIDsPar(p par.P, m *device.Meter, b *bat.BAT, ids []bat.OID, lo, hi int64) []bat.OID {
	tails := b.Tails()
	var out []bat.OID
	if serial(p, len(ids)) {
		out = oidPool.Get(len(ids))
		for _, id := range ids {
			if v := tails[id]; v >= lo && v <= hi {
				out = append(out, id)
			}
		}
	} else {
		buf := oidPool.GetN(len(ids))
		counts, _, err := par.ForCounted(p, len(ids), func(_ *mem.Scratch, _, mlo, mhi int) int {
			cnt := 0
			for _, id := range ids[mlo:mhi] {
				if v := tails[id]; v >= lo && v <= hi {
					buf[mlo+cnt] = id
					cnt++
				}
			}
			return cnt
		})
		if err != nil {
			out = buf[:0]
		} else {
			out = par.Compact(counts, p.ChunkSize(), buf)
			mem.Ints.Put(counts)
		}
	}
	if m != nil {
		gather := device.RandomFetchBytes(int64(len(ids)), int64(b.Width()), b.TailBytes())
		m.CPUWork(p.NThreads(),
			int64(len(ids))*oidBytes+int64(len(out))*oidBytes+gather,
			0,
			int64(len(ids))*OpsSelect)
	}
	return out
}

// Fetch is the invisible (positional) join: it returns b's values at the
// given positions, aligned with ids. This is how late-materializing
// column stores implement projections (§IV-C).
func Fetch(m *device.Meter, threads int, b *bat.BAT, ids []bat.OID) []int64 {
	return FetchPar(par.Bill(threads), m, b, ids)
}

// FetchPar is the morsel-parallel Fetch: each worker writes a disjoint
// slice of the output, so candidate alignment is preserved for free.
func FetchPar(p par.P, m *device.Meter, b *bat.BAT, ids []bat.OID) []int64 {
	tails := b.Tails()
	out := mem.I64.GetN(len(ids))
	if serial(p, len(ids)) {
		for i, id := range ids {
			out[i] = tails[id]
		}
	} else {
		p.For(len(ids), func(mlo, mhi int) {
			for i := mlo; i < mhi; i++ {
				out[i] = tails[ids[i]]
			}
		})
	}
	if m != nil {
		gather := device.RandomFetchBytes(int64(len(ids)), int64(b.Width()), b.TailBytes())
		m.CPUWork(p.NThreads(),
			int64(len(ids))*oidBytes+int64(len(out))*int64(b.Width())+gather,
			0,
			int64(len(ids))*OpsFetch)
	}
	return out
}

// Grouping is the result of a group-by: a group ID per input position
// (positionally aligned with the input, the MonetDB representation noted
// in §IV-E) plus the distinct keys in first-appearance order.
type Grouping struct {
	IDs     []uint32 // group id per input position
	NGroups int
	Keys    []int64 // Keys[g] is the key value of group g
}

// GroupBy hash-groups the given keys, assigning dense group IDs in order
// of first appearance.
func GroupBy(m *device.Meter, threads int, keys []int64) *Grouping {
	return GroupByPar(par.Bill(threads), m, keys)
}

// GroupByPar is the morsel-parallel GroupBy: each worker hash-groups one
// contiguous block into a partial grouping, the partials merge in block
// order (so global group IDs follow global first appearance, exactly as
// the serial loop assigns them), and the per-position ID rewrite runs
// parallel again.
func GroupByPar(p par.P, m *device.Meter, keys []int64) *Grouping {
	var g *Grouping
	if serial(p, len(keys)) {
		idx := make(map[int64]uint32, 64)
		ids := make([]uint32, len(keys))
		var uniq []int64
		for i, k := range keys {
			gid, ok := idx[k]
			if !ok {
				gid = uint32(len(uniq))
				idx[k] = gid
				uniq = append(uniq, k)
			}
			ids[i] = gid
		}
		g = &Grouping{IDs: ids, NGroups: len(uniq), Keys: uniq}
	} else {
		g = groupByBlocks(p, keys)
	}
	if m != nil {
		m.CPUWork(p.NThreads(),
			int64(len(keys))*8+int64(len(g.IDs))*4, 0,
			int64(len(keys))*OpsHashGroup)
	}
	return g
}

// groupByBlocks is the partial-state grouping core shared by GroupByPar.
func groupByBlocks(p par.P, keys []int64) *Grouping {
	blocks := p.Blocks(len(keys))
	type partial struct {
		idx  map[int64]uint32
		uniq []int64
	}
	parts := make([]partial, len(blocks))
	ids := make([]uint32, len(keys)) // block-local ids first, rewritten below
	par.RunBlocks(p, len(keys), func(b, lo, hi int) {
		pt := &parts[b]
		if pt.idx == nil {
			pt.idx = make(map[int64]uint32, 64)
		}
		for i := lo; i < hi; i++ {
			k := keys[i]
			gid, ok := pt.idx[k]
			if !ok {
				gid = uint32(len(pt.uniq))
				pt.idx[k] = gid
				pt.uniq = append(pt.uniq, k)
			}
			ids[i] = gid
		}
	})
	// Merge block partials in block order: first appearance across blocks
	// equals first appearance in the serial scan.
	global := make(map[int64]uint32, 64)
	var uniq []int64
	remap := make([][]uint32, len(blocks))
	for b := range parts {
		remap[b] = make([]uint32, len(parts[b].uniq))
		for localID, k := range parts[b].uniq {
			gid, ok := global[k]
			if !ok {
				gid = uint32(len(uniq))
				global[k] = gid
				uniq = append(uniq, k)
			}
			remap[b][localID] = gid
		}
	}
	blockOf := func(i int) int {
		// Blocks are equal-sized except the last; derive the index from the
		// first block's span.
		size := blocks[0].Hi - blocks[0].Lo
		b := i / size
		if b >= len(blocks) {
			b = len(blocks) - 1
		}
		return b
	}
	p.For(len(keys), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ids[i] = remap[blockOf(i)][ids[i]]
		}
	})
	return &Grouping{IDs: ids, NGroups: len(uniq), Keys: uniq}
}

// CombineKeys packs two key columns into one, for multi-attribute grouping
// (Q1 groups by l_returnflag, l_linestatus). The packing is positional:
// b's values must lie in [0, base) so they occupy the low "digit" exactly;
// a's values may be negative (SplitKey uses floored division to unpack
// them). CombineKeys reports an error when a b value is outside its digit
// or when a[i]*base+b[i] would overflow int64 — silently wrapped keys
// would collide distinct groups.
func CombineKeys(a, b []int64, base int64) ([]int64, error) {
	if base <= 0 {
		return nil, fmt.Errorf("bulk: CombineKeys base %d must be positive", base)
	}
	aMin := math.MinInt64 / base // truncation keeps aMin*base >= MinInt64
	out := make([]int64, len(a))
	for i := range a {
		if b[i] < 0 || b[i] >= base {
			return nil, fmt.Errorf("bulk: CombineKeys value %d at %d outside [0,%d)", b[i], i, base)
		}
		if a[i] > (math.MaxInt64-b[i])/base || a[i] < aMin {
			return nil, fmt.Errorf("bulk: CombineKeys value %d at %d overflows int64 at base %d", a[i], i, base)
		}
		out[i] = a[i]*base + b[i]
	}
	return out, nil
}

// SplitKey reverses CombineKeys. Go's truncating / and % mis-split
// combined keys with a negative high part (e.g. a=-1, b=2, base=10 packs
// to -8, which truncating division splits as (0,-8)), so the split floors:
// the remainder is normalized into [0, base) and the quotient adjusted.
func SplitKey(k, base int64) (a, b int64) {
	a, b = k/base, k%base
	if b < 0 {
		a--
		b += base
	}
	return a, b
}

// SumGrouped returns per-group sums of vals under the grouping.
func SumGrouped(m *device.Meter, threads int, vals []int64, g *Grouping) []int64 {
	return SumGroupedPar(par.Bill(threads), m, vals, g)
}

// SumGroupedPar is the morsel-parallel SumGrouped: per-worker partial sum
// arrays merged by addition (exact for int64, so the result is identical
// for every worker count).
func SumGroupedPar(p par.P, m *device.Meter, vals []int64, g *Grouping) []int64 {
	out := mem.I64.GetN(g.NGroups)
	clear(out)
	if serial(p, len(vals)) {
		for i, v := range vals {
			out[g.IDs[i]] += v
		}
	} else {
		nb := p.NBlocks(len(vals))
		parts := mem.I64.GetN(nb * g.NGroups)
		clear(parts)
		par.RunBlocks(p, len(vals), func(b, lo, hi int) {
			pb := parts[b*g.NGroups : (b+1)*g.NGroups]
			for i := lo; i < hi; i++ {
				pb[g.IDs[i]] += vals[i]
			}
		})
		for b := 0; b < nb; b++ {
			pb := parts[b*g.NGroups : (b+1)*g.NGroups]
			for gi, v := range pb {
				out[gi] += v
			}
		}
		mem.I64.Put(parts)
	}
	charge(m, p.NThreads(), len(vals), 12)
	return out
}

// CountGrouped returns per-group tuple counts.
func CountGrouped(m *device.Meter, threads int, g *Grouping) []int64 {
	return CountGroupedPar(par.Bill(threads), m, g)
}

// CountGroupedPar is the morsel-parallel CountGrouped.
func CountGroupedPar(p par.P, m *device.Meter, g *Grouping) []int64 {
	out := mem.I64.GetN(g.NGroups)
	clear(out)
	if serial(p, len(g.IDs)) {
		for _, id := range g.IDs {
			out[id]++
		}
	} else {
		nb := p.NBlocks(len(g.IDs))
		parts := mem.I64.GetN(nb * g.NGroups)
		clear(parts)
		par.RunBlocks(p, len(g.IDs), func(b, lo, hi int) {
			pb := parts[b*g.NGroups : (b+1)*g.NGroups]
			for i := lo; i < hi; i++ {
				pb[g.IDs[i]]++
			}
		})
		for b := 0; b < nb; b++ {
			pb := parts[b*g.NGroups : (b+1)*g.NGroups]
			for gi, v := range pb {
				out[gi] += v
			}
		}
		mem.I64.Put(parts)
	}
	charge(m, p.NThreads(), len(g.IDs), 4)
	return out
}

// MinGrouped returns per-group minima of vals under the grouping.
func MinGrouped(m *device.Meter, threads int, vals []int64, g *Grouping) []int64 {
	return MinGroupedPar(par.Bill(threads), m, vals, g)
}

// MinGroupedPar is the morsel-parallel MinGrouped.
func MinGroupedPar(p par.P, m *device.Meter, vals []int64, g *Grouping) []int64 {
	out, seen := extremaGrouped(p, vals, g, true)
	mem.Bools.Put(seen)
	charge(m, p.NThreads(), len(vals), 12)
	return out
}

// MaxGrouped returns per-group maxima of vals under the grouping.
func MaxGrouped(m *device.Meter, threads int, vals []int64, g *Grouping) []int64 {
	return MaxGroupedPar(par.Bill(threads), m, vals, g)
}

// MaxGroupedPar is the morsel-parallel MaxGrouped.
func MaxGroupedPar(p par.P, m *device.Meter, vals []int64, g *Grouping) []int64 {
	out, seen := extremaGrouped(p, vals, g, false)
	mem.Bools.Put(seen)
	charge(m, p.NThreads(), len(vals), 12)
	return out
}

// extremaGrouped computes per-group minima (min=true) or maxima with
// per-worker partial (value, seen) states merged per group.
func extremaGrouped(p par.P, vals []int64, g *Grouping, min bool) ([]int64, []bool) {
	out := mem.I64.GetN(g.NGroups)
	clear(out)
	seen := mem.Bools.GetN(g.NGroups)
	clear(seen)
	if serial(p, len(vals)) {
		for i, v := range vals {
			id := g.IDs[i]
			if !seen[id] || better(min, v, out[id]) {
				out[id], seen[id] = v, true
			}
		}
		return out, seen
	}
	nb := p.NBlocks(len(vals))
	parts := mem.I64.GetN(nb * g.NGroups)
	clear(parts)
	pseen := mem.Bools.GetN(nb * g.NGroups)
	clear(pseen)
	par.RunBlocks(p, len(vals), func(b, lo, hi int) {
		pb := parts[b*g.NGroups : (b+1)*g.NGroups]
		ps := pseen[b*g.NGroups : (b+1)*g.NGroups]
		for i := lo; i < hi; i++ {
			id := g.IDs[i]
			if !ps[id] || better(min, vals[i], pb[id]) {
				pb[id], ps[id] = vals[i], true
			}
		}
	})
	for b := 0; b < nb; b++ {
		pb := parts[b*g.NGroups : (b+1)*g.NGroups]
		ps := pseen[b*g.NGroups : (b+1)*g.NGroups]
		for gi := range pb {
			if !ps[gi] {
				continue
			}
			if !seen[gi] || better(min, pb[gi], out[gi]) {
				out[gi], seen[gi] = pb[gi], true
			}
		}
	}
	mem.I64.Put(parts)
	mem.Bools.Put(pseen)
	return out, seen
}

// Sum returns the sum of vals.
func Sum(m *device.Meter, threads int, vals []int64) int64 {
	return SumPar(par.Bill(threads), m, vals)
}

// SumPar is the morsel-parallel Sum.
func SumPar(p par.P, m *device.Meter, vals []int64) int64 {
	var s int64
	if serial(p, len(vals)) {
		for _, v := range vals {
			s += v
		}
	} else {
		nb := p.NBlocks(len(vals))
		parts := mem.I64.GetN(nb)
		clear(parts)
		par.RunBlocks(p, len(vals), func(b, lo, hi int) {
			var bs int64
			for _, v := range vals[lo:hi] {
				bs += v
			}
			parts[b] += bs
		})
		for _, v := range parts {
			s += v
		}
		mem.I64.Put(parts)
	}
	charge(m, p.NThreads(), len(vals), 8)
	return s
}

// Count is the trivial aggregate; it charges nothing.
func Count(vals []int64) int64 { return int64(len(vals)) }

// Min returns the smallest value; ok is false on empty input.
func Min(m *device.Meter, threads int, vals []int64) (int64, bool) {
	return MinPar(par.Bill(threads), m, vals)
}

// MinPar is the morsel-parallel Min.
func MinPar(p par.P, m *device.Meter, vals []int64) (int64, bool) {
	return extremaPar(p, m, vals, true)
}

// Max returns the largest value; ok is false on empty input.
func Max(m *device.Meter, threads int, vals []int64) (int64, bool) {
	return MaxPar(par.Bill(threads), m, vals)
}

// MaxPar is the morsel-parallel Max.
func MaxPar(p par.P, m *device.Meter, vals []int64) (int64, bool) {
	return extremaPar(p, m, vals, false)
}

func extremaPar(p par.P, m *device.Meter, vals []int64, min bool) (int64, bool) {
	if len(vals) == 0 {
		return 0, false
	}
	best := vals[0]
	if serial(p, len(vals)) {
		for _, v := range vals[1:] {
			if better(min, v, best) {
				best = v
			}
		}
	} else {
		nb := p.NBlocks(len(vals))
		parts := mem.I64.GetN(nb)
		clear(parts)
		par.RunBlocks(p, len(vals), func(b, lo, hi int) {
			bb := vals[lo]
			for _, v := range vals[lo+1 : hi] {
				if better(min, v, bb) {
					bb = v
				}
			}
			if blo, _ := p.BlockRange(len(vals), b); lo == blo || better(min, bb, parts[b]) {
				parts[b] = bb
			}
		})
		best = parts[0]
		for _, v := range parts[1:] {
			if better(min, v, best) {
				best = v
			}
		}
		mem.I64.Put(parts)
	}
	charge(m, p.NThreads(), len(vals), 8)
	return best, true
}

// better is the extremum comparison: a improves on b. A named function
// (not a captured closure) so the serial aggregate paths stay
// allocation-free.
func better(min bool, a, b int64) bool {
	if min {
		return a < b
	}
	return a > b
}

func charge(m *device.Meter, threads, n, bytesPer int) {
	if m != nil {
		m.CPUWork(threads, int64(n)*int64(bytesPer), 0, int64(n)*OpsAggregate)
	}
}

// GroupByMulti hash-groups tuples by multi-column keys, returning the
// grouping plus the per-group key values of every column.
func GroupByMulti(m *device.Meter, threads int, cols [][]int64) (*Grouping, [][]int64) {
	return GroupByMultiPar(par.Bill(threads), m, cols)
}

// GroupByMultiPar is the morsel-parallel GroupByMulti, built on the same
// block-partial merge as GroupByPar (first-appearance order preserved).
func GroupByMultiPar(p par.P, m *device.Meter, cols [][]int64) (*Grouping, [][]int64) {
	if len(cols) == 0 {
		return &Grouping{}, nil
	}
	n := len(cols[0])
	g, keys := groupMultiCore(p, cols)
	if m != nil {
		// One group.new pass plus a group.derive pass per further column.
		m.CPUWork(p.NThreads(), int64(n)*8*int64(len(cols))+int64(n)*4, 0,
			int64(n)*OpsHashGroup*int64(len(cols)))
	}
	return g, keys
}

// groupMultiCore is the unmetered multi-column grouping shared by
// GroupByMultiPar and the A&R group refinement: dense group IDs in
// first-appearance order plus the per-group key values of every column.
func groupMultiCore(p par.P, cols [][]int64) (*Grouping, [][]int64) {
	n := len(cols[0])
	packKey := func(buf []byte, i int) []byte {
		buf = buf[:0]
		for k := range cols {
			v := uint64(cols[k][i])
			for s := 0; s < 8; s++ {
				buf = append(buf, byte(v>>(8*s)))
			}
		}
		return buf
	}
	ids := make([]uint32, n)
	var order []int // global first-appearance positions per group
	if serial(p, n) {
		idx := make(map[string]uint32, 64)
		keyBuf := make([]byte, 0, len(cols)*8)
		for i := 0; i < n; i++ {
			keyBuf = packKey(keyBuf, i)
			g, ok := idx[string(keyBuf)]
			if !ok {
				g = uint32(len(order))
				idx[string(keyBuf)] = g
				order = append(order, i)
			}
			ids[i] = g
		}
	} else {
		blocks := p.Blocks(n)
		type partial struct {
			idx    map[string]uint32
			firsts []int // global position of each local group's first row
		}
		parts := make([]partial, len(blocks))
		par.RunBlocks(p, n, func(b, lo, hi int) {
			pt := &parts[b]
			if pt.idx == nil {
				pt.idx = make(map[string]uint32, 64)
			}
			keyBuf := make([]byte, 0, len(cols)*8)
			for i := lo; i < hi; i++ {
				keyBuf = packKey(keyBuf, i)
				g, ok := pt.idx[string(keyBuf)]
				if !ok {
					g = uint32(len(pt.firsts))
					pt.idx[string(keyBuf)] = g
					pt.firsts = append(pt.firsts, i)
				}
				ids[i] = g
			}
		})
		global := make(map[string]uint32, 64)
		remap := make([][]uint32, len(blocks))
		keyBuf := make([]byte, 0, len(cols)*8)
		for b := range parts {
			remap[b] = make([]uint32, len(parts[b].firsts))
			for localID, first := range parts[b].firsts {
				keyBuf = packKey(keyBuf, first)
				g, ok := global[string(keyBuf)]
				if !ok {
					g = uint32(len(order))
					global[string(keyBuf)] = g
					order = append(order, first)
				}
				remap[b][localID] = g
			}
		}
		size := blocks[0].Hi - blocks[0].Lo
		p.For(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				b := i / size
				if b >= len(blocks) {
					b = len(blocks) - 1
				}
				ids[i] = remap[b][ids[i]]
			}
		})
	}
	keys := make([][]int64, len(cols))
	for k := range cols {
		keys[k] = make([]int64, len(order))
		for gi, first := range order {
			keys[k][gi] = cols[k][first]
		}
	}
	return &Grouping{IDs: ids, NGroups: len(order)}, keys
}
