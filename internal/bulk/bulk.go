// Package bulk implements the classic MonetDB-style bulk processing model
// (§II-B of the paper): operators are simple, tight loops without function
// calls in the hot path that fully materialize their results for the next
// operator to pick up. Package bulk is both
//
//   - the CPU-only baseline ("MonetDB" in the paper's charts) that the
//     Approximate & Refine implementation is compared against, and
//   - the refinement substrate: A&R refinement operators run the same tight
//     CPU loops over candidates and residuals.
//
// Every operator takes an optional *device.Meter; when non-nil, the
// operator charges its simulated cost (bytes scanned/gathered/written and
// tuple-ops executed) against the CPU device with the given thread count.
// A nil meter executes without cost accounting.
package bulk

import (
	"repro/internal/bat"
	"repro/internal/device"
)

// Per-tuple op weights used for compute-cost charging. A plain comparison
// in a selection loop is the unit; hashing costs several units, matching
// the relative operator costs observable in bulk engines.
// Hash weights reflect measured bulk-engine costs (tens of ns per tuple
// for hash build/group on out-of-cache tables).
const (
	OpsSelect    = 1
	OpsFetch     = 1
	OpsArith     = 1
	OpsAggregate = 1
	OpsHashBuild = 24
	OpsHashProbe = 12
	OpsHashGroup = 12
)

// oidBytes is the physical size the classic engine pays per tuple ID in
// candidate lists: MonetDB v11 BATs carry 64-bit oids on 64-bit builds.
// (The A&R operators ship compact 32-bit IDs across the bus instead; that
// difference is part of the design.)
const oidBytes = 8

// SelectRange returns the positions of b whose value v satisfies
// lo <= v <= hi, in input order (the bulk selection is order-preserving,
// §IV-A item 2). This is MonetDB's uselect.
func SelectRange(m *device.Meter, threads int, b *bat.BAT, lo, hi int64) []bat.OID {
	tails := b.Tails()
	out := make([]bat.OID, 0, len(tails)/4)
	for i, v := range tails {
		if v >= lo && v <= hi {
			out = append(out, bat.OID(i))
		}
	}
	if m != nil {
		m.CPUWork(threads,
			b.TailBytes()+int64(len(out))*oidBytes, 0,
			int64(len(tails))*OpsSelect)
	}
	return out
}

// SelectOIDs filters an existing candidate list: it returns the subset of
// ids whose value in b satisfies lo <= v <= hi, preserving candidate order.
// Access to b is positional (gather).
func SelectOIDs(m *device.Meter, threads int, b *bat.BAT, ids []bat.OID, lo, hi int64) []bat.OID {
	tails := b.Tails()
	out := make([]bat.OID, 0, len(ids)/2)
	for _, id := range ids {
		if v := tails[id]; v >= lo && v <= hi {
			out = append(out, id)
		}
	}
	if m != nil {
		gather := device.RandomFetchBytes(int64(len(ids)), int64(b.Width()), b.TailBytes())
		m.CPUWork(threads,
			int64(len(ids))*oidBytes+int64(len(out))*oidBytes+gather,
			0,
			int64(len(ids))*OpsSelect)
	}
	return out
}

// Fetch is the invisible (positional) join: it returns b's values at the
// given positions, aligned with ids. This is how late-materializing
// column stores implement projections (§IV-C).
func Fetch(m *device.Meter, threads int, b *bat.BAT, ids []bat.OID) []int64 {
	tails := b.Tails()
	out := make([]int64, len(ids))
	for i, id := range ids {
		out[i] = tails[id]
	}
	if m != nil {
		gather := device.RandomFetchBytes(int64(len(ids)), int64(b.Width()), b.TailBytes())
		m.CPUWork(threads,
			int64(len(ids))*oidBytes+int64(len(out))*int64(b.Width())+gather,
			0,
			int64(len(ids))*OpsFetch)
	}
	return out
}

// Grouping is the result of a group-by: a group ID per input position
// (positionally aligned with the input, the MonetDB representation noted
// in §IV-E) plus the distinct keys in first-appearance order.
type Grouping struct {
	IDs     []uint32 // group id per input position
	NGroups int
	Keys    []int64 // Keys[g] is the key value of group g
}

// GroupBy hash-groups the given keys, assigning dense group IDs in order
// of first appearance.
func GroupBy(m *device.Meter, threads int, keys []int64) *Grouping {
	idx := make(map[int64]uint32, 64)
	ids := make([]uint32, len(keys))
	var uniq []int64
	for i, k := range keys {
		g, ok := idx[k]
		if !ok {
			g = uint32(len(uniq))
			idx[k] = g
			uniq = append(uniq, k)
		}
		ids[i] = g
	}
	if m != nil {
		m.CPUWork(threads,
			int64(len(keys))*8+int64(len(ids))*4, 0,
			int64(len(keys))*OpsHashGroup)
	}
	return &Grouping{IDs: ids, NGroups: len(uniq), Keys: uniq}
}

// CombineKeys packs two key columns into one, for multi-attribute grouping
// (Q1 groups by l_returnflag, l_linestatus). b's values must be
// non-negative; base must exceed every value in b.
func CombineKeys(a, b []int64, base int64) []int64 {
	out := make([]int64, len(a))
	for i := range a {
		out[i] = a[i]*base + b[i]
	}
	return out
}

// SplitKey reverses CombineKeys.
func SplitKey(k, base int64) (a, b int64) { return k / base, k % base }

// SumGrouped returns per-group sums of vals under the grouping.
func SumGrouped(m *device.Meter, threads int, vals []int64, g *Grouping) []int64 {
	out := make([]int64, g.NGroups)
	for i, v := range vals {
		out[g.IDs[i]] += v
	}
	charge(m, threads, len(vals), 12)
	return out
}

// CountGrouped returns per-group tuple counts.
func CountGrouped(m *device.Meter, threads int, g *Grouping) []int64 {
	out := make([]int64, g.NGroups)
	for _, id := range g.IDs {
		out[id]++
	}
	charge(m, threads, len(g.IDs), 4)
	return out
}

// MinGrouped returns per-group minima of vals under the grouping.
func MinGrouped(m *device.Meter, threads int, vals []int64, g *Grouping) []int64 {
	out := make([]int64, g.NGroups)
	seen := make([]bool, g.NGroups)
	for i, v := range vals {
		id := g.IDs[i]
		if !seen[id] || v < out[id] {
			out[id], seen[id] = v, true
		}
	}
	charge(m, threads, len(vals), 12)
	return out
}

// MaxGrouped returns per-group maxima of vals under the grouping.
func MaxGrouped(m *device.Meter, threads int, vals []int64, g *Grouping) []int64 {
	out := make([]int64, g.NGroups)
	seen := make([]bool, g.NGroups)
	for i, v := range vals {
		id := g.IDs[i]
		if !seen[id] || v > out[id] {
			out[id], seen[id] = v, true
		}
	}
	charge(m, threads, len(vals), 12)
	return out
}

// Sum returns the sum of vals.
func Sum(m *device.Meter, threads int, vals []int64) int64 {
	var s int64
	for _, v := range vals {
		s += v
	}
	charge(m, threads, len(vals), 8)
	return s
}

// Count is the trivial aggregate; it charges nothing.
func Count(vals []int64) int64 { return int64(len(vals)) }

// Min returns the smallest value; ok is false on empty input.
func Min(m *device.Meter, threads int, vals []int64) (int64, bool) {
	if len(vals) == 0 {
		return 0, false
	}
	lo := vals[0]
	for _, v := range vals[1:] {
		if v < lo {
			lo = v
		}
	}
	charge(m, threads, len(vals), 8)
	return lo, true
}

// Max returns the largest value; ok is false on empty input.
func Max(m *device.Meter, threads int, vals []int64) (int64, bool) {
	if len(vals) == 0 {
		return 0, false
	}
	hi := vals[0]
	for _, v := range vals[1:] {
		if v > hi {
			hi = v
		}
	}
	charge(m, threads, len(vals), 8)
	return hi, true
}

func charge(m *device.Meter, threads, n, bytesPer int) {
	if m != nil {
		m.CPUWork(threads, int64(n)*int64(bytesPer), 0, int64(n)*OpsAggregate)
	}
}

// GroupByMulti hash-groups tuples by multi-column keys, returning the
// grouping plus the per-group key values of every column.
func GroupByMulti(m *device.Meter, threads int, cols [][]int64) (*Grouping, [][]int64) {
	if len(cols) == 0 {
		return &Grouping{}, nil
	}
	n := len(cols[0])
	idx := make(map[string]uint32, 64)
	ids := make([]uint32, n)
	var order []int
	keyBuf := make([]byte, 0, len(cols)*8)
	for i := 0; i < n; i++ {
		keyBuf = keyBuf[:0]
		for k := range cols {
			v := uint64(cols[k][i])
			for s := 0; s < 8; s++ {
				keyBuf = append(keyBuf, byte(v>>(8*s)))
			}
		}
		g, ok := idx[string(keyBuf)]
		if !ok {
			g = uint32(len(order))
			idx[string(keyBuf)] = g
			order = append(order, i)
		}
		ids[i] = g
	}
	keys := make([][]int64, len(cols))
	for k := range cols {
		keys[k] = make([]int64, len(order))
		for gi, first := range order {
			keys[k][gi] = cols[k][first]
		}
	}
	if m != nil {
		// One group.new pass plus a group.derive pass per further column.
		m.CPUWork(threads, int64(n)*8*int64(len(cols))+int64(n)*4, 0,
			int64(n)*OpsHashGroup*int64(len(cols)))
	}
	return &Grouping{IDs: ids, NGroups: len(order)}, keys
}
