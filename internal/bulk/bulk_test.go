package bulk

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bat"
	"repro/internal/device"
	"repro/internal/par"
)

func intsBAT(vals ...int64) *bat.BAT { return bat.NewDense(vals, bat.Width32) }

func TestSelectRange(t *testing.T) {
	b := intsBAT(5, 1, 9, 3, 7, 3)
	got := SelectRange(nil, 1, b, 3, 7)
	want := []bat.OID{0, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestSelectRangeEmptyAndAll(t *testing.T) {
	b := intsBAT(1, 2, 3)
	if got := SelectRange(nil, 1, b, 10, 20); len(got) != 0 {
		t.Errorf("empty range returned %v", got)
	}
	if got := SelectRange(nil, 1, b, -100, 100); len(got) != 3 {
		t.Errorf("covering range returned %d ids, want 3", len(got))
	}
}

func TestSelectRangeOrderPreserving(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]int64, 10000)
	for i := range vals {
		vals[i] = int64(rng.Intn(1000))
	}
	got := SelectRange(nil, 1, intsBAT(vals...), 100, 500)
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatal("bulk selection must be order-preserving (§IV-A item 2)")
		}
	}
}

func TestSelectOIDsSubsetsCandidates(t *testing.T) {
	b := intsBAT(10, 20, 30, 40, 50)
	cands := []bat.OID{4, 1, 3}
	got := SelectOIDs(nil, 1, b, cands, 20, 40)
	want := []bat.OID{1, 3} // candidate order preserved
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestFetch(t *testing.T) {
	b := intsBAT(100, 200, 300)
	got := Fetch(nil, 1, b, []bat.OID{2, 0})
	if got[0] != 300 || got[1] != 100 {
		t.Errorf("Fetch = %v, want [300 100]", got)
	}
}

func TestGroupByDenseFirstAppearance(t *testing.T) {
	g := GroupBy(nil, 1, []int64{7, 3, 7, 9, 3})
	if g.NGroups != 3 {
		t.Fatalf("NGroups = %d, want 3", g.NGroups)
	}
	wantIDs := []uint32{0, 1, 0, 2, 1}
	for i, w := range wantIDs {
		if g.IDs[i] != w {
			t.Errorf("IDs[%d] = %d, want %d", i, g.IDs[i], w)
		}
	}
	wantKeys := []int64{7, 3, 9}
	for i, w := range wantKeys {
		if g.Keys[i] != w {
			t.Errorf("Keys[%d] = %d, want %d", i, g.Keys[i], w)
		}
	}
}

func TestGroupByPropertyPartition(t *testing.T) {
	f := func(keys []int64) bool {
		g := GroupBy(nil, 1, keys)
		if len(g.IDs) != len(keys) {
			return false
		}
		for i, k := range keys {
			if g.Keys[g.IDs[i]] != k {
				return false // group id must map back to the original key
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCombineSplitKeys(t *testing.T) {
	a := []int64{1, 2, 0}
	b := []int64{5, 0, 9}
	combined, err := CombineKeys(a, b, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		ga, gb := SplitKey(combined[i], 10)
		if ga != a[i] || gb != b[i] {
			t.Errorf("SplitKey(%d) = (%d,%d), want (%d,%d)", combined[i], ga, gb, a[i], b[i])
		}
	}
}

// TestCombineSplitKeysNegative is the regression for the truncating-division
// split: combined keys with a negative high part round-trip exactly, and
// grouping on a combined column with negative values produces the same
// partition as grouping on the tuple directly.
func TestCombineSplitKeysNegative(t *testing.T) {
	a := []int64{-1, -3, 0, -1, 7, math.MinInt64 / 10, (math.MaxInt64 - 9) / 10}
	b := []int64{2, 0, 9, 2, 5, 3, 9}
	combined, err := CombineKeys(a, b, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		ga, gb := SplitKey(combined[i], 10)
		if ga != a[i] || gb != b[i] {
			t.Errorf("SplitKey(%d) = (%d,%d), want (%d,%d)", combined[i], ga, gb, a[i], b[i])
		}
	}
	// Grouping on the combined key must partition identically to grouping
	// on the (a,b) tuples: equal combined keys iff equal tuples.
	g := GroupBy(nil, 1, combined)
	want, _ := GroupByMulti(nil, 1, [][]int64{a, b})
	if g.NGroups != want.NGroups {
		t.Fatalf("combined-key grouping found %d groups, tuple grouping %d", g.NGroups, want.NGroups)
	}
	for i := range g.IDs {
		if g.IDs[i] != want.IDs[i] {
			t.Fatalf("IDs[%d] = %d, tuple grouping says %d", i, g.IDs[i], want.IDs[i])
		}
	}
}

// TestCombineKeysRejectsBadDomain covers the validated domain: low-digit
// values outside [0, base) and high parts that would overflow int64.
func TestCombineKeysRejectsBadDomain(t *testing.T) {
	if _, err := CombineKeys([]int64{1}, []int64{10}, 10); err == nil {
		t.Error("b value == base accepted")
	}
	if _, err := CombineKeys([]int64{1}, []int64{-1}, 10); err == nil {
		t.Error("negative b value accepted")
	}
	if _, err := CombineKeys([]int64{math.MaxInt64/10 + 1}, []int64{0}, 10); err == nil {
		t.Error("overflowing a value accepted")
	}
	if _, err := CombineKeys([]int64{math.MaxInt64 / 10}, []int64{9}, 10); err == nil {
		t.Error("boundary overflow (a*base+b > MaxInt64) accepted")
	}
	if _, err := CombineKeys([]int64{math.MinInt64/10 - 1}, []int64{0}, 10); err == nil {
		t.Error("negative overflow accepted")
	}
	if _, err := CombineKeys([]int64{1}, []int64{0}, 0); err == nil {
		t.Error("non-positive base accepted")
	}
}

func TestGroupedAggregates(t *testing.T) {
	keys := []int64{1, 2, 1, 2, 1}
	vals := []int64{10, 20, 30, 40, 50}
	g := GroupBy(nil, 1, keys)
	sums := SumGrouped(nil, 1, vals, g)
	if sums[0] != 90 || sums[1] != 60 {
		t.Errorf("sums = %v, want [90 60]", sums)
	}
	counts := CountGrouped(nil, 1, g)
	if counts[0] != 3 || counts[1] != 2 {
		t.Errorf("counts = %v, want [3 2]", counts)
	}
	mins := MinGrouped(nil, 1, vals, g)
	if mins[0] != 10 || mins[1] != 20 {
		t.Errorf("mins = %v, want [10 20]", mins)
	}
	maxs := MaxGrouped(nil, 1, vals, g)
	if maxs[0] != 50 || maxs[1] != 40 {
		t.Errorf("maxs = %v, want [50 40]", maxs)
	}
}

func TestGlobalAggregates(t *testing.T) {
	vals := []int64{3, -1, 7, 0}
	if s := Sum(nil, 1, vals); s != 9 {
		t.Errorf("Sum = %d, want 9", s)
	}
	if c := Count(vals); c != 4 {
		t.Errorf("Count = %d, want 4", c)
	}
	if lo, ok := Min(nil, 1, vals); !ok || lo != -1 {
		t.Errorf("Min = %d,%v, want -1,true", lo, ok)
	}
	if hi, ok := Max(nil, 1, vals); !ok || hi != 7 {
		t.Errorf("Max = %d,%v, want 7,true", hi, ok)
	}
	if _, ok := Min(nil, 1, nil); ok {
		t.Error("Min on empty input reported ok")
	}
	if _, ok := Max(nil, 1, nil); ok {
		t.Error("Max on empty input reported ok")
	}
}

func TestHashJoinMatchesNestedLoop(t *testing.T) {
	f := func(rawL, rawR []uint8) bool {
		left := make([]int64, len(rawL))
		for i, v := range rawL {
			left[i] = int64(v % 16)
		}
		right := make([]int64, len(rawR))
		for i, v := range rawR {
			right[i] = int64(v % 16)
		}
		lids, rids := HashJoin(nil, 1, left, right)
		if len(lids) != len(rids) {
			return false
		}
		// Count matches both ways.
		want := 0
		for _, l := range left {
			for _, r := range right {
				if l == r {
					want++
				}
			}
		}
		if len(lids) != want {
			return false
		}
		for i := range lids {
			if left[lids[i]] != right[rids[i]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFKIndexAndJoin(t *testing.T) {
	pk := []int64{100, 101, 102, 103, 104}
	ix := BuildFKIndex(nil, 1, pk)
	if ix == nil {
		t.Fatal("BuildFKIndex returned nil for a valid PK")
	}
	fks := []int64{103, 100, 999, 104}
	pos, hit := FKJoin(nil, 1, ix, fks)
	wantPos := []bat.OID{3, 0, 0, 4}
	wantHit := []bool{true, true, false, true}
	for i := range fks {
		if hit[i] != wantHit[i] {
			t.Errorf("hit[%d] = %v, want %v", i, hit[i], wantHit[i])
		}
		if hit[i] && pos[i] != wantPos[i] {
			t.Errorf("pos[%d] = %d, want %d", i, pos[i], wantPos[i])
		}
	}
}

func TestBuildFKIndexRejectsDuplicates(t *testing.T) {
	if ix := BuildFKIndex(nil, 1, []int64{1, 2, 2}); ix != nil {
		t.Error("duplicate keys accepted as PK")
	}
}

func TestBuildFKIndexRejectsSparse(t *testing.T) {
	if ix := BuildFKIndex(nil, 1, []int64{0, 1 << 40}); ix != nil {
		t.Error("extremely sparse domain accepted")
	}
	if ix := BuildFKIndex(nil, 1, nil); ix != nil {
		t.Error("empty PK accepted")
	}
}

func TestArithMaps(t *testing.T) {
	a := []int64{100, 200}
	b := []int64{5, 10}
	if got := MapAdd(nil, 1, a, b); got[0] != 105 || got[1] != 210 {
		t.Errorf("MapAdd = %v", got)
	}
	if got := MapSub(nil, 1, a, b); got[0] != 95 || got[1] != 190 {
		t.Errorf("MapSub = %v", got)
	}
	// Fixed-point: 1.00 * 0.05 at scale 100 = 0.05.
	if got := MapMulScaled(nil, 1, []int64{100}, []int64{5}, 100); got[0] != 5 {
		t.Errorf("MapMulScaled = %v, want [5]", got)
	}
	if got := MapAddConst(nil, 1, a, 1); got[0] != 101 {
		t.Errorf("MapAddConst = %v", got)
	}
	// 1.00 - 0.05 at scale 100.
	if got := MapSubConstRev(nil, 1, []int64{5}, 100); got[0] != 95 {
		t.Errorf("MapSubConstRev = %v, want [95]", got)
	}
}

func TestMeteredOperatorsCharge(t *testing.T) {
	sys := device.PaperSystem()
	m := device.NewMeter(sys)
	vals := make([]int64, 100000)
	for i := range vals {
		vals[i] = int64(i)
	}
	b := bat.NewDense(vals, bat.Width32)
	SelectRange(m, 1, b, 0, 1000)
	if m.CPU == 0 {
		t.Error("metered SelectRange charged nothing")
	}
	if m.GPU != 0 || m.PCI != 0 {
		t.Error("CPU operator charged GPU/PCI time")
	}
	before := m.CPU
	Fetch(m, 1, b, []bat.OID{1, 2, 3})
	if m.CPU <= before {
		t.Error("metered Fetch charged nothing")
	}
}

// TestParallelKernelsMatchSerial asserts byte-identical output between the
// serial kernels and their morsel-parallel forms across worker counts and
// morsel sizes, including the first-appearance group order that downstream
// results depend on.
func TestParallelKernelsMatchSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	n := 40_000
	vals := make([]int64, n)
	keys := make([]int64, n)
	keys2 := make([]int64, n)
	for i := range vals {
		vals[i] = int64(rng.Intn(100_000)) - 50_000
		keys[i] = int64(rng.Intn(97))
		keys2[i] = int64(rng.Intn(11))
	}
	b := bat.NewDense(vals, bat.Width32)
	wantIDs := SelectRange(nil, 1, b, -20_000, 20_000)
	wantFetch := Fetch(nil, 1, b, wantIDs)
	wantSub := SelectOIDs(nil, 1, b, wantIDs, -5_000, 5_000)
	wantG := GroupBy(nil, 1, keys)
	wantGM, wantKeysM := GroupByMulti(nil, 1, [][]int64{keys, keys2})
	wantSums := SumGrouped(nil, 1, vals, wantG)
	wantCounts := CountGrouped(nil, 1, wantG)
	wantMins := MinGrouped(nil, 1, vals, wantG)
	wantMaxs := MaxGrouped(nil, 1, vals, wantG)
	wantSum := Sum(nil, 1, vals)
	wantMin, _ := Min(nil, 1, vals)
	wantMax, _ := Max(nil, 1, vals)

	eqOID := func(t *testing.T, what string, got, want []bat.OID) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s: len %d != %d", what, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: [%d] = %d, want %d", what, i, got[i], want[i])
			}
		}
	}
	eq64 := func(t *testing.T, what string, got, want []int64) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s: len %d != %d", what, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: [%d] = %d, want %d", what, i, got[i], want[i])
			}
		}
	}
	for _, workers := range []int{2, 3, 4, 8} {
		for _, chunk := range []int{0, 1, 97, 4096} {
			p := par.P{Threads: 1, Workers: workers, Chunk: chunk}
			t.Run("", func(t *testing.T) {
				eqOID(t, "SelectRangePar", SelectRangePar(p, nil, b, -20_000, 20_000), wantIDs)
				eq64(t, "FetchPar", FetchPar(p, nil, b, wantIDs), wantFetch)
				eqOID(t, "SelectOIDsPar", SelectOIDsPar(p, nil, b, wantIDs, -5_000, 5_000), wantSub)
				g := GroupByPar(p, nil, keys)
				if g.NGroups != wantG.NGroups {
					t.Fatalf("GroupByPar: %d groups, want %d", g.NGroups, wantG.NGroups)
				}
				eq64(t, "GroupByPar keys", g.Keys, wantG.Keys)
				for i := range wantG.IDs {
					if g.IDs[i] != wantG.IDs[i] {
						t.Fatalf("GroupByPar IDs[%d] = %d, want %d", i, g.IDs[i], wantG.IDs[i])
					}
				}
				gm, keysM := GroupByMultiPar(p, nil, [][]int64{keys, keys2})
				if gm.NGroups != wantGM.NGroups {
					t.Fatalf("GroupByMultiPar: %d groups, want %d", gm.NGroups, wantGM.NGroups)
				}
				for i := range wantGM.IDs {
					if gm.IDs[i] != wantGM.IDs[i] {
						t.Fatalf("GroupByMultiPar IDs[%d] = %d, want %d", i, gm.IDs[i], wantGM.IDs[i])
					}
				}
				for k := range wantKeysM {
					eq64(t, "GroupByMultiPar keys", keysM[k], wantKeysM[k])
				}
				eq64(t, "SumGroupedPar", SumGroupedPar(p, nil, vals, wantG), wantSums)
				eq64(t, "CountGroupedPar", CountGroupedPar(p, nil, wantG), wantCounts)
				eq64(t, "MinGroupedPar", MinGroupedPar(p, nil, vals, wantG), wantMins)
				eq64(t, "MaxGroupedPar", MaxGroupedPar(p, nil, vals, wantG), wantMaxs)
				if got := SumPar(p, nil, vals); got != wantSum {
					t.Fatalf("SumPar = %d, want %d", got, wantSum)
				}
				if got, _ := MinPar(p, nil, vals); got != wantMin {
					t.Fatalf("MinPar = %d, want %d", got, wantMin)
				}
				if got, _ := MaxPar(p, nil, vals); got != wantMax {
					t.Fatalf("MaxPar = %d, want %d", got, wantMax)
				}
			})
		}
	}
}

// TestParallelChargesMatchSerial pins the meter-identity invariant: a
// kernel's simulated charge depends only on the billed thread count, never
// on the worker budget or morsel size.
func TestParallelChargesMatchSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	n := 50_000
	vals := make([]int64, n)
	keys := make([]int64, n)
	for i := range vals {
		vals[i] = int64(rng.Intn(1_000_000))
		keys[i] = int64(rng.Intn(50))
	}
	b := bat.NewDense(vals, bat.Width32)
	sys := device.PaperSystem()
	run := func(p par.P) *device.Meter {
		m := device.NewMeter(sys)
		ids := SelectRangePar(p, m, b, 0, 500_000)
		FetchPar(p, m, b, ids)
		g := GroupByPar(p, m, keys)
		SumGroupedPar(p, m, vals, g)
		CountGroupedPar(p, m, g)
		SumPar(p, m, vals)
		return m
	}
	for _, threads := range []int{1, 4} {
		want := run(par.Bill(threads))
		for _, workers := range []int{2, 8} {
			got := run(par.P{Threads: threads, Workers: workers, Chunk: 777})
			if got.CPU != want.CPU || got.GPU != want.GPU || got.PCI != want.PCI {
				t.Fatalf("threads=%d workers=%d: meter %v != serial %v", threads, workers, got, want)
			}
		}
	}
}

func BenchmarkSelectRange(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	vals := make([]int64, 1<<20)
	for i := range vals {
		vals[i] = int64(rng.Intn(1 << 20))
	}
	bb := bat.NewDense(vals, bat.Width32)
	b.SetBytes(int64(len(vals)) * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SelectRange(nil, 1, bb, 0, 1<<18)
	}
}

func BenchmarkGroupBy(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	keys := make([]int64, 1<<20)
	for i := range keys {
		keys[i] = int64(rng.Intn(1000))
	}
	b.SetBytes(int64(len(keys)) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GroupBy(nil, 1, keys)
	}
}
