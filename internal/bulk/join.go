package bulk

import (
	"repro/internal/bat"
	"repro/internal/device"
	"repro/internal/mem"
	"repro/internal/par"
)

// HashJoin performs a generic equi-join of two value columns and returns
// the matching position pairs (left[i] joins right[i]). Build side is the
// smaller input, probe side the larger, as usual.
//
// The paper notes (§IV-D) that generic hash joins are hard to approximate
// on massively parallel hardware and resorts to pre-built foreign-key
// indices; HashJoin is the CPU reference implementation used by the
// baseline engine and by tests as ground truth for the translucent join.
func HashJoin(m *device.Meter, threads int, left, right []int64) (lids, rids []bat.OID) {
	build, probe := left, right
	swapped := false
	if len(right) < len(left) {
		build, probe = right, left
		swapped = true
	}
	idx := make(map[int64][]bat.OID, len(build))
	for i, v := range build {
		idx[v] = append(idx[v], bat.OID(i))
	}
	var bids, pids []bat.OID
	for i, v := range probe {
		if matches, ok := idx[v]; ok {
			for _, b := range matches {
				bids = append(bids, b)
				pids = append(pids, bat.OID(i))
			}
		}
	}
	if m != nil {
		m.CPUWork(threads,
			int64(len(build)+len(probe))*8+int64(len(bids))*2*oidBytes, 0,
			int64(len(build))*OpsHashBuild+int64(len(probe))*OpsHashProbe)
	}
	if swapped {
		return pids, bids
	}
	return bids, pids
}

// FKIndex is a pre-built foreign-key index: for every foreign-key value it
// records the (single) position of the matching primary key. The paper
// pre-builds these on the CPU and treats FK joins as projective joins
// sharing the projection code path (§IV-D).
type FKIndex struct {
	pos     []bat.OID // pos[fk - base] = position in the PK column
	base    int64
	present []bool
}

// BuildFKIndex builds an index over a unique (primary-key) column.
// Returns nil if the keys are not unique or the domain is degenerate.
func BuildFKIndex(m *device.Meter, threads int, pk []int64) *FKIndex {
	if len(pk) == 0 {
		return nil
	}
	lo, hi := pk[0], pk[0]
	for _, v := range pk[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	span := hi - lo + 1
	if span <= 0 || span > int64(4*len(pk))+1024 {
		return nil // too sparse for a positional index
	}
	idx := &FKIndex{pos: make([]bat.OID, span), base: lo, present: make([]bool, span)}
	for i, v := range pk {
		slot := v - lo
		if idx.present[slot] {
			return nil // duplicate key: not a PK
		}
		idx.present[slot] = true
		idx.pos[slot] = bat.OID(i)
	}
	if m != nil {
		m.CPUWork(threads, int64(len(pk))*8, int64(len(pk))*oidBytes,
			int64(len(pk))*OpsHashBuild)
	}
	return idx
}

// Lookup returns the PK-side position for a foreign-key value.
func (ix *FKIndex) Lookup(fk int64) (bat.OID, bool) {
	slot := fk - ix.base
	if slot < 0 || slot >= int64(len(ix.pos)) || !ix.present[slot] {
		return 0, false
	}
	return ix.pos[slot], true
}

// FKJoin maps every foreign-key value to its PK-side position using the
// index; with a pre-built index the join is equivalent to a projective
// join (§IV-D). Dangling foreign keys are dropped; hit[i] reports whether
// fk position i found a partner.
func FKJoin(m *device.Meter, threads int, ix *FKIndex, fks []int64) (pkPos []bat.OID, hit []bool) {
	return FKJoinPar(par.Bill(threads), m, ix, fks)
}

// FKJoinPar is the morsel-parallel FKJoin: probes are independent and each
// worker writes a disjoint slice of pkPos/hit.
func FKJoinPar(p par.P, m *device.Meter, ix *FKIndex, fks []int64) (pkPos []bat.OID, hit []bool) {
	pkPos = oidPool.GetN(len(fks))
	hit = mem.Bools.GetN(len(fks))
	clear(hit)
	probe := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if pos, ok := ix.Lookup(fks[i]); ok {
				pkPos[i] = pos
				hit[i] = true
			} else {
				pkPos[i] = 0
			}
		}
	}
	if serial(p, len(fks)) {
		probe(0, len(fks))
	} else {
		p.For(len(fks), probe)
	}
	if m != nil {
		m.CPUWork(p.NThreads(), int64(len(fks))*8+int64(len(fks))*oidBytes, 0,
			int64(len(fks))*OpsHashProbe)
	}
	return pkPos, hit
}
