package bulk

import (
	"math/rand"
	"testing"

	"repro/internal/bat"
	"repro/internal/mem"
	"repro/internal/par"
)

// Bulk kernel steady-state allocation guards: selection and the grouped
// aggregates draw every output and partial from the arena, so repeated
// queries over a resident table allocate nothing.

func allocFixture(t testing.TB, n int) (*bat.BAT, []int64, *Grouping) {
	rng := rand.New(rand.NewSource(11))
	vals := make([]int64, n)
	keys := make([]int64, n)
	for i := range vals {
		vals[i] = int64(rng.Intn(10000))
		keys[i] = int64(rng.Intn(8))
	}
	g := GroupByPar(par.Bill(1), nil, keys)
	return bat.NewDense(vals, bat.Width32), vals, g
}

func TestSelectFetchZeroAlloc(t *testing.T) {
	b, _, _ := allocFixture(t, 50000)
	run := func() {
		ids := SelectRangePar(par.Bill(1), nil, b, 2000, 7000)
		out := FetchPar(par.Bill(1), nil, b, ids)
		mem.I64.Put(out)
		bat.OIDPool.Put(ids)
	}
	for i := 0; i < 5; i++ {
		run()
	}
	if n := testing.AllocsPerRun(50, run); n != 0 {
		if mem.RaceEnabled {
			t.Skipf("%.2f allocs/op under -race (sync.Pool drops Puts); strict guard runs in normal builds", n)
		}
		t.Fatalf("select+fetch allocates %.2f/op in steady state, want 0", n)
	}
}

func TestGroupedAggregatesZeroAlloc(t *testing.T) {
	_, vals, g := allocFixture(t, 50000)
	run := func() {
		mem.I64.Put(SumGroupedPar(par.Bill(1), nil, vals, g))
		mem.I64.Put(CountGroupedPar(par.Bill(1), nil, g))
		mem.I64.Put(MinGroupedPar(par.Bill(1), nil, vals, g))
		mem.I64.Put(MaxGroupedPar(par.Bill(1), nil, vals, g))
	}
	for i := 0; i < 5; i++ {
		run()
	}
	if n := testing.AllocsPerRun(50, run); n != 0 {
		if mem.RaceEnabled {
			t.Skipf("%.2f allocs/op under -race (sync.Pool drops Puts); strict guard runs in normal builds", n)
		}
		t.Fatalf("grouped aggregates allocate %.2f/op in steady state, want 0", n)
	}
}

func TestGlobalAggregatesZeroAlloc(t *testing.T) {
	_, vals, _ := allocFixture(t, 50000)
	run := func() {
		SumPar(par.Bill(1), nil, vals)
		MinPar(par.Bill(1), nil, vals)
		MaxPar(par.Bill(1), nil, vals)
	}
	for i := 0; i < 5; i++ {
		run()
	}
	if n := testing.AllocsPerRun(50, run); n != 0 {
		if mem.RaceEnabled {
			t.Skipf("%.2f allocs/op under -race (sync.Pool drops Puts); strict guard runs in normal builds", n)
		}
		t.Fatalf("global aggregates allocate %.2f/op in steady state, want 0", n)
	}
}
