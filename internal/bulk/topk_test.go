package bulk

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/par"
)

// TestTopKParMatchesSort checks the heap selection against a full sort
// with the same total order, across worker counts and morsel sizes —
// including duplicate keys, where the index tie-break decides.
func TestTopKParMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(5000)
		k := 1 + rng.Intn(n+10) // may exceed n: full-sort fallback
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(rng.Intn(50)) // heavy ties
		}
		less := func(i, j int) bool { return vals[i] < vals[j] }
		want := make([]int, n)
		for i := range want {
			want[i] = i
		}
		sort.Slice(want, func(a, b int) bool {
			if vals[want[a]] != vals[want[b]] {
				return vals[want[a]] < vals[want[b]]
			}
			return want[a] < want[b]
		})
		if k < n {
			want = want[:k]
		}
		for _, workers := range []int{1, 3, 8} {
			for _, chunk := range []int{0, 64, 777} {
				p := par.P{Threads: 1, Workers: workers, Chunk: chunk}
				got := TopKPar(p, nil, n, k, 8, less)
				if len(got) != len(want) {
					t.Fatalf("trial %d workers=%d chunk=%d: got %d indices, want %d", trial, workers, chunk, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("trial %d workers=%d chunk=%d: index %d = %d, want %d", trial, workers, chunk, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestTopKParEdgeCases covers empty input, k=0 and single elements.
func TestTopKParEdgeCases(t *testing.T) {
	less := func(i, j int) bool { return i < j }
	if got := TopKPar(par.P{}, nil, 0, 5, 8, less); got != nil {
		t.Errorf("n=0 returned %v", got)
	}
	if got := TopKPar(par.P{}, nil, 5, 0, 8, less); got != nil {
		t.Errorf("k=0 returned %v", got)
	}
	if got := TopKPar(par.P{}, nil, 1, 1, 8, less); len(got) != 1 || got[0] != 0 {
		t.Errorf("n=1 returned %v", got)
	}
}

// BenchmarkTopK records the heap top-k kernel against the full-sort
// baseline it replaces: CI logs the two so the ratio (sort/heap) stays
// visible. The heap pass is O(n log k); the full sort O(n log n).
func BenchmarkTopK(b *testing.B) {
	const n, k = 1 << 20, 10
	vals := make([]int64, n)
	rng := rand.New(rand.NewSource(42))
	for i := range vals {
		vals[i] = rng.Int63()
	}
	less := func(i, j int) bool { return vals[i] < vals[j] }
	b.Run("heap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			TopKPar(par.P{Threads: 1, Workers: 1}, nil, n, k, 8, less)
		}
	})
	b.Run("fullsort", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			idx := make([]int, n)
			for j := range idx {
				idx[j] = j
			}
			sort.Slice(idx, func(a, c int) bool {
				if vals[idx[a]] != vals[idx[c]] {
					return vals[idx[a]] < vals[idx[c]]
				}
				return idx[a] < idx[c]
			})
			_ = idx[:k]
		}
	})
}
