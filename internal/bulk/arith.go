package bulk

import (
	"repro/internal/device"
	"repro/internal/par"
)

// Fixed-point arithmetic maps. Decimal columns (prices, discounts, GPS
// coordinates) are stored as scaled integers; multiplication of two scaled
// values must divide one scale back out. All maps are bulk operators:
// tight loops that materialize their full result (§II-B). The ...Par forms
// run morsel-parallel with disjoint output writes, so the result is
// positionally identical to the serial loop.

// MapAdd returns a[i] + b[i].
func MapAdd(m *device.Meter, threads int, a, b []int64) []int64 {
	return MapAddPar(par.Bill(threads), m, a, b)
}

// MapAddPar is the morsel-parallel MapAdd.
func MapAddPar(p par.P, m *device.Meter, a, b []int64) []int64 {
	return mapBinPar(p, m, a, b, func(x, y int64) int64 { return x + y })
}

// MapSub returns a[i] - b[i].
func MapSub(m *device.Meter, threads int, a, b []int64) []int64 {
	return MapSubPar(par.Bill(threads), m, a, b)
}

// MapSubPar is the morsel-parallel MapSub.
func MapSubPar(p par.P, m *device.Meter, a, b []int64) []int64 {
	return mapBinPar(p, m, a, b, func(x, y int64) int64 { return x - y })
}

// MapMulScaled returns (a[i] * b[i]) / scale: the fixed-point product of
// two columns sharing the given decimal scale.
func MapMulScaled(m *device.Meter, threads int, a, b []int64, scale int64) []int64 {
	return MapMulScaledPar(par.Bill(threads), m, a, b, scale)
}

// MapMulScaledPar is the morsel-parallel MapMulScaled.
func MapMulScaledPar(p par.P, m *device.Meter, a, b []int64, scale int64) []int64 {
	return mapBinPar(p, m, a, b, func(x, y int64) int64 { return x * y / scale })
}

// MapAddConst returns a[i] + c.
func MapAddConst(m *device.Meter, threads int, a []int64, c int64) []int64 {
	return mapConstPar(par.Bill(threads), m, a, func(x int64) int64 { return x + c })
}

// MapSubConstRev returns c - a[i] (e.g. 1.00 - l_discount).
func MapSubConstRev(m *device.Meter, threads int, a []int64, c int64) []int64 {
	return mapConstPar(par.Bill(threads), m, a, func(x int64) int64 { return c - x })
}

func mapBinPar(p par.P, m *device.Meter, a, b []int64, f func(x, y int64) int64) []int64 {
	out := make([]int64, len(a))
	if serial(p, len(a)) {
		for i := range a {
			out[i] = f(a[i], b[i])
		}
	} else {
		p.For(len(a), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out[i] = f(a[i], b[i])
			}
		})
	}
	chargeArith(m, p.NThreads(), len(a))
	return out
}

func mapConstPar(p par.P, m *device.Meter, a []int64, f func(x int64) int64) []int64 {
	out := make([]int64, len(a))
	if serial(p, len(a)) {
		for i := range a {
			out[i] = f(a[i])
		}
	} else {
		p.For(len(a), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out[i] = f(a[i])
			}
		})
	}
	chargeArith(m, p.NThreads(), len(a))
	return out
}

func chargeArith(m *device.Meter, threads, n int) {
	if m != nil {
		m.CPUWork(threads, int64(n)*24, 0, int64(n)*OpsArith)
	}
}
