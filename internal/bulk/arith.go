package bulk

import "repro/internal/device"

// Fixed-point arithmetic maps. Decimal columns (prices, discounts, GPS
// coordinates) are stored as scaled integers; multiplication of two scaled
// values must divide one scale back out. All maps are bulk operators:
// tight loops that materialize their full result (§II-B).

// MapAdd returns a[i] + b[i].
func MapAdd(m *device.Meter, threads int, a, b []int64) []int64 {
	out := make([]int64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	chargeArith(m, threads, len(a))
	return out
}

// MapSub returns a[i] - b[i].
func MapSub(m *device.Meter, threads int, a, b []int64) []int64 {
	out := make([]int64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	chargeArith(m, threads, len(a))
	return out
}

// MapMulScaled returns (a[i] * b[i]) / scale: the fixed-point product of
// two columns sharing the given decimal scale.
func MapMulScaled(m *device.Meter, threads int, a, b []int64, scale int64) []int64 {
	out := make([]int64, len(a))
	for i := range a {
		out[i] = a[i] * b[i] / scale
	}
	chargeArith(m, threads, len(a))
	return out
}

// MapAddConst returns a[i] + c.
func MapAddConst(m *device.Meter, threads int, a []int64, c int64) []int64 {
	out := make([]int64, len(a))
	for i := range a {
		out[i] = a[i] + c
	}
	chargeArith(m, threads, len(a))
	return out
}

// MapSubConstRev returns c - a[i] (e.g. 1.00 - l_discount).
func MapSubConstRev(m *device.Meter, threads int, a []int64, c int64) []int64 {
	out := make([]int64, len(a))
	for i := range a {
		out[i] = c - a[i]
	}
	chargeArith(m, threads, len(a))
	return out
}

func chargeArith(m *device.Meter, threads, n int) {
	if m != nil {
		m.CPUWork(threads, int64(n)*24, 0, int64(n)*OpsArith)
	}
}
