package bulk

import (
	"sort"

	"repro/internal/device"
	"repro/internal/par"
)

// TopK selects the k smallest of n items under less, serially; see
// TopKPar.
func TopK(m *device.Meter, threads, n, k int, bytesPer int64, less func(i, j int) bool) []int {
	return TopKPar(par.Bill(threads), m, n, k, bytesPer, less)
}

// TopKPar returns the indices of the k smallest items of [0,n) under the
// strict weak order less, sorted ascending — the ORDER BY ... LIMIT k
// kernel. Ties break on the original index, making the selection a total
// order: the result is the unique global top-k, identical for every
// worker count and morsel size.
//
// The kernel is a morsel-parallel heap selection: each morsel maintains a
// bounded max-heap of its local k best (O(n log k), no full
// materialization), the local winners concatenate in morsel order, and
// one final sort of the at-most (morsels × k) survivors picks the global
// answer. When k >= n it degenerates to a full index sort — the baseline
// BenchmarkTopK compares against.
//
// bytesPer is the physical footprint of one item, charged as a sequential
// read; the billed operation count is the deterministic n·ceil(log2(k+1))
// comparison bound, never the data-dependent heap work, so meters stay
// bit-identical across worker counts and morsel sizes.
func TopKPar(p par.P, m *device.Meter, n, k int, bytesPer int64, less func(i, j int) bool) []int {
	if k > n {
		k = n
	}
	if m != nil && n > 0 && k > 0 {
		logK := int64(1)
		for 1<<logK <= k {
			logK++
		}
		m.CPUWork(p.NThreads(), int64(n)*bytesPer+int64(k)*8, 0, int64(n)*logK)
	}
	if n <= 0 || k <= 0 {
		return nil
	}
	// The total order backing both the heaps and the final sort.
	before := func(i, j int) bool {
		if less(i, j) {
			return true
		}
		if less(j, i) {
			return false
		}
		return i < j
	}
	if k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		sort.Slice(out, func(a, b int) bool { return before(out[a], out[b]) })
		return out
	}
	locals := par.GatherOrdered(p, n, func(lo, hi int) []int {
		h := topkHeap{before: before, idx: make([]int, 0, k)}
		for i := lo; i < hi; i++ {
			h.offer(i, k)
		}
		return h.idx
	})
	sort.Slice(locals, func(a, b int) bool { return before(locals[a], locals[b]) })
	return locals[:k]
}

// topkHeap is a bounded max-heap of item indices under a total order: the
// root is the worst retained item, so a better offer replaces it in
// O(log k).
type topkHeap struct {
	before func(i, j int) bool
	idx    []int
}

// offer inserts i if the heap holds fewer than k items or i beats the
// current worst.
func (h *topkHeap) offer(i, k int) {
	if len(h.idx) < k {
		h.idx = append(h.idx, i)
		h.siftUp(len(h.idx) - 1)
		return
	}
	if h.before(i, h.idx[0]) {
		h.idx[0] = i
		h.siftDown(0)
	}
}

func (h *topkHeap) siftUp(at int) {
	for at > 0 {
		parent := (at - 1) / 2
		// Max-heap: the parent must not be better than the child.
		if h.before(h.idx[parent], h.idx[at]) {
			h.idx[parent], h.idx[at] = h.idx[at], h.idx[parent]
			at = parent
			continue
		}
		return
	}
}

func (h *topkHeap) siftDown(at int) {
	n := len(h.idx)
	for {
		worst := at
		for c := 2*at + 1; c <= 2*at+2 && c < n; c++ {
			if h.before(h.idx[worst], h.idx[c]) {
				worst = c
			}
		}
		if worst == at {
			return
		}
		h.idx[at], h.idx[worst] = h.idx[worst], h.idx[at]
		at = worst
	}
}
