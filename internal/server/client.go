package server

import (
	"bufio"
	"fmt"
	"net"
	"strings"
)

// Client is a minimal client for the server's line protocol. It is not
// safe for concurrent use; open one client per goroutine (a client maps to
// one server session anyway).
type Client struct {
	conn net.Conn
	in   *bufio.Scanner
	out  *bufio.Writer
}

// Dial connects to a server at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	in := bufio.NewScanner(conn)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	return &Client{conn: conn, in: in, out: bufio.NewWriter(conn)}
}

// Query sends one statement or meta command and returns the payload lines.
// A server-side "error:" terminator is returned as an error.
func (c *Client) Query(stmt string) ([]string, error) {
	if strings.ContainsAny(stmt, "\n\r") {
		return nil, fmt.Errorf("client: statement must be a single line")
	}
	if _, err := c.out.WriteString(stmt + "\n"); err != nil {
		return nil, err
	}
	if err := c.out.Flush(); err != nil {
		return nil, err
	}
	var payload []string
	for c.in.Scan() {
		line := c.in.Text()
		if line == "ok" {
			return payload, nil
		}
		if msg, ok := strings.CutPrefix(line, "error: "); ok {
			return payload, fmt.Errorf("server: %s", msg)
		}
		payload = append(payload, strings.TrimPrefix(line, " "))
	}
	if err := c.in.Err(); err != nil {
		return payload, err
	}
	return payload, fmt.Errorf("client: connection closed mid-response")
}

// Close sends \q and closes the connection.
func (c *Client) Close() error {
	c.Query(`\q`)
	return c.conn.Close()
}
