// Package server turns the single-user A&R engine into a concurrent query
// service: a line-protocol TCP server with per-connection sessions, a
// device-aware scheduler that routes classic plans to a bounded CPU worker
// pool and A&R plans to an admission-controlled GPU stream (charging the
// §VI-E memory-wall contention between them), and an LRU plan cache that
// skips the SQL front end for repeated statement texts.
//
// # Protocol
//
// The wire protocol is line-oriented text, like a stripped-down psql. The
// client sends one statement (or meta command) per line; the server
// responds with zero or more payload lines followed by exactly one
// terminator line, either "ok" or "error: <message>". Meta commands:
//
//	\cost                toggle the per-query simulated cost report
//	\mode [auto|ar|classic]   show or set the executor routing mode
//	\tables              list tables and columns
//	\stats               plan cache, scheduler, and meter totals
//	\prepare <name> <sql>     compile and store a statement
//	\run <name>          execute a prepared statement
//	\q                   close the connection
package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"

	"repro/internal/device"
	"repro/internal/plan"
	"repro/internal/sql"
)

// Config tunes a Server.
type Config struct {
	// Sched sizes the device-aware scheduler.
	Sched SchedConfig
	// CacheSize bounds the LRU plan cache (entries). Defaults to 128;
	// negative disables caching.
	CacheSize int
	// Threads is the CPU thread count each query executes with (classic
	// plan or A&R refinement). Defaults to 1, one stream per worker —
	// cross-stream parallelism comes from the pool, as in Fig 11.
	Threads int
}

func (c Config) withDefaults() Config {
	if c.CacheSize == 0 {
		c.CacheSize = 128
	}
	if c.Threads <= 0 {
		c.Threads = 1
	}
	return c
}

// Server serves SQL statements over a catalog.
type Server struct {
	cat   *plan.Catalog
	sched *Scheduler
	cache *PlanCache
	cfg   Config

	mu       sync.Mutex
	sessions map[int64]*Session
	nextID   int64
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// New returns a server over the catalog. The catalog's tables should be
// loaded (and columns decomposed, for A&R routing) before serving, though
// clients can also issue bwdecompose statements at runtime.
func New(cat *plan.Catalog, cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		cat:      cat,
		sched:    NewScheduler(cat, cfg.Sched),
		cache:    NewPlanCache(cfg.CacheSize),
		cfg:      cfg,
		sessions: make(map[int64]*Session),
		conns:    make(map[net.Conn]struct{}),
	}
}

// Scheduler exposes the server's scheduler (for stats and experiments).
func (s *Server) Scheduler() *Scheduler { return s.sched }

// Cache exposes the server's plan cache.
func (s *Server) Cache() *PlanCache { return s.cache }

// ListenAndServe listens on addr ("host:port") and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Serve accepts connections on l until Close. It returns nil after Close,
// or the first accept error otherwise.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return errors.New("server: already closed")
	}
	s.listener = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.nextID++
		sess := newSession(s.nextID)
		s.sessions[sess.ID] = sess
		s.conns[conn] = struct{}{}
		// Register with the WaitGroup before releasing the lock: Close
		// holds the lock while it observes `closed`, so it can never pass
		// wg.Wait between this conn's registration and its Add.
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.serveConn(conn, sess)
		}()
	}
}

// Addr returns the listen address, once Serve has been called.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener == nil {
		return nil
	}
	return s.listener.Addr()
}

// Close stops accepting, closes every live connection, and waits for the
// connection handlers to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	l := s.listener
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	var err error
	if l != nil {
		err = l.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) serveConn(conn net.Conn, sess *Session) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.sessions, sess.ID)
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	in := bufio.NewScanner(conn)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	out := bufio.NewWriter(conn)
	for in.Scan() {
		line := strings.TrimSpace(in.Text())
		if line == "" {
			continue
		}
		quit := s.handleLine(out, sess, line)
		if out.Flush() != nil || quit {
			return
		}
	}
	if err := in.Err(); err != nil {
		// e.g. a statement line over the scanner buffer: terminate the
		// response properly so the client sees why instead of a bare EOF.
		writeError(out, err)
		out.Flush()
	}
}

// handleLine serves one request line and reports whether the connection
// should close.
func (s *Server) handleLine(out *bufio.Writer, sess *Session, line string) (quit bool) {
	if strings.HasPrefix(line, `\`) {
		return s.handleMeta(out, sess, line)
	}
	s.execSQL(out, sess, line)
	return false
}

func (s *Server) handleMeta(out *bufio.Writer, sess *Session, line string) (quit bool) {
	cmd, rest, _ := strings.Cut(line, " ")
	rest = strings.TrimSpace(rest)
	switch cmd {
	case `\q`:
		writeOK(out)
		return true
	case `\cost`:
		writePayload(out, fmt.Sprintf("cost report %s", onOff(sess.ToggleCost())))
		writeOK(out)
	case `\mode`:
		if rest != "" {
			if err := sess.SetMode(rest); err != nil {
				writeError(out, err)
				return false
			}
		}
		writePayload(out, "mode "+sess.Mode().String())
		writeOK(out)
	case `\tables`:
		for _, name := range s.cat.TableNames() {
			t, err := s.cat.Table(name)
			if err != nil {
				continue
			}
			writePayload(out, fmt.Sprintf("%s (%d rows): %s", name, t.Len(), strings.Join(t.Columns(), ", ")))
		}
		writeOK(out)
	case `\stats`:
		for _, l := range s.statsLines(sess) {
			writePayload(out, l)
		}
		writeOK(out)
	case `\prepare`:
		name, stmt, ok := strings.Cut(rest, " ")
		stmt = strings.TrimSpace(stmt)
		if !ok || name == "" || stmt == "" {
			writeError(out, errors.New(`server: usage: \prepare <name> <sql>`))
			return false
		}
		b, err := s.compile(stmt)
		if err != nil {
			writeError(out, err)
			return false
		}
		sess.Prepare(name, b)
		writePayload(out, "prepared "+name)
		writeOK(out)
	case `\run`:
		b, ok := sess.Prepared(rest)
		if !ok {
			writeError(out, fmt.Errorf("server: no prepared statement %q", rest))
			return false
		}
		s.execBinding(out, sess, b)
	default:
		writeError(out, fmt.Errorf("server: unknown meta command %s", cmd))
	}
	return false
}

// compile resolves a statement through the plan cache, compiling and
// inserting on miss. bwdecompose statements are never cached: they are DDL
// with side effects, and re-running a stale binding silently would be
// surprising.
func (s *Server) compile(stmt string) (*sql.Binding, error) {
	key := sql.Normalize(stmt)
	if b, ok := s.cache.Get(key); ok {
		return b, nil
	}
	b, err := sql.Compile(s.cat, stmt)
	if err != nil {
		return nil, err
	}
	if len(b.Decompose) == 0 {
		s.cache.Put(key, b)
	}
	return b, nil
}

func (s *Server) execSQL(out *bufio.Writer, sess *Session, stmt string) {
	b, err := s.compile(stmt)
	if err != nil {
		writeError(out, err)
		return
	}
	s.execBinding(out, sess, b)
}

func (s *Server) execBinding(out *bufio.Writer, sess *Session, b *sql.Binding) {
	res, route, err := s.sched.Exec(b, plan.ExecOpts{Threads: s.cfg.Threads}, sess.Mode())
	if err != nil {
		writeError(out, err)
		return
	}
	// The scheduler already merged the meter into its server-wide totals;
	// the session keeps its own running tally.
	var meter *device.Meter
	if res != nil {
		meter = res.Meter
	}
	sess.Totals.Merge(meter)
	switch {
	case res == nil:
		writePayload(out, "decomposed")
	case res.Rows == nil && len(res.Plan) > 0:
		for _, l := range res.Plan {
			writePayload(out, l)
		}
	default:
		for _, l := range strings.Split(strings.TrimRight(plan.FormatRows(res.Rows), "\n"), "\n") {
			if l != "" {
				writePayload(out, l)
			}
		}
	}
	if sess.Cost() && res != nil && res.Meter != nil {
		writePayload(out, fmt.Sprintf("-- %s; simulated %v; candidates %d -> refined %d; approx count %v",
			route, res.Meter, res.Candidates, res.Refined, res.Approx.Count))
	}
	writeOK(out)
}

func (s *Server) statsLines(sess *Session) []string {
	s.mu.Lock()
	nsess := len(s.sessions)
	s.mu.Unlock()
	return []string{
		fmt.Sprintf("sessions: %d active", nsess),
		s.cache.Stats().String(),
		s.sched.Stats().String(),
		"server totals: " + s.sched.Totals.String(),
		fmt.Sprintf("session %d totals: %s", sess.ID, sess.Totals.String()),
	}
}

// writePayload emits one payload line, guaranteeing it can never be
// mistaken for a terminator.
func writePayload(out *bufio.Writer, line string) {
	if line == "ok" || strings.HasPrefix(line, "error:") {
		line = " " + line
	}
	out.WriteString(line)
	out.WriteByte('\n')
}

func writeOK(out *bufio.Writer) { out.WriteString("ok\n") }

func writeError(out *bufio.Writer, err error) {
	msg := strings.ReplaceAll(err.Error(), "\n", " ")
	fmt.Fprintf(out, "error: %s\n", msg)
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}
