// Package server is the line-protocol TCP adapter over the embeddable
// query engine (internal/engine). All query semantics — sessions, executor
// routing, admission control, plan caching, meter accounting — live in the
// engine; the server only owns the wire: accepting connections, framing
// request lines, and rendering responses. Any other front-end (HTTP,
// replication, batching) would be a sibling adapter of the same shape.
//
// # Protocol
//
// The wire protocol is line-oriented text, like a stripped-down psql. The
// client sends one statement (or meta command) per line; the server
// responds with zero or more payload lines followed by exactly one
// terminator line, either "ok" or "error: <message>". Meta commands:
//
//	\cost                toggle the per-query simulated cost report
//	\mode [auto|ar|classic]   show or set the executor routing mode
//	\tables              list tables, segment sizes and columns
//	\stats               plan cache, scheduler, store, and meter totals
//	\merge [table]       force-merge delta segments into the base
//	\explain <sql>       render the physical pipeline without executing
//	\explain analyze <sql>    execute and render the pipeline with actuals
//	\metrics             Prometheus-text dump of the engine metrics registry
//	\slow [<dur>|off]    show / arm / disarm the slow-query log
//	\prepare <name> <sql>     compile and store a statement
//	\run <name> [params...]   execute a prepared statement
//	\q                   close the connection
//
// When the engine rejects an A&R query with engine.ErrOverloaded, the
// error reply is preceded by a "hint:" payload line carrying the retry
// guidance, so protocol clients can back off without parsing error text.
package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"

	"repro/internal/engine"
)

// Server serves the engine's SQL surface over TCP.
type Server struct {
	eng *engine.Engine

	// ctx is the serving context: Close cancels it, which aborts every
	// in-flight query at its next cooperative checkpoint (or slot wait).
	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// New returns a protocol adapter over an engine. The engine may be shared
// with other front-ends; each connection gets its own engine session.
func New(eng *engine.Engine) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		eng:    eng,
		ctx:    ctx,
		cancel: cancel,
		conns:  make(map[net.Conn]struct{}),
	}
}

// Engine returns the engine the server adapts.
func (s *Server) Engine() *engine.Engine { return s.eng }

// ListenAndServe listens on addr ("host:port") and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Serve accepts connections on l until Close. It returns nil after Close,
// or the first accept error otherwise.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return errors.New("server: already closed")
	}
	s.listener = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		// Register with the WaitGroup before releasing the lock: Close
		// holds the lock while it observes `closed`, so it can never pass
		// wg.Wait between this conn's registration and its Add.
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// Addr returns the listen address, once Serve has been called.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener == nil {
		return nil
	}
	return s.listener.Addr()
}

// Close stops accepting, cancels in-flight queries, closes every live
// connection, and waits for the connection handlers to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	l := s.listener
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.cancel()
	var err error
	if l != nil {
		err = l.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) serveConn(conn net.Conn) {
	sess := s.eng.Session()
	// Per-connection context under the serving context: cancelled when the
	// client goes away (or the server closes), so an abandoned query stops
	// at its next checkpoint instead of running to completion and holding
	// its scheduler slot for a dead client.
	ctx, cancel := context.WithCancel(s.ctx)
	defer func() {
		cancel()
		sess.Close()
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	in := bufio.NewScanner(conn)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	out := bufio.NewWriter(conn)

	// Read in a separate goroutine: while a statement executes, the reader
	// waits on the next conn read (or on handing over the next pipelined
	// line), so a torn-down connection surfaces as a read error right away
	// and cancels the in-flight query through ctx. A clean EOF is NOT a
	// cancellation signal: a one-shot client may half-close its write side
	// and still be reading responses, so pending statements are drained
	// and answered; only a read error (reset, over-long line) proves the
	// peer is gone or misbehaving.
	lines := make(chan string)
	var scanErr error
	go func() {
		defer close(lines)
		for in.Scan() {
			select {
			case lines <- strings.TrimSpace(in.Text()):
			case <-ctx.Done():
				return
			}
		}
		if err := in.Err(); err != nil {
			scanErr = err // published by close(lines), consumed after range
			cancel()
		}
	}()

	for line := range lines {
		if line == "" {
			continue
		}
		quit := s.handleLine(ctx, out, sess, line)
		if out.Flush() != nil || quit {
			return
		}
	}
	if scanErr != nil {
		// e.g. a statement line over the scanner buffer: terminate the
		// response properly so the client sees why instead of a bare EOF.
		writeError(out, scanErr)
		out.Flush()
	}
}

// handleLine serves one request line under the connection's context and
// reports whether the connection should close.
func (s *Server) handleLine(ctx context.Context, out *bufio.Writer, sess *engine.Session, line string) (quit bool) {
	lines, quit, handled, err := sess.Meta(ctx, line)
	if handled || quit {
		if err != nil {
			s.writeFailure(out, err)
			return false
		}
		for _, l := range lines {
			writePayload(out, l)
		}
		writeOK(out)
		return quit
	}
	res, err := sess.Query(ctx, line)
	if err != nil {
		s.writeFailure(out, err)
		return false
	}
	for _, l := range engine.RenderResult(res, sess.Cost()) {
		writePayload(out, l)
	}
	writeOK(out)
	return false
}

// writeFailure terminates a response with an error, preceded by a retry
// hint when the engine reports overload.
func (s *Server) writeFailure(out *bufio.Writer, err error) {
	if hint, ok := overloadHint(err); ok {
		writePayload(out, hint)
	}
	writeError(out, err)
}

// overloadHint returns the retry-hint payload line for admission-control
// rejections.
func overloadHint(err error) (string, bool) {
	var oe *engine.OverloadedError
	if !errors.As(err, &oe) {
		return "", false
	}
	return fmt.Sprintf("hint: A&R queue full (%d waiting / %d capacity); retry after backoff or switch to \\mode classic",
		oe.Waiting, oe.Queue), true
}

// writePayload emits one payload line, guaranteeing it can never be
// mistaken for a terminator.
func writePayload(out *bufio.Writer, line string) {
	if line == "ok" || strings.HasPrefix(line, "error:") {
		line = " " + line
	}
	out.WriteString(line)
	out.WriteByte('\n')
}

func writeOK(out *bufio.Writer) { out.WriteString("ok\n") }

func writeError(out *bufio.Writer, err error) {
	msg := strings.ReplaceAll(err.Error(), "\n", " ")
	fmt.Fprintf(out, "error: %s\n", msg)
}
