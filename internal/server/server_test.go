package server

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/plan"
	"repro/internal/spatial"
	"repro/internal/sql"
)

// testCatalog builds a small spatial catalog with decomposed columns.
func testCatalog(t testing.TB) *plan.Catalog {
	t.Helper()
	c := plan.NewCatalog(device.PaperSystem())
	d := spatial.Generate(50_000, 7)
	if err := d.Load(c); err != nil {
		t.Fatal(err)
	}
	if err := d.Decompose(c); err != nil {
		t.Fatal(err)
	}
	return c
}

// startServer serves a fresh catalog on a loopback port and returns the
// address.
func startServer(t testing.TB, c *plan.Catalog, cfg Config) (*Server, string) {
	t.Helper()
	srv := New(c, cfg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	return srv, l.Addr().String()
}

// trip queries with distinct bounds, so concurrent clients exercise both
// distinct plans and shared cached plans.
func tripQuery(i int) string {
	lonLo := 2_00000 + int64(i%8)*10_000
	return fmt.Sprintf("select count(lon) from trips where lon between %d and %d and lat between 5042220 and 5044850",
		lonLo, lonLo+40_000)
}

// TestConcurrentClientsMatchDirectExecution is the acceptance check: 32
// concurrent clients, half forced classic and half A&R, must each see
// exactly the rows direct single-threaded Catalog execution produces.
func TestConcurrentClientsMatchDirectExecution(t *testing.T) {
	c := testCatalog(t)
	_, addr := startServer(t, c, Config{Sched: SchedConfig{CPUWorkers: 8, GPUStreams: 2, ARQueue: 64}})

	// Reference answers from direct execution.
	want := make(map[string][]string)
	for i := 0; i < 8; i++ {
		q := tripQuery(i)
		b, err := sql.Compile(c, q)
		if err != nil {
			t.Fatal(err)
		}
		arRes, err := c.ExecAR(b.Query, plan.ExecOpts{})
		if err != nil {
			t.Fatal(err)
		}
		clRes, err := c.ExecClassic(b.Query, plan.ExecOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if !plan.EqualResults(arRes.Rows, clRes.Rows) {
			t.Fatalf("engine disagreement on %q", q)
		}
		want[q] = strings.Split(strings.TrimRight(plan.FormatRows(arRes.Rows), "\n"), "\n")
	}

	const clients = 32
	const perClient = 12
	errs := make(chan error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		mode := `\mode classic`
		if i%2 == 1 {
			mode = `\mode ar`
		}
		wg.Add(1)
		go func(i int, mode string) {
			defer wg.Done()
			cl, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			if _, err := cl.Query(mode); err != nil {
				errs <- err
				return
			}
			for j := 0; j < perClient; j++ {
				q := tripQuery(i + j)
				got, err := cl.Query(q)
				if err != nil {
					errs <- fmt.Errorf("client %d: %w", i, err)
					return
				}
				if strings.Join(got, "|") != strings.Join(want[q], "|") {
					errs <- fmt.Errorf("client %d query %q: got %v want %v", i, q, got, want[q])
					return
				}
			}
			errs <- nil
		}(i, mode)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestPlanCacheLRUAndEviction(t *testing.T) {
	pc := NewPlanCache(2)
	a, b, c := &sql.Binding{}, &sql.Binding{}, &sql.Binding{}
	pc.Put("a", a)
	pc.Put("b", b)
	if got, ok := pc.Get("a"); !ok || got != a {
		t.Fatal("expected hit on a")
	}
	pc.Put("c", c) // evicts b (least recently used)
	if _, ok := pc.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if got, ok := pc.Get("a"); !ok || got != a {
		t.Fatal("a should have survived eviction")
	}
	if got, ok := pc.Get("c"); !ok || got != c {
		t.Fatal("c should be cached")
	}
	st := pc.Stats()
	if st.Hits != 3 || st.Misses != 1 || st.Evictions != 1 || st.Len != 2 {
		t.Fatalf("unexpected stats %+v", st)
	}
	// Zero capacity disables caching.
	off := NewPlanCache(0)
	off.Put("x", a)
	if _, ok := off.Get("x"); ok {
		t.Fatal("disabled cache must miss")
	}
}

// TestPlanCacheHitsObservableInStats runs the same statement text (in
// varying case/whitespace) repeatedly and checks the \stats endpoint
// reports the hits.
func TestPlanCacheHitsObservableInStats(t *testing.T) {
	c := testCatalog(t)
	_, addr := startServer(t, c, Config{})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	variants := []string{
		"select count(lon) from trips where lon between 200000 and 240000",
		"SELECT count(lon) FROM trips WHERE lon BETWEEN 200000 AND 240000",
		"select  count(lon)  from trips  where lon between 200000 and 240000",
	}
	var first []string
	for i, q := range variants {
		got, err := cl.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = got
		} else if strings.Join(got, "|") != strings.Join(first, "|") {
			t.Fatalf("variant %d returned %v, want %v", i, got, first)
		}
	}
	stats, err := cl.Query(`\stats`)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(stats, "\n")
	if !strings.Contains(joined, "plan cache: 2 hits, 1 misses") {
		t.Fatalf("expected 2 hits / 1 miss in stats, got:\n%s", joined)
	}
	if !strings.Contains(joined, "server totals: 3 queries") {
		t.Fatalf("expected 3 queries in server totals, got:\n%s", joined)
	}
}

// TestSchedulerAdmissionControl occupies the single GPU stream, fills the
// bounded wait queue, and checks that (a) a forced-A&R query is rejected
// with ErrOverloaded and (b) an auto-mode query spills to the classic pool
// instead of failing.
func TestSchedulerAdmissionControl(t *testing.T) {
	c := testCatalog(t)
	s := NewScheduler(c, SchedConfig{CPUWorkers: 2, GPUStreams: 1, ARQueue: 1})
	b, err := sql.Compile(c, tripQuery(0))
	if err != nil {
		t.Fatal(err)
	}

	s.gpuSlots <- struct{}{} // occupy the GPU stream
	waiterDone := make(chan error, 1)
	go func() {
		_, _, err := s.Exec(b, plan.ExecOpts{}, ModeAR)
		waiterDone <- err
	}()
	// Wait for the queued query to register.
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().WaitingAR == 0 {
		if time.Now().After(deadline) {
			t.Fatal("queued A&R query never registered as waiting")
		}
		time.Sleep(time.Millisecond)
	}

	if _, _, err := s.Exec(b, plan.ExecOpts{}, ModeAR); err != ErrOverloaded {
		t.Fatalf("queue full: want ErrOverloaded, got %v", err)
	}
	res, route, err := s.Exec(b, plan.ExecOpts{}, ModeAuto)
	if err != nil {
		t.Fatalf("auto mode should spill to classic, got %v", err)
	}
	if route != RouteClassic {
		t.Fatalf("auto-mode spill: want RouteClassic, got %v", route)
	}
	if res == nil || len(res.Rows) == 0 {
		t.Fatal("spilled query returned no rows")
	}

	<-s.gpuSlots // release the stream; the waiter may now run
	if err := <-waiterDone; err != nil {
		t.Fatalf("queued A&R query failed after release: %v", err)
	}
	st := s.Stats()
	if st.RejectedAR == 0 {
		t.Fatal("expected at least one rejected A&R admission")
	}
	if st.ARRun != 1 {
		t.Fatalf("expected exactly 1 A&R run, got %d", st.ARRun)
	}
}

// TestSchedulerChargesMemoryWallContention checks the Fig 11 law: a classic
// query that runs while other classic streams saturate the wall must be
// charged more simulated CPU time than a lone query.
func TestSchedulerChargesMemoryWallContention(t *testing.T) {
	sys := device.PaperSystem()
	if ClassicStretch(sys, 1, 0) != 1 {
		t.Fatal("a lone stream must not stretch")
	}
	agg := sys.CPU.AggregateBW / sys.CPU.PerThreadBW // streams at the wall
	if s := ClassicStretch(sys, 32, 0); s <= 1 || s < 32/agg*0.99 {
		t.Fatalf("32 streams should stretch by ~%.1f, got %.2f", 32/agg, s)
	}
	// A&R host draw shrinks the available bandwidth further.
	m := device.NewMeter(sys)
	m.CPU, m.PCI = 500_000_000, 500_000_000 // 50% CPU / 50% PCI
	draw := HostDraw(sys, m)
	wantDraw := 0.5*sys.CPU.PerThreadBW + 0.5*sys.Bus.BW
	if diff := draw - wantDraw; diff > 1 || diff < -1 {
		t.Fatalf("host draw %.3g, want %.3g", draw, wantDraw)
	}
	if ClassicStretch(sys, 32, draw) <= ClassicStretch(sys, 32, 0) {
		t.Fatal("A&R draw must stretch contended classic streams further")
	}
	// Multi-threaded streams: one 16-thread stream alone saturates the wall
	// (its own meter charges that), so 8 such streams each get 1/8 of the
	// aggregate and must stretch by 8x — they can never collectively exceed
	// the wall.
	if s := ClassicStretchThreads(sys, 8, 16, 0); s < 7.99 || s > 8.01 {
		t.Fatalf("8 wall-saturating streams should stretch 8x, got %.2f", s)
	}
	if ClassicStretchThreads(sys, 1, 16, 0) != 1 {
		t.Fatal("a lone multi-threaded stream must not stretch")
	}
}

// TestSessionMetaCommands drives the session-facing protocol surface.
func TestSessionMetaCommands(t *testing.T) {
	c := testCatalog(t)
	_, addr := startServer(t, c, Config{})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if got, err := cl.Query(`\cost`); err != nil || got[0] != "cost report on" {
		t.Fatalf("\\cost: %v %v", got, err)
	}
	// With cost on, a query reports its route and meter.
	got, err := cl.Query(tripQuery(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || !strings.HasPrefix(got[1], "-- ar; simulated") {
		t.Fatalf("expected cost line with ar route, got %v", got)
	}
	if _, err := cl.Query(`\mode classic`); err != nil {
		t.Fatal(err)
	}
	got, err = cl.Query(tripQuery(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || !strings.HasPrefix(got[1], "-- classic; simulated") {
		t.Fatalf("expected cost line with classic route, got %v", got)
	}
	if _, err := cl.Query(`\mode sideways`); err == nil {
		t.Fatal("bad mode must error")
	}
	if got, err := cl.Query(`\tables`); err != nil || !strings.Contains(strings.Join(got, " "), "trips") {
		t.Fatalf("\\tables: %v %v", got, err)
	}
	if _, err := cl.Query(`\prepare p1 ` + tripQuery(2)); err != nil {
		t.Fatal(err)
	}
	prep, err := cl.Query(`\run p1`)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := cl.Query(tripQuery(2))
	if err != nil {
		t.Fatal(err)
	}
	if prep[0] != direct[0] {
		t.Fatalf("prepared result %v != direct %v", prep, direct)
	}
	if _, err := cl.Query(`\run nope`); err == nil {
		t.Fatal("\\run of unknown statement must error")
	}
	if _, err := cl.Query(`\bogus`); err == nil {
		t.Fatal("unknown meta command must error")
	}
	if _, err := cl.Query("select nothing from nowhere"); err == nil {
		t.Fatal("bad SQL must error")
	}
}

// TestRuntimeDecompose checks bwdecompose statements work through the
// server (routed as DDL) and enable A&R routing afterwards.
func TestRuntimeDecompose(t *testing.T) {
	c := plan.NewCatalog(device.PaperSystem())
	d := spatial.Generate(10_000, 7)
	if err := d.Load(c); err != nil {
		t.Fatal(err)
	}
	_, addr := startServer(t, c, Config{})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	q := "select count(lon) from trips where lon between 200000 and 240000"
	if _, err := cl.Query(`\mode ar`); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Query(q); err == nil {
		t.Fatal("A&R before decomposition must error")
	}
	if got, err := cl.Query("select bwdecompose(lon, 24) from trips"); err != nil || got[0] != "decomposed" {
		t.Fatalf("bwdecompose: %v %v", got, err)
	}
	if _, err := cl.Query(q); err != nil {
		t.Fatalf("A&R after decomposition: %v", err)
	}
}

func TestNormalize(t *testing.T) {
	a := sql.Normalize("SELECT  count(lon) FROM trips  WHERE lon BETWEEN 1 AND 2")
	b := sql.Normalize("select count ( lon ) from trips where lon between 1 and 2")
	if a != b {
		t.Fatalf("normalization mismatch: %q vs %q", a, b)
	}
	if x := sql.Normalize("select !!"); x != "select !!" {
		t.Fatalf("unlexable text should normalize to itself, got %q", x)
	}
}
