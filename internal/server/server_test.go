package server

import (
	"context"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/spatial"
	"repro/internal/sql"
)

// testCatalog builds a small spatial catalog with decomposed columns.
func testCatalog(t testing.TB) *plan.Catalog {
	t.Helper()
	c := plan.NewCatalog(device.PaperSystem())
	d := spatial.Generate(50_000, 7)
	if err := d.Load(c); err != nil {
		t.Fatal(err)
	}
	if err := d.Decompose(c); err != nil {
		t.Fatal(err)
	}
	return c
}

// startServer serves an engine over the catalog on a loopback port and
// returns the server and its address.
func startServer(t testing.TB, c *plan.Catalog, opts engine.Options) (*Server, string) {
	t.Helper()
	srv := New(engine.New(c, opts))
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	return srv, l.Addr().String()
}

// trip queries with distinct bounds, so concurrent clients exercise both
// distinct plans and shared cached plans.
func tripQuery(i int) string {
	lonLo := 2_00000 + int64(i%8)*10_000
	return fmt.Sprintf("select count(lon) from trips where lon between %d and %d and lat between 5042220 and 5044850",
		lonLo, lonLo+40_000)
}

// TestConcurrentClientsMatchDirectExecution is the acceptance check: 32
// concurrent clients, half forced classic and half A&R, must each see
// exactly the rows direct single-threaded Catalog execution produces.
func TestConcurrentClientsMatchDirectExecution(t *testing.T) {
	c := testCatalog(t)
	_, addr := startServer(t, c, engine.Options{Sched: engine.SchedConfig{CPUWorkers: 8, GPUStreams: 2, ARQueue: 64}})

	// Reference answers from direct execution.
	want := make(map[string][]string)
	for i := 0; i < 8; i++ {
		q := tripQuery(i)
		b, err := sql.Compile(c, q)
		if err != nil {
			t.Fatal(err)
		}
		arRes, err := c.ExecAR(b.Query, plan.ExecOpts{})
		if err != nil {
			t.Fatal(err)
		}
		clRes, err := c.ExecClassic(b.Query, plan.ExecOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if !plan.EqualResults(arRes.Rows, clRes.Rows) {
			t.Fatalf("engine disagreement on %q", q)
		}
		want[q] = strings.Split(strings.TrimRight(plan.FormatRows(arRes.Rows), "\n"), "\n")
	}

	const clients = 32
	const perClient = 12
	errs := make(chan error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		mode := `\mode classic`
		if i%2 == 1 {
			mode = `\mode ar`
		}
		wg.Add(1)
		go func(i int, mode string) {
			defer wg.Done()
			cl, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			if _, err := cl.Query(mode); err != nil {
				errs <- err
				return
			}
			for j := 0; j < perClient; j++ {
				q := tripQuery(i + j)
				got, err := cl.Query(q)
				if err != nil {
					errs <- fmt.Errorf("client %d: %w", i, err)
					return
				}
				if strings.Join(got, "|") != strings.Join(want[q], "|") {
					errs <- fmt.Errorf("client %d query %q: got %v want %v", i, q, got, want[q])
					return
				}
			}
			errs <- nil
		}(i, mode)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestPlanCacheHitsObservableInStats runs the same statement text (in
// varying case/whitespace) repeatedly and checks the \stats endpoint
// reports the hits.
func TestPlanCacheHitsObservableInStats(t *testing.T) {
	c := testCatalog(t)
	_, addr := startServer(t, c, engine.Options{})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	variants := []string{
		"select count(lon) from trips where lon between 200000 and 240000",
		"SELECT count(lon) FROM trips WHERE lon BETWEEN 200000 AND 240000",
		"select  count(lon)  from trips  where lon between 200000 and 240000",
	}
	var first []string
	for i, q := range variants {
		got, err := cl.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = got
		} else if strings.Join(got, "|") != strings.Join(first, "|") {
			t.Fatalf("variant %d returned %v, want %v", i, got, first)
		}
	}
	stats, err := cl.Query(`\stats`)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(stats, "\n")
	if !strings.Contains(joined, "plan cache: 2 hits, 1 misses") {
		t.Fatalf("expected 2 hits / 1 miss in stats, got:\n%s", joined)
	}
	if !strings.Contains(joined, "engine totals: 3 queries") {
		t.Fatalf("expected 3 queries in engine totals, got:\n%s", joined)
	}
}

// TestSessionMetaCommands drives the session-facing protocol surface.
func TestSessionMetaCommands(t *testing.T) {
	c := testCatalog(t)
	_, addr := startServer(t, c, engine.Options{})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if got, err := cl.Query(`\cost`); err != nil || got[0] != "cost report on" {
		t.Fatalf("\\cost: %v %v", got, err)
	}
	// With cost on, a query reports its route and meter.
	got, err := cl.Query(tripQuery(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || !strings.HasPrefix(got[1], "-- ar; simulated") {
		t.Fatalf("expected cost line with ar route, got %v", got)
	}
	if _, err := cl.Query(`\mode classic`); err != nil {
		t.Fatal(err)
	}
	got, err = cl.Query(tripQuery(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || !strings.HasPrefix(got[1], "-- classic; simulated") {
		t.Fatalf("expected cost line with classic route, got %v", got)
	}
	if _, err := cl.Query(`\mode sideways`); err == nil {
		t.Fatal("bad mode must error")
	}
	if got, err := cl.Query(`\tables`); err != nil || !strings.Contains(strings.Join(got, " "), "trips") {
		t.Fatalf("\\tables: %v %v", got, err)
	}
	if _, err := cl.Query(`\prepare p1 ` + tripQuery(2)); err != nil {
		t.Fatal(err)
	}
	prep, err := cl.Query(`\run p1`)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := cl.Query(tripQuery(2))
	if err != nil {
		t.Fatal(err)
	}
	if prep[0] != direct[0] {
		t.Fatalf("prepared result %v != direct %v", prep, direct)
	}
	if _, err := cl.Query(`\run nope`); err == nil {
		t.Fatal("\\run of unknown statement must error")
	}
	if _, err := cl.Query(`\bogus`); err == nil {
		t.Fatal("unknown meta command must error")
	}
	if _, err := cl.Query("select nothing from nowhere"); err == nil {
		t.Fatal("bad SQL must error")
	}
}

// TestPreparedStatementParams exercises $n placeholder substitution over
// the protocol: one prepared statement, different bounds per \run.
func TestPreparedStatementParams(t *testing.T) {
	c := testCatalog(t)
	_, addr := startServer(t, c, engine.Options{})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if _, err := cl.Query(`\prepare pq select count(lon) from trips where lon between $1 and $2`); err != nil {
		t.Fatal(err)
	}
	for _, bounds := range [][2]int{{200000, 240000}, {210000, 250000}} {
		got, err := cl.Query(fmt.Sprintf(`\run pq %d %d`, bounds[0], bounds[1]))
		if err != nil {
			t.Fatal(err)
		}
		direct, err := cl.Query(fmt.Sprintf("select count(lon) from trips where lon between %d and %d", bounds[0], bounds[1]))
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != direct[0] {
			t.Fatalf("parameterized result %v != direct %v", got, direct)
		}
	}
	// Wrong arity and non-literal params must error, not smuggle SQL.
	if _, err := cl.Query(`\run pq 1`); err == nil {
		t.Fatal("wrong parameter count must error")
	}
	if _, err := cl.Query(`\run pq 1 drop`); err == nil {
		t.Fatal("non-literal parameter must error")
	}
}

// TestRuntimeDecompose checks bwdecompose statements work through the
// server (routed as DDL) and enable A&R routing afterwards.
func TestRuntimeDecompose(t *testing.T) {
	c := plan.NewCatalog(device.PaperSystem())
	d := spatial.Generate(10_000, 7)
	if err := d.Load(c); err != nil {
		t.Fatal(err)
	}
	_, addr := startServer(t, c, engine.Options{})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	q := "select count(lon) from trips where lon between 200000 and 240000"
	if _, err := cl.Query(`\mode ar`); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Query(q); err == nil {
		t.Fatal("A&R before decomposition must error")
	}
	if got, err := cl.Query("select bwdecompose(lon, 24) from trips"); err != nil || got[0] != "decomposed" {
		t.Fatalf("bwdecompose: %v %v", got, err)
	}
	if _, err := cl.Query(q); err != nil {
		t.Fatalf("A&R after decomposition: %v", err)
	}
}

// TestOverloadReplyCarriesRetryHint saturates the single GPU stream and its
// admission queue with a blocked A&R query, then checks the protocol reply
// of a rejected query: a "hint:" payload line with queue detail, followed
// by the typed error text.
func TestOverloadReplyCarriesRetryHint(t *testing.T) {
	c := testCatalog(t)
	srv, addr := startServer(t, c, engine.Options{Sched: engine.SchedConfig{GPUStreams: 1, ARQueue: 1}})

	// Block the GPU stream deterministically: a direct scheduler execution
	// whose OnStage hook parks until released.
	release := make(chan struct{})
	running := make(chan struct{})
	var once sync.Once
	b, err := sql.Compile(c, tripQuery(0))
	if err != nil {
		t.Fatal(err)
	}
	blocked := plan.ExecOpts{OnStage: func(plan.Stage) {
		once.Do(func() { close(running) })
		<-release
	}}
	done := make(chan error, 1)
	go func() {
		_, _, err := srv.Engine().Scheduler().Exec(context.Background(), b, blocked, engine.ModeAR)
		done <- err
	}()
	<-running

	// Fill the admission queue with one waiter.
	waiter := make(chan error, 1)
	go func() {
		_, _, err := srv.Engine().Scheduler().Exec(context.Background(), b, plan.ExecOpts{}, engine.ModeAR)
		waiter <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Engine().Scheduler().Stats().WaitingAR == 0 {
		if time.Now().After(deadline) {
			t.Fatal("queued A&R query never registered as waiting")
		}
		time.Sleep(time.Millisecond)
	}

	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Query(`\mode ar`); err != nil {
		t.Fatal(err)
	}
	payload, err := cl.Query(tripQuery(1))
	if err == nil {
		t.Fatal("expected overload error")
	}
	if !strings.Contains(err.Error(), "overloaded") || !strings.Contains(err.Error(), "queue capacity 1") {
		t.Fatalf("error lacks typed overload detail: %v", err)
	}
	if len(payload) == 0 || !strings.HasPrefix(payload[0], "hint: A&R queue full (1 waiting / 1 capacity)") {
		t.Fatalf("expected retry hint payload line, got %v", payload)
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatalf("blocked query failed: %v", err)
	}
	if err := <-waiter; err != nil {
		t.Fatalf("queued query failed after release: %v", err)
	}
}

// TestClientDisconnectCancelsInFlightQuery is the redesign's motivating
// scenario: a client whose query is still waiting on the GPU stream hangs
// up, and the per-connection context must cancel the query — the scheduler
// wait is abandoned and the slot bookkeeping drains — without the stream
// ever becoming free.
func TestClientDisconnectCancelsInFlightQuery(t *testing.T) {
	c := testCatalog(t)
	srv, addr := startServer(t, c, engine.Options{Sched: engine.SchedConfig{GPUStreams: 1, ARQueue: 4}})
	sched := srv.Engine().Scheduler()

	// Park a query on the GPU stream until released, so the protocol
	// client's query queues behind it deterministically.
	release := make(chan struct{})
	running := make(chan struct{})
	var once sync.Once
	b, err := sql.Compile(c, tripQuery(0))
	if err != nil {
		t.Fatal(err)
	}
	blocked := plan.ExecOpts{OnStage: func(plan.Stage) {
		once.Do(func() { close(running) })
		<-release
	}}
	blockedDone := make(chan error, 1)
	go func() {
		_, _, err := sched.Exec(context.Background(), b, blocked, engine.ModeAR)
		blockedDone <- err
	}()
	<-running

	// A raw client sends a forced-A&R query and hangs up without reading
	// the response.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fmt.Fprintf(conn, "\\mode ar\n%s\n", tripQuery(1)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for sched.Stats().WaitingAR == 0 {
		if time.Now().After(deadline) {
			t.Fatal("client query never queued on the GPU stream")
		}
		time.Sleep(time.Millisecond)
	}
	conn.Close()

	// The disconnect must cancel the queued query while the stream is
	// still occupied: waiting drains to zero and the cancellation is
	// counted, with no A&R execution having happened.
	deadline = time.Now().Add(5 * time.Second)
	for sched.Stats().WaitingAR != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("disconnect did not cancel the queued query: %+v", sched.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	if st := sched.Stats(); st.Cancelled == 0 || st.ARRun != 0 {
		t.Fatalf("want cancellation recorded and no A&R run, got %+v", st)
	}

	close(release)
	if err := <-blockedDone; err != nil {
		t.Fatalf("blocked query failed after release: %v", err)
	}
}

// TestHalfCloseClientGetsResponses guards the one-shot piping pattern
// (`printf 'stmt' | nc -N`): a client that sends its statements and
// half-closes the write side before reading must still receive every
// response — a clean EOF is not abandonment and must not cancel pending
// statements.
func TestHalfCloseClientGetsResponses(t *testing.T) {
	c := testCatalog(t)
	_, addr := startServer(t, c, engine.Options{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := fmt.Fprintf(conn, "%s\n%s\n", tripQuery(0), tripQuery(1)); err != nil {
		t.Fatal(err)
	}
	if err := conn.(*net.TCPConn).CloseWrite(); err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(conn)
	if err != nil {
		t.Fatal(err)
	}
	got := string(out)
	if strings.Contains(got, "error:") {
		t.Fatalf("half-closed client saw an error:\n%s", got)
	}
	if n := strings.Count(got, "ok\n"); n != 2 {
		t.Fatalf("want 2 responses after half-close, got %d:\n%s", n, got)
	}
}

// TestCloseDrainsAndRejectsClients: Close cancels the serving context,
// drains handlers, and later queries on old connections fail.
func TestCloseDrainsAndRejectsClients(t *testing.T) {
	c := testCatalog(t)
	srv, addr := startServer(t, c, engine.Options{})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Query(tripQuery(0)); err != nil {
		t.Fatal(err)
	}
	doneClose := make(chan error, 1)
	go func() { doneClose <- srv.Close() }()
	select {
	case err := <-doneClose:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server Close did not drain")
	}
	if _, err := cl.Query(tripQuery(1)); err == nil {
		t.Fatal("query after Close must fail")
	}
}

func TestNormalize(t *testing.T) {
	a := sql.Normalize("SELECT  count(lon) FROM trips  WHERE lon BETWEEN 1 AND 2")
	b := sql.Normalize("select count ( lon ) from trips where lon between 1 and 2")
	if a != b {
		t.Fatalf("normalization mismatch: %q vs %q", a, b)
	}
	if x := sql.Normalize("select !!"); x != "select !!" {
		t.Fatalf("unlexable text should normalize to itself, got %q", x)
	}
}
