package server

import (
	"fmt"
	"sync"

	"repro/internal/device"
	"repro/internal/sql"
)

// Session is the per-connection state: an executor-mode and cost-report
// toggle, named prepared statements, and running meter totals over every
// statement the connection ran. All methods are safe for concurrent use
// (the \stats handler of one connection may snapshot another's totals).
type Session struct {
	ID int64

	// Totals accumulates the contention-adjusted meters of this session's
	// queries.
	Totals device.SharedMeter

	mu       sync.Mutex
	cost     bool
	mode     Mode
	prepared map[string]*sql.Binding
}

func newSession(id int64) *Session {
	return &Session{ID: id, prepared: make(map[string]*sql.Binding)}
}

// ToggleCost flips the cost-report toggle and returns the new state.
func (s *Session) ToggleCost() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cost = !s.cost
	return s.cost
}

// Cost reports whether cost reporting is on.
func (s *Session) Cost() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cost
}

// Mode returns the session's executor mode.
func (s *Session) Mode() Mode {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mode
}

// SetMode sets the executor mode from its text form.
func (s *Session) SetMode(name string) error {
	var m Mode
	switch name {
	case "auto":
		m = ModeAuto
	case "ar":
		m = ModeAR
	case "classic":
		m = ModeClassic
	default:
		return fmt.Errorf("server: unknown mode %q (auto, ar, classic)", name)
	}
	s.mu.Lock()
	s.mode = m
	s.mu.Unlock()
	return nil
}

// Prepare stores a compiled binding under a name.
func (s *Session) Prepare(name string, b *sql.Binding) {
	s.mu.Lock()
	s.prepared[name] = b
	s.mu.Unlock()
}

// Prepared returns a previously prepared binding.
func (s *Session) Prepared(name string) (*sql.Binding, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.prepared[name]
	return b, ok
}
