package tpch

import (
	"fmt"

	"repro/internal/plan"
)

// The three queries the paper selects as "representative for many
// relational workloads such as relational and multidimensional OLAP"
// (§VI-D). Dates are encoded as days since Epoch, money in cents,
// discounts/taxes in hundredths.

// Q1 is TPC-H Query 1 (pricing summary report):
//
//	select l_returnflag, l_linestatus, sum(l_quantity), sum(l_extendedprice),
//	       sum(l_extendedprice*(1-l_discount)),
//	       sum(l_extendedprice*(1-l_discount)*(1+l_tax)),
//	       avg(l_quantity), avg(l_extendedprice), avg(l_discount), count(*)
//	from lineitem
//	where l_shipdate <= date '1998-12-01' - interval ':delta' day
//	group by l_returnflag, l_linestatus
//
// Its cost in the paper splits between selection, grouping and
// aggregation; the sums of products suffer destructive distributivity
// (§IV-G), capping the speed-up near 3x.
func Q1(deltaDays int) plan.Query {
	cutoff := Day(1998, 12, 1) - int64(deltaDays)
	discPrice := plan.MulScaled(plan.Col("l_extendedprice"),
		plan.Sub(plan.Const(100), plan.Col("l_discount")), 100)
	charge := plan.MulScaled(discPrice,
		plan.Add(plan.Const(100), plan.Col("l_tax")), 100)
	return plan.Query{
		Table:   "lineitem",
		Filters: []plan.Filter{{Col: "l_shipdate", Lo: plan.NoLo, Hi: cutoff}},
		GroupBy: []string{"l_returnflag", "l_linestatus"},
		Aggs: []plan.AggSpec{
			{Name: "sum_qty", Func: plan.Sum, Expr: plan.Col("l_quantity")},
			{Name: "sum_base_price", Func: plan.Sum, Expr: plan.Col("l_extendedprice")},
			{Name: "sum_disc_price", Func: plan.Sum, Expr: discPrice},
			{Name: "sum_charge", Func: plan.Sum, Expr: charge},
			{Name: "avg_qty", Func: plan.Avg, Expr: plan.Col("l_quantity")},
			{Name: "avg_price", Func: plan.Avg, Expr: plan.Col("l_extendedprice")},
			{Name: "avg_disc", Func: plan.Avg, Expr: plan.Col("l_discount")},
			{Name: "count_order", Func: plan.Count},
		},
	}
}

// Q6 is TPC-H Query 6 (forecasting revenue change):
//
//	select sum(l_extendedprice*l_discount) as revenue
//	from lineitem
//	where l_shipdate >= date ':year-01-01'
//	  and l_shipdate < date ':year+1-01-01'
//	  and l_discount between :d - 0.01 and :d + 0.01
//	  and l_quantity < :qty
func Q6(year int, discount int64, qty int64) plan.Query {
	return plan.Query{
		Table: "lineitem",
		Filters: []plan.Filter{
			{Col: "l_shipdate", Lo: Day(year, 1, 1), Hi: Day(year+1, 1, 1) - 1},
			{Col: "l_discount", Lo: discount - 1, Hi: discount + 1},
			{Col: "l_quantity", Lo: plan.NoLo, Hi: qty - 1},
		},
		Aggs: []plan.AggSpec{
			{Name: "revenue", Func: plan.Sum,
				Expr: plan.MulScaled(plan.Col("l_extendedprice"), plan.Col("l_discount"), 100)},
		},
	}
}

// Q14 is TPC-H Query 14 (promotion effect), with the paper's ordered-
// dictionary rewrite of the `p_type like 'PROMO%'` prefix predicate into a
// range selection (§VI-D1):
//
//	select 100.00 * sum(case when p_type like 'PROMO%'
//	                         then l_extendedprice*(1-l_discount) else 0 end)
//	             / sum(l_extendedprice*(1-l_discount)) as promo_revenue
//	from lineitem, part
//	where l_partkey = p_partkey
//	  and l_shipdate >= date ':month-01' and l_shipdate < next month
func Q14(year, month int) (plan.Query, error) {
	lo, hi, ok := PrefixRange("PROMO")
	if !ok {
		return plan.Query{}, fmt.Errorf("tpch: PROMO prefix not in dictionary")
	}
	nextY, nextM := year, month+1
	if nextM > 12 {
		nextY, nextM = year+1, 1
	}
	discPrice := plan.MulScaled(plan.Col("l_extendedprice"),
		plan.Sub(plan.Const(100), plan.Col("l_discount")), 100)
	return plan.Query{
		Table: "lineitem",
		Filters: []plan.Filter{
			{Col: "l_shipdate", Lo: Day(year, month, 1), Hi: Day(nextY, nextM, 1) - 1},
		},
		Joins: []plan.JoinSpec{{FKCol: "l_partkey", Dim: "part", DimPK: "p_partkey"}},
		Aggs: []plan.AggSpec{
			{Name: "promo_revenue", Func: plan.Sum,
				Expr: plan.CaseRange(plan.DimCol("part", "p_type"), lo, hi, discPrice, plan.Const(0))},
			{Name: "total_revenue", Func: plan.Sum, Expr: discPrice},
		},
	}, nil
}

// Q14Ratio derives the query's headline number — promo revenue as a
// percentage of total — from the two sums in the result row.
func Q14Ratio(r *plan.Result) float64 {
	if len(r.Rows) == 0 || len(r.Rows[0].Vals) < 2 || r.Rows[0].Vals[1] == 0 {
		return 0
	}
	return 100 * float64(r.Rows[0].Vals[0]) / float64(r.Rows[0].Vals[1])
}
