package tpch

import (
	"strings"
	"testing"

	"repro/internal/device"
	"repro/internal/plan"
)

func smallCatalog(t *testing.T, sf float64, spaceConstrained bool) (*plan.Catalog, *Data) {
	t.Helper()
	d := Generate(sf, 42)
	c := plan.NewCatalog(device.PaperSystem())
	if err := d.Load(c); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if err := d.DecomposeAll(c, spaceConstrained); err != nil {
		t.Fatalf("DecomposeAll: %v", err)
	}
	return c, d
}

func TestDay(t *testing.T) {
	if Day(1992, 1, 1) != 0 {
		t.Errorf("Day(1992-01-01) = %d, want 0", Day(1992, 1, 1))
	}
	if Day(1992, 1, 2) != 1 {
		t.Errorf("Day(1992-01-02) = %d, want 1", Day(1992, 1, 2))
	}
	// The paper's 2526 distinct shipdates span 1992-01 .. 1998-12-01-ish.
	if d := Day(1998, 12, 1); d < 2500 || d > 2530 {
		t.Errorf("Day(1998-12-01) = %d, want ~2526", d)
	}
}

func TestGeneratorDistributions(t *testing.T) {
	d := Generate(0.001, 7) // 6000 lineitems
	if d.LineCount != 6000 {
		t.Fatalf("LineCount = %d, want 6000", d.LineCount)
	}
	seenQty := map[int64]bool{}
	for i := 0; i < d.LineCount; i++ {
		if d.Quantity[i] < 1 || d.Quantity[i] > 50 {
			t.Fatalf("quantity %d out of 1..50", d.Quantity[i])
		}
		seenQty[d.Quantity[i]] = true
		if d.Discount[i] < 1 || d.Discount[i] > 10 {
			t.Fatalf("discount %d out of 1..10", d.Discount[i])
		}
		if d.Tax[i] < 0 || d.Tax[i] > 8 {
			t.Fatalf("tax %d out of 0..8", d.Tax[i])
		}
		if d.Shipdate[i] < 0 || d.Shipdate[i] >= ShipdateDays {
			t.Fatalf("shipdate %d out of range", d.Shipdate[i])
		}
		if d.Partkey[i] < 1 || d.Partkey[i] > int64(d.PartCount) {
			t.Fatalf("partkey %d dangling", d.Partkey[i])
		}
		if d.ExtPrice[i] <= 0 {
			t.Fatalf("non-positive extendedprice")
		}
		// linestatus/returnflag consistency with the status cutoff.
		if d.LineStat[i] == 1 && d.RetFlag[i] != 1 {
			t.Fatalf("open lineitem with returnflag %d", d.RetFlag[i])
		}
	}
	if len(seenQty) != 50 {
		t.Errorf("only %d distinct quantities, want 50 (paper: 50 values/6 bits)", len(seenQty))
	}
}

// TestPaperBitWidths verifies §VI-D1's observation: the selection columns
// of Q6 need only 6, 4 and 12 bits.
func TestPaperBitWidths(t *testing.T) {
	c, _ := smallCatalog(t, 0.001, false)
	for col, maxBits := range map[string]uint{
		"l_quantity": 6,
		"l_discount": 4,
		"l_shipdate": 12,
	} {
		d, err := c.Decomposition("lineitem", col)
		if err != nil {
			t.Fatal(err)
		}
		if d.Dec.TotalBits > maxBits {
			t.Errorf("%s needs %d bits, paper says %d", col, d.Dec.TotalBits, maxBits)
		}
		if d.Dec.ResBits != 0 {
			t.Errorf("%s not fully device resident in unconstrained config", col)
		}
	}
}

func TestSpaceConstrainedShipdateSplit(t *testing.T) {
	c, _ := smallCatalog(t, 0.001, true)
	d, err := c.Decomposition("lineitem", "l_shipdate")
	if err != nil {
		t.Fatal(err)
	}
	if d.Dec.ResBits != 8 {
		t.Errorf("space-constrained l_shipdate has %d residual bits, want 8", d.Dec.ResBits)
	}
}

func TestTypeDictionaryOrderedAndPrefixRange(t *testing.T) {
	for i := 1; i < len(Types); i++ {
		if Types[i-1] >= Types[i] {
			t.Fatalf("dictionary not strictly sorted at %d", i)
		}
	}
	lo, hi, ok := PrefixRange("PROMO")
	if !ok {
		t.Fatal("PROMO prefix missing")
	}
	if hi-lo+1 != 25 {
		t.Errorf("PROMO covers %d codes, want 25 (5x5 suffixes)", hi-lo+1)
	}
	for i := lo; i <= hi; i++ {
		if !strings.HasPrefix(Types[i], "PROMO") {
			t.Errorf("code %d (%s) inside PROMO range", i, Types[i])
		}
	}
	if lo > 0 && strings.HasPrefix(Types[lo-1], "PROMO") {
		t.Error("PROMO range misses a leading entry")
	}
	if int(hi) < len(Types)-1 && strings.HasPrefix(Types[hi+1], "PROMO") {
		t.Error("PROMO range misses a trailing entry")
	}
	if _, _, ok := PrefixRange("XYZZY"); ok {
		t.Error("nonexistent prefix matched")
	}
	if TypeCode(Types[3]) != 3 {
		t.Errorf("TypeCode round trip failed")
	}
	if TypeCode("NOT A TYPE") != -1 {
		t.Error("TypeCode invented a code")
	}
}

func TestQ1ARMatchesClassic(t *testing.T) {
	c, _ := smallCatalog(t, 0.002, false)
	q := Q1(90)
	arRes, err := c.ExecAR(q, plan.ExecOpts{})
	if err != nil {
		t.Fatalf("ExecAR: %v", err)
	}
	clRes, err := c.ExecClassic(q, plan.ExecOpts{})
	if err != nil {
		t.Fatalf("ExecClassic: %v", err)
	}
	if !plan.EqualResults(arRes.Rows, clRes.Rows) {
		t.Fatalf("Q1 A&R != classic:\n%s\nvs\n%s",
			plan.FormatRows(arRes.Rows), plan.FormatRows(clRes.Rows))
	}
	// Q1 yields the classic 4 groups: (A,F), (N,F), (N,O), (R,F).
	if len(arRes.Rows) != 4 {
		t.Errorf("Q1 produced %d groups, want 4:\n%s", len(arRes.Rows), plan.FormatRows(arRes.Rows))
	}
}

func TestQ6ARMatchesClassicBothConfigs(t *testing.T) {
	for _, constrained := range []bool{false, true} {
		c, _ := smallCatalog(t, 0.002, constrained)
		q := Q6(1994, 6, 24)
		arRes, err := c.ExecAR(q, plan.ExecOpts{})
		if err != nil {
			t.Fatalf("constrained=%v ExecAR: %v", constrained, err)
		}
		clRes, err := c.ExecClassic(q, plan.ExecOpts{})
		if err != nil {
			t.Fatalf("ExecClassic: %v", err)
		}
		if !plan.EqualResults(arRes.Rows, clRes.Rows) {
			t.Fatalf("constrained=%v: Q6 A&R != classic: %s vs %s", constrained,
				plan.FormatRows(arRes.Rows), plan.FormatRows(clRes.Rows))
		}
		if arRes.Rows[0].Vals[0] <= 0 {
			t.Error("Q6 revenue not positive; generator selectivities off")
		}
		// The space-constrained run must produce false positives that the
		// refinement eliminates.
		if constrained && arRes.Candidates <= arRes.Refined {
			t.Error("space-constrained Q6 produced no false positives")
		}
		if !arRes.Approx.Aggs[0].Contains(arRes.Rows[0].Vals[0]) {
			t.Errorf("approximate revenue %v does not contain exact %d",
				arRes.Approx.Aggs[0], arRes.Rows[0].Vals[0])
		}
	}
}

func TestQ14ARMatchesClassic(t *testing.T) {
	c, _ := smallCatalog(t, 0.002, false)
	q, err := Q14(1995, 9)
	if err != nil {
		t.Fatal(err)
	}
	arRes, err := c.ExecAR(q, plan.ExecOpts{})
	if err != nil {
		t.Fatalf("ExecAR: %v", err)
	}
	clRes, err := c.ExecClassic(q, plan.ExecOpts{})
	if err != nil {
		t.Fatalf("ExecClassic: %v", err)
	}
	if !plan.EqualResults(arRes.Rows, clRes.Rows) {
		t.Fatalf("Q14 A&R != classic:\n%s\nvs\n%s",
			plan.FormatRows(arRes.Rows), plan.FormatRows(clRes.Rows))
	}
	ratio := Q14Ratio(arRes)
	// ~25/150 of types are PROMO: the ratio must be in a sane band.
	if ratio < 5 || ratio > 35 {
		t.Errorf("Q14 promo ratio = %.2f%%, want ~16%%", ratio)
	}
	if Q14Ratio(&plan.Result{}) != 0 {
		t.Error("Q14Ratio on empty result should be 0")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(0.0005, 9)
	b := Generate(0.0005, 9)
	for i := 0; i < a.LineCount; i++ {
		if a.Shipdate[i] != b.Shipdate[i] || a.ExtPrice[i] != b.ExtPrice[i] {
			t.Fatal("generator not deterministic")
		}
	}
}
