package tpch

import "sort"

// Part-type dictionary. TPC-H composes p_type from three syllable lists;
// the dictionary is sorted so that string-prefix predicates become code
// ranges — the rewrite the paper applies to Q14's `p_type like 'PROMO%'`
// predicate, replacing the string operation with "a range-selection on an
// ordered dictionary of the string values of the column" (§VI-D1).
var (
	types1 = []string{"ECONOMY", "LARGE", "MEDIUM", "PROMO", "SMALL", "STANDARD"}
	types2 = []string{"ANODIZED", "BRUSHED", "BURNISHED", "PLATED", "POLISHED"}
	types3 = []string{"BRASS", "COPPER", "NICKEL", "STEEL", "TIN"}

	// Types is the ordered p_type dictionary. (The paper reports 125
	// distinct values in its data set; the TPC-H spec lists make 150 —
	// the prefix-to-range rewrite is unaffected.)
	Types = buildTypes()
)

func buildTypes() []string {
	var out []string
	for _, a := range types1 {
		for _, b := range types2 {
			for _, c := range types3 {
				out = append(out, a+" "+b+" "+c)
			}
		}
	}
	sort.Strings(out)
	return out
}

// TypeCode returns the dictionary code of a part-type string, or -1.
func TypeCode(s string) int64 {
	i := sort.SearchStrings(Types, s)
	if i < len(Types) && Types[i] == s {
		return int64(i)
	}
	return -1
}

// PrefixRange returns the dictionary code range [lo, hi] of all entries
// with the given prefix; ok is false when no entry matches. This is the
// ordered-dictionary rewrite of `like 'prefix%'`.
func PrefixRange(prefix string) (lo, hi int64, ok bool) {
	start := sort.SearchStrings(Types, prefix)
	end := start
	for end < len(Types) && len(Types[end]) >= len(prefix) && Types[end][:len(prefix)] == prefix {
		end++
	}
	if end == start {
		return 0, 0, false
	}
	return int64(start), int64(end - 1), true
}
