// Package tpch generates the TPC-H subset the paper evaluates (§VI-D) —
// the lineitem and part columns touched by queries Q1, Q6 and Q14 — and
// builds those queries against the plan layer, in both classic and A&R
// form.
//
// The generator reproduces the distributions the paper calls out:
// l_quantity has 50 values (6 bits), l_discount 10 values (4 bits),
// l_shipdate 2526 values (12 bits) — "there is simply very little to
// decompose" — and p_type is a dictionary of part-type strings whose
// ordered codes turn Q14's PROMO% prefix predicate into a range selection
// (§VI-D1).
package tpch

import (
	"math/rand"
	"time"

	"repro/internal/bat"
	"repro/internal/plan"
)

// Scale-factor row counts (per TPC-H: SF-1 = 6 M lineitems, 200 k parts).
const (
	LineitemPerSF = 6_000_000
	PartPerSF     = 200_000
)

// Epoch is day zero of the shipdate encoding.
var Epoch = time.Date(1992, 1, 1, 0, 0, 0, 0, time.UTC)

// Day encodes a calendar date as days since Epoch.
func Day(y, m, d int) int64 {
	t := time.Date(y, time.Month(m), d, 0, 0, 0, 0, time.UTC)
	return int64(t.Sub(Epoch).Hours() / 24)
}

// ShipdateDays is the number of distinct l_shipdate values (the paper's
// "2526 values/12 bits").
const ShipdateDays = 2526

// Data holds the generated tables.
type Data struct {
	SF float64

	// lineitem
	Quantity  []int64 // 1..50
	ExtPrice  []int64 // cents
	Discount  []int64 // percent hundredths: 1..10 (0.01..0.10)
	Tax       []int64 // 0..8
	Shipdate  []int64 // days since Epoch, 0..2525
	RetFlag   []int64 // dictionary: 0=A, 1=N, 2=R
	LineStat  []int64 // dictionary: 0=F, 1=O
	Partkey   []int64 // 1..PartPerSF*SF
	LineCount int

	// part
	PKey      []int64 // dense 1..P
	PType     []int64 // ordered dictionary code into Types
	PartCount int
}

// Generate builds a data set at the given scale factor. The same seed
// reproduces the same data.
func Generate(sf float64, seed int64) *Data {
	nL := int(float64(LineitemPerSF) * sf)
	nP := int(float64(PartPerSF) * sf)
	if nP < 1 {
		nP = 1
	}
	rng := rand.New(rand.NewSource(seed))
	d := &Data{SF: sf, LineCount: nL, PartCount: nP}

	d.PKey = make([]int64, nP)
	d.PType = make([]int64, nP)
	for i := 0; i < nP; i++ {
		d.PKey[i] = int64(i) + 1
		d.PType[i] = int64(rng.Intn(len(Types)))
	}

	d.Quantity = make([]int64, nL)
	d.ExtPrice = make([]int64, nL)
	d.Discount = make([]int64, nL)
	d.Tax = make([]int64, nL)
	d.Shipdate = make([]int64, nL)
	d.RetFlag = make([]int64, nL)
	d.LineStat = make([]int64, nL)
	d.Partkey = make([]int64, nL)

	statusCut := Day(1995, 6, 17) // TPC-H: linestatus F up to currentdate
	for i := 0; i < nL; i++ {
		qty := int64(rng.Intn(50)) + 1
		pk := int64(rng.Intn(nP)) + 1
		d.Quantity[i] = qty
		d.Partkey[i] = pk
		d.ExtPrice[i] = qty * retailPriceCents(pk)
		d.Discount[i] = int64(rng.Intn(10)) + 1 // 0.01 .. 0.10
		d.Tax[i] = int64(rng.Intn(9))           // 0.00 .. 0.08
		ship := int64(rng.Intn(ShipdateDays))
		d.Shipdate[i] = ship
		if ship <= statusCut {
			d.LineStat[i] = 0 // F
			switch {
			case ship > statusCut-90 && rng.Intn(2) == 0:
				// Shipped before but received after the status date: the
				// small (N, F) group of the canonical Q1 answer.
				d.RetFlag[i] = 1 // N
			case rng.Intn(2) == 0:
				d.RetFlag[i] = 0 // A
			default:
				d.RetFlag[i] = 2 // R
			}
		} else {
			d.LineStat[i] = 1 // O
			d.RetFlag[i] = 1  // N
		}
	}
	return d
}

// retailPriceCents follows the TPC-H p_retailprice formula, in cents.
func retailPriceCents(pk int64) int64 {
	return 90000 + (pk/10)%20001 + 100*(pk%1000)
}

// Load registers lineitem and part in the catalog and pre-builds the
// foreign-key index over p_partkey (§IV-D: hash tables are pre-built on
// the CPU).
func (d *Data) Load(c *plan.Catalog) error {
	li := plan.NewTable("lineitem")
	for _, col := range []struct {
		name  string
		vals  []int64
		width int
		scale int64
	}{
		{"l_quantity", d.Quantity, bat.Width8, 1},
		{"l_extendedprice", d.ExtPrice, bat.Width32, 100},
		{"l_discount", d.Discount, bat.Width8, 100},
		{"l_tax", d.Tax, bat.Width8, 100},
		{"l_shipdate", d.Shipdate, bat.Width32, 1},
		{"l_returnflag", d.RetFlag, bat.Width8, 1},
		{"l_linestatus", d.LineStat, bat.Width8, 1},
		{"l_partkey", d.Partkey, bat.Width32, 1},
	} {
		if err := li.AddColumnScaled(col.name, bat.NewDense(col.vals, col.width), col.scale); err != nil {
			return err
		}
	}
	if err := c.AddTable(li); err != nil {
		return err
	}
	part := plan.NewTable("part")
	if err := part.AddColumn("p_partkey", bat.NewDense(d.PKey, bat.Width32)); err != nil {
		return err
	}
	if err := part.AddColumn("p_type", bat.NewDense(d.PType, bat.Width8)); err != nil {
		return err
	}
	if err := c.AddTable(part); err != nil {
		return err
	}
	return c.BuildFKIndex("part", "p_partkey")
}

// DecomposeAll decomposes every column A&R plans touch. With
// spaceConstrained false every column keeps all its bits on the device —
// the paper's "A & R" configuration, possible because the TPC-H columns
// are narrow (§VI-D1). With spaceConstrained true, l_shipdate is
// decomposed with its low 8 bits on the CPU (the paper's "A & R Space
// Constraint": `bwdecompose(l_shipdate, 24)` over the 32-bit
// representation).
func (d *Data) DecomposeAll(c *plan.Catalog, spaceConstrained bool) error {
	shipBits := uint(32)
	if spaceConstrained {
		// 12 significant bits minus 8 residual bits = 4 device bits.
		shipBits = 4
	}
	cols := map[string]uint{
		"l_quantity":      32,
		"l_extendedprice": 32,
		"l_discount":      32,
		"l_tax":           32,
		"l_shipdate":      shipBits,
		"l_returnflag":    32,
		"l_linestatus":    32,
		"l_partkey":       32,
	}
	for col, bits := range cols {
		if _, err := c.Decompose("lineitem", col, bits); err != nil {
			return err
		}
	}
	if _, err := c.Decompose("part", "p_type", 32); err != nil {
		return err
	}
	return nil
}
