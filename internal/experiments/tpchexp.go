package experiments

import (
	"context"
	"fmt"

	"repro/internal/device"
	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/tpch"
)

// Fig 10: the selected TPC-H queries at SF-10 in four configurations —
// A&R (everything device resident), A&R space-constrained (l_shipdate
// decomposed with 8 residual bits), classic MonetDB, and the streaming
// baseline.

// tpchFigure runs one query in all four configurations.
func tpchFigure(opts Options, id, title string, build func() (plan.Query, error), paperRef string) (*Figure, error) {
	scale := PaperTPCHSF / opts.TPCHSF
	q, err := build()
	if err != nil {
		return nil, err
	}

	run := func(spaceConstrained bool, classic bool) (*plan.Result, error) {
		sys := device.ScaledSystem(scale)
		c := plan.NewCatalog(sys)
		d := tpch.Generate(opts.TPCHSF, opts.Seed)
		if err := d.Load(c); err != nil {
			return nil, err
		}
		if err := d.DecomposeAll(c, spaceConstrained); err != nil {
			return nil, err
		}
		mode := engine.ModeAR
		if classic {
			mode = engine.ModeClassic
		}
		sess := engine.New(c, engine.Options{Threads: opts.Threads}).SessionFor(mode)
		defer sess.Close()
		res, err := sess.QueryPlan(context.Background(), q)
		if err != nil {
			return nil, err
		}
		c.ReleaseDecompositions()
		return res.Result, nil
	}

	arRes, err := run(false, false)
	if err != nil {
		return nil, err
	}
	scRes, err := run(true, false)
	if err != nil {
		return nil, err
	}
	clRes, err := run(false, true)
	if err != nil {
		return nil, err
	}
	if !plan.EqualResults(arRes.Rows, clRes.Rows) || !plan.EqualResults(scRes.Rows, clRes.Rows) {
		return nil, fmt.Errorf("experiments: %s result mismatch between configurations", id)
	}
	stream := device.NewMeter(device.ScaledSystem(scale)).
		StreamHypothetical(arRes.InputBytes).Seconds()

	return &Figure{
		ID: id, Title: title, YLabel: "Time in s",
		Bars: []Bar{
			meterBar("A & R", arRes.Meter),
			meterBar("A & R Space Constraint", scRes.Meter),
			meterBar("MonetDB", clRes.Meter),
			{Label: "Stream (Hypothetical)", Total: stream, PCI: stream},
		},
		Notes: []string{
			fmt.Sprintf("executed SF-%g, extrapolated x%.0f to the paper's SF-10", opts.TPCHSF, scale),
			fmt.Sprintf("candidates %d -> refined %d (space-constrained: %d -> %d)",
				arRes.Candidates, arRes.Refined, scRes.Candidates, scRes.Refined),
			"paper reference: " + paperRef,
		},
	}, nil
}

// Fig10a reproduces TPC-H Query 1. Paper: A&R 6.373 s, space-constrained
// 9.507 s, MonetDB 16.666 s, stream 0.254 s; the sums of products suffer
// destructive distributivity (§IV-G), capping the speed-up near 3x.
func Fig10a(opts Options) (*Figure, error) {
	return tpchFigure(opts, "fig10a", "TPC-H Query 1 (SF-10)",
		func() (plan.Query, error) { return tpch.Q1(90), nil },
		"A&R 6.373s / space-constrained 9.507s / MonetDB 16.666s / Stream 0.254s")
}

// Fig10b reproduces TPC-H Query 6. Paper: 0.123 / 0.265 / 1.719 / 0.226 s;
// decomposing l_shipdate costs about 35 %.
func Fig10b(opts Options) (*Figure, error) {
	return tpchFigure(opts, "fig10b", "TPC-H Query 6 (SF-10)",
		func() (plan.Query, error) { return tpch.Q6(1994, 6, 24), nil },
		"A&R 0.123s / space-constrained 0.265s / MonetDB 1.719s / Stream 0.226s")
}

// Fig10c reproduces TPC-H Query 14 with the ordered-dictionary rewrite of
// the PROMO% predicate. Paper: 0.112 / 0.341 / 0.565 / 0.230 s.
func Fig10c(opts Options) (*Figure, error) {
	return tpchFigure(opts, "fig10c", "TPC-H Query 14 (SF-10)",
		func() (plan.Query, error) { return tpch.Q14(1995, 9) },
		"A&R 0.112s / space-constrained 0.341s / MonetDB 0.565s / Stream 0.230s")
}
