package experiments

// Shape tests: each experiment must reproduce the paper's qualitative
// findings — who wins, by roughly what factor, and where crossovers fall —
// not its absolute milliseconds (our substrate is a simulator, not the
// authors' testbed). EXPERIMENTS.md records the quantitative comparison.

import "testing"

func quickFig(t *testing.T, f func(Options) (*Figure, error)) *Figure {
	t.Helper()
	fig, err := f(Quick())
	if err != nil {
		t.Fatalf("experiment failed: %v", err)
	}
	return fig
}

// Fig 8a: with all bits device resident, A&R beats the classic selection at
// every selectivity, and the approximate phase alone is far cheaper still.
func TestFig8aARWinsEverywhere(t *testing.T) {
	fig := quickFig(t, Fig8a)
	monet := fig.seriesY("MonetDB")
	arY := fig.seriesY("Approximate+Refine")
	apx := fig.seriesY("Approximate")
	for i := range monet {
		if arY[i] >= monet[i] {
			t.Errorf("sel %.0f%%: A&R (%.1fms) not faster than MonetDB (%.1fms)",
				fig.Series[0].X[i], arY[i], monet[i])
		}
		if apx[i] > arY[i] {
			t.Errorf("sel %.0f%%: approximate phase (%.1f) exceeds total (%.1f)", fig.Series[0].X[i], apx[i], arY[i])
		}
	}
	// The paper's approximate line is flat: compute-bound packed scans.
	if apx[len(apx)-1] > 2*apx[0] {
		t.Errorf("approximate line not flat: %.1f -> %.1f", apx[0], apx[len(apx)-1])
	}
}

// Fig 8b: with 8 residual bits on the CPU, refinement costs defeat the
// benefits above roughly 60% selectivity (§VI-B) — there is a crossover,
// and it falls in the upper half of the sweep.
func TestFig8bCrossover(t *testing.T) {
	fig := quickFig(t, Fig8b)
	monet := fig.seriesY("MonetDB")
	arY := fig.seriesY("Approximate+Refine")
	x := fig.Series[0].X
	if arY[0] >= monet[0] {
		t.Fatalf("A&R must win at 1%% selectivity: %.1f vs %.1f", arY[0], monet[0])
	}
	last := len(x) - 1
	if arY[last] <= monet[last] {
		t.Fatalf("refinement costs must defeat A&R at 100%%: %.1f vs %.1f", arY[last], monet[last])
	}
	var crossover float64
	for i := 1; i < len(x); i++ {
		if arY[i] >= monet[i] {
			crossover = x[i]
			break
		}
	}
	if crossover < 20 || crossover > 100 {
		t.Errorf("crossover at %.0f%%, paper reports ~60%%", crossover)
	}
}

// Fig 8c: every A&R curve improves (or at least does not degrade) as more
// bits move to the device, and at a fixed bit count higher selectivities
// cost more.
func TestFig8cMoreBitsNeverHurt(t *testing.T) {
	fig := quickFig(t, Fig8c)
	for _, s := range fig.Series {
		if s.Label == "Stream (Hypothetical)" {
			continue
		}
		first, last := s.Y[0], s.Y[len(s.Y)-1]
		if last > first*1.25 {
			t.Errorf("%s degrades with more device bits: %.1f -> %.1f", s.Label, first, last)
		}
	}
	ar5 := fig.seriesY("Approx+Refine (5%)")
	ar001 := fig.seriesY("Approx+Refine (0.01%)")
	for i := range ar5 {
		if ar5[i] < ar001[i] {
			t.Errorf("bit %d: 5%% selectivity (%.1f) cheaper than 0.01%% (%.1f)", i, ar5[i], ar001[i])
		}
	}
}

// Fig 8d: the A&R projection consistently outperforms the classic
// projection, though less so at higher selectivities (§VI-B).
func TestFig8dProjectionWins(t *testing.T) {
	fig := quickFig(t, Fig8d)
	monet := fig.seriesY("MonetDB")
	arY := fig.seriesY("Approximate+Refine")
	for i := range monet {
		if arY[i] >= monet[i] {
			t.Errorf("sel %.0f%%: A&R projection (%.1f) not faster than MonetDB (%.1f)",
				fig.Series[0].X[i], arY[i], monet[i])
		}
	}
	firstRatio := monet[0] / arY[0]
	lastRatio := monet[len(monet)-1] / arY[len(arY)-1]
	if lastRatio >= firstRatio {
		t.Errorf("advantage should shrink with selectivity: ratio %.1f -> %.1f", firstRatio, lastRatio)
	}
}

// Fig 8e: the distributed projection still wins where refinement
// amortizes; at the very lowest selectivities both are gather-bound and
// nearly tie (a documented deviation: the paper's chart keeps A&R ahead
// throughout).
func TestFig8eDistributedProjection(t *testing.T) {
	fig := quickFig(t, Fig8e)
	monet := fig.seriesY("MonetDB")
	arY := fig.seriesY("Approximate+Refine")
	for i := range monet {
		sel := fig.Series[0].X[i]
		limit := monet[i]
		if sel < 5 {
			limit *= 1.15 // near-ties tolerated below 5% selectivity
		}
		if arY[i] >= limit {
			t.Errorf("sel %.0f%%: distributed A&R projection (%.1f) not competitive with MonetDB (%.1f)",
				sel, arY[i], monet[i])
		}
	}
	// And it must cost more than the resident case at full selectivity.
	resident := quickFig(t, Fig8d)
	rl := len(resident.seriesY("Approximate+Refine")) - 1
	if arY[len(arY)-1] <= resident.seriesY("Approximate+Refine")[rl] {
		t.Error("distributed projection should pay more refinement than resident")
	}
}

// Fig 8f: A&R grouping beats the classic grouping and improves with group
// count (fewer write conflicts).
func TestFig8fGroupingShape(t *testing.T) {
	fig := quickFig(t, Fig8f)
	monet := fig.seriesY("MonetDB")
	arY := fig.seriesY("Approximate+Refine")
	for i := range monet {
		if arY[i] >= monet[i] {
			t.Errorf("groups %.0f: A&R (%.1f) not faster than MonetDB (%.1f)",
				fig.Series[0].X[i], arY[i], monet[i])
		}
	}
	if arY[len(arY)-1] >= arY[0] {
		t.Errorf("A&R grouping must improve with group count: %.1f -> %.1f", arY[0], arY[len(arY)-1])
	}
	if arY[0]/arY[len(arY)-1] < 1.5 {
		t.Errorf("conflict effect too weak: %.1f -> %.1f", arY[0], arY[len(arY)-1])
	}
}

// Table I: the spatial decomposition compresses by roughly a quarter and
// the query finds matches.
func TestTable1Shape(t *testing.T) {
	tb, err := Table1(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if tb.Compression < 0.20 || tb.Compression > 0.35 {
		t.Errorf("compression %.2f, paper reports ~0.25", tb.Compression)
	}
	if tb.CountResult <= 0 {
		t.Error("Table I query found nothing")
	}
	if tb.CPUBytes != 0 {
		t.Errorf("Table I decomposition should be fully device resident, CPU holds %d bytes", tb.CPUBytes)
	}
	if tb.Render() == "" {
		t.Error("empty render")
	}
}

// Fig 9: A&R beats both the CPU-only engine (paper: 3.4x) and the
// streaming baseline (paper: 3.2x), with the GPU dominating its time
// (paper: ~80%).
func TestFig9Shape(t *testing.T) {
	fig := quickFig(t, Fig9)
	arB := fig.bar("A & R")
	monet := fig.bar("MonetDB")
	stream := fig.bar("Stream (Hypothetical)")
	if arB == nil || monet == nil || stream == nil {
		t.Fatal("missing bars")
	}
	ratioCPU := monet.Total / arB.Total
	if ratioCPU < 2 || ratioCPU > 12 {
		t.Errorf("A&R vs MonetDB ratio %.1fx, paper reports 3.4x", ratioCPU)
	}
	if stream.Total/arB.Total < 2 {
		t.Errorf("A&R vs stream ratio %.1fx, paper reports 3.2x", stream.Total/arB.Total)
	}
	// Streaming is nearly as expensive as CPU evaluation (the paper's
	// headline PCI-E observation).
	if stream.Total < monet.Total*0.5 || stream.Total > monet.Total*1.5 {
		t.Errorf("stream (%.3fs) should be comparable to CPU (%.3fs)", stream.Total, monet.Total)
	}
	if arB.GPU/arB.Total < 0.6 {
		t.Errorf("GPU fraction %.0f%%, paper reports ~80%%", 100*arB.GPU/arB.Total)
	}
}

// Fig 10a: Q1's sums of products are destructively distributive, capping
// the speed-up around 3x; streaming the (small) input is faster than
// A&R processing for this query (§VI-D2).
func TestFig10aShape(t *testing.T) {
	fig := quickFig(t, Fig10a)
	arB := fig.bar("A & R")
	sc := fig.bar("A & R Space Constraint")
	monet := fig.bar("MonetDB")
	stream := fig.bar("Stream (Hypothetical)")
	if monet.Total/arB.Total < 1.5 || monet.Total/arB.Total > 8 {
		t.Errorf("Q1 speed-up %.1fx, paper reports ~2.6x", monet.Total/arB.Total)
	}
	if !(arB.Total < sc.Total && sc.Total < monet.Total) {
		t.Errorf("expected A&R < space-constrained < MonetDB, got %.2f / %.2f / %.2f",
			arB.Total, sc.Total, monet.Total)
	}
	if stream.Total >= arB.Total {
		t.Error("for Q1 the paper finds streaming faster than A&R processing")
	}
	// Destructive distributivity: a large share of A&R's time is CPU work.
	if arB.CPU/arB.Total < 0.25 {
		t.Errorf("Q1 A&R CPU share %.0f%%; sums of products must run on the CPU", 100*arB.CPU/arB.Total)
	}
}

// Fig 10b: Q6 sees the largest gain (paper: >6x vs CPU); decomposing
// l_shipdate costs noticeably (paper: ~35% fewer queries/s -> ~2x time).
func TestFig10bShape(t *testing.T) {
	fig := quickFig(t, Fig10b)
	arB := fig.bar("A & R")
	sc := fig.bar("A & R Space Constraint")
	monet := fig.bar("MonetDB")
	if monet.Total/arB.Total < 6 {
		t.Errorf("Q6 speed-up %.1fx, paper reports >6x (14x vs resident)", monet.Total/arB.Total)
	}
	if sc.Total <= arB.Total {
		t.Error("space-constrained Q6 must cost more than fully resident")
	}
	if sc.Total/arB.Total > 5 {
		t.Errorf("space-constrained penalty %.1fx too extreme, paper ~2x", sc.Total/arB.Total)
	}
}

// Fig 10c: Q14 keeps a clear A&R advantage through the FK join.
func TestFig10cShape(t *testing.T) {
	fig := quickFig(t, Fig10c)
	arB := fig.bar("A & R")
	sc := fig.bar("A & R Space Constraint")
	monet := fig.bar("MonetDB")
	if monet.Total/arB.Total < 2 || monet.Total/arB.Total > 15 {
		t.Errorf("Q14 speed-up %.1fx, paper reports ~5x", monet.Total/arB.Total)
	}
	if !(arB.Total < sc.Total && sc.Total < monet.Total) {
		t.Errorf("expected A&R < space-constrained < MonetDB, got %.2f / %.2f / %.2f",
			arB.Total, sc.Total, monet.Total)
	}
}

// Fig 11: the CPU stream hits the memory wall (saturation between 8 and 32
// threads); the A&R stream stacks nearly additively on top (paper:
// 12.6 + 13.4 = 26.0 q/s).
func TestFig11Shape(t *testing.T) {
	fig := quickFig(t, Fig11)
	classic := fig.Series[0].Y
	// Monotone non-decreasing, then flat: the wall.
	for i := 1; i < len(classic); i++ {
		if classic[i] < classic[i-1]*0.99 {
			t.Errorf("classic throughput dropped at %d threads", i)
		}
	}
	if classic[len(classic)-1] > classic[len(classic)-2]*1.05 {
		t.Error("no memory wall: 32 threads still scaling over 16")
	}
	if classic[len(classic)-1] < classic[0]*3 {
		t.Error("memory wall too low: parallel scaling under 3x")
	}
	cpuOnly := fig.bar("CPU only (32 threads)").Total
	cpuWith := fig.bar("CPU parallel w/ A&R").Total
	arOnly := fig.bar("A&R only").Total
	cum := fig.bar("Cumulative").Total
	if cpuWith > cpuOnly {
		t.Error("A&R stream cannot increase classic throughput")
	}
	if cpuWith < cpuOnly*0.7 {
		t.Errorf("A&R stream steals too much CPU: %.1f -> %.1f q/s", cpuOnly, cpuWith)
	}
	// "GPU operations have little impact on the CPU stream: the two can be
	// combined to achieve additive performance."
	if cum < (cpuOnly+arOnly)*0.8 {
		t.Errorf("cumulative %.1f q/s not nearly additive (%.1f + %.1f)", cum, cpuOnly, arOnly)
	}
}

// Fig 1 is static background data; sanity-check the trade-off direction.
func TestFig1TradeOff(t *testing.T) {
	fig := Fig1()
	for _, s := range fig.Series {
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] >= s.Y[i-1] {
				t.Errorf("%s: bandwidth must fall with capacity", s.Label)
			}
		}
	}
	if fig.Render() == "" {
		t.Error("empty render")
	}
}

func TestRenderSeriesFigure(t *testing.T) {
	fig := quickFig(t, Fig8a)
	out := fig.Render()
	if out == "" {
		t.Fatal("empty render")
	}
}

func TestDefaultsAndQuick(t *testing.T) {
	d, q := Defaults(), Quick()
	if d.MicroN <= q.MicroN {
		t.Error("Defaults should execute more rows than Quick")
	}
	if q.TPCHSF <= 0 || d.TPCHSF <= 0 {
		t.Error("non-positive scale factors")
	}
}

func TestIngestAmortization(t *testing.T) {
	fig, err := Ingest(Quick())
	if err != nil {
		t.Fatal(err)
	}
	inc := fig.seriesY("incremental merge")
	full := fig.seriesY("full re-decomposition")
	if len(inc) == 0 || len(inc) != len(full) {
		t.Fatalf("series lengths %d/%d", len(inc), len(full))
	}
	last := len(inc) - 1
	if full[last] <= 0 {
		t.Fatal("no merge traffic recorded")
	}
	if inc[last] >= full[last] {
		t.Fatalf("incremental maintenance shipped %.2f MB, full re-decomposition %.2f MB — no amortization",
			inc[last], full[last])
	}
	// Cumulative series must be non-decreasing.
	for i := 1; i < len(inc); i++ {
		if inc[i] < inc[i-1] || full[i] < full[i-1] {
			t.Fatalf("cumulative traffic decreased at point %d", i)
		}
	}
}

// Partition: the experiment itself asserts byte-identical results vs the
// unpartitioned baseline at every count (it errors otherwise, which
// quickFig turns into a failure); the shape checks here pin the scaling
// story — the per-stream share falls ~1/N while the aggregate stays
// near-flat, and classic scatter does not drift with the count.
func TestPartitionShape(t *testing.T) {
	fig := quickFig(t, Partition)
	agg := fig.seriesY("A&R aggregate device time")
	share := fig.seriesY("A&R per-stream share")
	classic := fig.seriesY("Classic aggregate")
	if len(agg) != len(PartitionSweep) || len(share) != len(agg) || len(classic) != len(agg) {
		t.Fatalf("series lengths %d/%d/%d, want %d", len(agg), len(share), len(classic), len(PartitionSweep))
	}
	for i, n := range PartitionSweep {
		// The share is exactly aggregate/N: the ideal makespan on N streams.
		if want := agg[i] / float64(n); share[i] < want*0.999 || share[i] > want*1.001 {
			t.Errorf("parts=%d: per-stream share %.3f, want %.3f", n, share[i], want)
		}
		// Scan work is conserved: the aggregate stays within 2x of the
		// single-partition scatter in both directions.
		if agg[i] > agg[0]*2 || agg[i] < agg[0]/2 {
			t.Errorf("parts=%d: aggregate %.3fms drifted past 2x of parts=1 (%.3fms)", n, agg[i], agg[0])
		}
		// Classic scatter scans every tuple exactly once regardless of the
		// split; only per-partition launch overhead may move it.
		if classic[i] > classic[0]*1.1 || classic[i] < classic[0]*0.9 {
			t.Errorf("parts=%d: classic %.3fms drifted from parts=1 (%.3fms)", n, classic[i], classic[0])
		}
	}
	last := len(PartitionSweep) - 1
	if share[last] > share[0]/float64(PartitionSweep[last])*1.5 {
		t.Errorf("per-stream share at %d partitions (%.3fms) is not ~1/N of one stream (%.3fms)",
			PartitionSweep[last], share[last], share[0])
	}
	if fig.bar("A&R 8 partition(s)") == nil {
		t.Fatal("missing per-count device-split bar")
	}
}
