package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/ar"
	"repro/internal/bat"
	"repro/internal/bulk"
	"repro/internal/bwd"
	"repro/internal/device"
	"repro/internal/par"
)

// The Fig 8 microbenchmarks: "100 million unique, randomly shuffled
// integers (value range 0 to 100 million)" (§VI-B). We execute opts.MicroN
// rows drawn from the full paper domain and extrapolate times by
// PaperMicroN / MicroN.

// SelectivitySweep is the qualifying-tuple percentage axis of Figs
// 8a/8b/8d/8e.
var SelectivitySweep = []float64{1, 2, 5, 10, 20, 40, 60, 80, 100}

// microData builds the benchmark column: MicroN values uniform over the
// paper's 100 M domain (a dense unique permutation at full scale).
func microData(opts Options) *bat.BAT {
	rng := rand.New(rand.NewSource(opts.Seed))
	vals := make([]int64, opts.MicroN)
	for i := range vals {
		vals[i] = int64(rng.Intn(MicroDomain))
	}
	return bat.NewDense(vals, bat.Width32)
}

func microScale(opts Options) float64 {
	return float64(PaperMicroN) / float64(opts.MicroN)
}

// selectionExperiment runs one selection micro-point on the scaled system
// and returns (approximate-only seconds, approximate+refine seconds) —
// already paper-scale because the system's rates are scaled down instead
// of the times being multiplied up (fixed launch/transfer costs stay
// fixed; see device.ScaledSystem).
func selectionExperiment(sys *device.System, col *bwd.Column, lo, hi int64, threads int) (approx, total float64) {
	m := device.NewMeter(sys)
	cands := ar.SelectApprox(m, col, col.Relax(lo, hi))
	approxOnly := m.Total().Seconds()
	cands.Ship(m)
	ar.SelectRefinePar(par.P{Threads: threads}, m, col, lo, hi, cands)
	return approxOnly, m.Total().Seconds()
}

// Fig8a reproduces "Selection on GPU Resident Data": all value bits live
// on the device, selectivity sweeps 1–100 %.
func Fig8a(opts Options) (*Figure, error) {
	return fig8Selection(opts, "fig8a", "Selection on GPU Resident Data", 32)
}

// Fig8b reproduces "Selection on Distributed Data (8 bit on CPU)".
func Fig8b(opts Options) (*Figure, error) {
	return fig8Selection(opts, "fig8b", "Selection on Distributed Data (8 bit on CPU)", 0)
}

// fig8Selection runs the selectivity sweep; approxBits 0 means "total-8"
// (8 residual bits on the CPU).
func fig8Selection(opts Options, id, title string, approxBits uint) (*Figure, error) {
	scale := microScale(opts)
	sys := device.ScaledSystem(scale)
	b := microData(opts)
	bits := approxBits
	if bits == 0 {
		probe, err := bwd.Decompose(b, 32, nil)
		if err != nil {
			return nil, err
		}
		bits = probe.Dec.TotalBits - 8
	}
	col, err := bwd.Decompose(b, bits, sys)
	if err != nil {
		return nil, err
	}
	defer col.Release()

	monet := Series{Label: "MonetDB"}
	ar2 := Series{Label: "Approximate+Refine"}
	apx := Series{Label: "Approximate"}
	stream := Series{Label: "Stream (Hypothetical)"}
	streamT := device.NewMeter(sys).StreamHypothetical(int64(opts.MicroN) * 4).Seconds()

	for _, sel := range SelectivitySweep {
		hi := int64(float64(MicroDomain)*sel/100) - 1
		m := device.NewMeter(sys)
		bulk.SelectRangePar(par.P{Threads: opts.Threads}, m, b, 0, hi)
		monetT := m.Total().Seconds()

		a, t := selectionExperiment(sys, col, 0, hi, opts.Threads)
		monet.X = append(monet.X, sel)
		monet.Y = append(monet.Y, ms(monetT))
		ar2.X = append(ar2.X, sel)
		ar2.Y = append(ar2.Y, ms(t))
		apx.X = append(apx.X, sel)
		apx.Y = append(apx.Y, ms(a))
		stream.X = append(stream.X, sel)
		stream.Y = append(stream.Y, ms(streamT))
	}
	return &Figure{
		ID: id, Title: title,
		XLabel: "Qualifying Tuples in %", YLabel: "Time in ms",
		Series: []Series{monet, ar2, apx, stream},
		Notes: []string{
			fmt.Sprintf("executed %d rows, extrapolated x%.0f to the paper's 100M", opts.MicroN, scale),
			fmt.Sprintf("decomposition: %v", col.Dec),
		},
	}, nil
}

// Fig8c reproduces "Selection, varying Number of GPU-resident bits":
// selectivities 5 %, .05 % and .01 % swept over 10–26 device-resident bits
// (the 100 M domain uses 27 bits; the paper's axis extends to 30 where the
// curve is flat).
func Fig8c(opts Options) (*Figure, error) {
	scale := microScale(opts)
	sys := device.ScaledSystem(scale)
	b := microData(opts)
	selectivities := []float64{5, 0.05, 0.01}
	bitSweep := []float64{10, 12, 14, 16, 18, 20, 22, 24, 26}

	var series []Series
	for _, sel := range selectivities {
		series = append(series,
			Series{Label: fmt.Sprintf("Approx+Refine (%v%%)", sel)},
			Series{Label: fmt.Sprintf("Approximate (%v%%)", sel)})
	}
	stream := Series{Label: "Stream (Hypothetical)"}
	streamT := device.NewMeter(sys).StreamHypothetical(int64(opts.MicroN) * 4).Seconds()

	for _, bits := range bitSweep {
		col, err := bwd.Decompose(b, uint(bits), sys)
		if err != nil {
			return nil, err
		}
		for si, sel := range selectivities {
			hi := int64(float64(MicroDomain)*sel/100) - 1
			a, t := selectionExperiment(sys, col, 0, hi, opts.Threads)
			series[2*si].X = append(series[2*si].X, bits)
			series[2*si].Y = append(series[2*si].Y, ms(t))
			series[2*si+1].X = append(series[2*si+1].X, bits)
			series[2*si+1].Y = append(series[2*si+1].Y, ms(a))
		}
		stream.X = append(stream.X, bits)
		stream.Y = append(stream.Y, ms(streamT))
		col.Release()
	}
	return &Figure{
		ID: "fig8c", Title: "Selection, varying Number of GPU-resident bits",
		XLabel: "Number of GPU-resident bits", YLabel: "Time in ms",
		Series: append(series, stream),
		Notes: []string{
			fmt.Sprintf("executed %d rows, extrapolated x%.0f", opts.MicroN, scale),
			"fewer device bits -> coarser buckets -> more false positives to refine;",
			"higher selectivities tolerate fewer bits (the paper's observation)",
		},
	}, nil
}

// Fig8d reproduces "Projection/Join on GPU Resident Data".
func Fig8d(opts Options) (*Figure, error) {
	return fig8Projection(opts, "fig8d", "Projection/Join on GPU Resident Data", 32)
}

// Fig8e reproduces "Projection/Join on Distributed Data (8 bit CPU)".
func Fig8e(opts Options) (*Figure, error) {
	return fig8Projection(opts, "fig8e", "Projection/Join on Distributed Data (8 bit CPU)", 0)
}

func fig8Projection(opts Options, id, title string, approxBits uint) (*Figure, error) {
	scale := microScale(opts)
	sys := device.ScaledSystem(scale)
	selCol := microData(opts)
	prjCol := func() *bat.BAT {
		rng := rand.New(rand.NewSource(opts.Seed + 1))
		vals := make([]int64, opts.MicroN)
		for i := range vals {
			vals[i] = int64(rng.Intn(MicroDomain))
		}
		return bat.NewDense(vals, bat.Width32)
	}()
	bits := approxBits
	if bits == 0 {
		probe, err := bwd.Decompose(prjCol, 32, nil)
		if err != nil {
			return nil, err
		}
		bits = probe.Dec.TotalBits - 8
	}
	dsel, err := bwd.Decompose(selCol, 32, sys)
	if err != nil {
		return nil, err
	}
	defer dsel.Release()
	dprj, err := bwd.Decompose(prjCol, bits, sys)
	if err != nil {
		return nil, err
	}
	defer dprj.Release()

	monet := Series{Label: "MonetDB"}
	ar2 := Series{Label: "Approximate+Refine"}
	apx := Series{Label: "Approximate"}
	stream := Series{Label: "Stream (Hypothetical)"}
	streamT := device.NewMeter(sys).StreamHypothetical(int64(opts.MicroN) * 4).Seconds()

	for _, sel := range SelectivitySweep {
		hi := int64(float64(MicroDomain)*sel/100) - 1
		// Candidate list prepared outside the timed region: the experiment
		// measures the projection, like the paper's per-operator breakdown.
		cands := ar.SelectApprox(nil, dsel, dsel.Relax(0, hi))
		cands.Ship(nil)
		refined, _ := ar.SelectRefinePar(par.P{Threads: opts.Threads}, nil, dsel, 0, hi, cands)
		ids := bulk.SelectRangePar(par.P{Threads: opts.Threads}, nil, selCol, 0, hi)

		m := device.NewMeter(sys)
		bulk.FetchPar(par.P{Threads: opts.Threads}, m, prjCol, ids)
		monetT := m.Total().Seconds()

		m = device.NewMeter(sys)
		proj := ar.ProjectApprox(m, dprj, refined)
		approxT := m.Total().Seconds()
		proj.Ship(m)
		if _, err := ar.ProjectRefinePar(par.P{Threads: opts.Threads}, m, proj, refined); err != nil {
			return nil, err
		}
		totalT := m.Total().Seconds()

		monet.X = append(monet.X, sel)
		monet.Y = append(monet.Y, ms(monetT))
		ar2.X = append(ar2.X, sel)
		ar2.Y = append(ar2.Y, ms(totalT))
		apx.X = append(apx.X, sel)
		apx.Y = append(apx.Y, ms(approxT))
		stream.X = append(stream.X, sel)
		stream.Y = append(stream.Y, ms(streamT))
	}
	return &Figure{
		ID: id, Title: title,
		XLabel: "Qualifying Tuples in %", YLabel: "Time in ms",
		Series: []Series{monet, ar2, apx, stream},
		Notes: []string{
			fmt.Sprintf("executed %d rows, extrapolated x%.0f", opts.MicroN, scale),
			fmt.Sprintf("projected column decomposition: %v", dprj.Dec),
		},
	}, nil
}

// Fig8f reproduces "Grouping on GPU Resident Data": group counts 10–1000.
func Fig8f(opts Options) (*Figure, error) {
	scale := microScale(opts)
	sys := device.ScaledSystem(scale)
	groupCounts := []float64{10, 30, 100, 300, 1000}

	monet := Series{Label: "MonetDB"}
	ar2 := Series{Label: "Approximate+Refine"}
	apx := Series{Label: "Approximate"}
	stream := Series{Label: "Stream (Hypothetical)"}
	streamT := device.NewMeter(sys).StreamHypothetical(int64(opts.MicroN) * 4).Seconds()

	for _, g := range groupCounts {
		rng := rand.New(rand.NewSource(opts.Seed + int64(g)))
		keys := make([]int64, opts.MicroN)
		for i := range keys {
			keys[i] = int64(rng.Intn(int(g)))
		}
		b := bat.NewDense(keys, bat.Width32)
		col, err := bwd.Decompose(b, 32, sys)
		if err != nil {
			return nil, err
		}

		m := device.NewMeter(sys)
		bulk.GroupByPar(par.P{Threads: opts.Threads}, m, keys)
		monetT := m.Total().Seconds()

		m = device.NewMeter(sys)
		cands := ar.SelectApprox(m, col, bwd.ApproxRange{Full: true})
		grouping := ar.GroupApprox(m, col, cands)
		approxT := m.Total().Seconds()
		grouping.Ship(m)
		cands.Ship(m)
		if _, err := ar.GroupRefinePar(par.P{Threads: opts.Threads}, m, grouping, cands); err != nil {
			return nil, err
		}
		totalT := m.Total().Seconds()

		monet.X = append(monet.X, g)
		monet.Y = append(monet.Y, ms(monetT))
		ar2.X = append(ar2.X, g)
		ar2.Y = append(ar2.Y, ms(totalT))
		apx.X = append(apx.X, g)
		apx.Y = append(apx.Y, ms(approxT))
		stream.X = append(stream.X, g)
		stream.Y = append(stream.Y, ms(streamT))
		col.Release()
	}
	return &Figure{
		ID: "fig8f", Title: "Grouping on GPU Resident Data",
		XLabel: "Number of Groups", YLabel: "Time in ms",
		Series: []Series{monet, ar2, apx, stream},
		Notes: []string{
			fmt.Sprintf("executed %d rows, extrapolated x%.0f", opts.MicroN, scale),
			"A&R grouping improves with group count: fewer write conflicts on the grouping table (§VI-B)",
		},
	}, nil
}
