// Package experiments regenerates every table and figure of the paper's
// evaluation section (§VI): the Fig 8 microbenchmarks, the Table I /
// Fig 9 spatial range-query benchmark, the Fig 10 TPC-H queries and the
// Fig 11 throughput experiment, plus the Fig 1 background chart.
//
// Experiments execute the real operator implementations at a configurable
// (reduced) data scale and report the simulated device times extrapolated
// linearly to the paper's data scale — every charged cost is linear in the
// input size, so the extrapolation preserves the shapes exactly (see
// DESIGN.md §1). Absolute values depend on the calibration constants in
// package device; the paper's reference numbers are attached to each
// figure for comparison in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"strings"
)

// Options controls experiment data scales.
type Options struct {
	// MicroN is the microbenchmark row count actually executed
	// (extrapolated to the paper's 100 M).
	MicroN int
	// SpatialN is the executed GPS fix count (paper: 250 M).
	SpatialN int
	// TPCHSF is the executed TPC-H scale factor (paper: SF-10).
	TPCHSF float64
	// Threads used for CPU-side work.
	Threads int
	Seed    int64
}

// Paper-scale constants.
const (
	PaperMicroN   = 100_000_000
	PaperSpatialN = 250_000_000
	PaperTPCHSF   = 10.0
	// MicroDomain is the microbenchmark value domain (0 .. 100 M), kept at
	// paper scale regardless of the executed row count so that bit-width
	// effects (Fig 8c) are undistorted.
	MicroDomain = 100_000_000
)

// Defaults returns options sized for interactive runs (a few seconds per
// figure).
func Defaults() Options {
	return Options{MicroN: 4_000_000, SpatialN: 2_000_000, TPCHSF: 0.02, Threads: 1, Seed: 7}
}

// Quick returns options sized for the test suite.
func Quick() Options {
	return Options{MicroN: 400_000, SpatialN: 200_000, TPCHSF: 0.002, Threads: 1, Seed: 7}
}

// Series is one labelled line of a figure.
type Series struct {
	Label string    `json:"label"`
	X     []float64 `json:"x"`
	Y     []float64 `json:"y"` // milliseconds unless the figure says otherwise
}

// Bar is one labelled bar with the per-device breakdown of Figs 9/10.
type Bar struct {
	Label string  `json:"label"`
	Total float64 `json:"total_seconds"`
	GPU   float64 `json:"gpu_seconds"`
	CPU   float64 `json:"cpu_seconds"`
	PCI   float64 `json:"pci_seconds"`
}

// Figure is a reproduced chart: line series (Fig 8, 11), bars (Fig 9, 10),
// or host memory-discipline rows (the alloc experiment). The JSON names
// are the stable -json report schema BENCH files are compared across.
type Figure struct {
	ID     string       `json:"id"`
	Title  string       `json:"title"`
	XLabel string       `json:"x_label,omitempty"`
	YLabel string       `json:"y_label,omitempty"`
	Series []Series     `json:"series,omitempty"`
	Bars   []Bar        `json:"bars,omitempty"`
	Alloc  []AllocStats `json:"alloc,omitempty"`
	Notes  []string     `json:"notes,omitempty"`
}

// Render formats the figure as text tables for terminal output.
func (f *Figure) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", f.ID, f.Title)
	if len(f.Series) > 0 {
		fmt.Fprintf(&sb, "%-28s", f.XLabel+" \\ "+f.YLabel)
		for _, s := range f.Series {
			fmt.Fprintf(&sb, "%22s", s.Label)
		}
		sb.WriteByte('\n')
		for i := range f.Series[0].X {
			fmt.Fprintf(&sb, "%-28.6g", f.Series[0].X[i])
			for _, s := range f.Series {
				if i < len(s.Y) {
					fmt.Fprintf(&sb, "%22.3f", s.Y[i])
				} else {
					fmt.Fprintf(&sb, "%22s", "-")
				}
			}
			sb.WriteByte('\n')
		}
	}
	if len(f.Bars) > 0 {
		fmt.Fprintf(&sb, "%-28s %12s %12s %12s %12s\n", "configuration", "total s", "GPU s", "CPU s", "PCI s")
		for _, b := range f.Bars {
			fmt.Fprintf(&sb, "%-28s %12.3f %12.3f %12.3f %12.3f\n", b.Label, b.Total, b.GPU, b.CPU, b.PCI)
		}
	}
	if len(f.Alloc) > 0 {
		fmt.Fprintf(&sb, "%-28s %12s %12s %14s %12s %8s\n", "configuration", "wall ms/op", "allocs/op", "bytes/op", "gc pause ms", "gc runs")
		for _, a := range f.Alloc {
			fmt.Fprintf(&sb, "%-28s %12.3f %12.1f %14.0f %12.3f %8d\n",
				a.Label, a.WallSecondsPerOp*1e3, a.AllocsPerOp, a.BytesPerOp, a.GCPauseSeconds*1e3, a.GCCycles)
		}
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// seriesY finds a series by label (test helper).
func (f *Figure) seriesY(label string) []float64 {
	for _, s := range f.Series {
		if s.Label == label {
			return s.Y
		}
	}
	return nil
}

// bar finds a bar by label (test helper).
func (f *Figure) bar(label string) *Bar {
	for i := range f.Bars {
		if f.Bars[i].Label == label {
			return &f.Bars[i]
		}
	}
	return nil
}

func ms(seconds float64) float64 { return seconds * 1000 }
