package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/bat"
	"repro/internal/device"
	"repro/internal/engine"
	"repro/internal/plan"
)

// Ingest measures the write path of the mutable column store: a stream of
// INSERT batches lands in a table's delta segment while A&R range counts
// keep running, and periodic merges compact the delta into the bit-sliced
// base segment. The figure charts the cumulative PCI-E traffic the merges
// actually charge (incremental maintenance: with unchanged decomposition
// parameters only the merged rows' approximation codes ship) against the
// traffic a full re-decomposition after every merge would cost — the
// paper's "waste not" economics applied to writes. A&R query latencies
// before and after compaction are attached as notes, along with the final
// amortization ratio.
func Ingest(opts Options) (*Figure, error) {
	n := opts.MicroN
	if n <= 0 {
		n = Quick().MicroN
	}
	const domain = 1 << 16
	sys := device.PaperSystem()
	c := plan.NewCatalog(sys)
	rng := rand.New(rand.NewSource(opts.Seed))
	tbl := plan.NewTable("stream")
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(rng.Intn(domain))
	}
	// Pin the domain ends so in-range inserts keep the decomposition
	// parameters stable across merges (the incremental case).
	vals[0], vals[1] = 0, domain-1
	if err := tbl.AddColumn("v", bat.NewDense(vals, bat.Width32)); err != nil {
		return nil, err
	}
	if err := c.AddTable(tbl); err != nil {
		return nil, err
	}
	if _, err := c.Decompose("stream", "v", 10); err != nil {
		return nil, err
	}

	eng := engine.New(c, engine.Options{MergeThreshold: -1, Threads: opts.Threads})
	sess := eng.SessionFor(engine.ModeAR)
	defer sess.Close()
	ctx := context.Background()
	q := plan.Query{
		Table:   "stream",
		Filters: []plan.Filter{{Col: "v", Lo: 64, Hi: domain / 8}},
		Aggs:    []plan.AggSpec{{Name: "n", Func: plan.Count}},
	}
	queryMS := func() (float64, error) {
		res, err := sess.QueryPlan(ctx, q)
		if err != nil {
			return 0, err
		}
		return res.Meter.Total().Seconds() * 1e3, nil
	}
	baseMS, err := queryMS()
	if err != nil {
		return nil, err
	}

	const batches = 10
	batch := n / 20
	fig := &Figure{
		ID:     "ingest",
		Title:  "Incremental BWD maintenance under an insert stream",
		XLabel: "rows ingested",
		YLabel: "cumulative PCI-E MB",
		Series: []Series{
			{Label: "incremental merge"},
			{Label: "full re-decomposition"},
		},
	}
	var peakDeltaMS float64
	rows := make([][]int64, batch)
	for b := 0; b < batches; b++ {
		for i := range rows {
			rows[i] = []int64{int64(rng.Intn(domain))}
		}
		if _, err := c.InsertRows(nil, "stream", rows); err != nil {
			return nil, err
		}
		if ms, err := queryMS(); err != nil {
			return nil, err
		} else if ms > peakDeltaMS {
			peakDeltaMS = ms
		}
		// Merge every other batch, like a threshold of two batches.
		if b%2 == 1 {
			m := device.NewMeter(sys)
			if _, err := c.MergeTable(m, "stream", false); err != nil {
				return nil, err
			}
		}
		st, err := c.Table("stream")
		if err != nil {
			return nil, err
		}
		stats := st.Stats()
		x := float64((b + 1) * batch)
		fig.Series[0].X = append(fig.Series[0].X, x)
		fig.Series[0].Y = append(fig.Series[0].Y, float64(stats.MergeShippedBytes)/1e6)
		fig.Series[1].X = append(fig.Series[1].X, x)
		fig.Series[1].Y = append(fig.Series[1].Y, float64(stats.MergeFullBytes)/1e6)
	}
	finalMS, err := queryMS()
	if err != nil {
		return nil, err
	}
	st, _ := c.Table("stream")
	stats := st.Stats()
	frac := 0.0
	if stats.MergeFullBytes > 0 {
		frac = float64(stats.MergeShippedBytes) / float64(stats.MergeFullBytes)
	}
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("A&R range count: %.3f ms on the clean base, %.3f ms at peak delta, %.3f ms after the final merge", baseMS, peakDeltaMS, finalMS),
		fmt.Sprintf("merges shipped %.2f MB over the bus; full re-decomposition would ship %.2f MB (amortization %.1f%%)",
			float64(stats.MergeShippedBytes)/1e6, float64(stats.MergeFullBytes)/1e6, 100*frac),
		"no paper reference: the write path extends the reproduction beyond the paper's read-only setting",
	)
	return fig, nil
}
