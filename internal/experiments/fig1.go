package experiments

// Fig1 tabulates the background chart of the introduction: the flash-
// memory capacity/write-bandwidth trade-off quoted from Grupp et al., "The
// Bleak Future of NAND Flash Memory" (USENIX FAST 2012). It is not an
// experiment of the evaluation section — the paper reproduces it to
// motivate the capacity/performance conflict ("there is a conflict between
// data Volume and Velocity") — so the series below are digitized
// approximations of the cited projections, included for completeness.
func Fig1() *Figure {
	return &Figure{
		ID:     "fig1",
		Title:  "Flash Memory Capacity/Bandwidth (Grupp et al., FAST 2012)",
		XLabel: "Capacity (GB)",
		YLabel: "Write Bandwidth (MB/s)",
		Series: []Series{
			{Label: "SLC-1", X: []float64{16, 32, 64, 128}, Y: []float64{3600, 3200, 2800, 2400}},
			{Label: "MLC-1", X: []float64{64, 128, 256, 512}, Y: []float64{2200, 1900, 1600, 1300}},
			{Label: "MLC-2", X: []float64{256, 512, 1024, 2048}, Y: []float64{1200, 1000, 800, 650}},
			{Label: "TLC-3", X: []float64{1024, 2048, 4096, 16384}, Y: []float64{500, 400, 300, 200}},
		},
		Notes: []string{
			"background figure (intro §I), not part of the evaluation;",
			"values digitized from the cited FAST'12 projections: denser cells and larger",
			"devices write slower — the same capacity/velocity conflict BWD exploits on GPUs",
		},
	}
}
