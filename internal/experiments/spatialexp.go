package experiments

import (
	"context"
	"fmt"

	"repro/internal/device"
	"repro/internal/engine"
	"repro/internal/fixed"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/spatial"
)

// Table1 reproduces Table I: the spatial range-query benchmark definition
// plus the data-volume observation of §VI-C2 (prefix compression achieves
// roughly a 25 % reduction because the coordinates span wide ranges).
type Table1Result struct {
	Schema        string
	Decomposition string
	Query         string
	Rows          int
	OriginalBytes int64
	GPUBytes      int64
	CPUBytes      int64
	Compression   float64 // fraction of data volume saved
	CountResult   int64
}

// Table1 builds the spatial benchmark and reports its setup facts.
func Table1(opts Options) (*Table1Result, error) {
	sys := device.ScaledSystem(float64(PaperSpatialN) / float64(opts.SpatialN))
	c := plan.NewCatalog(sys)
	d := spatial.Generate(opts.SpatialN, opts.Seed)
	if err := d.Load(c); err != nil {
		return nil, err
	}
	if err := d.Decompose(c); err != nil {
		return nil, err
	}
	arSess := engine.New(c, engine.Options{Threads: opts.Threads}).SessionFor(engine.ModeAR)
	defer arSess.Close()
	res, err := arSess.QueryPlan(context.Background(), spatial.RangeCountQuery())
	if err != nil {
		return nil, err
	}
	lon, _ := c.Decomposition("trips", "lon")
	lat, _ := c.Decomposition("trips", "lat")
	orig := lon.OriginalBytes() + lat.OriginalBytes()
	gpu := lon.GPUBytes() + lat.GPUBytes()
	cpu := lon.CPUBytes() + lat.CPUBytes()
	return &Table1Result{
		Schema:        "create table trips (tripid int, lon decimal(8,5), lat decimal(7,5), time int)",
		Decomposition: "select bwdecompose(lon,24), bwdecompose(lat,24) from trips",
		Query: fmt.Sprintf("select count(lon) from trips where lon between %s and %s and lat between %s and %s",
			fixed.Format(spatial.QueryLonLo, fixed.Scale5), fixed.Format(spatial.QueryLonHi, fixed.Scale5),
			fixed.Format(spatial.QueryLatLo, fixed.Scale5), fixed.Format(spatial.QueryLatHi, fixed.Scale5)),
		Rows:          d.Len(),
		OriginalBytes: orig,
		GPUBytes:      gpu,
		CPUBytes:      cpu,
		Compression:   1 - float64(gpu+cpu)/float64(orig),
		CountResult:   res.Rows[0].Vals[0],
	}, nil
}

// Render formats the Table I reproduction.
func (t *Table1Result) Render() string {
	return fmt.Sprintf(`== table1: The Spatial Range Query Benchmark ==
Schema:        %s
Decomposition: %s
Query:         %s
rows executed: %d (paper: ~250M)
data volume:   original %d B -> GPU %d B + CPU %d B (%.0f%% reduction; paper: 25%%)
query result:  count = %d
`, t.Schema, t.Decomposition, t.Query, t.Rows, t.OriginalBytes, t.GPUBytes, t.CPUBytes,
		t.Compression*100, t.CountResult)
}

// Fig9 reproduces "Performance of the Spatial Range Queries": A&R vs
// classic MonetDB vs the hypothetical streaming baseline, with the
// GPU/CPU/PCI breakdown. Paper reference: 0.134 s / 0.529 s / 0.453 s.
func Fig9(opts Options) (*Figure, error) {
	scale := float64(PaperSpatialN) / float64(opts.SpatialN)
	sys := device.ScaledSystem(scale)
	c := plan.NewCatalog(sys)
	d := spatial.Generate(opts.SpatialN, opts.Seed)
	if err := d.Load(c); err != nil {
		return nil, err
	}
	if err := d.Decompose(c); err != nil {
		return nil, err
	}
	q := spatial.RangeCountQuery()

	eng := engine.New(c, engine.Options{Threads: opts.Threads})
	ctx := context.Background()
	arSess := eng.SessionFor(engine.ModeAR)
	defer arSess.Close()
	arRes, err := arSess.QueryPlan(ctx, q)
	if err != nil {
		return nil, err
	}
	clSess := eng.SessionFor(engine.ModeClassic)
	defer clSess.Close()
	clRes, err := clSess.QueryPlan(ctx, q)
	if err != nil {
		return nil, err
	}
	stream := device.NewMeter(sys).StreamHypothetical(arRes.InputBytes).Seconds()

	fig := &Figure{
		ID: "fig9", Title: "Performance of the Spatial Range Queries",
		YLabel: "Time in s",
		Bars: []Bar{
			meterBar("A & R", arRes.Meter),
			meterBar("MonetDB", clRes.Meter),
			{Label: "Stream (Hypothetical)", Total: stream, PCI: stream},
		},
		Notes: []string{
			fmt.Sprintf("executed %d fixes, extrapolated x%.0f to the paper's 250M", opts.SpatialN, scale),
			fmt.Sprintf("exact count %d; candidates %d -> refined %d", arRes.Rows[0].Vals[0], arRes.Candidates, arRes.Refined),
			"paper reference: A&R 0.134s / MonetDB 0.529s / Stream 0.453s (A&R ~3.4x over CPU)",
		},
	}
	return fig, nil
}

// TraceSpatial executes the spatial range-count query once with
// per-operator tracing on and returns the trace — the stage breakdown
// (est-vs-actual rows, wall time, simulated meter split per operator) that
// arbench embeds in its machine-readable JSON report.
func TraceSpatial(opts Options) (*obs.Trace, error) {
	sys := device.ScaledSystem(float64(PaperSpatialN) / float64(opts.SpatialN))
	c := plan.NewCatalog(sys)
	d := spatial.Generate(opts.SpatialN, opts.Seed)
	if err := d.Load(c); err != nil {
		return nil, err
	}
	if err := d.Decompose(c); err != nil {
		return nil, err
	}
	res, err := c.ExecAR(spatial.RangeCountQuery(), plan.ExecOpts{Threads: opts.Threads, Trace: true})
	if err != nil {
		return nil, err
	}
	res.Trace.Query = "spatial range count (Table I benchmark query)"
	return res.Trace, nil
}

func meterBar(label string, m *device.Meter) Bar {
	return Bar{
		Label: label,
		Total: m.Total().Seconds(),
		GPU:   m.GPU.Seconds(),
		CPU:   m.CPU.Seconds(),
		PCI:   m.PCI.Seconds(),
	}
}
