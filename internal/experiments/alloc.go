package experiments

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/ar"
	"repro/internal/bat"
	"repro/internal/bwd"
	"repro/internal/mem"
	"repro/internal/par"
)

// The alloc experiment measures the host-side cost this repo actually
// pays — real wall-clock, heap allocations and GC pauses of the A&R scan
// hot path — rather than simulated device time. Three configurations:
//
//   - baseline: the pre-arena kernel shape — per-element bitpack.Get
//     decode and fresh slices on every morsel (what every query allocated
//     before the word-parallel/zero-allocation rework);
//   - pooled: the current kernels with the morsel arena on;
//   - unpooled: the current kernels with the arena disabled (word-parallel
//     decode still on), isolating the allocator's share of the win.
//
// Each runs at 1 thread and at NumCPU. The headline number is the
// baseline/pooled wall-clock ratio at NumCPU — the end-to-end speedup of
// the rework on the micro A&R scan.

// AllocStats is the memory-discipline record of one configuration.
type AllocStats struct {
	Label            string  `json:"label"`
	Pooled           bool    `json:"pooled"`
	Threads          int     `json:"threads"`
	Reps             int     `json:"reps"`
	WallSecondsPerOp float64 `json:"wall_seconds_per_op"`
	AllocsPerOp      float64 `json:"allocs_per_op"`
	BytesPerOp       float64 `json:"bytes_per_op"`
	GCPauseSeconds   float64 `json:"gc_pause_seconds"`
	GCCycles         uint32  `json:"gc_cycles"`
}

// measureAlloc runs fn reps times and returns wall/alloc/GC figures from
// runtime.MemStats deltas.
func measureAlloc(label string, pooled bool, threads, reps int, fn func()) AllocStats {
	fn() // warm caches, pools and the page heap outside the window
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for i := 0; i < reps; i++ {
		fn()
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&m1)
	return AllocStats{
		Label:            label,
		Pooled:           pooled,
		Threads:          threads,
		Reps:             reps,
		WallSecondsPerOp: wall.Seconds() / float64(reps),
		AllocsPerOp:      float64(m1.Mallocs-m0.Mallocs) / float64(reps),
		BytesPerOp:       float64(m1.TotalAlloc-m0.TotalAlloc) / float64(reps),
		GCPauseSeconds:   time.Duration(m1.PauseTotalNs - m0.PauseTotalNs).Seconds(),
		GCCycles:         m1.NumGC - m0.NumGC,
	}
}

// baselineARScan is the pre-rework kernel shape, kept as the measurement
// baseline: per-element packed decode and a fresh slice per morsel, for
// both the approximate scan and the refinement.
func baselineARScan(p par.P, col *bwd.Column, lo, hi int64) int {
	r := col.Relax(lo, hi)
	ids := par.GatherOrdered(p, col.Len(), func(mlo, mhi int) []bat.OID {
		part := make([]bat.OID, 0, mhi-mlo)
		for i := mlo; i < mhi; i++ {
			if r.Contains(col.Approx.Get(i)) {
				part = append(part, bat.OID(i))
			}
		}
		return part
	})
	exact := par.GatherOrdered(p, len(ids), func(mlo, mhi int) []int64 {
		part := make([]int64, 0, mhi-mlo)
		for _, id := range ids[mlo:mhi] {
			if v := col.Reconstruct(int(id)); v >= lo && v <= hi {
				part = append(part, v)
			}
		}
		return part
	})
	return len(exact)
}

// arScan is the current hot path: word-parallel approximate select,
// region-compacted refinement, every buffer returned to the arena.
func arScan(p par.P, col *bwd.Column, lo, hi int64) int {
	cands := ar.SelectApprox(nil, col, col.Relax(lo, hi))
	refined, vals := ar.SelectRefinePar(p, nil, col, lo, hi, cands)
	n := len(vals)
	mem.I64.Put(vals)
	refined.Release()
	cands.Release()
	return n
}

// Alloc measures the host memory discipline of the A&R scan (see the
// package comment above). The figure carries one AllocStats row per
// configuration; the notes carry the headline speedups.
func Alloc(opts Options) (*Figure, error) {
	col, err := bwd.Decompose(microData(opts), 14, nil)
	if err != nil {
		return nil, err
	}
	lo, hi := int64(0), int64(MicroDomain/10) // ~10 % qualify
	ncpu := runtime.NumCPU()
	reps := 12_000_000/opts.MicroN + 2

	fig := &Figure{
		ID:     "alloc",
		Title:  fmt.Sprintf("host memory discipline, A&R scan of %d rows", opts.MicroN),
		XLabel: "configuration",
		YLabel: "wall s/op",
	}
	threadSet := []int{1}
	if ncpu > 1 {
		threadSet = append(threadSet, ncpu)
	}
	var base1, baseN, pool1, poolN AllocStats
	for _, threads := range threadSet {
		p := par.P{Threads: threads}
		b := measureAlloc(fmt.Sprintf("baseline get/alloc t=%d", threads), false, threads, reps,
			func() { baselineARScan(p, col, lo, hi) })
		u := func() AllocStats {
			prev := mem.SetPooling(false)
			defer mem.SetPooling(prev)
			return measureAlloc(fmt.Sprintf("word-parallel unpooled t=%d", threads), false, threads, reps,
				func() { arScan(p, col, lo, hi) })
		}()
		o := measureAlloc(fmt.Sprintf("word-parallel pooled t=%d", threads), true, threads, reps,
			func() { arScan(p, col, lo, hi) })
		fig.Alloc = append(fig.Alloc, b, u, o)
		if threads == 1 {
			base1, pool1 = b, o
		}
		if threads == ncpu {
			baseN, poolN = b, o
		}
	}
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("speedup (baseline/pooled) at 1 thread: %.2fx", base1.WallSecondsPerOp/pool1.WallSecondsPerOp))
	if ncpu > 1 {
		fig.Notes = append(fig.Notes,
			fmt.Sprintf("speedup (baseline/pooled) at %d threads (NumCPU): %.2fx", ncpu, baseN.WallSecondsPerOp/poolN.WallSecondsPerOp))
	}
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("allocs/op pooled at %d threads: %.1f (baseline %.0f)", ncpu, poolN.AllocsPerOp, baseN.AllocsPerOp))
	return fig, nil
}
