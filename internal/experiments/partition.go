package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/bat"
	"repro/internal/device"
	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/shard"
	"repro/internal/store"
)

// PartitionSweep is the partition-count axis of the partition experiment.
var PartitionSweep = []int{1, 2, 4, 8}

// Partition measures scatter-gather scaling over hash partitions (ROADMAP
// item 4, extending Fig 11 past a single device's memory wall): the same
// grouped A&R aggregation runs against one logical table declared with
// 1–8 hash partitions, each partition an independent store.Table with its
// own device stream under the engine scheduler's per-device ledger.
//
// Two effects are visible. The aggregate simulated device time stays
// within a few tens of percent across counts — the scan work is
// conserved, while per-partition kernel launches, per-partition relaxed
// candidate boundaries and the host-side gather (partition scans never
// pre-group on the device) shift the split, which is exactly why results
// stay byte-identical but meters are only bit-identical at a fixed count.
// The per-stream share (aggregate / N) falls ~1/N: with one admission-
// controlled stream per partition device the scatter legs run
// concurrently, so the share is the ideal makespan on N devices — the
// way past one device's transfer budget. Every configuration is checked
// byte-identical against the unpartitioned baseline in both modes.
func Partition(opts Options) (*Figure, error) {
	scale := float64(PaperMicroN) / float64(opts.MicroN)
	sys := device.ScaledSystem(scale)

	defs := []store.ColumnDef{
		{Name: "v", Scale: 1, Width: bat.Width32},
		{Name: "g", Scale: 1, Width: bat.Width32},
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	rows := make([][]int64, opts.MicroN)
	for i := range rows {
		rows[i] = []int64{int64(rng.Intn(MicroDomain)), int64(rng.Intn(100))}
	}
	q := plan.Query{
		Table:   "fact",
		Filters: []plan.Filter{{Col: "v", Lo: 0, Hi: int64(MicroDomain)/5 - 1}},
		GroupBy: []string{"g"},
		Aggs: []plan.AggSpec{
			{Name: "n", Func: plan.Count},
			{Name: "s", Func: plan.Sum, Expr: plan.Col("v")},
		},
	}

	// build loads the same logical table with n hash partitions (0 =
	// unpartitioned baseline), fully decomposed and merged.
	build := func(n int) (*plan.Catalog, error) {
		c := plan.NewCatalog(sys)
		var err error
		if n == 0 {
			_, err = c.CreateTable("fact", defs)
		} else {
			_, err = c.CreatePartitionedTable("fact", defs, shard.Spec{Kind: shard.Hash, Col: "v", N: n})
		}
		if err != nil {
			return nil, err
		}
		if _, err := c.InsertRows(nil, "fact", rows); err != nil {
			return nil, err
		}
		for col, bits := range map[string]uint{"v": 16, "g": 7} {
			if _, err := c.Decompose("fact", col, bits); err != nil {
				return nil, err
			}
		}
		if _, err := c.MergeTable(nil, "fact", false); err != nil {
			return nil, err
		}
		return c, nil
	}

	// run executes q through an engine session forced to mode, returning
	// the result rows and the gathered meter.
	run := func(c *plan.Catalog, mode engine.Mode, want engine.Route) ([]plan.Row, *device.Meter, error) {
		eng := engine.New(c, engine.Options{})
		defer eng.Close()
		sess := eng.SessionFor(mode)
		defer sess.Close()
		res, err := sess.QueryPlan(context.Background(), q)
		if err != nil {
			return nil, nil, err
		}
		if res.Route != want {
			return nil, nil, fmt.Errorf("partition: query routed to %v, want %v", res.Route, want)
		}
		return res.Rows, res.Meter, nil
	}

	base, err := build(0)
	if err != nil {
		return nil, err
	}
	baseRows, baseAR, err := run(base, engine.ModeAR, engine.RouteAR)
	if err != nil {
		return nil, err
	}
	_, baseCl, err := run(base, engine.ModeClassic, engine.RouteClassic)
	if err != nil {
		return nil, err
	}

	arAgg := Series{Label: "A&R aggregate device time"}
	arShare := Series{Label: "A&R per-stream share"}
	clAgg := Series{Label: "Classic aggregate"}
	var bars []Bar
	for _, n := range PartitionSweep {
		c, err := build(n)
		if err != nil {
			return nil, err
		}
		arRows, arM, err := run(c, engine.ModeAR, engine.RouteAR)
		if err != nil {
			return nil, err
		}
		if !plan.EqualResults(arRows, baseRows) {
			return nil, fmt.Errorf("partition: A&R over %d partitions differs from the unpartitioned baseline", n)
		}
		clRows, clM, err := run(c, engine.ModeClassic, engine.RouteClassic)
		if err != nil {
			return nil, err
		}
		if !plan.EqualResults(clRows, baseRows) {
			return nil, fmt.Errorf("partition: classic over %d partitions differs from the unpartitioned baseline", n)
		}
		arT := arM.Total().Seconds()
		arAgg.X = append(arAgg.X, float64(n))
		arAgg.Y = append(arAgg.Y, ms(arT))
		arShare.X = append(arShare.X, float64(n))
		arShare.Y = append(arShare.Y, ms(arT/float64(n)))
		clAgg.X = append(clAgg.X, float64(n))
		clAgg.Y = append(clAgg.Y, ms(clM.Total().Seconds()))
		bars = append(bars, Bar{
			Label: fmt.Sprintf("A&R %d partition(s)", n),
			Total: arT,
			GPU:   arM.GPU.Seconds(),
			CPU:   arM.CPU.Seconds(),
			PCI:   arM.PCI.Seconds(),
		})
	}

	return &Figure{
		ID: "partition", Title: "Scatter-Gather over Hash Partitions",
		XLabel: "partitions", YLabel: "Time in ms",
		Series: []Series{arAgg, arShare, clAgg},
		Bars:   bars,
		Notes: []string{
			fmt.Sprintf("executed %d rows, system scaled x%.0f to the paper's 100M", opts.MicroN, scale),
			fmt.Sprintf("unpartitioned baseline: A&R %.3fms, classic %.3fms", ms(baseAR.Total().Seconds()), ms(baseCl.Total().Seconds())),
			"the scatter path groups on the host where all partition partials meet, a fixed",
			"premium over the direct pipeline; the per-stream share is the ideal makespan on",
			"N independent device streams (one admission-controlled stream per partition",
			"under the scheduler's per-device ledger)",
			"every point verified byte-identical to the unpartitioned baseline in both modes",
		},
	}, nil
}
