package experiments

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/plan"
	"repro/internal/spatial"
)

// Fig11 reproduces "A Gap in the Memory Wall" (§VI-E): two parallel query
// streams, one running classic plans on the CPU with 1–32 threads, one
// running A&R plans on the GPU. The CPU stream saturates at the memory
// wall; the GPU stream, working out of its own memory, stacks almost
// additively on top.
//
// Throughput is derived from the simulated single-stream query times and
// the device bandwidth-saturation law: t concurrent classic queries see
// min(t·perThread, aggregate) memory bandwidth; the combined experiment
// additionally deducts the bandwidth the A&R stream's refinement phase and
// DMA transfers draw from the host memory system.
func Fig11(opts Options) (*Figure, error) {
	scale := float64(PaperSpatialN) / float64(opts.SpatialN)
	sys := device.ScaledSystem(scale)
	c := plan.NewCatalog(sys)
	d := spatial.Generate(opts.SpatialN, opts.Seed)
	if err := d.Load(c); err != nil {
		return nil, err
	}
	if err := d.Decompose(c); err != nil {
		return nil, err
	}
	q := spatial.RangeCountQuery()

	clRes, err := c.ExecClassic(q, plan.ExecOpts{Threads: 1})
	if err != nil {
		return nil, err
	}
	arRes, err := c.ExecAR(q, plan.ExecOpts{Threads: 1})
	if err != nil {
		return nil, err
	}

	t1 := clRes.Meter.Total().Seconds() // classic single-thread query time
	arTotal := arRes.Meter.Total().Seconds()
	arQPS := 1 / arTotal

	// Classic stream at t threads: per-query time stretches by the
	// bandwidth stolen once the memory wall is hit.
	perThread := sys.CPU.PerThreadBW
	classicQPS := func(t int, hostBWAvailable float64) float64 {
		bwPer := hostBWAvailable / float64(t)
		if bwPer > perThread {
			bwPer = perThread
		}
		return float64(t) / (t1 * perThread / bwPer)
	}

	threadSweep := []int{1, 2, 4, 8, 16, 32}
	classic := Series{Label: "Classic CPU (parallel streams)"}
	for _, t := range threadSweep {
		classic.X = append(classic.X, float64(t))
		classic.Y = append(classic.Y, classicQPS(t, sys.CPU.AggregateBW))
	}

	// Host-bandwidth draw of one saturated A&R stream: its CPU refinement
	// runs (CPU fraction of the query) of the time at per-thread speed,
	// and DMA transfers read/write host memory during the PCI fraction.
	cpuFrac := arRes.Meter.CPU.Seconds() / arTotal
	pciFrac := arRes.Meter.PCI.Seconds() / arTotal
	hostDraw := cpuFrac*perThread + pciFrac*sys.Bus.BW
	cpuWithAR := classicQPS(32, sys.CPU.AggregateBW-hostDraw)

	return &Figure{
		ID: "fig11", Title: "A Gap in the Memory Wall",
		XLabel: "CPU threads", YLabel: "Queries per s",
		Series: []Series{classic},
		Bars: []Bar{
			{Label: "CPU only (32 threads)", Total: classicQPS(32, sys.CPU.AggregateBW)},
			{Label: "A&R only", Total: arQPS},
			{Label: "CPU parallel w/ A&R", Total: cpuWithAR},
			{Label: "A&R parallel w/ CPU", Total: arQPS},
			{Label: "Cumulative", Total: cpuWithAR + arQPS},
		},
		Notes: []string{
			"bars report throughput in queries/s (not seconds)",
			fmt.Sprintf("classic single-thread query: %.3fs; A&R query: %.3fs (CPU fraction %.0f%%, PCI %.0f%%)",
				t1, arTotal, cpuFrac*100, pciFrac*100),
			"paper reference: 2.3/4.3/6.7/10.9/15.9/16.2 q/s for 1..32 threads; A&R only 13.4;",
			"combined 12.6 + 13.4 = 26.0 q/s cumulative — GPU adds throughput almost additively",
		},
	}, nil
}
