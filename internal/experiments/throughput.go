package experiments

import (
	"context"
	"fmt"

	"repro/internal/device"
	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/spatial"
)

// Fig11 reproduces "A Gap in the Memory Wall" (§VI-E): two parallel query
// streams, one running classic plans on the CPU with 1–32 threads, one
// running A&R plans on the GPU. The CPU stream saturates at the memory
// wall; the GPU stream, working out of its own memory, stacks almost
// additively on top.
//
// The harness is expressed through the engine's device-aware scheduler —
// the same admission and contention layer cmd/arserve serves traffic with —
// so the figure is reproducible from the running service: the single-stream
// query times come from scheduler-routed executions, and the sweep applies
// the scheduler's own memory-wall law (engine.ClassicStretch): t concurrent
// classic queries see min(t·perThread, aggregate) memory bandwidth, and the
// combined experiment additionally deducts the host bandwidth the A&R
// stream's refinement phase and DMA transfers draw (engine.HostDraw).
func Fig11(opts Options) (*Figure, error) {
	scale := float64(PaperSpatialN) / float64(opts.SpatialN)
	sys := device.ScaledSystem(scale)
	c := plan.NewCatalog(sys)
	d := spatial.Generate(opts.SpatialN, opts.Seed)
	if err := d.Load(c); err != nil {
		return nil, err
	}
	if err := d.Decompose(c); err != nil {
		return nil, err
	}
	q := spatial.RangeCountQuery()
	eng := engine.New(c, engine.Options{})
	ctx := context.Background()

	clSess := eng.SessionFor(engine.ModeClassic)
	defer clSess.Close()
	clRes, err := clSess.QueryPlan(ctx, q)
	if err != nil {
		return nil, err
	}
	if clRes.Route != engine.RouteClassic {
		return nil, fmt.Errorf("fig11: classic query routed to %v", clRes.Route)
	}
	arSess := eng.SessionFor(engine.ModeAR)
	defer arSess.Close()
	arRes, err := arSess.QueryPlan(ctx, q)
	if err != nil {
		return nil, err
	}
	if arRes.Route != engine.RouteAR {
		return nil, fmt.Errorf("fig11: A&R query routed to %v", arRes.Route)
	}

	t1 := clRes.Meter.Total().Seconds() // classic single-thread query time
	arTotal := arRes.Meter.Total().Seconds()
	arQPS := 1 / arTotal

	// Classic stream at t threads: per-query time stretches by the
	// scheduler's memory-wall law once the wall is hit.
	classicQPS := func(t int, arDraw float64) float64 {
		return float64(t) / (t1 * engine.ClassicStretch(sys, t, arDraw))
	}

	threadSweep := []int{1, 2, 4, 8, 16, 32}
	classic := Series{Label: "Classic CPU (parallel streams)"}
	for _, t := range threadSweep {
		classic.X = append(classic.X, float64(t))
		classic.Y = append(classic.Y, classicQPS(t, 0))
	}

	// Host-bandwidth draw of one saturated A&R stream, as the scheduler
	// charges it to concurrently running classic streams.
	hostDraw := engine.HostDraw(sys, arRes.Meter)
	cpuFrac := arRes.Meter.CPU.Seconds() / arTotal
	pciFrac := arRes.Meter.PCI.Seconds() / arTotal
	cpuWithAR := classicQPS(32, hostDraw)

	return &Figure{
		ID: "fig11", Title: "A Gap in the Memory Wall",
		XLabel: "CPU threads", YLabel: "Queries per s",
		Series: []Series{classic},
		Bars: []Bar{
			{Label: "CPU only (32 threads)", Total: classicQPS(32, 0)},
			{Label: "A&R only", Total: arQPS},
			{Label: "CPU parallel w/ A&R", Total: cpuWithAR},
			{Label: "A&R parallel w/ CPU", Total: arQPS},
			{Label: "Cumulative", Total: cpuWithAR + arQPS},
		},
		Notes: []string{
			"bars report throughput in queries/s (not seconds)",
			fmt.Sprintf("classic single-thread query: %.3fs; A&R query: %.3fs (CPU fraction %.0f%%, PCI %.0f%%)",
				t1, arTotal, cpuFrac*100, pciFrac*100),
			"paper reference: 2.3/4.3/6.7/10.9/15.9/16.2 q/s for 1..32 threads; A&R only 13.4;",
			"combined 12.6 + 13.4 = 26.0 q/s cumulative — GPU adds throughput almost additively",
		},
	}, nil
}
