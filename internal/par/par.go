// Package par provides the data-parallel execution substrate that stands in
// for the paper's massively parallel OpenCL kernels.
//
// Kernels in the paper are parallelized "over the number of processed
// tuples" (§V-C). We model this with chunked worker pools: the input range
// is split into fixed-size chunks that workers process concurrently. Two
// gather disciplines are offered:
//
//   - ordered: chunk outputs are concatenated in chunk order, preserving the
//     input permutation (the CPU-side, order-preserving discipline);
//   - unordered: chunk outputs are concatenated in a deterministic but
//     non-monotonic chunk permutation, modelling the fact that "a massively
//     parallelized selection can only maintain the input order at additional
//     costs" (§IV-A item 3). Determinism keeps tests reproducible while the
//     output is demonstrably not input-ordered, which is exactly what forces
//     the translucent join's general path.
//
// The P descriptor carries a kernel's degree of parallelism through the
// executors (billed threads vs real workers vs morsel size vs context; see
// DESIGN.md §7), and the block primitives (Blocks, RunBlocks) support the
// partial-state aggregation pattern whose merge order is fixed by the
// input partition — never by goroutine scheduling — so results are
// byte-stable across worker counts.
package par

import (
	"context"
	"runtime"
	"sync"

	"repro/internal/mem"
)

// DefaultChunk is the default number of tuples per parallel chunk. It is
// large enough to amortize scheduling and small enough to expose
// parallelism on the simulated device's lane count.
const DefaultChunk = 64 << 10

// Workers returns the effective worker count: w if positive, else
// GOMAXPROCS.
func Workers(w int) int {
	if w > 0 {
		return w
	}
	return runtime.GOMAXPROCS(0)
}

// For runs fn over [0,n) split into chunks of the given size (DefaultChunk
// if chunk <= 0) using the given number of workers. fn must be safe for
// concurrent invocation on disjoint ranges.
func For(n, chunk, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if chunk <= 0 {
		chunk = DefaultChunk
	}
	nchunks := (n + chunk - 1) / chunk
	w := Workers(workers)
	if w > nchunks {
		w = nchunks
	}
	if w <= 1 {
		for lo := 0; lo < n; lo += chunk {
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			fn(lo, hi)
		}
		return
	}
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(w)
	for i := 0; i < w; i++ {
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				c := next
				next++
				mu.Unlock()
				if c >= nchunks {
					return
				}
				lo := c * chunk
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				fn(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// ForScratch is For with a per-worker morsel scratch: each worker takes
// one mem.Scratch for the duration of its claim loop and hands it to fn,
// reset, for every morsel it processes — so decode buffers and selection
// vectors are reused across morsels instead of allocated per morsel.
// Buffers carved from the scratch must not escape fn.
func ForScratch(n, chunk, workers int, fn func(s *mem.Scratch, lo, hi int)) {
	if n <= 0 {
		return
	}
	if chunk <= 0 {
		chunk = DefaultChunk
	}
	nchunks := (n + chunk - 1) / chunk
	w := Workers(workers)
	if w > nchunks {
		w = nchunks
	}
	if w <= 1 {
		s := mem.GetScratch()
		for lo := 0; lo < n; lo += chunk {
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			s.Reset()
			fn(s, lo, hi)
		}
		mem.PutScratch(s)
		return
	}
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(w)
	for i := 0; i < w; i++ {
		go func() {
			defer wg.Done()
			s := mem.GetScratch()
			defer mem.PutScratch(s)
			for {
				mu.Lock()
				c := next
				next++
				mu.Unlock()
				if c >= nchunks {
					return
				}
				lo := c * chunk
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				s.Reset()
				fn(s, lo, hi)
			}
		}()
	}
	wg.Wait()
}

// Gather runs fn over [0,n) in chunks and concatenates the per-chunk
// results. If ordered is true the concatenation follows chunk order (the
// output permutation equals the input permutation); otherwise chunks are
// concatenated in the deterministic shuffled order of Permute, modelling a
// GPU kernel whose thread blocks complete out of order.
func Gather[T any](n, chunk, workers int, ordered bool, fn func(lo, hi int) []T) []T {
	if n <= 0 {
		return nil
	}
	if chunk <= 0 {
		chunk = DefaultChunk
	}
	nchunks := (n + chunk - 1) / chunk
	parts := make([][]T, nchunks)
	For(n, chunk, workers, func(lo, hi int) {
		parts[lo/chunk] = fn(lo, hi)
	})
	order := make([]int, nchunks)
	for i := range order {
		order[i] = i
	}
	if !ordered {
		order = Permute(nchunks)
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]T, 0, total)
	for _, c := range order {
		out = append(out, parts[c]...)
	}
	return out
}

// Permute returns a deterministic permutation of [0,n) that is not the
// identity for n > 2. It visits indices with a stride that is coprime to n,
// which scatters chunk completion order the way an unsynchronized device
// would.
func Permute(n int) []int {
	return PermuteInto(make([]int, n))
}

// PermuteInto fills p with the deterministic Permute permutation of
// [0,len(p)) and returns it — the allocation-free form for callers that
// draw p from the arena.
func PermuteInto(p []int) []int {
	n := len(p)
	if n <= 0 {
		return p
	}
	stride := 1
	if n > 2 {
		// Pick a stride coprime to n, starting from a golden-ratio-ish
		// fraction so neighbouring chunks land far apart.
		stride = n*5/8 | 1
		for gcd(stride, n) != 1 {
			stride += 2
			if stride >= n {
				stride = 3
			}
		}
		if stride == 1 && n > 2 {
			stride = n - 1 // reversal as a last resort
		}
	}
	at := 0
	for i := 0; i < n; i++ {
		p[i] = at
		at = (at + stride) % n
	}
	return p
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// P describes the degree of parallelism of one CPU kernel invocation. It
// separates the two numbers that the rest of the system must never confuse:
//
//   - Threads is the *simulated* thread count charged to the device meter.
//     It determines the simulated figures and nothing else, so experiments
//     produce identical numbers no matter how a kernel actually executes.
//   - Workers is the *real* goroutine budget used for morsel-parallel
//     execution. The engine's scheduler allocates it from the shared CPU
//     pool per admitted query; it never appears in a meter charge.
//
// Ctx is polled at morsel granularity: a cancelled context stops workers
// from claiming further morsels, bounding cancellation latency by one
// morsel instead of one full operator pass. A kernel interrupted this way
// returns incomplete data — executors discard it at their next cooperative
// checkpoint (plan.Stage), so partial results are never served.
type P struct {
	Threads int             // billed thread count; <= 0 means 1
	Workers int             // real goroutines; <= 0 means Threads
	Chunk   int             // morsel rows; <= 0 means DefaultChunk
	Ctx     context.Context // polled per morsel; nil means never cancelled
}

// Bill returns a P that executes serially while charging the meter for the
// given simulated thread count — the behaviour every pre-morsel call site
// had, kept for the compatibility wrappers in packages bulk and ar.
func Bill(threads int) P { return P{Threads: threads, Workers: 1} }

// NThreads returns the billable thread count (at least 1).
func (p P) NThreads() int {
	if p.Threads > 0 {
		return p.Threads
	}
	return 1
}

// NWorkers returns the real worker count (defaults to NThreads).
func (p P) NWorkers() int {
	if p.Workers > 0 {
		return p.Workers
	}
	return p.NThreads()
}

// ChunkSize returns the morsel size in rows.
func (p P) ChunkSize() int {
	if p.Chunk > 0 {
		return p.Chunk
	}
	return DefaultChunk
}

// cancelled reports whether the kernel's context is done.
func (p P) cancelled() bool {
	if p.Ctx == nil {
		return false
	}
	select {
	case <-p.Ctx.Done():
		return true
	default:
		return false
	}
}

// Cancelled returns the context error once the P's context is done, nil
// otherwise. Kernels that run their own serial morsel loop (avoiding a
// closure on the single-worker path) check it at morsel boundaries,
// mirroring For's per-claim check.
func (p P) Cancelled() error {
	if p.cancelled() {
		return p.Ctx.Err()
	}
	return nil
}

// For runs fn over [0,n) split into morsels that workers claim dynamically.
// fn must be safe for concurrent invocation on disjoint ranges. The context
// is checked before every morsel claim; on cancellation the remaining
// morsels are skipped and For returns the context error (the caller must
// discard whatever fn produced so far).
func (p P) For(n int, fn func(lo, hi int)) error {
	if n <= 0 {
		return nil
	}
	chunk := p.ChunkSize()
	nchunks := (n + chunk - 1) / chunk
	w := p.NWorkers()
	if w > nchunks {
		w = nchunks
	}
	if w <= 1 {
		for lo := 0; lo < n; lo += chunk {
			if p.cancelled() {
				return p.Ctx.Err()
			}
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			fn(lo, hi)
		}
		return nil
	}
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(w)
	for i := 0; i < w; i++ {
		go func() {
			defer wg.Done()
			for {
				if p.cancelled() {
					return
				}
				mu.Lock()
				c := next
				next++
				mu.Unlock()
				if c >= nchunks {
					return
				}
				lo := c * chunk
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				fn(lo, hi)
			}
		}()
	}
	wg.Wait()
	if p.cancelled() {
		return p.Ctx.Err()
	}
	return nil
}

// ForScratch is P.For with a per-worker morsel scratch, the CPU-side twin
// of the package-level ForScratch: each worker reuses one mem.Scratch
// (reset per morsel) across every morsel it claims. Buffers carved from
// the scratch must not escape fn.
func (p P) ForScratch(n int, fn func(s *mem.Scratch, lo, hi int)) error {
	if n <= 0 {
		return nil
	}
	chunk := p.ChunkSize()
	nchunks := (n + chunk - 1) / chunk
	w := p.NWorkers()
	if w > nchunks {
		w = nchunks
	}
	if w <= 1 {
		s := mem.GetScratch()
		defer mem.PutScratch(s)
		for lo := 0; lo < n; lo += chunk {
			if p.cancelled() {
				return p.Ctx.Err()
			}
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			s.Reset()
			fn(s, lo, hi)
		}
		return nil
	}
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(w)
	for i := 0; i < w; i++ {
		go func() {
			defer wg.Done()
			s := mem.GetScratch()
			defer mem.PutScratch(s)
			for {
				if p.cancelled() {
					return
				}
				mu.Lock()
				c := next
				next++
				mu.Unlock()
				if c >= nchunks {
					return
				}
				lo := c * chunk
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				s.Reset()
				fn(s, lo, hi)
			}
		}()
	}
	wg.Wait()
	if p.cancelled() {
		return p.Ctx.Err()
	}
	return nil
}

// ForCounted runs fn over [0,n) in morsels, recording how many outputs
// each morsel produced. fn writes its survivors into the caller's
// overallocated output buffers at the morsel's own offset (positions
// [lo, lo+count)) — regions are disjoint, so no synchronization — and
// returns the count. Compact then left-packs the regions in morsel order.
// counts is drawn from the arena; the caller releases it with
// mem.Ints.Put. On cancellation counts is released and nil is returned
// with the context error.
func ForCounted(p P, n int, fn func(s *mem.Scratch, ci, lo, hi int) int) (counts []int, total int, err error) {
	chunk := p.ChunkSize()
	nchunks := (n + chunk - 1) / chunk
	counts = mem.Ints.GetN(nchunks)
	clear(counts)
	err = p.ForScratch(n, func(s *mem.Scratch, lo, hi int) {
		ci := lo / chunk
		counts[ci] = fn(s, ci, lo, hi)
	})
	if err != nil {
		mem.Ints.Put(counts)
		return nil, 0, err
	}
	for _, c := range counts {
		total += c
	}
	return counts, total, nil
}

// Compact left-packs the per-morsel regions a ForCounted pass produced:
// morsel ci's count survivors sit at [ci*chunk, ci*chunk+counts[ci]) of
// buf and are moved to the running offset. Because the target offset never
// exceeds the source offset, the move is in-place and allocation-free.
// Returns buf truncated to the packed length.
func Compact[T any](counts []int, chunk int, buf []T) []T {
	off := 0
	for ci, cnt := range counts {
		lo := ci * chunk
		if off != lo {
			copy(buf[off:off+cnt], buf[lo:lo+cnt])
		}
		off += cnt
	}
	return buf[:off]
}

// ForEach runs fn once per index in [0,n), with indices claimed
// dynamically by NWorkers goroutines and the context polled between
// claims. It is the item-granular For used to distribute pre-computed
// morsel lists (e.g. store segment morsels) over workers.
func ForEach(p P, n int, fn func(i int)) error {
	item := p
	item.Chunk = 1
	return item.For(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// GatherOrdered runs fn over [0,n) in morsels and concatenates the
// per-morsel results in morsel order, preserving the input permutation —
// the order-preserving CPU discipline (§IV-A item 2). The output is
// identical for every worker count.
func GatherOrdered[T any](p P, n int, fn func(lo, hi int) []T) []T {
	if n <= 0 {
		return nil
	}
	chunk := p.ChunkSize()
	nchunks := (n + chunk - 1) / chunk
	parts := make([][]T, nchunks)
	p.For(n, func(lo, hi int) {
		parts[lo/chunk] = fn(lo, hi)
	})
	total := 0
	for _, part := range parts {
		total += len(part)
	}
	out := make([]T, 0, total)
	for _, part := range parts {
		out = append(out, part...)
	}
	return out
}

// Block is one contiguous sub-range of an input, processed by a single
// worker so that per-worker partial states (groupings, aggregates) can be
// merged deterministically in block order.
type Block struct{ Lo, Hi int }

// Blocks statically partitions [0,n) into at most NWorkers contiguous
// blocks of near-equal size. The partition depends only on n and the worker
// count, and merging per-block partial states left to right reproduces the
// exact serial result: a key's global first appearance is its first block's
// first appearance.
func (p P) Blocks(n int) []Block {
	nb := p.NBlocks(n)
	if nb == 0 {
		return nil
	}
	out := make([]Block, nb)
	for b := range out {
		out[b].Lo, out[b].Hi = p.BlockRange(n, b)
	}
	return out
}

// NBlocks returns how many blocks Blocks(n) partitions [0,n) into,
// without materializing them — the allocation-free form aggregate kernels
// size their flat partial-state buffers with.
func (p P) NBlocks(n int) int {
	if n <= 0 {
		return 0
	}
	w := p.NWorkers()
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	size := (n + w - 1) / w
	return (n + size - 1) / size
}

// BlockRange returns the bounds of block b of the Blocks(n) partition.
func (p P) BlockRange(n, b int) (lo, hi int) {
	w := p.NWorkers()
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	size := (n + w - 1) / w
	lo = b * size
	hi = lo + size
	if hi > n {
		hi = n
	}
	return lo, hi
}

// RunBlocks executes fn(b, lo, hi) for morsel-sized sub-ranges of every
// block returned by Blocks(n): calls for the same block index b run
// sequentially in ascending range order on one goroutine (so per-block
// state needs no locking), distinct blocks run concurrently, and the
// context is polled between morsels. Returns the context error if the run
// was interrupted (partial block states must then be discarded).
func RunBlocks(p P, n int, fn func(b, lo, hi int)) error {
	nb := p.NBlocks(n)
	if nb == 0 {
		return nil
	}
	chunk := p.ChunkSize()
	if nb == 1 || p.NWorkers() <= 1 {
		for b := 0; b < nb; b++ {
			blo, bhi := p.BlockRange(n, b)
			for lo := blo; lo < bhi; lo += chunk {
				if p.cancelled() {
					return p.Ctx.Err()
				}
				hi := lo + chunk
				if hi > bhi {
					hi = bhi
				}
				fn(b, lo, hi)
			}
		}
		return nil
	}
	var wg sync.WaitGroup
	wg.Add(nb)
	for b := 0; b < nb; b++ {
		go func(b int) {
			defer wg.Done()
			blo, bhi := p.BlockRange(n, b)
			for lo := blo; lo < bhi; lo += chunk {
				if p.cancelled() {
					return
				}
				hi := lo + chunk
				if hi > bhi {
					hi = bhi
				}
				fn(b, lo, hi)
			}
		}(b)
	}
	wg.Wait()
	if p.cancelled() {
		return p.Ctx.Err()
	}
	return nil
}
