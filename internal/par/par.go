// Package par provides the data-parallel execution substrate that stands in
// for the paper's massively parallel OpenCL kernels.
//
// Kernels in the paper are parallelized "over the number of processed
// tuples" (§V-C). We model this with chunked worker pools: the input range
// is split into fixed-size chunks that workers process concurrently. Two
// gather disciplines are offered:
//
//   - ordered: chunk outputs are concatenated in chunk order, preserving the
//     input permutation (the CPU-side, order-preserving discipline);
//   - unordered: chunk outputs are concatenated in a deterministic but
//     non-monotonic chunk permutation, modelling the fact that "a massively
//     parallelized selection can only maintain the input order at additional
//     costs" (§IV-A item 3). Determinism keeps tests reproducible while the
//     output is demonstrably not input-ordered, which is exactly what forces
//     the translucent join's general path.
package par

import (
	"runtime"
	"sync"
)

// DefaultChunk is the default number of tuples per parallel chunk. It is
// large enough to amortize scheduling and small enough to expose
// parallelism on the simulated device's lane count.
const DefaultChunk = 64 << 10

// Workers returns the effective worker count: w if positive, else
// GOMAXPROCS.
func Workers(w int) int {
	if w > 0 {
		return w
	}
	return runtime.GOMAXPROCS(0)
}

// For runs fn over [0,n) split into chunks of the given size (DefaultChunk
// if chunk <= 0) using the given number of workers. fn must be safe for
// concurrent invocation on disjoint ranges.
func For(n, chunk, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if chunk <= 0 {
		chunk = DefaultChunk
	}
	nchunks := (n + chunk - 1) / chunk
	w := Workers(workers)
	if w > nchunks {
		w = nchunks
	}
	if w <= 1 {
		for lo := 0; lo < n; lo += chunk {
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			fn(lo, hi)
		}
		return
	}
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(w)
	for i := 0; i < w; i++ {
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				c := next
				next++
				mu.Unlock()
				if c >= nchunks {
					return
				}
				lo := c * chunk
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				fn(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// Gather runs fn over [0,n) in chunks and concatenates the per-chunk
// results. If ordered is true the concatenation follows chunk order (the
// output permutation equals the input permutation); otherwise chunks are
// concatenated in the deterministic shuffled order of Permute, modelling a
// GPU kernel whose thread blocks complete out of order.
func Gather[T any](n, chunk, workers int, ordered bool, fn func(lo, hi int) []T) []T {
	if n <= 0 {
		return nil
	}
	if chunk <= 0 {
		chunk = DefaultChunk
	}
	nchunks := (n + chunk - 1) / chunk
	parts := make([][]T, nchunks)
	For(n, chunk, workers, func(lo, hi int) {
		parts[lo/chunk] = fn(lo, hi)
	})
	order := make([]int, nchunks)
	for i := range order {
		order[i] = i
	}
	if !ordered {
		order = Permute(nchunks)
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]T, 0, total)
	for _, c := range order {
		out = append(out, parts[c]...)
	}
	return out
}

// Permute returns a deterministic permutation of [0,n) that is not the
// identity for n > 2. It visits indices with a stride that is coprime to n,
// which scatters chunk completion order the way an unsynchronized device
// would.
func Permute(n int) []int {
	p := make([]int, n)
	if n <= 0 {
		return p
	}
	stride := 1
	if n > 2 {
		// Pick a stride coprime to n, starting from a golden-ratio-ish
		// fraction so neighbouring chunks land far apart.
		stride = n*5/8 | 1
		for gcd(stride, n) != 1 {
			stride += 2
			if stride >= n {
				stride = 3
			}
		}
		if stride == 1 && n > 2 {
			stride = n - 1 // reversal as a last resort
		}
	}
	at := 0
	for i := 0; i < n; i++ {
		p[i] = at
		at = (at + stride) % n
	}
	return p
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
