package par

import (
	"context"
	"sort"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 1000, DefaultChunk + 3} {
		seen := make([]int32, n)
		For(n, 16, 8, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&seen[i], 1)
			}
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestForSingleWorkerSequential(t *testing.T) {
	var order []int
	For(10, 3, 1, func(lo, hi int) {
		order = append(order, lo)
	})
	want := []int{0, 3, 6, 9}
	if len(order) != len(want) {
		t.Fatalf("chunk starts = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("chunk starts = %v, want %v", order, want)
		}
	}
}

func TestForZeroAndNegativeN(t *testing.T) {
	called := false
	For(0, 4, 4, func(lo, hi int) { called = true })
	For(-5, 4, 4, func(lo, hi int) { called = true })
	if called {
		t.Error("fn called for empty range")
	}
}

func TestGatherOrderedPreservesOrder(t *testing.T) {
	n := 1000
	got := Gather(n, 64, 8, true, func(lo, hi int) []int {
		out := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			out = append(out, i)
		}
		return out
	})
	if len(got) != n {
		t.Fatalf("len = %d, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("ordered gather permuted output at %d: got %d", i, v)
		}
	}
}

func TestGatherUnorderedIsPermutationButNotIdentity(t *testing.T) {
	n := 1000
	got := Gather(n, 64, 8, false, func(lo, hi int) []int {
		out := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			out = append(out, i)
		}
		return out
	})
	if len(got) != n {
		t.Fatalf("len = %d, want %d", len(got), n)
	}
	identity := true
	for i, v := range got {
		if v != i {
			identity = false
			break
		}
	}
	if identity {
		t.Error("unordered gather returned identity permutation; GPU semantics not modelled")
	}
	sorted := append([]int(nil), got...)
	sort.Ints(sorted)
	for i, v := range sorted {
		if v != i {
			t.Fatalf("unordered gather is not a permutation: sorted[%d] = %d", i, v)
		}
	}
}

func TestGatherUnorderedDeterministic(t *testing.T) {
	run := func() []int {
		return Gather(500, 32, 8, false, func(lo, hi int) []int {
			out := make([]int, 0, hi-lo)
			for i := lo; i < hi; i++ {
				out = append(out, i)
			}
			return out
		})
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("unordered gather not deterministic at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestPermuteIsPermutation(t *testing.T) {
	f := func(raw uint16) bool {
		n := int(raw%2000) + 1
		p := Permute(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPermuteNotIdentityForLargeN(t *testing.T) {
	for _, n := range []int{3, 4, 10, 100, 1024} {
		p := Permute(n)
		identity := true
		for i, v := range p {
			if v != i {
				identity = false
				break
			}
		}
		if identity {
			t.Errorf("Permute(%d) is the identity", n)
		}
	}
}

func TestWorkers(t *testing.T) {
	if Workers(4) != 4 {
		t.Errorf("Workers(4) = %d", Workers(4))
	}
	if Workers(0) < 1 {
		t.Errorf("Workers(0) = %d, want >= 1", Workers(0))
	}
	if Workers(-1) < 1 {
		t.Errorf("Workers(-1) = %d, want >= 1", Workers(-1))
	}
}

func TestParallelPBlocksPartitionExactly(t *testing.T) {
	for _, n := range []int{0, 1, 5, 64, 1000, 4097} {
		for _, w := range []int{1, 2, 3, 8, 50} {
			p := P{Workers: w}
			blocks := p.Blocks(n)
			if n == 0 {
				if len(blocks) != 0 {
					t.Fatalf("Blocks(0) = %v", blocks)
				}
				continue
			}
			if len(blocks) > w {
				t.Fatalf("n=%d w=%d: %d blocks exceed worker count", n, w, len(blocks))
			}
			at := 0
			for _, b := range blocks {
				if b.Lo != at || b.Hi <= b.Lo {
					t.Fatalf("n=%d w=%d: bad block %+v at %d", n, w, b, at)
				}
				at = b.Hi
			}
			if at != n {
				t.Fatalf("n=%d w=%d: blocks cover %d rows", n, w, at)
			}
		}
	}
}

func TestParallelForCancelsAtMorselGranularity(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	p := P{Workers: 2, Chunk: 10, Ctx: ctx}
	err := p.For(1000, func(lo, hi int) {
		if ran.Add(1) == 3 {
			cancel()
		}
	})
	if err == nil {
		t.Fatal("cancelled For returned nil error")
	}
	if got := ran.Load(); got >= 100 {
		t.Fatalf("ran %d morsels after cancellation; latency not morsel-bounded", got)
	}
}

func TestParallelGatherOrderedStableAcrossWorkers(t *testing.T) {
	n := 10_000
	run := func(workers, chunk int) []int {
		return GatherOrdered(P{Workers: workers, Chunk: chunk}, n, func(lo, hi int) []int {
			out := make([]int, 0, hi-lo)
			for i := lo; i < hi; i++ {
				if i%3 == 0 {
					out = append(out, i)
				}
			}
			return out
		})
	}
	want := run(1, 64)
	for _, workers := range []int{2, 4, 9} {
		for _, chunk := range []int{1, 63, 1024} {
			got := run(workers, chunk)
			if len(got) != len(want) {
				t.Fatalf("w=%d c=%d: len %d != %d", workers, chunk, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("w=%d c=%d: [%d] = %d, want %d", workers, chunk, i, got[i], want[i])
				}
			}
		}
	}
}

func TestParallelForEachVisitsOnce(t *testing.T) {
	n := 500
	seen := make([]int32, n)
	if err := ForEach(P{Workers: 4}, n, func(i int) { atomic.AddInt32(&seen[i], 1) }); err != nil {
		t.Fatal(err)
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

func TestParallelRunBlocksSequentialWithinBlock(t *testing.T) {
	n := 1000
	p := P{Workers: 4, Chunk: 16}
	blocks := p.Blocks(n)
	last := make([]int, len(blocks))
	for i := range last {
		last[i] = -1
	}
	if err := RunBlocks(p, n, func(b, lo, hi int) {
		if lo <= last[b] {
			t.Errorf("block %d ranges out of order: %d after %d", b, lo, last[b])
		}
		last[b] = lo
	}); err != nil {
		t.Fatal(err)
	}
	for b, blk := range blocks {
		if last[b] < 0 || last[b] >= blk.Hi {
			t.Fatalf("block %d never finished (last lo %d)", b, last[b])
		}
	}
}
