package par

import (
	"sort"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 1000, DefaultChunk + 3} {
		seen := make([]int32, n)
		For(n, 16, 8, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&seen[i], 1)
			}
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestForSingleWorkerSequential(t *testing.T) {
	var order []int
	For(10, 3, 1, func(lo, hi int) {
		order = append(order, lo)
	})
	want := []int{0, 3, 6, 9}
	if len(order) != len(want) {
		t.Fatalf("chunk starts = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("chunk starts = %v, want %v", order, want)
		}
	}
}

func TestForZeroAndNegativeN(t *testing.T) {
	called := false
	For(0, 4, 4, func(lo, hi int) { called = true })
	For(-5, 4, 4, func(lo, hi int) { called = true })
	if called {
		t.Error("fn called for empty range")
	}
}

func TestGatherOrderedPreservesOrder(t *testing.T) {
	n := 1000
	got := Gather(n, 64, 8, true, func(lo, hi int) []int {
		out := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			out = append(out, i)
		}
		return out
	})
	if len(got) != n {
		t.Fatalf("len = %d, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("ordered gather permuted output at %d: got %d", i, v)
		}
	}
}

func TestGatherUnorderedIsPermutationButNotIdentity(t *testing.T) {
	n := 1000
	got := Gather(n, 64, 8, false, func(lo, hi int) []int {
		out := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			out = append(out, i)
		}
		return out
	})
	if len(got) != n {
		t.Fatalf("len = %d, want %d", len(got), n)
	}
	identity := true
	for i, v := range got {
		if v != i {
			identity = false
			break
		}
	}
	if identity {
		t.Error("unordered gather returned identity permutation; GPU semantics not modelled")
	}
	sorted := append([]int(nil), got...)
	sort.Ints(sorted)
	for i, v := range sorted {
		if v != i {
			t.Fatalf("unordered gather is not a permutation: sorted[%d] = %d", i, v)
		}
	}
}

func TestGatherUnorderedDeterministic(t *testing.T) {
	run := func() []int {
		return Gather(500, 32, 8, false, func(lo, hi int) []int {
			out := make([]int, 0, hi-lo)
			for i := lo; i < hi; i++ {
				out = append(out, i)
			}
			return out
		})
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("unordered gather not deterministic at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestPermuteIsPermutation(t *testing.T) {
	f := func(raw uint16) bool {
		n := int(raw%2000) + 1
		p := Permute(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPermuteNotIdentityForLargeN(t *testing.T) {
	for _, n := range []int{3, 4, 10, 100, 1024} {
		p := Permute(n)
		identity := true
		for i, v := range p {
			if v != i {
				identity = false
				break
			}
		}
		if identity {
			t.Errorf("Permute(%d) is the identity", n)
		}
	}
}

func TestWorkers(t *testing.T) {
	if Workers(4) != 4 {
		t.Errorf("Workers(4) = %d", Workers(4))
	}
	if Workers(0) < 1 {
		t.Errorf("Workers(0) = %d, want >= 1", Workers(0))
	}
	if Workers(-1) < 1 {
		t.Errorf("Workers(-1) = %d, want >= 1", Workers(-1))
	}
}
