package bitpack

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMask(t *testing.T) {
	cases := []struct {
		width uint
		want  uint64
	}{
		{0, 0},
		{1, 1},
		{4, 0xF},
		{8, 0xFF},
		{32, 0xFFFFFFFF},
		{63, ^uint64(0) >> 1},
		{64, ^uint64(0)},
	}
	for _, c := range cases {
		if got := Mask(c.width); got != c.want {
			t.Errorf("Mask(%d) = %#x, want %#x", c.width, got, c.want)
		}
	}
}

func TestNewZeroed(t *testing.T) {
	a := New(13, 100)
	if a.Len() != 100 || a.Width() != 13 {
		t.Fatalf("Len/Width = %d/%d, want 100/13", a.Len(), a.Width())
	}
	for i := 0; i < a.Len(); i++ {
		if a.Get(i) != 0 {
			t.Fatalf("Get(%d) = %d, want 0", i, a.Get(i))
		}
	}
}

func TestWidthZero(t *testing.T) {
	a := New(0, 10)
	if a.Bytes() != 0 {
		t.Errorf("width-0 array occupies %d bytes, want 0", a.Bytes())
	}
	a.Set(3, 42) // must be a no-op, not a panic
	if a.Get(3) != 0 {
		t.Errorf("width-0 Get = %d, want 0", a.Get(3))
	}
	if a.Append(7) != 11 {
		t.Errorf("Append on width-0 did not grow length")
	}
}

func TestSetGetSingleWidths(t *testing.T) {
	for width := uint(1); width <= 64; width++ {
		a := New(width, 67) // odd length exercises straddling
		rng := rand.New(rand.NewSource(int64(width)))
		want := make([]uint64, a.Len())
		for i := range want {
			want[i] = rng.Uint64() & Mask(width)
			a.Set(i, want[i])
		}
		for i := range want {
			if got := a.Get(i); got != want[i] {
				t.Fatalf("width %d: Get(%d) = %#x, want %#x", width, i, got, want[i])
			}
		}
	}
}

func TestSetMasksExcessBits(t *testing.T) {
	a := New(4, 3)
	a.Set(1, 0x1234)
	if got := a.Get(1); got != 0x4 {
		t.Errorf("Get(1) = %#x, want 0x4 (masked)", got)
	}
	if got := a.Get(0); got != 0 {
		t.Errorf("Set spilled into neighbour: Get(0) = %#x", got)
	}
	if got := a.Get(2); got != 0 {
		t.Errorf("Set spilled into neighbour: Get(2) = %#x", got)
	}
}

func TestSetDoesNotClobberNeighbours(t *testing.T) {
	for width := uint(1); width <= 64; width++ {
		a := New(width, 10)
		for i := 0; i < 10; i++ {
			a.Set(i, Mask(width))
		}
		a.Set(5, 0)
		for i := 0; i < 10; i++ {
			want := Mask(width)
			if i == 5 {
				want = 0
			}
			if got := a.Get(i); got != want {
				t.Fatalf("width %d: Get(%d) = %#x, want %#x", width, i, got, want)
			}
		}
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	f := func(raw []uint64, w uint8) bool {
		width := uint(w%64) + 1
		vals := make([]uint64, len(raw))
		for i, v := range raw {
			vals[i] = v & Mask(width)
		}
		a := Pack(width, vals)
		got := a.Unpack(nil)
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAppendGrows(t *testing.T) {
	a := New(7, 0)
	for i := 0; i < 1000; i++ {
		a.Append(uint64(i) & Mask(7))
	}
	if a.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000", a.Len())
	}
	for i := 0; i < 1000; i++ {
		if got := a.Get(i); got != uint64(i)&Mask(7) {
			t.Fatalf("Get(%d) = %d, want %d", i, got, uint64(i)&Mask(7))
		}
	}
}

func TestGather(t *testing.T) {
	a := Pack(9, []uint64{10, 20, 30, 40, 50})
	ids := []uint32{4, 0, 2}
	dst := make([]uint64, len(ids))
	a.Gather(ids, dst)
	want := []uint64{50, 10, 30}
	for i := range want {
		if dst[i] != want[i] {
			t.Errorf("Gather[%d] = %d, want %d", i, dst[i], want[i])
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	a := Pack(8, []uint64{1, 2, 3})
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal to original")
	}
	b.Set(0, 99)
	if a.Get(0) != 1 {
		t.Error("mutating clone changed original")
	}
	if a.Equal(b) {
		t.Error("Equal true after divergence")
	}
}

func TestEqualWidthMismatch(t *testing.T) {
	a := Pack(8, []uint64{1})
	b := Pack(9, []uint64{1})
	if a.Equal(b) {
		t.Error("arrays of different widths reported equal")
	}
}

func TestBytes(t *testing.T) {
	a := New(13, 100) // 1300 bits -> 21 words -> 168 bytes
	if a.Bytes() != 168 {
		t.Errorf("Bytes = %d, want 168", a.Bytes())
	}
}

func TestOutOfRangePanics(t *testing.T) {
	a := New(8, 4)
	for _, idx := range []int{-1, 4, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Get(%d) did not panic", idx)
				}
			}()
			a.Get(idx)
		}()
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Set(%d) did not panic", idx)
				}
			}()
			a.Set(idx, 0)
		}()
	}
}

func TestNewPanicsOnBadArgs(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("New(65, 1) did not panic")
			}
		}()
		New(65, 1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("New(8, -1) did not panic")
			}
		}()
		New(8, -1)
	}()
}

func BenchmarkGet(b *testing.B) {
	a := New(24, 1<<16)
	for i := 0; i < a.Len(); i++ {
		a.Set(i, uint64(i))
	}
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += a.Get(i & (1<<16 - 1))
	}
	_ = sink
}

func BenchmarkPack(b *testing.B) {
	vals := make([]uint64, 1<<16)
	for i := range vals {
		vals[i] = uint64(i)
	}
	b.SetBytes(int64(len(vals) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Pack(24, vals)
	}
}
