package bitpack

import (
	"math/rand"
	"testing"
)

// The word-parallel paths (Pack's shift-carry accumulator, UnpackRange's
// streaming decode, AppendPacked's word splice) must be bit-identical with
// the per-element Get/Set reference at every width 0..64 and every
// alignment, including ranges that start and end mid-word.

func randomVals(rng *rand.Rand, width uint, n int) []uint64 {
	vals := make([]uint64, n)
	m := Mask(width)
	for i := range vals {
		vals[i] = rng.Uint64() & m
	}
	return vals
}

func TestPackMatchesSetLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for width := uint(0); width <= 64; width++ {
		n := 1 + rng.Intn(300)
		vals := randomVals(rng, width, n)
		fast := Pack(width, vals)
		ref := New(width, n)
		for i, v := range vals {
			ref.Set(i, v)
		}
		if !fast.Equal(ref) {
			t.Fatalf("width %d: Pack differs from Set loop", width)
		}
	}
}

func TestUnpackRangeMatchesGetLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for width := uint(0); width <= 64; width++ {
		n := 64 + rng.Intn(300)
		a := Pack(width, randomVals(rng, width, n))
		for trial := 0; trial < 8; trial++ {
			lo := rng.Intn(n)
			hi := lo + rng.Intn(n-lo+1)
			got := a.UnpackRange(nil, lo, hi)
			if len(got) != hi-lo {
				t.Fatalf("width %d [%d,%d): got %d values", width, lo, hi, len(got))
			}
			for j, v := range got {
				if want := a.Get(lo + j); v != want {
					t.Fatalf("width %d [%d,%d) pos %d: got %d want %d", width, lo, hi, j, v, want)
				}
			}
		}
	}
}

func TestAppendPackedMatchesAppendLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for width := uint(0); width <= 64; width++ {
		// A non-multiple-of-64 starting bit offset forces the spliced words
		// to shift; an aligned start takes the copy fast path.
		for _, pre := range []int{0, 1 + rng.Intn(97)} {
			left := randomVals(rng, width, pre)
			right := randomVals(rng, width, 1+rng.Intn(200))

			fast := Pack(width, left)
			fast.AppendPacked(Pack(width, right))

			ref := Pack(width, left)
			for _, v := range right {
				ref.Append(v)
			}
			if !fast.Equal(ref) {
				t.Fatalf("width %d pre %d: AppendPacked differs from Append loop", width, pre)
			}
		}
	}
}

func TestUnpackRangeReusesDst(t *testing.T) {
	a := Pack(7, []uint64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	buf := make([]uint64, 0, 16)
	got := a.UnpackRange(buf, 2, 9)
	if &got[0] != &buf[:1][0] {
		t.Fatal("UnpackRange allocated despite sufficient dst capacity")
	}
	if n := testing.AllocsPerRun(100, func() { a.UnpackRange(buf, 0, 10) }); n != 0 {
		t.Fatalf("UnpackRange with capacious dst allocates %.1f/op", n)
	}
}

func BenchmarkUnpackRange(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	const n = 64 << 10
	a := Pack(9, randomVals(rng, 9, n))
	dst := make([]uint64, 0, n)
	b.SetBytes(n * 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.UnpackRange(dst, 0, n)
	}
}
