// Package bitpack implements fixed-width bit-packed integer arrays.
//
// A bit-packed array stores n values of a fixed width (1..64 bits) densely
// in 64-bit words. It is the physical storage format for the GPU-resident
// approximations and the CPU-resident residuals of a bitwise decomposed
// column (see package bwd): an approximation with k-bit resolution occupies
// k/8 bytes per value instead of the full value width, which is what lets
// it fit into the small, fast device memory.
//
// Width 0 is supported and denotes an array of zeros that occupies no
// storage; it arises when a column is fully GPU resident (the residual is
// empty) or fully CPU resident (the approximation carries no bits).
package bitpack

import "fmt"

// Array is a fixed-width bit-packed integer array. The zero value is an
// empty array of width 0.
type Array struct {
	width uint
	n     int
	words []uint64
}

// New returns an Array of n zero values of the given width in bits.
// It panics if width exceeds 64 or n is negative.
func New(width uint, n int) *Array {
	if width > 64 {
		panic(fmt.Sprintf("bitpack: width %d out of range [0,64]", width))
	}
	if n < 0 {
		panic(fmt.Sprintf("bitpack: negative length %d", n))
	}
	a := &Array{width: width, n: n}
	if width > 0 {
		a.words = make([]uint64, wordsFor(width, n))
	}
	return a
}

// Pack packs vals into a new Array of the given width. Values must fit in
// width bits; excess high bits are masked off.
//
// The words are built directly with a shift-carry accumulator — one store
// per output word instead of a read-modify-write per value — so bulk
// re-decomposition (merges re-pack every merged row) runs at memory speed.
func Pack(width uint, vals []uint64) *Array {
	a := New(width, len(vals))
	if width == 0 || len(vals) == 0 {
		return a
	}
	if width == 64 {
		copy(a.words, vals)
		return a
	}
	mask := Mask(width)
	var acc uint64 // bits accumulated, low-aligned
	var fill uint  // number of valid bits in acc
	w := 0
	for _, v := range vals {
		v &= mask
		acc |= v << fill
		fill += width
		if fill >= 64 {
			a.words[w] = acc
			w++
			fill -= 64
			// Bits of v that did not fit (width-fill..width) carry over.
			acc = v >> (width - fill)
		}
	}
	if fill > 0 {
		a.words[w] = acc
	}
	return a
}

func wordsFor(width uint, n int) int {
	bits := uint64(width) * uint64(n)
	return int((bits + 63) / 64)
}

// Mask returns a bit mask with the low width bits set.
func Mask(width uint) uint64 {
	if width >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << width) - 1
}

// Len returns the number of values in the array.
func (a *Array) Len() int { return a.n }

// Width returns the width in bits of each value.
func (a *Array) Width() uint { return a.width }

// Bytes returns the physical storage footprint of the array in bytes.
// This is the quantity charged against device capacity and bandwidth.
func (a *Array) Bytes() int64 { return int64(len(a.words)) * 8 }

// Get returns the i-th value. It panics if i is out of range.
func (a *Array) Get(i int) uint64 {
	if i < 0 || i >= a.n {
		panic(fmt.Sprintf("bitpack: index %d out of range [0,%d)", i, a.n))
	}
	if a.width == 0 {
		return 0
	}
	off := uint64(i) * uint64(a.width)
	w := off >> 6
	sh := off & 63
	v := a.words[w] >> sh
	if sh+uint64(a.width) > 64 {
		v |= a.words[w+1] << (64 - sh)
	}
	return v & Mask(a.width)
}

// Set stores v at index i, masking v to the array width.
// It panics if i is out of range.
func (a *Array) Set(i int, v uint64) {
	if i < 0 || i >= a.n {
		panic(fmt.Sprintf("bitpack: index %d out of range [0,%d)", i, a.n))
	}
	if a.width == 0 {
		return
	}
	v &= Mask(a.width)
	off := uint64(i) * uint64(a.width)
	w := off >> 6
	sh := off & 63
	a.words[w] = a.words[w]&^(Mask(a.width)<<sh) | v<<sh
	if sh+uint64(a.width) > 64 {
		rem := sh + uint64(a.width) - 64
		a.words[w+1] = a.words[w+1]&^Mask(uint(rem)) | v>>(64-sh)
	}
}

// Unpack appends all values to dst and returns the extended slice.
func (a *Array) Unpack(dst []uint64) []uint64 {
	return a.UnpackRange(dst, 0, a.n)
}

// UnpackRange appends the values at positions [lo, hi) to dst and returns
// the extended slice. It decodes word-at-a-time: widths that divide 64
// (1, 2, 4, 8, 16, 32, 64) never straddle a word boundary and run as a
// branch-free shift loop per 64-bit word; other widths use a shift-carry
// loop that reads each backing word exactly once. Both replace the
// branch-and-shift-per-element Get in scan-shaped loops.
func (a *Array) UnpackRange(dst []uint64, lo, hi int) []uint64 {
	if lo < 0 || hi > a.n || lo > hi {
		panic(fmt.Sprintf("bitpack: range [%d,%d) out of bounds [0,%d]", lo, hi, a.n))
	}
	n := hi - lo
	if n == 0 {
		return dst
	}
	if cap(dst)-len(dst) < n {
		grown := make([]uint64, len(dst), len(dst)+n)
		copy(grown, dst)
		dst = grown
	}
	if a.width == 0 {
		base := len(dst)
		dst = dst[:base+n]
		clear(dst[base:])
		return dst
	}
	if a.width == 64 {
		return append(dst, a.words[lo:hi]...)
	}
	width := a.width
	mask := Mask(width)
	if 64%width == 0 {
		// Values never straddle a word: emit per-word runs.
		per := int(64 / width) // values per word
		i := lo
		// Head: finish the word lo starts in.
		if r := i % per; r != 0 {
			w := a.words[i/per]
			w >>= uint(r) * width
			for ; i < hi && i%per != 0; i++ {
				dst = append(dst, w&mask)
				w >>= width
			}
		}
		// Body: whole words.
		for ; i+per <= hi; i += per {
			w := a.words[i/per]
			for k := 0; k < per; k++ {
				dst = append(dst, w&mask)
				w >>= width
			}
		}
		// Tail.
		if i < hi {
			w := a.words[i/per]
			for ; i < hi; i++ {
				dst = append(dst, w&mask)
				w >>= width
			}
		}
		return dst
	}
	// Generic shift-carry loop: keep a bit cursor and read each backing
	// word once, carrying straddled low bits into the next value.
	off := uint64(lo) * uint64(width)
	w := int(off >> 6)
	sh := uint(off & 63)
	cur := a.words[w] >> sh
	avail := 64 - sh // valid low bits in cur
	for i := 0; i < n; i++ {
		var v uint64
		if avail >= width {
			v = cur & mask
			cur >>= width
			avail -= width
		} else {
			w++
			next := a.words[w]
			v = (cur | next<<avail) & mask
			cur = next >> (width - avail)
			avail = 64 - (width - avail)
		}
		dst = append(dst, v)
	}
	return dst
}

// Gather writes a.Get(id) for each id in ids into dst, which must be at
// least len(ids) long. It is the positional-lookup primitive behind
// invisible joins on packed columns.
func (a *Array) Gather(ids []uint32, dst []uint64) {
	_ = dst[:len(ids)]
	for i, id := range ids {
		dst[i] = a.Get(int(id))
	}
}

// Append appends v (masked to the array width) and returns the new length.
func (a *Array) Append(v uint64) int {
	i := a.n
	a.n++
	if a.width > 0 {
		if need := wordsFor(a.width, a.n); need > len(a.words) {
			a.words = append(a.words, make([]uint64, need-len(a.words))...)
		}
		a.Set(i, v)
	}
	return a.n
}

// AppendPacked appends every value of b (which must have the same width)
// at word level: when the append cursor is word-aligned the backing words
// are copied verbatim, otherwise each source word is split across two
// destination words with one shift-or pair — either way the per-element
// Set round-trip is gone. It panics on a width mismatch.
func (a *Array) AppendPacked(b *Array) int {
	if a.width != b.width {
		panic(fmt.Sprintf("bitpack: AppendPacked width mismatch %d != %d", a.width, b.width))
	}
	if b.n == 0 {
		return a.n
	}
	if a.width == 0 {
		a.n += b.n
		return a.n
	}
	oldN := a.n
	a.n += b.n
	if need := wordsFor(a.width, a.n); need > len(a.words) {
		a.words = append(a.words, make([]uint64, need-len(a.words))...)
	}
	off := uint64(oldN) * uint64(a.width)
	w := int(off >> 6)
	sh := uint(off & 63)
	srcWords := wordsFor(b.width, b.n)
	if sh == 0 {
		copy(a.words[w:], b.words[:srcWords])
		return a.n
	}
	// Clear any stale high bits of the partial word, then interleave.
	a.words[w] &= Mask(sh)
	srcRem := uint(uint64(b.width) * uint64(b.n) & 63)
	for i := 0; i < srcWords; i++ {
		v := b.words[i]
		if i == srcWords-1 && srcRem != 0 {
			v &= Mask(srcRem) // tolerate tail garbage in deserialized words
		}
		a.words[w+i] |= v << sh
		if w+i+1 < len(a.words) {
			a.words[w+i+1] = v >> (64 - sh)
		}
	}
	return a.n
}

// Words exposes the backing 64-bit words (nil for width 0). Callers must
// not mutate them; the slice is the array's live storage. It is the raw
// representation segment persistence serializes.
func (a *Array) Words() []uint64 { return a.words }

// FromWords reconstructs an array of n values of the given width over
// previously serialized backing words. The word count must match exactly
// what an array of that shape occupies; the slice is used directly.
func FromWords(width uint, n int, words []uint64) (*Array, error) {
	if width > 64 {
		return nil, fmt.Errorf("bitpack: width %d out of range [0,64]", width)
	}
	if n < 0 {
		return nil, fmt.Errorf("bitpack: negative length %d", n)
	}
	need := 0
	if width > 0 {
		need = wordsFor(width, n)
	}
	if len(words) != need {
		return nil, fmt.Errorf("bitpack: %d backing words for width %d x %d values (need %d)", len(words), width, n, need)
	}
	a := &Array{width: width, n: n}
	if need > 0 {
		a.words = words
	}
	return a, nil
}

// Clone returns a deep copy of the array.
func (a *Array) Clone() *Array {
	c := &Array{width: a.width, n: a.n}
	if a.words != nil {
		c.words = make([]uint64, len(a.words))
		copy(c.words, a.words)
	}
	return c
}

// Equal reports whether two arrays have the same width and contents. The
// comparison is word-level: all full backing words compare directly, and
// the final partial word is masked to the bits the n values actually
// occupy (so tail garbage from deserialized words cannot flip the answer).
func (a *Array) Equal(b *Array) bool {
	if a.width != b.width || a.n != b.n {
		return false
	}
	if a.width == 0 || a.n == 0 {
		return true
	}
	bits := uint64(a.width) * uint64(a.n)
	full := int(bits >> 6)
	for i := 0; i < full; i++ {
		if a.words[i] != b.words[i] {
			return false
		}
	}
	if rem := uint(bits & 63); rem != 0 {
		if (a.words[full]^b.words[full])&Mask(rem) != 0 {
			return false
		}
	}
	return true
}
