package engine

import (
	"errors"
	"fmt"
)

// ErrOverloaded is the sentinel for admission-control rejections: match it
// with errors.Is to detect overload regardless of the queue-depth detail
// the concrete *OverloadedError carries. Callers are expected to back off
// and retry, or to fall back to the classic executor.
var ErrOverloaded = errors.New("engine: A&R stream overloaded")

// OverloadedError is returned when the GPU stream's admission control
// rejects an A&R query: every stream is busy and the bounded wait queue is
// full. It carries the queue state observed at rejection time so clients
// (and protocol adapters) can surface an informed retry hint.
type OverloadedError struct {
	// Waiting is the number of queries already queued for a GPU stream
	// when this one was rejected.
	Waiting int
	// Queue is the admission queue capacity (SchedConfig.ARQueue).
	Queue int
}

func (e *OverloadedError) Error() string {
	return fmt.Sprintf("engine: A&R stream overloaded (%d waiting, queue capacity %d): retry after backoff or use the classic executor",
		e.Waiting, e.Queue)
}

// Is reports sentinel equality so errors.Is(err, ErrOverloaded) matches any
// *OverloadedError.
func (e *OverloadedError) Is(target error) bool { return target == ErrOverloaded }
