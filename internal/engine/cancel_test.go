package engine

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/plan"
	"repro/internal/sql"
)

// TestCancelMidRefinementReleasesSlot cancels a query's context the moment
// its A&R refinement phase starts: the query must return ctx.Err() from
// the next cooperative checkpoint, the GPU slot must be released, and the
// pool must remain fully drainable afterwards.
func TestCancelMidRefinementReleasesSlot(t *testing.T) {
	c := testCatalog(t)
	eng := New(c, Options{Sched: SchedConfig{GPUStreams: 1, ARQueue: 1}})
	b, err := sql.Compile(c, tripCount)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	opts := plan.ExecOpts{OnStage: func(s plan.Stage) {
		if s == plan.StageRefine {
			once.Do(cancel)
		}
	}}
	res, route, err := eng.Scheduler().Exec(ctx, b, opts, ModeAR)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got res=%v route=%v err=%v", res, route, err)
	}

	st := eng.Scheduler().Stats()
	if st.ActiveAR != 0 || st.WaitingAR != 0 {
		t.Fatalf("cancelled query left scheduler state: %+v", st)
	}
	if st.Cancelled == 0 {
		t.Fatal("cancellation not counted in stats")
	}

	// The slot was reclaimed: a fresh query must run to completion.
	res2, route2, err := eng.Scheduler().Exec(context.Background(), b, plan.ExecOpts{}, ModeAR)
	if err != nil {
		t.Fatalf("pool not drainable after cancellation: %v", err)
	}
	if route2 != RouteAR || len(res2.Rows) == 0 {
		t.Fatalf("follow-up query misrouted: route=%v rows=%v", route2, res2.Rows)
	}
}

// TestCancelMidBulkPass does the same for the classic executor: cancelling
// at the first bulk pass aborts between passes with ctx.Err() and releases
// the CPU worker slot.
func TestCancelMidBulkPass(t *testing.T) {
	c := testCatalog(t)
	eng := New(c, Options{Sched: SchedConfig{CPUWorkers: 1}})
	b, err := sql.Compile(c, tripCount)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	opts := plan.ExecOpts{OnStage: func(s plan.Stage) {
		if s == plan.StageBulk {
			once.Do(cancel)
		}
	}}
	_, _, err = eng.Scheduler().Exec(ctx, b, opts, ModeClassic)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if st := eng.Scheduler().Stats(); st.ActiveClassic != 0 {
		t.Fatalf("cancelled classic query left active count: %+v", st)
	}
	// The lone CPU worker slot must be free again.
	if _, _, err := eng.Scheduler().Exec(context.Background(), b, plan.ExecOpts{}, ModeClassic); err != nil {
		t.Fatalf("CPU pool not drainable after cancellation: %v", err)
	}
}

// TestCancelWhileQueuedVacatesAdmissionQueue blocks the single GPU stream,
// queues a second A&R query, cancels it while it waits, and checks the
// wait is abandoned promptly with ctx.Err() and the admission queue slot
// is vacated for later arrivals.
func TestCancelWhileQueuedVacatesAdmissionQueue(t *testing.T) {
	c := testCatalog(t)
	eng := New(c, Options{Sched: SchedConfig{GPUStreams: 1, ARQueue: 1}})
	sched := eng.Scheduler()
	b, err := sql.Compile(c, tripCount)
	if err != nil {
		t.Fatal(err)
	}

	// Park a query on the GPU stream until released.
	release := make(chan struct{})
	running := make(chan struct{})
	var once sync.Once
	blocked := plan.ExecOpts{OnStage: func(plan.Stage) {
		once.Do(func() { close(running) })
		<-release
	}}
	blockedDone := make(chan error, 1)
	go func() {
		_, _, err := sched.Exec(context.Background(), b, blocked, ModeAR)
		blockedDone <- err
	}()
	<-running

	// Queue a waiter, then cancel it mid-wait.
	ctx, cancel := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		_, _, err := sched.Exec(ctx, b, plan.ExecOpts{}, ModeAR)
		waiterDone <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for sched.Stats().WaitingAR == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-waiterDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("queued waiter: want context.Canceled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter did not return promptly")
	}
	if st := sched.Stats(); st.WaitingAR != 0 {
		t.Fatalf("cancelled waiter still counted as waiting: %+v", st)
	}

	// The vacated queue slot admits a new query, which runs after release.
	nextDone := make(chan error, 1)
	go func() {
		_, _, err := sched.Exec(context.Background(), b, plan.ExecOpts{}, ModeAR)
		nextDone <- err
	}()
	deadline = time.Now().Add(5 * time.Second)
	for sched.Stats().WaitingAR == 0 {
		if time.Now().After(deadline) {
			t.Fatal("queue slot not vacated: new query rejected or lost")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	if err := <-blockedDone; err != nil {
		t.Fatalf("blocked query failed: %v", err)
	}
	if err := <-nextDone; err != nil {
		t.Fatalf("post-cancel query failed: %v", err)
	}
}

// TestCancelledBeforeSubmitNeverTakesSlot: a context cancelled before Exec
// is rejected upfront with ctx.Err() and counted as cancelled.
func TestCancelledBeforeSubmitNeverTakesSlot(t *testing.T) {
	c := testCatalog(t)
	eng := New(c, Options{})
	b, err := sql.Compile(c, tripCount)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := eng.Scheduler().Exec(ctx, b, plan.ExecOpts{}, ModeAuto); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	st := eng.Scheduler().Stats()
	if st.ActiveAR != 0 || st.ActiveClassic != 0 || st.Cancelled == 0 {
		t.Fatalf("unexpected scheduler state after pre-cancelled submit: %+v", st)
	}
}

// TestSessionQueryHonorsDeadline drives cancellation through the public
// facade: a Session.Query under an already-expired deadline returns the
// context error.
func TestSessionQueryHonorsDeadline(t *testing.T) {
	c := testCatalog(t)
	eng := New(c, Options{})
	sess := eng.Session()
	defer sess.Close()
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := sess.Query(ctx, tripCount); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
}
