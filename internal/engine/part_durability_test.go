package engine

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/plan"
)

// TestEnginePartKillHelper is the subprocess body for the partitioned
// kill -9 test: it opens the engine on AR_CRASH_DIR with aggressive
// background merging (each partition merges and checkpoints on its own
// schedule) and ingests deterministic batches through the partitioned
// wrapper forever, acking each durable batch on stdout. The parent
// SIGKILLs it mid-flight. Skipped as a no-op in a normal test run.
func TestEnginePartKillHelper(t *testing.T) {
	if os.Getenv("AR_PART_CRASH_HELPER") != "1" {
		t.Skip("subprocess helper for TestEnginePartitionedKillIngest")
	}
	ctx := context.Background()
	eng, err := Open(plan.NewCatalog(device.PaperSystem()), Options{
		DataDir:        os.Getenv("AR_CRASH_DIR"),
		Fsync:          "always",
		MergeThreshold: 64,
		MergeInterval:  2 * time.Millisecond,
	})
	if err != nil {
		fmt.Printf("helper: %v\n", err)
		return
	}
	eng.StartMaintenance(ctx)
	if _, ok := eng.Catalog().Partitioned("ps"); !ok {
		// Seed enough distinct keys that every partition gets rows before
		// the bwdecompose fan-out (empty partitions skip decomposition).
		var seed []string
		for i := 0; i < 12; i++ {
			seed = append(seed, fmt.Sprintf("(%d, %d)", i, (i*7)%997))
		}
		for _, stmt := range []string{
			"create table ps (k int, v int) partition by hash(k) partitions 3",
			"insert into ps values " + strings.Join(seed, ", "),
			"select bwdecompose(k, 8), bwdecompose(v, 8) from ps",
		} {
			if _, err := eng.Query(ctx, stmt); err != nil {
				fmt.Printf("helper: %s: %v\n", stmt, err)
				return
			}
		}
	}
	res, err := eng.Query(ctx, "select count(*) from ps")
	if err != nil {
		fmt.Printf("helper: %v\n", err)
		return
	}
	n := int(res.Rows[0].Vals[0])
	deadline := time.Now().Add(60 * time.Second) // safety net if the parent dies
	for time.Now().Before(deadline) {
		var vals []string
		for i := 0; i < 4; i++ {
			vals = append(vals, fmt.Sprintf("(%d, %d)", n+i, ((n+i)*7)%997))
		}
		if _, err := eng.Query(ctx, "insert into ps values "+strings.Join(vals, ", ")); err != nil {
			fmt.Printf("helper: insert: %v\n", err)
			return
		}
		n += 4
		// The wrapper insert commits one WAL record per touched partition
		// before Query returns (fsync=always), so this ack is a durable
		// lower bound across all partitions.
		fmt.Printf("acked ps %d\n", n)
	}
}

// TestEnginePartitionedKillIngest is the partitioned acceptance crash
// test: kill -9 a subprocess mid-ingest through a hash-partitioned table
// (background merges and checkpoints racing the writer on every
// partition), reopen the data directory, and require that the wrapper is
// re-created, every partition recovers to its own checkpoint horizon plus
// its WAL suffix — together exactly a whole-batch prefix of the
// deterministic row sequence — and that classic and A&R scatter-gather
// agree byte-for-byte on the recovered state.
func TestEnginePartitionedKillIngest(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	acked := 0
	for round := 0; round < 2; round++ {
		cmd := exec.Command(os.Args[0], "-test.run=TestEnginePartKillHelper$", "-test.v")
		cmd.Env = append(os.Environ(), "AR_PART_CRASH_HELPER=1", "AR_CRASH_DIR="+dir)
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		var mu sync.Mutex
		ackedRound := 0
		done := make(chan struct{})
		go func() {
			defer close(done)
			sc := bufio.NewScanner(stdout)
			for sc.Scan() {
				var n int
				if _, err := fmt.Sscanf(sc.Text(), "acked ps %d", &n); err == nil {
					mu.Lock()
					if n > acked {
						acked = n
					}
					ackedRound++
					mu.Unlock()
				}
			}
		}()
		killAt := time.Now().Add(15 * time.Second)
		for {
			mu.Lock()
			enough := ackedRound >= 6
			mu.Unlock()
			if enough || time.Now().After(killAt) {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		time.Sleep(time.Duration(rng.Intn(120)) * time.Millisecond)
		if err := cmd.Process.Kill(); err != nil {
			t.Fatal(err)
		}
		cmd.Wait() // expected to report the kill
		<-done
		mu.Lock()
		enough := ackedRound >= 1
		mu.Unlock()
		if !enough {
			t.Fatalf("round %d: helper acked nothing; stderr:\n%s", round, stderr.String())
		}
	}

	eng := openDurable(t, dir)
	defer eng.Close()
	if acked == 0 {
		t.Fatal("no acks recorded")
	}
	p, ok := eng.Catalog().Partitioned("ps")
	if !ok {
		t.Fatal("wrapper ps not recovered")
	}
	sess := eng.Session()
	k := mustCount(t, sess, "select count(*) from ps")
	if int(k) < acked {
		t.Fatalf("recovered %d rows, but %d were acked durable", k, acked)
	}
	if k%4 != 0 {
		t.Fatalf("recovered %d rows, not whole 4-row batches", k)
	}
	// The scatter count must agree with the partitions themselves.
	var direct int64
	for _, pt := range p.Parts {
		direct += int64(pt.Snapshot().Len())
	}
	if direct != k {
		t.Fatalf("partitions hold %d rows, wrapper count says %d", direct, k)
	}
	// Prefix-exactness across the whole partitioned table: sums of both
	// columns must match the closed forms for rows (i, (i*7)%997), i < k.
	var sumK, sumV int64
	for i := int64(0); i < k; i++ {
		sumK += i
		sumV += (i * 7) % 997
	}
	res, err := sess.Query(context.Background(), "select sum(k), sum(v) from ps")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0].Vals; got[0] != sumK || got[1] != sumV {
		t.Fatalf("sums (%d, %d) after recovery, want (%d, %d) — not the row prefix", got[0], got[1], sumK, sumV)
	}
	sess.Close()
	renderBoth(t, eng, "select count(*), sum(v) from ps where v < 500")
	rec := eng.Durability().Recovery()
	t.Logf("partitioned recovery after kill -9: %s", rec.String())
}
