package engine

import (
	"context"
	"strings"
	"testing"
)

// TestCostModePickCounters checks the auto-mode plumbing end to end: the
// scheduler records every cost-model decision, the registry exposes the
// pick and prune counter families, and \explain leads with the costing
// rationale so a mispick is visible.
func TestCostModePickCounters(t *testing.T) {
	eng := New(starEngineCatalog(t), Options{})
	ctx := context.Background()

	// A selective star query prices A&R; an unfiltered full-table
	// aggregate ships everything, so it prices classic.
	if _, err := eng.Query(ctx, starQuery); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Query(ctx, `select count(*) as n from f`); err != nil {
		t.Fatal(err)
	}
	st := eng.Scheduler().Stats()
	if st.ModePickAR < 1 || st.ModePickClassic < 1 {
		t.Fatalf("mode picks ar=%d classic=%d, want at least one of each", st.ModePickAR, st.ModePickClassic)
	}
	if s := st.String(); !strings.Contains(s, "cost picks ar") {
		t.Errorf("SchedStats.String() missing pick counts: %s", s)
	}

	text := strings.Join(eng.Metrics().Text(), "\n")
	for _, want := range []string{
		`ar_mode_picks_total{mode="ar"}`,
		`ar_mode_picks_total{mode="classic"}`,
		"ar_partition_pruned_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics text missing %q", want)
		}
	}

	// Forced modes bypass the cost model: no pick is recorded.
	sess := eng.SessionFor(ModeClassic)
	defer sess.Close()
	if _, err := sess.Query(ctx, starQuery); err != nil {
		t.Fatal(err)
	}
	if after := eng.Scheduler().Stats(); after.ModePickAR+after.ModePickClassic != st.ModePickAR+st.ModePickClassic {
		t.Error("a forced-mode query advanced the auto-mode pick counters")
	}

	// \explain in auto mode leads with the costing rationale.
	lines, err := eng.DescribeStatement(starQuery, ModeAuto)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) == 0 || !strings.HasPrefix(lines[0], "mode choice: ") {
		t.Fatalf("auto \\explain does not lead with the mode choice:\n%s", strings.Join(lines, "\n"))
	}
	if !strings.Contains(lines[0], "forces an executor") {
		t.Errorf("mode-choice line does not mention the forced override: %s", lines[0])
	}
	// Forced explains carry no rationale line.
	lines, err = eng.DescribeStatement(starQuery, ModeClassic)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) > 0 && strings.HasPrefix(lines[0], "mode choice: ") {
		t.Error("forced \\explain still leads with an auto mode choice")
	}
}
