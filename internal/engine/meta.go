package engine

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/device"
	"repro/internal/store"
)

// Meta executes one backslash meta command against the session and returns
// the display lines. It is the single implementation behind both the
// shell's and the server's meta surface (\cost, \mode, \tables, \stats,
// \merge, \checkpoint, \explain [analyze], \metrics, \slow, \prepare,
// \run, \q), which is what keeps the two front-ends at parity.
//
// handled is false when line is not a meta command (no backslash prefix) —
// the caller should execute it as SQL. quit is true for \q. Unknown meta
// commands report handled=true with an error.
func (s *Session) Meta(ctx context.Context, line string) (out []string, quit, handled bool, err error) {
	if !strings.HasPrefix(line, `\`) {
		return nil, false, false, nil
	}
	cmd, rest, _ := strings.Cut(line, " ")
	rest = strings.TrimSpace(rest)
	switch cmd {
	case `\q`:
		return nil, true, true, nil
	case `\cost`:
		return []string{fmt.Sprintf("cost report %s", onOff(s.ToggleCost()))}, false, true, nil
	case `\mode`:
		if rest != "" {
			if err := s.SetModeName(rest); err != nil {
				return nil, false, true, err
			}
		}
		return []string{"mode " + s.Mode().String()}, false, true, nil
	case `\tables`:
		cat := s.eng.Catalog()
		// Partition member tables list under their wrapper, not as
		// stand-alone entries.
		member := map[string]bool{}
		for _, name := range cat.PartitionedNames() {
			if p, ok := cat.Partitioned(name); ok {
				for _, t := range p.Parts {
					member[t.Name()] = true
				}
			}
		}
		names := cat.PartitionedNames()
		for _, name := range cat.TableNames() {
			if !member[name] {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		for _, name := range names {
			if p, ok := cat.Partitioned(name); ok {
				out = append(out, fmt.Sprintf("%s (%d rows, %s): %s",
					name, p.Len(), p.Spec, strings.Join(p.Schema().Columns(), ", ")))
				for i, t := range p.Parts {
					out = append(out, fmt.Sprintf("  partition %d: %s", i, segText(t.Snapshot())))
				}
				continue
			}
			t, err := cat.Table(name)
			if err != nil {
				continue
			}
			out = append(out, fmt.Sprintf("%s (%s): %s", name, segText(t.Snapshot()), strings.Join(t.Columns(), ", ")))
		}
		return out, false, true, nil
	case `\merge`:
		cat := s.eng.Catalog()
		names := cat.TableNames()
		if rest != "" {
			names = []string{rest}
		}
		for _, name := range names {
			m := device.NewMeter(cat.System())
			st, err := cat.MergeTable(m, name, false)
			if err != nil {
				return nil, false, true, err
			}
			if !st.Merged {
				out = append(out, fmt.Sprintf("%s: nothing to merge", name))
				continue
			}
			s.eng.Scheduler().Totals.Merge(m)
			s.Totals.Merge(m)
			out = append(out, fmt.Sprintf("merged %s: %d delta rows in, %d deleted rows out, shipped %d B (full re-decomposition: %d B)",
				name, st.DeltaRows, st.DroppedRows, st.ShippedBytes, st.FullBytes))
		}
		return out, false, true, nil
	case `\checkpoint`:
		if s.eng.Durability() == nil {
			return nil, false, true, errors.New(`engine: no data directory; start with -data to enable \checkpoint`)
		}
		names := s.eng.Catalog().TableNames()
		if rest != "" {
			names = []string{rest}
			if p, ok := s.eng.Catalog().Partitioned(rest); ok {
				// Checkpointing a partitioned table checkpoints every
				// partition (each has its own horizon and segment file).
				names = names[:0]
				for _, t := range p.Parts {
					names = append(names, t.Name())
				}
			}
		}
		for _, name := range names {
			m := device.NewMeter(s.eng.Catalog().System())
			st, err := s.eng.CheckpointTable(m, name)
			if err != nil {
				return nil, false, true, err
			}
			if st.Clean {
				out = append(out, fmt.Sprintf("%s: clean (checkpoint lsn %d)", name, st.LSN))
				continue
			}
			s.eng.Scheduler().Totals.Merge(m)
			s.Totals.Merge(m)
			out = append(out, fmt.Sprintf("checkpointed %s at lsn %d: segment %d B, wal now %d B",
				name, st.LSN, st.SegmentBytes, st.WALBytes))
		}
		return out, false, true, nil
	case `\stats`:
		return s.eng.StatsLines(s), false, true, nil
	case `\explain`:
		if rest == "" {
			return nil, false, true, errors.New(`engine: usage: \explain [analyze] <select statement>`)
		}
		if sub, stmt, _ := strings.Cut(rest, " "); strings.EqualFold(sub, "analyze") {
			stmt = strings.TrimSpace(stmt)
			if stmt == "" {
				return nil, false, true, errors.New(`engine: usage: \explain analyze <select statement>`)
			}
			lines, err := s.eng.AnalyzeStatement(ctx, s, stmt)
			if err != nil {
				return nil, false, true, err
			}
			return lines, false, true, nil
		}
		lines, err := s.eng.DescribeStatement(rest, s.Mode())
		if err != nil {
			return nil, false, true, err
		}
		return lines, false, true, nil
	case `\metrics`:
		return s.eng.Metrics().Text(), false, true, nil
	case `\slow`:
		log := s.eng.SlowLog()
		switch {
		case rest == "":
			return log.Lines(), false, true, nil
		case rest == "off":
			log.SetThreshold(0)
			return []string{"slow-query log off"}, false, true, nil
		default:
			d, err := time.ParseDuration(rest)
			if err != nil || d <= 0 {
				return nil, false, true, errors.New(`engine: usage: \slow [<threshold, e.g. 50ms>|off]`)
			}
			log.SetThreshold(d)
			return []string{fmt.Sprintf("slow-query log on: retaining traces of queries over %s", d)}, false, true, nil
		}
	case `\prepare`:
		name, stmt, ok := strings.Cut(rest, " ")
		stmt = strings.TrimSpace(stmt)
		if !ok || name == "" || stmt == "" {
			return nil, false, true, errors.New(`engine: usage: \prepare <name> <sql>`)
		}
		if _, err := s.PrepareNamed(ctx, name, stmt); err != nil {
			return nil, false, true, err
		}
		return []string{"prepared " + name}, false, true, nil
	case `\run`:
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			return nil, false, true, errors.New(`engine: usage: \run <name> [params...]`)
		}
		st, ok := s.Stmt(fields[0])
		if !ok {
			return nil, false, true, fmt.Errorf("engine: no prepared statement %q", fields[0])
		}
		params := make([]any, len(fields)-1)
		for i, f := range fields[1:] {
			params[i] = f
		}
		res, err := st.Exec(ctx, params...)
		if err != nil {
			return nil, false, true, err
		}
		return RenderResult(res, s.Cost()), false, true, nil
	default:
		return nil, false, true, fmt.Errorf("engine: unknown meta command %s", cmd)
	}
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}

// segText renders one table snapshot's base/delta/deleted split.
func segText(snap *store.Snapshot) string {
	if snap.DeltaLen() > 0 || snap.DeletedCount() > 0 {
		return fmt.Sprintf("%d rows: %d base + %d delta, %d deleted",
			snap.Len(), snap.BaseLen()-snap.BaseDeletedCount(), snap.LiveDelta(), snap.DeletedCount())
	}
	return fmt.Sprintf("%d rows", snap.Len())
}
