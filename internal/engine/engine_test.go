package engine

import (
	"context"
	"strings"
	"testing"
)

// TestEngineFacade exercises the embeddable surface end to end: Query,
// Prepare/Exec with parameters, per-session mode and totals, plan-cache
// sharing, and stats rendering.
func TestEngineFacade(t *testing.T) {
	c := testCatalog(t)
	eng := New(c, Options{})
	ctx := context.Background()

	// Engine-level Query on the default session.
	res, err := eng.Query(ctx, tripCount)
	if err != nil {
		t.Fatal(err)
	}
	if res.Route != RouteAR {
		t.Fatalf("decomposed catalog should route A&R, got %v", res.Route)
	}
	if len(res.Rows) != 1 || res.Rows[0].Vals[0] <= 0 {
		t.Fatalf("unexpected rows %v", res.Rows)
	}
	want := res.Rows[0].Vals[0]

	// Sessions carry their own mode; classic must agree with A&R.
	sess := eng.Session()
	defer sess.Close()
	sess.SetMode(ModeClassic)
	res2, err := sess.Query(ctx, tripCount)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Route != RouteClassic {
		t.Fatalf("forced classic session routed %v", res2.Route)
	}
	if res2.Rows[0].Vals[0] != want {
		t.Fatalf("executors disagree: %d vs %d", res2.Rows[0].Vals[0], want)
	}
	if _, _, _, q := sess.Totals.Totals(); q != 1 {
		t.Fatalf("session totals should count 1 query, got %d", q)
	}

	// Identical normalized text must hit the shared plan cache.
	if _, err := sess.Query(ctx, strings.ToUpper(tripCount[:6])+tripCount[6:]); err != nil {
		t.Fatal(err)
	}
	if st := eng.Cache().Stats(); st.Hits == 0 {
		t.Fatalf("expected a plan-cache hit, got %+v", st)
	}

	// Prepared statement with parameters.
	st, err := sess.Prepare(ctx, "select count(lon) from trips where lon between $1 and $2")
	if err != nil {
		t.Fatal(err)
	}
	pres, err := st.Exec(ctx, 200000, 240000)
	if err != nil {
		t.Fatal(err)
	}
	dres, err := sess.Query(ctx, "select count(lon) from trips where lon between 200000 and 240000")
	if err != nil {
		t.Fatal(err)
	}
	if pres.Rows[0].Vals[0] != dres.Rows[0].Vals[0] {
		t.Fatalf("parameterized exec %d != direct %d", pres.Rows[0].Vals[0], dres.Rows[0].Vals[0])
	}
	if _, err := st.Exec(ctx, 1); err == nil {
		t.Fatal("wrong parameter arity must error")
	}
	if _, err := st.Exec(ctx, "drop table", 2); err == nil {
		t.Fatal("non-literal parameter must error")
	}

	// Stats lines cover sessions, cache, scheduler, and totals.
	lines := strings.Join(eng.StatsLines(sess), "\n")
	for _, wantSub := range []string{"sessions: 1 active", "plan cache:", "scheduler:", "engine totals:", "session "} {
		if !strings.Contains(lines, wantSub) {
			t.Fatalf("stats missing %q:\n%s", wantSub, lines)
		}
	}
}

// TestPreparedStatementValidation: compile errors surface at Prepare (not
// first Exec), and placeholder scanning is strict.
func TestPreparedStatementValidation(t *testing.T) {
	c := testCatalog(t)
	eng := New(c, Options{})
	sess := eng.Session()
	defer sess.Close()
	ctx := context.Background()

	if _, err := sess.Prepare(ctx, "selct count(lon) frm trips where lon between $1 and $2"); err == nil {
		t.Fatal("syntax error must surface at Prepare, not Exec")
	}
	if _, err := sess.Prepare(ctx, "select count(nosuch) from trips where nosuch between $1 and $2"); err == nil {
		t.Fatal("bind error must surface at Prepare")
	}
	if _, err := sess.Prepare(ctx, "select count(lon) from trips where lon between $12 and 2"); err == nil {
		t.Fatal("$12 must be rejected, not read as $1 followed by a literal 2")
	}
	if _, err := sess.Prepare(ctx, "select count(lon) from trips where lon between $ and 2"); err == nil {
		t.Fatal("bare $ must be rejected")
	}
	// Parameterized Exec must not pollute the shared plan cache.
	st, err := sess.Prepare(ctx, "select count(lon) from trips where lon between $1 and $2")
	if err != nil {
		t.Fatal(err)
	}
	before := eng.Cache().Stats().Len
	for i := 0; i < 5; i++ {
		if _, err := st.Exec(ctx, 200000+i, 240000+i); err != nil {
			t.Fatal(err)
		}
	}
	if after := eng.Cache().Stats().Len; after != before {
		t.Fatalf("parameterized Exec grew the plan cache: %d -> %d entries", before, after)
	}
}

// TestParamScanning unit-tests the quote-aware placeholder scanner.
func TestParamScanning(t *testing.T) {
	if n, err := countParams("a $1 b $3"); err != nil || n != 3 {
		t.Fatalf("countParams: n=%d err=%v", n, err)
	}
	if n, err := countParams("no params"); err != nil || n != 0 {
		t.Fatalf("countParams: n=%d err=%v", n, err)
	}
	if n, err := countParams("'$1' is a string, $2 is not"); err != nil || n != 2 {
		t.Fatalf("quoted placeholder must not count: n=%d err=%v", n, err)
	}
	for _, bad := range []string{"$12", "$0", "$x", "$"} {
		if _, err := countParams(bad); err == nil {
			t.Fatalf("countParams(%q) must error", bad)
		}
	}
	out, err := substituteParams("between $1 and $2 or '$1'", []any{int64(10), "2.5"})
	if err != nil || out != "between 10 and 2.5 or '$1'" {
		t.Fatalf("substituteParams: %q err=%v", out, err)
	}
	if _, err := substituteParams("$1", []any{"1; drop"}); err == nil {
		t.Fatal("non-literal string param must be rejected")
	}
}

// TestSessionLifecycle checks open/close bookkeeping.
func TestSessionLifecycle(t *testing.T) {
	c := testCatalog(t)
	eng := New(c, Options{})
	a, b := eng.Session(), eng.Session()
	if n := eng.SessionCount(); n != 2 {
		t.Fatalf("want 2 active sessions, got %d", n)
	}
	a.Close()
	b.Close()
	b.Close() // idempotent
	if n := eng.SessionCount(); n != 0 {
		t.Fatalf("want 0 active sessions after close, got %d", n)
	}
}

// TestMetaParity drives the shared meta-command surface directly — the
// same implementation the shell and the TCP server expose.
func TestMetaParity(t *testing.T) {
	c := testCatalog(t)
	eng := New(c, Options{})
	sess := eng.Session()
	defer sess.Close()
	ctx := context.Background()

	// Non-meta lines are not handled.
	if _, _, handled, _ := sess.Meta(ctx, "select 1"); handled {
		t.Fatal("plain SQL must not be handled as meta")
	}
	// \mode round-trip.
	out, _, handled, err := sess.Meta(ctx, `\mode classic`)
	if err != nil || !handled || out[0] != "mode classic" {
		t.Fatalf("\\mode: %v %v", out, err)
	}
	if sess.Mode() != ModeClassic {
		t.Fatal("meta \\mode did not set the session mode")
	}
	if _, _, _, err := sess.Meta(ctx, `\mode sideways`); err == nil {
		t.Fatal("bad mode must error")
	}
	// \cost toggle.
	out, _, _, err = sess.Meta(ctx, `\cost`)
	if err != nil || out[0] != "cost report on" {
		t.Fatalf("\\cost: %v %v", out, err)
	}
	// \tables lists the catalog.
	out, _, _, err = sess.Meta(ctx, `\tables`)
	if err != nil || !strings.Contains(strings.Join(out, " "), "trips") {
		t.Fatalf("\\tables: %v %v", out, err)
	}
	// \prepare + \run; with cost on, \run appends the cost line with route.
	if _, _, _, err := sess.Meta(ctx, `\prepare p1 `+tripCount); err != nil {
		t.Fatal(err)
	}
	out, _, _, err = sess.Meta(ctx, `\run p1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || !strings.HasPrefix(out[1], "-- classic; simulated") {
		t.Fatalf("\\run with cost on: %v", out)
	}
	// \stats goes through the engine renderer.
	out, _, _, err = sess.Meta(ctx, `\stats`)
	if err != nil || !strings.Contains(strings.Join(out, "\n"), "engine totals:") {
		t.Fatalf("\\stats: %v %v", out, err)
	}
	// \q quits; unknown meta errors.
	if _, quit, _, _ := sess.Meta(ctx, `\q`); !quit {
		t.Fatal("\\q must quit")
	}
	if _, _, handled, err := sess.Meta(ctx, `\bogus`); !handled || err == nil {
		t.Fatal("unknown meta must be handled with an error")
	}
}
