// Package engine is the public, embeddable facade over the A&R query
// system: one context-aware API that every front-end — the interactive
// shell, the TCP server, the benchmark harnesses, the experiment runners,
// and any future adapter (HTTP, replication, batching) — sits on instead
// of wiring the SQL front end, plan cache, device-aware scheduler and
// executors together itself.
//
// The shape follows the embeddable-engine pattern of go-mysql-server:
// construct one Engine over a catalog, open a Session per caller, and run
// statements through Query / Prepare+Exec. The engine owns the LRU plan
// cache and the scheduler; protocol adapters stay thin.
//
//	eng := engine.New(catalog, engine.Options{})
//	sess := eng.Session()
//	res, err := sess.Query(ctx, "select count(lon) from trips where ...")
//
// Every execution takes a context.Context and honors it end to end:
// waiting for a CPU-pool or GPU-stream slot aborts when ctx is cancelled,
// and running queries stop at the executors' cooperative stage checkpoints
// (see plan.Stage), returning ctx.Err() with their slot released.
package engine

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/device"
	"repro/internal/durable"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/sql"
)

// Options tunes an Engine.
type Options struct {
	// Sched sizes the device-aware scheduler.
	Sched SchedConfig
	// CacheSize bounds the LRU plan cache (entries). Defaults to 128;
	// negative disables caching.
	CacheSize int
	// Threads is the CPU thread count each query executes with (classic
	// plan or A&R refinement). Defaults to 1, one stream per worker —
	// cross-stream parallelism comes from the pool, as in Fig 11. Values
	// above 1 run each query's CPU kernels morsel-parallel: the scheduler
	// grants every admitted query its share of the CPU pool (at most
	// Threads workers), so wall-clock scales with Threads while the
	// simulated meter — which always bills Threads-way parallelism —
	// reports the same figures as before.
	Threads int
	// MergeThreshold is the live-delta row count past which the background
	// merger (StartMaintenance) compacts a table. Defaults to 65536;
	// negative disables background merging (\merge still works).
	MergeThreshold int
	// MergeInterval is the background merger's poll interval. Defaults to
	// 250ms.
	MergeInterval time.Duration
	// SlowQueryThreshold enables the slow-query log: statements whose
	// wall-clock latency (including scheduler waits) crosses it are
	// retained with their full stage trace, viewable via \slow. 0 disables
	// the log (it can be enabled at runtime with \slow <duration>).
	SlowQueryThreshold time.Duration
	// SlowLogSize bounds the slow-query ring buffer. Defaults to 16.
	SlowLogSize int
	// DataDir, when set, makes the engine durable: Open mounts a
	// write-ahead log and segment files in the directory (recovering
	// whatever state they hold), every DML statement is logged before it
	// applies, and background merges become checkpoints that persist the
	// merged base and truncate the replayed WAL prefix. Empty means
	// memory-only (the default, and the only mode New supports losslessly).
	DataDir string
	// Fsync selects the WAL fsync policy for DataDir: "always" (group
	// commit; the default), "interval" (background fsync every
	// FsyncInterval), or "off" (leave flushing to the OS).
	Fsync string
	// FsyncInterval is the background fsync cadence under Fsync "interval".
	// Defaults to 10ms.
	FsyncInterval time.Duration
}

func (o Options) withDefaults() Options {
	if o.CacheSize == 0 {
		o.CacheSize = 128
	}
	if o.Threads <= 0 {
		o.Threads = 1
	}
	if o.MergeThreshold == 0 {
		o.MergeThreshold = 65536
	}
	if o.MergeInterval <= 0 {
		o.MergeInterval = 250 * time.Millisecond
	}
	if o.SlowLogSize <= 0 {
		o.SlowLogSize = 16
	}
	return o
}

// Engine is the embeddable query engine: catalog + plan cache + scheduler
// behind a context-aware API. One Engine is shared by any number of
// concurrent sessions.
type Engine struct {
	cat     *plan.Catalog
	sched   *Scheduler
	cache   *PlanCache
	opts    Options
	metrics *metrics

	// dur is the durability coordinator when Options.DataDir is set; nil
	// for a memory-only engine.
	dur *durable.Store

	mu           sync.Mutex
	sessions     map[int64]*Session
	nextID       int64
	def          *Session
	maintCancels []context.CancelFunc
	maintWG      sync.WaitGroup
	closed       bool

	// Background-merger failure state: a table whose merge failed is not
	// retried until its epoch moves (hot-loop guard), and the failures are
	// counted and surfaced in \stats so a stuck table is visible.
	mergeFailEpoch map[string]uint64
	mergeFailures  int64
	lastMergeErr   string
}

// New returns an engine over the catalog. The catalog's tables should be
// loaded (and columns decomposed, for A&R routing) before serving, though
// callers can also issue bwdecompose statements at runtime. New panics if
// Options.DataDir is set and mounting it fails (a bad policy name, an
// unreadable directory, a recovery conflict) — durable callers should use
// Open, which reports those errors.
func New(cat *plan.Catalog, opts Options) *Engine {
	e, err := Open(cat, opts)
	if err != nil {
		panic(fmt.Sprintf("engine.New: %v (use engine.Open for durable engines)", err))
	}
	return e
}

// Open returns an engine over the catalog, mounting Options.DataDir when
// set: the data directory's segments are loaded, its WAL tail replayed
// into the catalog, and from then on every DML statement is
// write-ahead-logged. Tables already in the catalog (bulk-loaded demo
// data) are adopted into the directory on first open; on later opens the
// caller must not preload them again (see durable.Exists).
func Open(cat *plan.Catalog, opts Options) (*Engine, error) {
	opts = opts.withDefaults()
	e := &Engine{
		cat:      cat,
		sched:    NewScheduler(cat, opts.Sched),
		cache:    NewPlanCache(opts.CacheSize),
		opts:     opts,
		sessions: make(map[int64]*Session),
	}
	e.metrics = newMetrics(e, opts.SlowLogSize)
	e.metrics.slow.SetThreshold(opts.SlowQueryThreshold)
	e.sched.onQueueWait = e.metrics.queueWait.Observe
	if opts.DataDir != "" {
		policy, err := durable.ParsePolicy(opts.Fsync)
		if err != nil {
			return nil, err
		}
		fsyncSeconds := e.metrics.reg.Histogram("ar_wal_fsync_seconds", "",
			"Wall-clock latency of WAL fsyncs (each may commit a whole group of appends).", nil)
		dur, err := durable.Open(opts.DataDir, cat, durable.Config{
			Policy:        policy,
			Interval:      opts.FsyncInterval,
			FsyncObserver: fsyncSeconds.Observe,
		})
		if err != nil {
			return nil, err
		}
		cat.SetDurability(dur)
		e.dur = dur
		e.metrics.attachDurability(dur)
	}
	return e, nil
}

// Durability exposes the engine's durability coordinator; nil when the
// engine is memory-only (no Options.DataDir).
func (e *Engine) Durability() *durable.Store { return e.dur }

// Close shuts the engine down cleanly: it stops the background
// maintenance goroutines, checkpoints every dirty table (so the WAL
// carries no replay tail), and fsyncs and closes the WAL. A reopened data
// directory after a clean Close replays zero records. Close is idempotent;
// a memory-only engine's Close only stops maintenance.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	cancels := e.maintCancels
	e.maintCancels = nil
	e.mu.Unlock()
	for _, cancel := range cancels {
		cancel()
	}
	e.maintWG.Wait()
	if e.dur == nil {
		return nil
	}
	var firstErr error
	for _, name := range e.cat.TableNames() {
		if !e.dur.Dirty(name) {
			continue
		}
		m := device.NewMeter(e.cat.System())
		if _, err := e.dur.Checkpoint(m, name, false); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		e.sched.Totals.Merge(m)
	}
	if err := e.dur.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// CheckpointTable checkpoints one table through the durability layer:
// merge, persist the new base segment, drop the covered WAL prefix. It
// charges the merge traffic to m (which may be nil) and errors on a
// memory-only engine.
func (e *Engine) CheckpointTable(m *device.Meter, table string) (durable.CheckpointStats, error) {
	if e.dur == nil {
		return durable.CheckpointStats{}, fmt.Errorf("engine: no data directory; checkpointing needs Options.DataDir")
	}
	return e.dur.Checkpoint(m, table, false)
}

// Catalog returns the engine's catalog.
func (e *Engine) Catalog() *plan.Catalog { return e.cat }

// Scheduler exposes the engine's scheduler (for stats and experiments).
func (e *Engine) Scheduler() *Scheduler { return e.sched }

// Cache exposes the engine's plan cache.
func (e *Engine) Cache() *PlanCache { return e.cache }

// Metrics exposes the engine's metrics registry — the source behind both
// arserve's GET /metrics endpoint and the \metrics meta command.
func (e *Engine) Metrics() *obs.Registry { return e.metrics.reg }

// SlowLog exposes the engine's slow-query log (the \slow surface).
func (e *Engine) SlowLog() *obs.SlowLog { return e.metrics.slow }

// Session opens a new session. Callers should Close it when done so the
// active-session count stays accurate.
func (e *Engine) Session() *Session {
	e.mu.Lock()
	e.nextID++
	s := &Session{ID: e.nextID, eng: e, prepared: make(map[string]*Stmt)}
	e.sessions[s.ID] = s
	e.mu.Unlock()
	return s
}

// SessionFor opens a new session with its executor mode already set — the
// common shape for callers that pin a session to one executor (benchmark
// streams, experiment configurations, forced-mode clients).
func (e *Engine) SessionFor(mode Mode) *Session {
	s := e.Session()
	s.SetMode(mode)
	return s
}

// SessionCount returns the number of open sessions.
func (e *Engine) SessionCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.sessions)
}

func (e *Engine) dropSession(id int64) {
	e.mu.Lock()
	delete(e.sessions, id)
	e.mu.Unlock()
}

// defaultSession returns the engine-owned session behind Engine.Query /
// Engine.Prepare — the ten-line embedding path that doesn't want to manage
// sessions. It is unregistered, so it never counts as an active session.
func (e *Engine) defaultSession() *Session {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.def == nil {
		e.def = &Session{eng: e, prepared: make(map[string]*Stmt)}
	}
	return e.def
}

// Query compiles and executes one statement on the engine's default
// session. Callers needing per-caller mode, cost or totals state open
// their own Session instead.
func (e *Engine) Query(ctx context.Context, src string) (*Result, error) {
	return e.defaultSession().Query(ctx, src)
}

// Prepare compiles a statement on the engine's default session.
func (e *Engine) Prepare(ctx context.Context, src string) (*Stmt, error) {
	return e.defaultSession().Prepare(ctx, src)
}

// QueryPlan executes a logical plan.Query on the engine's default session.
func (e *Engine) QueryPlan(ctx context.Context, q plan.Query) (*Result, error) {
	return e.defaultSession().QueryPlan(ctx, q)
}

// DescribePlan renders the physical pipeline the query would run —
// chosen scan strategy, cost-ordered filters with estimated
// selectivities and cardinalities, join chain, delta/top-k stages —
// without executing it. Mode resolves exactly like execution routing:
// auto asks the optimizer's cost model, and the costing rationale is
// prepended so mispicks are visible in \explain.
func (e *Engine) DescribePlan(q plan.Query, mode Mode) ([]string, error) {
	classic := mode == ModeClassic
	var note string
	if mode == ModeAuto {
		choice := e.cat.ChooseMode(q)
		classic = choice.Classic
		note = "mode choice: " + choice.String() + " — auto; \\mode ar|classic forces an executor"
	}
	lines, err := e.cat.ExplainQuery(q, classic)
	if err != nil || note == "" {
		return lines, err
	}
	return append([]string{note}, lines...), nil
}

// DescribeStatement compiles a SELECT statement and renders its pipeline
// (the shell's \explain). Write statements have no pipeline to describe.
func (e *Engine) DescribeStatement(src string, mode Mode) ([]string, error) {
	b, err := e.compile(src)
	if err != nil {
		return nil, err
	}
	if b.IsWrite() {
		return nil, fmt.Errorf("engine: \\explain describes queries; %q is a write statement", strings.Fields(src)[0])
	}
	return e.DescribePlan(b.Query, mode)
}

// AnalyzeStatement is \explain analyze: it compiles a SELECT, renders the
// pipeline it will run, then actually executes it with tracing forced on —
// through the normal scheduler path, so admission control, contention
// charging and session totals all apply — and appends the trace: per-stage
// est-vs-actual rows, wall time and the simulated GPU/CPU/PCI split.
func (e *Engine) AnalyzeStatement(ctx context.Context, sess *Session, src string) ([]string, error) {
	b, err := e.compile(src)
	if err != nil {
		return nil, err
	}
	if b.IsWrite() {
		return nil, fmt.Errorf("engine: \\explain analyze executes queries; %q is a write statement", strings.Fields(src)[0])
	}
	lines, err := e.DescribePlan(b.Query, sess.Mode())
	if err != nil {
		return nil, err
	}
	res, err := e.execTraced(ctx, sess, b, src, true)
	if err != nil {
		return nil, err
	}
	if res.Result != nil && res.Trace != nil {
		lines = append(lines, res.Trace.Render()...)
	}
	return lines, nil
}

// Totals returns the engine-wide meter totals across all sessions.
func (e *Engine) Totals() *device.SharedMeter { return &e.sched.Totals }

// compile resolves a statement through the plan cache, compiling and
// inserting on miss. Write statements (bwdecompose, INSERT, DELETE,
// CREATE TABLE) are never cached: they are side-effecting, and re-running
// a stale binding silently would be surprising. Cached entries carry the
// schema epochs of their tables; a hit whose dependencies changed (table
// dropped or re-created) is invalidated and recompiled instead of served
// against replaced columns.
func (e *Engine) compile(src string) (*sql.Binding, error) {
	b, _, err := e.compileCached(src)
	return b, err
}

// compileCached is compile plus the dependency epochs of the returned
// binding (served from the cache entry on a hit) — prepared statements
// store them for their own staleness checks.
//
// The epochs are snapshotted BEFORE sql.Compile runs: epochs are globally
// monotonic, so if a table is dropped and re-created mid-compilation the
// recorded epoch can only be older than the live one and the entry fails
// validation on its first hit. Reading the epochs after compilation would
// invert that — the fresh epoch would vouch for a binding compiled against
// the replaced schema. A table the binding references that is absent from
// the snapshot is recorded as epoch 0, which no live table ever has.
func (e *Engine) compileCached(src string) (*sql.Binding, map[string]uint64, error) {
	key := sql.Normalize(src)
	if b, deps, ok := e.cache.Get(key, e.depsValid); ok {
		return b, deps, nil
	}
	pre := e.cat.SchemaEpochs()
	b, err := sql.Compile(e.cat, src)
	if err != nil {
		return nil, nil, err
	}
	tables := b.Tables()
	deps := make(map[string]uint64, len(tables))
	for _, name := range tables {
		deps[name] = pre[name] // 0 when created mid-window: invalid on first hit
	}
	if !b.IsWrite() && e.depsValid(deps) {
		// Re-validate on Put, not just on Get: if a table was dropped and
		// re-created between the pre-compile epoch snapshot and this point,
		// the binding may have been compiled against either generation, and
		// the recorded epochs vouch for neither. Such a binding still
		// executes once (resolution is by name at exec time) but must not
		// enter the cache, where it would cost an invalidation round trip —
		// or worse, if Put-time state were trusted — on every later hit.
		e.cache.Put(key, b, deps)
	}
	return b, deps, nil
}

// depsValid reports whether every recorded dependency still names the same
// table generation.
func (e *Engine) depsValid(deps map[string]uint64) bool {
	for name, epoch := range deps {
		cur, ok := e.cat.TableSchemaEpoch(name)
		if !ok || cur != epoch {
			return false
		}
	}
	return true
}

// StartMaintenance launches the background merger: a goroutine that polls
// every table's live delta size on Options.MergeInterval and compacts
// tables past Options.MergeThreshold, charging the incremental
// re-decomposition traffic to the engine totals. It returns immediately;
// the goroutine exits when ctx is cancelled. Front-ends that serve
// long-lived traffic (arserve, arshell) start it once; \merge remains
// available to force a compaction at any time.
func (e *Engine) StartMaintenance(ctx context.Context) {
	ctx, cancel := context.WithCancel(ctx)
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		cancel()
		return
	}
	e.maintCancels = append(e.maintCancels, cancel)
	e.maintWG.Add(1)
	e.mu.Unlock()
	go func() {
		defer e.maintWG.Done()
		tick := time.NewTicker(e.opts.MergeInterval)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				e.mergeDue()
			}
		}
	}()
}

// mergeDue compacts every table whose live delta crossed the threshold. A
// failing merge (device out of memory during the transient double
// allocation, a dimension key broken by deletes) is counted, remembered
// and NOT retried until the table's epoch moves — otherwise the ticker
// would rebuild and discard the whole new segment every interval, growing
// the delta while showing nothing to the operator.
func (e *Engine) mergeDue() {
	if e.opts.MergeThreshold < 0 {
		return
	}
	for _, name := range e.cat.TableNames() {
		t, err := e.cat.Table(name)
		if err != nil {
			continue
		}
		// Merge past the delta threshold, and also whenever live delta rows
		// exist on a table whose recorded decompositions went dormant (an
		// emptying merge dropped them) — the merge re-decomposes and
		// restores A&R routing.
		due := t.DeltaLive() >= e.opts.MergeThreshold ||
			(t.DeltaLive() > 0 && t.PendingDecompose())
		if !due {
			continue
		}
		epoch := t.Epoch()
		e.mu.Lock()
		failedAt, failed := e.mergeFailEpoch[name]
		e.mu.Unlock()
		if failed && failedAt == epoch {
			continue
		}
		m := device.NewMeter(e.cat.System())
		// With durability attached, a due merge is a checkpoint: the merged
		// base is persisted and the covered WAL prefix dropped in the same
		// breath, so the replay tail stays proportional to the delta.
		merge := func() error {
			if e.dur != nil {
				_, err := e.dur.Checkpoint(m, name, true)
				return err
			}
			_, err := e.cat.MergeTable(m, name, true)
			return err
		}
		if err := merge(); err != nil {
			e.mu.Lock()
			if e.mergeFailEpoch == nil {
				e.mergeFailEpoch = make(map[string]uint64)
			}
			e.mergeFailEpoch[name] = epoch
			e.mergeFailures++
			e.lastMergeErr = err.Error()
			e.mu.Unlock()
			continue
		}
		e.mu.Lock()
		delete(e.mergeFailEpoch, name)
		e.mu.Unlock()
		e.sched.Totals.Merge(m)
	}
}

// exec routes one compiled binding through the scheduler on behalf of a
// session and folds the (contention-adjusted) meter into the session's
// totals. The scheduler already merged it into the engine-wide totals.
// src is the statement text, carried for the slow-query log and traces.
func (e *Engine) exec(ctx context.Context, sess *Session, b *sql.Binding, src string) (*Result, error) {
	return e.execTraced(ctx, sess, b, src, false)
}

// execTraced is exec with an explicit tracing decision: \explain analyze
// forces a trace; otherwise tracing runs only while the slow-query log is
// armed (tracing never perturbs results or meters, so arming it is safe on
// live traffic — it only costs the clock reads).
func (e *Engine) execTraced(ctx context.Context, sess *Session, b *sql.Binding, src string, forceTrace bool) (*Result, error) {
	opts := plan.ExecOpts{Threads: e.opts.Threads, Trace: forceTrace || e.metrics.slow.Enabled()}
	start := time.Now()
	res, route, err := e.sched.Exec(ctx, b, opts, sess.Mode())
	wall := time.Since(start)
	e.metrics.note(route, wall, err)
	if err != nil {
		return nil, err
	}
	var meter *device.Meter
	if res != nil {
		meter = res.Meter
	}
	sess.Totals.Merge(meter)
	if res != nil && res.Trace != nil {
		res.Trace.Query = src
		var sim time.Duration
		if meter != nil {
			sim = meter.Total()
		}
		e.metrics.noteSlow(obs.SlowEntry{
			Query: src, Route: route.String(), When: res.Trace.Start,
			Wall: wall, Sim: sim, Trace: res.Trace,
		})
	}
	return &Result{Result: res, Route: route}, nil
}

// Result is the outcome of one engine execution: the plan-level result
// (nil for DDL statements such as bwdecompose) plus the route the
// scheduler chose.
type Result struct {
	*plan.Result
	Route Route
}

// StatsLines renders the engine's observable state — active sessions, plan
// cache, scheduler, engine-wide totals, and (if sess is non-nil) the
// session's own totals — as the lines both the server's \stats command and
// the shell print. Sharing the renderer keeps the two surfaces identical.
func (e *Engine) StatsLines(sess *Session) []string {
	lines := []string{
		fmt.Sprintf("sessions: %d active", e.SessionCount()),
		e.cache.Stats().String(),
		e.sched.Stats().String(),
		e.cat.StoreStats().String(),
	}
	if e.dur != nil {
		lines = append(lines, e.dur.Stats().String())
	}
	e.mu.Lock()
	if e.mergeFailures > 0 {
		lines = append(lines, fmt.Sprintf("maintenance: %d background merges failed (last: %s)", e.mergeFailures, e.lastMergeErr))
	}
	e.mu.Unlock()
	lines = append(lines, obs.RuntimeMemLine())
	lines = append(lines, "engine totals: "+e.sched.Totals.String())
	if sess != nil {
		lines = append(lines, fmt.Sprintf("session %d totals: %s", sess.ID, sess.Totals.String()))
	}
	return lines
}

// RenderResult formats an execution result as display lines: "decomposed"
// for DDL, the plan listing for EXPLAIN, formatted rows otherwise, plus
// the per-query cost report when showCost is set. Both the server protocol
// and the shell render through this, so their output cannot drift.
func RenderResult(res *Result, showCost bool) []string {
	var lines []string
	switch {
	case res.Result == nil:
		lines = []string{"decomposed"}
	case res.Rows == nil && len(res.Plan) > 0:
		lines = append(lines, res.Plan...)
	default:
		for _, l := range strings.Split(strings.TrimRight(plan.FormatRows(res.Rows), "\n"), "\n") {
			if l != "" {
				lines = append(lines, l)
			}
		}
	}
	if showCost && res.Result != nil && res.Meter != nil {
		lines = append(lines, fmt.Sprintf("-- %s; simulated %v; candidates %d -> refined %d; approx count %v",
			res.Route, res.Meter, res.Candidates, res.Refined, res.Approx.Count))
	}
	return lines
}
