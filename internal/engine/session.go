package engine

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"repro/internal/device"
	"repro/internal/plan"
	"repro/internal/sql"
)

// Session is per-caller engine state: an executor-mode and cost-report
// toggle, named prepared statements, and running meter totals over every
// statement the caller ran. Every front-end connection (shell, TCP client,
// embedded library user) owns one Session; all methods are safe for
// concurrent use (the \stats handler of one connection may snapshot
// another's totals).
type Session struct {
	// ID identifies the session in stats output.
	ID int64

	// Totals accumulates the contention-adjusted meters of this session's
	// queries.
	Totals device.SharedMeter

	eng *Engine

	mu       sync.Mutex
	cost     bool
	mode     Mode
	prepared map[string]*Stmt
}

// Query compiles (through the engine's plan cache) and executes one
// statement under ctx, routed by the session's executor mode.
func (s *Session) Query(ctx context.Context, src string) (*Result, error) {
	b, err := s.eng.compile(src)
	if err != nil {
		return nil, err
	}
	return s.eng.exec(ctx, s, b, src)
}

// QueryPlan executes a logical plan.Query directly — the programmatic
// entry point for callers (benchmarks, experiments) that build plans
// without SQL text. Routing, admission control and contention charging are
// identical to Query.
func (s *Session) QueryPlan(ctx context.Context, q plan.Query) (*Result, error) {
	return s.eng.exec(ctx, s, &sql.Binding{Query: q}, "(plan.Query on "+q.Table+")")
}

// Prepare compiles a statement into a reusable Stmt bound to this session.
// The source may contain $1..$9 placeholders where integer or decimal
// literals appear (outside string literals); Stmt.Exec substitutes the
// parameters at execution time. Compilation errors surface here, not at
// first Exec: parameterized statements are validated against dummy
// literals, so a typo never hides behind a successful prepare.
func (s *Session) Prepare(ctx context.Context, src string) (*Stmt, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n, err := countParams(src)
	if err != nil {
		return nil, err
	}
	st := &Stmt{sess: s, src: src, params: n}
	if n == 0 {
		b, deps, err := s.eng.compileCached(src)
		if err != nil {
			return nil, err
		}
		st.binding = b
		st.deps = deps
		return st, nil
	}
	// Dummy-validate: every literal position in the grammar is numeric, so
	// substituting 1 for each placeholder exercises the full front end.
	dummies := make([]any, n)
	for i := range dummies {
		dummies[i] = 1
	}
	probe, err := substituteParams(src, dummies)
	if err != nil {
		return nil, err
	}
	if _, err := sql.Compile(s.eng.cat, probe); err != nil {
		return nil, err
	}
	return st, nil
}

// PrepareNamed compiles a statement and stores it under name for Stmt
// lookup (the \prepare / \run protocol surface).
func (s *Session) PrepareNamed(ctx context.Context, name, src string) (*Stmt, error) {
	st, err := s.Prepare(ctx, src)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.prepared[name] = st
	s.mu.Unlock()
	return st, nil
}

// Stmt returns a statement previously stored with PrepareNamed.
func (s *Session) Stmt(name string) (*Stmt, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.prepared[name]
	return st, ok
}

// ToggleCost flips the cost-report toggle and returns the new state.
func (s *Session) ToggleCost() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cost = !s.cost
	return s.cost
}

// Cost reports whether cost reporting is on.
func (s *Session) Cost() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cost
}

// Mode returns the session's executor mode.
func (s *Session) Mode() Mode {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mode
}

// SetMode sets the executor mode.
func (s *Session) SetMode(m Mode) {
	s.mu.Lock()
	s.mode = m
	s.mu.Unlock()
}

// SetModeName sets the executor mode from its text form.
func (s *Session) SetModeName(name string) error {
	m, err := ParseMode(name)
	if err != nil {
		return err
	}
	s.SetMode(m)
	return nil
}

// Close deregisters the session from its engine. Closing is idempotent;
// a closed session can still execute (it just no longer counts as active).
func (s *Session) Close() error {
	s.eng.dropSession(s.ID)
	return nil
}

// Stmt is a compiled statement bound to a session. Statements without
// placeholders hold their binding together with the schema epochs of its
// tables: an Exec after the table was dropped or re-created recompiles
// instead of executing the stale binding. Parameterized statements compile
// at Exec time after literal substitution — bypassing the shared plan
// cache, since per-parameter-set texts would thrash its LRU without ever
// being re-hit.
type Stmt struct {
	sess   *Session
	src    string
	params int

	mu      sync.Mutex
	binding *sql.Binding
	deps    map[string]uint64
}

// Src returns the statement's source text.
func (st *Stmt) Src() string { return st.src }

// Exec executes the prepared statement under ctx. For parameterized
// statements (src containing $1..$9), params supplies one literal per
// placeholder — int, int64, float64 or string forms of the SQL literal.
func (st *Stmt) Exec(ctx context.Context, params ...any) (*Result, error) {
	if len(params) != st.params {
		return nil, fmt.Errorf("engine: statement takes %d parameters, got %d", st.params, len(params))
	}
	var b *sql.Binding
	src := st.src
	if st.params > 0 {
		var err error
		if src, err = substituteParams(st.src, params); err != nil {
			return nil, err
		}
		if b, err = sql.Compile(st.sess.eng.cat, src); err != nil {
			return nil, err
		}
	} else {
		eng := st.sess.eng
		st.mu.Lock()
		if !eng.depsValid(st.deps) {
			nb, deps, err := eng.compileCached(st.src)
			if err != nil {
				st.mu.Unlock()
				return nil, fmt.Errorf("engine: prepared statement is stale and failed to recompile: %w", err)
			}
			st.binding, st.deps = nb, deps
		}
		b = st.binding
		st.mu.Unlock()
	}
	return st.sess.eng.exec(ctx, st.sess, b, src)
}

// forEachParam walks src outside single-quoted string literals and calls
// fn for every $n placeholder with its byte range and 0-based index. A $
// followed by more than one digit is an error — only $1..$9 exist, and
// silently reading $12 as $1 followed by a literal 2 would splice together
// a different statement than the caller wrote.
func forEachParam(src string, fn func(start, end, idx int)) error {
	inString := false
	for i := 0; i < len(src); i++ {
		switch {
		case src[i] == '\'':
			inString = !inString
		case !inString && src[i] == '$':
			if i+1 >= len(src) || src[i+1] < '1' || src[i+1] > '9' {
				return fmt.Errorf("engine: invalid parameter placeholder at byte %d (use $1..$9)", i)
			}
			if i+2 < len(src) && src[i+2] >= '0' && src[i+2] <= '9' {
				return fmt.Errorf("engine: parameter placeholder at byte %d out of range (only $1..$9 are supported)", i)
			}
			fn(i, i+2, int(src[i+1]-'1'))
			i++
		}
	}
	return nil
}

// countParams returns the highest $n placeholder index in src (0 if none).
func countParams(src string) (int, error) {
	max := 0
	err := forEachParam(src, func(_, _, idx int) {
		if idx+1 > max {
			max = idx + 1
		}
	})
	return max, err
}

// substituteParams renders each parameter as a SQL literal and splices it
// over its $n placeholder. Every rendered literal must survive the lexer
// as plain tokens, so parameters cannot smuggle in statement structure.
func substituteParams(src string, params []any) (string, error) {
	rendered := make([]string, len(params))
	for i, p := range params {
		var lit string
		switch v := p.(type) {
		case int:
			lit = strconv.Itoa(v)
		case int64:
			lit = strconv.FormatInt(v, 10)
		case float64:
			lit = strconv.FormatFloat(v, 'f', -1, 64)
		case string:
			lit = v
		default:
			return "", fmt.Errorf("engine: unsupported parameter type %T for $%d", p, i+1)
		}
		if !validLiteral(lit) {
			return "", fmt.Errorf("engine: parameter $%d (%q) is not a numeric or string literal", i+1, lit)
		}
		rendered[i] = lit
	}
	var sb strings.Builder
	at := 0
	err := forEachParam(src, func(start, end, idx int) {
		sb.WriteString(src[at:start])
		sb.WriteString(rendered[idx])
		at = end
	})
	if err != nil {
		return "", err
	}
	sb.WriteString(src[at:])
	return sb.String(), nil
}

// validLiteral accepts optionally signed decimal numbers and single-quoted
// strings without embedded quotes.
func validLiteral(s string) bool {
	if s == "" {
		return false
	}
	if s[0] == '\'' {
		return len(s) >= 2 && s[len(s)-1] == '\'' && !strings.ContainsAny(s[1:len(s)-1], "'\n\r")
	}
	body := s
	if body[0] == '-' || body[0] == '+' {
		body = body[1:]
	}
	if body == "" {
		return false
	}
	dots := 0
	for i := 0; i < len(body); i++ {
		switch {
		case body[i] >= '0' && body[i] <= '9':
		case body[i] == '.' && dots == 0 && i > 0 && i < len(body)-1:
			dots++
		default:
			return false
		}
	}
	return true
}
