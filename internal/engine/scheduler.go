package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/device"
	"repro/internal/plan"
	"repro/internal/sql"
)

// Route records which execution path the scheduler chose for a statement.
type Route int

// Routes.
const (
	RouteAR      Route = iota // A&R plan on the GPU stream
	RouteClassic              // classic bulk plan on the CPU worker pool
	RouteDDL                  // bwdecompose, executed inline under catalog locks
)

func (r Route) String() string {
	switch r {
	case RouteAR:
		return "ar"
	case RouteClassic:
		return "classic"
	case RouteDDL:
		return "ddl"
	default:
		return fmt.Sprintf("Route(%d)", int(r))
	}
}

// Mode is a session's executor preference.
type Mode int

// Modes. Auto is the default and lets the optimizer's cost model pick the
// executor per query (plan.Catalog.ChooseMode); ar/classic are forced
// overrides for operators and tests that need a specific executor.
const (
	ModeAuto    Mode = iota // cost-based per-query choice from statistics
	ModeAR                  // force the A&R executor (errors if not decomposed)
	ModeClassic             // force the classic executor
)

func (m Mode) String() string {
	switch m {
	case ModeAuto:
		return "auto"
	case ModeAR:
		return "ar"
	case ModeClassic:
		return "classic"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ParseMode parses a mode from its text form.
func ParseMode(name string) (Mode, error) {
	switch name {
	case "auto":
		return ModeAuto, nil
	case "ar":
		return ModeAR, nil
	case "classic":
		return ModeClassic, nil
	default:
		return ModeAuto, fmt.Errorf("engine: unknown mode %q (auto, ar, classic)", name)
	}
}

// Scheduler is the device-aware admission layer between sessions and the
// catalog. It reproduces the paper's §VI-E concurrency setup (Fig 11, "A
// Gap in the Memory Wall") as serving policy:
//
//   - Classic plans go to a bounded CPU worker pool. Each running stream is
//     charged the memory-wall contention of its neighbours: with t classic
//     streams active and g A&R streams drawing host bandwidth, a stream's
//     simulated CPU time stretches by ClassicStretch.
//   - A&R plans go to a GPU stream (usually one — the simulated device
//     executes one kernel sequence at a time) guarded by admission control:
//     at most ARQueue queries may wait; beyond that Exec fails fast with a
//     typed *OverloadedError instead of building an unbounded backlog. The
//     A&R stream itself is not stretched — it works out of GPU memory,
//     which is exactly the gap in the memory wall the paper measures.
//   - bwdecompose statements execute inline; the catalog's own locks make
//     the decomposition swap safe against in-flight queries.
//
// Every path honors the query context: a query waiting for a CPU or GPU
// slot abandons the wait when ctx is cancelled, and a running query stops
// at its executor's next stage checkpoint — in both cases the slot is
// released (or never taken), so cancellation can never leak pool capacity.
type Scheduler struct {
	cat      *plan.Catalog
	cpuSlots chan struct{}
	gpuSlots chan struct{}
	arQueue  int
	cpuCap   int // CPU pool size: slots for classic streams, workers for morsels

	// Totals aggregates the (contention-adjusted) meters of every query
	// the scheduler ran. SharedMeter carries its own mutex, so the Merge
	// calls in execAR/execClassic/execDDL are safe without holding s.mu —
	// taking s.mu around them would only serialize finished queries behind
	// each other (verified by TestParallelSchedulerTotalsStress under
	// -race).
	Totals device.SharedMeter

	// onQueueWait, if set (by the engine's metrics), observes how long each
	// admitted A&R query waited for its GPU stream slot.
	onQueueWait func(time.Duration)

	mu            sync.Mutex
	activeClassic int
	activeAR      int
	waitingAR     int
	allocWorkers  int // morsel workers currently granted out of cpuCap
	peakClassic   int
	peakAR        int
	peakWaitingAR int
	classicRun    int64
	arRun         int64
	ddlRun        int64
	rejectedAR    int64
	cancelled     int64
	drawSum       float64 // sum of HostDraw over finished A&R queries
	drawN         int64

	// modePickAR/modePickClassic count auto-mode cost decisions, so
	// mispricings are visible next to the forced-mode run counters.
	modePickAR      int64
	modePickClassic int64

	// devStreams is the per-device ledger behind plan.DeviceGate: one
	// admission slot per simulated partition device, created lazily on
	// first use. partitionScans counts successful acquisitions — the A&R
	// partition scans that actually ran on a partition's device stream.
	devStreams     map[int]chan struct{}
	partitionScans int64
}

// SchedConfig sizes the scheduler.
type SchedConfig struct {
	// CPUWorkers bounds the classic worker pool. Defaults to the simulated
	// CPU's hardware thread count.
	CPUWorkers int
	// GPUStreams bounds concurrently executing A&R plans. Defaults to 1:
	// the paper's single GPU query stream.
	GPUStreams int
	// ARQueue bounds A&R queries waiting for a stream before admission
	// control rejects with *OverloadedError. Defaults to 2×GPUStreams.
	ARQueue int
}

func (c SchedConfig) withDefaults(sys *device.System) SchedConfig {
	if c.CPUWorkers <= 0 {
		c.CPUWorkers = sys.CPU.Threads
	}
	if c.GPUStreams <= 0 {
		c.GPUStreams = 1
	}
	if c.ARQueue <= 0 {
		c.ARQueue = 2 * c.GPUStreams
	}
	return c
}

// NewScheduler returns a scheduler over the catalog's simulated system.
func NewScheduler(cat *plan.Catalog, cfg SchedConfig) *Scheduler {
	cfg = cfg.withDefaults(cat.System())
	return &Scheduler{
		cat:      cat,
		cpuSlots: make(chan struct{}, cfg.CPUWorkers),
		gpuSlots: make(chan struct{}, cfg.GPUStreams),
		arQueue:  cfg.ARQueue,
		cpuCap:   cfg.CPUWorkers,
	}
}

// workerBudgetLocked allocates (and reserves) the real morsel-worker
// budget for one admitted query: its fair share of the CPU pool given
// every query currently active (classic streams plus A&R refinements),
// capped both at the query's requested thread count and at the pool
// capacity still unreserved — so staggered arrivals cannot oversubscribe
// the pool (an early lone query that grabbed everything forces later
// arrivals down to the 1-worker minimum until it finishes). The simulated
// meter is unaffected — it always bills opts.Threads (see plan.ExecOpts).
// Callers must hold s.mu, have already counted themselves active, and
// release the returned grant via releaseWorkersLocked when done.
func (s *Scheduler) workerBudgetLocked(requested int) int {
	if requested <= 0 {
		requested = 1
	}
	active := s.activeClassic + s.activeAR
	if active < 1 {
		active = 1
	}
	share := s.cpuCap / active
	if remaining := s.cpuCap - s.allocWorkers; share > remaining {
		share = remaining
	}
	if share < 1 {
		share = 1
	}
	if share < requested {
		requested = share
	}
	s.allocWorkers += requested
	return requested
}

// releaseWorkersLocked returns a finished query's worker grant to the
// pool. Callers must hold s.mu; granted is 0 when the caller brought its
// own explicit Workers budget.
func (s *Scheduler) releaseWorkersLocked(granted int) {
	s.allocWorkers -= granted
}

// Exec routes one compiled binding to its device and executes it under
// ctx. The returned result's meter already includes the memory-wall
// contention charge for classic plans. A cancelled ctx surfaces as
// ctx.Err(), whether the query was still waiting for a slot or already
// mid-execution.
func (s *Scheduler) Exec(ctx context.Context, b *sql.Binding, opts plan.ExecOpts, mode Mode) (*plan.Result, Route, error) {
	if err := ctx.Err(); err != nil {
		s.noteCancelled()
		return nil, RouteClassic, err
	}
	// Scatter-gather executions over partitioned tables admission-control
	// their per-partition device streams through the scheduler's ledger.
	opts.Gate = s
	switch {
	case b.IsWrite():
		// bwdecompose and DML (INSERT/DELETE/CREATE TABLE) execute inline:
		// the store's snapshot publication makes the swap safe against
		// in-flight queries, and write latency is dominated by the store
		// itself, not device contention.
		return s.execDDL(ctx, b, opts)
	case mode == ModeClassic:
		return s.execClassic(ctx, b, opts)
	case mode == ModeAR:
		// No pre-validation: ExecAR validates as it builds its
		// decomposition snapshot and surfaces the same precise error.
		return s.execAR(ctx, b, opts)
	default:
		// Auto mode: the optimizer prices both executors against the
		// statistics provider and picks the cheaper one — the session
		// \mode knob above is only a forced override. Scatter legs
		// re-price per partition (opts.AutoMode).
		opts.AutoMode = true
		choice := s.cat.ChooseMode(b.Query)
		s.notePick(choice.Classic)
		if choice.Classic {
			return s.execClassic(ctx, b, opts)
		}
		res, route, err := s.execAR(ctx, b, opts)
		if errors.Is(err, ErrOverloaded) {
			// Auto mode degrades gracefully: an overloaded GPU stream spills
			// the query to the CPU pool instead of failing the client.
			return s.execClassic(ctx, b, opts)
		}
		return res, route, err
	}
}

// notePick counts one auto-mode cost decision for the metrics registry.
func (s *Scheduler) notePick(classic bool) {
	s.mu.Lock()
	if classic {
		s.modePickClassic++
	} else {
		s.modePickAR++
	}
	s.mu.Unlock()
}

func (s *Scheduler) execDDL(ctx context.Context, b *sql.Binding, opts plan.ExecOpts) (*plan.Result, Route, error) {
	res, err := sql.ExecCtx(ctx, s.cat, b, opts, false)
	if err != nil {
		s.noteCtxErr(err)
		return nil, RouteDDL, err
	}
	s.mu.Lock()
	s.ddlRun++
	s.mu.Unlock()
	var meter *device.Meter
	if res != nil {
		meter = res.Meter
	}
	s.Totals.Merge(meter)
	return res, RouteDDL, nil
}

func (s *Scheduler) execClassic(ctx context.Context, b *sql.Binding, opts plan.ExecOpts) (*plan.Result, Route, error) {
	select {
	case s.cpuSlots <- struct{}{}:
	case <-ctx.Done():
		s.noteCancelled()
		return nil, RouteClassic, ctx.Err()
	}
	defer func() { <-s.cpuSlots }()

	s.mu.Lock()
	s.activeClassic++
	if s.activeClassic > s.peakClassic {
		s.peakClassic = s.activeClassic
	}
	t := s.activeClassic
	arDraw := float64(s.activeAR) * s.avgDrawLocked()
	granted := 0
	if opts.Workers <= 0 {
		opts.Workers = s.workerBudgetLocked(opts.Threads)
		granted = opts.Workers
	}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.activeClassic--
		s.classicRun++
		s.releaseWorkersLocked(granted)
		s.mu.Unlock()
	}()

	res, err := sql.ExecCtx(ctx, s.cat, b, opts, true)
	if err != nil {
		s.noteCtxErr(err)
		return nil, RouteClassic, err
	}
	if res.Meter != nil {
		stretch := ClassicStretchThreads(s.cat.System(), t, opts.Threads, arDraw)
		res.Meter.CPU = time.Duration(float64(res.Meter.CPU) * stretch)
	}
	s.Totals.Merge(res.Meter)
	return res, RouteClassic, nil
}

func (s *Scheduler) execAR(ctx context.Context, b *sql.Binding, opts plan.ExecOpts) (*plan.Result, Route, error) {
	// Admission control: bound the wait queue, fail fast beyond it.
	s.mu.Lock()
	if s.waitingAR >= s.arQueue {
		s.rejectedAR++
		waiting := s.waitingAR
		s.mu.Unlock()
		return nil, RouteAR, &OverloadedError{Waiting: waiting, Queue: s.arQueue}
	}
	s.waitingAR++
	if s.waitingAR > s.peakWaitingAR {
		s.peakWaitingAR = s.waitingAR
	}
	s.mu.Unlock()

	waitStart := time.Now()
	select {
	case s.gpuSlots <- struct{}{}:
	case <-ctx.Done():
		// Vacate the admission queue: the cancelled query must not hold a
		// waiting slot against later arrivals.
		s.mu.Lock()
		s.waitingAR--
		s.cancelled++
		s.mu.Unlock()
		return nil, RouteAR, ctx.Err()
	}
	if s.onQueueWait != nil {
		s.onQueueWait(time.Since(waitStart))
	}
	s.mu.Lock()
	s.waitingAR--
	s.activeAR++
	if s.activeAR > s.peakAR {
		s.peakAR = s.activeAR
	}
	granted := 0
	if opts.Workers <= 0 {
		// The refinement subplan runs on the CPU pool like classic streams.
		opts.Workers = s.workerBudgetLocked(opts.Threads)
		granted = opts.Workers
	}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.activeAR--
		s.arRun++
		s.releaseWorkersLocked(granted)
		s.mu.Unlock()
		<-s.gpuSlots
	}()

	res, err := sql.ExecCtx(ctx, s.cat, b, opts, false)
	if err != nil {
		s.noteCtxErr(err)
		return nil, RouteAR, err
	}
	if res.Meter != nil {
		s.mu.Lock()
		s.drawSum += HostDraw(s.cat.System(), res.Meter)
		s.drawN++
		s.mu.Unlock()
	}
	s.Totals.Merge(res.Meter)
	return res, RouteAR, nil
}

// Scheduler's per-device ledger implements plan.DeviceGate.
var _ plan.DeviceGate = (*Scheduler)(nil)

// streamFor returns the admission slot of one simulated partition device,
// creating it on first use.
func (s *Scheduler) streamFor(device int) chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.devStreams == nil {
		s.devStreams = make(map[int]chan struct{})
	}
	ch, ok := s.devStreams[device]
	if !ok {
		ch = make(chan struct{}, 1)
		s.devStreams[device] = ch
	}
	return ch
}

// AcquireStream implements plan.DeviceGate: it blocks until the partition's
// device stream is free (each simulated device executes one kernel sequence
// at a time, exactly like the single-GPU stream of Fig 11) or ctx is done.
// Scans of distinct partitions overlap freely — the way past one device's
// memory wall is N partitions with N independent streams.
func (s *Scheduler) AcquireStream(ctx context.Context, device int) (func(), error) {
	ch := s.streamFor(device)
	select {
	case ch <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	s.mu.Lock()
	s.partitionScans++
	s.mu.Unlock()
	return func() { <-ch }, nil
}

// PartitionScans returns how many A&R partition scans have run on a
// partition device stream.
func (s *Scheduler) PartitionScans() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.partitionScans
}

func (s *Scheduler) noteCancelled() {
	s.mu.Lock()
	s.cancelled++
	s.mu.Unlock()
}

// noteCtxErr counts an executor failure as a cancellation when it is the
// context's own error (cooperative checkpoint abort).
func (s *Scheduler) noteCtxErr(err error) {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		s.noteCancelled()
	}
}

func (s *Scheduler) avgDrawLocked() float64 {
	if s.drawN == 0 {
		// Warm-up seed: no A&R query has completed yet, but active A&R
		// streams still draw host bandwidth. Assume one per-thread share
		// (refinement) plus half the bus (DMA) — the upper end of what one
		// stream sustains, so warm-up over-charges contention slightly
		// rather than omitting it; the estimate converges to the measured
		// average after the first completion.
		sys := s.cat.System()
		return sys.CPU.PerThreadBW + 0.5*sys.Bus.BW
	}
	return s.drawSum / float64(s.drawN)
}

// SchedStats is a point-in-time snapshot of scheduler counters.
type SchedStats struct {
	ClassicRun, ARRun, DDLRun, RejectedAR int64
	Cancelled                             int64
	ActiveClassic, ActiveAR, WaitingAR    int
	PeakClassic, PeakAR                   int
	// PeakWaitingAR is the admission queue's high-water mark: the largest
	// number of A&R queries ever waiting for a stream at once.
	PeakWaitingAR int
	AvgARHostDraw float64 // bytes/s one A&R stream draws from host memory
	// PartitionScans counts A&R partition scans admitted onto per-partition
	// device streams by scatter-gather executions.
	PartitionScans int64
	// ModePickAR/ModePickClassic count auto-mode cost-model decisions.
	ModePickAR, ModePickClassic int64
}

// Stats returns the current counters.
func (s *Scheduler) Stats() SchedStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SchedStats{
		ClassicRun: s.classicRun, ARRun: s.arRun, DDLRun: s.ddlRun, RejectedAR: s.rejectedAR,
		Cancelled:     s.cancelled,
		ActiveClassic: s.activeClassic, ActiveAR: s.activeAR, WaitingAR: s.waitingAR,
		PeakClassic: s.peakClassic, PeakAR: s.peakAR, PeakWaitingAR: s.peakWaitingAR,
		AvgARHostDraw:  s.avgDrawLocked(),
		PartitionScans: s.partitionScans,
		ModePickAR:     s.modePickAR, ModePickClassic: s.modePickClassic,
	}
}

// String renders the stable one-line \stats format (documented in the
// README): every field is `name value`, comma-separated, so operators and
// scripts can parse it without caring about future additions, which only
// ever append new `name value` pairs.
func (st SchedStats) String() string {
	return fmt.Sprintf("scheduler: classic %d run (peak %d concurrent), ar %d run (peak %d concurrent), ddl %d, rejected %d, cancelled %d, queue depth %d (high-water %d), partition scans %d, cost picks ar %d, cost picks classic %d",
		st.ClassicRun, st.PeakClassic, st.ARRun, st.PeakAR, st.DDLRun, st.RejectedAR, st.Cancelled, st.WaitingAR, st.PeakWaitingAR, st.PartitionScans, st.ModePickAR, st.ModePickClassic)
}

// ClassicStretch returns the factor by which one single-threaded classic
// stream's CPU time stretches when t such streams share the memory wall
// with arHostDraw bytes/s of A&R host traffic (§VI-E). With one stream and
// no A&R draw the factor is 1; past the wall it grows as
// t·perThread/(aggregate−draw). The available bandwidth never drops below
// one per-thread share, so a lone stream always makes progress.
func ClassicStretch(sys *device.System, t int, arHostDraw float64) float64 {
	return ClassicStretchThreads(sys, t, 1, arHostDraw)
}

// ClassicStretchThreads generalizes ClassicStretch to streams running w
// threads each: a stream alone sees min(w·perThread, aggregate) (the
// bandwidth its own meter already charged), while t such streams sharing
// the wall each get a 1/t share of what the A&R draw leaves. The stretch
// is the ratio, so concurrent multi-threaded streams can never collectively
// exceed the aggregate bandwidth.
func ClassicStretchThreads(sys *device.System, t, w int, arHostDraw float64) float64 {
	if t < 1 {
		t = 1
	}
	alone := sys.CPU.EffectiveBW(w)
	avail := sys.CPU.AggregateBW - arHostDraw
	if avail < sys.CPU.PerThreadBW {
		avail = sys.CPU.PerThreadBW
	}
	shared := avail / float64(t)
	if shared > alone {
		shared = alone
	}
	return alone / shared
}

// HostDraw returns the host-memory bandwidth (bytes/s) one saturated A&R
// stream with the given per-query meter draws from the CPU's memory system:
// its refinement phase consumes a per-thread share for the CPU fraction of
// the query, and DMA reads/writes host memory during the PCI fraction.
func HostDraw(sys *device.System, m *device.Meter) float64 {
	total := m.Total().Seconds()
	if total <= 0 {
		return 0
	}
	cpuFrac := m.CPU.Seconds() / total
	pciFrac := m.PCI.Seconds() / total
	return cpuFrac*sys.CPU.PerThreadBW + pciFrac*sys.Bus.BW
}
