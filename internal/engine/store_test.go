package engine

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/bat"
	"repro/internal/device"
	"repro/internal/plan"
)

func dmlCatalog(t *testing.T) *plan.Catalog {
	t.Helper()
	c := plan.NewCatalog(device.PaperSystem())
	tbl := plan.NewTable("t")
	vals := make([]int64, 1000)
	for i := range vals {
		vals[i] = int64(i)
	}
	if err := tbl.AddColumn("v", bat.NewDense(vals, bat.Width32)); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTable(tbl); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Decompose("t", "v", 8); err != nil {
		t.Fatal(err)
	}
	return c
}

func mustCount(t *testing.T, sess *Session, src string) int64 {
	t.Helper()
	res, err := sess.Query(context.Background(), src)
	if err != nil {
		t.Fatalf("%s: %v", src, err)
	}
	if len(res.Rows) != 1 || len(res.Rows[0].Vals) != 1 {
		t.Fatalf("%s: unexpected shape", src)
	}
	return res.Rows[0].Vals[0]
}

// TestPlanCacheInvalidationOnSchemaChange is the epoch regression test: a
// cached binding must not survive its table being dropped and re-created
// with different scales.
func TestPlanCacheInvalidationOnSchemaChange(t *testing.T) {
	ctx := context.Background()
	c := dmlCatalog(t)
	eng := New(c, Options{})
	sess := eng.Session()
	defer sess.Close()

	const q = "select count(*) from t where v < 100"
	if got := mustCount(t, sess, q); got != 100 {
		t.Fatalf("count = %d, want 100", got)
	}
	if got := mustCount(t, sess, q); got != 100 { // cache hit
		t.Fatalf("count = %d, want 100", got)
	}
	if st := eng.Cache().Stats(); st.Hits == 0 {
		t.Fatal("expected a cache hit before the schema change")
	}

	// Drop and re-create t with a decimal2 column of the same name: the
	// literal 100 now aligns to 10000 — a stale binding would use 100.
	if err := c.DropTable("t"); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Query(ctx, "create table t (v decimal2)"); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Query(ctx, "insert into t values (50.00), (150.00)"); err != nil {
		t.Fatal(err)
	}
	if got := mustCount(t, sess, q); got != 1 {
		t.Fatalf("count after re-create = %d, want 1 (stale binding served?)", got)
	}
	if st := eng.Cache().Stats(); st.Invalidations == 0 {
		t.Fatal("no cache invalidation recorded")
	}
}

// TestPreparedStatementRecompilesAfterSchemaChange covers the prepared
// path of the same regression.
func TestPreparedStatementRecompilesAfterSchemaChange(t *testing.T) {
	ctx := context.Background()
	c := dmlCatalog(t)
	eng := New(c, Options{})
	sess := eng.Session()
	defer sess.Close()

	st, err := sess.Prepare(ctx, "select count(*) from t where v < 100")
	if err != nil {
		t.Fatal(err)
	}
	if res, err := st.Exec(ctx); err != nil || res.Rows[0].Vals[0] != 100 {
		t.Fatalf("prepared exec: %v %v", res, err)
	}
	if err := c.DropTable("t"); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Query(ctx, "create table t (v decimal2)"); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Query(ctx, "insert into t values (50.00), (150.00)"); err != nil {
		t.Fatal(err)
	}
	res, err := st.Exec(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0].Vals[0]; got != 1 {
		t.Fatalf("prepared count after re-create = %d, want 1", got)
	}
}

// TestDMLAndStatsSurface drives the acceptance checklist through the
// session surface: INSERT and DELETE through SQL, \merge through Meta,
// and \stats showing the store counters.
func TestDMLAndStatsSurface(t *testing.T) {
	ctx := context.Background()
	eng := New(dmlCatalog(t), Options{})
	sess := eng.Session()
	defer sess.Close()

	if _, err := sess.Query(ctx, "insert into t values (2000), (2001), (2002)"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Query(ctx, "delete from t where v = 0"); err != nil {
		t.Fatal(err)
	}
	if got := mustCount(t, sess, "select count(*) from t where v >= 0"); got != 1002 {
		t.Fatalf("count = %d, want 1002", got)
	}

	out, _, _, err := sess.Meta(ctx, `\stats`)
	if err != nil {
		t.Fatal(err)
	}
	stats := strings.Join(out, "\n")
	if !strings.Contains(stats, "3 delta rows") || !strings.Contains(stats, "2 segments") || !strings.Contains(stats, "1 deleted") {
		t.Fatalf("\\stats missing store state:\n%s", stats)
	}

	out, _, _, err = sess.Meta(ctx, `\merge t`)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || !strings.Contains(out[0], "merged t: 3 delta rows") {
		t.Fatalf("\\merge output %v", out)
	}
	if got := mustCount(t, sess, "select count(*) from t where v >= 0"); got != 1002 {
		t.Fatalf("count after merge = %d, want 1002", got)
	}
	out, _, _, _ = sess.Meta(ctx, `\stats`)
	stats = strings.Join(out, "\n")
	if !strings.Contains(stats, "1 merges") || !strings.Contains(stats, "0 delta rows") {
		t.Fatalf("\\stats after merge:\n%s", stats)
	}
	if !strings.Contains(stats, "merge shipped") || strings.Contains(stats, "merge shipped 0 B") {
		t.Fatalf("\\stats shows no merge bus traffic:\n%s", stats)
	}

	// Idempotent \merge reports nothing to do.
	out, _, _, _ = sess.Meta(ctx, `\merge t`)
	if len(out) != 1 || !strings.Contains(out[0], "nothing to merge") {
		t.Fatalf("repeat \\merge output %v", out)
	}
}

// TestBackgroundMergerCompacts exercises StartMaintenance end to end.
func TestBackgroundMergerCompacts(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	eng := New(dmlCatalog(t), Options{MergeThreshold: 10, MergeInterval: 2 * time.Millisecond})
	eng.StartMaintenance(ctx)
	sess := eng.Session()
	defer sess.Close()

	if _, err := sess.Query(ctx, "insert into t values (1), (2), (3), (4), (5), (6), (7), (8), (9), (10), (11), (12)"); err != nil {
		t.Fatal(err)
	}
	tbl, err := eng.Catalog().Table("t")
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for tbl.DeltaLive() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("background merger never compacted; %d delta rows left", tbl.DeltaLive())
		}
		time.Sleep(time.Millisecond)
	}
	if st := tbl.Stats(); st.AutoMerges == 0 {
		t.Fatalf("merge not attributed to the background merger: %+v", st)
	}
	if got := mustCount(t, sess, "select count(*) from t where v >= 0"); got != 1012 {
		t.Fatalf("count after background merge = %d, want 1012", got)
	}
}

// TestBackgroundMergerSurfacesFailures: a merge that cannot proceed (an
// indexed dimension key broken by deletes) must be counted, shown in
// \stats, and not hot-retried until the table changes again.
func TestBackgroundMergerSurfacesFailures(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c := plan.NewCatalog(device.PaperSystem())
	dim := plan.NewTable("dim")
	ids := make([]int64, 100)
	for i := range ids {
		ids[i] = int64(i)
	}
	if err := dim.AddColumn("id", bat.NewDense(ids, bat.Width32)); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTable(dim); err != nil {
		t.Fatal(err)
	}
	if err := c.BuildFKIndex("dim", "id"); err != nil {
		t.Fatal(err)
	}
	eng := New(c, Options{MergeThreshold: 1, MergeInterval: 2 * time.Millisecond})
	eng.StartMaintenance(ctx)
	sess := eng.Session()
	defer sess.Close()

	// Break the dense key, then push the delta over the threshold: the
	// background merge must fail (compaction would punch a hole) and say so.
	if _, err := sess.Query(ctx, "delete from dim where id = 3"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Query(ctx, "insert into dim values (100), (101)"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		eng.mu.Lock()
		failures := eng.mergeFailures
		eng.mu.Unlock()
		if failures > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background merge failure never recorded")
		}
		time.Sleep(time.Millisecond)
	}
	out, _, _, err := sess.Meta(ctx, `\stats`)
	if err != nil {
		t.Fatal(err)
	}
	stats := strings.Join(out, "\n")
	if !strings.Contains(stats, "maintenance:") || !strings.Contains(stats, "dense key") {
		t.Fatalf("\\stats does not surface the merge failure:\n%s", stats)
	}
	// The failed table must not be hot-retried: with an unchanged epoch
	// the failure count stays put across many intervals.
	eng.mu.Lock()
	before := eng.mergeFailures
	eng.mu.Unlock()
	time.Sleep(20 * time.Millisecond)
	eng.mu.Lock()
	after := eng.mergeFailures
	eng.mu.Unlock()
	if after != before {
		t.Fatalf("failed merge hot-retried: %d -> %d failures with no table change", before, after)
	}
}

// TestDecompositionRecoversAfterEmptyingMerge: deleting every row and
// merging drops the (undecomposable-when-empty) decompositions; once new
// rows arrive, the background merger must re-decompose without waiting for
// the delta threshold, restoring A&R routing.
func TestDecompositionRecoversAfterEmptyingMerge(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c := dmlCatalog(t)
	eng := New(c, Options{MergeThreshold: 100000, MergeInterval: 2 * time.Millisecond})
	eng.StartMaintenance(ctx)
	sess := eng.Session()
	defer sess.Close()

	if _, err := sess.Query(ctx, "delete from t"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.MergeTable(nil, "t", false); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Query(ctx, "insert into t values (5), (50)"); err != nil {
		t.Fatal(err)
	}
	tbl, _ := c.Table("t")
	deadline := time.Now().Add(5 * time.Second)
	for tbl.PendingDecompose() || tbl.DeltaLive() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("background merger never re-decomposed the refilled table")
		}
		time.Sleep(time.Millisecond)
	}
	arSess := eng.SessionFor(ModeAR)
	defer arSess.Close()
	res, err := arSess.Query(ctx, "select count(*) from t where v between 0 and 100")
	if err != nil {
		t.Fatalf("A&R routing did not recover: %v", err)
	}
	if res.Rows[0].Vals[0] != 2 {
		t.Fatalf("count = %d, want 2", res.Rows[0].Vals[0])
	}
}
