package engine

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/plan"
	"repro/internal/spatial"
	"repro/internal/sql"
)

// testCatalog builds a small spatial catalog with decomposed columns.
func testCatalog(t testing.TB) *plan.Catalog {
	t.Helper()
	c := plan.NewCatalog(device.PaperSystem())
	d := spatial.Generate(50_000, 7)
	if err := d.Load(c); err != nil {
		t.Fatal(err)
	}
	if err := d.Decompose(c); err != nil {
		t.Fatal(err)
	}
	return c
}

const tripCount = "select count(lon) from trips where lon between 2.68288 and 2.70228 and lat between 50.4222 and 50.4485"

// TestSchedulerAdmissionControl occupies the single GPU stream, fills the
// bounded wait queue, and checks that (a) a forced-A&R query is rejected
// with a typed *OverloadedError carrying the queue state and (b) an
// auto-mode query spills to the classic pool instead of failing.
func TestSchedulerAdmissionControl(t *testing.T) {
	c := testCatalog(t)
	s := NewScheduler(c, SchedConfig{CPUWorkers: 2, GPUStreams: 1, ARQueue: 1})
	b, err := sql.Compile(c, tripCount)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	s.gpuSlots <- struct{}{} // occupy the GPU stream
	waiterDone := make(chan error, 1)
	go func() {
		_, _, err := s.Exec(ctx, b, plan.ExecOpts{}, ModeAR)
		waiterDone <- err
	}()
	// Wait for the queued query to register.
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().WaitingAR == 0 {
		if time.Now().After(deadline) {
			t.Fatal("queued A&R query never registered as waiting")
		}
		time.Sleep(time.Millisecond)
	}

	_, _, err = s.Exec(ctx, b, plan.ExecOpts{}, ModeAR)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("queue full: want ErrOverloaded, got %v", err)
	}
	var oe *OverloadedError
	if !errors.As(err, &oe) {
		t.Fatalf("want typed *OverloadedError, got %T", err)
	}
	if oe.Waiting != 1 || oe.Queue != 1 {
		t.Fatalf("overload detail: waiting %d queue %d, want 1/1", oe.Waiting, oe.Queue)
	}
	res, route, err := s.Exec(ctx, b, plan.ExecOpts{}, ModeAuto)
	if err != nil {
		t.Fatalf("auto mode should spill to classic, got %v", err)
	}
	if route != RouteClassic {
		t.Fatalf("auto-mode spill: want RouteClassic, got %v", route)
	}
	if res == nil || len(res.Rows) == 0 {
		t.Fatal("spilled query returned no rows")
	}

	<-s.gpuSlots // release the stream; the waiter may now run
	if err := <-waiterDone; err != nil {
		t.Fatalf("queued A&R query failed after release: %v", err)
	}
	st := s.Stats()
	if st.RejectedAR == 0 {
		t.Fatal("expected at least one rejected A&R admission")
	}
	if st.ARRun != 1 {
		t.Fatalf("expected exactly 1 A&R run, got %d", st.ARRun)
	}
}

// TestSchedulerChargesMemoryWallContention checks the Fig 11 law: a classic
// query that runs while other classic streams saturate the wall must be
// charged more simulated CPU time than a lone query.
func TestSchedulerChargesMemoryWallContention(t *testing.T) {
	sys := device.PaperSystem()
	if ClassicStretch(sys, 1, 0) != 1 {
		t.Fatal("a lone stream must not stretch")
	}
	agg := sys.CPU.AggregateBW / sys.CPU.PerThreadBW // streams at the wall
	if s := ClassicStretch(sys, 32, 0); s <= 1 || s < 32/agg*0.99 {
		t.Fatalf("32 streams should stretch by ~%.1f, got %.2f", 32/agg, s)
	}
	// A&R host draw shrinks the available bandwidth further.
	m := device.NewMeter(sys)
	m.CPU, m.PCI = 500_000_000, 500_000_000 // 50% CPU / 50% PCI
	draw := HostDraw(sys, m)
	wantDraw := 0.5*sys.CPU.PerThreadBW + 0.5*sys.Bus.BW
	if diff := draw - wantDraw; diff > 1 || diff < -1 {
		t.Fatalf("host draw %.3g, want %.3g", draw, wantDraw)
	}
	if ClassicStretch(sys, 32, draw) <= ClassicStretch(sys, 32, 0) {
		t.Fatal("A&R draw must stretch contended classic streams further")
	}
	// Multi-threaded streams: one 16-thread stream alone saturates the wall
	// (its own meter charges that), so 8 such streams each get 1/8 of the
	// aggregate and must stretch by 8x — they can never collectively exceed
	// the wall.
	if s := ClassicStretchThreads(sys, 8, 16, 0); s < 7.99 || s > 8.01 {
		t.Fatalf("8 wall-saturating streams should stretch 8x, got %.2f", s)
	}
	if ClassicStretchThreads(sys, 1, 16, 0) != 1 {
		t.Fatal("a lone multi-threaded stream must not stretch")
	}
}

func TestPlanCacheLRUAndEviction(t *testing.T) {
	pc := NewPlanCache(2)
	a, b, c := &sql.Binding{}, &sql.Binding{}, &sql.Binding{}
	pc.Put("a", a, nil)
	pc.Put("b", b, nil)
	if got, _, ok := pc.Get("a", nil); !ok || got != a {
		t.Fatal("expected hit on a")
	}
	pc.Put("c", c, nil) // evicts b (least recently used)
	if _, _, ok := pc.Get("b", nil); ok {
		t.Fatal("b should have been evicted")
	}
	if got, _, ok := pc.Get("a", nil); !ok || got != a {
		t.Fatal("a should have survived eviction")
	}
	if got, _, ok := pc.Get("c", nil); !ok || got != c {
		t.Fatal("c should be cached")
	}
	st := pc.Stats()
	if st.Hits != 3 || st.Misses != 1 || st.Evictions != 1 || st.Len != 2 {
		t.Fatalf("unexpected stats %+v", st)
	}
	// Zero capacity disables caching.
	off := NewPlanCache(0)
	off.Put("x", a, nil)
	if _, _, ok := off.Get("x", nil); ok {
		t.Fatal("disabled cache must miss")
	}
}
