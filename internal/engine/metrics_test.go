package engine

import (
	"context"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// metricValue extracts one sample (by exact series name, including labels)
// from a Prometheus-text exposition.
func metricValue(t *testing.T, lines []string, series string) float64 {
	t.Helper()
	for _, l := range lines {
		if rest, ok := strings.CutPrefix(l, series+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("series %s: bad value %q", series, rest)
			}
			return v
		}
	}
	t.Fatalf("series %s not found in exposition:\n%s", series, strings.Join(lines, "\n"))
	return 0
}

// TestMetricsExactUnderConcurrentScrape is the registry stress test: many
// sessions querying concurrently while another goroutine scrapes \metrics
// mid-flight. The counters must come out exact — no lost updates, no
// torn reads. Run under -race in CI.
func TestMetricsExactUnderConcurrentScrape(t *testing.T) {
	eng := New(starEngineCatalog(t), Options{})
	ctx := context.Background()
	const workers, per = 6, 25

	done := make(chan struct{})
	var scrapes int
	go func() {
		defer close(done)
		for {
			select {
			case <-done:
				return
			default:
				if len(eng.Metrics().Text()) == 0 {
					return
				}
				scrapes++
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess := eng.Session()
			defer sess.Close()
			for i := 0; i < per; i++ {
				if _, err := sess.Query(ctx, starQuery); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	done <- struct{}{}
	<-done

	lines := eng.Metrics().Text()
	total := metricValue(t, lines, `ar_queries_total{route="ar"}`) +
		metricValue(t, lines, `ar_queries_total{route="classic"}`) +
		metricValue(t, lines, `ar_queries_total{route="ddl"}`)
	if total != workers*per {
		t.Errorf("ar_queries_total sums to %v, want %d", total, workers*per)
	}
	if got := metricValue(t, lines, "ar_query_errors_total"); got != 0 {
		t.Errorf("ar_query_errors_total = %v, want 0", got)
	}
	// Latency histograms observed exactly one sample per query.
	hist := metricValue(t, lines, `ar_query_latency_seconds_count{route="ar"}`) +
		metricValue(t, lines, `ar_query_latency_seconds_count{route="classic"}`) +
		metricValue(t, lines, `ar_query_latency_seconds_count{route="ddl"}`)
	if hist != workers*per {
		t.Errorf("latency histogram count sums to %v, want %d", hist, workers*per)
	}
}

// TestMetricsFamilies checks the engine registry exposes the documented
// metric families with plausible values after some activity.
func TestMetricsFamilies(t *testing.T) {
	eng := New(starEngineCatalog(t), Options{})
	ctx := context.Background()
	sess := eng.Session()
	defer sess.Close()
	if _, err := sess.Query(ctx, starQuery); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Query(ctx, starQuery); err != nil { // plan-cache hit
		t.Fatal(err)
	}
	lines, _, handled, err := sess.Meta(ctx, `\metrics`)
	if err != nil || !handled {
		t.Fatalf("\\metrics: handled=%v err=%v", handled, err)
	}
	text := strings.Join(lines, "\n")
	for _, fam := range []string{
		"# TYPE ar_queries_total counter",
		"# TYPE ar_query_latency_seconds histogram",
		"# TYPE ar_sessions_active gauge",
		"# TYPE ar_sched_queue_depth gauge",
		"# TYPE ar_sched_queue_high_water gauge",
		"# TYPE ar_sched_rejected_total counter",
		"# TYPE ar_sched_cancelled_total counter",
		"# TYPE ar_plan_cache_hits_total counter",
		"# TYPE ar_store_segments gauge",
		"# TYPE ar_sim_device_seconds_total counter",
		"# TYPE ar_table_base_rows gauge",
		`ar_table_base_rows{table="f"} 2000`,
		"# TYPE ar_slow_queries_total counter",
	} {
		if !strings.Contains(text, fam) {
			t.Errorf("\\metrics missing %q", fam)
		}
	}
	if got := metricValue(t, lines, "ar_plan_cache_hits_total"); got < 1 {
		t.Errorf("ar_plan_cache_hits_total = %v after a repeated query", got)
	}
	if got := metricValue(t, lines, "ar_sessions_active"); got != 1 {
		t.Errorf("ar_sessions_active = %v, want 1", got)
	}
}

// TestExplainAnalyzeMeta runs \explain analyze on a multi-join query with
// an OR filter group and checks the output: the static plan listing
// followed by a trace annotating each stage with est-vs-actual rows and
// the simulated GPU/CPU/PCI split.
func TestExplainAnalyzeMeta(t *testing.T) {
	eng := New(starEngineCatalog(t), Options{})
	sess := eng.Session()
	defer sess.Close()
	ctx := context.Background()

	const q = `select count(*) as n from f join d1 on f.fk1 = d1.id join d2 on f.fk2 = d2.id where (v < 500 or v > 1500) and d1.a < 5`
	lines, quit, handled, err := sess.Meta(ctx, `\explain analyze `+q)
	if err != nil || quit || !handled {
		t.Fatalf("Meta explain analyze: quit=%v handled=%v err=%v", quit, handled, err)
	}
	text := strings.Join(lines, "\n")
	for _, want := range []string{
		"mode=ar",           // static plan header
		"trace: mode=ar",    // trace header follows the plan
		"GPU", "CPU", "PCI", // device split in the header
		"est=", " act=", // est-vs-actual on the filter stages
		"uselectanyapproximate", // the OR group ran approximately...
		"uselectanyrefine",      // ...and was refined
		"leftjoinapproximate",
		"candidates ", "false-positive rate",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("\\explain analyze missing %q:\n%s", want, text)
		}
	}
	// Every traced actual is annotated onto a stage line with a wall/device
	// split.
	if !strings.Contains(text, "| wall ") {
		t.Errorf("\\explain analyze has no per-stage device split:\n%s", text)
	}
	// Analyze executes; a write statement must be refused, not executed.
	if _, _, _, err := sess.Meta(ctx, `\explain analyze insert into f values (1, 2, 3)`); err == nil {
		t.Error("\\explain analyze of a write statement did not fail")
	}
	// The plain query result is unaffected by an analyze run having
	// happened (analyze shares the scheduler and cache).
	res, err := sess.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Error("ordinary query carries a trace without the slow log armed")
	}
}

// TestSlowLogMeta arms the slow-query log through \slow, runs a query over
// the threshold, and checks the retained entry carries its full trace.
func TestSlowLogMeta(t *testing.T) {
	eng := New(starEngineCatalog(t), Options{})
	sess := eng.Session()
	defer sess.Close()
	ctx := context.Background()

	if _, _, _, err := sess.Meta(ctx, `\slow nonsense`); err == nil {
		t.Error("\\slow with a bad duration did not fail")
	}
	lines, _, _, err := sess.Meta(ctx, `\slow 1ns`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(lines, "\n"), "slow-query log on") {
		t.Errorf("arming reply = %v", lines)
	}
	if _, err := sess.Query(ctx, starQuery); err != nil {
		t.Fatal(err)
	}
	lines, _, _, err = sess.Meta(ctx, `\slow`)
	if err != nil {
		t.Fatal(err)
	}
	text := strings.Join(lines, "\n")
	for _, want := range []string{"threshold 1ns", "1 retained", starQuery, "trace: mode="} {
		if !strings.Contains(text, want) {
			t.Errorf("\\slow listing missing %q:\n%s", want, text)
		}
	}
	if got := metricValue(t, eng.Metrics().Text(), "ar_slow_queries_total"); got != 1 {
		t.Errorf("ar_slow_queries_total = %v, want 1", got)
	}
	if _, _, _, err := sess.Meta(ctx, `\slow off`); err != nil {
		t.Fatal(err)
	}
	if eng.SlowLog().Enabled() {
		t.Error("\\slow off left the log armed")
	}
}

// TestStatsSchedulerLine pins the documented one-line scheduler format in
// \stats — scripts parse it, so the shape is part of the surface.
func TestStatsSchedulerLine(t *testing.T) {
	eng := New(starEngineCatalog(t), Options{})
	sess := eng.Session()
	defer sess.Close()
	ctx := context.Background()
	if _, err := sess.Query(ctx, starQuery); err != nil {
		t.Fatal(err)
	}
	lines, _, _, err := sess.Meta(ctx, `\stats`)
	if err != nil {
		t.Fatal(err)
	}
	var sched string
	for _, l := range lines {
		if strings.HasPrefix(l, "scheduler: ") {
			sched = l
			break
		}
	}
	if sched == "" {
		t.Fatalf("\\stats has no scheduler line:\n%s", strings.Join(lines, "\n"))
	}
	for _, want := range []string{
		"classic ", " run (peak ", " concurrent), ar ", "ddl ",
		"rejected ", "cancelled ", "queue depth ", "(high-water ",
	} {
		if !strings.Contains(sched, want) {
			t.Errorf("scheduler line missing %q: %s", want, sched)
		}
	}
}
