package engine

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/sql"
)

// TestParallelSchedulerTotalsStress races concurrent A&R and classic
// streams against the scheduler's stats surfaces. It pins the satellite
// invariant that Scheduler.Totals.Merge is called outside s.mu on purpose:
// device.SharedMeter is internally synchronized, so the merges must be
// race-free and lose no query. Run with -race.
func TestParallelSchedulerTotalsStress(t *testing.T) {
	c := dmlCatalog(t)
	eng := New(c, Options{Threads: 3, Sched: SchedConfig{CPUWorkers: 4, GPUStreams: 2, ARQueue: 64}})
	ctx := context.Background()
	const q = "select count(*), sum(v) from t where v < 900"

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	const streams, perStream = 8, 25
	for r := 0; r < streams; r++ {
		wg.Add(1)
		mode := ModeClassic
		if r%2 == 0 {
			mode = ModeAR
		}
		go func(mode Mode) {
			defer wg.Done()
			sess := eng.SessionFor(mode)
			defer sess.Close()
			for i := 0; i < perStream; i++ {
				if _, err := sess.Query(ctx, q); err != nil {
					errs <- err
					return
				}
			}
		}(mode)
	}
	// Stats readers snapshot Totals and scheduler counters mid-flight.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = eng.Scheduler().Stats()
				_ = eng.Totals().Total()
				_ = strings.Join(eng.StatsLines(nil), "\n")
			}
		}
	}()
	wg.Wait()
	close(stop)
	readers.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if _, _, _, queries := eng.Totals().Totals(); queries != streams*perStream {
		t.Fatalf("Totals merged %d queries, want %d", queries, streams*perStream)
	}
	st := eng.Scheduler().Stats()
	if st.ClassicRun+st.ARRun != streams*perStream {
		t.Fatalf("scheduler ran %d+%d queries, want %d", st.ClassicRun, st.ARRun, streams*perStream)
	}
}

// TestPlanCacheStalePutWindow is the staleness-window regression: a table
// dropped and re-created *between* Compile and PlanCache.Put must not let
// the cache serve the stale binding. Two properties are pinned: the
// engine's Put-side guard (epochs captured before compilation fail
// validation after the swap, so the binding is refused at Put), and the
// Get-side backstop (even an entry forced into the cache with stale deps
// is invalidated on its first hit instead of being served).
func TestPlanCacheStalePutWindow(t *testing.T) {
	ctx := context.Background()
	c := dmlCatalog(t)
	eng := New(c, Options{})
	sess := eng.Session()
	defer sess.Close()

	const q = "select count(*) from t where v < 100"
	key := sql.Normalize(q)

	// Replicate engine.compileCached's window step by step: snapshot the
	// epochs, compile — and only then let the DDL race in.
	pre := c.SchemaEpochs()
	b, err := sql.Compile(c, q)
	if err != nil {
		t.Fatal(err)
	}
	deps := map[string]uint64{"t": pre["t"]}

	// The race: t is dropped and re-created (v becomes decimal2, so the
	// literal 100 now aligns to 10000) before the binding reaches the cache.
	if err := c.DropTable("t"); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Query(ctx, "create table t (v decimal2)"); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Query(ctx, "insert into t values (50.00), (150.00)"); err != nil {
		t.Fatal(err)
	}

	// Put-side guard: the pre-compile epochs no longer validate, so the
	// engine must refuse to cache the binding.
	if eng.depsValid(deps) {
		t.Fatal("pre-compile epochs still validate after drop/re-create")
	}

	// Get-side backstop: even if a legacy writer forced the entry in, the
	// first hit must invalidate it rather than serve it.
	eng.cache.Put(key, b, deps)
	if got := mustCount(t, sess, q); got != 1 {
		t.Fatalf("count after stale Put = %d, want 1 (stale binding served)", got)
	}
	if st := eng.Cache().Stats(); st.Invalidations == 0 {
		t.Fatal("stale entry was not invalidated on first hit")
	}

	// And the recompiled entry now in the cache keeps serving the new
	// schema on hits.
	if got := mustCount(t, sess, q); got != 1 {
		t.Fatalf("count on cache hit = %d, want 1", got)
	}
}

// TestParallelWorkerBudgetSplitsPool checks the scheduler's worker
// allocation: a lone query gets min(Threads, pool) workers, queries
// admitted while others are active get their fair share of what the pool
// still has unreserved (never less than one worker), and completed grants
// return to the pool.
func TestParallelWorkerBudgetSplitsPool(t *testing.T) {
	c := dmlCatalog(t)
	s := NewScheduler(c, SchedConfig{CPUWorkers: 8})

	s.mu.Lock()
	s.activeClassic = 1 // self
	if got := s.workerBudgetLocked(4); got != 4 {
		t.Errorf("lone query budget = %d, want 4 (capped by Threads)", got)
	}
	s.releaseWorkersLocked(4)
	if got := s.workerBudgetLocked(16); got != 8 {
		t.Errorf("lone query budget = %d, want 8 (capped by pool)", got)
	}
	// A second arrival while the first holds the whole pool is squeezed to
	// the 1-worker minimum: staggered admissions never oversubscribe past
	// one worker per active query.
	s.activeClassic = 2
	if got := s.workerBudgetLocked(16); got != 1 {
		t.Errorf("budget with pool fully reserved = %d, want 1", got)
	}
	s.releaseWorkersLocked(1)
	s.releaseWorkersLocked(8) // first query finishes
	if s.allocWorkers != 0 {
		t.Fatalf("allocWorkers = %d after all releases, want 0", s.allocWorkers)
	}
	s.activeClassic = 3
	s.activeAR = 1
	if got := s.workerBudgetLocked(16); got != 2 {
		t.Errorf("budget with 4 active = %d, want 2 (8/4)", got)
	}
	s.releaseWorkersLocked(2)
	s.activeClassic = 20
	if got := s.workerBudgetLocked(16); got != 1 {
		t.Errorf("oversubscribed budget = %d, want 1", got)
	}
	s.mu.Unlock()
}
