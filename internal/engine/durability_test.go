package engine

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/plan"
)

func openDurable(t *testing.T, dir string) *Engine {
	t.Helper()
	eng, err := Open(plan.NewCatalog(device.PaperSystem()), Options{DataDir: dir, Fsync: "always"})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// renderBoth runs the statement under the classic executor and the A&R
// executor and asserts the rendered results are byte-identical, returning
// the shared rendering.
func renderBoth(t *testing.T, eng *Engine, src string) []string {
	t.Helper()
	var out [][]string
	for _, mode := range []Mode{ModeClassic, ModeAR} {
		sess := eng.SessionFor(mode)
		res, err := sess.Query(context.Background(), src)
		sess.Close()
		if err != nil {
			t.Fatalf("%s (%s): %v", src, mode, err)
		}
		out = append(out, RenderResult(res, false))
	}
	if strings.Join(out[0], "\n") != strings.Join(out[1], "\n") {
		t.Fatalf("%s: classic and A&R disagree:\n%v\n%v", src, out[0], out[1])
	}
	return out[0]
}

// TestEngineDurableCleanShutdown: a clean Close must leave nothing to
// replay — the WAL is fully checkpointed into segments — and the reopened
// engine must serve the same results from both executors.
func TestEngineDurableCleanShutdown(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	eng := openDurable(t, dir)
	for _, stmt := range []string{
		"create table t (k int, v int)",
		"insert into t values (0, 10), (1, 20), (2, 30), (3, 40)",
		"select bwdecompose(v, 8) from t",
		"insert into t values (4, 50), (5, 60)",
		"delete from t where v >= 55",
	} {
		if _, err := eng.Query(ctx, stmt); err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
	}
	const q = "select count(*), sum(v) from t where v < 45"
	want := renderBoth(t, eng, q)
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil { // Close is idempotent
		t.Fatal(err)
	}

	eng2 := openDurable(t, dir)
	defer eng2.Close()
	rec := eng2.Durability().Recovery()
	if rec.Replayed != 0 || rec.Failed != 0 || rec.TruncatedBytes != 0 {
		t.Fatalf("clean shutdown replayed %+v, want nothing", rec)
	}
	if rec.TablesFromSegments != 1 {
		t.Fatalf("recovered %d tables from segments, want 1", rec.TablesFromSegments)
	}
	if got := renderBoth(t, eng2, q); strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Fatalf("reopened result %v, want %v", got, want)
	}
}

// TestEngineDurableMetaAndMetrics covers the \checkpoint meta command, the
// durability block in \stats, and the registered WAL/checkpoint metrics.
func TestEngineDurableMetaAndMetrics(t *testing.T) {
	ctx := context.Background()

	// Memory-only engines must refuse \checkpoint with a helpful error.
	mem := New(dmlCatalog(t), Options{})
	sess := mem.Session()
	if _, _, handled, err := sess.Meta(ctx, `\checkpoint`); !handled || err == nil || !strings.Contains(err.Error(), "-data") {
		t.Fatalf(`memory \checkpoint: handled=%v err=%v, want -data hint`, handled, err)
	}
	sess.Close()

	eng := openDurable(t, t.TempDir())
	defer eng.Close()
	for _, stmt := range []string{
		"create table t (k int, v int)",
		"insert into t values (1, 2), (3, 4)",
	} {
		if _, err := eng.Query(ctx, stmt); err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
	}
	sess = eng.Session()
	defer sess.Close()
	out, _, handled, err := sess.Meta(ctx, `\checkpoint t`)
	if !handled || err != nil {
		t.Fatalf(`\checkpoint t: handled=%v err=%v`, handled, err)
	}
	if len(out) != 1 || !strings.HasPrefix(out[0], "checkpointed t at lsn") {
		t.Fatalf(`\checkpoint t output %v`, out)
	}
	out, _, _, err = sess.Meta(ctx, `\checkpoint t`)
	if err != nil || len(out) != 1 || !strings.Contains(out[0], "clean") {
		t.Fatalf(`second \checkpoint t output %v, err %v`, out, err)
	}
	var stats string
	for _, line := range eng.StatsLines(sess) {
		if strings.HasPrefix(line, "durability:") {
			stats = line
		}
	}
	if !strings.Contains(stats, "fsync always") || !strings.Contains(stats, "last lsn") {
		t.Fatalf(`\stats durability line %q`, stats)
	}
	text := strings.Join(eng.Metrics().Text(), "\n")
	for _, name := range []string{
		"ar_wal_appends_total", "ar_wal_fsyncs_total", "ar_wal_fsync_seconds",
		"ar_wal_size_bytes", "ar_checkpoint_total", "ar_checkpoint_last_lsn",
		"ar_segment_bytes", "ar_recovery_replayed_records",
	} {
		if !strings.Contains(text, name) {
			t.Fatalf("metrics text lacks %s", name)
		}
	}
}

// --- kill -9 crash test ---------------------------------------------------

// crashTables are ingested by the subprocess helper; both carry the same
// deterministic rows (i, (i*7)%997) so the parent can verify that recovery
// kept exactly a prefix.
var crashTables = []string{"s0", "s1"}

// TestEngineDurableKillHelper is the subprocess body for the kill -9 test:
// it opens the engine on AR_CRASH_DIR with aggressive background merging
// and ingests deterministic batches forever, acking each durable batch on
// stdout. The parent SIGKILLs it mid-flight. It is skipped as a no-op in a
// normal test run.
func TestEngineDurableKillHelper(t *testing.T) {
	if os.Getenv("AR_CRASH_HELPER") != "1" {
		t.Skip("subprocess helper for TestEngineDurableKillIngest")
	}
	ctx := context.Background()
	eng, err := Open(plan.NewCatalog(device.PaperSystem()), Options{
		DataDir:        os.Getenv("AR_CRASH_DIR"),
		Fsync:          "always",
		MergeThreshold: 64,
		MergeInterval:  2 * time.Millisecond,
	})
	if err != nil {
		fmt.Printf("helper: %v\n", err)
		return
	}
	eng.StartMaintenance(ctx)
	counts := map[string]int{}
	for _, name := range crashTables {
		if _, err := eng.Catalog().Table(name); err != nil {
			// bwdecompose needs rows to measure, so seed one batch first
			// (it auto-merges the delta into a decomposable base).
			for _, stmt := range []string{
				"create table " + name + " (k int, v int)",
				"insert into " + name + " values (0, 0), (1, 7), (2, 14), (3, 21)",
				"select bwdecompose(v, 8) from " + name,
			} {
				if _, err := eng.Query(ctx, stmt); err != nil {
					fmt.Printf("helper: %s: %v\n", stmt, err)
					return
				}
			}
		}
		res, err := eng.Query(ctx, "select count(*) from "+name)
		if err != nil {
			fmt.Printf("helper: %v\n", err)
			return
		}
		counts[name] = int(res.Rows[0].Vals[0])
	}
	deadline := time.Now().Add(60 * time.Second) // safety net if the parent dies
	for time.Now().Before(deadline) {
		for _, name := range crashTables {
			n := counts[name]
			var vals []string
			for i := 0; i < 4; i++ {
				vals = append(vals, fmt.Sprintf("(%d, %d)", n+i, ((n+i)*7)%997))
			}
			if _, err := eng.Query(ctx, "insert into "+name+" values "+strings.Join(vals, ", ")); err != nil {
				fmt.Printf("helper: insert: %v\n", err)
				return
			}
			counts[name] = n + 4
			// The insert is fsynced when Query returns (fsync=always), so
			// this ack is a durable lower bound for the parent.
			fmt.Printf("acked %s %d\n", name, counts[name])
		}
	}
}

// TestEngineDurableKillIngest is the acceptance crash test: kill -9 a
// subprocess mid-ingest (with background merges and checkpoints racing the
// writers), reopen the data directory, and require that each table holds
// exactly a prefix of the deterministic row sequence at least as long as
// the last acked batch — and that the classic and A&R executors agree
// byte-for-byte on the recovered state.
func TestEngineDurableKillIngest(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	acked := map[string]int{}
	for round := 0; round < 3; round++ {
		cmd := exec.Command(os.Args[0], "-test.run=TestEngineDurableKillHelper$", "-test.v")
		cmd.Env = append(os.Environ(), "AR_CRASH_HELPER=1", "AR_CRASH_DIR="+dir)
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		var mu sync.Mutex
		ackedRound := 0
		done := make(chan struct{})
		go func() {
			defer close(done)
			sc := bufio.NewScanner(stdout)
			for sc.Scan() {
				var table string
				var n int
				if _, err := fmt.Sscanf(sc.Text(), "acked %s %d", &table, &n); err == nil {
					mu.Lock()
					if n > acked[table] {
						acked[table] = n
					}
					ackedRound++
					mu.Unlock()
				}
			}
		}()
		// Let the helper ingest until a few batches are durable, then a
		// short random grace so the kill lands at an arbitrary point in the
		// ingest/merge/checkpoint interleaving.
		killAt := time.Now().Add(15 * time.Second)
		for {
			mu.Lock()
			enough := ackedRound >= 6
			mu.Unlock()
			if enough || time.Now().After(killAt) {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		time.Sleep(time.Duration(rng.Intn(120)) * time.Millisecond)
		if err := cmd.Process.Kill(); err != nil {
			t.Fatal(err)
		}
		cmd.Wait() // expected to report the kill
		<-done
		mu.Lock()
		enough := ackedRound >= 1
		mu.Unlock()
		if !enough {
			t.Fatalf("round %d: helper acked nothing; stderr:\n%s", round, stderr.String())
		}
	}

	eng := openDurable(t, dir)
	defer eng.Close()
	for _, name := range crashTables {
		if acked[name] == 0 {
			t.Fatalf("no acks recorded for %s", name)
		}
		sess := eng.Session()
		k := mustCount(t, sess, "select count(*) from "+name)
		if int(k) < acked[name] {
			t.Fatalf("%s recovered %d rows, but %d were acked durable", name, k, acked[name])
		}
		if k%4 != 0 {
			t.Fatalf("%s recovered %d rows, not whole 4-row batches", name, k)
		}
		// Prefix-exactness: sums of both columns must match the closed
		// forms for rows (i, (i*7)%997), i in [0, k).
		var sumK, sumV int64
		for i := int64(0); i < k; i++ {
			sumK += i
			sumV += (i * 7) % 997
		}
		res, err := sess.Query(context.Background(), "select sum(k), sum(v) from "+name)
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Rows[0].Vals; got[0] != sumK || got[1] != sumV {
			t.Fatalf("%s: sums (%d, %d) after recovery, want (%d, %d) — not the row prefix", name, got[0], got[1], sumK, sumV)
		}
		sess.Close()
		renderBoth(t, eng, "select count(*), sum(v) from "+name+" where v < 500")
	}
	rec := eng.Durability().Recovery()
	t.Logf("recovery after kill -9: %s", rec.String())
}
