package engine

import (
	"context"
	"strings"
	"testing"

	"repro/internal/device"
	"repro/internal/plan"
)

// TestEnginePartitionSurface covers the engine-facing partition surface:
// \tables groups partitions under their wrapper with per-partition
// base/delta splits, \explain prints the scatter fan-out with per-partition
// estimates, the scheduler's per-device ledger counts admitted partition
// scans, and the metrics registry exports them plus per-partition depth
// gauges.
func TestEnginePartitionSurface(t *testing.T) {
	ctx := context.Background()
	eng := New(plan.NewCatalog(device.PaperSystem()), Options{})
	defer eng.Close()
	for _, stmt := range []string{
		"create table ps (k int, v int) partition by hash(k) partitions 3",
		"insert into ps values (0, 5), (1, 12), (2, 7), (3, 40), (4, 1), (5, 33), (6, 8), (7, 21), (8, 2), (9, 14), (10, 9), (11, 30)",
		"select bwdecompose(k, 8), bwdecompose(v, 8) from ps",
		"insert into ps values (12, 3), (13, 6)", // leave a delta tail
	} {
		if _, err := eng.Query(ctx, stmt); err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
	}

	sess := eng.SessionFor(ModeAR)
	defer sess.Close()

	// \tables: the wrapper line carries the spec, partitions list under it
	// with their own segment splits, and partition tables do not appear as
	// stand-alone entries.
	out, _, handled, err := sess.Meta(ctx, `\tables`)
	if !handled || err != nil {
		t.Fatalf(`\tables: handled=%v err=%v`, handled, err)
	}
	var wrapper string
	parts, standalone := 0, 0
	for _, line := range out {
		switch {
		case strings.HasPrefix(line, "ps ("):
			wrapper = line
		case strings.HasPrefix(line, "  partition "):
			parts++
		case strings.HasPrefix(line, "ps.p"):
			standalone++
		}
	}
	if !strings.Contains(wrapper, "14 rows, partition by hash(k) partitions 3") {
		t.Fatalf(`\tables wrapper line %q`, wrapper)
	}
	if parts != 3 || standalone != 0 {
		t.Fatalf(`\tables lists %d partition lines and %d stand-alone partition tables, want 3 and 0:\n%s`,
			parts, standalone, strings.Join(out, "\n"))
	}
	if !strings.Contains(strings.Join(out, "\n"), "delta") {
		t.Fatalf(`\tables shows no base/delta split:\n%s`, strings.Join(out, "\n"))
	}

	// \explain: scatter header, one line per partition with estimated rows,
	// and the gather contract.
	out, _, _, err = sess.Meta(ctx, `\explain select count(*) from ps where v <= 20`)
	if err != nil {
		t.Fatal(err)
	}
	text := strings.Join(out, "\n")
	if !strings.HasPrefix(out[0], "scatter: ps over 3 partitions") {
		t.Fatalf(`\explain header %q`, out[0])
	}
	for _, want := range []string{"est ~", "gather: concatenate partials in partition order"} {
		if !strings.Contains(text, want) {
			t.Fatalf(`\explain lacks %q:\n%s`, want, text)
		}
	}

	// An A&R scatter admits each partition scan onto its device stream; the
	// ledger and its counter must see all three.
	before := eng.Scheduler().Stats().PartitionScans
	if got := mustCount(t, sess, "select count(*) from ps where k >= 0"); got != 14 {
		t.Fatalf("scatter count = %d, want 14", got)
	}
	st := eng.Scheduler().Stats()
	if st.PartitionScans != before+3 {
		t.Fatalf("partition scans %d, want %d", st.PartitionScans, before+3)
	}
	if !strings.Contains(st.String(), "partition scans") {
		t.Fatalf("SchedStats.String() lacks partition scans: %q", st.String())
	}

	text = strings.Join(eng.Metrics().Text(), "\n")
	if !strings.Contains(text, "ar_partition_scans_total") {
		t.Fatal("metrics text lacks ar_partition_scans_total")
	}
	for _, series := range []string{`ar_table_base_rows{table="ps.p0"}`, `ar_table_delta_rows{table="ps.p2"}`} {
		if !strings.Contains(text, series) {
			t.Fatalf("metrics text lacks per-partition series %s", series)
		}
	}
}
