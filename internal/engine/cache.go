package engine

import (
	"container/list"
	"fmt"
	"sync"

	"repro/internal/sql"
)

// PlanCache is a bounded LRU cache of compiled bindings keyed on
// sql.Normalize'd statement text. A hit skips the lex/parse/bind/optimize
// front end entirely; bindings are immutable after compilation, so one
// cached entry may be executed by any number of sessions concurrently.
//
// Each entry records the schema epochs of the tables the binding depends
// on (see store.Table.SchemaEpoch). The engine re-validates them on every
// hit and drops entries whose tables were dropped or re-created — a stale
// binding would otherwise execute against replaced columns with the old
// scales.
type PlanCache struct {
	mu    sync.Mutex
	cap   int
	lru   *list.List // front = most recently used; values are *cacheEntry
	byKey map[string]*list.Element

	hits, misses, evictions, invalidations int64
}

type cacheEntry struct {
	key  string
	b    *sql.Binding
	deps map[string]uint64 // table name -> schema epoch at compile time
}

// NewPlanCache returns a cache holding up to capacity bindings. A zero or
// negative capacity disables caching (every Get misses, Put is a no-op).
func NewPlanCache(capacity int) *PlanCache {
	return &PlanCache{cap: capacity, lru: list.New(), byKey: make(map[string]*list.Element)}
}

// Get returns the cached binding for key (with its recorded dependency
// epochs), marking it most recently used. valid re-checks the entry's
// recorded table epochs against the catalog; an entry whose dependencies
// changed is removed and reported as a miss (counted as an invalidation).
func (p *PlanCache) Get(key string, valid func(deps map[string]uint64) bool) (*sql.Binding, map[string]uint64, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	el, ok := p.byKey[key]
	if !ok {
		p.misses++
		return nil, nil, false
	}
	e := el.Value.(*cacheEntry)
	if valid != nil && !valid(e.deps) {
		p.lru.Remove(el)
		delete(p.byKey, key)
		p.invalidations++
		p.misses++
		return nil, nil, false
	}
	p.hits++
	p.lru.MoveToFront(el)
	return e.b, e.deps, true
}

// Put inserts a binding with its table-epoch dependencies, evicting the
// least recently used entry when the cache is full. Re-putting an existing
// key refreshes its binding.
func (p *PlanCache) Put(key string, b *sql.Binding, deps map[string]uint64) {
	if p.cap <= 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.byKey[key]; ok {
		e := el.Value.(*cacheEntry)
		e.b, e.deps = b, deps
		p.lru.MoveToFront(el)
		return
	}
	if p.lru.Len() >= p.cap {
		oldest := p.lru.Back()
		p.lru.Remove(oldest)
		delete(p.byKey, oldest.Value.(*cacheEntry).key)
		p.evictions++
	}
	p.byKey[key] = p.lru.PushFront(&cacheEntry{key: key, b: b, deps: deps})
}

// CacheStats is a point-in-time snapshot of cache counters.
type CacheStats struct {
	Hits, Misses, Evictions int64
	Invalidations           int64
	Len, Cap                int
}

// Stats returns the current counters.
func (p *PlanCache) Stats() CacheStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return CacheStats{
		Hits: p.hits, Misses: p.misses, Evictions: p.evictions,
		Invalidations: p.invalidations,
		Len:           p.lru.Len(), Cap: p.cap,
	}
}

func (s CacheStats) String() string {
	return fmt.Sprintf("plan cache: %d hits, %d misses, %d evictions, %d invalidated, %d/%d entries",
		s.Hits, s.Misses, s.Evictions, s.Invalidations, s.Len, s.Cap)
}
