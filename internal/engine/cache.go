package engine

import (
	"container/list"
	"fmt"
	"sync"

	"repro/internal/sql"
)

// PlanCache is a bounded LRU cache of compiled bindings keyed on
// sql.Normalize'd statement text. A hit skips the lex/parse/bind/optimize
// front end entirely; bindings are immutable after compilation, so one
// cached entry may be executed by any number of sessions concurrently.
type PlanCache struct {
	mu    sync.Mutex
	cap   int
	lru   *list.List // front = most recently used; values are *cacheEntry
	byKey map[string]*list.Element

	hits, misses, evictions int64
}

type cacheEntry struct {
	key string
	b   *sql.Binding
}

// NewPlanCache returns a cache holding up to capacity bindings. A zero or
// negative capacity disables caching (every Get misses, Put is a no-op).
func NewPlanCache(capacity int) *PlanCache {
	return &PlanCache{cap: capacity, lru: list.New(), byKey: make(map[string]*list.Element)}
}

// Get returns the cached binding for key, marking it most recently used.
func (p *PlanCache) Get(key string) (*sql.Binding, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	el, ok := p.byKey[key]
	if !ok {
		p.misses++
		return nil, false
	}
	p.hits++
	p.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).b, true
}

// Put inserts a binding, evicting the least recently used entry when the
// cache is full. Re-putting an existing key refreshes its binding.
func (p *PlanCache) Put(key string, b *sql.Binding) {
	if p.cap <= 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.byKey[key]; ok {
		el.Value.(*cacheEntry).b = b
		p.lru.MoveToFront(el)
		return
	}
	if p.lru.Len() >= p.cap {
		oldest := p.lru.Back()
		p.lru.Remove(oldest)
		delete(p.byKey, oldest.Value.(*cacheEntry).key)
		p.evictions++
	}
	p.byKey[key] = p.lru.PushFront(&cacheEntry{key: key, b: b})
}

// CacheStats is a point-in-time snapshot of cache counters.
type CacheStats struct {
	Hits, Misses, Evictions int64
	Len, Cap                int
}

// Stats returns the current counters.
func (p *PlanCache) Stats() CacheStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return CacheStats{Hits: p.hits, Misses: p.misses, Evictions: p.evictions, Len: p.lru.Len(), Cap: p.cap}
}

func (s CacheStats) String() string {
	return fmt.Sprintf("plan cache: %d hits, %d misses, %d evictions, %d/%d entries",
		s.Hits, s.Misses, s.Evictions, s.Len, s.Cap)
}
