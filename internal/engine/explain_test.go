package engine

import (
	"context"
	"strings"
	"testing"

	"repro/internal/bat"
	"repro/internal/device"
	"repro/internal/plan"
	"repro/internal/store"
)

// starEngineCatalog builds a two-dimension star schema for the explain
// and multi-join cache tests.
func starEngineCatalog(t *testing.T) *plan.Catalog {
	t.Helper()
	c := plan.NewCatalog(device.PaperSystem())
	addDim := func(name, attr string, dimN int) {
		d := plan.NewTable(name)
		pk := make([]int64, dimN)
		av := make([]int64, dimN)
		for i := range pk {
			pk[i] = int64(i)
			av[i] = int64(i % 10)
		}
		if err := d.AddColumn("id", bat.NewDense(pk, bat.Width32)); err != nil {
			t.Fatal(err)
		}
		if err := d.AddColumn(attr, bat.NewDense(av, bat.Width32)); err != nil {
			t.Fatal(err)
		}
		if err := c.AddTable(d); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Decompose(name, attr, 4); err != nil {
			t.Fatal(err)
		}
		if err := c.BuildFKIndex(name, "id"); err != nil {
			t.Fatal(err)
		}
	}
	addDim("d1", "a", 20)
	addDim("d2", "b", 10)
	fact := plan.NewTable("f")
	n := 2000
	for _, col := range []string{"v", "fk1", "fk2"} {
		vals := make([]int64, n)
		for i := range vals {
			switch col {
			case "fk1":
				vals[i] = int64(i % 20)
			case "fk2":
				vals[i] = int64(i % 10)
			default:
				vals[i] = int64(i % 1000)
			}
		}
		if err := fact.AddColumn(col, bat.NewDense(vals, bat.Width32)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.AddTable(fact); err != nil {
		t.Fatal(err)
	}
	for col, bits := range map[string]uint{"v": 8, "fk1": 32, "fk2": 32} {
		if _, err := c.Decompose("f", col, bits); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

const starQuery = `select count(*) as n from f join d1 on f.fk1 = d1.id join d2 on f.fk2 = d2.id where v < 500 and d1.a < 5`

// TestExplainMeta checks the \explain meta command renders the assembled
// pipeline — scan strategy, selectivity-ordered filters, join chain,
// delta marker — without executing the statement, and follows the
// session's executor mode.
func TestExplainMeta(t *testing.T) {
	eng := New(starEngineCatalog(t), Options{})
	sess := eng.Session()
	defer sess.Close()
	ctx := context.Background()

	lines, quit, handled, err := sess.Meta(ctx, `\explain `+starQuery)
	if err != nil || quit || !handled {
		t.Fatalf("Meta explain: lines=%v quit=%v handled=%v err=%v", lines, quit, handled, err)
	}
	text := strings.Join(lines, "\n")
	for _, want := range []string{
		"mode=ar", "a&r bit-sliced base of f", "est sel",
		"join 1/2: f.fk1 -> d1.id", "join 2/2: f.fk2 -> d2.id",
		"filter d1.a", "delta: none",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("\\explain output missing %q:\n%s", want, text)
		}
	}
	// Forced classic mode explains the classic scan strategy.
	sess.SetMode(ModeClassic)
	lines, _, _, err = sess.Meta(ctx, `\explain `+starQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(lines, "\n"), "classic row-major base") {
		t.Errorf("classic \\explain missing scan strategy:\n%s", strings.Join(lines, "\n"))
	}
	// Write statements have no pipeline.
	if _, _, _, err := sess.Meta(ctx, `\explain insert into f values (1, 2, 3)`); err == nil {
		t.Error("\\explain of a write statement did not fail")
	}
	// The engine-level programmatic entry agrees with the meta surface.
	b, err := eng.compile(starQuery)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := eng.DescribePlan(b.Query, ModeAuto)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(direct, "\n"), "mode=ar") {
		t.Errorf("DescribePlan(auto) did not pick the A&R strategy:\n%s", strings.Join(direct, "\n"))
	}
}

// TestPlanCacheMultiJoinDeps checks that a cached multi-join binding
// records every joined dimension as a dependency: dropping and
// re-creating the second dimension must invalidate the entry instead of
// serving a stale binding.
func TestPlanCacheMultiJoinDeps(t *testing.T) {
	cat := starEngineCatalog(t)
	eng := New(cat, Options{})
	ctx := context.Background()

	if _, err := eng.Query(ctx, starQuery); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Query(ctx, starQuery); err != nil {
		t.Fatal(err)
	}
	if st := eng.Cache().Stats(); st.Hits == 0 {
		t.Fatalf("expected a cache hit before the schema change, got %+v", st)
	}

	// Drop and re-create the second dimension with a different schema.
	if err := cat.DropTable("d2"); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.CreateTable("d2", []store.ColumnDef{
		{Name: "id", Scale: 1, Width: bat.Width32},
		{Name: "b", Scale: 1, Width: bat.Width32},
	}); err != nil {
		t.Fatal(err)
	}
	inval := eng.Cache().Stats().Invalidations
	// The stale entry must not serve: the re-created d2 is empty, so the
	// join now fails validation — but through a fresh compile, not the
	// cached binding.
	if _, err := eng.Query(ctx, starQuery); err == nil {
		t.Fatal("query against re-created empty dimension should fail validation")
	}
	if got := eng.Cache().Stats().Invalidations; got <= inval {
		t.Fatalf("second-dimension schema change did not invalidate the cached plan (invalidations %d -> %d)", inval, got)
	}
}
