package engine

import (
	"time"

	"repro/internal/durable"
	"repro/internal/obs"
)

// metrics is the engine's instrumentation bundle: real atomic counters and
// histograms on the query path, scrape-time func metrics over the stats
// structs the engine already maintains (scheduler, plan cache, store), a
// per-table collector, and the slow-query log. The registry is exposed on
// cmd/arserve as GET /metrics (Prometheus text) and in every front-end as
// the \metrics meta command.
type metrics struct {
	reg *obs.Registry

	// Per-route attempt counters and wall-latency histograms. These are
	// incremented on the query path itself (one atomic add each), so the
	// totals are exact under concurrency — the property the registry
	// stress test asserts.
	queries   [3]*obs.Counter
	latency   [3]*obs.Histogram
	errors    *obs.Counter
	queueWait *obs.Histogram

	slow         *obs.SlowLog
	slowRetained *obs.Counter
}

var routeLabels = [3]string{RouteAR: `route="ar"`, RouteClassic: `route="classic"`, RouteDDL: `route="ddl"`}

// newMetrics builds the registry over an engine's subsystems.
func newMetrics(e *Engine, slowCap int) *metrics {
	reg := obs.NewRegistry()
	m := &metrics{
		reg:    reg,
		errors: reg.Counter("ar_query_errors_total", "", "Statements that returned an error (including rejections and cancellations)."),
		queueWait: reg.Histogram("ar_sched_queue_wait_seconds", "",
			"Wall-clock time A&R queries spent waiting for a GPU stream slot.", nil),
		slow:         obs.NewSlowLog(slowCap),
		slowRetained: reg.Counter("ar_slow_queries_total", "", "Queries retained by the slow-query log."),
	}
	for r, labels := range routeLabels {
		m.queries[r] = reg.Counter("ar_queries_total", labels, "Statements executed, by scheduler route.")
		m.latency[r] = reg.Histogram("ar_query_latency_seconds", labels,
			"Wall-clock statement latency (including scheduler waits), by route.", nil)
	}

	// Scrape-time metrics over the mutex-guarded stats the subsystems
	// already keep: reading them only costs anything when someone scrapes.
	obs.RegisterRuntime(reg)
	reg.GaugeFunc("ar_sessions_active", "", "Open engine sessions.", func() float64 {
		return float64(e.SessionCount())
	})
	sched := func(f func(SchedStats) float64) func() float64 {
		return func() float64 { return f(e.sched.Stats()) }
	}
	reg.CounterFunc("ar_sched_rejected_total", "", "A&R queries rejected by admission control.",
		sched(func(s SchedStats) float64 { return float64(s.RejectedAR) }))
	reg.CounterFunc("ar_sched_cancelled_total", "", "Queries cancelled while waiting or executing.",
		sched(func(s SchedStats) float64 { return float64(s.Cancelled) }))
	reg.GaugeFunc("ar_sched_queue_depth", "", "A&R queries currently waiting for a GPU stream.",
		sched(func(s SchedStats) float64 { return float64(s.WaitingAR) }))
	reg.GaugeFunc("ar_sched_queue_high_water", "", "Highest A&R queue depth observed.",
		sched(func(s SchedStats) float64 { return float64(s.PeakWaitingAR) }))
	reg.GaugeFunc("ar_sched_active", `route="classic"`, "Streams currently executing, by route.",
		sched(func(s SchedStats) float64 { return float64(s.ActiveClassic) }))
	reg.GaugeFunc("ar_sched_active", `route="ar"`, "Streams currently executing, by route.",
		sched(func(s SchedStats) float64 { return float64(s.ActiveAR) }))
	reg.CounterFunc("ar_partition_scans_total", "", "A&R partition scans admitted onto per-partition device streams by scatter-gather executions.",
		sched(func(s SchedStats) float64 { return float64(s.PartitionScans) }))
	reg.CounterFunc("ar_mode_picks_total", `mode="ar"`, "Auto-mode queries the cost model routed to the A&R executor.",
		sched(func(s SchedStats) float64 { return float64(s.ModePickAR) }))
	reg.CounterFunc("ar_mode_picks_total", `mode="classic"`, "Auto-mode queries the cost model routed to the classic executor.",
		sched(func(s SchedStats) float64 { return float64(s.ModePickClassic) }))
	reg.CounterFunc("ar_partition_pruned_total", "", "Range partitions skipped before scattering because the filters excluded their value slabs.",
		func() float64 { return float64(e.cat.PlannerStats().PartitionsPruned) })

	cache := func(f func(CacheStats) float64) func() float64 {
		return func() float64 { return f(e.cache.Stats()) }
	}
	reg.CounterFunc("ar_plan_cache_hits_total", "", "Plan cache hits.",
		cache(func(s CacheStats) float64 { return float64(s.Hits) }))
	reg.CounterFunc("ar_plan_cache_misses_total", "", "Plan cache misses (including invalidations).",
		cache(func(s CacheStats) float64 { return float64(s.Misses) }))
	reg.CounterFunc("ar_plan_cache_evictions_total", "", "Plan cache LRU evictions.",
		cache(func(s CacheStats) float64 { return float64(s.Evictions) }))
	reg.CounterFunc("ar_plan_cache_invalidations_total", "", "Plan cache entries dropped on schema-epoch mismatch.",
		cache(func(s CacheStats) float64 { return float64(s.Invalidations) }))
	reg.GaugeFunc("ar_plan_cache_entries", "", "Live plan cache entries.",
		cache(func(s CacheStats) float64 { return float64(s.Len) }))

	reg.CounterFunc("ar_store_merges_total", "", "Delta-into-base merges (manual and automatic).",
		func() float64 { return float64(e.cat.StoreStats().Merges) })
	reg.CounterFunc("ar_store_merge_shipped_bytes_total", "", "Bytes shipped to the device by incremental merges.",
		func() float64 { return float64(e.cat.StoreStats().MergeShippedBytes) })
	reg.GaugeFunc("ar_store_segments", "", "Live store segments across all tables.",
		func() float64 { return float64(e.cat.StoreStats().Segments) })
	reg.CounterFunc("ar_maintenance_merge_failures_total", "", "Background merges that failed.",
		func() float64 {
			e.mu.Lock()
			defer e.mu.Unlock()
			return float64(e.mergeFailures)
		})

	for dev, get := range map[string]func() time.Duration{
		"gpu": func() time.Duration { g, _, _, _ := e.sched.Totals.Totals(); return g },
		"cpu": func() time.Duration { _, c, _, _ := e.sched.Totals.Totals(); return c },
		"pci": func() time.Duration { _, _, p, _ := e.sched.Totals.Totals(); return p },
	} {
		get := get
		reg.CounterFunc("ar_sim_device_seconds_total", `device="`+dev+`"`,
			"Simulated engine-wide busy time, by device.",
			func() float64 { return get().Seconds() })
	}

	// Per-table depth gauges are dynamic series: tables appear and
	// disappear at runtime, so they are emitted by a collector at scrape
	// time instead of being registered up front.
	reg.Collector(func(emit obs.Emit) {
		for _, name := range e.cat.TableNames() {
			t, err := e.cat.Table(name)
			if err != nil {
				continue
			}
			snap := t.Snapshot()
			labels := `table="` + name + `"`
			emit("ar_table_delta_rows", labels, "Live delta rows awaiting merge, per table.", "gauge", float64(snap.LiveDelta()))
			emit("ar_table_base_rows", labels, "Base segment rows, per table.", "gauge", float64(snap.BaseLen()))
			emit("ar_table_deleted_rows", labels, "Deleted rows not yet compacted, per table.", "gauge", float64(snap.DeletedCount()))
		}
	})
	return m
}

// attachDurability registers the durability metric family over an attached
// durable store. The fsync latency histogram (ar_wal_fsync_seconds) is not
// here: it must exist before durable.Open so recovery-time fsyncs are
// observed, so engine.Open creates it and passes its Observe as the
// observer.
func (m *metrics) attachDurability(d *durable.Store) {
	stat := func(f func(durable.Stats) float64) func() float64 {
		return func() float64 { return f(d.Stats()) }
	}
	m.reg.CounterFunc("ar_wal_appends_total", "", "Records appended to the write-ahead log.",
		stat(func(s durable.Stats) float64 { return float64(s.Appends) }))
	m.reg.CounterFunc("ar_wal_fsyncs_total", "", "WAL fsyncs issued (one may commit a whole append group).",
		stat(func(s durable.Stats) float64 { return float64(s.Fsyncs) }))
	m.reg.CounterFunc("ar_checkpoint_total", "", "Checkpoints taken (merged base persisted, WAL prefix dropped).",
		stat(func(s durable.Stats) float64 { return float64(s.Checkpoints) }))
	m.reg.GaugeFunc("ar_wal_size_bytes", "", "Current WAL file size.",
		stat(func(s durable.Stats) float64 { return float64(s.WALBytes) }))
	m.reg.GaugeFunc("ar_checkpoint_last_lsn", "", "Highest checkpoint LSN across tables.",
		stat(func(s durable.Stats) float64 { return float64(s.LastCheckpointLSN) }))
	m.reg.GaugeFunc("ar_segment_bytes", "", "Total segment file footprint on disk.",
		stat(func(s durable.Stats) float64 { return float64(s.SegmentBytes) }))
	m.reg.CounterFunc("ar_recovery_replayed_records", "", "WAL records replayed into the catalog by the last recovery.",
		func() float64 { return float64(d.Recovery().Replayed) })
	m.reg.CounterFunc("ar_recovery_truncated_bytes", "", "Torn WAL tail bytes discarded by the last recovery.",
		func() float64 { return float64(d.Recovery().TruncatedBytes) })
}

// note records one finished (or failed) statement on the query path.
func (m *metrics) note(route Route, wall time.Duration, err error) {
	if int(route) < len(m.queries) {
		m.queries[route].Inc()
		m.latency[route].Observe(wall)
	}
	if err != nil {
		m.errors.Inc()
	}
}

// noteSlow offers a traced execution to the slow-query log.
func (m *metrics) noteSlow(e obs.SlowEntry) {
	if m.slow.Note(e) {
		m.slowRetained.Inc()
	}
}
