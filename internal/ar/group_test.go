package ar

import (
	"math/rand"
	"testing"

	"repro/internal/bat"
	"repro/internal/bulk"
	"repro/internal/bwd"
	"repro/internal/device"
)

func groupKeys(n, groups int, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(rng.Intn(groups))
	}
	return out
}

func TestGroupApproxRefineResidentColumn(t *testing.T) {
	// Low-cardinality grouping column, fully device resident after
	// compression — the common case the paper expects (§IV-E).
	n := 20000
	keys := groupKeys(n, 16, 30)
	sel := shuffledInts(n, 31)
	keyCol := decompose(t, keys, 32)
	selCol := decompose(t, sel, 7)

	cands := SelectApprox(nil, selCol, selCol.Relax(1000, 9000))
	grouping := GroupApprox(nil, keyCol, cands)
	grouping.Ship(nil)
	refined, _ := SelectRefine(nil, 1, selCol, 1000, 9000, cands)
	got, err := GroupRefine(nil, 1, grouping, refined)
	if err != nil {
		t.Fatalf("GroupRefine: %v", err)
	}

	if len(got.IDs) != len(refined.IDs) {
		t.Fatalf("grouping covers %d tuples, want %d", len(got.IDs), len(refined.IDs))
	}
	for i, id := range refined.IDs {
		if got.Keys[got.IDs[i]] != keys[id] {
			t.Fatalf("tuple %d grouped under key %d, want %d", id, got.Keys[got.IDs[i]], keys[id])
		}
	}
}

func TestGroupRefineDecomposedColumnRegroups(t *testing.T) {
	n := 10000
	keys := groupKeys(n, 1000, 32)
	sel := shuffledInts(n, 33)
	keyCol := decompose(t, keys, 4) // decomposed: approximate groups collide
	selCol := decompose(t, sel, 8)

	cands := SelectApprox(nil, selCol, selCol.Relax(0, 5000))
	grouping := GroupApprox(nil, keyCol, cands)
	refined, _ := SelectRefine(nil, 1, selCol, 0, 5000, cands)
	got, err := GroupRefine(nil, 1, grouping, refined)
	if err != nil {
		t.Fatalf("GroupRefine: %v", err)
	}
	for i, id := range refined.IDs {
		if got.Keys[got.IDs[i]] != keys[id] {
			t.Fatalf("tuple %d grouped under key %d, want %d", id, got.Keys[got.IDs[i]], keys[id])
		}
	}
	// The approximate pre-grouping must have fewer groups than the exact
	// one (codes collide), demonstrating it is genuinely approximate.
	if grouping.NGroups >= got.NGroups {
		t.Errorf("approximate groups %d >= exact groups %d; decomposition had no effect",
			grouping.NGroups, got.NGroups)
	}
}

func TestGroupApproxMatchesBulkOnFullSelection(t *testing.T) {
	n := 5000
	keys := groupKeys(n, 8, 34)
	keyCol := decompose(t, keys, 32)
	selCol := decompose(t, shuffledInts(n, 35), 32)
	cands := SelectApprox(nil, selCol, selCol.Relax(0, int64(n)))
	grouping := GroupApprox(nil, keyCol, cands)
	refined, _ := SelectRefine(nil, 1, selCol, 0, int64(n), cands)
	got, err := GroupRefine(nil, 1, grouping, refined)
	if err != nil {
		t.Fatalf("GroupRefine: %v", err)
	}

	want := bulk.GroupBy(nil, 1, keys)
	if got.NGroups != want.NGroups {
		t.Fatalf("NGroups = %d, want %d", got.NGroups, want.NGroups)
	}
	// Aggregate counts per key must agree regardless of id order.
	wantCounts := map[int64]int64{}
	for i, g := range want.IDs {
		_ = i
		wantCounts[want.Keys[g]]++
	}
	gotCounts := map[int64]int64{}
	for _, g := range got.IDs {
		gotCounts[got.Keys[g]]++
	}
	for k, w := range wantCounts {
		if gotCounts[k] != w {
			t.Errorf("count for key %d = %d, want %d", k, gotCounts[k], w)
		}
	}
}

func TestGroupConflictCostDecreasesWithGroups(t *testing.T) {
	sys := device.PaperSystem()
	n := 200000
	sel := shuffledInts(n, 36)
	cost := func(groups int) float64 {
		keys := groupKeys(n, groups, int64(37+groups))
		keyCol, err := bwd.Decompose(bat.NewDense(keys, bat.Width32), 32, nil)
		if err != nil {
			t.Fatalf("Decompose: %v", err)
		}
		selCol, err := bwd.Decompose(bat.NewDense(sel, bat.Width32), 32, nil)
		if err != nil {
			t.Fatalf("Decompose: %v", err)
		}
		m := device.NewMeter(sys)
		cands := SelectApprox(nil, selCol, selCol.Relax(0, int64(n)))
		GroupApprox(m, keyCol, cands)
		return m.GPU.Seconds()
	}
	t10, t1000 := cost(10), cost(1000)
	if t1000 >= t10 {
		t.Errorf("grouping cost must fall with group count (Fig 8f): 10 groups %.4fs vs 1000 groups %.4fs", t10, t1000)
	}
	if t10/t1000 < 2 {
		t.Errorf("conflict penalty too weak to reproduce Fig 8f: ratio %.2f", t10/t1000)
	}
}
