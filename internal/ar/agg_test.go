package ar

import (
	"math/rand"
	"testing"

	"repro/internal/bulk"
)

func TestCountApproxBoundsExact(t *testing.T) {
	n := 20000
	vals := shuffledInts(n, 40)
	col := decompose(t, vals, 8)
	lo, hi := int64(3000), int64(9000)
	cands := SelectApprox(nil, col, col.Relax(lo, hi))
	iv := CountApprox(nil, cands)
	refined, _ := SelectRefine(nil, 1, col, lo, hi, cands)
	exact := int64(len(refined.IDs))
	if !iv.Contains(exact) {
		t.Fatalf("approximate count %v does not contain exact %d", iv, exact)
	}
	if iv.Hi != int64(cands.Len()) {
		t.Errorf("upper bound %d != candidate count %d", iv.Hi, cands.Len())
	}
}

func TestSumApproxBoundsExact(t *testing.T) {
	for _, bits := range []uint{6, 9, 12, 32} {
		n := 10000
		dates := shuffledInts(n, 41)
		prices := shuffledInts(n, 42)
		dateCol := decompose(t, dates, bits)
		priceCol := decompose(t, prices, bits)

		lo, hi := int64(2000), int64(7000)
		cands := SelectApprox(nil, dateCol, dateCol.Relax(lo, hi))
		proj := ProjectApprox(nil, priceCol, cands)
		iv := SumApprox(nil, proj)

		refined, _ := SelectRefine(nil, 1, dateCol, lo, hi, cands)
		exactVals, err := ProjectRefine(nil, 1, proj, refined)
		if err != nil {
			t.Fatalf("bits %d: %v", bits, err)
		}
		exact := bulk.Sum(nil, 1, exactVals)
		if !iv.Contains(exact) {
			t.Fatalf("bits %d: approximate sum %v does not contain exact %d", bits, iv, exact)
		}
		if bits == 32 && iv.Lo != iv.Hi {
			t.Errorf("fully resident sum should be exact, got %v", iv)
		}
	}
}

func TestSumGroupedApproxBoundsExact(t *testing.T) {
	n := 10000
	keys := groupKeys(n, 8, 43)
	vals := shuffledInts(n, 44)
	sel := shuffledInts(n, 45)
	keyCol := decompose(t, keys, 32)
	valCol := decompose(t, vals, 8)
	selCol := decompose(t, sel, 8)

	cands := SelectApprox(nil, selCol, selCol.Relax(1000, 8000))
	proj := ProjectApprox(nil, valCol, cands)
	grouping := GroupApprox(nil, keyCol, cands)
	ivs := SumGroupedApprox(nil, proj, grouping)

	refined, _ := SelectRefine(nil, 1, selCol, 1000, 8000, cands)
	exactVals, err := ProjectRefine(nil, 1, proj, refined)
	if err != nil {
		t.Fatal(err)
	}
	exactGroups, err := GroupRefine(nil, 1, grouping, refined)
	if err != nil {
		t.Fatal(err)
	}
	exactSums := bulk.SumGrouped(nil, 1, exactVals, exactGroups)
	for g := 0; g < exactGroups.NGroups; g++ {
		key := exactGroups.Keys[g]
		// Find the approximate group with the same key.
		found := false
		for ag := 0; ag < grouping.NGroups; ag++ {
			if keyCol.Dec.Base+int64(grouping.Codes[ag]) == key {
				if !ivs[ag].Contains(exactSums[g]) {
					t.Fatalf("group %d: approx sum %v does not contain exact %d", key, ivs[ag], exactSums[g])
				}
				found = true
			}
		}
		if !found {
			t.Fatalf("exact group %d missing from approximate grouping", key)
		}
	}
}

// TestMinApproxFig6Trap reconstructs the scenario of Fig 6: the candidate
// with the minimal approximate y-value is a false positive of the relaxed
// selection on x, so returning only the minimal-approximation tuples would
// lose the true minimum.
func TestMinApproxFig6Trap(t *testing.T) {
	// x values: bucket size will be 16 after 6/4 decomposition of 0..1023.
	n := 1024
	x := make([]int64, n)
	y := make([]int64, n)
	for i := range x {
		x[i] = int64(i)
		y[i] = int64(1000 + i) // strictly increasing, min y at min x
	}
	// Tuple 95: x just below the selection bound (false positive for
	// x >= 100 relaxed to bucket 96..111... actually bucket of 100 starts
	// at 96), with a tiny y that fakes being the minimum.
	y[97] = 5
	xCol := decompose(t, x, 6)
	yCol := decompose(t, y, 6)

	lo, hi := int64(100), int64(1023)
	cands := SelectApprox(nil, xCol, xCol.Relax(lo, hi))
	proj := ProjectApprox(nil, yCol, cands)
	mc := MinApprox(nil, proj)

	// The true minimum y among x in [100,1023] is y[100] = 1100.
	refined, _ := SelectRefine(nil, 1, xCol, lo, hi, cands)
	yExact, err := ProjectRefine(nil, 1, proj, refined)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := MinRefine(nil, 1, mc, refined.IDs, yExact)
	if !ok {
		t.Fatal("MinRefine found no candidates")
	}
	if got != 1100 {
		t.Fatalf("min = %d, want 1100 (the false positive's y=5 must not survive)", got)
	}
	// And the candidate set must actually have contained the true minimum.
	found := false
	for _, id := range mc.IDs {
		if id == 100 {
			found = true
		}
	}
	if !found {
		t.Error("min candidate set lost the true minimum's tuple id (Fig 6 trap)")
	}
}

func TestMinMaxApproxRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	for trial := 0; trial < 50; trial++ {
		n := 2000
		x := shuffledInts(n, int64(100+trial))
		y := make([]int64, n)
		for i := range y {
			y[i] = int64(rng.Intn(100000))
		}
		xCol := decompose(t, x, uint(4+trial%8))
		yCol := decompose(t, y, uint(4+(trial/2)%8))

		lo := int64(rng.Intn(n))
		hi := lo + int64(rng.Intn(n-int(lo)))
		cands := SelectApprox(nil, xCol, xCol.Relax(lo, hi))
		if cands.Len() == 0 {
			continue
		}
		proj := ProjectApprox(nil, yCol, cands)
		refined, _ := SelectRefine(nil, 1, xCol, lo, hi, cands)
		if len(refined.IDs) == 0 {
			continue
		}
		yExact, err := ProjectRefine(nil, 1, proj, refined)
		if err != nil {
			t.Fatal(err)
		}
		wantMin, _ := bulk.Min(nil, 1, yExact)
		wantMax, _ := bulk.Max(nil, 1, yExact)

		mc := MinApprox(nil, proj)
		gotMin, ok := MinRefine(nil, 1, mc, refined.IDs, yExact)
		if !ok || gotMin != wantMin {
			t.Fatalf("trial %d: min = %d (ok=%v), want %d", trial, gotMin, ok, wantMin)
		}
		xc := MaxApprox(nil, proj)
		gotMax, ok := MaxRefine(nil, 1, xc, refined.IDs, yExact)
		if !ok || gotMax != wantMax {
			t.Fatalf("trial %d: max = %d (ok=%v), want %d", trial, gotMax, ok, wantMax)
		}
	}
}

func TestMinApproxPrunes(t *testing.T) {
	// With certain candidates present, the candidate set should usually be
	// far smaller than the full candidate list.
	n := 50000
	x := shuffledInts(n, 47)
	y := shuffledInts(n, 48)
	xCol := decompose(t, x, 10)
	yCol := decompose(t, y, 10)
	cands := SelectApprox(nil, xCol, xCol.Relax(0, int64(n)))
	proj := ProjectApprox(nil, yCol, cands)
	mc := MinApprox(nil, proj)
	if len(mc.IDs) >= cands.Len()/10 {
		t.Errorf("min candidate set not pruned: %d of %d", len(mc.IDs), cands.Len())
	}
}
