package ar

import (
	"repro/internal/bat"
	"repro/internal/bwd"
	"repro/internal/device"
	"repro/internal/mem"
	"repro/internal/par"
)

// This file implements the disjunction (OR) selection operators: the
// approximate select of a union of relaxed ranges — each disjunct relaxed
// through its own column's BWD bounds — and its refinement. The candidate
// union never materializes per-disjunct sets: one pass evaluates every
// disjunct per tuple, so the device output is already the union, in the
// same deterministic permutation as a conjunctive scan.

// SelectApproxAny is the approximation of a disjunctive selection over the
// bitwise decomposed columns cols with relaxed ranges rs (one per
// disjunct, possibly repeating a column): the device scans every disjunct
// column's packed approximation and emits the tuples whose code matches
// any relaxed range — a superset of the exact OR result. All disjunct
// columns' codes attach to the candidates under one disjunction group id,
// so Certain and the refinement can evaluate the group as a whole.
//
// Host-side, every disjunct column is decoded word-parallel into one flat
// morsel-scratch block (bitpack.UnpackRange) and matches land in disjoint
// arena regions, concatenated in the deterministic device permutation.
func SelectApproxAny(m *device.Meter, cols []*bwd.Column, rs []bwd.ApproxRange, group int) *Candidates {
	n := cols[0].Len()
	k := len(cols)
	c := getCandidates()
	total := 0
	nchunks := (n + gpuChunk - 1) / gpuChunk
	if n > 0 {
		idsBuf := oidPool.GetN(n)
		colBufs := make([][]uint64, k)
		for j := range colBufs {
			colBufs[j] = mem.U64.GetN(n)
		}
		counts := mem.Ints.GetN(nchunks)
		par.ForScratch(n, gpuChunk, 0, func(s *mem.Scratch, lo, hi int) {
			g := hi - lo
			dec := s.U64(k * g)
			for j, col := range cols {
				col.Approx.UnpackRange(dec[j*g:j*g:(j+1)*g], lo, hi)
			}
			cnt := 0
			for i := 0; i < g; i++ {
				match := false
				for j := range cols {
					if rs[j].Contains(dec[j*g+i]) {
						match = true
						break
					}
				}
				if match {
					idsBuf[lo+cnt] = bat.OID(lo + i)
					for j := range cols {
						colBufs[j][lo+cnt] = dec[j*g+i]
					}
					cnt++
				}
			}
			counts[lo/gpuChunk] = cnt
		})
		for _, cnt := range counts {
			total += cnt
		}
		order := par.PermuteInto(mem.Ints.GetN(nchunks))
		c.IDs = oidPool.GetN(total)
		off := 0
		for _, ci := range order {
			cnt := counts[ci]
			copy(c.IDs[off:off+cnt], idsBuf[ci*gpuChunk:ci*gpuChunk+cnt])
			off += cnt
		}
		for j, col := range cols {
			codes := mem.U64.GetN(total)
			off = 0
			for _, ci := range order {
				cnt := counts[ci]
				copy(codes[off:off+cnt], colBufs[j][ci*gpuChunk:ci*gpuChunk+cnt])
				off += cnt
			}
			c.attach = append(c.attach, attachment{col: col, codes: codes, rng: rs[j], filtered: true, group: group})
			mem.U64.Put(colBufs[j])
		}
		mem.Ints.Put(order)
		mem.Ints.Put(counts)
		oidPool.Put(idsBuf)
	} else {
		c.IDs = oidPool.GetN(0)
		for j, col := range cols {
			c.attach = append(c.attach, attachment{col: col, codes: mem.U64.GetN(0), rng: rs[j], filtered: true, group: group})
		}
	}
	if m != nil {
		var scanned int64
		var written int64 = int64(total) * 4
		for _, col := range cols {
			scanned += col.Approx.Bytes()
			written += packedBytes(total, col.Dec.ApproxBits)
		}
		m.GPUKernel(scanned+written, 0, int64(n)*OpsPackedScan*int64(k))
	}
	return c
}

// SelectApproxAnyOver narrows an existing candidate set with a further
// disjunctive predicate: the device gathers each disjunct column's codes
// at the candidate positions and keeps the tuples matching any relaxed
// range, preserving candidate order so later translucent joins remain
// valid.
func SelectApproxAnyOver(m *device.Meter, cols []*bwd.Column, rs []bwd.ApproxRange, in *Candidates, group int) *Candidates {
	keep := mem.Ints.Get(len(in.IDs))
	colBufs := make([][]uint64, len(cols))
	for j := range colBufs {
		colBufs[j] = mem.U64.Get(len(in.IDs))
	}
	for i, id := range in.IDs {
		match := false
		for j, col := range cols {
			code := col.Approx.Get(int(id))
			colBufs[j] = append(colBufs[j], code)
			if rs[j].Contains(code) {
				match = true
			}
		}
		if match {
			keep = append(keep, i)
		} else {
			for j := range colBufs {
				colBufs[j] = colBufs[j][:len(colBufs[j])-1]
			}
		}
	}
	out := in.filterTo(keep)
	out.shipped = false // a fresh device-side intermediate
	for j, col := range cols {
		out.attach = append(out.attach, attachment{col: col, codes: colBufs[j], rng: rs[j], filtered: true, group: group})
	}
	if m != nil {
		n := len(in.IDs)
		seq := int64(n)*4 + int64(len(keep))*4
		var rnd int64
		for _, col := range cols {
			seq += packedBytes(len(keep), col.Dec.ApproxBits)
			rnd += packedBytes(n, col.Dec.ApproxBits)
		}
		m.GPUKernel(seq, rnd, int64(n)*OpsPackedScan*int64(len(cols)))
	}
	mem.Ints.Put(keep)
	return out
}

// SelectRefineAnyPar is the refinement of a disjunctive selection: on the
// CPU, each candidate's exact value is reconstructed per disjunct column
// (shipped code + host-resident residual) and the precise disjunction —
// any lo_k <= v_k <= hi_k — is re-evaluated, eliminating false positives.
// Morsel survivors land in disjoint arena regions and left-pack in morsel
// order, preserving candidate order exactly like the conjunctive
// refinement.
func SelectRefineAnyPar(p par.P, m *device.Meter, cols []*bwd.Column, los, his []int64, in *Candidates) *Candidates {
	codes := make([][]uint64, len(cols))
	for k, col := range cols {
		codes[k] = in.CodesFor(col)
		if codes[k] == nil {
			panic("ar: SelectRefineAny on a column that was never approximated over these candidates")
		}
	}
	n := len(in.IDs)
	keepBuf := mem.Ints.GetN(n)
	counts, _, err := par.ForCounted(p, n, func(_ *mem.Scratch, _, mlo, mhi int) int {
		cnt := 0
		for i := mlo; i < mhi; i++ {
			for k, col := range cols {
				var r uint64
				if col.Dec.ResBits > 0 {
					r = col.Residual.Get(int(in.IDs[i]))
				}
				v := col.ReconstructFrom(codes[k][i], r)
				if v >= los[k] && v <= his[k] {
					keepBuf[mlo+cnt] = i
					cnt++
					break
				}
			}
		}
		return cnt
	})
	var keep []int
	if err != nil {
		keep = keepBuf[:0]
	} else {
		keep = par.Compact(counts, p.ChunkSize(), keepBuf)
		mem.Ints.Put(counts)
	}
	out := in.filterTo(keep)
	mem.Ints.Put(keepBuf)
	if m != nil {
		// Charge one fused disjunction pass: IDs and every disjunct's codes
		// stream sequentially, residuals are touched at candidate order.
		// Deterministic in (n, columns) — the short-circuit above only
		// saves real work, never billed work.
		seq := int64(n)*4 + int64(len(keep))*4
		var ops int64
		for _, col := range cols {
			seq += packedBytes(n, col.Dec.ApproxBits)
			if col.Dec.ResBits > 0 {
				seq += device.RandomFetchBytes(int64(n), residualBytes(col.Dec.ResBits), col.Residual.Bytes())
			}
			ops += int64(n) * 2
		}
		m.CPUWork(p.NThreads(), seq, 0, ops)
	}
	return out
}
