package ar

import (
	"repro/internal/bat"
	"repro/internal/bwd"
	"repro/internal/device"
	"repro/internal/par"
)

// This file implements the disjunction (OR) selection operators: the
// approximate select of a union of relaxed ranges — each disjunct relaxed
// through its own column's BWD bounds — and its refinement. The candidate
// union never materializes per-disjunct sets: one pass evaluates every
// disjunct per tuple, so the device output is already the union, in the
// same deterministic permutation as a conjunctive scan.

// orCodes is the per-tuple scratch of one disjunction scan: the tuple id
// plus the code of every disjunct column, kept aligned so all columns
// attach to the candidate set.
type orCodes struct {
	id    bat.OID
	codes []uint64
}

// SelectApproxAny is the approximation of a disjunctive selection over the
// bitwise decomposed columns cols with relaxed ranges rs (one per
// disjunct, possibly repeating a column): the device scans every disjunct
// column's packed approximation and emits the tuples whose code matches
// any relaxed range — a superset of the exact OR result. All disjunct
// columns' codes attach to the candidates under one disjunction group id,
// so Certain and the refinement can evaluate the group as a whole.
func SelectApproxAny(m *device.Meter, cols []*bwd.Column, rs []bwd.ApproxRange, group int) *Candidates {
	n := cols[0].Len()
	pairs := par.Gather(n, gpuChunk, 0, false, func(lo, hi int) []orCodes {
		out := make([]orCodes, 0, (hi-lo)/4)
		for i := lo; i < hi; i++ {
			keep := false
			codes := make([]uint64, len(cols))
			for k, col := range cols {
				codes[k] = col.Approx.Get(i)
				if rs[k].Contains(codes[k]) {
					keep = true
				}
			}
			if keep {
				out = append(out, orCodes{bat.OID(i), codes})
			}
		}
		return out
	})
	c := buildOrCandidates(pairs, cols, rs, group, false)
	if m != nil {
		var scanned int64
		var written int64 = int64(len(pairs)) * 4
		for _, col := range cols {
			scanned += col.Approx.Bytes()
			written += packedBytes(len(pairs), col.Dec.ApproxBits)
		}
		m.GPUKernel(scanned+written, 0, int64(n)*OpsPackedScan*int64(len(cols)))
	}
	return c
}

// SelectApproxAnyOver narrows an existing candidate set with a further
// disjunctive predicate: the device gathers each disjunct column's codes
// at the candidate positions and keeps the tuples matching any relaxed
// range, preserving candidate order so later translucent joins remain
// valid.
func SelectApproxAnyOver(m *device.Meter, cols []*bwd.Column, rs []bwd.ApproxRange, in *Candidates, group int) *Candidates {
	keep := make([]int, 0, len(in.IDs))
	kept := make([][]uint64, 0, len(in.IDs))
	for i, id := range in.IDs {
		match := false
		codes := make([]uint64, len(cols))
		for k, col := range cols {
			codes[k] = col.Approx.Get(int(id))
			if rs[k].Contains(codes[k]) {
				match = true
			}
		}
		if match {
			keep = append(keep, i)
			kept = append(kept, codes)
		}
	}
	out := in.filterTo(keep)
	out.shipped = false // a fresh device-side intermediate
	for k, col := range cols {
		codes := make([]uint64, len(kept))
		for i := range kept {
			codes[i] = kept[i][k]
		}
		out.attach = append(out.attach, attachment{col: col, codes: codes, rng: rs[k], filtered: true, group: group})
	}
	if m != nil {
		n := len(in.IDs)
		seq := int64(n)*4 + int64(len(keep))*4
		var rnd int64
		for _, col := range cols {
			seq += packedBytes(len(keep), col.Dec.ApproxBits)
			rnd += packedBytes(n, col.Dec.ApproxBits)
		}
		m.GPUKernel(seq, rnd, int64(n)*OpsPackedScan*int64(len(cols)))
	}
	return out
}

// buildOrCandidates assembles a candidate set from disjunction scan pairs,
// attaching every disjunct column's codes under the group id.
func buildOrCandidates(pairs []orCodes, cols []*bwd.Column, rs []bwd.ApproxRange, group int, shipped bool) *Candidates {
	c := &Candidates{IDs: make([]bat.OID, len(pairs)), shipped: shipped}
	perCol := make([][]uint64, len(cols))
	for k := range cols {
		perCol[k] = make([]uint64, len(pairs))
	}
	for i, p := range pairs {
		c.IDs[i] = p.id
		for k := range cols {
			perCol[k][i] = p.codes[k]
		}
	}
	for k, col := range cols {
		c.attach = append(c.attach, attachment{col: col, codes: perCol[k], rng: rs[k], filtered: true, group: group})
	}
	return c
}

// SelectRefineAnyPar is the refinement of a disjunctive selection: on the
// CPU, each candidate's exact value is reconstructed per disjunct column
// (shipped code + host-resident residual) and the precise disjunction —
// any lo_k <= v_k <= hi_k — is re-evaluated, eliminating false positives.
// Morsel survivors concatenate in morsel order, preserving candidate
// order exactly like the conjunctive refinement.
func SelectRefineAnyPar(p par.P, m *device.Meter, cols []*bwd.Column, los, his []int64, in *Candidates) *Candidates {
	codes := make([][]uint64, len(cols))
	for k, col := range cols {
		codes[k] = in.CodesFor(col)
		if codes[k] == nil {
			panic("ar: SelectRefineAny on a column that was never approximated over these candidates")
		}
	}
	n := len(in.IDs)
	keep := par.GatherOrdered(p, n, func(mlo, mhi int) []int {
		part := make([]int, 0, mhi-mlo)
		for i := mlo; i < mhi; i++ {
			for k, col := range cols {
				var r uint64
				if col.Dec.ResBits > 0 {
					r = col.Residual.Get(int(in.IDs[i]))
				}
				v := col.ReconstructFrom(codes[k][i], r)
				if v >= los[k] && v <= his[k] {
					part = append(part, i)
					break
				}
			}
		}
		return part
	})
	out := in.filterTo(keep)
	if m != nil {
		// Charge one fused disjunction pass: IDs and every disjunct's codes
		// stream sequentially, residuals are touched at candidate order.
		// Deterministic in (n, columns) — the short-circuit above only
		// saves real work, never billed work.
		seq := int64(n)*4 + int64(len(keep))*4
		var ops int64
		for _, col := range cols {
			seq += packedBytes(n, col.Dec.ApproxBits)
			if col.Dec.ResBits > 0 {
				seq += device.RandomFetchBytes(int64(n), residualBytes(col.Dec.ResBits), col.Residual.Bytes())
			}
			ops += int64(n) * 2
		}
		m.CPUWork(p.NThreads(), seq, 0, ops)
	}
	return out
}
