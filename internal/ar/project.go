package ar

import (
	"repro/internal/bat"
	"repro/internal/bulk"
	"repro/internal/bwd"
	"repro/internal/device"
	"repro/internal/mem"
	"repro/internal/par"
)

// Projection is the output of an approximate projection: the approximation
// codes of the projected column, positionally aligned with the candidate
// set it was computed over. Exact reports whether the codes are already
// precise (the projected column is fully device resident, ResBits == 0),
// in which case no refinement is necessary (§IV-C).
type Projection struct {
	Src     *Candidates
	Col     *bwd.Column
	Codes   []uint64
	shipped bool
}

// Len returns the number of projected tuples.
func (p *Projection) Len() int { return len(p.Codes) }

// Release returns the projection's code buffer to the arena. The source
// candidate set is not owned by the projection and stays untouched. Must
// only be called once nothing references the projection.
func (p *Projection) Release() {
	mem.U64.Put(p.Codes)
	p.Codes = nil
	p.Src = nil
}

// Exact reports whether the projected codes need no refinement.
func (p *Projection) Exact() bool { return p.Col.Dec.ResBits == 0 }

// ApproxLow returns the smallest value consistent with projected code i.
func (p *Projection) ApproxLow(i int) int64 {
	return p.Col.Dec.Base + int64(p.Codes[i]<<p.Col.Dec.ResBits)
}

// Ship charges the PCI-E transfer of the projected codes to the host. The
// candidate IDs are not re-shipped; they travel with the candidate set.
func (p *Projection) Ship(m *device.Meter) {
	if p.shipped {
		return
	}
	p.shipped = true
	if m != nil {
		m.Transfer(packedBytes(len(p.Codes), p.Col.Dec.ApproxBits))
	}
}

// ProjectApprox is the approximation of a projection (§IV-C): an invisible
// join — a positional lookup of the candidate IDs into the bit-packed,
// device-resident approximation of the projected column. The output is
// aligned with the candidate order, which a parallel projection preserves
// for free because each lane writes at the position of its input id
// (§IV-A item 2).
func ProjectApprox(m *device.Meter, col *bwd.Column, cands *Candidates) *Projection {
	codes := mem.U64.GetN(len(cands.IDs))
	par.For(len(cands.IDs), gpuChunk, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			codes[i] = col.Approx.Get(int(cands.IDs[i]))
		}
	})
	if m != nil {
		n := len(cands.IDs)
		seq := int64(n)*4 + packedBytes(n, col.Dec.ApproxBits)
		m.GPUKernel(seq, packedBytes(n, col.Dec.ApproxBits), int64(n)*bulk.OpsFetch)
	}
	return &Projection{Src: cands, Col: col, Codes: codes}
}

// ProjectApproxAt is ProjectApprox through an indirection: the lookup
// positions are given explicitly (aligned with cands) instead of being the
// candidate IDs themselves. This is the projective foreign-key join of
// §IV-D: with a dense primary key, `at` holds the dimension-table
// positions for each fact-side candidate, and projecting a dimension
// column "via" the join shares this code path.
func ProjectApproxAt(m *device.Meter, col *bwd.Column, cands *Candidates, at []bat.OID) *Projection {
	codes := mem.U64.GetN(len(at))
	par.For(len(at), gpuChunk, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			codes[i] = col.Approx.Get(int(at[i]))
		}
	})
	if m != nil {
		n := len(at)
		seq := int64(n)*4 + packedBytes(n, col.Dec.ApproxBits)
		m.GPUKernel(seq, packedBytes(n, col.Dec.ApproxBits), int64(n)*bulk.OpsFetch)
	}
	return &Projection{Src: cands, Col: col, Codes: codes}
}

// ProjectRefine is the refinement of a projection (§IV-C): a translucent
// join of the refined candidate subset into the approximate projection —
// re-aligning the projected codes with the surviving IDs — followed by
// residual lookups and bitwise reconstruction of the exact values.
//
// refined must be an order-preserving subset of p.Src (which every A&R
// refinement guarantees); otherwise ErrTranslucentPrecondition is
// returned.
func ProjectRefine(m *device.Meter, threads int, p *Projection, refined *Candidates) ([]int64, error) {
	return ProjectRefinePar(par.Bill(threads), m, p, refined)
}

// ProjectRefinePar is the morsel-parallel ProjectRefine: the translucent
// join stays a sequential merge pass (its cursor is inherently serial), the
// residual lookups and reconstructions fan out over morsels with disjoint
// output writes.
func ProjectRefinePar(pp par.P, m *device.Meter, p *Projection, refined *Candidates) ([]int64, error) {
	if p.Exact() && len(refined.IDs) == len(p.Src.IDs) {
		// §IV-C: all bits of the projected attribute are device resident
		// and no candidates were eliminated — the shipped codes already
		// are the exact result (a view, no refinement operator runs).
		out := mem.I64.GetN(len(p.Codes))
		pp.For(len(out), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out[i] = p.ApproxLow(i)
			}
		})
		return out, nil
	}
	pos, err := TranslucentJoinMetered(m, pp.NThreads(), p.Src.IDs, refined.IDs)
	if err != nil {
		return nil, err
	}
	out := mem.I64.GetN(len(refined.IDs))
	col := p.Col
	pp.For(len(pos), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			var r uint64
			if col.Dec.ResBits > 0 {
				r = col.Residual.Get(int(refined.IDs[i]))
			}
			out[i] = col.ReconstructFrom(p.Codes[pos[i]], r)
		}
	})
	mem.Ints.Put(pos)
	if m != nil {
		// Reads: refined IDs (32-bit), shipped codes, residuals (at
		// candidate order); writes: reconstructed values at the column's
		// native width.
		n := len(refined.IDs)
		resFetch := device.RandomFetchBytes(int64(n), residualBytes(col.Dec.ResBits), col.Residual.Bytes())
		seq := int64(n)*4 + packedBytes(n, col.Dec.ApproxBits) + resFetch + int64(n)*int64(col.Dec.Width)
		m.CPUWork(pp.NThreads(), seq, 0, int64(n))
	}
	return out, nil
}
