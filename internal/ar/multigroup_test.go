package ar

import (
	"testing"

	"repro/internal/bwd"
	"repro/internal/device"
)

func TestGroupApproxMultiResidentExactPassthrough(t *testing.T) {
	n := 20000
	flags := groupKeys(n, 3, 80)
	status := groupKeys(n, 2, 81)
	sel := shuffledInts(n, 82)
	flagCol := decompose(t, flags, 32)
	statusCol := decompose(t, status, 32)
	selCol := decompose(t, sel, 8)

	cands := SelectApprox(nil, selCol, selCol.Relax(1000, 15000))
	mg := GroupApproxMulti(nil, []*bwd.Column{flagCol, statusCol}, cands)
	if mg.NGroups > 6 {
		t.Fatalf("NGroups = %d, want <= 6 (3 flags x 2 statuses)", mg.NGroups)
	}
	refined, _ := SelectRefine(nil, 1, selCol, 1000, 15000, cands)
	grouping, keys, err := GroupRefineMulti(nil, 1, mg, refined)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 {
		t.Fatalf("expected 2 key columns, got %d", len(keys))
	}
	for i, id := range refined.IDs {
		g := grouping.IDs[i]
		if keys[0][g] != flags[id] || keys[1][g] != status[id] {
			t.Fatalf("tuple %d grouped under (%d,%d), want (%d,%d)",
				id, keys[0][g], keys[1][g], flags[id], status[id])
		}
	}
}

func TestGroupRefineMultiDecomposedRegroups(t *testing.T) {
	n := 10000
	keys1 := groupKeys(n, 64, 83)
	keys2 := groupKeys(n, 16, 84)
	sel := shuffledInts(n, 85)
	col1 := decompose(t, keys1, 3) // decomposed: approximate codes collide
	col2 := decompose(t, keys2, 2)
	selCol := decompose(t, sel, 8)

	cands := SelectApprox(nil, selCol, selCol.Relax(0, 6000))
	mg := GroupApproxMulti(nil, []*bwd.Column{col1, col2}, cands)
	refined, _ := SelectRefine(nil, 1, selCol, 0, 6000, cands)
	grouping, keys, err := GroupRefineMulti(nil, 1, mg, refined)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range refined.IDs {
		g := grouping.IDs[i]
		if keys[0][g] != keys1[id] || keys[1][g] != keys2[id] {
			t.Fatalf("tuple %d grouped under (%d,%d), want (%d,%d)",
				id, keys[0][g], keys[1][g], keys1[id], keys2[id])
		}
	}
	// The approximate pre-grouping must be coarser than the exact one.
	if mg.NGroups >= grouping.NGroups {
		t.Errorf("approximate groups %d >= exact groups %d", mg.NGroups, grouping.NGroups)
	}
}

func TestMultiGroupingShipOnce(t *testing.T) {
	sys := device.PaperSystem()
	n := 5000
	keys := groupKeys(n, 4, 86)
	keyCol := decompose(t, keys, 32)
	selCol := decompose(t, shuffledInts(n, 87), 32)
	cands := SelectApprox(nil, selCol, selCol.Relax(0, 2500))
	mg := GroupApproxMulti(nil, []*bwd.Column{keyCol}, cands)
	m := device.NewMeter(sys)
	mg.Ship(m)
	if m.PCI == 0 {
		t.Error("multi-grouping ship charged nothing")
	}
	before := m.PCI
	mg.Ship(m)
	if m.PCI != before {
		t.Error("double ship charged twice")
	}
}

func TestGroupApproxMultiReusesAttachedCodes(t *testing.T) {
	// When the grouping column was already filtered, its codes are
	// attached to the candidates and GroupApproxMulti must not re-project.
	n := 5000
	keys := groupKeys(n, 8, 88)
	keyCol := decompose(t, keys, 32)
	cands := SelectApprox(nil, keyCol, keyCol.Relax(0, 7))
	mg := GroupApproxMulti(nil, []*bwd.Column{keyCol}, cands)
	codes := cands.CodesFor(keyCol)
	for i := range cands.IDs {
		if mg.Codes[0][mg.IDs[i]] != codes[i] {
			t.Fatal("grouping codes diverge from attached codes")
		}
	}
}
