package ar

import (
	"testing"

	"repro/internal/bat"
	"repro/internal/bwd"
	"repro/internal/mem"
	"repro/internal/par"
)

// The A&R scan hot path — approximate selection, refinement, release —
// must run at zero heap allocations per query in steady state: every
// buffer it touches cycles through the arena. The guards run the serial
// morsel path (one worker claims every morsel); the parallel path runs the
// same kernels plus a fixed per-query goroutine spawn cost.

type scanFixture struct {
	col    *bwd.Column
	rng    bwd.ApproxRange
	lo, hi int64
}

func newScanFixture(t testing.TB, n int) *scanFixture {
	vals := shuffledInts(n, 7)
	col, err := bwd.Decompose(bat.NewDense(vals, bat.Width32), 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := int64(n/4), int64(n/2)
	return &scanFixture{col: col, rng: col.Relax(lo, hi), lo: lo, hi: hi}
}

func runARScan(f *scanFixture) {
	cands := SelectApprox(nil, f.col, f.rng)
	refined, vals := SelectRefinePar(par.Bill(1), nil, f.col, f.lo, f.hi, cands)
	mem.I64.Put(vals)
	refined.Release()
	cands.Release()
}

func TestARScanZeroAlloc(t *testing.T) {
	f := newScanFixture(t, 50000)
	for i := 0; i < 5; i++ {
		runARScan(f) // warm the arena and the candidate pool
	}
	if n := testing.AllocsPerRun(50, func() { runARScan(f) }); n != 0 {
		if mem.RaceEnabled {
			t.Skipf("%.2f allocs/op under -race (sync.Pool drops Puts); strict guard runs in normal builds", n)
		}
		t.Fatalf("A&R scan allocates %.2f/op in steady state, want 0", n)
	}
}

func TestReconstructAllZeroAlloc(t *testing.T) {
	f := newScanFixture(t, 50000)
	cands := SelectApprox(nil, f.col, f.rng)
	defer cands.Release()
	for i := 0; i < 5; i++ {
		mem.I64.Put(ReconstructAllPar(par.Bill(1), nil, f.col, cands))
	}
	if n := testing.AllocsPerRun(50, func() {
		mem.I64.Put(ReconstructAllPar(par.Bill(1), nil, f.col, cands))
	}); n != 0 {
		if mem.RaceEnabled {
			t.Skipf("%.2f allocs/op under -race (sync.Pool drops Puts); strict guard runs in normal builds", n)
		}
		t.Fatalf("ReconstructAll allocates %.2f/op in steady state, want 0", n)
	}
}

// BenchmarkHotPathAllocs is the CI smoke target: the bench smoke step runs
// it with -benchtime and asserts 0 allocs/op from the report line.
func BenchmarkHotPathAllocs(b *testing.B) {
	f := newScanFixture(b, 50000)
	for i := 0; i < 5; i++ {
		runARScan(f)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runARScan(f)
	}
}
