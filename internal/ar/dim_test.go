package ar

import (
	"math/rand"
	"testing"

	"repro/internal/bat"
	"repro/internal/bwd"
	"repro/internal/device"
)

// buildDimData creates a fact table with an FK into a dimension column,
// plus a fact-side selection column, to exercise the dimension-side A&R
// operators directly.
func buildDimData(t *testing.T, n, dimN int, dimBits uint, seed int64) (sel, fk, dimVals []int64, selCol, dimCol *bwd.Column) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	sel = shuffledInts(n, seed)
	fk = make([]int64, n)
	for i := range fk {
		fk[i] = int64(rng.Intn(dimN))
	}
	dimVals = make([]int64, dimN)
	for i := range dimVals {
		dimVals[i] = int64(rng.Intn(10000))
	}
	selCol = decompose(t, sel, 8)
	dimCol = decompose(t, dimVals, dimBits)
	return
}

func TestSelectApproxAtAndRefineAt(t *testing.T) {
	for _, dimBits := range []uint{32, 6} { // resident and decomposed dims
		sel, fk, dimVals, selCol, dimCol := buildDimData(t, 20000, 500, dimBits, 70)

		cands := SelectApprox(nil, selCol, selCol.Relax(100, 9000))
		at := make([]bat.OID, cands.Len())
		for i, id := range cands.IDs {
			at[i] = bat.OID(fk[id])
		}
		lo, hi := int64(2000), int64(7000)
		c2, at2 := SelectApproxAt(nil, dimCol, dimCol.Relax(lo, hi), cands, at)
		// Superset property through the join indirection.
		gotSet := map[bat.OID]bool{}
		for _, id := range c2.IDs {
			gotSet[id] = true
		}
		for i, id := range cands.IDs {
			v := dimVals[at[i]]
			if v >= lo && v <= hi && !gotSet[id] {
				t.Fatalf("dimBits=%d: candidate %d with qualifying dim value %d dropped", dimBits, id, v)
			}
		}
		// Refinement: exact.
		r2, atR, vals := SelectRefineAt(nil, 1, dimCol, lo, hi, c2, at2)
		for i, id := range r2.IDs {
			if vals[i] != dimVals[atR[i]] {
				t.Fatalf("dimBits=%d: reconstructed dim value %d != %d", dimBits, vals[i], dimVals[atR[i]])
			}
			if vals[i] < lo || vals[i] > hi {
				t.Fatalf("dimBits=%d: false positive survived refinement", dimBits)
			}
			if bat.OID(fk[id]) != atR[i] {
				t.Fatalf("dimBits=%d: position list misaligned", dimBits)
			}
		}
		// Count must equal ground truth.
		want := 0
		selSet := map[bat.OID]bool{}
		for _, id := range cands.IDs {
			selSet[id] = true
		}
		for i := range sel {
			if sel[i] >= 100 && sel[i] <= 9000 {
				if v := dimVals[fk[i]]; v >= lo && v <= hi {
					want++
				}
			}
		}
		// cands is approximate on sel: refine sel first for exact ground truth.
		rSel, _ := SelectRefine(nil, 1, selCol, 100, 9000, c2)
		atSel := make([]bat.OID, len(rSel.IDs))
		for i, id := range rSel.IDs {
			atSel[i] = bat.OID(fk[id])
		}
		rBoth, _, _ := SelectRefineAt(nil, 1, dimCol, lo, hi, rSel, atSel)
		if rBoth.Len() != want {
			t.Fatalf("dimBits=%d: refined join count %d != ground truth %d", dimBits, rBoth.Len(), want)
		}
	}
}

func TestProjectRefineAtReconstructsDimValues(t *testing.T) {
	_, fk, dimVals, selCol, dimCol := buildDimData(t, 10000, 300, 5, 71)
	cands := SelectApprox(nil, selCol, selCol.Relax(500, 8000))
	at := make([]bat.OID, cands.Len())
	for i, id := range cands.IDs {
		at[i] = bat.OID(fk[id])
	}
	proj := ProjectApproxAt(nil, dimCol, cands, at)
	refined, _ := SelectRefine(nil, 1, selCol, 500, 8000, cands)
	pos, err := TranslucentJoin(cands.IDs, refined.IDs)
	if err != nil {
		t.Fatal(err)
	}
	atRefined := make([]bat.OID, len(pos))
	for i, p := range pos {
		atRefined[i] = at[p]
	}
	got, err := ProjectRefineAt(nil, 1, proj, refined, atRefined)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range refined.IDs {
		if got[i] != dimVals[fk[id]] {
			t.Fatalf("dim projection for fact %d = %d, want %d", id, got[i], dimVals[fk[id]])
		}
	}
}

func TestSelectRefineAtResidentChargesNothing(t *testing.T) {
	sys := device.PaperSystem()
	_, fk, _, selCol, dimCol := buildDimData(t, 5000, 100, 32, 72)
	cands := SelectApprox(nil, selCol, selCol.Relax(0, 4000))
	at := make([]bat.OID, cands.Len())
	for i, id := range cands.IDs {
		at[i] = bat.OID(fk[id])
	}
	c2, at2 := SelectApproxAt(nil, dimCol, dimCol.Relax(0, 5000), cands, at)
	m := device.NewMeter(sys)
	SelectRefineAt(m, 1, dimCol, 0, 5000, c2, at2)
	if m.CPU != 0 {
		t.Errorf("resident dimension refinement charged %v (§IV-C: no refinement needed)", m.CPU)
	}
}
