package ar

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/bat"
	"repro/internal/device"
)

func TestTranslucentJoinPaperExample(t *testing.T) {
	// Fig 5 of the paper: A (approximation, superset) with permuted ids
	// {0,16,48,32,...} joined with B (residual subset) sharing the
	// permutation.
	aIDs := []bat.OID{0, 16, 48, 32, 80}
	bIDs := []bat.OID{16, 32, 80}
	pos, err := TranslucentJoin(aIDs, bIDs)
	if err != nil {
		t.Fatalf("TranslucentJoin: %v", err)
	}
	want := []int{1, 3, 4}
	for i := range want {
		if pos[i] != want[i] {
			t.Errorf("pos[%d] = %d, want %d", i, pos[i], want[i])
		}
	}
}

func TestTranslucentJoinInvisibleFastPath(t *testing.T) {
	// Sorted+dense superset: Algorithm 1's first branch.
	aIDs := []bat.OID{10, 11, 12, 13, 14}
	bIDs := []bat.OID{11, 13}
	pos, err := TranslucentJoin(aIDs, bIDs)
	if err != nil {
		t.Fatalf("TranslucentJoin: %v", err)
	}
	if pos[0] != 1 || pos[1] != 3 {
		t.Errorf("pos = %v, want [1 3]", pos)
	}
}

func TestTranslucentJoinInvisiblePathOutOfRange(t *testing.T) {
	aIDs := []bat.OID{10, 11, 12}
	if _, err := TranslucentJoin(aIDs, []bat.OID{13}); !errors.Is(err, ErrTranslucentPrecondition) {
		t.Errorf("err = %v, want ErrTranslucentPrecondition", err)
	}
	if _, err := TranslucentJoin(aIDs, []bat.OID{9}); !errors.Is(err, ErrTranslucentPrecondition) {
		t.Errorf("err = %v, want ErrTranslucentPrecondition", err)
	}
}

func TestTranslucentJoinDetectsPermutationViolation(t *testing.T) {
	// B's elements appear in A in the opposite order: condition 3 broken.
	aIDs := []bat.OID{5, 3, 9} // not dense -> merge path
	bIDs := []bat.OID{9, 3}
	if _, err := TranslucentJoin(aIDs, bIDs); !errors.Is(err, ErrTranslucentPrecondition) {
		t.Errorf("err = %v, want ErrTranslucentPrecondition", err)
	}
}

func TestTranslucentJoinDetectsNonSubset(t *testing.T) {
	aIDs := []bat.OID{5, 3, 9}
	if _, err := TranslucentJoin(aIDs, []bat.OID{7}); !errors.Is(err, ErrTranslucentPrecondition) {
		t.Errorf("err = %v, want ErrTranslucentPrecondition", err)
	}
}

func TestTranslucentJoinEmptyInputs(t *testing.T) {
	if pos, err := TranslucentJoin(nil, nil); err != nil || len(pos) != 0 {
		t.Errorf("empty join = %v, %v", pos, err)
	}
	if pos, err := TranslucentJoin([]bat.OID{1, 5, 2}, nil); err != nil || len(pos) != 0 {
		t.Errorf("empty B = %v, %v", pos, err)
	}
}

// TestTranslucentJoinMatchesHashJoin is the paper's correctness claim: under
// the three preconditions the translucent join computes the same natural
// join a generic equi-join would.
func TestTranslucentJoinMatchesHashJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(200) + 1
		// A: a random permutation of n unique ids.
		aIDs := make([]bat.OID, n)
		for i := range aIDs {
			aIDs[i] = bat.OID(i * 3) // unique, gaps
		}
		rng.Shuffle(n, func(i, j int) { aIDs[i], aIDs[j] = aIDs[j], aIDs[i] })
		// B: random subsequence of A (same permutation by construction).
		var bIDs []bat.OID
		var wantPos []int
		for i, id := range aIDs {
			if rng.Intn(3) == 0 {
				bIDs = append(bIDs, id)
				wantPos = append(wantPos, i)
			}
		}
		pos, err := TranslucentJoin(aIDs, bIDs)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range wantPos {
			if pos[i] != wantPos[i] {
				t.Fatalf("trial %d: pos[%d] = %d, want %d", trial, i, pos[i], wantPos[i])
			}
		}
	}
}

func TestTranslucentJoinMeteredCharges(t *testing.T) {
	sys := device.PaperSystem()
	m := device.NewMeter(sys)
	aIDs := []bat.OID{4, 2, 9, 7}
	bIDs := []bat.OID{2, 7}
	if _, err := TranslucentJoinMetered(m, 1, aIDs, bIDs); err != nil {
		t.Fatalf("TranslucentJoinMetered: %v", err)
	}
	if m.CPU == 0 {
		t.Error("metered translucent join charged nothing")
	}
	if m.GPU != 0 || m.PCI != 0 {
		t.Error("translucent join is a CPU operator")
	}
}

func BenchmarkTranslucentJoin(b *testing.B) {
	n := 1 << 18
	aIDs := make([]bat.OID, n)
	for i := range aIDs {
		aIDs[i] = bat.OID(i)
	}
	rng := rand.New(rand.NewSource(5))
	rng.Shuffle(n, func(i, j int) { aIDs[i], aIDs[j] = aIDs[j], aIDs[i] })
	var bIDs []bat.OID
	for _, id := range aIDs {
		if id%3 == 0 {
			bIDs = append(bIDs, id)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TranslucentJoin(aIDs, bIDs); err != nil {
			b.Fatal(err)
		}
	}
}
